package monitor

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sched"
)

// enter acquires m for th, blocking on the prioritized queue as needed.
// This mirrors the acquisition loop the runtime layer drives.
func enter(m *Monitor, th *sched.Thread) {
	for {
		if m.TryEnter(th) {
			return
		}
		if m.BlockOn(th) == sched.WakeGranted {
			return
		}
	}
}

func TestUncontendedEnterExit(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	s.Spawn("a", sched.NormPriority, func(th *sched.Thread) {
		if !m.TryEnter(th) {
			t.Error("TryEnter failed on free monitor")
		}
		if !m.HeldBy(th) || m.EntryCount() != 1 {
			t.Error("ownership not recorded")
		}
		if !m.Exit(th) {
			t.Error("Exit did not fully release")
		}
		if m.Owner() != nil {
			t.Error("owner not cleared")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReentrancy(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	s.Spawn("a", sched.NormPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		if !m.TryEnter(th) {
			t.Error("reentrant TryEnter failed")
		}
		if m.EntryCount() != 2 {
			t.Errorf("EntryCount = %d", m.EntryCount())
		}
		if m.Exit(th) {
			t.Error("inner Exit reported full release")
		}
		if !m.Exit(th) {
			t.Error("outer Exit did not fully release")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutualExclusion(t *testing.T) {
	s := sched.New(sched.Config{Quantum: 3})
	m := New(s, "m")
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		s.Spawn(fmt.Sprintf("t%d", i), sched.NormPriority, func(th *sched.Thread) {
			for k := 0; k < 5; k++ {
				enter(m, th)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.Advance(2)
				th.YieldPoint()
				th.Advance(2)
				th.YieldPoint()
				inside--
				m.Exit(th)
				th.YieldPoint()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("mutual exclusion violated: %d threads inside", maxInside)
	}
}

func TestPriorityDeposit(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	s.Spawn("a", sched.LowPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		if m.OwnerPriority() != sched.LowPriority {
			t.Errorf("deposited priority = %d", m.OwnerPriority())
		}
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPrioritizedHandoff reproduces the paper's admission rule: on release,
// a waiting high-priority thread acquires the monitor even if a low-priority
// thread queued first.
func TestPrioritizedHandoff(t *testing.T) {
	s := sched.New(sched.Config{Quantum: 1000})
	m := New(s, "m")
	var order []string

	s.Spawn("owner", sched.NormPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		// Let both contenders queue up (they run and block when we yield).
		th.Yield()
		th.Yield()
		m.Exit(th)
	})
	s.Spawn("low-first", sched.LowPriority, func(th *sched.Thread) {
		enter(m, th) // queues before high
		order = append(order, "low")
		m.Exit(th)
	})
	s.Spawn("high-second", sched.HighPriority, func(th *sched.Thread) {
		enter(m, th)
		order = append(order, "high")
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("admission order = %v, want high first", order)
	}
}

func TestFIFOWithinPriorityLevel(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	var order []string
	s.Spawn("owner", sched.NormPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		th.Yield()
		th.Yield()
		th.Yield()
		m.Exit(th)
	})
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		s.Spawn(name, sched.NormPriority, func(th *sched.Thread) {
			enter(m, th)
			order = append(order, th.Name())
			m.Exit(th)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w0", "w1", "w2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestExitHandsOffDirectly(t *testing.T) {
	// A release with waiters transfers ownership before the waiter runs
	// (§4's prioritized queues schedule the dequeued thread).
	s := sched.New(sched.Config{})
	m := New(s, "m")
	var contender *sched.Thread
	s.Spawn("owner", sched.NormPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		th.Yield() // let contender block
		m.Exit(th)
		if m.Owner() != contender {
			t.Error("ownership not transferred on release")
		}
	})
	contender = s.Spawn("contender", sched.NormPriority, func(th *sched.Thread) {
		enter(m, th)
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestForceReleaseHandsOffDirectly(t *testing.T) {
	// Revocation's release transfers ownership directly to the best
	// waiter (§4: "the high-priority thread acquires control").
	s := sched.New(sched.Config{})
	m := New(s, "m")
	var contender *sched.Thread
	s.Spawn("owner", sched.LowPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		th.Yield() // let contender block
		m.ForceRelease(th)
		if m.Owner() != contender {
			t.Error("ForceRelease did not hand ownership to the waiter")
		}
	})
	contender = s.Spawn("contender", sched.HighPriority, func(th *sched.Thread) {
		enter(m, th)
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHandoffSkipsNobody(t *testing.T) {
	// Releasing with two queued waiters transfers to the best one and
	// leaves the other queued.
	s := sched.New(sched.Config{})
	m := New(s, "m")
	s.Spawn("owner", sched.NormPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		th.Yield() // let both highs block
		th.Yield()
		m.Exit(th) // hands off to one high; the other remains queued
		if m.EntryQueueLen() != 1 {
			t.Fatalf("queue length after exit = %d, want 1", m.EntryQueueLen())
		}
		if m.Owner() == nil || m.Owner().Priority() != sched.HighPriority {
			t.Error("handoff target wrong")
		}
	})
	for i := 0; i < 2; i++ {
		s.Spawn(fmt.Sprintf("high%d", i), sched.HighPriority, func(th *sched.Thread) {
			enter(m, th)
			m.Exit(th)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestForceReleaseClearsReentrancy(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	s.Spawn("a", sched.NormPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		m.TryEnter(th)
		m.TryEnter(th)
		m.ForceRelease(th)
		if m.Owner() != nil || m.EntryCount() != 0 {
			t.Error("ForceRelease left state behind")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGenChangesPerSpan(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	s.Spawn("a", sched.NormPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		g1 := m.Gen()
		m.TryEnter(th) // reentrant: same span
		if m.Gen() != g1 {
			t.Error("gen changed on reentrant enter")
		}
		m.Exit(th)
		m.Exit(th)
		m.TryEnter(th)
		if m.Gen() == g1 {
			t.Error("gen unchanged across spans")
		}
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNonRevocableStateResetsPerSpan(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	s.Spawn("a", sched.NormPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		m.MarkNonRevocable("native")
		if nr, why := m.NonRevocable(); !nr || why != "native" {
			t.Errorf("NonRevocable = %v,%q", nr, why)
		}
		m.MarkNonRevocable("second") // first reason sticks
		if _, why := m.NonRevocable(); why != "native" {
			t.Errorf("reason overwritten: %q", why)
		}
		m.Exit(th)
		m.TryEnter(th)
		if nr, _ := m.NonRevocable(); nr {
			t.Error("non-revocability leaked into a new span")
		}
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitNotify(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	ready := false
	s.Spawn("consumer", sched.NormPriority, func(th *sched.Thread) {
		enter(m, th)
		for !ready {
			m.Wait(th, nil)
		}
		m.Exit(th)
	})
	s.Spawn("producer", sched.NormPriority, func(th *sched.Thread) {
		enter(m, th)
		ready = true
		m.Notify(th)
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitPreservesDepth(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	s.Spawn("waiter", sched.NormPriority, func(th *sched.Thread) {
		enter(m, th)
		m.TryEnter(th) // depth 2
		m.Wait(th, nil)
		if m.EntryCount() != 2 {
			t.Errorf("depth after wait = %d, want 2", m.EntryCount())
		}
		m.Exit(th)
		m.Exit(th)
	})
	s.Spawn("notifier", sched.NormPriority, func(th *sched.Thread) {
		for m.WaitSetLen() == 0 {
			th.Yield()
		}
		enter(m, th)
		m.Notify(th)
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitReleasesFully(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	acquired := false
	s.Spawn("waiter", sched.NormPriority, func(th *sched.Thread) {
		enter(m, th)
		m.TryEnter(th)
		m.Wait(th, nil) // must release both levels
		m.Exit(th)
		m.Exit(th)
	})
	s.Spawn("other", sched.NormPriority, func(th *sched.Thread) {
		enter(m, th) // succeeds while waiter waits
		acquired = true
		m.Notify(th)
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !acquired {
		t.Fatal("monitor not released during wait")
	}
}

func TestNotifyAll(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	woken := 0
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), sched.NormPriority, func(th *sched.Thread) {
			enter(m, th)
			m.Wait(th, nil)
			woken++
			m.Exit(th)
		})
	}
	s.Spawn("notifier", sched.NormPriority, func(th *sched.Thread) {
		for m.WaitSetLen() < 3 {
			th.Yield()
		}
		enter(m, th)
		if n := m.NotifyAll(th); n != 3 {
			t.Errorf("NotifyAll woke %d", n)
		}
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken = %d", woken)
	}
}

func TestNotifyNoWaiters(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	s.Spawn("a", sched.NormPriority, func(th *sched.Thread) {
		enter(m, th)
		if m.Notify(th) {
			t.Error("Notify with no waiters returned true")
		}
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExitByNonOwnerPanics(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	s.Spawn("a", sched.NormPriority, func(th *sched.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("Exit by non-owner did not panic")
			}
		}()
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitByNonOwnerPanics(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	s.Spawn("a", sched.NormPriority, func(th *sched.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("Wait by non-owner did not panic")
			}
		}()
		m.Wait(th, nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInterruptedWaiterRemovedFromQueue(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "m")
	interrupted := false
	var waiter *sched.Thread
	waiter = s.Spawn("waiter", sched.NormPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		m.Wait(th, func() { interrupted = true })
		m.Exit(th)
	})
	s.Spawn("interruptor", sched.NormPriority, func(th *sched.Thread) {
		for m.WaitSetLen() == 0 {
			th.Yield()
		}
		s.Unblock(waiter, sched.WakeInterrupt)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !interrupted {
		t.Fatal("onInterrupt not called")
	}
	if m.WaitSetLen() != 0 {
		t.Fatal("waiter left in wait set")
	}
}

func TestStatsAndIntrospection(t *testing.T) {
	s := sched.New(sched.Config{})
	m := New(s, "contested")
	s.Spawn("a", sched.NormPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		th.Yield()
		th.Yield()
		if m.EntryQueueLen() != 2 {
			t.Errorf("EntryQueueLen = %d", m.EntryQueueLen())
		}
		ws := m.Waiters()
		if len(ws) != 2 || ws[0].Priority() < ws[1].Priority() {
			t.Errorf("Waiters misordered")
		}
		if hw := m.HighestWaiter(); hw == nil || hw.Priority() != sched.HighPriority {
			t.Error("HighestWaiter wrong")
		}
		if !strings.Contains(m.DumpQueues(), "entry[") {
			t.Error("DumpQueues format")
		}
		m.Exit(th)
	})
	s.Spawn("w1", sched.LowPriority, func(th *sched.Thread) {
		enter(m, th)
		m.Exit(th)
	})
	s.Spawn("w2", sched.HighPriority, func(th *sched.Thread) {
		enter(m, th)
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Acquisitions() < 3 {
		t.Errorf("Acquisitions = %d", m.Acquisitions())
	}
	if m.Contended() != 2 {
		t.Errorf("Contended = %d", m.Contended())
	}
	if !strings.Contains(m.String(), "free") {
		t.Errorf("String = %q", m.String())
	}
}

func TestFIFOQueueDiscipline(t *testing.T) {
	// With FIFOQueue set, a low-priority waiter that queued first is
	// served before a high-priority one — the behaviour the paper's
	// prioritized queues exist to prevent.
	s := sched.New(sched.Config{})
	m := New(s, "m")
	m.FIFOQueue = true
	var order []string
	s.Spawn("owner", sched.NormPriority, func(th *sched.Thread) {
		m.TryEnter(th)
		th.Yield() // let low queue first
		th.Yield() // then high
		m.Exit(th)
	})
	s.Spawn("low-first", sched.LowPriority, func(th *sched.Thread) {
		enter(m, th)
		order = append(order, "low")
		m.Exit(th)
	})
	s.Spawn("high-second", sched.HighPriority, func(th *sched.Thread) {
		enter(m, th)
		order = append(order, "high")
		m.Exit(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "low" {
		t.Fatalf("FIFO admission order = %v, want low first", order)
	}
}
