// Package monitor implements Java-style monitors over the green-thread
// scheduler: reentrant mutual-exclusion with prioritized entry queues, wait
// sets with notify/notifyAll, the priority deposit the paper's detection
// algorithm reads (§4: "A thread acquiring a monitor deposits its priority
// in the header of the monitor object"), and the per-ownership-span
// revocability state of §2.2.
//
// The entry queue implements the paper's prioritized admission rule: "When
// a thread releases a monitor, another thread is scheduled from the queue.
// If it is a high-priority thread, it is allowed to acquire the monitor. If
// it is a low-priority thread, it is allowed to run only if there are no
// other waiting high-priority threads." Generalized to the full priority
// range: highest priority first, FIFO within a level.
//
// Policy — who blocks, who revokes, whether priorities are inherited —
// lives above this package (internal/core for the paper's scheme,
// internal/baseline for the comparison protocols).
package monitor

import (
	"fmt"
	"strings"

	"repro/internal/sched"
	"repro/internal/simtime"
)

// Monitor is one lock. In Java every object can act as a monitor; the
// runtime layer associates Monitors with heap objects on demand.
//
// The representation is two-level (see lockword.go): uncontended
// acquisition runs on a compact thin lock word, inflating to the full
// prioritized-queue fields below only on contention, Object.wait, or
// recursion overflow.
type Monitor struct {
	name string
	sch  *sched.Scheduler

	// word is the compact lock word; thinOwner caches the owning thread
	// while the word is thin. Layout and state machine in lockword.go.
	word      uint64
	thinOwner *sched.Thread
	noThin    bool

	owner      *sched.Thread
	entryCount int
	// ownerPrio is the priority deposited by the owner at acquisition; the
	// inversion detector compares against it rather than chasing the
	// thread's current priority, exactly as the paper describes.
	ownerPrio  sched.Priority
	acquiredAt simtime.Ticks
	// gen increments at every ownership transfer, so a revocation request
	// can verify the span it targeted is still current.
	gen uint64

	entryQ waitQueue
	waitQ  waitQueue // threads in Object.wait

	// Revocability of the current ownership span.
	nonRevocable bool
	nonRevReason string

	// Ceiling is the priority ceiling for the ceiling-protocol baseline;
	// zero means unset.
	Ceiling sched.Priority

	// FIFOQueue disables the paper's prioritized admission for this
	// monitor: waiters are served strictly in arrival order regardless of
	// priority. Used by the queue-discipline ablation.
	FIFOQueue bool

	// Lifetime statistics.
	acquisitions     int64
	contended        int64
	inflAcquisitions int64 // ownership transfers taken in the inflated state
	inflations       int64
	deflations       int64
}

// New creates a named monitor bound to a scheduler.
func New(sch *sched.Scheduler, name string) *Monitor {
	return &Monitor{name: name, sch: sch}
}

// Name returns the monitor's display name.
func (m *Monitor) Name() string { return m.name }

// Owner returns the owning thread, or nil when free.
func (m *Monitor) Owner() *sched.Thread {
	if m.word&lwInflated == 0 {
		return m.thinOwner // nil when free
	}
	return m.owner
}

// EntryCount returns the owner's reentrancy depth (0 when free).
func (m *Monitor) EntryCount() int {
	if w := m.word; w&lwInflated == 0 {
		return thinCount(w)
	}
	return m.entryCount
}

// OwnerPriority returns the priority deposited at acquisition.
func (m *Monitor) OwnerPriority() sched.Priority {
	if w := m.word; w&lwInflated == 0 {
		if w == 0 {
			return 0
		}
		return thinPrio(w)
	}
	return m.ownerPrio
}

// AcquiredAt returns the virtual time of the current span's acquisition.
func (m *Monitor) AcquiredAt() simtime.Ticks { return m.acquiredAt }

// Gen returns the current ownership-span generation.
func (m *Monitor) Gen() uint64 { return m.gen }

// Acquisitions returns the lifetime number of ownership transfers.
func (m *Monitor) Acquisitions() int64 { return m.acquisitions }

// Contended returns how many Enter attempts found the monitor held.
func (m *Monitor) Contended() int64 { return m.contended }

// HeldBy reports whether t currently owns the monitor.
func (m *Monitor) HeldBy(t *sched.Thread) bool { return m.Owner() == t }

// String renders the monitor state for diagnostics.
func (m *Monitor) String() string {
	o := m.Owner()
	if o == nil {
		return fmt.Sprintf("monitor(%s, free)", m.name)
	}
	state := "thin"
	if m.Inflated() {
		state = "inflated"
	}
	return fmt.Sprintf("monitor(%s, %s owner=%s depth=%d prio=%d)", m.name, state, o.Name(), m.EntryCount(), m.OwnerPriority())
}

// ---------------------------------------------------------------------------
// Revocability state (per ownership span).

// MarkNonRevocable makes the current span non-revocable for the given
// reason (native call, nested wait, read-write dependency). It is sticky
// until the span ends.
func (m *Monitor) MarkNonRevocable(reason string) {
	if !m.nonRevocable {
		m.nonRevocable = true
		m.nonRevReason = reason
	}
}

// NonRevocable reports whether the current span may not be rolled back.
func (m *Monitor) NonRevocable() (bool, string) { return m.nonRevocable, m.nonRevReason }

// ---------------------------------------------------------------------------
// Acquisition protocol. The runtime layer drives it:
//
//	for {
//		if m.TryEnter(t) { break }
//		// inspect owner, maybe request revocation ...
//		kind := m.BlockOn(t)
//		if kind == sched.WakeGranted { break } // ownership was handed over
//		// WakeInterrupt: the blocked thread itself is being revoked
//	}

// TryEnter acquires the monitor if it is free or already owned by t
// (reentrant). It returns false when another thread owns it.
//
// A free monitor is taken unconditionally, even with waiters queued: the
// fast path is a header compare-and-swap (Jikes RVM thin locks) that never
// consults the queue, so running threads barge past woken-but-undispatched
// waiters. The paper's prioritized queues act at *wake selection* — on
// release the best-priority waiter is woken first ("If it is a low-priority
// thread, it is allowed to run only if there are no other waiting
// high-priority threads", §4).
func (m *Monitor) TryEnter(t *sched.Thread) bool {
	w := m.word
	if w == 0 {
		// Free and deflated: thin acquisition — pack the header word and
		// stamp the span state. Nothing else is touched.
		m.word = thinPack(t)
		m.thinOwner = t
		m.acquiredAt = m.sch.Now()
		m.gen++
		m.acquisitions++
		return true
	}
	if w&lwInflated == 0 {
		if m.thinOwner == t {
			if w&lwCountMask == lwCountMask {
				// Recursion overflow: the count field is saturated, so
				// the depth moves to the inflated entryCount.
				m.inflate()
				m.entryCount++
				return true
			}
			m.word = w + lwCountUnit
			return true
		}
		// Contention on a thin lock: inflate to the full prioritized-queue
		// monitor before the caller decides to block or revoke.
		m.inflate()
		return false
	}
	switch m.owner {
	case nil:
		m.takeOwnership(t)
		return true
	case t:
		m.entryCount++
		return true
	default:
		return false
	}
}

// takeOwnership installs t as owner of an inflated monitor, depositing
// its priority. (Thin acquisition happens inline in TryEnter.)
func (m *Monitor) takeOwnership(t *sched.Thread) {
	m.owner = t
	m.entryCount = 1
	m.ownerPrio = t.Priority()
	m.acquiredAt = m.sch.Now()
	m.gen++
	m.nonRevocable = false
	m.nonRevReason = ""
	m.acquisitions++
	m.inflAcquisitions++
}

// queuePop dequeues per the monitor's discipline: best priority (FIFO
// within a level), or pure FIFO when FIFOQueue is set.
func (m *Monitor) queuePop() *sched.Thread {
	if m.FIFOQueue {
		return m.entryQ.popOldest()
	}
	return m.entryQ.pop()
}

// BlockOn parks t on the prioritized entry queue until the monitor is
// handed to it (WakeGranted) or it is interrupted (WakeInterrupt, used when
// t itself becomes a revocation or deadlock victim while blocked). On
// WakeGranted the caller owns the monitor upon return. On WakeInterrupt the
// caller was removed from the queue and owns nothing.
func (m *Monitor) BlockOn(t *sched.Thread) sched.WakeKind {
	m.contended++
	m.entryQ.push(t)
	kind := t.Block("monitor " + m.name)
	if kind == sched.WakeInterrupt {
		m.entryQ.remove(t)
	}
	return kind
}

// EntryQueueLen returns the number of threads blocked on entry.
func (m *Monitor) EntryQueueLen() int { return m.entryQ.len() }

// Waiters returns the threads blocked on entry, highest priority first.
func (m *Monitor) Waiters() []*sched.Thread { return m.entryQ.inOrder() }

// HighestWaiter returns the best-priority entry-queue thread, or nil.
func (m *Monitor) HighestWaiter() *sched.Thread { return m.entryQ.peek() }

// Exit releases one level of reentrancy. When the outermost level is
// released, ownership is handed directly to the best-priority waiter and
// that thread is scheduled — §4's prioritized monitor queues: "When a
// thread releases a monitor, another thread is scheduled from the queue.
// If it is a high-priority thread, it is allowed to acquire the monitor.
// If it is a low-priority thread, it is allowed to run only if there are
// no other waiting high-priority threads." Exit reports whether the
// monitor was fully released (entryCount reached zero).
func (m *Monitor) Exit(t *sched.Thread) bool {
	if w := m.word; w&lwInflated == 0 {
		if m.thinOwner != t {
			m.panicNonOwner("Exit", t)
		}
		if w&lwCountMask != lwCountUnit {
			m.word = w - lwCountUnit
			return false
		}
		m.thinRelease()
		return true
	}
	if m.owner != t {
		m.panicNonOwner("Exit", t)
	}
	m.entryCount--
	if m.entryCount > 0 {
		return false
	}
	m.release()
	return true
}

// ForceRelease releases the monitor entirely regardless of entry count,
// used during revocation: the rolled-back section's nested re-entries
// vanish along with its effects. As after a normal release, "the
// high-priority thread acquires control of the synchronized section" (§4).
func (m *Monitor) ForceRelease(t *sched.Thread) {
	if m.word&lwInflated == 0 {
		if m.thinOwner != t {
			m.panicNonOwner("ForceRelease", t)
		}
		// Revocation of a span nobody ever contended on: the nested
		// re-entries live in the count field and vanish with the word.
		m.thinRelease()
		return
	}
	if m.owner != t {
		m.panicNonOwner("ForceRelease", t)
	}
	m.release()
}

// release clears ownership of an inflated monitor, hands it to the
// best-priority waiter and schedules that thread (expedited when it
// outranks the releaser). With no successor and an empty wait set the
// monitor deflates back to the thin state.
func (m *Monitor) release() {
	releaser := m.owner
	m.owner = nil
	m.entryCount = 0
	m.nonRevocable = false
	m.nonRevReason = ""
	next := m.queuePop()
	if next == nil {
		if m.waitQ.len() == 0 && !m.noThin {
			m.word = 0
			m.deflations++
		}
		return
	}
	m.takeOwnership(next)
	m.sch.Unblock(next, sched.WakeGranted)
	if releaser == nil || next.Priority() > releaser.Priority() {
		m.sch.Expedite(next)
	}
}

// ---------------------------------------------------------------------------
// Wait / notify. Semantics follow Java: wait releases the monitor fully
// (whatever the reentrancy depth), parks the thread on the wait set, and on
// wakeup re-acquires to the same depth before returning. Spurious wakeups
// are permitted by the JLS; the paper relies on that to keep notify
// revocable ("a rolled back notification can be considered as such", §2.2).

// Wait implements Object.wait for the owner t. It releases the monitor
// fully, parks t, and on notification re-acquires to the original depth
// before returning, so the caller always owns the monitor afterwards.
//
// onInterrupt, if non-nil, is invoked whenever the thread is woken with
// WakeInterrupt (the runtime interrupting a blocked thread to deliver a
// revocation). The callback may abandon the wait by panicking — the
// runtime's rollback unwinds through here — or return normally, in which
// case the interrupt is treated as a JLS-sanctioned spurious wakeup and the
// thread proceeds to re-acquire the monitor.
func (m *Monitor) Wait(t *sched.Thread, onInterrupt func()) {
	// Wait sets live on the full monitor: inflate before parking. The
	// waiter is queued before release so the no-successor path cannot
	// deflate a monitor that still has a wait set.
	m.inflate()
	if m.owner != t {
		m.panicNonOwner("Wait", t)
	}
	depth := m.entryCount
	m.waitQ.push(t)
	m.release()
	kind := t.Block("wait " + m.name)
	if kind == sched.WakeInterrupt {
		m.waitQ.remove(t)
		if onInterrupt != nil {
			onInterrupt()
		}
		// Stale interrupt: proceed as a spurious wakeup.
	}
	// Notified (or spuriously woken): compete for the monitor again. The
	// monitor may have deflated in the meantime, so the depth restore is
	// representation-aware.
	for {
		if m.TryEnter(t) {
			m.setDepth(depth)
			return
		}
		k := m.BlockOn(t)
		if k == sched.WakeInterrupt {
			if onInterrupt != nil {
				onInterrupt()
			}
			continue
		}
		if k == sched.WakeGranted {
			m.setDepth(depth)
			return
		}
	}
}

// Notify wakes the best-priority waiter, if any, and reports whether one
// was woken. The caller must own the monitor.
func (m *Monitor) Notify(t *sched.Thread) bool {
	if m.word&lwInflated == 0 {
		if m.thinOwner != t {
			m.panicNonOwner("Notify", t)
		}
		return false // thin state: the wait set is necessarily empty
	}
	if m.owner != t {
		m.panicNonOwner("Notify", t)
	}
	w := m.waitQ.pop()
	if w == nil {
		return false
	}
	m.sch.Unblock(w, sched.WakeRetry)
	return true
}

// NotifyAll wakes every waiter and returns how many were woken.
func (m *Monitor) NotifyAll(t *sched.Thread) int {
	if m.word&lwInflated == 0 {
		if m.thinOwner != t {
			m.panicNonOwner("NotifyAll", t)
		}
		return 0 // thin state: the wait set is necessarily empty
	}
	if m.owner != t {
		m.panicNonOwner("NotifyAll", t)
	}
	n := 0
	for {
		w := m.waitQ.pop()
		if w == nil {
			return n
		}
		m.sch.Unblock(w, sched.WakeRetry)
		n++
	}
}

// WaitSetLen returns the number of threads in Object.wait.
func (m *Monitor) WaitSetLen() int { return m.waitQ.len() }

// ---------------------------------------------------------------------------
// waitQueue is a prioritized FIFO: pop returns the oldest thread of the
// highest priority present. Sizes are small (bounded by thread count), so a
// slice with linear scan is both simple and fast.

type waitQueue struct {
	items []queued
	seq   int64
}

type queued struct {
	t   *sched.Thread
	seq int64
}

func (q *waitQueue) push(t *sched.Thread) {
	q.items = append(q.items, queued{t: t, seq: q.seq})
	q.seq++
}

func (q *waitQueue) best() int {
	if len(q.items) == 0 {
		return -1
	}
	bi := 0
	for i := 1; i < len(q.items); i++ {
		b, c := q.items[bi], q.items[i]
		if c.t.Priority() > b.t.Priority() || (c.t.Priority() == b.t.Priority() && c.seq < b.seq) {
			bi = i
		}
	}
	return bi
}

func (q *waitQueue) peek() *sched.Thread {
	i := q.best()
	if i < 0 {
		return nil
	}
	return q.items[i].t
}

func (q *waitQueue) pop() *sched.Thread {
	i := q.best()
	if i < 0 {
		return nil
	}
	t := q.items[i].t
	q.removeAt(i)
	return t
}

// popOldest dequeues in pure arrival order (FIFO ablation).
func (q *waitQueue) popOldest() *sched.Thread {
	if len(q.items) == 0 {
		return nil
	}
	bi := 0
	for i := 1; i < len(q.items); i++ {
		if q.items[i].seq < q.items[bi].seq {
			bi = i
		}
	}
	t := q.items[bi].t
	q.removeAt(bi)
	return t
}

func (q *waitQueue) remove(t *sched.Thread) bool {
	for i, it := range q.items {
		if it.t == t {
			q.removeAt(i)
			return true
		}
	}
	return false
}

func (q *waitQueue) removeAt(i int) {
	copy(q.items[i:], q.items[i+1:])
	q.items[len(q.items)-1] = queued{}
	q.items = q.items[:len(q.items)-1]
}

func (q *waitQueue) len() int { return len(q.items) }

func (q *waitQueue) inOrder() []*sched.Thread {
	out := make([]*sched.Thread, 0, len(q.items))
	tmp := waitQueue{items: append([]queued(nil), q.items...), seq: q.seq}
	for {
		t := tmp.pop()
		if t == nil {
			return out
		}
		out = append(out, t)
	}
}

// DumpQueues renders both queues for diagnostics.
func (m *Monitor) DumpQueues() string {
	var b strings.Builder
	fmt.Fprintf(&b, "entry[")
	for i, t := range m.entryQ.inOrder() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s/%d", t.Name(), t.Priority())
	}
	fmt.Fprintf(&b, "] wait[")
	for i, t := range m.waitQ.inOrder() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s/%d", t.Name(), t.Priority())
	}
	b.WriteString("]")
	return b.String()
}
