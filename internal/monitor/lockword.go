// Compact lock word: a Jikes-RVM / Compact-Java-Monitors style thin lock
// state packed into a single header word, with inflation to the full
// prioritized-queue revocable monitor only when contention, wait sets, or
// recursion overflow actually require it.
//
// States, distinguished by the word alone:
//
//	word == 0                 free and deflated (thin-eligible)
//	word & lwInflated == 0    thin-held: owner id, recursion count and the
//	                          deposited priority are packed in the word;
//	                          thinOwner caches the owning thread
//	word & lwInflated != 0    inflated: the struct fields (owner,
//	                          entryCount, ownerPrio, queues) are
//	                          authoritative; thinOwner is nil
//
// On the deterministic uniprocessor scheduler the "single CAS" of the
// hardware design degenerates to a single packed store — the point is the
// shape of the fast path: no queue inspection, no wait-set bookkeeping,
// nothing but the header update plus the paper-mandated span state (gen,
// deposited priority, acquisition time).
//
// Invariants:
//   - thin state implies both queues are empty (contention and Wait
//     inflate first), so Notify/NotifyAll on a thin monitor trivially
//     find no waiters;
//   - inflation never starts a new ownership span: gen, acquiredAt and
//     the revocability flags are span-scoped struct fields in both states
//     and carry over unchanged;
//   - revocation machinery (revocation requests, ForceRelease handoff,
//     queue boosts) only ever observes inflated monitors, because a
//     request presupposes a contender and contention inflates.

package monitor

import (
	"fmt"

	"repro/internal/sched"
)

// Thin lock word layout.
const (
	lwInflated   uint64 = 1 << 0 // struct fields authoritative
	lwPrioShift         = 8
	lwPrioMask   uint64 = 0xff << lwPrioShift
	lwPrioBias          = 128 // packed priority is biased to stay non-negative
	lwCountShift        = 16
	lwCountUnit  uint64 = 1 << lwCountShift
	lwCountMask  uint64 = 0xffff << lwCountShift
	lwCountMax          = 0xffff
	lwOwnerShift        = 32 // bits 32..63: owner thread id + 1
)

// thinPack builds the thin word for t's first acquisition: owner id,
// recursion count 1, and t's current priority deposited in the header
// (§4: "a thread acquiring a monitor deposits its priority in the header
// of the monitor object").
func thinPack(t *sched.Thread) uint64 {
	return uint64(t.ID()+1)<<lwOwnerShift | lwCountUnit |
		uint64(int(t.Priority())+lwPrioBias)<<lwPrioShift
}

func thinCount(w uint64) int { return int(w & lwCountMask >> lwCountShift) }

func thinPrio(w uint64) sched.Priority {
	return sched.Priority(int(w&lwPrioMask>>lwPrioShift) - lwPrioBias)
}

// inflate transfers thin state into the full monitor fields. The current
// ownership span continues: gen, acquiredAt, acquisitions and the
// revocability flags already live in span-scoped struct fields and are
// not touched.
func (m *Monitor) inflate() {
	w := m.word
	if w&lwInflated != 0 {
		return
	}
	if w != 0 {
		m.owner = m.thinOwner
		m.entryCount = thinCount(w)
		m.ownerPrio = thinPrio(w)
	}
	m.word = lwInflated
	m.thinOwner = nil
	m.inflations++
}

// Inflate forces the monitor into the inflated state (benchmark and test
// hook; the runtime inflates on demand).
func (m *Monitor) Inflate() { m.inflate() }

// Inflated reports whether the monitor currently uses the full
// prioritized-queue representation.
func (m *Monitor) Inflated() bool { return m.word&lwInflated != 0 }

// thinRelease drops a thin lock held at depth 1. No queues can exist in
// the thin state, so there is nobody to hand over to.
func (m *Monitor) thinRelease() {
	m.word = 0
	m.thinOwner = nil
	if m.nonRevocable {
		m.nonRevocable = false
		m.nonRevReason = ""
	}
}

// setDepth restores the owner's reentrancy depth after a Wait re-acquire,
// in whichever representation the monitor currently uses.
func (m *Monitor) setDepth(d int) {
	if m.word&lwInflated == 0 && d <= lwCountMax {
		m.word = m.word&^lwCountMask | uint64(d)<<lwCountShift
		return
	}
	m.inflate()
	m.entryCount = d
}

// DisableThin pins the monitor to the inflated state: the thin fast path
// never engages and release never deflates. Used by the lock-word
// ablation (core.Config.DisableThinLocks).
func (m *Monitor) DisableThin() {
	m.noThin = true
	m.inflate()
}

// ThinAcquisitions returns how many ownership transfers took the thin
// fast path.
func (m *Monitor) ThinAcquisitions() int64 { return m.acquisitions - m.inflAcquisitions }

// Inflations returns how many times the monitor inflated to the full
// representation.
func (m *Monitor) Inflations() int64 { return m.inflations }

// Deflations returns how many times an uncontended release collapsed the
// monitor back to the thin state.
func (m *Monitor) Deflations() int64 { return m.deflations }

// panicNonOwner reports a protocol violation uniformly across states.
func (m *Monitor) panicNonOwner(op string, t *sched.Thread) {
	panic(fmt.Sprintf("monitor %s: %s by non-owner %s (owner %v)", m.name, op, t.Name(), m.Owner()))
}
