package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/monitor"
	"repro/internal/sched"
	"repro/internal/simtime"
)

// The bank workload is the "real-world application" stand-in the paper's
// conclusions call for (§6): many monitors instead of one, nested
// acquisition in inconsistent order (deadlock-prone transfers), long
// low-priority sections (the interest batch), and latency-sensitive
// high-priority work (auditors). It exercises, in one program, everything
// the micro-benchmark isolates: inversion resolution, deadlock breaking,
// logging, rollback and re-execution.
//
// Invariants checked:
//   - per-account: checksum == 7*balance at every observation point —
//     sections must be atomic even under revocation;
//   - global: total money is conserved once the system quiesces.

// BankParams sizes the workload.
type BankParams struct {
	Accounts int
	// Tellers are normal-priority threads doing two-account transfers,
	// locking the accounts in *random* order — the deadlock factory.
	Tellers int
	// Auditors are high-priority threads periodically scanning accounts;
	// their per-round latency is the figure of merit.
	Auditors int
	// BatchThreads are low-priority threads posting interest to every
	// account in long synchronized sections — the inversion source.
	BatchThreads int
	Rounds       int
	InitialEach  heap.Word
	// OrderedTransfers makes tellers lock account pairs in ascending
	// order (the classic deadlock-avoidance discipline). Disable it only
	// under the revocation protocol, which detects and breaks the
	// resulting deadlocks; the other protocols would wedge.
	OrderedTransfers bool
	// SectionWork is the computation per batch section (ticks).
	SectionWork simtime.Ticks
	Quantum     simtime.Ticks
	Seed        int64
}

// DefaultBankParams returns a small, contended configuration.
func DefaultBankParams() BankParams {
	return BankParams{
		Accounts:         8,
		Tellers:          4,
		Auditors:         2,
		BatchThreads:     2,
		Rounds:           6,
		InitialEach:      1000,
		OrderedTransfers: true,
		SectionWork:      800,
		Quantum:          200,
		Seed:             7,
	}
}

// BankResult reports one run.
type BankResult struct {
	Protocol baseline.Protocol
	// AuditWorst and AuditMean are the auditor round latencies in ticks.
	AuditWorst simtime.Ticks
	AuditMean  float64
	// Conserved reports whether total money was conserved at the end.
	Conserved bool
	// ConsistentObservations reports whether every balance/checksum pair
	// observed by any thread was consistent.
	ConsistentObservations bool
	Elapsed                simtime.Ticks
	Stats                  core.Stats
}

// RunBank executes the workload under the given protocol.
func RunBank(proto baseline.Protocol, p BankParams) (BankResult, error) {
	rt := baseline.New(proto, sched.Config{Quantum: p.Quantum, Seed: p.Seed})
	h := rt.Heap()

	accounts := make([]*heap.Object, p.Accounts)
	monitors := make([]*monitor.Monitor, p.Accounts)
	for i := range accounts {
		accounts[i] = h.AllocObject(fmt.Sprintf("Account%d", i),
			heap.FieldSpec{Name: "balance", Init: p.InitialEach},
			heap.FieldSpec{Name: "checksum", Init: 7 * p.InitialEach},
		)
		monitors[i] = rt.MonitorFor(accounts[i])
		monitors[i].Ceiling = sched.HighPriority // for the ceiling baseline
	}

	consistent := true
	check := func(tk *core.Task, i int) heap.Word {
		b := tk.ReadField(accounts[i], 0)
		c := tk.ReadField(accounts[i], 1)
		if c != 7*b {
			consistent = false
		}
		return b
	}
	set := func(tk *core.Task, i int, v heap.Word) {
		tk.WriteField(accounts[i], 0, v)
		tk.WriteField(accounts[i], 1, 7*v)
	}

	// Tellers: random-order two-account transfers.
	for ti := 0; ti < p.Tellers; ti++ {
		rng := rand.New(rand.NewSource(p.Seed + int64(ti)*7919))
		rt.Spawn(fmt.Sprintf("teller%d", ti), sched.NormPriority, func(tk *core.Task) {
			for r := 0; r < p.Rounds; r++ {
				from := rng.Intn(p.Accounts)
				to := rng.Intn(p.Accounts - 1)
				if to >= from {
					to++
				}
				amount := heap.Word(rng.Intn(50) + 1)
				outer, inner := from, to
				if p.OrderedTransfers && outer > inner {
					outer, inner = inner, outer
				}
				tk.Sleep(simtime.Ticks(rng.Intn(int(p.Quantum)) + 1))
				tk.Synchronized(monitors[outer], func() {
					tk.Work(20)
					tk.Synchronized(monitors[inner], func() {
						fb := check(tk, from)
						tb := check(tk, to)
						set(tk, from, fb-amount)
						tk.Work(10)
						set(tk, to, tb+amount)
					})
				})
			}
		})
	}

	// Batch threads: post interest to every account, long sections.
	for bi := 0; bi < p.BatchThreads; bi++ {
		rng := rand.New(rand.NewSource(p.Seed + 1000 + int64(bi)*104729))
		rt.Spawn(fmt.Sprintf("batch%d", bi), sched.LowPriority, func(tk *core.Task) {
			for r := 0; r < p.Rounds; r++ {
				for i := 0; i < p.Accounts; i++ {
					tk.Synchronized(monitors[i], func() {
						b := check(tk, i)
						tk.Work(p.SectionWork)
						// +1/-1 alternating keeps the total conserved.
						delta := heap.Word(1 - 2*(r%2))
						set(tk, i, b+delta)
					})
					tk.Sleep(simtime.Ticks(rng.Intn(40) + 1))
				}
			}
		})
	}

	// Auditors: high-priority scans; measure per-round latency.
	var latencies []simtime.Ticks
	for ai := 0; ai < p.Auditors; ai++ {
		rng := rand.New(rand.NewSource(p.Seed + 2000 + int64(ai)*31337))
		rt.Spawn(fmt.Sprintf("auditor%d", ai), sched.HighPriority, func(tk *core.Task) {
			for r := 0; r < p.Rounds; r++ {
				tk.Sleep(simtime.Ticks(rng.Intn(int(p.Quantum)*2) + 1))
				start := rt.Now()
				for i := 0; i < p.Accounts; i++ {
					tk.Synchronized(monitors[i], func() {
						check(tk, i)
						tk.Work(5)
					})
				}
				latencies = append(latencies, rt.Now()-start)
			}
		})
	}

	if err := rt.Run(); err != nil {
		return BankResult{}, fmt.Errorf("bank/%v: %w", proto, err)
	}

	res := BankResult{
		Protocol:               proto,
		Conserved:              true,
		ConsistentObservations: consistent,
		Elapsed:                rt.Now(),
		Stats:                  rt.Stats(),
	}
	total := heap.Word(0)
	for _, a := range accounts {
		if a.Get(1) != 7*a.Get(0) {
			res.ConsistentObservations = false
		}
		total += a.Get(0)
	}
	// Batch rounds alternate +1/-1 per account; an odd round count leaves
	// +1 per account per batch thread.
	expected := heap.Word(p.Accounts)*p.InitialEach +
		heap.Word(p.BatchThreads*p.Accounts*(p.Rounds%2))
	res.Conserved = total == expected
	var sum simtime.Ticks
	for _, l := range latencies {
		if l > res.AuditWorst {
			res.AuditWorst = l
		}
		sum += l
	}
	if len(latencies) > 0 {
		res.AuditMean = float64(sum) / float64(len(latencies))
	}
	return res, nil
}
