// Latency recording: representative benchmark cells run with an
// obs.Observer attached, so every results/BENCH_*.json report carries the
// per-thread blocking-time distributions behind the Figure 5–8 elapsed
// times — the paper's claim is precisely that revocation trades low-thread
// wasted work for high-thread blocking time, and the histograms make that
// trade visible per report.
package bench

import (
	"fmt"

	"repro/internal/obs"
)

// LatencyResult is the observability profile of one observed cell.
type LatencyResult struct {
	Name string `json:"name"`
	VM   string `json:"vm"`
	// BlockingPerThread maps thread name to its blocked-on-monitor time
	// distribution in virtual ticks.
	BlockingPerThread map[string]obs.HistSummary `json:"blocking_per_thread"`
	// RollbackWasted is the distribution of discarded work per rollback.
	RollbackWasted obs.HistSummary `json:"rollback_wasted"`
	// Reexecutions is the total section re-execution count.
	Reexecutions int64 `json:"reexecutions"`
	// WastedTicks is the runtime's own wasted-work counter; it equals
	// RollbackWasted.Sum by construction (the reconciliation the obs tests
	// pin down).
	WastedTicks int64 `json:"wasted_ticks"`
}

// RunLatency runs one representative cell per thread mix (write ratio 40 %,
// ScaleSmall) on both VMs with observation enabled and returns the latency
// profiles. progress, if non-nil, is called with each finished result.
func RunLatency(progress func(LatencyResult)) ([]LatencyResult, error) {
	var out []LatencyResult
	for _, mix := range Mixes {
		for _, vm := range []VM{Unmodified, Modified} {
			p := CellParams(ScaleSmall, true, mix, 40)
			res, o, err := RunCellObserved(vm, p)
			if err != nil {
				return nil, fmt.Errorf("bench: latency cell %v/%v: %w", mix, vm, err)
			}
			lr := LatencyResult{
				Name:              fmt.Sprintf("Latency/%dhigh%dlow_w40", mix.High, mix.Low),
				VM:                vm.String(),
				BlockingPerThread: make(map[string]obs.HistSummary),
				RollbackWasted:    o.Metrics().RollbackWasted().Summary(),
				WastedTicks:       int64(res.Stats.WastedTicks),
			}
			for _, n := range o.Metrics().Reexecutions() {
				lr.Reexecutions += n
			}
			for name, h := range o.Metrics().BlockingPerThreadAll() {
				lr.BlockingPerThread[name] = h.Summary()
			}
			out = append(out, lr)
			if progress != nil {
				progress(lr)
			}
		}
	}
	return out, nil
}
