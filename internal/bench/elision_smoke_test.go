package bench

import "testing"

// TestElisionBenchBodies executes both halves of the barriers-vs-elided
// pair once and checks the counters the report records: the elided run must
// actually prove stores elidable and execute them raw, while the
// all-barriers run must never take a raw path.
func TestElisionBenchBodies(t *testing.T) {
	for _, static := range []bool{false, true} {
		counts := make(map[string]int64)
		r := testing.Benchmark(ElisionBenchBody(static, counts))
		t.Logf("static=%v: %v counts=%v", static, r, counts)
		if static {
			if counts["static_elidable_stores"] == 0 {
				t.Error("analysis proved no stores elidable")
			}
			if counts["raw_stores"] == 0 {
				t.Error("elided run executed no raw stores")
			}
			if counts["barrier_fast_paths"] != 0 {
				t.Errorf("elided run still hit the barrier fast path %d times",
					counts["barrier_fast_paths"])
			}
		} else {
			if counts["raw_stores"] != 0 {
				t.Error("all-barriers run executed raw stores")
			}
			if counts["barrier_fast_paths"] == 0 {
				t.Error("all-barriers run never hit the barrier fast path")
			}
		}
	}
}
