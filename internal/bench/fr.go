// Flight-recorder benchmark bodies: the steady-state cost of one ring
// append (the price every event pays when the recorder is always on) and a
// whole-cell pair running the same contended workload with the recorder
// attached and detached. The append bound is gated — the recorder's entire
// value proposition is that it is cheap enough to never turn off.
package bench

import (
	"testing"

	"repro/internal/fr"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// FlightRecorderAppendBench measures one steady-state Recorder.Emit: every
// string already interned and cached, full default trigger checks running,
// the ring evicting old records as it wraps. This is the per-event price of
// always-on recording; it must stay allocation-free and a few tens of
// nanoseconds.
func FlightRecorderAppendBench(b *testing.B) {
	rec := fr.New(fr.Config{Triggers: fr.DefaultTriggers()})
	// Steady-state shape: a handful of threads cycling over the monitor
	// vocabulary the VM actually emits, so the per-field string caches see
	// the realistic mix of hits and intern-table lookups.
	events := []trace.Event{
		{Kind: trace.MonitorBlocked, Thread: "high0", Object: "shared"},
		{Kind: trace.MonitorAcquired, Thread: "high0", Object: "shared"},
		{Kind: trace.MonitorExit, Thread: "high0", Object: "shared"},
		{Kind: trace.MonitorBlocked, Thread: "low0", Object: "shared"},
		{Kind: trace.MonitorAcquired, Thread: "low0", Object: "shared"},
		{Kind: trace.MonitorExit, Thread: "low0", Object: "shared"},
	}
	// Warm the intern table and caches out of the timed region.
	for _, e := range events {
		rec.Emit(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := events[i%len(events)]
		e.At = simtime.Ticks(i)
		rec.Emit(e)
	}
	b.StopTimer()
}

// FlightRecorderCellBench returns a benchmark body running one contended
// Figure-5-style cell (2 high + 8 low, 40 % writes) on the modified VM,
// with the flight recorder attached (on) or with no sink at all (off). The
// off/on pair in a BENCH report is the recorder's whole-run overhead.
func FlightRecorderCellBench(on bool) func(b *testing.B) {
	return func(b *testing.B) {
		p := CellParams(ScaleSmall, true, Mix{High: 2, Low: 8}, 40)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var sink trace.Sink
			if on {
				sink = fr.New(fr.Config{Triggers: fr.DefaultTriggers()})
			}
			if _, err := runCell(Modified, p, sink, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}
