// Package bench implements the paper's micro-benchmark (§4.1) and the
// harness that regenerates every figure of the evaluation (§4.2).
//
// The benchmark: several low- and high-priority threads contend on one
// lock. Every thread executes a fixed number of synchronized sections; each
// section is an inner loop of interleaved shared reads and writes over a
// buffer, so section execution time is directly proportional to the number
// of shared-data operations. A random pause averaging one scheduler quantum
// precedes each section, randomizing arrival order. Low-priority threads
// run a long inner loop (paper: 500K iterations); high-priority threads run
// a shorter or equal loop (100K / 500K). Thread mixes are 2+8, 5+5 and 8+2
// (high+low); the write ratio sweeps 0..100 %.
//
// Each cell runs twice — on the modified VM (revocation) and on the
// unmodified VM — and reports the total elapsed virtual time of the
// high-priority threads (earliest start to latest finish, Figures 5-6) and
// of all threads (Figures 7-8), normalized per panel to the unmodified VM
// at 100 % reads.
package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// VM selects which virtual machine executes a cell.
type VM int

const (
	// Unmodified is the reference VM (no barriers, no revocation).
	Unmodified VM = iota
	// Modified is the revocation-enabled VM.
	Modified
)

func (v VM) String() string {
	if v == Modified {
		return "MODIFIED"
	}
	return "UNMODIFIED"
}

// Params describes one benchmark cell.
type Params struct {
	HighThreads int
	LowThreads  int
	// Sections is the number of synchronized sections per thread (paper:
	// 100).
	Sections int
	// HighIters / LowIters are the inner-loop lengths (paper: 100K or
	// 500K for high, 500K for low).
	HighIters int
	LowIters  int
	// WritePct is the percentage of inner-loop operations that are writes
	// (0..100).
	WritePct int
	// BufferLen is the shared array the loop walks cyclically.
	BufferLen int
	// Quantum is the scheduler quantum in ticks; the pre-section pause is
	// uniform in [0, 2*PauseMult*Quantum), averaging PauseMult quanta
	// (paper: one quantum → PauseMult 1, the default).
	Quantum   simtime.Ticks
	PauseMult int
	Seed      int64

	// Cost model (ticks). Zero values select the defaults documented in
	// DefaultCosts.
	CostRead, CostWrite, CostLogEntry, CostUndoEntry simtime.Ticks

	// TrackDeps enables §2.2 dependency tracking on the modified VM. The
	// benchmark guards all data with one monitor, so tracking never fires;
	// it is on by default to charge its bookkeeping honestly.
	TrackDeps bool
}

// DefaultCosts fills zero cost fields: a shared-data operation costs 4
// ticks; taking the write-barrier slow path (logging one update) adds 1
// tick (+25 % on a write — a few extra instructions next to a heap store,
// matching the paper's observation that log maintenance is cheap relative
// to the operations themselves); restoring one location during rollback
// costs 1 tick.
func (p *Params) DefaultCosts() {
	if p.CostRead == 0 {
		p.CostRead = 4
	}
	if p.CostWrite == 0 {
		p.CostWrite = 4
	}
	if p.CostLogEntry == 0 {
		p.CostLogEntry = 1
	}
	if p.CostUndoEntry == 0 {
		p.CostUndoEntry = 1
	}
	if p.BufferLen == 0 {
		p.BufferLen = 256
	}
	if p.Quantum == 0 {
		p.Quantum = 1000
	}
	if p.PauseMult == 0 {
		p.PauseMult = 1
	}
}

// CellResult reports one (VM, Params) execution.
type CellResult struct {
	VM     VM
	Params Params
	// HighSpan is the total elapsed time of high-priority threads: from
	// the earliest high start to the latest high finish (§4.1).
	HighSpan simtime.Ticks
	// OverallSpan is the same measure over all threads.
	OverallSpan simtime.Ticks
	Stats       core.Stats
}

// RunCell executes one benchmark cell deterministically.
func RunCell(vm VM, p Params) (CellResult, error) {
	return runCell(vm, p, nil, nil)
}

// RunCellObserved executes one cell with an obs.Observer attached via the
// runtime's Observer option, returning the reconstruction (causal spans,
// latency histograms) alongside the timing result. Observation perturbs
// nothing: virtual time is unaffected by the extra sink.
func RunCellObserved(vm VM, p Params) (CellResult, *obs.Observer, error) {
	o := obs.NewObserver()
	res, err := runCell(vm, p, o, nil)
	return res, o, err
}

// RunCellProfiled executes one cell with the virtual-time profiler
// attached via Config.Profiler, returning the profiler alongside the
// timing result. Like observation, profiling never perturbs virtual time —
// it only attributes the ticks the run would charge anyway.
func RunCellProfiled(vm VM, p Params) (CellResult, *prof.Profiler, error) {
	pr := prof.New()
	res, err := runCell(vm, p, nil, pr)
	return res, pr, err
}

func runCell(vm VM, p Params, observer trace.Sink, profiler *prof.Profiler) (CellResult, error) {
	p.DefaultCosts()
	mode := core.Unmodified
	if vm == Modified {
		mode = core.Revocation
	}
	rt := core.New(core.Config{
		Mode:              mode,
		TrackDependencies: vm == Modified && p.TrackDeps,
		CostRead:          p.CostRead,
		CostWrite:         p.CostWrite,
		CostLogEntry:      p.CostLogEntry,
		CostUndoEntry:     p.CostUndoEntry,
		Observer:          observer,
		Profiler:          profiler,
		Sched:             sched.Config{Quantum: p.Quantum, Seed: p.Seed},
	})
	buf := rt.Heap().AllocArray(p.BufferLen)
	mon := rt.NewMonitor("shared")

	type span struct{ task *core.Task }
	var high, all []span

	spawn := func(name string, prio sched.Priority, iters int, seed int64) *core.Task {
		rng := rand.New(rand.NewSource(seed))
		return rt.Spawn(name, prio, func(tk *core.Task) {
			for s := 0; s < p.Sections; s++ {
				// Random arrival: a pause averaging PauseMult quanta
				// (§4.1: "a short random pause time (on average equal to
				// a single thread quantum) right before an entry to the
				// synchronized section, to ensure random arrival").
				tk.Sleep(simtime.Ticks(rng.Int63n(int64(2*p.Quantum)*int64(p.PauseMult) + 1)))
				tk.Synchronized(mon, func() {
					runInnerLoop(tk, buf, iters, p.WritePct, p.BufferLen)
				})
			}
		})
	}

	for i := 0; i < p.HighThreads; i++ {
		t := spawn(fmt.Sprintf("high%d", i), sched.HighPriority, p.HighIters, p.Seed+int64(i)*7919+1)
		high = append(high, span{t})
		all = append(all, span{t})
	}
	for i := 0; i < p.LowThreads; i++ {
		t := spawn(fmt.Sprintf("low%d", i), sched.LowPriority, p.LowIters, p.Seed+int64(i)*104729+2)
		all = append(all, span{t})
	}
	if err := rt.Run(); err != nil {
		return CellResult{}, err
	}

	measure := func(ss []span) simtime.Ticks {
		if len(ss) == 0 {
			return 0
		}
		start := ss[0].task.Thread().StartedAt()
		end := ss[0].task.Thread().EndedAt()
		for _, s := range ss[1:] {
			if st := s.task.Thread().StartedAt(); st < start {
				start = st
			}
			if en := s.task.Thread().EndedAt(); en > end {
				end = en
			}
		}
		return end - start
	}
	return CellResult{
		VM:          vm,
		Params:      p,
		HighSpan:    measure(high),
		OverallSpan: measure(all),
		Stats:       rt.Stats(),
	}, nil
}

// runInnerLoop executes iters interleaved read/write operations with
// exactly writePct percent writes, spread evenly (the paper interleaves
// reads and writes rather than batching them).
func runInnerLoop(tk *core.Task, buf *heap.Array, iters, writePct, bufLen int) {
	writesSoFar := 0
	for i := 0; i < iters; i++ {
		idx := i % bufLen
		// Even interleaving: after i+1 ops, writes ≈ (i+1)*writePct/100.
		if (i+1)*writePct/100 > writesSoFar {
			tk.WriteElem(buf, idx, heap.Word(i))
			writesSoFar++
		} else {
			tk.ReadElem(buf, idx)
		}
	}
}

// ---------------------------------------------------------------------------
// Figure harness.

// Mix is a thread-count configuration.
type Mix struct {
	High, Low int
}

func (m Mix) String() string { return fmt.Sprintf("%d high + %d low", m.High, m.Low) }

// Mixes are the paper's three configurations, in panel order (a), (b), (c).
var Mixes = []Mix{{2, 8}, {5, 5}, {8, 2}}

// WriteRatios is the paper's x-axis: percent of writes.
var WriteRatios = []int{0, 20, 40, 60, 80, 100}

// Scale selects how large a run is. Shapes are scale-invariant; paper scale
// exists for fidelity, the smaller scales for CI and quick sweeps.
type Scale int

const (
	// ScaleSmall: seconds per figure. Used by tests and testing.B benches.
	ScaleSmall Scale = iota
	// ScaleMedium: tens of seconds per figure. cmd/figures default.
	ScaleMedium
	// ScalePaper: the paper's parameters (100 sections, 500K-iteration
	// low-priority loops). Minutes per figure.
	ScalePaper
)

func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScalePaper:
		return "paper"
	default:
		return "scale(?)"
	}
}

// ParseScale converts a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "paper":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("bench: unknown scale %q (want small, medium or paper)", s)
	}
}

// base returns the scale's parameter template. shortHigh selects the 100K
// (Figures 5/7) vs 500K (Figures 6/8) high-priority loop; at other scales
// the 1:5 ratio between the two variants is preserved.
func (s Scale) base(shortHigh bool) Params {
	// The paper's geometry: a low-priority section (500K operations, with
	// the barrier-bearing loop body) spans a small number of Jikes RVM
	// scheduling quanta of CPU, and the random pause averages one quantum.
	// Each scale preserves section:quantum = 3:2 — the ratio the
	// contention dynamics depend on — so shapes are scale-invariant. (A
	// calibration sweep over ratios 0.5..3 reproduces the paper's panel
	// shapes best at 1.5; see EXPERIMENTS.md.)
	var p Params
	switch s {
	case ScaleSmall:
		p = Params{Sections: 20, LowIters: 1500, HighIters: 1500, BufferLen: 256}
	case ScaleMedium:
		p = Params{Sections: 50, LowIters: 15000, HighIters: 15000, BufferLen: 1024}
	case ScalePaper:
		p = Params{Sections: 100, LowIters: 500000, HighIters: 500000, BufferLen: 4096}
	}
	p.CostRead = 4
	p.CostWrite = 4
	p.Quantum = simtime.Ticks(int(p.CostRead) * p.LowIters * 2 / 3)
	if shortHigh {
		p.HighIters = p.LowIters / 5 // the paper's 100K vs 500K ratio
	}
	p.TrackDeps = true
	p.Seed = 20040815 // ICPP 2004 — any fixed seed keeps runs reproducible
	return p
}

// CellParams builds the parameters for one cell of a figure: the scale's
// template specialized to a thread mix and write ratio. Exposed for
// single-cell runs (cmd/figures -cell) and external harnesses.
func CellParams(s Scale, shortHigh bool, mix Mix, writePct int) Params {
	p := s.base(shortHigh)
	p.HighThreads = mix.High
	p.LowThreads = mix.Low
	p.WritePct = writePct
	return p
}

// Metric selects what a figure measures.
type Metric int

const (
	// HighPriorityTime is the total elapsed time of high-priority threads
	// (Figures 5 and 6).
	HighPriorityTime Metric = iota
	// OverallTime is the total elapsed time of the whole benchmark
	// (Figures 7 and 8).
	OverallTime
)

func (m Metric) String() string {
	if m == OverallTime {
		return "overall elapsed time"
	}
	return "elapsed time of high-priority threads"
}

// Point is one x-position of a panel.
type Point struct {
	WritePct   int
	Modified   float64 // normalized
	Unmodified float64 // normalized
	RawMod     simtime.Ticks
	RawUnmod   simtime.Ticks
	ModStats   core.Stats
}

// Panel is one thread-mix sub-graph of a figure.
type Panel struct {
	Mix    Mix
	Points []Point
}

// Figure is a complete reproduction of one paper figure.
type Figure struct {
	Number    int
	Metric    Metric
	ShortHigh bool // true: high threads run the 100K-equivalent loop
	Scale     Scale
	Panels    []Panel
}

// FigureSpec describes the paper's four evaluation figures.
type FigureSpec struct {
	Number    int
	Metric    Metric
	ShortHigh bool
	Caption   string
}

// Specs indexes the paper's figures by number.
var Specs = map[int]FigureSpec{
	5: {5, HighPriorityTime, true, "Total time for high-priority threads, 100K iterations"},
	6: {6, HighPriorityTime, false, "Total time for high-priority threads, 500K iterations"},
	7: {7, OverallTime, true, "Overall time, 100K iterations"},
	8: {8, OverallTime, false, "Overall time, 500K iterations"},
}

// Progress receives completion callbacks during a figure run; may be nil.
type Progress func(mix Mix, writePct int, vm VM, res CellResult)

// RunFigure regenerates a paper figure at the given scale.
func RunFigure(number int, scale Scale, progress Progress) (Figure, error) {
	spec, ok := Specs[number]
	if !ok {
		return Figure{}, fmt.Errorf("bench: no figure %d in the paper (have 5-8)", number)
	}
	fig := Figure{Number: number, Metric: spec.Metric, ShortHigh: spec.ShortHigh, Scale: scale}
	for _, mix := range Mixes {
		panel := Panel{Mix: mix}
		var norm simtime.Ticks // unmodified @ 0% writes
		for _, wp := range WriteRatios {
			p := CellParams(scale, spec.ShortHigh, mix, wp)

			un, err := RunCell(Unmodified, p)
			if err != nil {
				return Figure{}, fmt.Errorf("bench: unmodified cell %v/%d%%: %w", mix, wp, err)
			}
			if progress != nil {
				progress(mix, wp, Unmodified, un)
			}
			mo, err := RunCell(Modified, p)
			if err != nil {
				return Figure{}, fmt.Errorf("bench: modified cell %v/%d%%: %w", mix, wp, err)
			}
			if progress != nil {
				progress(mix, wp, Modified, mo)
			}

			pick := func(r CellResult) simtime.Ticks {
				if spec.Metric == OverallTime {
					return r.OverallSpan
				}
				return r.HighSpan
			}
			if wp == 0 {
				norm = pick(un)
			}
			panel.Points = append(panel.Points, Point{
				WritePct:   wp,
				Modified:   float64(pick(mo)) / float64(norm),
				Unmodified: float64(pick(un)) / float64(norm),
				RawMod:     pick(mo),
				RawUnmod:   pick(un),
				ModStats:   mo.Stats,
			})
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}

// Summary condenses a set of figures into the paper's headline claims.
type Summary struct {
	// GainPct is the average high-priority elapsed-time gain of the
	// modified VM across all Figure 5+6 cells: (un-mod)/un * 100.
	GainPct float64
	// GainPctFavorable excludes the 8+2 mix, matching the paper's "if we
	// discard the configuration where there are eight high-priority
	// threads" claim.
	GainPctFavorable float64
	// SpeedupFavorable is the mean un/mod ratio over the favorable mixes
	// (paper: "twice as fast").
	SpeedupFavorable float64
	// OverallOverheadPct is the average overall elapsed-time increase of
	// the modified VM across all Figure 7+8 cells (paper: ≈30 %).
	OverallOverheadPct float64
}

// Summarize computes the headline numbers from reproduced figures. highFigs
// are Figures 5/6-style (high-priority metric), overallFigs 7/8-style.
func Summarize(highFigs, overallFigs []Figure) Summary {
	var sum Summary
	var gainAll, gainFav, speedFav []float64
	for _, f := range highFigs {
		for _, panel := range f.Panels {
			fav := !(panel.Mix.High > panel.Mix.Low)
			for _, pt := range panel.Points {
				gain := (float64(pt.RawUnmod) - float64(pt.RawMod)) / float64(pt.RawUnmod) * 100
				gainAll = append(gainAll, gain)
				if fav {
					gainFav = append(gainFav, gain)
					speedFav = append(speedFav, float64(pt.RawUnmod)/float64(pt.RawMod))
				}
			}
		}
	}
	var over []float64
	for _, f := range overallFigs {
		for _, panel := range f.Panels {
			for _, pt := range panel.Points {
				over = append(over, (float64(pt.RawMod)-float64(pt.RawUnmod))/float64(pt.RawUnmod)*100)
			}
		}
	}
	sum.GainPct = mean(gainAll)
	sum.GainPctFavorable = mean(gainFav)
	sum.SpeedupFavorable = mean(speedFav)
	sum.OverallOverheadPct = mean(over)
	return sum
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
