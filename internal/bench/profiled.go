// Profiler overhead recording: like the barriers-vs-elided pair, each
// report carries an off-vs-on wall-clock pair for the virtual-time
// profiler, plus the profiler's own output — the top waste sites of one
// representative cell per thread mix. The pair keeps the "nil = zero cost"
// contract honest across changes; the waste sites give every perf PR a
// target (the ROADMAP's "flamegraph to aim at").
package bench

import (
	"fmt"
	"testing"

	"repro/internal/prof"
)

// ProfiledResult is the profiler record of one cell: the overhead pair and
// the profile digest.
type ProfiledResult struct {
	Name string `json:"name"`
	VM   string `json:"vm"`
	// OffNsPerOp / OnNsPerOp are the cell's wall-clock cost without and
	// with the profiler attached; OverheadPct is the relative increase.
	OffNsPerOp  float64 `json:"off_ns_per_op"`
	OnNsPerOp   float64 `json:"on_ns_per_op"`
	OverheadPct float64 `json:"overhead_pct"`
	// Tick totals per profile dimension. Work+Waste+Sched equals the run's
	// final virtual time; WasteTicks equals core.Stats.WastedTicks.
	WorkTicks  int64 `json:"work_ticks"`
	WasteTicks int64 `json:"waste_ticks"`
	BlockTicks int64 `json:"block_ticks"`
	SchedTicks int64 `json:"sched_ticks"`
	// TopWaste ranks the (method, pc) sites whose ticks rollbacks
	// discarded — where revocation hurts this workload most.
	TopWaste []prof.TopSite `json:"top_waste,omitempty"`
	// TopBlock ranks the contended monitors by blocked ticks.
	TopBlock []prof.TopSite `json:"top_block,omitempty"`
}

// RunProfiled measures the profiler overhead pair and records profile
// digests: one representative modified-VM cell per thread mix (write ratio
// 40 %, ScaleSmall). progress, if non-nil, is called per finished result.
func RunProfiled(progress func(ProfiledResult)) ([]ProfiledResult, error) {
	var out []ProfiledResult
	for _, mix := range Mixes {
		p := CellParams(ScaleSmall, true, mix, 40)
		var runErr error
		off := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunCell(Modified, p); err != nil {
					runErr = err
					b.Skip(err)
					return
				}
			}
		})
		on := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := RunCellProfiled(Modified, p); err != nil {
					runErr = err
					b.Skip(err)
					return
				}
			}
		})
		if runErr != nil {
			return nil, fmt.Errorf("bench: profiled cell %v: %w", mix, runErr)
		}
		// One more profiled run for the digest itself.
		_, pr, err := RunCellProfiled(Modified, p)
		if err != nil {
			return nil, fmt.Errorf("bench: profiled cell %v: %w", mix, err)
		}
		snap := pr.Snapshot()
		offNs := float64(off.T.Nanoseconds()) / float64(off.N)
		onNs := float64(on.T.Nanoseconds()) / float64(on.N)
		res := ProfiledResult{
			Name:        fmt.Sprintf("Profiler/%dhigh%dlow_w40", mix.High, mix.Low),
			VM:          Modified.String(),
			OffNsPerOp:  offNs,
			OnNsPerOp:   onNs,
			OverheadPct: (onNs - offNs) / offNs * 100,
			WorkTicks:   snap.Totals[prof.Work],
			WasteTicks:  snap.Totals[prof.Waste],
			BlockTicks:  snap.Totals[prof.Block],
			SchedTicks:  snap.Totals[prof.Sched],
			TopWaste:    snap.Top(prof.Waste, 5),
			TopBlock:    snap.Top(prof.Block, 5),
		}
		out = append(out, res)
		if progress != nil {
			progress(res)
		}
	}
	return out, nil
}
