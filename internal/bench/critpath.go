// Critical-path digests and the CritPathBuild benchmark: every
// results/BENCH_*.json report records, per thread mix, where the makespan
// of a representative revocation-VM cell actually went (work / waste /
// block / sched on the critical path) and which monitors sit on it —
// the exact-causal-profile counterpart of the Profiler digest's raw
// contention histogram. CritPathBuild times the DAG construction plus
// path extraction over a pre-recorded stream and is gated in CI.
package bench

import (
	"fmt"
	"testing"

	"repro/internal/causal"
	"repro/internal/trace"
)

// CritMonitor is one monitor's attributed ticks in a report digest.
type CritMonitor struct {
	Monitor string `json:"monitor"`
	Ticks   int64  `json:"ticks"`
}

// CritPathResult is the critical-path digest of one cell.
type CritPathResult struct {
	Name   string `json:"name"`
	VM     string `json:"vm"`
	Events int    `json:"events"`
	// FinalClock is the cell's makespan; the class totals below tile it
	// exactly (the grand invariant: longest DAG path == final clock).
	FinalClock int64 `json:"final_clock"`
	WorkTicks  int64 `json:"work_ticks"`
	WasteTicks int64 `json:"waste_ticks"`
	BlockTicks int64 `json:"block_ticks"`
	SleepTicks int64 `json:"sleep_ticks"`
	SchedTicks int64 `json:"sched_ticks"`
	// TopCritical ranks monitors by blocked ticks ON the critical path;
	// TopRaw by blocked ticks across all threads. When the two disagree,
	// the contention histogram is pointing the optimization effort at the
	// wrong lock.
	TopCritical []CritMonitor `json:"top_critical,omitempty"`
	TopRaw      []CritMonitor `json:"top_raw,omitempty"`
}

// RunCellTraced executes one cell with a trace recorder attached,
// returning the full event stream alongside the timing result.
func RunCellTraced(vm VM, p Params) (CellResult, []trace.Event, error) {
	rec := &trace.Recorder{}
	res, err := runCell(vm, p, rec, nil)
	return res, rec.Events(), err
}

// attributeCell builds the happens-before DAG for one recorded cell,
// checks the grand invariant, and digests the critical path.
func attributeCell(name string, events []trace.Event) (CritPathResult, error) {
	g, err := causal.Build(events, causal.Options{})
	if err != nil {
		return CritPathResult{}, err
	}
	if err := g.CheckInvariant(); err != nil {
		return CritPathResult{}, fmt.Errorf("bench: %s: critical-path invariant: %w", name, err)
	}
	a, err := g.CriticalPath()
	if err != nil {
		return CritPathResult{}, err
	}
	digest := func(ms []causal.MonitorTicks) []CritMonitor {
		out := make([]CritMonitor, 0, len(ms))
		for _, m := range ms {
			out = append(out, CritMonitor{Monitor: m.Monitor, Ticks: int64(m.Ticks)})
		}
		return out
	}
	return CritPathResult{
		Name:        name,
		VM:          Modified.String(),
		Events:      len(events),
		FinalClock:  int64(g.FinalClock),
		WorkTicks:   int64(a.ClassTotals[causal.Work]),
		WasteTicks:  int64(a.ClassTotals[causal.Waste]),
		BlockTicks:  int64(a.ClassTotals[causal.Block]),
		SleepTicks:  int64(a.ClassTotals[causal.Sleep]),
		SchedTicks:  int64(a.ClassTotals[causal.Sched]),
		TopCritical: digest(a.TopCritical(3)),
		TopRaw:      digest(a.TopRaw(3)),
	}, nil
}

// RunCritPath records one representative revocation-VM cell per thread mix
// (write ratio 40 %, ScaleSmall — the RunProfiled cells) and attributes
// its critical path. progress, if non-nil, sees each digest as it lands.
func RunCritPath(progress func(CritPathResult)) ([]CritPathResult, error) {
	var out []CritPathResult
	for _, mix := range Mixes {
		p := CellParams(ScaleSmall, true, mix, 40)
		_, events, err := RunCellTraced(Modified, p)
		if err != nil {
			return nil, fmt.Errorf("bench: critpath cell %v: %w", mix, err)
		}
		res, err := attributeCell(fmt.Sprintf("CritPath/%dhigh%dlow_w40", mix.High, mix.Low), events)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
		if progress != nil {
			progress(res)
		}
	}
	return out, nil
}

// CritPathBuildBench times DAG construction + invariant check + critical
// path extraction over a pre-recorded event stream (the first thread mix's
// cell; the recording happens once, outside the timed loop). This is the
// cost a -critpath run adds AFTER the program finishes — the run itself is
// unperturbed — so the gate guards post-processing latency, not VM speed.
func CritPathBuildBench(b *testing.B) {
	p := CellParams(ScaleSmall, true, Mixes[0], 40)
	_, events, err := RunCellTraced(Modified, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := causal.Build(events, causal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := g.CheckInvariant(); err != nil {
			b.Fatal(err)
		}
		if _, err := g.CriticalPath(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events)), "events")
}
