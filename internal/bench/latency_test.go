package bench

import (
	"encoding/json"
	"testing"
)

// TestRunCellObservedMatchesPlain checks observation is a pure read: the
// same cell with and without an observer produces identical virtual-time
// results, and the observed histograms reconcile with the runtime stats.
func TestRunCellObservedMatchesPlain(t *testing.T) {
	p := CellParams(ScaleSmall, true, Mix{2, 2}, 60)
	plain, err := RunCell(Modified, p)
	if err != nil {
		t.Fatal(err)
	}
	observed, o, err := RunCellObserved(Modified, p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.HighSpan != observed.HighSpan || plain.OverallSpan != observed.OverallSpan {
		t.Errorf("observation perturbed the run: plain %d/%d, observed %d/%d",
			plain.HighSpan, plain.OverallSpan, observed.HighSpan, observed.OverallSpan)
	}
	if plain.Stats != observed.Stats {
		t.Errorf("stats diverged:\nplain    %+v\nobserved %+v", plain.Stats, observed.Stats)
	}
	if got, want := o.Metrics().RollbackWasted().Sum(), int64(observed.Stats.WastedTicks); got != want {
		t.Errorf("wasted reconciliation: histogram %d, stats %d", got, want)
	}
	if o.Dropped() != 0 {
		t.Errorf("dropped = %d events", o.Dropped())
	}
}

func TestRunLatencyProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all six observed cells")
	}
	var calls int
	lats, err := RunLatency(func(LatencyResult) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Mixes) * 2; len(lats) != want || calls != want {
		t.Fatalf("got %d results, %d callbacks, want %d", len(lats), calls, want)
	}
	var sawBlocking, sawWaste bool
	for _, lr := range lats {
		if lr.Name == "" || lr.VM == "" {
			t.Errorf("unlabelled result: %+v", lr)
		}
		if lr.RollbackWasted.Sum != lr.WastedTicks {
			t.Errorf("%s/%s: rollback histogram %d != wasted ticks %d",
				lr.Name, lr.VM, lr.RollbackWasted.Sum, lr.WastedTicks)
		}
		if lr.VM == Unmodified.String() && lr.RollbackWasted.Sum != 0 {
			t.Errorf("%s: unmodified VM wasted %d ticks", lr.Name, lr.RollbackWasted.Sum)
		}
		if len(lr.BlockingPerThread) > 0 {
			sawBlocking = true
		}
		if lr.VM == Modified.String() && lr.RollbackWasted.Sum > 0 {
			sawWaste = true
		}
	}
	if !sawBlocking {
		t.Error("no cell recorded blocking time under contention")
	}
	if !sawWaste {
		t.Error("no modified cell recorded rollback waste")
	}
	// The profiles must serialize into the report JSON.
	data, err := json.Marshal(Report{Label: "t", Latency: lats})
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Latency) != len(lats) {
		t.Fatalf("round trip lost latency results: %d != %d", len(back.Latency), len(lats))
	}
}
