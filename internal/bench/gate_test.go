package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLatestReport checks that the gate baselines against the last report
// of the lexicographically newest BENCH_*.json, skipping empty files.
func TestLatestReport(t *testing.T) {
	dir := t.TempDir()

	if _, _, ok, err := LatestReport(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v, want no baseline", ok, err)
	}

	old := Report{Label: "old", Date: "2026-01-01",
		Benchmarks: []BenchResult{{Name: "WriteBarrier", NsPerOp: 10}}}
	mid := Report{Label: "mid", Date: "2026-02-01",
		Benchmarks: []BenchResult{{Name: "WriteBarrier", NsPerOp: 11}}}
	newest := Report{Label: "new", Date: "2026-03-01",
		Benchmarks: []BenchResult{{Name: "WriteBarrier", NsPerOp: 12}}}

	if err := WriteReport(filepath.Join(dir, "BENCH_2026-01-01.json"), old); err != nil {
		t.Fatal(err)
	}
	// Two entries in one file: the last one wins.
	f2 := filepath.Join(dir, "BENCH_2026-02-01.json")
	if err := WriteReport(f2, mid); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(f2, newest); err != nil {
		t.Fatal(err)
	}
	// A newer-named but empty file must be skipped, not chosen.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_2026-04-01.json"), []byte("[]\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, path, ok, err := LatestReport(dir)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v, want baseline", ok, err)
	}
	if rep.Label != "new" || path != f2 {
		t.Fatalf("got label %q from %s, want \"new\" from %s", rep.Label, path, f2)
	}
}

// TestGateVerdicts checks verdict aggregation on synthetic entries: only
// a Regressed entry fails the gate; missing baselines are informational.
func TestGateVerdicts(t *testing.T) {
	g := GateResult{Entries: []GateEntry{
		{Name: "a", Baseline: 100, Current: 119, Regressed: false},
		{Name: "b", Current: 50, Missing: true},
	}}
	if g.Failed() {
		t.Fatal("within-threshold + missing entries must not fail the gate")
	}
	g.Entries = append(g.Entries, GateEntry{Name: "c", Baseline: 100, Current: 121, Regressed: true})
	if !g.Failed() {
		t.Fatal("a regressed entry must fail the gate")
	}
}
