// Benchmark report emission: cmd/figures -json runs the wall-clock
// benchmark suite (the Figure 5–8 panels plus the barrier/rollback
// micro-benchmarks) through testing.Benchmark and appends the results to a
// JSON file, so results/BENCH_<date>.json files record the performance
// trajectory of the mechanism across changes.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"repro/internal/interp"
)

// BenchResult is one benchmark's wall-clock outcome. Stats carries
// benchmark-specific counters (e.g. how many store barriers the static
// elision removed) alongside the timing.
type BenchResult struct {
	Name        string           `json:"name"`
	Iterations  int              `json:"iterations"`
	NsPerOp     float64          `json:"ns_per_op"`
	BytesPerOp  int64            `json:"bytes_per_op"`
	AllocsPerOp int64            `json:"allocs_per_op"`
	Stats       map[string]int64 `json:"stats,omitempty"`
}

// Report is one labelled run of the suite. Files written by WriteReport hold
// a JSON array of Reports, oldest first.
type Report struct {
	Label      string        `json:"label"`
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []BenchResult `json:"benchmarks"`
	// Latency holds the per-thread blocking-time and rollback wasted-work
	// distributions of representative observed cells (see RunLatency).
	Latency []LatencyResult `json:"latency,omitempty"`
	// Profiler holds the profiler-off-vs-on overhead pairs and profile
	// digests (top waste/block sites) of representative cells (see
	// RunProfiled).
	Profiler []ProfiledResult `json:"profiler,omitempty"`
	// CritPath holds the critical-path digests of representative cells —
	// class totals tiling the makespan and the top critical vs raw
	// monitors (see RunCritPath).
	CritPath []CritPathResult `json:"critpath,omitempty"`
}

// measure runs one benchmark body under testing.Benchmark.
func measure(name string, body func(b *testing.B)) BenchResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		body(b)
	})
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	// A body that reports its own "ns/op" metric (e.g. the monitor pair
	// benchmarks, which time two operations per iteration) overrides the
	// per-iteration default.
	if v, ok := r.Extra["ns/op"]; ok {
		nsPerOp = v
	}
	return BenchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     nsPerOp,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// RunReport executes the benchmark suite: the three barrier/rollback
// micro-benchmarks, all twelve figure panels at ScaleSmall, the observed
// latency cells (RunLatency), and the profiler overhead pairs
// (RunProfiled). progress and latProgress, if non-nil, are called with
// each finished result.
func RunReport(label, date string, progress func(BenchResult), latProgress func(LatencyResult)) (Report, error) {
	rep := Report{
		Label:     label,
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	add := func(res BenchResult) {
		rep.Benchmarks = append(rep.Benchmarks, res)
		if progress != nil {
			progress(res)
		}
	}
	add(measure("WriteBarrier", WriteBarrierBench))
	add(measure("ReadBarrier", ReadBarrierBench))
	add(measure("Rollback", RollbackBench))
	add(measure("ElidedWriteBarrier", ElidedWriteBarrierBench))

	// Flight recorder: the per-event append cost and the whole-cell
	// off/on pair, so every report records the overhead of always-on
	// recording alongside the figures it would capture.
	add(measure("FlightRecorderAppend", FlightRecorderAppendBench))

	// Critical-path attribution: the post-run DAG build + path extraction
	// cost over a recorded cell stream (what -critpath adds to a run).
	add(measure("CritPathBuild", CritPathBuildBench))
	add(measure("FlightRecorderCell/off", FlightRecorderCellBench(false)))
	add(measure("FlightRecorderCell/on", FlightRecorderCellBench(true)))

	// Compact lock word: uncontended enter/exit per variant.
	for _, v := range MonitorVariants {
		add(measure("MonitorEnterUncontended/"+v, MonitorEnterUncontendedBench(v)))
		add(measure("MonitorExitUncontended/"+v, MonitorExitUncontendedBench(v)))
	}

	// Whole-monitor elision pair: the same confined-lock loop with real
	// thin-lock monitors and with the certified elision applied; the
	// off/on delta is what the escape analysis buys per monitor op.
	add(measure("ConfinedMonitorEnterExit/off", ConfinedMonitorEnterExitBench(false)))
	add(measure("ConfinedMonitorEnterExit/on", ConfinedMonitorEnterExitBench(true)))

	// Execution-tier dispatch: threaded closures vs fused
	// superinstructions on re-invoked hot methods.
	for _, p := range TierPrograms {
		for _, tier := range []interp.Tier{interp.TierThreaded, interp.TierOpt} {
			add(measure("TierDispatch/"+p.Name+"/"+tier.String(), TierDispatchBench(p, tier)))
		}
	}

	// Barriers-vs-elided pair: identical program, with and without the
	// static analysis; the stats record the elided-store counts.
	for _, v := range []struct {
		name   string
		static bool
	}{{"StaticElision/allBarriers", false}, {"StaticElision/elided", true}} {
		counts := make(map[string]int64)
		res := measure(v.name, ElisionBenchBody(v.static, counts))
		res.Stats = counts
		add(res)
	}

	var figures []int
	for n := range Specs {
		figures = append(figures, n)
	}
	sort.Ints(figures)
	var runErr error
	for _, n := range figures {
		for panel, mix := range Mixes {
			name := fmt.Sprintf("Figure%d/%s_%dhigh%dlow",
				n, string(rune('A'+panel)), mix.High, mix.Low)
			num := n
			pi := panel
			add(measure(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					fig, err := RunFigure(num, ScaleSmall, nil)
					if err != nil {
						runErr = err
						b.Skip(err)
						return
					}
					_ = fig.Panels[pi]
				}
			}))
			if runErr != nil {
				return rep, runErr
			}
		}
	}

	lat, err := RunLatency(latProgress)
	if err != nil {
		return rep, err
	}
	rep.Latency = lat

	profiled, err := RunProfiled(func(pr ProfiledResult) {
		if progress != nil {
			progress(BenchResult{
				Name:       pr.Name + "/on",
				Iterations: 1,
				NsPerOp:    pr.OnNsPerOp,
				Stats: map[string]int64{
					"overhead_pct_x100": int64(pr.OverheadPct * 100),
					"waste_ticks":       pr.WasteTicks,
				},
			})
		}
	})
	if err != nil {
		return rep, err
	}
	rep.Profiler = profiled

	critpath, err := RunCritPath(func(cr CritPathResult) {
		if progress != nil {
			progress(BenchResult{
				Name:       cr.Name,
				Iterations: 1,
				Stats: map[string]int64{
					"final_clock": cr.FinalClock,
					"waste_ticks": cr.WasteTicks,
					"block_ticks": cr.BlockTicks,
				},
			})
		}
	})
	if err != nil {
		return rep, err
	}
	rep.CritPath = critpath
	return rep, nil
}

// LoadReports reads the report array in path; a missing file is an empty
// trajectory. Callers about to run the (slow) suite should call this first
// so an unwritable target fails before the benchmarks run, not after.
func LoadReports(path string) ([]Report, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var reports []Report
	if err := json.Unmarshal(data, &reports); err != nil {
		return nil, fmt.Errorf("bench: %s exists but is not a report array: %v", path, err)
	}
	return reports, nil
}

// WriteReport appends rep to the JSON array in path (creating the file if
// absent), so repeated runs against one file accumulate a trajectory.
func WriteReport(path string, rep Report) error {
	reports, err := LoadReports(path)
	if err != nil {
		return err
	}
	reports = append(reports, rep)
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
