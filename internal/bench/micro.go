// Micro-benchmark bodies for the barrier fast path. They live here (not in
// a _test.go file) so both the internal/core benchmark suite and the
// cmd/figures -json emitter can run the same code: the former via go test
// -bench, the latter via testing.Benchmark when recording a results/BENCH_*
// trajectory file.
package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/sched"
)

// WriteBarrierBench exercises the logging store barrier at steady state:
// one task inside a synchronized section cyclically re-writing the same 64
// object fields, with §2.2 dependency tracking enabled. After the first lap
// over the buffer every store hits a location that is already logged and
// already registered as speculative.
func WriteBarrierBench(b *testing.B) {
	const slots = 64
	rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true, TrackDependencies: true})
	o := rt.Heap().AllocPlain("C", slots)
	m := rt.NewMonitor("m")
	rt.Spawn("w", sched.NormPriority, func(tk *core.Task) {
		tk.Synchronized(m, func() {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tk.WriteField(o, i%slots, heap.Word(i))
			}
			b.StopTimer()
		})
	})
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
}

// ReadBarrierBench exercises the dependency-checking read barrier: a
// low-priority writer parks inside a synchronized section holding
// speculative writes, so the reader's HasForeign fast path fails and every
// read performs the per-location §2.2 check (always a miss: the reader
// touches a different object).
func ReadBarrierBench(b *testing.B) {
	const slots = 64
	rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true, TrackDependencies: true,
		Sched: sched.Config{Quantum: 1 << 40}})
	dirty := rt.Heap().AllocPlain("dirty", slots)
	clean := rt.Heap().AllocPlain("clean", slots)
	m := rt.NewMonitor("m")
	done := false
	rt.Spawn("writer", sched.LowPriority, func(tk *core.Task) {
		tk.Synchronized(m, func() {
			for i := 0; i < slots; i++ {
				tk.WriteField(dirty, i, heap.Word(i))
			}
			for !done {
				tk.Thread().Yield()
			}
		})
	})
	var sink heap.Word
	rt.Spawn("reader", sched.HighPriority, func(tk *core.Task) {
		// Let the writer fill its section first (it runs once we yield;
		// priority queues hand control back afterwards).
		for rt.Stats().EntriesLogged == 0 {
			tk.Thread().Yield()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink = tk.ReadField(clean, i%slots)
		}
		b.StopTimer()
		done = true
	})
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
	_ = sink
}

// RollbackBench measures one full revocation cycle as seen by the
// high-priority requester: detection at acquisition, preemption of the
// owner, reverse replay of the undo log, monitor handoff. The victim's
// section writes each of 100 array slots 10 times, so the log replay covers
// 100 locations (first-write-wins; 1000 entries before dedup existed).
func RollbackBench(b *testing.B) {
	const slots, laps = 100, 10
	rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true, Sched: sched.Config{Quantum: 1 << 40}})
	a := rt.Heap().AllocArray(slots)
	m := rt.NewMonitor("m")
	ready, done := false, false
	rt.Spawn("low", sched.LowPriority, func(tk *core.Task) {
		for !done {
			tk.Synchronized(m, func() {
				if done {
					return
				}
				for k := 0; k < slots*laps; k++ {
					tk.WriteElem(a, k%slots, heap.Word(k))
				}
				ready = true
				// Yield until revoked (virtual time is frozen under
				// NoCosts, so quantum expiry never preempts for us).
				for !done && ready {
					tk.Thread().Yield()
					tk.YieldPoint() // delivers the pending revocation
				}
			})
		}
	})
	rt.Spawn("high", sched.HighPriority, func(tk *core.Task) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for !ready {
				tk.Thread().Yield()
			}
			ready = false
			tk.Synchronized(m, func() {})
		}
		b.StopTimer()
		done = true
	})
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
	if got := rt.Stats().Rollbacks; got < int64(b.N) {
		b.Fatalf("only %d rollbacks in %d iterations", got, b.N)
	}
}
