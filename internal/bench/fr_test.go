package bench

import (
	"testing"

	"repro/internal/fr"
)

// TestFlightRecorderAppendBudget pins the recorder's headline contract: a
// steady-state append stays allocation-free and under 50 ns. The
// allocation bound is exact (the Go allocator is deterministic); the
// timing bound takes the best of five runs so scheduler noise on shared
// CI machines — including the parallel packages of a full `go test ./...`
// competing for cores — cannot fail a healthy build.
func TestFlightRecorderAppendBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing budget under -short")
	}
	const budgetNs = 50.0
	best := measure("FlightRecorderAppend", FlightRecorderAppendBench)
	for rep := 1; rep < 5; rep++ {
		if r := measure("FlightRecorderAppend", FlightRecorderAppendBench); r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	if best.AllocsPerOp != 0 {
		t.Errorf("steady-state append allocates: %d allocs/op (%d B/op)", best.AllocsPerOp, best.BytesPerOp)
	}
	if best.NsPerOp >= budgetNs {
		t.Errorf("steady-state append too slow: %.1f ns/op, budget %.0f", best.NsPerOp, budgetNs)
	}
}

// TestFlightRecorderCellNonPerturbing runs the contended 2+8 cell bare and
// with the recorder attached: virtual-time results must be identical (the
// recorder is a pure observer) and the ring must actually hold the run's
// tail. This is the correctness half of the off/on overhead pair.
func TestFlightRecorderCellNonPerturbing(t *testing.T) {
	p := CellParams(ScaleSmall, true, Mix{High: 2, Low: 8}, 40)
	bare, err := runCell(Modified, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := fr.New(fr.Config{Triggers: fr.DefaultTriggers()})
	observed, err := runCell(Modified, p, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bare.HighSpan != observed.HighSpan || bare.OverallSpan != observed.OverallSpan || bare.Stats != observed.Stats {
		t.Errorf("recorder perturbed the cell:\nbare     %+v\nobserved %+v", bare, observed)
	}
	if rec.Len() == 0 {
		t.Error("recorder captured no events")
	}
	events, err := rec.Events()
	if err != nil {
		t.Fatalf("ring decode: %v", err)
	}
	if len(events) != rec.Len() {
		t.Errorf("decoded %d events, ring reports %d", len(events), rec.Len())
	}
}
