// Static-elision benchmark: the same store-heavy program executed on the
// revocation VM with every store barriered versus with the
// internal/analysis elision applied, quantifying what the §1.1 static
// optimisation buys end-to-end. Lives outside _test.go for the same reason
// as micro.go: cmd/figures -json records it in the trajectory file.
package bench

import (
	"io"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

// elisionBenchProgram is store-heavy by construction: the hot helper writes
// a fresh object and a global outside any section on every lap (all
// statically elidable), while the small synchronized section keeps the
// write barrier's logging path live for comparison. The lock is published
// to a static so the escape analysis cannot prove it thread-confined —
// whole-monitor elision would otherwise remove the very logging path the
// barriers half of the pair measures.
const elisionBenchProgram = `
static g = 0
static lockRef = 0
class Lock {
    unused
}
class L {
    f
}
thread main priority 5 run main
method main locals 2 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    const 200
    store 1
  loop:
    load 1
    ifz done
    invoke hot
    sync 0 {
        getstatic g
        const 1
        add
        putstatic g
    }
    load 1
    const 1
    sub
    store 1
    goto loop
  done:
    return
}
method hot locals 1 {
    newobj L
    store 0
    load 0
    const 1
    putfield L.f
    getstatic g
    const 1
    add
    putstatic g
    return
}
`

// ElisionBenchBody returns a benchmark body that runs the program
// end-to-end b.N times. With static=true the rewritten program is analyzed
// and elided first (outside the timed region); counts, when non-nil, is
// filled with the analysis and runtime store statistics of the last run so
// the report records how many barriers the build removed.
func ElisionBenchBody(static bool, counts map[string]int64) func(b *testing.B) {
	return func(b *testing.B) {
		prog, err := rewrite.Rewrite(bytecode.MustAssemble(elisionBenchProgram))
		if err != nil {
			b.Fatal(err)
		}
		var facts *analysis.Facts
		if static {
			facts, err = analysis.Analyze(prog)
			if err != nil {
				b.Fatal(err)
			}
			rewrite.ApplyStaticElision(prog, facts)
		}
		var st core.Stats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt := core.New(core.Config{
				Mode: core.Revocation, NoCosts: true,
				Sched: sched.Config{Quantum: 1 << 40},
			})
			if _, err := interp.Run(rt, prog, interp.Options{
				Rewritten: true, Facts: facts, Out: io.Discard,
			}); err != nil {
				b.Fatal(err)
			}
			st = rt.Stats()
		}
		b.StopTimer()
		if counts != nil {
			counts["entries_logged"] = st.EntriesLogged
			counts["raw_stores"] = st.RawStores
			counts["barrier_fast_paths"] = st.BarrierFastPaths
			if facts != nil {
				counts["static_total_stores"] = int64(facts.TotalStores)
				counts["static_elidable_stores"] = int64(facts.ElidableStores)
				counts["static_never_held"] = int64(facts.NeverHeldStores)
				counts["static_fresh_target"] = int64(facts.FreshStores)
			}
		}
	}
}
