// CI bench-regression gate: re-measures the key wall-clock
// micro-benchmarks and compares them against the most recent committed
// results/BENCH_*.json trajectory entry, failing when any key ns/op
// regresses past a threshold.
package bench

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"repro/internal/interp"
)

// gateReps is how many times each key benchmark runs in the gate; the best
// (minimum) ns/op is compared. Minimum-of-N is the standard defense
// against scheduler noise on shared CI machines: slowdowns are noise,
// speedups are not.
const gateReps = 3

// KeyBench is one gated benchmark.
type KeyBench struct {
	Name string
	Body func(b *testing.B)
}

// KeyBenches returns the ns/op series the regression gate guards: the
// write-barrier fast paths, the flight recorder's steady-state append,
// the critical-path DAG build over a recorded cell stream, the
// compact lock word's uncontended operations (including the "confined"
// charge-only no-op a certified whole-monitor elision compiles to), the
// ConfinedMonitorEnterExit off/on pair the escape analysis buys end to
// end, and the execution-tier dispatch comparison. The
// "nonrevocable" monitor variant is recorded in reports but NOT gated:
// it allocates per operation, so GC timing swings it far past any
// useful threshold on shared CI machines.
func KeyBenches() []KeyBench {
	kb := []KeyBench{
		{"WriteBarrier", WriteBarrierBench},
		{"ElidedWriteBarrier", ElidedWriteBarrierBench},
		{"FlightRecorderAppend", FlightRecorderAppendBench},
		{"CritPathBuild", CritPathBuildBench},
	}
	for _, v := range []string{"thin", "inflated", "confined"} {
		kb = append(kb, KeyBench{"MonitorEnterUncontended/" + v, MonitorEnterUncontendedBench(v)})
		kb = append(kb, KeyBench{"MonitorExitUncontended/" + v, MonitorExitUncontendedBench(v)})
	}
	kb = append(kb,
		KeyBench{"ConfinedMonitorEnterExit/off", ConfinedMonitorEnterExitBench(false)},
		KeyBench{"ConfinedMonitorEnterExit/on", ConfinedMonitorEnterExitBench(true)},
	)
	for _, p := range TierPrograms {
		for _, tier := range []interp.Tier{interp.TierThreaded, interp.TierOpt} {
			kb = append(kb, KeyBench{"TierDispatch/" + p.Name + "/" + tier.String(), TierDispatchBench(p, tier)})
		}
	}
	return kb
}

// GateEntry is one benchmark's verdict.
type GateEntry struct {
	Name     string  `json:"name"`
	Baseline float64 `json:"baseline_ns_per_op"` // 0 when missing from baseline
	Current  float64 `json:"current_ns_per_op"`
	DeltaPct float64 `json:"delta_pct"` // (current-baseline)/baseline*100
	// Missing: the baseline report predates this benchmark — informational.
	Missing bool `json:"missing,omitempty"`
	// Regressed: current exceeds baseline by more than the threshold.
	Regressed bool `json:"regressed,omitempty"`
}

// GateResult is the full gate outcome plus the fresh measurements as a
// Report, ready to append to a trajectory file (the CI artifact).
type GateResult struct {
	BaselinePath  string
	BaselineLabel string
	BaselineDate  string
	Threshold     float64 // fractional, e.g. 0.20
	Entries       []GateEntry
	Report        Report
}

// Failed reports whether any gated benchmark regressed past the threshold.
func (g GateResult) Failed() bool {
	for _, e := range g.Entries {
		if e.Regressed {
			return true
		}
	}
	return false
}

// LatestReport finds the newest results/BENCH_*.json in dir (the date-named
// files sort lexicographically) and returns its last report. ok is false
// when the directory holds no trajectory yet.
func LatestReport(dir string) (Report, string, bool, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return Report{}, "", false, err
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		reports, err := LoadReports(matches[i])
		if err != nil {
			return Report{}, "", false, err
		}
		if len(reports) > 0 {
			return reports[len(reports)-1], matches[i], true, nil
		}
	}
	return Report{}, "", false, nil
}

// RunGate measures every key benchmark (best of gateReps) and compares it
// against the latest committed trajectory entry in resultsDir. progress,
// if non-nil, sees each verdict as it lands.
func RunGate(resultsDir, label, date string, threshold float64, progress func(GateEntry)) (GateResult, error) {
	baseline, path, ok, err := LatestReport(resultsDir)
	if err != nil {
		return GateResult{}, err
	}
	if !ok {
		return GateResult{}, fmt.Errorf("bench: no BENCH_*.json trajectory in %s to gate against", resultsDir)
	}
	base := make(map[string]float64, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b.NsPerOp
	}

	g := GateResult{
		BaselinePath:  path,
		BaselineLabel: baseline.Label,
		BaselineDate:  baseline.Date,
		Threshold:     threshold,
	}
	g.Report = Report{
		Label:     label,
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	for _, kb := range KeyBenches() {
		best := measure(kb.Name, kb.Body)
		for rep := 1; rep < gateReps; rep++ {
			if r := measure(kb.Name, kb.Body); r.NsPerOp < best.NsPerOp {
				best = r
			}
		}
		g.Report.Benchmarks = append(g.Report.Benchmarks, best)

		e := GateEntry{Name: kb.Name, Current: best.NsPerOp}
		if b, found := base[kb.Name]; found && b > 0 {
			e.Baseline = b
			e.DeltaPct = (best.NsPerOp - b) / b * 100
			e.Regressed = best.NsPerOp > b*(1+threshold)
		} else {
			e.Missing = true
		}
		g.Entries = append(g.Entries, e)
		if progress != nil {
			progress(e)
		}
	}
	return g, nil
}
