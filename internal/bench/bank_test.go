package bench

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/simtime"
)

func TestBankAllProtocolsPreserveInvariants(t *testing.T) {
	for _, proto := range baseline.Protocols {
		t.Run(proto.String(), func(t *testing.T) {
			res, err := RunBank(proto, DefaultBankParams())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Conserved {
				t.Error("total money not conserved")
			}
			if !res.ConsistentObservations {
				t.Error("inconsistent balance/checksum pair observed")
			}
			if res.AuditWorst <= 0 {
				t.Error("no audit latencies recorded")
			}
		})
	}
}

func TestBankDeterministic(t *testing.T) {
	a, err := RunBank(baseline.Revocation, DefaultBankParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBank(baseline.Revocation, DefaultBankParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.AuditWorst != b.AuditWorst || a.Stats != b.Stats {
		t.Fatalf("runs differ:\n%+v\n%+v", a, b)
	}
}

func TestBankRevocationImprovesAuditLatency(t *testing.T) {
	p := DefaultBankParams()
	plain, err := RunBank(baseline.Unmodified, p)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := RunBank(baseline.Revocation, p)
	if err != nil {
		t.Fatal(err)
	}
	if rev.Stats.Rollbacks == 0 {
		t.Fatal("no rollbacks: the workload is not contended enough to test anything")
	}
	if rev.AuditWorst >= plain.AuditWorst {
		t.Errorf("revocation worst audit latency %d not better than plain %d",
			rev.AuditWorst, plain.AuditWorst)
	}
}

func TestBankRandomOrderTransfersNeedRevocation(t *testing.T) {
	p := DefaultBankParams()
	p.OrderedTransfers = false
	p.Rounds = 4
	// The revocation protocol detects and breaks the deadlocks.
	res, err := RunBank(baseline.Revocation, p)
	if err != nil {
		t.Fatalf("revocation wedged on random-order transfers: %v", err)
	}
	if !res.Conserved || !res.ConsistentObservations {
		t.Fatalf("invariants violated: %+v", res)
	}
	// Plain blocking wedges on the same schedule.
	if _, err := RunBank(baseline.Unmodified, p); err == nil {
		t.Log("note: plain blocking survived this seed (no deadlock formed); the revocation assertion above is the essential one")
	}
}

func TestBankScalesWithParams(t *testing.T) {
	small := DefaultBankParams()
	small.Rounds = 2
	big := DefaultBankParams()
	big.Rounds = 8
	rs, err := RunBank(baseline.Revocation, small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunBank(baseline.Revocation, big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Elapsed <= rs.Elapsed {
		t.Fatalf("more rounds did not take longer: %d vs %d", rb.Elapsed, rs.Elapsed)
	}
}

func TestBankSectionWorkDrivesInversions(t *testing.T) {
	p := DefaultBankParams()
	p.SectionWork = 4 * simtime.Ticks(p.Quantum)
	res, err := RunBank(baseline.Revocation, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Inversions == 0 {
		t.Fatal("long batch sections produced no inversions")
	}
}
