package bench

import (
	"fmt"
	"io"
	"strings"
)

// panelLabels mirror the paper's sub-figure labels.
var panelLabels = []string{"(a)", "(b)", "(c)"}

// Render writes a figure as aligned text tables, one per panel, in the
// layout of the paper's plots: write ratio on the x-axis, the MODIFIED and
// UNMODIFIED series normalized to UNMODIFIED at 100 % reads.
func (f Figure) Render(w io.Writer) {
	spec := Specs[f.Number]
	fmt.Fprintf(w, "Figure %d: %s  [scale=%s]\n", f.Number, spec.Caption, f.Scale)
	for i, panel := range f.Panels {
		label := "(?)"
		if i < len(panelLabels) {
			label = panelLabels[i]
		}
		fmt.Fprintf(w, "\n  %s %s\n", label, panel.Mix)
		fmt.Fprintf(w, "    %-8s %-10s %-12s %-14s %-14s\n", "writes%", "MODIFIED", "UNMODIFIED", "raw-mod", "raw-unmod")
		for _, pt := range panel.Points {
			fmt.Fprintf(w, "    %-8d %-10.3f %-12.3f %-14d %-14d\n",
				pt.WritePct, pt.Modified, pt.Unmodified, pt.RawMod, pt.RawUnmod)
		}
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the figure in long form: figure,panel,mix,writes,vm,
// normalized,raw,rollbacks,reexecutions.
func (f Figure) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, "figure,panel,high,low,writes_pct,vm,normalized,raw_ticks,rollbacks,reexecutions")
	for i, panel := range f.Panels {
		for _, pt := range panel.Points {
			fmt.Fprintf(w, "%d,%s,%d,%d,%d,MODIFIED,%.4f,%d,%d,%d\n",
				f.Number, strings.Trim(panelLabels[i], "()"), panel.Mix.High, panel.Mix.Low,
				pt.WritePct, pt.Modified, pt.RawMod, pt.ModStats.Rollbacks, pt.ModStats.Reexecutions)
			fmt.Fprintf(w, "%d,%s,%d,%d,%d,UNMODIFIED,%.4f,%d,0,0\n",
				f.Number, strings.Trim(panelLabels[i], "()"), panel.Mix.High, panel.Mix.Low,
				pt.WritePct, pt.Unmodified, pt.RawUnmod)
		}
	}
}

// RenderSummary writes the headline-claims comparison.
func (s Summary) Render(w io.Writer) {
	fmt.Fprintln(w, "Headline claims (paper vs reproduced):")
	fmt.Fprintf(w, "  high-priority gain, favorable mixes (2+8, 5+5): paper 25-100%%, avg; ours %.0f%%\n", s.GainPctFavorable)
	fmt.Fprintf(w, "  high-priority gain, all mixes:                  paper avg 78%%;   ours %.0f%%\n", s.GainPct)
	fmt.Fprintf(w, "  speedup on favorable mixes:                     paper ~2x;       ours %.2fx\n", s.SpeedupFavorable)
	fmt.Fprintf(w, "  overall elapsed-time overhead of modified VM:   paper ~30%%;      ours %.0f%%\n", s.OverallOverheadPct)
}
