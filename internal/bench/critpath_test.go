package bench

import (
	"encoding/json"
	"testing"
)

// TestRunCellTracedMatchesPlain checks trace recording is a pure read —
// the same cell with and without the recorder produces identical
// virtual-time results — and that the recorded stream satisfies the
// critical-path grand invariant (longest DAG path == final clock).
func TestRunCellTracedMatchesPlain(t *testing.T) {
	p := CellParams(ScaleSmall, true, Mix{2, 2}, 60)
	plain, err := RunCell(Modified, p)
	if err != nil {
		t.Fatal(err)
	}
	traced, events, err := RunCellTraced(Modified, p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.HighSpan != traced.HighSpan || plain.OverallSpan != traced.OverallSpan {
		t.Errorf("recording perturbed the run: plain %d/%d, traced %d/%d",
			plain.HighSpan, plain.OverallSpan, traced.HighSpan, traced.OverallSpan)
	}
	if plain.Stats != traced.Stats {
		t.Errorf("stats diverged:\nplain  %+v\ntraced %+v", plain.Stats, traced.Stats)
	}
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	res, err := attributeCell("cell", events)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.WorkTicks + res.WasteTicks + res.BlockTicks + res.SleepTicks + res.SchedTicks
	if sum != res.FinalClock {
		t.Errorf("class totals %d do not tile the makespan %d", sum, res.FinalClock)
	}
	if res.WasteTicks == 0 && traced.Stats.WastedTicks > 0 {
		// The run rolled work back; some of it may legitimately be off
		// the critical path, but a contended small cell with rollbacks
		// essentially always has waste on it. Warn loudly via failure
		// only on the reconciliation that must hold:
		t.Logf("note: %d wasted ticks, none on the critical path", traced.Stats.WastedTicks)
	}
}

func TestRunCritPathReport(t *testing.T) {
	if testing.Short() {
		t.Skip("records and attributes every mix")
	}
	var calls int
	results, err := RunCritPath(func(CritPathResult) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Mixes) || calls != len(Mixes) {
		t.Fatalf("got %d results, %d callbacks, want %d", len(results), calls, len(Mixes))
	}
	for _, cr := range results {
		if cr.Name == "" || cr.VM == "" || cr.Events == 0 || cr.FinalClock == 0 {
			t.Errorf("degenerate digest: %+v", cr)
		}
		if len(cr.TopRaw) == 0 {
			t.Errorf("%s: a contended cell has no raw contention", cr.Name)
		}
	}
	// The digests must survive the report JSON round trip.
	data, err := json.Marshal(Report{Label: "t", CritPath: results})
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.CritPath) != len(results) {
		t.Fatalf("round trip lost critpath results: %d != %d", len(back.CritPath), len(results))
	}
}
