package bench

import "testing"

// TestConfinedMonitorBudget pins the headline contract of whole-monitor
// elision: the charge-only no-op a certified confined enter/exit compiles
// to stays allocation-free and under 3 ns per operation. The allocation
// bound is exact; the timing bound takes the best of five runs so
// scheduler noise on shared CI machines cannot fail a healthy build
// (steady-state measurements land around 1 ns).
func TestConfinedMonitorBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing budget under -short")
	}
	const budgetNs = 3.0
	best := measure("MonitorEnterUncontended/confined", MonitorEnterUncontendedBench("confined"))
	for rep := 1; rep < 5; rep++ {
		if r := measure("MonitorEnterUncontended/confined", MonitorEnterUncontendedBench("confined")); r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	if best.AllocsPerOp != 0 {
		t.Errorf("confined no-op allocates: %d allocs/op (%d B/op)", best.AllocsPerOp, best.BytesPerOp)
	}
	if best.NsPerOp >= budgetNs {
		t.Errorf("confined no-op too slow: %.2f ns/op, budget %.0f", best.NsPerOp, budgetNs)
	}
}

// TestConfinedElisionSpeedsUpMonitors is the end-to-end half of the
// off/on pair: the same confined-lock loop must get strictly cheaper per
// monitor operation when the certified whole-monitor elision is applied.
// Best-of-three on both halves keeps one noisy run from flipping the
// comparison; steady-state measurements show roughly a 2x gap.
func TestConfinedElisionSpeedsUpMonitors(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison under -short")
	}
	bestOf := func(elided bool) float64 {
		best := measure("ConfinedMonitorEnterExit", ConfinedMonitorEnterExitBench(elided)).NsPerOp
		for rep := 1; rep < 3; rep++ {
			if r := measure("ConfinedMonitorEnterExit", ConfinedMonitorEnterExitBench(elided)).NsPerOp; r < best {
				best = r
			}
		}
		return best
	}
	off, on := bestOf(false), bestOf(true)
	if on >= off {
		t.Errorf("whole-monitor elision did not pay: off=%.1f ns/op, on=%.1f ns/op", off, on)
	}
	t.Logf("confined monitor op: off=%.1f ns/op, on=%.1f ns/op", off, on)
}
