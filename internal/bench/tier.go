// Micro-benchmark bodies for the compact lock word and the tier-3 fused
// compiler. Like micro.go, they live outside _test.go files so the go test
// suite (bench_test.go at the repo root) and the cmd/figures -json emitter
// run the same code.
package bench

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/sched"
)

// MonitorVariants are the uncontended-acquisition shapes the lock-word
// benchmarks cover: "thin" is the single-word fast path, "inflated" pins
// the monitor on the full prioritized-queue representation
// (Config.DisableThinLocks), "nonrevocable" goes through the core
// engine's fused non-revocable entry — the path tier-3 compiles statically
// proven sections to, including section-frame bookkeeping — and
// "confined" is the charge-only no-op a certified thread-confined
// enter/exit compiles to (the whole-monitor elision of the escape pass):
// no lock word is touched at all, only the elision counter.
var MonitorVariants = []string{"thin", "inflated", "nonrevocable", "confined"}

// monitorPairBench builds the shared enter+exit measurement. One benchmark
// iteration is one uncontended monitorenter plus its matching monitorexit;
// the reported ns/op metric is per OPERATION (elapsed / 2N), which is what
// the Enter and Exit benchmarks both surface — on an uncontended monitor
// the two halves are inseparable without skewing either.
func monitorPairBench(variant string) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := core.Config{Mode: core.Revocation, NoCosts: true}
		if variant == "inflated" {
			cfg.DisableThinLocks = true
		}
		rt := core.New(cfg)
		m := rt.NewMonitor("m")
		rt.Spawn("t", sched.NormPriority, func(tk *core.Task) {
			th := tk.Thread()
			b.ResetTimer()
			switch variant {
			case "nonrevocable":
				for i := 0; i < b.N; i++ {
					tk.EngineEnterNonRevocable(m, "bench")
					tk.EngineExit(m)
				}
			case "confined":
				// The certified no-op never consults the monitor: the
				// runtime work of an elided enter or exit is one stats
				// increment (the interpreter's null check is on its own
				// operand stack, not on the lock word).
				for i := 0; i < b.N; i++ {
					tk.CountConfinedElision()
					tk.CountConfinedElision()
				}
			default:
				for i := 0; i < b.N; i++ {
					m.TryEnter(th)
					m.Exit(th)
				}
			}
			b.StopTimer()
		})
		if err := rt.Run(); err != nil {
			b.Fatal(err)
		}
		switch variant {
		case "thin":
			if m.Inflations() != 0 {
				b.Fatalf("thin variant inflated %d times", m.Inflations())
			}
		case "inflated":
			if !m.Inflated() || m.ThinAcquisitions() != 0 {
				b.Fatalf("inflated variant took %d thin acquisitions", m.ThinAcquisitions())
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(2*b.N), "ns/op")
	}
}

// MonitorEnterUncontendedBench measures one uncontended monitorenter on the
// given lock-word variant (see monitorPairBench for the pairing).
func MonitorEnterUncontendedBench(variant string) func(b *testing.B) {
	return monitorPairBench(variant)
}

// MonitorExitUncontendedBench measures one uncontended monitorexit on the
// given lock-word variant (see monitorPairBench for the pairing).
func MonitorExitUncontendedBench(variant string) func(b *testing.B) {
	return monitorPairBench(variant)
}

// ElidedWriteBarrierBench measures a store whose barrier static analysis
// removed: the exact runtime sequence of the RAW opcodes — the elision
// counter, the plain heap store, and the (disabled) race-sanitizer check.
// The universal yield point every instruction pays is excluded; compare
// against WriteBarrierBench for the full logging barrier.
func ElidedWriteBarrierBench(b *testing.B) {
	const slots = 64
	rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true})
	o := rt.Heap().AllocPlain("C", slots)
	rt.Spawn("w", sched.NormPriority, func(tk *core.Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tk.CountRawStore()
			o.Set(i%slots, heap.Word(i))
			tk.RaceRawWriteField(o, i%slots)
		}
		b.StopTimer()
	})
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
}

// TierProgram is one bytecode workload for the dispatch comparison.
type TierProgram struct {
	Name string
	Src  string
}

// TierPrograms are the dispatch workloads: both re-invoke their inner
// method often enough to cross TierOpt's default hotness threshold, so an
// "opt" run compiles the hot code to fused superinstructions while a
// "threaded" run dispatches closure by closure.
var TierPrograms = []TierProgram{
	{
		// A compute loop re-entered via INVOKE: straight-line arithmetic
		// runs that fusion collapses to one dispatch each.
		Name: "hotloop",
		Src: `
static acc = 0
thread t priority 5 run main
method main locals 1 {
    const 300
    store 0
  outer:
    load 0
    ifz done
    invoke step
    pop
    load 0
    const 1
    sub
    store 0
    goto outer
  done:
    return
}
method step locals 1 returns {
    const 200
    store 0
  loop:
    load 0
    ifz done
    getstatic acc
    load 0
    add
    putstatic acc
    load 0
    const 1
    sub
    store 0
    goto loop
  done:
    getstatic acc
    ireturn
}
`,
	},
	{
		// Call-heavy: deep INVOKE/RETURN chains exercising the
		// compile-time-resolved call sites.
		Name: "calls",
		Src: `
static acc = 0
thread t priority 5 run main
method main locals 1 {
    const 4000
    store 0
  outer:
    load 0
    ifz done
    load 0
    invoke add3
    pop
    load 0
    const 1
    sub
    store 0
    goto outer
  done:
    return
}
method add3 args 1 locals 0 returns {
    load 0
    invoke add2
    ireturn
}
method add2 args 1 locals 0 returns {
    load 0
    invoke add1
    ireturn
}
method add1 args 1 locals 2 returns {
    getstatic acc
    load 0
    add
    load 0
    mul
    load 0
    sub
    store 1
    load 1
    load 0
    add
    load 1
    mul
    load 1
    sub
    putstatic acc
    getstatic acc
    ireturn
}
`,
	},
}

// TierDispatchBench runs one TierProgram end to end per iteration on the
// given execution tier (fresh runtime and Env each time, so per-run
// compilation is part of the measured cost for every tier).
func TierDispatchBench(p TierProgram, tier interp.Tier) func(b *testing.B) {
	return func(b *testing.B) {
		prog := bytecode.MustAssemble(p.Src)
		for i := 0; i < b.N; i++ {
			rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true})
			if _, err := interp.Run(rt, prog.Clone(), interp.Options{Tier: tier}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
