package bench

import (
	"encoding/json"
	"testing"

	"repro/internal/prof"
)

// TestRunCellProfiledMatchesPlain checks profiling is a pure read — the
// same cell with and without the profiler produces identical virtual-time
// results — and that the profile reconciles with the runtime stats.
func TestRunCellProfiledMatchesPlain(t *testing.T) {
	p := CellParams(ScaleSmall, true, Mix{2, 2}, 60)
	plain, err := RunCell(Modified, p)
	if err != nil {
		t.Fatal(err)
	}
	profiled, pr, err := RunCellProfiled(Modified, p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.HighSpan != profiled.HighSpan || plain.OverallSpan != profiled.OverallSpan {
		t.Errorf("profiling perturbed the run: plain %d/%d, profiled %d/%d",
			plain.HighSpan, plain.OverallSpan, profiled.HighSpan, profiled.OverallSpan)
	}
	if plain.Stats != profiled.Stats {
		t.Errorf("stats diverged:\nplain    %+v\nprofiled %+v", plain.Stats, profiled.Stats)
	}
	if got, want := pr.Total(prof.Waste), int64(profiled.Stats.WastedTicks); got != want {
		t.Errorf("waste reconciliation: profile %d, stats %d", got, want)
	}
	if pr.Total(prof.Work) == 0 {
		t.Error("no work ticks attributed")
	}
	if pr.Total(prof.Block) == 0 {
		t.Error("a contended cell blocked no ticks")
	}
	// Per-thread attribution: every bench thread appears as a root.
	snap := pr.Snapshot()
	roots := map[string]bool{}
	for _, smp := range snap.Dims[prof.Work] {
		roots[smp.Stack[len(smp.Stack)-1].Func] = true
	}
	for _, want := range []string{"high0", "low0"} {
		if !roots[want] {
			t.Errorf("no work attributed to thread %s (roots %v)", want, roots)
		}
	}
}

func TestRunProfiledReport(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks every mix off and on")
	}
	var calls int
	results, err := RunProfiled(func(ProfiledResult) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Mixes) || calls != len(Mixes) {
		t.Fatalf("got %d results, %d callbacks, want %d", len(results), calls, len(Mixes))
	}
	for _, pr := range results {
		if pr.Name == "" || pr.VM == "" {
			t.Errorf("unlabelled result: %+v", pr)
		}
		if pr.OffNsPerOp <= 0 || pr.OnNsPerOp <= 0 {
			t.Errorf("%s: non-positive timings %+v", pr.Name, pr)
		}
		if pr.WorkTicks == 0 {
			t.Errorf("%s: no work ticks", pr.Name)
		}
		if pr.WasteTicks > 0 && len(pr.TopWaste) == 0 {
			t.Errorf("%s: %d waste ticks but no top sites", pr.Name, pr.WasteTicks)
		}
	}
	// The digests must survive the report JSON round trip.
	data, err := json.Marshal(Report{Label: "t", Profiler: results})
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Profiler) != len(results) {
		t.Fatalf("round trip lost profiler results: %d != %d", len(back.Profiler), len(results))
	}
}
