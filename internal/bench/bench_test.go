package bench

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func smallParams() Params {
	p := ScaleSmall.base(true)
	p.HighThreads = 2
	p.LowThreads = 3
	p.Sections = 4
	p.WritePct = 40
	return p
}

func TestRunCellDeterministic(t *testing.T) {
	p := smallParams()
	a, err := RunCell(Modified, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(Modified, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.HighSpan != b.HighSpan || a.OverallSpan != b.OverallSpan || a.Stats != b.Stats {
		t.Fatalf("cells differ:\n%+v\n%+v", a, b)
	}
}

func TestRunCellSpans(t *testing.T) {
	res, err := RunCell(Unmodified, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.HighSpan <= 0 || res.OverallSpan <= 0 {
		t.Fatalf("spans not positive: %+v", res)
	}
	if res.OverallSpan < res.HighSpan {
		t.Fatalf("overall span %d < high span %d", res.OverallSpan, res.HighSpan)
	}
}

func TestUnmodifiedCellNeverLogs(t *testing.T) {
	res, err := RunCell(Unmodified, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.EntriesLogged != 0 || res.Stats.Rollbacks != 0 {
		t.Fatalf("unmodified VM logged/rolled back: %+v", res.Stats)
	}
}

func TestModifiedCellLogsWrites(t *testing.T) {
	p := smallParams()
	p.WritePct = 100
	res, err := RunCell(Modified, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.EntriesLogged == 0 {
		t.Fatal("no stores logged at 100% writes")
	}
	p.WritePct = 0
	res0, err := RunCell(Modified, p)
	if err != nil {
		t.Fatal(err)
	}
	if res0.Stats.EntriesLogged != 0 {
		t.Fatalf("stores logged at 0%% writes: %d", res0.Stats.EntriesLogged)
	}
}

// TestInnerLoopWriteRatio checks runInnerLoop produces exactly the
// requested write percentage, evenly interleaved.
func TestInnerLoopWriteRatio(t *testing.T) {
	for _, wp := range WriteRatios {
		p := smallParams()
		p.HighThreads = 1
		p.LowThreads = 0
		p.Sections = 1
		p.HighIters = 1000
		p.WritePct = wp
		res, err := RunCell(Modified, p)
		if err != nil {
			t.Fatal(err)
		}
		// Every in-section write reaches the logging barrier; repeated
		// stores to the same buffer slot are deduped (first-write-wins),
		// so logged + deduped is the true write count.
		want := int64(1000 * wp / 100)
		if got := res.Stats.EntriesLogged + res.Stats.StoresDeduped; got != want {
			t.Errorf("wp=%d: logged+deduped %d writes, want %d", wp, got, want)
		}
		// The log itself holds at most one entry per buffer slot.
		if max := int64(p.BufferLen); res.Stats.EntriesLogged > max {
			t.Errorf("wp=%d: logged %d entries, dedup bound is %d", wp, res.Stats.EntriesLogged, max)
		}
		if wp == 100 && res.Stats.EntriesLogged != int64(p.BufferLen) {
			t.Errorf("wp=100: logged %d entries, want %d (every slot once)", res.Stats.EntriesLogged, p.BufferLen)
		}
	}
}

func TestScaleParsing(t *testing.T) {
	for s, want := range map[string]Scale{"small": ScaleSmall, "medium": ScaleMedium, "paper": ScalePaper} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("Scale.String = %q", got.String())
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestScaleGeometryInvariant(t *testing.T) {
	// Every scale preserves section:quantum = 3:2 and the 1:5 short-high
	// ratio (the paper's 100K vs 500K).
	for _, s := range []Scale{ScaleSmall, ScaleMedium, ScalePaper} {
		long := s.base(false)
		short := s.base(true)
		section := simtime.Ticks(long.LowIters) * long.CostRead
		if diff := section*2 - long.Quantum*3; diff < -3 || diff > 3 {
			t.Errorf("%v: section %d, quantum %d: ratio not 3:2", s, section, long.Quantum)
		}
		if short.HighIters*5 != long.HighIters {
			t.Errorf("%v: short/long high iters %d/%d not 1:5", s, short.HighIters, long.HighIters)
		}
		if long.LowIters != short.LowIters {
			t.Errorf("%v: low iters differ between variants", s)
		}
	}
}

func TestSpecsCoverAllFigures(t *testing.T) {
	for _, n := range []int{5, 6, 7, 8} {
		spec, ok := Specs[n]
		if !ok {
			t.Fatalf("figure %d missing", n)
		}
		if spec.Number != n || spec.Caption == "" {
			t.Errorf("spec %d malformed: %+v", n, spec)
		}
	}
	if Specs[5].Metric != HighPriorityTime || Specs[7].Metric != OverallTime {
		t.Error("metrics wrong")
	}
	if !Specs[5].ShortHigh || Specs[6].ShortHigh {
		t.Error("short-high flags wrong")
	}
}

func TestRunFigureUnknownNumber(t *testing.T) {
	if _, err := RunFigure(9, ScaleSmall, nil); err == nil {
		t.Fatal("figure 9 accepted")
	}
}

// TestFigure5Shape is the headline regression test: the reproduced Figure
// 5 must keep the paper's qualitative shape.
func TestFigure5Shape(t *testing.T) {
	fig, err := RunFigure(5, ScaleSmall, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 3 {
		t.Fatalf("panels = %d", len(fig.Panels))
	}
	for pi, panel := range fig.Panels {
		if len(panel.Points) != len(WriteRatios) {
			t.Fatalf("panel %d: %d points", pi, len(panel.Points))
		}
		// Normalization: unmodified at 0% writes is exactly 1.
		if panel.Points[0].Unmodified != 1.0 {
			t.Errorf("panel %d: unmodified@0 = %f", pi, panel.Points[0].Unmodified)
		}
	}
	// Panels (a) and (b): the modified VM wins at every write ratio.
	for pi := 0; pi < 2; pi++ {
		for _, pt := range fig.Panels[pi].Points {
			if pt.Modified >= pt.Unmodified {
				t.Errorf("panel %d wp=%d: modified %.3f did not beat unmodified %.3f",
					pi, pt.WritePct, pt.Modified, pt.Unmodified)
			}
		}
	}
	// Panel (c): near parity — the benefit has largely vanished, and heavy
	// writes may tip it against the modified VM (the paper's crossover).
	c := fig.Panels[2]
	if c.Points[0].Modified > 1.05 {
		t.Errorf("panel (c) at 0%% writes: modified %.3f far above parity", c.Points[0].Modified)
	}
	if c.Points[len(c.Points)-1].Modified < c.Points[0].Modified {
		t.Errorf("panel (c): no upward trend with writes")
	}
}

// TestFigure7OverheadShape: overall elapsed time of the modified VM is
// never below the unmodified VM (§4.2: "the overall elapsed time for the
// modified VM must always be longer").
func TestFigure7OverheadShape(t *testing.T) {
	fig, err := RunFigure(7, ScaleSmall, nil)
	if err != nil {
		t.Fatal(err)
	}
	for pi, panel := range fig.Panels {
		for _, pt := range panel.Points {
			if float64(pt.RawMod) < float64(pt.RawUnmod)*0.999 {
				t.Errorf("panel %d wp=%d: modified overall %d below unmodified %d",
					pi, pt.WritePct, pt.RawMod, pt.RawUnmod)
			}
		}
	}
}

func TestProgressCallback(t *testing.T) {
	calls := 0
	_, err := RunFigure(5, ScaleSmall, func(mix Mix, wp int, vm VM, res CellResult) {
		calls++
		if res.HighSpan <= 0 {
			t.Error("callback got empty result")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := len(Mixes) * len(WriteRatios) * 2
	if calls != want {
		t.Fatalf("progress calls = %d, want %d", calls, want)
	}
}

func TestSummarize(t *testing.T) {
	mk := func(metric Metric, mod, unmod simtime.Ticks) Figure {
		return Figure{
			Metric: metric,
			Panels: []Panel{{
				Mix:    Mix{2, 8},
				Points: []Point{{RawMod: mod, RawUnmod: unmod, Modified: 1, Unmodified: 1}},
			}},
		}
	}
	s := Summarize(
		[]Figure{mk(HighPriorityTime, 50, 100)},
		[]Figure{mk(OverallTime, 130, 100)},
	)
	if s.GainPct != 50 || s.GainPctFavorable != 50 {
		t.Errorf("gain = %f/%f, want 50", s.GainPct, s.GainPctFavorable)
	}
	if s.SpeedupFavorable != 2 {
		t.Errorf("speedup = %f, want 2", s.SpeedupFavorable)
	}
	if s.OverallOverheadPct != 30 {
		t.Errorf("overhead = %f, want 30", s.OverallOverheadPct)
	}
}

func TestSummarizeExcludesUnfavorableFromFavorable(t *testing.T) {
	fig := Figure{
		Metric: HighPriorityTime,
		Panels: []Panel{
			{Mix: Mix{2, 8}, Points: []Point{{RawMod: 50, RawUnmod: 100}}},
			{Mix: Mix{8, 2}, Points: []Point{{RawMod: 100, RawUnmod: 100}}},
		},
	}
	s := Summarize([]Figure{fig}, nil)
	if s.GainPctFavorable != 50 {
		t.Errorf("favorable gain = %f, want 50 (8+2 excluded)", s.GainPctFavorable)
	}
	if s.GainPct != 25 {
		t.Errorf("all-mix gain = %f, want 25", s.GainPct)
	}
}

func TestRenderFormats(t *testing.T) {
	fig, err := RunFigure(5, ScaleSmall, nil)
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	fig.Render(&text)
	for _, want := range []string{"Figure 5", "(a) 2 high + 8 low", "(b) 5 high + 5 low", "(c) 8 high + 2 low", "writes%"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("Render missing %q", want)
		}
	}
	var csv strings.Builder
	fig.RenderCSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	want := 1 + len(Mixes)*len(WriteRatios)*2 // header + 2 rows per cell
	if len(lines) != want {
		t.Errorf("CSV lines = %d, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "figure,panel") {
		t.Errorf("CSV header = %q", lines[0])
	}
	var sum strings.Builder
	Summary{GainPct: 1, GainPctFavorable: 2, SpeedupFavorable: 3, OverallOverheadPct: 4}.Render(&sum)
	if !strings.Contains(sum.String(), "Headline claims") {
		t.Error("summary render wrong")
	}
}

func TestVMString(t *testing.T) {
	if Modified.String() != "MODIFIED" || Unmodified.String() != "UNMODIFIED" {
		t.Error("VM strings wrong")
	}
	if (Mix{2, 8}).String() != "2 high + 8 low" {
		t.Error("Mix string wrong")
	}
	if HighPriorityTime.String() == OverallTime.String() {
		t.Error("metric strings collide")
	}
}

// TestShapeStableAcrossSeeds guards the headline result against seed luck:
// on the favorable 2+8 mix the modified VM must beat the unmodified VM for
// several different arrival-randomization seeds.
func TestShapeStableAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 42, 20040815, 987654321} {
		p := CellParams(ScaleSmall, true, Mix{High: 2, Low: 8}, 40)
		p.Seed = seed
		un, err := RunCell(Unmodified, p)
		if err != nil {
			t.Fatal(err)
		}
		mo, err := RunCell(Modified, p)
		if err != nil {
			t.Fatal(err)
		}
		if mo.HighSpan >= un.HighSpan {
			t.Errorf("seed %d: modified %d did not beat unmodified %d", seed, mo.HighSpan, un.HighSpan)
		}
		if mo.Stats.Rollbacks == 0 && mo.Stats.PreemptedGrants == 0 {
			t.Errorf("seed %d: no revocation activity", seed)
		}
	}
}
