// Whole-monitor elision benchmark: the same confined-lock loop executed
// on the opt tier with real thin-lock monitors versus with the certified
// confined enter/exit pairs compiled to charge-only no-ops. The off/on
// delta is what the escape analysis buys per synchronized section on a
// thread-confined lock. Lives outside _test.go for the same reason as
// micro.go: cmd/figures -json records both halves in the trajectory file.
package bench

import (
	"io"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

// confinedMonitorPairs is the number of enter+exit pairs one program run
// executes; the reported ns/op metric divides by 2*pairs so it prices a
// single MONITORENTER or MONITOREXIT with per-run setup amortized away.
const confinedMonitorPairs = 4096

// confinedMonitorProgram loops over an EMPTY synchronized section on a
// scratch lock that never escapes its thread. The body is empty on
// purpose: with no stores to elide and a revocable section, the only
// instructions that differ between the off and on runs are the monitor
// enter/exit themselves, so the pair isolates exactly the whole-monitor
// elision.
const confinedMonitorProgram = `
class Lock {
    unused
}
thread main priority 5 run main
method main locals 2 {
    newobj Lock
    store 0
    const 4096
    store 1
  loop:
    load 1
    ifz done
    sync 0 {
    }
    load 1
    const 1
    sub
    store 1
    goto loop
  done:
    return
}
`

// ConfinedMonitorEnterExitBench returns the benchmark body for one half
// of the off/on pair. elided=false runs the rewritten program with no
// facts (every monitorenter takes the real thin-lock path); elided=true
// runs the rvmrun -static pipeline, whose certified confinement proof
// compiles both halves of every pair to charge-only no-ops. Each
// iteration is one full program run on the opt tier; the ns/op metric is
// per monitor operation.
func ConfinedMonitorEnterExitBench(elided bool) func(b *testing.B) {
	return func(b *testing.B) {
		prog, err := rewrite.Rewrite(bytecode.MustAssemble(confinedMonitorProgram))
		if err != nil {
			b.Fatal(err)
		}
		var facts *analysis.Facts
		if elided {
			facts, err = analysis.Analyze(prog)
			if err != nil {
				b.Fatal(err)
			}
			rewrite.ApplyStaticElision(prog, facts)
		}
		var st core.Stats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt := core.New(core.Config{
				Mode: core.Revocation, NoCosts: true,
				Sched: sched.Config{Quantum: 1 << 40},
			})
			if _, err := interp.Run(rt, prog, interp.Options{
				Rewritten:        true,
				Tier:             interp.TierOpt,
				OptCallThreshold: 1,
				Facts:            facts,
				Out:              io.Discard,
			}); err != nil {
				b.Fatal(err)
			}
			st = rt.Stats()
		}
		b.StopTimer()
		// The two halves must actually take the paths they claim to price.
		if elided && st.ConfinedElisions != 2*confinedMonitorPairs {
			b.Fatalf("elided run executed %d confined no-ops, want %d", st.ConfinedElisions, 2*confinedMonitorPairs)
		}
		if !elided && st.ConfinedElisions != 0 {
			b.Fatalf("baseline run took %d confined no-ops, want 0", st.ConfinedElisions)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(2*confinedMonitorPairs*b.N), "ns/op")
	}
}
