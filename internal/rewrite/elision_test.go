package rewrite

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/sched"
)

const elisionProgram = `
static g = 0
static lockRef = 0
class L {
    f
}
method inSection locals 1 {
    newobj L
    store 0
    sync 0 {
        const 1
        putstatic g
        load 0
        const 2
        putfield L.f
    }
    return
}
method outside locals 1 {
    newobj L
    store 0
    const 3
    putstatic g
    load 0
    const 4
    putfield L.f
    return
}
`

func TestApplyElisionRewritesOnlyElidable(t *testing.T) {
	p := bytecode.MustAssemble(elisionProgram)
	n := ApplyElision(p, nil)
	if n != 2 {
		t.Fatalf("rewrote %d stores, want 2 (putstatic+putfield in outside)", n)
	}
	outside, _ := p.Method("outside")
	raw := 0
	for _, in := range outside.Code {
		if in.Op == bytecode.PUTSTATICRAW || in.Op == bytecode.PUTFIELDRAW {
			raw++
		}
	}
	if raw != 2 {
		t.Errorf("outside has %d raw stores, want 2", raw)
	}
	inSec, _ := p.Method("inSection")
	for _, in := range inSec.Code {
		if in.Op == bytecode.PUTSTATICRAW || in.Op == bytecode.PUTFIELDRAW || in.Op == bytecode.ASTORERAW {
			t.Fatal("store inside a synchronized section was elided — unsound")
		}
	}
	if err := bytecode.Verify(p); err != nil {
		t.Fatal(err)
	}
}

// TestElisionPreservesSemantics runs the same program with and without
// elision on the modified VM; results and logging stats must show elided
// stores never hit the log while semantics are identical.
func TestElisionPreservesSemantics(t *testing.T) {
	run := func(elide bool) (int64, int64) {
		prog := bytecode.MustAssemble(`
static g = 0
class L {
    f
}
thread t priority 5 run main
method main locals 2 {
    newobj L
    store 0
    const 10
    store 1
  loop:
    load 1
    ifz done
    invoke outside
    load 1
    const 1
    sub
    store 1
    goto loop
  done:
    return
}
method outside locals 0 {
    getstatic g
    const 1
    add
    putstatic g
    return
}
`)
		if elide {
			ApplyElision(prog, nil)
		}
		rt := core.New(core.Config{Mode: core.Revocation, Sched: sched.Config{Quantum: 1000}})
		env, err := interp.Run(rt, prog, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		idx, _ := prog.StaticIndex("g")
		return int64(env.RT.Heap().GetStatic(idx)), rt.Stats().BarrierFastPaths
	}
	gPlain, fastPlain := run(false)
	gElided, fastElided := run(true)
	if gPlain != 10 || gElided != 10 {
		t.Fatalf("results differ or wrong: %d vs %d", gPlain, gElided)
	}
	// Un-elided stores outside sections take the barrier fast path (the
	// §1.1 run-time check); elided ones skip even that.
	if fastPlain == 0 {
		t.Fatal("expected fast-path barrier hits without elision")
	}
	if fastElided != 0 {
		t.Fatalf("elided run still hit the barrier %d times", fastElided)
	}
}

// TestRawStoreInsideSectionIsUnsound demonstrates WHY the analysis must be
// conservative: a raw store inside a synchronized section survives a
// rollback, breaking the "never executed" illusion. This documents the
// hazard the elision analysis exists to prevent.
func TestRawStoreInsideSectionIsUnsound(t *testing.T) {
	prog := bytecode.MustAssemble(`
static lockRef = 0
static viaBarrier = 0
static viaRaw = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread low priority 2 run lowMain
thread high priority 8 run highMain
method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    return
}
method lowMain locals 1 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    store 0
    sync 0 {
        const 1
        putstatic viaBarrier
        const 1
        putstatic.raw viaRaw
        const 3000
        work
    }
    return
}
method highMain locals 1 {
    const 300
    sleep
    getstatic lockRef
    store 0
    sync 0 {
        nop
    }
    return
}
`)
	rewritten, err := Rewrite(prog)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{Mode: core.Revocation, Sched: sched.Config{Quantum: 200}})
	env, err := interp.Run(rt, rewritten, interp.Options{Rewritten: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Rollbacks == 0 {
		t.Fatal("no rollback")
	}
	// The barriered store was undone and re-done exactly once (net 1);
	// the raw store leaked through the rollback. (Final state: both 1,
	// but during high's section the raw one was visible — we assert the
	// mechanism-level difference via the undo log.)
	if rt.Stats().EntriesUndone == 0 {
		t.Fatal("barriered store not in the undo log")
	}
	idxRaw, _ := rewritten.StaticIndex("viaRaw")
	if env.RT.Heap().GetStatic(idxRaw) != 1 {
		t.Fatal("raw store lost entirely?")
	}
}
