package rewrite

import (
	"testing"

	"repro/internal/bytecode"
)

func TestLowerSynchronizedMethod(t *testing.T) {
	p := bytecode.MustAssemble(`
class Counter {
    n
}
method Counter.incr synchronized args 1 locals 1 {
    load 0
    load 0
    getfield Counter.n
    const 1
    add
    putfield Counter.n
    return
}
`)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	wrapper, ok := q.Method("Counter.incr")
	if !ok {
		t.Fatal("wrapper missing")
	}
	if wrapper.Synchronized {
		t.Error("wrapper still flagged synchronized")
	}
	impl, ok := q.Method("Counter.incr$impl")
	if !ok {
		t.Fatal("impl missing")
	}
	if impl.Synchronized {
		t.Error("impl still flagged synchronized")
	}
	if len(wrapper.Regions) != 1 {
		t.Fatalf("wrapper regions = %d", len(wrapper.Regions))
	}
	// The wrapper must invoke the impl inside the monitor.
	sawInvoke := false
	for _, in := range wrapper.Code {
		if in.Op == bytecode.INVOKE && in.S == "Counter.incr$impl" {
			sawInvoke = true
		}
	}
	if !sawInvoke {
		t.Error("wrapper does not invoke the impl")
	}
	// Rollback scope artifacts must exist.
	counts := map[bytecode.Op]int{}
	for _, in := range wrapper.Code {
		counts[in.Op]++
	}
	if counts[bytecode.CHECKTARGET] != 1 || counts[bytecode.RETHROW] != 2 {
		t.Errorf("handler code wrong: %v", counts)
	}
	var rollback, release int
	for _, h := range wrapper.Handlers {
		switch h.Catch {
		case bytecode.RollbackClass:
			rollback++
		case bytecode.CatchAny:
			release++
		}
	}
	if rollback != 1 || release != 1 {
		t.Errorf("handlers: %d rollback, %d release", rollback, release)
	}
}

func TestLowerSynchronizedStaticRejected(t *testing.T) {
	p := &bytecode.Program{Methods: []*bytecode.Method{{
		Name: "s", Synchronized: true, Locals: 0,
		Code: []bytecode.Instr{{Op: bytecode.RETURN}},
	}}}
	if _, err := Rewrite(p); err == nil {
		t.Fatal("static synchronized accepted")
	}
}

func TestInjectSavesNonEmptyStack(t *testing.T) {
	// A sync block entered with two values on the operand stack: the
	// rewriter must inject SAVESTACK/RESTORESTACK around it.
	p := bytecode.MustAssemble(`
class L {
    f
}
method m locals 2 {
    newobj L
    store 0
    const 11
    const 22
    sync 0 {
        load 0
        const 1
        putfield L.f
    }
    add
    pop
    return
}
`)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := q.Method("m")
	var save, restore *bytecode.Instr
	for i := range m.Code {
		switch m.Code[i].Op {
		case bytecode.SAVESTACK:
			save = &m.Code[i]
		case bytecode.RESTORESTACK:
			restore = &m.Code[i]
		}
	}
	if save == nil || restore == nil {
		t.Fatalf("missing save/restore:\n%s", bytecode.Disassemble(m))
	}
	if save.V != 2 || restore.V != 2 {
		t.Errorf("saved depth = %d/%d, want 2", save.V, restore.V)
	}
	if save.A != restore.A {
		t.Errorf("save/restore bases differ: %d vs %d", save.A, restore.A)
	}
	if m.Locals < 2+2 {
		t.Errorf("locals not extended: %d", m.Locals)
	}
}

func TestInjectRemapsJumps(t *testing.T) {
	p := bytecode.MustAssemble(`
class L {
    f
}
method m locals 2 {
    newobj L
    store 0
    const 3
  loop:
    dup
    ifz done
    const 1
    sub
    sync 0 {
        load 0
        const 9
        putfield L.f
    }
    goto loop
  done:
    pop
    return
}
`)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite verifies internally; a second verification double-checks
	// that jump remapping kept the program consistent.
	if err := bytecode.Verify(q); err != nil {
		m, _ := q.Method("m")
		t.Fatalf("%v\n%s", err, bytecode.Disassemble(m))
	}
}

func TestNestedRegionsGetInnerFirstHandlers(t *testing.T) {
	p := bytecode.MustAssemble(`
class L {
    f
}
method m locals 2 {
    newobj L
    store 0
    newobj L
    store 1
    sync 0 {
        sync 1 {
            load 0
            const 1
            putfield L.f
        }
    }
    return
}
`)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := q.Method("m")
	var rollbacks []bytecode.Handler
	for _, h := range m.Handlers {
		if h.Catch == bytecode.RollbackClass {
			rollbacks = append(rollbacks, h)
		}
	}
	if len(rollbacks) != 2 {
		t.Fatalf("rollback handlers = %d", len(rollbacks))
	}
	// Inner region's handler first (smaller range).
	if !(rollbacks[0].To-rollbacks[0].From < rollbacks[1].To-rollbacks[1].From) {
		t.Errorf("handler order not innermost-first: %+v", rollbacks)
	}
}

func TestRewriteIsIdempotentOnPlainMethods(t *testing.T) {
	p := bytecode.MustAssemble(`
method plain locals 1 {
    const 1
    store 0
    return
}
`)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := q.Method("plain")
	if len(m.Handlers) != 0 || len(m.Regions) != 0 {
		t.Error("plain method gained handlers/regions")
	}
	if len(m.Code) != 3 {
		t.Errorf("plain method code changed: %d instrs", len(m.Code))
	}
}

func TestRewriteDoesNotMutateInput(t *testing.T) {
	p := bytecode.MustAssemble(`
class C {
    f
}
method C.m synchronized args 1 locals 1 {
    return
}
`)
	before := len(p.Methods)
	codeLen := len(p.Methods[0].Code)
	if _, err := Rewrite(p); err != nil {
		t.Fatal(err)
	}
	if len(p.Methods) != before || len(p.Methods[0].Code) != codeLen || !p.Methods[0].Synchronized {
		t.Error("input program mutated")
	}
}

func TestAnalyzeBarriers(t *testing.T) {
	p := bytecode.MustAssemble(`
class L {
    f
}
method lockUser locals 1 {
    newobj L
    store 0
    sync 0 {
        invoke helper
    }
    return
}
method helper locals 0 {
    invoke leaf
    return
}
method leaf locals 0 {
    getstatic g
    const 1
    add
    putstatic g
    return
}
method standalone locals 0 {
    getstatic g
    putstatic g
    return
}
static g = 0
`)
	a := AnalyzeBarriers(p)
	for name, want := range map[string]bool{
		"lockUser":   true,  // contains a region
		"helper":     true,  // called from inside the region
		"leaf":       true,  // transitively reachable
		"standalone": false, // never runs in a synchronized context
	} {
		if a.NeedsBarrier[name] != want {
			t.Errorf("NeedsBarrier[%s] = %v, want %v", name, a.NeedsBarrier[name], want)
		}
	}
	if a.ElidableCount() != 1 {
		t.Errorf("ElidableCount = %d, want 1", a.ElidableCount())
	}
	if !a.Elidable("standalone") || a.Elidable("leaf") {
		t.Error("Elidable answers wrong")
	}
}

func TestAnalyzeBarriersSynchronizedMethodSeed(t *testing.T) {
	p := bytecode.MustAssemble(`
class C {
    f
}
method C.m synchronized args 1 locals 1 {
    invoke callee
    return
}
method callee locals 0 {
    return
}
`)
	a := AnalyzeBarriers(p)
	if !a.NeedsBarrier["C.m"] || !a.NeedsBarrier["callee"] {
		t.Error("synchronized method not treated as a barrier seed")
	}
}
