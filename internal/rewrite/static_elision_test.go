package rewrite

import (
	"io"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/sched"
)

// staticElisionProgram forces a priority-inversion rollback through a
// section that writes both a provably fresh object (elidable by the
// fresh-target rule) and a pre-existing static (never elidable), plus
// never-held stores outside the section.
const staticElisionProgram = `
static lockRef = 0
static g = 0
static done = 0
class Lock {
    unused
}
class L {
    f
}
thread init priority 9 run setup
thread low priority 2 run lowMain
thread high priority 8 run highMain
method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    return
}
method lowMain locals 2 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    store 0
    sync 0 {
        newobj L
        store 1
        load 1
        const 7
        putfield L.f
        getstatic g
        const 1
        add
        putstatic g
        const 3000
        work
    }
    const 5
    putstatic done
    return
}
method highMain locals 1 {
    const 300
    sleep
    getstatic lockRef
    store 0
    sync 0 {
        nop
    }
    return
}
`

// runStatic assembles, rewrites, optionally analyzes+elides, and executes
// the program on the revocation VM, returning the runtime for inspection.
func runStatic(t *testing.T, src string, static bool) *core.Runtime {
	t.Helper()
	prog := bytecode.MustAssemble(src)
	rewritten, err := Rewrite(prog)
	if err != nil {
		t.Fatal(err)
	}
	var facts *analysis.Facts
	if static {
		facts, err = analysis.Analyze(rewritten)
		if err != nil {
			t.Fatal(err)
		}
		ApplyStaticElision(rewritten, facts)
	}
	rt := core.New(core.Config{Mode: core.Revocation, Sched: sched.Config{Quantum: 200}})
	if _, err := interp.Run(rt, rewritten, interp.Options{
		Rewritten: true,
		Facts:     facts,
		Out:       io.Discard,
	}); err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestStaticElisionRollbackEquivalence is the end-to-end soundness check
// for the analysis-driven elision: the same inversion scenario runs once
// with every store barriered and once with the statically proven stores
// rewritten to raw form (fresh-target writes covered by alloc-entry undo).
// Both runs must roll back, and the final heaps must be byte-identical.
func TestStaticElisionRollbackEquivalence(t *testing.T) {
	plain := runStatic(t, staticElisionProgram, false)
	elided := runStatic(t, staticElisionProgram, true)

	ps, es := plain.Stats(), elided.Stats()
	if ps.Rollbacks == 0 {
		t.Fatal("scenario produced no rollback")
	}
	if ps.Rollbacks != es.Rollbacks {
		t.Fatalf("rollbacks differ: plain=%d elided=%d", ps.Rollbacks, es.Rollbacks)
	}
	if !plain.Heap().Snapshot().Equal(elided.Heap().Snapshot()) {
		t.Fatalf("final heaps differ:\n%s", plain.Heap().Snapshot().Diff(elided.Heap().Snapshot()))
	}
	// The elided run proved at least the fresh putfield and the two
	// never-held putstatics, logged the in-section allocation instead of
	// its stores, and as a result logged strictly fewer undo entries.
	if es.RawStores < 3 {
		t.Errorf("RawStores = %d, want >= 3", es.RawStores)
	}
	if es.AllocsLogged == 0 {
		t.Error("in-section allocation was never alloc-logged")
	}
	if es.EntriesLogged >= ps.EntriesLogged {
		t.Errorf("elision did not shrink the undo log: plain=%d elided=%d",
			ps.EntriesLogged, es.EntriesLogged)
	}
	if ps.RawStores != 0 || ps.AllocsLogged != 0 {
		t.Errorf("plain run took static-only paths: raw=%d allocs=%d", ps.RawStores, ps.AllocsLogged)
	}
}

// TestPreMarkedSectionLogsNothing: a section the analysis proves
// non-revocable (it calls a native) is pre-marked at monitorenter, so even
// barriered stores inside it skip undo logging entirely — the run ends with
// ZERO undo entries, where the dynamic-only VM logs every store that
// precedes the native call.
func TestPreMarkedSectionLogsNothing(t *testing.T) {
	// The lock escapes through a static on purpose: a confined lock would
	// be whole-monitor elided, and this test is about the pre-mark on a
	// REAL monitorenter.
	const prog = `
static g = 0
static lockRef = 0
class Lock {
    unused
}
thread main priority 5 run main
method main locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    sync 0 {
        const 1
        putstatic g
        const 42
        native print 1
        pop
    }
    return
}
`
	plain := runStatic(t, prog, false)
	if got := plain.Stats().EntriesLogged; got == 0 {
		t.Fatal("dynamic VM logged nothing before the native call — test premise broken")
	}
	marked := runStatic(t, prog, true)
	st := marked.Stats()
	if st.StaticPreMarks != 1 {
		t.Errorf("StaticPreMarks = %d, want 1", st.StaticPreMarks)
	}
	if st.EntriesLogged != 0 {
		t.Errorf("pre-marked section still logged %d undo entries, want 0", st.EntriesLogged)
	}
}
