// Package rewrite implements the paper's bytecode transformations (§3.1.1)
// over internal/bytecode programs:
//
//  1. Synchronized methods are lowered to non-synchronized wrappers whose
//     body is a synchronized block invoking the renamed original ("for
//     each synchronized method we create a non-synchronized wrapper with a
//     signature identical to the original method").
//
//  2. Every synchronized region becomes a rollback scope: the operand
//     stack is saved to fresh locals just before the region's
//     monitorenter (SAVESTACK), and a handler catching the internal
//     rollback exception is appended whose code checks whether the
//     rollback targets this very section (CHECKTARGET), restores the
//     operand stack (RESTORESTACK) and transfers control back to the
//     monitorenter — or re-throws to the next outer scope (RETHROW).
//     A second, ordinary handler releases the monitor when a *user*
//     exception leaves the region, preserving standard Java semantics.
//
//  3. Barrier elision analysis (§1.1: "compiler analyses and optimization
//     may elide these run-time checks"): a reachability pass over the
//     call graph identifies methods that can never execute inside a
//     synchronized section, whose stores therefore never need the
//     write-barrier slow path.
package rewrite

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/bytecode"
)

// Rewrite applies the full pipeline to a copy of p and verifies the
// result. The input program is not modified.
func Rewrite(p *bytecode.Program) (*bytecode.Program, error) {
	q := p.Clone()
	if err := LowerSynchronizedMethods(q); err != nil {
		return nil, err
	}
	if err := InjectRollbackScopes(q); err != nil {
		return nil, err
	}
	if err := bytecode.Verify(q); err != nil {
		return nil, fmt.Errorf("rewrite: output fails verification: %w", err)
	}
	return q, nil
}

// LowerSynchronizedMethods replaces every synchronized method with a
// wrapper holding a synchronized block around a call to the renamed
// original, which is no longer synchronized (§3.1.1). Instance methods
// synchronize on the receiver (local 0); a synchronized method with no
// arguments has no receiver and is rejected.
func LowerSynchronizedMethods(p *bytecode.Program) error {
	var added []*bytecode.Method
	for _, m := range p.Methods {
		if !m.Synchronized {
			continue
		}
		if m.Args < 1 {
			return fmt.Errorf("rewrite: synchronized method %s has no receiver (static synchronized is unsupported)", m.Name)
		}
		implName := m.Name + "$impl"
		if _, exists := p.Method(implName); exists {
			return fmt.Errorf("rewrite: %s already exists", implName)
		}
		// The implementation keeps the body under a new name.
		impl := *m
		impl.Name = implName
		impl.Synchronized = false
		impl.Code = append([]bytecode.Instr(nil), m.Code...)
		impl.Handlers = append([]bytecode.Handler(nil), m.Handlers...)
		impl.Regions = append([]bytecode.SyncRegion(nil), m.Regions...)
		added = append(added, &impl)

		// The wrapper replaces the original in place (same name, same
		// signature), so every call site keeps working unchanged.
		var code []bytecode.Instr
		code = append(code, bytecode.Instr{Op: bytecode.LOAD, A: 0}) // receiver
		enterPC := len(code)
		code = append(code, bytecode.Instr{Op: bytecode.MONITORENTER})
		for i := 0; i < m.Args; i++ {
			code = append(code, bytecode.Instr{Op: bytecode.LOAD, A: i})
		}
		code = append(code, bytecode.Instr{Op: bytecode.INVOKE, S: implName})
		code = append(code, bytecode.Instr{Op: bytecode.LOAD, A: 0})
		exitPC := len(code)
		code = append(code, bytecode.Instr{Op: bytecode.MONITOREXIT})
		if m.Returns {
			code = append(code, bytecode.Instr{Op: bytecode.IRETURN})
		} else {
			code = append(code, bytecode.Instr{Op: bytecode.RETURN})
		}
		m.Synchronized = false
		m.Code = code
		m.Handlers = nil
		m.Locals = m.Args
		m.Regions = []bytecode.SyncRegion{{EnterPC: enterPC - 1, ExitPC: exitPC, ObjLocal: 0}}
	}
	p.Methods = append(p.Methods, added...)
	return nil
}

// InjectRollbackScopes turns every synchronized region into a rollback
// scope (§3.1.1). Regions must have been recorded by the assembler's
// structured `sync` blocks or by LowerSynchronizedMethods.
func InjectRollbackScopes(p *bytecode.Program) error {
	for _, m := range p.Methods {
		if len(m.Regions) == 0 {
			continue
		}
		if err := injectScopes(p, m); err != nil {
			return err
		}
	}
	return nil
}

// injectScopes rewrites one method.
func injectScopes(p *bytecode.Program, m *bytecode.Method) error {
	depths, err := bytecode.VerifyMethod(p, m)
	if err != nil {
		return fmt.Errorf("rewrite: %s: %w", m.Name, err)
	}

	// Plan SAVESTACK insertions and local allocation, one block per
	// region with a non-empty stack at its entry.
	type plan struct {
		region int
		base   int
		depth  int
	}
	plans := make([]plan, len(m.Regions))
	inserts := map[int][]bytecode.Instr{} // old pc -> instrs inserted before it
	for i, r := range m.Regions {
		d := depths[r.EnterPC]
		if d < 0 {
			return fmt.Errorf("rewrite: %s: region %d entry unreachable", m.Name, i)
		}
		plans[i] = plan{region: i, base: m.Locals, depth: d}
		if d > 0 {
			m.Locals += d
			inserts[r.EnterPC] = append(inserts[r.EnterPC],
				bytecode.Instr{Op: bytecode.SAVESTACK, A: plans[i].base, V: int64(d)})
		}
	}

	// Build the remapped code: remap[old] = new pc of the first inserted
	// instruction at old (or of the old instruction itself when nothing
	// was inserted there).
	remap := make([]int, len(m.Code)+1)
	var code []bytecode.Instr
	for old := 0; old < len(m.Code); old++ {
		remap[old] = len(code)
		code = append(code, inserts[old]...)
		code = append(code, m.Code[old])
	}
	remap[len(m.Code)] = len(code)

	// Fix jump targets, handler ranges and region extents.
	for i := range code {
		switch code[i].Op {
		case bytecode.GOTO, bytecode.IFNZ, bytecode.IFZ:
			code[i].A = remap[code[i].A]
		}
	}
	for i := range m.Handlers {
		m.Handlers[i].From = remap[m.Handlers[i].From]
		m.Handlers[i].To = remap[m.Handlers[i].To]
		m.Handlers[i].Target = remap[m.Handlers[i].Target]
	}
	for i := range m.Regions {
		// EnterPC must keep pointing at the LOAD that pushes the monitor
		// object (MONITORENTER follows it): skip past any instructions
		// inserted before it (the region's own SAVESTACK).
		oldEnter := m.Regions[i].EnterPC
		m.Regions[i].EnterPC = remap[oldEnter] + len(inserts[oldEnter])
		oldExit := m.Regions[i].ExitPC
		m.Regions[i].ExitPC = remap[oldExit] + len(inserts[oldExit])
	}

	// Append the handler code per region, innermost (table-order) first:
	//
	//	H: checktarget i          ; does this rollback restart region i?
	//	   ifz R
	//	   restorestack base d    ; rebuild the operand stack (§3.1.1)
	//	   goto enter             ; re-execute from the monitorenter
	//	R: rethrow                ; propagate to the next outer scope
	//	U: load obj               ; user exception: release the monitor,
	//	   monitorexit            ; updates stay (no rollback), rethrow
	//	   rethrow
	for i, r := range m.Regions {
		pl := plans[i]
		monEnter := r.EnterPC + 1 // EnterPC is the LOAD pushing the object
		h := len(code)
		code = append(code, bytecode.Instr{Op: bytecode.CHECKTARGET, A: i})
		rethrowPC := 0 // patched below
		ifz := len(code)
		code = append(code, bytecode.Instr{Op: bytecode.IFZ, A: 0})
		if pl.depth > 0 {
			code = append(code, bytecode.Instr{Op: bytecode.RESTORESTACK, A: pl.base, V: int64(pl.depth)})
		}
		code = append(code, bytecode.Instr{Op: bytecode.GOTO, A: r.EnterPC})
		rethrowPC = len(code)
		code[ifz].A = rethrowPC
		code = append(code, bytecode.Instr{Op: bytecode.RETHROW})

		u := len(code)
		code = append(code, bytecode.Instr{Op: bytecode.LOAD, A: r.ObjLocal})
		code = append(code, bytecode.Instr{Op: bytecode.MONITOREXIT})
		code = append(code, bytecode.Instr{Op: bytecode.RETHROW})

		m.Handlers = append(m.Handlers,
			bytecode.Handler{From: monEnter, To: r.ExitPC + 1, Target: h, Catch: bytecode.RollbackClass},
			bytecode.Handler{From: monEnter + 1, To: r.ExitPC, Target: u, Catch: bytecode.CatchAny},
		)
	}
	m.Code = code
	// Handler-table order must reflect nesting: an entry whose range is
	// nested inside another's must come first, so a user exception thrown
	// inside a synchronized block hits the block's monitor-release
	// handler before any enclosing user handler (and vice versa for user
	// handlers nested inside the block). A stable sort by range size
	// realizes inner-before-outer for properly nested ranges.
	sort.SliceStable(m.Handlers, func(i, j int) bool {
		a, b := m.Handlers[i], m.Handlers[j]
		return a.To-a.From < b.To-b.From
	})
	return nil
}

// ---------------------------------------------------------------------------
// Barrier elision (§1.1).

// BarrierAnalysis reports, per method, whether its stores may execute
// inside a synchronized section — i.e. whether the write barrier's logging
// slow path is ever needed. Methods never reachable from a synchronized
// context can use raw stores.
type BarrierAnalysis struct {
	// NeedsBarrier[name] is true when the method may run inside a
	// synchronized section (its own, or a caller's).
	NeedsBarrier map[string]bool
}

// Elidable reports whether every store in the named method can skip the
// barrier slow-path test.
func (a *BarrierAnalysis) Elidable(name string) bool { return !a.NeedsBarrier[name] }

// ElidableCount returns how many methods are fully elidable.
func (a *BarrierAnalysis) ElidableCount() int {
	n := 0
	for _, needs := range a.NeedsBarrier {
		if !needs {
			n++
		}
	}
	return n
}

// AnalyzeBarriers runs the method-level elision analysis: a method needs
// barriers if it contains a synchronized region of its own, or if it may
// execute while some caller's monitor is held. The reachability question is
// answered by the analysis framework (analysis.Analyze), whose may-run-held
// fixpoint marks only methods invocable from a held program point — a call
// placed outside every region does not poison the callee. Programs the
// framework rejects (it re-verifies) fall back to the original conservative
// closure: every method transitively callable from any section-containing
// method needs barriers.
func AnalyzeBarriers(p *bytecode.Program) *BarrierAnalysis {
	facts, err := analysis.Analyze(p)
	if err != nil {
		return conservativeBarriers(p)
	}
	needs := make(map[string]bool, len(p.Methods))
	for _, m := range p.Methods {
		needs[m.Name] = facts.MayRunHeld(m.Name) ||
			len(m.Regions) > 0 || m.Synchronized || containsMonitorEnter(m)
	}
	return &BarrierAnalysis{NeedsBarrier: needs}
}

// conservativeBarriers is the pre-framework approximation, kept as the
// fallback for programs analysis.Analyze cannot process.
func conservativeBarriers(p *bytecode.Program) *BarrierAnalysis {
	needs := make(map[string]bool, len(p.Methods))
	callees := make(map[string][]string, len(p.Methods))
	var seeds []string
	for _, m := range p.Methods {
		for _, in := range m.Code {
			if in.Op == bytecode.INVOKE {
				callees[m.Name] = append(callees[m.Name], in.S)
			}
		}
		if len(m.Regions) > 0 || m.Synchronized || containsMonitorEnter(m) {
			seeds = append(seeds, m.Name)
		}
	}
	// Everything reachable from a synchronized context needs barriers.
	var mark func(string)
	mark = func(name string) {
		if needs[name] {
			return
		}
		needs[name] = true
		for _, c := range callees[name] {
			mark(c)
		}
	}
	for _, s := range seeds {
		mark(s)
	}
	// Fill in explicit false entries so Elidable is meaningful for every
	// method.
	for _, m := range p.Methods {
		if _, ok := needs[m.Name]; !ok {
			needs[m.Name] = false
		}
	}
	return &BarrierAnalysis{NeedsBarrier: needs}
}

func containsMonitorEnter(m *bytecode.Method) bool {
	for _, in := range m.Code {
		if in.Op == bytecode.MONITORENTER {
			return true
		}
	}
	return false
}

// ApplyElision rewrites (in place) the stores of every barrier-elidable
// method to their raw forms, realizing the optimization §1.1 sketches:
// "Compiler analyses and optimization may elide these run-time checks when
// the update can be shown statically never to occur within a synchronized
// section." Only *write* barriers are elided: read barriers feed the §2.2
// dependency detection, and a read outside any monitor can still observe a
// speculative value (the paper's Figure 3), so removing read barriers
// needs alias information this bytecode does not carry. It returns the
// number of stores rewritten.
func ApplyElision(p *bytecode.Program, a *BarrierAnalysis) int {
	if a == nil {
		a = AnalyzeBarriers(p)
	}
	n := 0
	for _, m := range p.Methods {
		if a.NeedsBarrier[m.Name] {
			continue
		}
		for i := range m.Code {
			switch m.Code[i].Op {
			case bytecode.PUTFIELD:
				m.Code[i].Op = bytecode.PUTFIELDRAW
				n++
			case bytecode.PUTSTATIC:
				m.Code[i].Op = bytecode.PUTSTATICRAW
				n++
			case bytecode.ASTORE:
				m.Code[i].Op = bytecode.ASTORERAW
				n++
			}
		}
	}
	return n
}

// ApplyStaticElision rewrites (in place) every store instruction the
// per-instruction analysis proved barrier-free to its raw form — both
// never-runs-held stores and stores whose target object is provably
// allocated inside the current section. facts must come from
// analysis.Analyze over this exact program (same method names and pcs; run
// it after Rewrite, on the program that will execute). The fresh-target
// proofs rely on the runtime logging allocations, so a program elided this
// way must run with interp.Options.Facts set to the same facts. It returns
// the number of stores rewritten.
//
// Each elision is a discharged proof obligation: a store is rewritten only
// when the facts carry a matching elide-barrier certificate, not on the
// strength of the elidable bit alone. A fact set with undischarged
// obligations keeps its barriers here and is rejected outright by
// interp.NewEnv (analysis.Facts.VerifyCertificates).
func ApplyStaticElision(p *bytecode.Program, facts *analysis.Facts) int {
	n := 0
	certified := func(m string, pc int) bool {
		return facts.ElidableStore(m, pc) &&
			facts.RequireCert(m, pc, analysis.CertElideBarrier) == nil
	}
	for _, m := range p.Methods {
		for i := range m.Code {
			switch m.Code[i].Op {
			case bytecode.PUTFIELD:
				if certified(m.Name, i) {
					m.Code[i].Op = bytecode.PUTFIELDRAW
					n++
				}
			case bytecode.PUTSTATIC:
				if certified(m.Name, i) {
					m.Code[i].Op = bytecode.PUTSTATICRAW
					n++
				}
			case bytecode.ASTORE:
				if certified(m.Name, i) {
					m.Code[i].Op = bytecode.ASTORERAW
					n++
				}
			}
		}
	}
	return n
}
