package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// SchemaVersion is the version stamped on every JSONL trace and metrics
// summary this package emits. Bump it when a field or kind name changes
// meaning; consumers reject traces from a different major schema.
const SchemaVersion = 1

// SchemaName identifies the JSONL stream format.
const SchemaName = "rvm-trace"

// StreamInfo qualifies a JSONL trace stream. A truncated stream (converted
// from a wrapped flight-recorder ring) declares up front that its oldest
// events were overwritten, so a validator can attribute unjoinable events
// to the missing prefix instead of to a codec bug.
type StreamInfo struct {
	Truncated bool   `json:"truncated,omitempty"`
	Lost      uint64 `json:"lost,omitempty"` // events overwritten before the stream start
}

// jsonlMeta is the mandatory first line of a JSONL trace.
type jsonlMeta struct {
	Type   string   `json:"type"` // "meta"
	V      int      `json:"v"`
	Schema string   `json:"schema"`
	Kinds  []string `json:"kinds"` // every kind name the stream may use
	StreamInfo
}

// jsonlEvent is one event line of a JSONL trace.
type jsonlEvent struct {
	Type   string `json:"type"` // "event"
	At     int64  `json:"at"`
	Kind   string `json:"kind"`
	Thread string `json:"thread,omitempty"`
	Object string `json:"object,omitempty"`
	Other  string `json:"other,omitempty"`
	N      int64  `json:"n,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// JSONLWriter is a trace.Sink that streams events as schema-versioned JSON
// lines: one meta line (version, schema name, kind vocabulary) followed by
// one line per event. Errors are sticky and surfaced by Close.
type JSONLWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLWriter creates a writer and emits the meta line.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return NewJSONLWriterInfo(w, StreamInfo{})
}

// NewJSONLWriterInfo creates a writer whose meta line carries the given
// stream qualifiers — the flight-recorder converter uses it to mark
// streams decoded from a wrapped ring as truncated.
func NewJSONLWriterInfo(w io.Writer, info StreamInfo) *JSONLWriter {
	bw := bufio.NewWriter(w)
	j := &JSONLWriter{w: bw, enc: json.NewEncoder(bw)}
	j.err = j.enc.Encode(jsonlMeta{Type: "meta", V: SchemaVersion, Schema: SchemaName, Kinds: KindNames(), StreamInfo: info})
	return j
}

// Emit writes one event line. Implements trace.Sink.
func (j *JSONLWriter) Emit(e trace.Event) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(jsonlEvent{
		Type: "event", At: int64(e.At), Kind: e.Kind.String(),
		Thread: e.Thread, Object: e.Object, Other: e.Other, N: e.N, Detail: e.Detail,
	})
}

// Close flushes buffered lines and returns the first error encountered.
func (j *JSONLWriter) Close() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// KindNames returns the stable names of every trace kind, in declaration
// order — the shared vocabulary table in internal/trace, which both this
// JSONL meta line and the flight-recorder binary codec consume. The golden
// tests (here and in internal/trace) pin it so a rename breaks loudly.
func KindNames() []string { return trace.Names() }

// ValidateJSONL checks a JSONL trace stream against the schema: a leading
// meta line with the expected version and schema name, then event lines
// whose kind is in the declared vocabulary and whose timestamp is
// non-negative and non-decreasing-safe (>= 0). It returns the number of
// validated event lines.
func ValidateJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, err
		}
		return 0, fmt.Errorf("obs: empty trace (missing meta line)")
	}
	var meta jsonlMeta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return 0, fmt.Errorf("obs: line 1: %v", err)
	}
	if meta.Type != "meta" {
		return 0, fmt.Errorf("obs: line 1: type %q, want \"meta\"", meta.Type)
	}
	if meta.V != SchemaVersion {
		return 0, fmt.Errorf("obs: line 1: schema version %d, want %d", meta.V, SchemaVersion)
	}
	if meta.Schema != SchemaName {
		return 0, fmt.Errorf("obs: line 1: schema %q, want %q", meta.Schema, SchemaName)
	}
	known := make(map[string]bool, len(meta.Kinds))
	for _, k := range meta.Kinds {
		known[k] = true
	}
	// The declared vocabulary must itself be the current one: a trace from
	// a renamed build fails here rather than silently passing events.
	for _, k := range KindNames() {
		if !known[k] {
			return 0, fmt.Errorf("obs: line 1: meta kinds missing %q", k)
		}
	}
	n := 0
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev jsonlEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return n, fmt.Errorf("obs: line %d: %v", line, err)
		}
		if ev.Type != "event" {
			return n, fmt.Errorf("obs: line %d: type %q, want \"event\"", line, ev.Type)
		}
		if !known[ev.Kind] {
			return n, fmt.Errorf("obs: line %d: unknown kind %q", line, ev.Kind)
		}
		if ev.At < 0 {
			return n, fmt.Errorf("obs: line %d: negative timestamp %d", line, ev.At)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

// ParseJSONL validates a JSONL trace stream and decodes it back into
// events, inverting JSONLWriter: a round-tripped stream replays into an
// Observer exactly as the live run did.
func ParseJSONL(r io.Reader) ([]trace.Event, error) {
	events, _, err := ParseJSONLInfo(r)
	return events, err
}

// ParseJSONLInfo is ParseJSONL plus the meta line's stream qualifiers, so
// a consumer can tell a truncated (ring-wrapped) stream from a complete
// one. Kind names resolve through the stream's declared vocabulary, which
// ValidateJSONL has already checked against this build's.
func ParseJSONLInfo(r io.Reader) ([]trace.Event, StreamInfo, error) {
	var buf bytes.Buffer
	if _, err := ValidateJSONL(io.TeeReader(r, &buf)); err != nil {
		return nil, StreamInfo{}, err
	}
	var events []trace.Event
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	sc.Scan() // meta line, already validated
	var meta jsonlMeta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return nil, StreamInfo{}, err
	}
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev jsonlEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, meta.StreamInfo, err
		}
		kind, ok := trace.KindByName(ev.Kind)
		if !ok {
			// Vocabulary from a newer build: validated as declared, but this
			// build cannot represent it.
			return nil, meta.StreamInfo, fmt.Errorf("obs: kind %q not known to this build", ev.Kind)
		}
		events = append(events, trace.Event{
			At: simtime.Ticks(ev.At), Kind: kind,
			Thread: ev.Thread, Object: ev.Object, Other: ev.Other, N: ev.N, Detail: ev.Detail,
		})
	}
	return events, meta.StreamInfo, sc.Err()
}
