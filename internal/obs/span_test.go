package obs

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/trace"
)

func ev(at simtime.Ticks, k trace.Kind, thread, object, other string, n int64) trace.Event {
	return trace.Event{At: at, Kind: k, Thread: thread, Object: object, Other: other, N: n}
}

func feed(o *Observer, events ...trace.Event) {
	for _, e := range events {
		o.Emit(e)
	}
}

func findSpans(spans []Span, kind SpanKind, thread string) []Span {
	var out []Span
	for _, s := range spans {
		if s.Kind == kind && s.Thread == thread {
			out = append(out, s)
		}
	}
	return out
}

func TestHoldSpanBasic(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "T", "", "", 5),
		ev(10, trace.MonitorAcquired, "T", "M", "", 0),
		ev(40, trace.MonitorExit, "T", "M", "", 0),
		ev(50, trace.ThreadEnd, "T", "", "", 0),
	)
	holds := findSpans(o.Spans(), SpanHold, "T")
	if len(holds) != 1 {
		t.Fatalf("hold spans = %d, want 1", len(holds))
	}
	s := holds[0]
	if s.Start != 10 || s.End != 40 || s.Duration() != 30 || s.Depth != 1 || s.RolledBack || s.Unresolved {
		t.Fatalf("span = %+v", s)
	}
	if got := o.Metrics().HoldPerMonitor("M").Sum(); got != 30 {
		t.Fatalf("hold histogram sum = %d, want 30", got)
	}
	if o.Dropped() != 0 {
		t.Fatalf("dropped = %d", o.Dropped())
	}
}

func TestBlockingSpanAttributedToHolder(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "low", "", "", 2),
		ev(0, trace.ThreadStart, "high", "", "", 8),
		ev(5, trace.MonitorAcquired, "low", "M", "", 0),
		ev(10, trace.MonitorBlocked, "high", "M", "low", 0),
		ev(30, trace.MonitorExit, "low", "M", "", 0),
		ev(30, trace.MonitorAcquired, "high", "M", "", 0),
		ev(50, trace.MonitorExit, "high", "M", "", 0),
	)
	blocks := findSpans(o.Spans(), SpanBlock, "high")
	if len(blocks) != 1 {
		t.Fatalf("block spans = %d, want 1", len(blocks))
	}
	b := blocks[0]
	if b.Holder != "low" || b.Start != 10 || b.End != 30 {
		t.Fatalf("block span = %+v", b)
	}
	if got := o.Metrics().BlockingPerThread("high").Sum(); got != 20 {
		t.Fatalf("blocking sum = %d, want 20", got)
	}
	if got := o.Metrics().ContentionPerMonitor("M").Sum(); got != 20 {
		t.Fatalf("contention sum = %d, want 20", got)
	}
}

func TestRollbackClosesNestAndAssignsWaste(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "low", "", "", 2),
		ev(5, trace.MonitorAcquired, "low", "A", "", 0),
		ev(10, trace.MonitorAcquired, "low", "B", "", 0),
		ev(20, trace.RevokeRequested, "low", "A", "high", 0),
		ev(25, trace.Rollback, "low", "A", "high", 17),
	)
	holds := findSpans(o.Spans(), SpanHold, "low")
	if len(holds) != 2 {
		t.Fatalf("hold spans = %d, want 2 (both rolled back)", len(holds))
	}
	var outer, inner Span
	for _, s := range holds {
		if s.Monitor == "A" {
			outer = s
		} else {
			inner = s
		}
	}
	if !outer.RolledBack || !inner.RolledBack {
		t.Fatalf("spans not marked rolled back: %+v %+v", outer, inner)
	}
	if outer.Wasted != 17 || inner.Wasted != 0 {
		t.Fatalf("wasted: outer=%d inner=%d, want 17/0", outer.Wasted, inner.Wasted)
	}
	if got := o.Metrics().RollbackWasted().Sum(); got != 17 {
		t.Fatalf("rollback wasted sum = %d, want 17", got)
	}
	chains := o.Chains()
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	c := chains[0]
	if c.Requester != "high" || c.Victim != "low" || !c.RolledBack || c.Wasted != 17 {
		t.Fatalf("chain = %+v", *c)
	}
}

// Rollback without a matching acquisition must not corrupt state or panic;
// it is counted as dropped (minus the metrics observation, which keeps the
// wasted-ticks total faithful to what the runtime reported).
func TestAdversarialRollbackWithoutEnter(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "T", "", "", 5),
		ev(10, trace.Rollback, "T", "M", "", 0),
		ev(20, trace.MonitorAcquired, "T", "M", "", 0),
		ev(30, trace.MonitorExit, "T", "M", "", 0),
	)
	if o.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", o.Dropped())
	}
	holds := findSpans(o.Spans(), SpanHold, "T")
	if len(holds) != 1 || holds[0].RolledBack {
		t.Fatalf("later spans corrupted: %+v", holds)
	}
}

// A monitor-exit with no open span (or the wrong monitor on top) is dropped.
func TestAdversarialExitMismatch(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.MonitorExit, "T", "M", "", 0),
		ev(5, trace.MonitorAcquired, "T", "A", "", 0),
		ev(10, trace.MonitorExit, "T", "B", "", 0),
	)
	if o.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", o.Dropped())
	}
}

// A pending-grant rollback (no span was ever opened) completes its chain as
// PendingGrant instead of dangling in await-reexecution.
func TestPendingGrantRollback(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "low", "", "", 2),
		ev(5, trace.RevokeRequested, "low", "M", "high", 0),
		ev(6, trace.Rollback, "low", "M", "high", 0),
	)
	chains := o.Chains()
	if len(chains) != 1 {
		t.Fatalf("chains = %d", len(chains))
	}
	if !chains[0].PendingGrant || !chains[0].RolledBack {
		t.Fatalf("chain = %+v", *chains[0])
	}
	if o.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", o.Dropped())
	}
}

func TestThreadEndsWhileBlocked(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "T", "", "", 5),
		ev(10, trace.MonitorBlocked, "T", "M", "owner", 0),
		ev(50, trace.ThreadEnd, "T", "", "", 0),
	)
	blocks := findSpans(o.Spans(), SpanBlock, "T")
	if len(blocks) != 1 {
		t.Fatalf("block spans = %d, want 1", len(blocks))
	}
	b := blocks[0]
	if !b.Unresolved || b.End != 50 {
		t.Fatalf("block span = %+v, want unresolved ending at 50", b)
	}
	// Unresolved waits must not pollute the latency histograms.
	if h := o.Metrics().BlockingPerThread("T"); h != nil && h.Count() != 0 {
		t.Fatalf("unresolved block recorded in histogram: %+v", h.Summary())
	}
}

// Two revocation chains from two requesters interleaved in time must stay
// separate: each keeps its own requester, rollback and re-execution.
func TestInterleavedChainsFromTwoRequesters(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "v1", "", "", 2),
		ev(0, trace.ThreadStart, "v2", "", "", 3),
		ev(0, trace.ThreadStart, "r1", "", "", 8),
		ev(0, trace.ThreadStart, "r2", "", "", 9),
		ev(5, trace.MonitorAcquired, "v1", "A", "", 0),
		ev(6, trace.MonitorAcquired, "v2", "B", "", 0),
		ev(10, trace.InversionDetected, "r1", "A", "v1", 0),
		ev(10, trace.RevokeRequested, "v1", "A", "r1", 0),
		ev(12, trace.InversionDetected, "r2", "B", "v2", 0),
		ev(12, trace.RevokeRequested, "v2", "B", "r2", 0),
		ev(15, trace.Rollback, "v1", "A", "r1", 7),
		ev(16, trace.Reexecution, "v1", "A", "", 1),
		ev(20, trace.Rollback, "v2", "B", "r2", 9),
		ev(21, trace.Reexecution, "v2", "B", "", 1),
	)
	chains := o.Chains()
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2", len(chains))
	}
	for _, c := range chains {
		if !c.HasDetected || !c.RolledBack || !c.Reexecuted {
			t.Fatalf("incomplete chain %+v", *c)
		}
	}
	if chains[0].Requester != "r1" || chains[0].Wasted != 7 {
		t.Fatalf("chain 1 = %+v", *chains[0])
	}
	if chains[1].Requester != "r2" || chains[1].Wasted != 9 {
		t.Fatalf("chain 2 = %+v", *chains[1])
	}
	if got := o.Metrics().RollbackWasted().Sum(); got != 16 {
		t.Fatalf("wasted sum = %d, want 16", got)
	}
}

// Object.wait splits a hold span: held → wait-start, wait-end → exit.
func TestWaitSplitsHoldSpan(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "T", "", "", 5),
		ev(10, trace.MonitorAcquired, "T", "M", "", 0),
		ev(20, trace.WaitStart, "T", "M", "", 0),
		ev(60, trace.WaitEnd, "T", "M", "", 0),
		ev(70, trace.MonitorExit, "T", "M", "", 0),
	)
	holds := findSpans(o.Spans(), SpanHold, "T")
	if len(holds) != 2 {
		t.Fatalf("hold spans = %d, want 2 (split at wait)", len(holds))
	}
	if holds[0].Start != 10 || holds[0].End != 20 {
		t.Fatalf("pre-wait span = %+v", holds[0])
	}
	if holds[1].Start != 60 || holds[1].End != 70 {
		t.Fatalf("post-wait span = %+v", holds[1])
	}
	if got := o.Metrics().HoldPerMonitor("M").Sum(); got != 20 {
		t.Fatalf("hold sum = %d, want 20 (wait time excluded)", got)
	}
}

// A thread blocked on one monitor that is interrupted and revoked on
// another: the open block span closes at the rollback.
func TestRollbackClosesOpenBlockSpan(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "T", "", "", 2),
		ev(5, trace.MonitorAcquired, "T", "A", "", 0),
		ev(10, trace.MonitorBlocked, "T", "B", "other", 0),
		ev(15, trace.RevokeRequested, "T", "A", "high", 0),
		ev(20, trace.Rollback, "T", "A", "high", 4),
	)
	blocks := findSpans(o.Spans(), SpanBlock, "T")
	if len(blocks) != 1 || blocks[0].End != 20 || blocks[0].Unresolved {
		t.Fatalf("block spans = %+v", blocks)
	}
	holds := findSpans(o.Spans(), SpanHold, "T")
	if len(holds) != 1 || !holds[0].RolledBack {
		t.Fatalf("hold spans = %+v", holds)
	}
}

// AllSpans materializes still-open spans as unresolved at the last tick.
func TestAllSpansMaterializesOpen(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "T", "", "", 5),
		ev(10, trace.MonitorAcquired, "T", "M", "", 0),
		ev(30, trace.MonitorBlocked, "U", "M", "T", 0),
	)
	all := o.AllSpans()
	if len(all) != 2 {
		t.Fatalf("AllSpans = %d, want 2", len(all))
	}
	for _, s := range all {
		if !s.Unresolved || s.End != 30 {
			t.Fatalf("open span not materialized at last tick: %+v", s)
		}
	}
	if len(o.Spans()) != 0 {
		t.Fatalf("AllSpans mutated closed-span state")
	}
}

// A superseding revoke request replaces the pending chain; the superseded
// one stays recorded but incomplete.
func TestSupersededRequest(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "v", "", "", 2),
		ev(5, trace.MonitorAcquired, "v", "M", "", 0),
		ev(10, trace.RevokeRequested, "v", "M", "r1", 0),
		ev(12, trace.RevokeRequested, "v", "M", "r2", 0),
		ev(15, trace.Rollback, "v", "M", "r2", 3),
	)
	chains := o.Chains()
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2", len(chains))
	}
	if chains[0].RolledBack {
		t.Fatalf("superseded chain completed: %+v", *chains[0])
	}
	if !chains[1].RolledBack || chains[1].Requester != "r2" {
		t.Fatalf("winning chain = %+v", *chains[1])
	}
}
