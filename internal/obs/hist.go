package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// Histogram accumulates virtual-time (tick) samples and answers exact
// percentile and total queries. Samples are retained: runs on the simulated
// VM emit at most a few thousand latency samples, and exact totals are a
// hard requirement (the rollback wasted-ticks histogram must reconcile
// tick-for-tick with core.Stats.WastedTicks). Percentiles use the
// nearest-rank definition on the sorted sample set.
//
// The zero value is ready to use.
type Histogram struct {
	samples []int64
	sum     int64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return int64(len(h.samples)) }

// Sum returns the exact total of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	return h.samples[0]
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() int64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	return h.samples[len(h.samples)-1]
}

// Percentile returns the nearest-rank p-th percentile (p in (0, 100]), or 0
// when the histogram is empty.
func (h *Histogram) Percentile(p float64) int64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.sortSamples()
	rank := int(p / 100 * float64(n))
	if float64(rank)*100 < p*float64(n) { // ceil without float drift
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return h.samples[rank-1]
}

func (h *Histogram) sortSamples() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// HistSummary is the serializable digest of a histogram: exact count/total
// plus the percentiles the evaluation reports. P999 (p99.9) is the fleet
// SLO tail: one VM instance rarely has enough samples for it to differ
// from Max, but the merged fleet distribution does.
type HistSummary struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
	P999  int64 `json:"p999"`
}

// Summary digests the histogram.
func (h *Histogram) Summary() HistSummary {
	return HistSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
	}
}

// Samples returns a copy of the raw sample set, in sorted order. The fleet
// merge uses it to combine instance histograms exactly rather than through
// their percentile digests.
func (h *Histogram) Samples() []int64 {
	h.sortSamples()
	out := make([]int64, len(h.samples))
	copy(out, h.samples)
	return out
}

// Bucket is one power-of-two bin of a rendered histogram: samples v with
// Lo <= v <= Hi.
type Bucket struct {
	Lo, Hi int64
	Count  int64
}

// Buckets bins the samples into power-of-two buckets ([0,0], [1,1], [2,3],
// [4,7], ...) for ASCII rendering. Empty leading/trailing buckets are
// omitted; interior empty buckets are kept so the shape reads correctly.
func (h *Histogram) Buckets() []Bucket {
	if len(h.samples) == 0 {
		return nil
	}
	counts := map[int]int64{}
	maxIdx := 0
	for _, v := range h.samples {
		idx := bucketIndex(v)
		counts[idx]++
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	minIdx := maxIdx
	for idx := range counts {
		if idx < minIdx {
			minIdx = idx
		}
	}
	var out []Bucket
	for idx := minIdx; idx <= maxIdx; idx++ {
		lo, hi := bucketBounds(idx)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: counts[idx]})
	}
	return out
}

// bucketIndex maps a sample to its bucket: 0 → [0,0], i>0 → [2^(i-1), 2^i-1].
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

func bucketBounds(idx int) (lo, hi int64) {
	if idx == 0 {
		return 0, 0
	}
	return int64(1) << (idx - 1), (int64(1) << idx) - 1
}

// renderLine writes a one-line digest of the histogram.
func renderLine(w io.Writer, label string, h *Histogram) {
	s := h.Summary()
	fmt.Fprintf(w, "  %-24s n=%-6d total=%-10d p50=%-8d p90=%-8d p99=%-8d p99.9=%-8d max=%d\n",
		label, s.Count, s.Sum, s.P50, s.P90, s.P99, s.P999, s.Max)
}
