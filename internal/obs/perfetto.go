package obs

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/trace"
)

// Perfetto / Chrome trace-event export. The emitted JSON is the legacy
// Chrome "JSON Array Format" ({"traceEvents": [...]}), which
// ui.perfetto.dev and chrome://tracing both ingest:
//
//   - one process (pid 1) for the VM, one track (tid) per VM thread, named
//     and sorted by descending priority;
//   - complete ("X") slices for monitor-held and blocked-on-monitor spans;
//   - instant ("i") events for detections, denials, rollbacks and deadlock
//     resolutions;
//   - flow arrows ("s" → "f") from each revoke request (requester's track)
//     to the rollback it caused (victim's track).
//
// Virtual-time ticks map 1:1 onto microseconds, the format's time unit.

const perfettoPid = 1

// perfettoInstants are the event kinds rendered as instant markers.
var perfettoInstants = map[trace.Kind]string{
	trace.InversionDetected: "inversion-detected",
	trace.RevokeRequested:   "revoke-requested",
	trace.RevokeDenied:      "revoke-denied",
	trace.Rollback:          "rollback",
	trace.Reexecution:       "re-execution",
	trace.NonRevocable:      "non-revocable",
	trace.StaticPreMark:     "static-premark",
	trace.RaceDetected:      "race-detected",
	trace.DeadlockDetected:  "deadlock-detected",
	trace.DeadlockBroken:    "deadlock-broken",
	trace.Notify:            "notify",
	trace.NativeCall:        "native-call",
}

// WritePerfetto serializes the observer's reconstruction as a Perfetto
// trace.
func WritePerfetto(w io.Writer, o *Observer) error {
	var events []map[string]any
	add := func(e map[string]any) { events = append(events, e) }

	// Track identity: tid by first-seen order, display order by priority.
	tids := make(map[string]int, len(o.order))
	for i, name := range o.order {
		tids[name] = i + 1
	}
	tid := func(thread string) int {
		if t, ok := tids[thread]; ok {
			return t
		}
		// A thread seen only inside span attribution (adversarial stream):
		// give it a stable track past the known ones.
		t := len(tids) + 1
		tids[thread] = t
		o.order = append(o.order, thread)
		return t
	}

	add(map[string]any{
		"ph": "M", "pid": perfettoPid, "name": "process_name",
		"args": map[string]any{"name": "rvm revocation runtime"},
	})
	byPrio := append([]string(nil), o.order...)
	sort.SliceStable(byPrio, func(i, j int) bool {
		return o.ThreadPriority(byPrio[i]) > o.ThreadPriority(byPrio[j])
	})
	for rank, name := range byPrio {
		add(map[string]any{
			"ph": "M", "pid": perfettoPid, "tid": tid(name), "name": "thread_name",
			"args": map[string]any{"name": name},
		})
		add(map[string]any{
			"ph": "M", "pid": perfettoPid, "tid": tid(name), "name": "thread_sort_index",
			"args": map[string]any{"sort_index": rank},
		})
	}

	for _, s := range o.AllSpans() {
		name := "hold " + s.Monitor
		cat := "monitor"
		if s.Kind == SpanBlock {
			name = "blocked " + s.Monitor
			cat = "blocked"
		}
		args := map[string]any{"monitor": s.Monitor}
		if s.Kind == SpanHold {
			args["depth"] = s.Depth
			if s.RolledBack {
				args["rolled_back"] = true
				args["wasted_ticks"] = int64(s.Wasted)
			}
		} else if s.Holder != "" {
			args["holder"] = s.Holder
		}
		if s.Unresolved {
			args["unresolved"] = true
		}
		dur := int64(s.Duration())
		if dur < 0 {
			dur = 0
		}
		add(map[string]any{
			"ph": "X", "pid": perfettoPid, "tid": tid(s.Thread), "name": name, "cat": cat,
			"ts": int64(s.Start), "dur": dur, "args": args,
		})
	}

	for _, e := range o.events {
		name, ok := perfettoInstants[e.Kind]
		if !ok || e.Thread == "" {
			continue
		}
		args := map[string]any{"detail": e.Detail}
		if e.Object != "" {
			args["monitor"] = e.Object
		}
		if e.Other != "" {
			args["other"] = e.Other
		}
		add(map[string]any{
			"ph": "i", "s": "t", "pid": perfettoPid, "tid": tid(e.Thread),
			"name": name, "cat": "revocation", "ts": int64(e.At), "args": args,
		})
	}

	// Flow arrows: revoke request → rollback.
	for _, c := range o.chains {
		if !c.RolledBack {
			continue
		}
		from := c.Requester
		if from == "" {
			from = c.Victim
		}
		add(map[string]any{
			"ph": "s", "pid": perfettoPid, "tid": tid(from), "id": c.ID,
			"name": "revocation", "cat": "revoke-flow", "ts": int64(c.RequestedAt),
		})
		add(map[string]any{
			"ph": "f", "bp": "e", "pid": perfettoPid, "tid": tid(c.Victim), "id": c.ID,
			"name": "revocation", "cat": "revoke-flow", "ts": int64(c.RolledBackAt),
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
