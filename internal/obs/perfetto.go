package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Perfetto / Chrome trace-event export. The emitted JSON is the legacy
// Chrome "JSON Array Format" ({"traceEvents": [...]}), which
// ui.perfetto.dev and chrome://tracing both ingest:
//
//   - one process (pid 1) for the VM, one track (tid) per VM thread, named
//     and sorted by descending priority;
//   - complete ("X") slices for monitor-held and blocked-on-monitor spans;
//   - instant ("i") events for detections, denials, rollbacks and deadlock
//     resolutions;
//   - flow arrows ("s" → "f") from each revoke request (requester's track)
//     to the rollback it caused (victim's track).
//
// Virtual-time ticks map 1:1 onto microseconds, the format's time unit.

const perfettoPid = 1

// perfettoInstants are the event kinds rendered as instant markers.
var perfettoInstants = map[trace.Kind]string{
	trace.InversionDetected: "inversion-detected",
	trace.RevokeRequested:   "revoke-requested",
	trace.RevokeDenied:      "revoke-denied",
	trace.Rollback:          "rollback",
	trace.Reexecution:       "re-execution",
	trace.NonRevocable:      "non-revocable",
	trace.StaticPreMark:     "static-premark",
	trace.RaceDetected:      "race-detected",
	trace.DeadlockDetected:  "deadlock-detected",
	trace.DeadlockBroken:    "deadlock-broken",
	trace.Notify:            "notify",
	trace.NativeCall:        "native-call",
}

// WritePerfetto serializes the observer's reconstruction as a Perfetto
// trace.
func WritePerfetto(w io.Writer, o *Observer) error {
	var events []map[string]any
	add := func(e map[string]any) { events = append(events, e) }

	// Track identity: tid by first-seen order, display order by priority.
	tids := make(map[string]int, len(o.order))
	for i, name := range o.order {
		tids[name] = i + 1
	}
	tid := func(thread string) int {
		if t, ok := tids[thread]; ok {
			return t
		}
		// A thread seen only inside span attribution (adversarial stream):
		// give it a stable track past the known ones.
		t := len(tids) + 1
		tids[thread] = t
		o.order = append(o.order, thread)
		return t
	}

	add(map[string]any{
		"ph": "M", "pid": perfettoPid, "name": "process_name",
		"args": map[string]any{"name": "rvm revocation runtime"},
	})
	byPrio := append([]string(nil), o.order...)
	sort.SliceStable(byPrio, func(i, j int) bool {
		return o.ThreadPriority(byPrio[i]) > o.ThreadPriority(byPrio[j])
	})
	for rank, name := range byPrio {
		add(map[string]any{
			"ph": "M", "pid": perfettoPid, "tid": tid(name), "name": "thread_name",
			"args": map[string]any{"name": name},
		})
		add(map[string]any{
			"ph": "M", "pid": perfettoPid, "tid": tid(name), "name": "thread_sort_index",
			"args": map[string]any{"sort_index": rank},
		})
	}

	for _, s := range o.AllSpans() {
		name := "hold " + s.Monitor
		cat := "monitor"
		if s.Kind == SpanBlock {
			name = "blocked " + s.Monitor
			cat = "blocked"
		}
		args := map[string]any{"monitor": s.Monitor}
		if s.Kind == SpanHold {
			args["depth"] = s.Depth
			if s.RolledBack {
				args["rolled_back"] = true
				args["wasted_ticks"] = int64(s.Wasted)
			}
		} else if s.Holder != "" {
			args["holder"] = s.Holder
		}
		if s.Unresolved {
			args["unresolved"] = true
		}
		dur := int64(s.Duration())
		if dur < 0 {
			dur = 0
		}
		add(map[string]any{
			"ph": "X", "pid": perfettoPid, "tid": tid(s.Thread), "name": name, "cat": cat,
			"ts": int64(s.Start), "dur": dur, "args": args,
		})
	}

	for _, e := range o.events {
		name, ok := perfettoInstants[e.Kind]
		if !ok || e.Thread == "" {
			continue
		}
		args := map[string]any{"detail": e.Detail}
		if e.Object != "" {
			args["monitor"] = e.Object
		}
		if e.Other != "" {
			args["other"] = e.Other
		}
		add(map[string]any{
			"ph": "i", "s": "t", "pid": perfettoPid, "tid": tid(e.Thread),
			"name": name, "cat": "revocation", "ts": int64(e.At), "args": args,
		})
	}

	// Counter tracks ("C" events): runnable threads, held monitors, total
	// undo-log depth. Derived from the event stream and the reconstructed
	// spans, so profiler output and Perfetto traces line up in the UI.
	counter := func(ts int64, name, key string, v int64) {
		add(map[string]any{
			"ph": "C", "pid": perfettoPid, "name": name, "cat": "counter",
			"ts": ts, "args": map[string]any{key: v},
		})
	}

	// Runnable threads: a per-thread state machine over the event stream.
	// Blocking events park a thread; acquisition, wait-end and rollback
	// delivery resume it. Timestamps are nondecreasing in emit order;
	// samples coalesce to one per distinct timestamp (e.g. both threads
	// starting at tick 0 is one jump to 2, not two samples).
	runnableState := make(map[string]bool)
	runnable, lastRunnable := int64(0), int64(0)
	runnableTs := int64(-1)
	flushRunnable := func() {
		if runnableTs >= 0 && runnable != lastRunnable {
			counter(runnableTs, "runnable threads", "runnable", runnable)
			lastRunnable = runnable
		}
	}
	for _, e := range o.events {
		if e.Thread == "" {
			continue
		}
		if ts := int64(e.At); ts != runnableTs {
			flushRunnable()
			runnableTs = ts
		}
		switch e.Kind {
		case trace.ThreadStart:
			if !runnableState[e.Thread] {
				runnableState[e.Thread] = true
				runnable++
			}
		case trace.ThreadEnd, trace.MonitorBlocked, trace.WaitStart:
			if runnableState[e.Thread] {
				runnableState[e.Thread] = false
				runnable--
			}
		case trace.MonitorAcquired, trace.WaitEnd, trace.Rollback:
			if _, seen := runnableState[e.Thread]; seen && !runnableState[e.Thread] {
				runnableState[e.Thread] = true
				runnable++
			}
		}
	}
	flushRunnable()

	// Held monitors: boundary sweep over the reconstructed hold spans,
	// counting monitors with at least one covering span. Exits sort before
	// acquisitions at the same tick so a direct handoff is flat.
	type edge struct {
		ts  int64
		mon string
		d   int
	}
	var edges []edge
	for _, s := range o.AllSpans() {
		if s.Kind != SpanHold {
			continue
		}
		edges = append(edges, edge{int64(s.Start), s.Monitor, +1})
		if !s.Unresolved {
			edges = append(edges, edge{int64(s.End), s.Monitor, -1})
		}
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].ts != edges[j].ts {
			return edges[i].ts < edges[j].ts
		}
		return edges[i].d < edges[j].d
	})
	holdCount := make(map[string]int)
	held := int64(0)
	for i, ed := range edges {
		prevCover := holdCount[ed.mon] > 0
		holdCount[ed.mon] += ed.d
		if nowCover := holdCount[ed.mon] > 0; nowCover != prevCover {
			if nowCover {
				held++
			} else {
				held--
			}
		}
		// Coalesce: emit once per distinct timestamp, after its last edge.
		if i+1 == len(edges) || edges[i+1].ts != ed.ts {
			counter(ed.ts, "held monitors", "held", held)
		}
	}

	// Total undo-log depth: MonitorAcquired/MonitorExit carry the emitting
	// thread's undo-log length in N; Rollback reports the replayed entry
	// count in its detail ("undone=K"). Summed across threads.
	logDepth := make(map[string]int64)
	totalDepth, lastDepth := int64(0), int64(0)
	depthTs := int64(-1)
	flushDepth := func() {
		if depthTs >= 0 && totalDepth != lastDepth {
			counter(depthTs, "undo-log entries", "entries", totalDepth)
			lastDepth = totalDepth
		}
	}
	for _, e := range o.events {
		if e.Thread == "" {
			continue
		}
		if ts := int64(e.At); ts != depthTs {
			flushDepth()
			depthTs = ts
		}
		switch e.Kind {
		case trace.MonitorAcquired, trace.MonitorExit:
			totalDepth += e.N - logDepth[e.Thread]
			logDepth[e.Thread] = e.N
		case trace.Rollback:
			if u := parseUndone(e.Detail); u > 0 {
				d := logDepth[e.Thread] - u
				if d < 0 {
					d = 0
				}
				totalDepth += d - logDepth[e.Thread]
				logDepth[e.Thread] = d
			}
		}
	}
	flushDepth()

	// Flow arrows: revoke request → rollback.
	for _, c := range o.chains {
		if !c.RolledBack {
			continue
		}
		from := c.Requester
		if from == "" {
			from = c.Victim
		}
		add(map[string]any{
			"ph": "s", "pid": perfettoPid, "tid": tid(from), "id": c.ID,
			"name": "revocation", "cat": "revoke-flow", "ts": int64(c.RequestedAt),
		})
		add(map[string]any{
			"ph": "f", "bp": "e", "pid": perfettoPid, "tid": tid(c.Victim), "id": c.ID,
			"name": "revocation", "cat": "revoke-flow", "ts": int64(c.RolledBackAt),
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// parseUndone extracts K from an "undone=K" token in a rollback event's
// detail string; 0 when absent.
func parseUndone(detail string) int64 {
	for _, f := range strings.Fields(detail) {
		var v int64
		if _, err := fmt.Sscanf(f, "undone=%d", &v); err == nil {
			return v
		}
	}
	return 0
}
