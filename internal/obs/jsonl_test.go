package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

// goldenKinds pins the JSONL kind vocabulary. A rename or reorder in
// internal/trace changes the wire format every downstream consumer parses,
// so it must fail this test loudly and force a SchemaVersion bump review.
var goldenKinds = []string{
	"thread-start",
	"thread-end",
	"context-switch",
	"monitor-enter",
	"monitor-acquired",
	"monitor-blocked",
	"monitor-exit",
	"inversion-detected",
	"revoke-requested",
	"revoke-denied",
	"rollback",
	"re-execution",
	"non-revocable",
	"deadlock-detected",
	"deadlock-broken",
	"wait-start",
	"wait-end",
	"notify",
	"native-call",
	"volatile-write",
	"volatile-read",
	"custom",
	"static-premark",
	"race-detected",
	"sleep",
	"sched-idle",
}

func TestKindNamesGolden(t *testing.T) {
	got := KindNames()
	if len(got) != len(goldenKinds) {
		t.Fatalf("kind vocabulary has %d names, golden has %d — new kinds must be appended to the golden list (and consumers reviewed): %v",
			len(got), len(goldenKinds), got)
	}
	for i, want := range goldenKinds {
		if got[i] != want {
			t.Errorf("kind %d = %q, want %q — renaming a kind changes the JSONL wire format; bump SchemaVersion", i, got[i], want)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	events := []trace.Event{
		ev(0, trace.ThreadStart, "T1", "", "", 8),
		ev(5, trace.MonitorAcquired, "T1", "M", "", 0),
		ev(9, trace.RevokeRequested, "T1", "M", "T2", 0),
		ev(12, trace.Rollback, "T1", "M", "T2", 7),
	}
	for _, e := range events {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateJSONL: %v\n%s", err, buf.String())
	}
	if n != len(events) {
		t.Fatalf("validated %d events, want %d", n, len(events))
	}
	// Payload fields survive the trip.
	if !strings.Contains(buf.String(), `"other":"T2"`) || !strings.Contains(buf.String(), `"n":7`) {
		t.Fatalf("payload fields missing:\n%s", buf.String())
	}
	// Exactly meta + events lines.
	lines := strings.Count(strings.TrimRight(buf.String(), "\n"), "\n") + 1
	if lines != len(events)+1 {
		t.Fatalf("wrote %d lines, want %d", lines, len(events)+1)
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	meta := func() string {
		var b bytes.Buffer
		NewJSONLWriter(&b).Close()
		return b.String()
	}()
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"not json", "hello\n"},
		{"wrong type", `{"type":"event","at":0,"kind":"rollback"}` + "\n"},
		{"wrong version", `{"type":"meta","v":999,"schema":"rvm-trace","kinds":["rollback"]}` + "\n"},
		{"wrong schema", `{"type":"meta","v":1,"schema":"other","kinds":["rollback"]}` + "\n"},
		{"incomplete vocabulary", `{"type":"meta","v":1,"schema":"rvm-trace","kinds":["rollback"]}` + "\n"},
		{"unknown kind", meta + `{"type":"event","at":1,"kind":"bogus"}` + "\n"},
		{"negative timestamp", meta + `{"type":"event","at":-1,"kind":"rollback"}` + "\n"},
		{"event wrong type", meta + `{"type":"meta","at":1,"kind":"rollback"}` + "\n"},
	}
	for _, c := range cases {
		if _, err := ValidateJSONL(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: validated, want error", c.name)
		}
	}
}

func TestValidateJSONLAllowsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Emit(ev(3, trace.Rollback, "T", "M", "", 0))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n") // trailing blank line is tolerated
	n, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}
