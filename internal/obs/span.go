// Package obs is the observability layer of the revocation runtime. It
// consumes the flat trace.Sink event stream and reconstructs the causal
// structure the paper's evaluation (Figures 5–8) measures:
//
//   - hold spans: monitor-held intervals (acquired → exit, or → rollback),
//   - blocking spans: blocked → acquired intervals, attributed to the
//     holder that caused the wait,
//   - revocation chains: inversion-detected → revoke-requested → rollback
//     → re-execution sequences, attributed to the requesting
//     (high-priority) thread, carrying the wasted-work ticks.
//
// On top of spans a metrics registry aggregates virtual-time histograms
// (per-monitor hold time and contention, per-thread blocking time, rollback
// wasted ticks, re-execution counts), and two exporters serialize runs: a
// schema-versioned JSONL structured-event stream and a Chrome trace-event /
// Perfetto JSON file (one track per VM thread, flow arrows from
// revoke-request to rollback) that opens directly in ui.perfetto.dev.
package obs

import "repro/internal/simtime"

// SpanKind classifies a reconstructed span.
type SpanKind int

const (
	// SpanHold is a monitor-held interval of one thread.
	SpanHold SpanKind = iota
	// SpanBlock is a blocked-on-monitor interval of one thread.
	SpanBlock
)

func (k SpanKind) String() string {
	if k == SpanBlock {
		return "block"
	}
	return "hold"
}

// Span is one reconstructed interval of a thread's execution.
type Span struct {
	Kind    SpanKind
	Thread  string
	Monitor string
	Start   simtime.Ticks
	End     simtime.Ticks

	// Depth is the synchronized-section nesting depth at acquisition
	// (1 = outermost). Hold spans only.
	Depth int

	// Holder names the thread that owned the monitor when this thread
	// blocked — the cause of the wait. Empty for admission-queue waits on a
	// free monitor. Block spans only.
	Holder string

	// RolledBack marks a hold span closed by revocation rather than a
	// normal exit.
	RolledBack bool
	// Wasted is the CPU work discarded by the rollback that closed this
	// span, in ticks. Set on the outermost revoked span of a rollback (the
	// paper's wasted-work measure); inner spans of the same rollback carry 0.
	Wasted simtime.Ticks

	// Unresolved marks a span that never saw its closing event: the thread
	// ended while blocked, or the trace was truncated. End is the last tick
	// the reconstruction saw the thread alive.
	Unresolved bool
}

// Duration returns the span length in ticks.
func (s Span) Duration() simtime.Ticks { return s.End - s.Start }

// Chain is one reconstructed revocation chain. A chain is created by a
// revoke-requested event and accretes the surrounding causality: the
// inversion detection that triggered it, the rollback that executed it and
// the re-execution that repaid it.
type Chain struct {
	ID        int    // stable per-observer sequence number (flow-arrow id)
	Requester string // high-priority thread that requested the revocation
	Victim    string // thread whose section was revoked
	Monitor   string
	Reason    string // "priority-inversion" or "deadlock" (from the request detail)

	DetectedAt   simtime.Ticks // inversion-detected tick (when HasDetected)
	RequestedAt  simtime.Ticks
	RolledBackAt simtime.Ticks
	ReexecutedAt simtime.Ticks
	HasDetected  bool
	RolledBack   bool
	Reexecuted   bool
	Denied       bool
	// PendingGrant marks a revocation of a granted-but-unentered monitor
	// handoff: the victim never executed the section, so no re-execution
	// follows and no work was wasted.
	PendingGrant bool

	// Wasted is the CPU work in ticks the rollback discarded.
	Wasted simtime.Ticks
}
