package obs

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// TestEndToEndInversionReconciles runs the paper's Figure 1 scenario on a
// real revocation runtime with an Observer multiplexed next to a Recorder
// and checks the acceptance criterion: the rollback wasted-ticks histogram
// total reconciles exactly with core.Stats.WastedTicks, and the causal
// reconstruction (chain, spans, attribution) matches the scenario.
func TestEndToEndInversionReconciles(t *testing.T) {
	o := NewObserver()
	var rec trace.Recorder
	rt := core.New(core.Config{
		Mode:     core.Revocation,
		Sched:    sched.Config{Quantum: 50},
		Tracer:   &rec,
		Observer: o,
	})
	m := rt.NewMonitor("M")
	rt.Spawn("Tl", sched.LowPriority, func(tk *core.Task) {
		tk.Synchronized(m, func() {
			tk.Work(500)
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *core.Task) {
		tk.Work(10)
		tk.Synchronized(m, func() {
			tk.Work(50)
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Rollbacks == 0 {
		t.Fatal("scenario produced no rollback")
	}

	// Acceptance: exact reconciliation of wasted work.
	if got, want := o.Metrics().RollbackWasted().Sum(), int64(st.WastedTicks); got != want {
		t.Errorf("rollback wasted histogram sum = %d, want Stats.WastedTicks = %d", got, want)
	}
	if got, want := o.Metrics().RollbackWasted().Count(), st.Rollbacks+st.PreemptedGrants; got != want {
		t.Errorf("rollback samples = %d, want rollbacks+preempted grants = %d", got, want)
	}

	// Both sinks saw the identical stream (trace.Multi path).
	if rec.Len() != len(o.Events()) {
		t.Errorf("recorder saw %d events, observer %d", rec.Len(), len(o.Events()))
	}

	// The revocation chain: Th requested, Tl rolled back and re-executed.
	var complete *Chain
	for _, c := range o.Chains() {
		if c.RolledBack && c.Reexecuted {
			complete = c
			break
		}
	}
	if complete == nil {
		t.Fatalf("no complete revocation chain; chains = %d", len(o.Chains()))
	}
	if complete.Requester != "Th" || complete.Victim != "Tl" || complete.Monitor != "M" {
		t.Errorf("chain attribution = requester %q victim %q monitor %q", complete.Requester, complete.Victim, complete.Monitor)
	}
	if complete.Reason != "priority-inversion" {
		t.Errorf("chain reason = %q", complete.Reason)
	}
	if !complete.HasDetected || complete.DetectedAt > complete.RequestedAt ||
		complete.RequestedAt > complete.RolledBackAt || complete.RolledBackAt > complete.ReexecutedAt {
		t.Errorf("chain not causally ordered: %+v", *complete)
	}

	// Span reconstruction: rolled-back hold spans for Tl whose wasted
	// ticks sum to the runtime total, and Th's blocking span attributed
	// to Tl.
	var rolledBack, blocked bool
	var spanWasted simtime.Ticks
	for _, s := range o.Spans() {
		if s.Kind == SpanHold && s.Thread == "Tl" && s.RolledBack {
			rolledBack = true
			spanWasted += s.Wasted
		}
		if s.Kind == SpanBlock && s.Thread == "Th" && s.Holder == "Tl" {
			blocked = true
		}
		if s.Unresolved {
			t.Errorf("unresolved span in a clean run: %+v", s)
		}
	}
	if !rolledBack {
		t.Error("no rolled-back hold span for Tl")
	}
	if spanWasted != st.WastedTicks {
		t.Errorf("span wasted sum = %d, want %d", spanWasted, st.WastedTicks)
	}
	if !blocked {
		t.Error("no blocking span for Th attributed to Tl")
	}
	if o.Dropped() != 0 {
		t.Errorf("dropped = %d on a real runtime stream", o.Dropped())
	}

	// Per-thread blocking time is recorded for the high-priority thread.
	bh := o.Metrics().BlockingPerThread("Th")
	if bh == nil || bh.Count() == 0 {
		t.Error("no blocking-time samples for Th")
	}
}

// TestContendedWorkloadCleanReconstruction drives several threads over
// several monitors and checks the observer stays consistent at scale: no
// dropped events, every span closes, wasted totals reconcile.
func TestContendedWorkloadCleanReconstruction(t *testing.T) {
	o := NewObserver()
	rt := core.New(core.Config{
		Mode:     core.Revocation,
		Sched:    sched.Config{Quantum: 40, Seed: 7},
		Observer: o,
	})
	mA := rt.NewMonitor("A")
	mB := rt.NewMonitor("B")
	mC := rt.NewMonitor("C")
	for i := 0; i < 3; i++ {
		rt.Spawn(fmt.Sprintf("low%d", i), sched.LowPriority, func(tk *core.Task) {
			for j := 0; j < 4; j++ {
				tk.Synchronized(mA, func() {
					tk.Work(60)
					tk.Synchronized(mB, func() { tk.Work(30) })
				})
				tk.Sleep(15)
			}
		})
	}
	for i := 0; i < 2; i++ {
		rt.Spawn(fmt.Sprintf("high%d", i), sched.HighPriority, func(tk *core.Task) {
			tk.Sleep(20)
			for j := 0; j < 4; j++ {
				tk.Synchronized(mA, func() { tk.Work(20) })
				tk.Synchronized(mC, func() { tk.Work(10) })
				tk.Sleep(25)
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if got, want := o.Metrics().RollbackWasted().Sum(), int64(st.WastedTicks); got != want {
		t.Errorf("wasted sum = %d, want %d", got, want)
	}
	if o.Dropped() != 0 {
		t.Errorf("dropped = %d", o.Dropped())
	}
	for _, s := range o.Spans() {
		if s.Unresolved {
			t.Errorf("unresolved span: %+v", s)
		}
		if s.Duration() < 0 {
			t.Errorf("negative span: %+v", s)
		}
	}
	if len(o.AllSpans()) != len(o.Spans()) {
		t.Errorf("open spans remain after a clean run")
	}
	// Re-execution counts match the runtime's counter.
	var reexecs int64
	for _, n := range o.Metrics().Reexecutions() {
		reexecs += n
	}
	if reexecs != st.Reexecutions {
		t.Errorf("re-executions = %d, want %d", reexecs, st.Reexecutions)
	}
}

// TestMetricsRenderAndJSON smoke-tests the two summary emitters.
func TestMetricsRenderAndJSON(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "T", "", "", 5),
		ev(10, trace.MonitorAcquired, "T", "M", "", 0),
		ev(40, trace.MonitorExit, "T", "M", "", 0),
	)
	var txt bytes.Buffer
	o.Metrics().Render(&txt)
	if txt.Len() == 0 {
		t.Fatal("empty text render")
	}
	var js bytes.Buffer
	if err := o.Metrics().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(js.Bytes(), []byte("\"hold_per_monitor\"")) {
		t.Fatalf("JSON summary missing sections: %s", js.String())
	}
}
