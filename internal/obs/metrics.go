package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Metrics aggregates the latency histograms of one observed run — the
// distributions behind the paper's Figures 5–8: how long threads block, how
// long monitors are held and contended, and how much work rollbacks waste.
// All values are virtual-time ticks.
type Metrics struct {
	holdPerMonitor       map[string]*Histogram
	contentionPerMonitor map[string]*Histogram
	blockingPerThread    map[string]*Histogram
	wastedPerThread      map[string]*Histogram
	rollbackWasted       *Histogram
	reexecPerThread      map[string]int64
}

func newMetrics() *Metrics {
	return &Metrics{
		holdPerMonitor:       make(map[string]*Histogram),
		contentionPerMonitor: make(map[string]*Histogram),
		blockingPerThread:    make(map[string]*Histogram),
		wastedPerThread:      make(map[string]*Histogram),
		rollbackWasted:       &Histogram{},
		reexecPerThread:      make(map[string]int64),
	}
}

func hist(m map[string]*Histogram, key string) *Histogram {
	h, ok := m[key]
	if !ok {
		h = &Histogram{}
		m[key] = h
	}
	return h
}

func (m *Metrics) observeHold(s Span) {
	hist(m.holdPerMonitor, s.Monitor).Observe(int64(s.Duration()))
}

func (m *Metrics) observeBlocking(s Span) {
	hist(m.blockingPerThread, s.Thread).Observe(int64(s.Duration()))
	hist(m.contentionPerMonitor, s.Monitor).Observe(int64(s.Duration()))
}

func (m *Metrics) observeRollback(thread string, wasted int64) {
	m.rollbackWasted.Observe(wasted)
	hist(m.wastedPerThread, thread).Observe(wasted)
}

func (m *Metrics) observeReexecution(thread string) {
	m.reexecPerThread[thread]++
}

// HoldPerMonitor returns the hold-time histogram of one monitor (nil when
// the monitor was never held).
func (m *Metrics) HoldPerMonitor(monitor string) *Histogram { return m.holdPerMonitor[monitor] }

// ContentionPerMonitor returns the blocking-time histogram of one monitor.
func (m *Metrics) ContentionPerMonitor(monitor string) *Histogram {
	return m.contentionPerMonitor[monitor]
}

// HoldPerMonitorAll returns every monitor's hold-time histogram.
func (m *Metrics) HoldPerMonitorAll() map[string]*Histogram { return m.holdPerMonitor }

// ContentionPerMonitorAll returns every monitor's blocking-time histogram.
func (m *Metrics) ContentionPerMonitorAll() map[string]*Histogram { return m.contentionPerMonitor }

// BlockingPerThread returns one thread's blocking-time histogram.
func (m *Metrics) BlockingPerThread(thread string) *Histogram { return m.blockingPerThread[thread] }

// BlockingPerThreadAll returns every thread's blocking-time histogram.
func (m *Metrics) BlockingPerThreadAll() map[string]*Histogram { return m.blockingPerThread }

// RollbackWasted returns the histogram of discarded work per rollback; its
// Sum reconciles exactly with core.Stats.WastedTicks.
func (m *Metrics) RollbackWasted() *Histogram { return m.rollbackWasted }

// WastedPerThread returns one thread's rollback wasted-ticks histogram.
func (m *Metrics) WastedPerThread(thread string) *Histogram { return m.wastedPerThread[thread] }

// Reexecutions returns the per-thread re-execution counts.
func (m *Metrics) Reexecutions() map[string]int64 { return m.reexecPerThread }

// MetricsSummary is the serializable digest of a Metrics registry.
type MetricsSummary struct {
	SchemaVersion        int                    `json:"v"`
	BlockingPerThread    map[string]HistSummary `json:"blocking_per_thread,omitempty"`
	HoldPerMonitor       map[string]HistSummary `json:"hold_per_monitor,omitempty"`
	ContentionPerMonitor map[string]HistSummary `json:"contention_per_monitor,omitempty"`
	WastedPerThread      map[string]HistSummary `json:"wasted_per_thread,omitempty"`
	RollbackWasted       HistSummary            `json:"rollback_wasted"`
	Reexecutions         map[string]int64       `json:"reexecutions,omitempty"`
}

func summarize(m map[string]*Histogram) map[string]HistSummary {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]HistSummary, len(m))
	for k, h := range m {
		out[k] = h.Summary()
	}
	return out
}

// Summary digests every histogram.
func (m *Metrics) Summary() MetricsSummary {
	return MetricsSummary{
		SchemaVersion:        SchemaVersion,
		BlockingPerThread:    summarize(m.blockingPerThread),
		HoldPerMonitor:       summarize(m.holdPerMonitor),
		ContentionPerMonitor: summarize(m.contentionPerMonitor),
		WastedPerThread:      summarize(m.wastedPerThread),
		RollbackWasted:       m.rollbackWasted.Summary(),
		Reexecutions:         m.reexecPerThread,
	}
}

// WriteJSON writes the summary as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Summary())
}

// Render writes the metrics as aligned text, one histogram per line,
// percentiles in ticks.
func (m *Metrics) Render(w io.Writer) {
	section := func(title string, hs map[string]*Histogram) {
		if len(hs) == 0 {
			return
		}
		fmt.Fprintf(w, "%s (ticks):\n", title)
		for _, k := range sortedKeys(hs) {
			renderLine(w, k, hs[k])
		}
	}
	section("blocking time per thread", m.blockingPerThread)
	section("hold time per monitor", m.holdPerMonitor)
	section("contention per monitor", m.contentionPerMonitor)
	if m.rollbackWasted.Count() > 0 {
		fmt.Fprintf(w, "rollback wasted work (ticks):\n")
		renderLine(w, "all rollbacks", m.rollbackWasted)
		for _, k := range sortedKeys(m.wastedPerThread) {
			renderLine(w, k, m.wastedPerThread[k])
		}
	}
	if len(m.reexecPerThread) > 0 {
		fmt.Fprintf(w, "re-executions:\n")
		keys := make([]string, 0, len(m.reexecPerThread))
		for k := range m.reexecPerThread {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-24s %d\n", k, m.reexecPerThread[k])
		}
	}
}

func sortedKeys(m map[string]*Histogram) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
