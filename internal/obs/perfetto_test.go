package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
)

// perfettoDoc mirrors the emitted JSON for structural validation.
type perfettoDoc struct {
	TraceEvents []struct {
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ts   *int64         `json:"ts"`
		Dur  *int64         `json:"dur"`
		ID   int            `json:"id"`
		BP   string         `json:"bp"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func writeDoc(t *testing.T, o *Observer) perfettoDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, o); err != nil {
		t.Fatal(err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	return doc
}

// TestPerfettoStructure checks the acceptance shape on a real inversion
// run: per-thread name metadata, X slices with ts/dur, and an s→f flow
// pair from the revoke request to the rollback with matching ids.
func TestPerfettoStructure(t *testing.T) {
	o := NewObserver()
	rt := core.New(core.Config{
		Mode:     core.Revocation,
		Sched:    sched.Config{Quantum: 50},
		Observer: o,
	})
	m := rt.NewMonitor("M")
	rt.Spawn("Tl", sched.LowPriority, func(tk *core.Task) {
		tk.Synchronized(m, func() { tk.Work(400) })
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *core.Task) {
		tk.Work(10)
		tk.Synchronized(m, func() { tk.Work(40) })
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}

	doc := writeDoc(t, o)
	if doc.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}

	threadNames := map[string]int{} // thread name -> tid
	var processNamed bool
	var slices, instants int
	flows := map[int][2]int{} // id -> {s count, f count}
	flowTid := map[int][2]int{}
	for _, e := range doc.TraceEvents {
		if e.Pid != 1 {
			t.Fatalf("event with pid %d, want 1: %+v", e.Pid, e)
		}
		switch e.Ph {
		case "M":
			switch e.Name {
			case "process_name":
				processNamed = true
			case "thread_name":
				threadNames[e.Args["name"].(string)] = e.Tid
			case "thread_sort_index":
				if _, ok := e.Args["sort_index"]; !ok {
					t.Error("thread_sort_index without sort_index arg")
				}
			}
		case "X":
			slices++
			if e.Ts == nil || e.Dur == nil {
				t.Fatalf("X slice without ts/dur: %+v", e)
			}
			if *e.Dur < 0 {
				t.Errorf("negative dur: %+v", e)
			}
			if e.Tid == 0 {
				t.Errorf("X slice without tid: %+v", e)
			}
		case "i":
			instants++
		case "s":
			c := flows[e.ID]
			c[0]++
			flows[e.ID] = c
			ft := flowTid[e.ID]
			ft[0] = e.Tid
			flowTid[e.ID] = ft
		case "f":
			c := flows[e.ID]
			c[1]++
			flows[e.ID] = c
			ft := flowTid[e.ID]
			ft[1] = e.Tid
			flowTid[e.ID] = ft
			if e.BP != "e" {
				t.Errorf("flow end without bp=e: %+v", e)
			}
		}
	}
	if !processNamed {
		t.Error("no process_name metadata")
	}
	for _, th := range []string{"Tl", "Th"} {
		if _, ok := threadNames[th]; !ok {
			t.Errorf("no thread_name metadata for %s (have %v)", th, threadNames)
		}
	}
	if slices == 0 {
		t.Error("no X slices")
	}
	if instants == 0 {
		t.Error("no instant markers")
	}
	if len(flows) == 0 {
		t.Fatal("no flow arrows for a run with a rollback")
	}
	for id, c := range flows {
		if c[0] != 1 || c[1] != 1 {
			t.Errorf("flow %d has %d starts and %d ends, want 1/1", id, c[0], c[1])
		}
		// Request starts on the requester's track, ends on the victim's.
		if flowTid[id][0] != threadNames["Th"] || flowTid[id][1] != threadNames["Tl"] {
			t.Errorf("flow %d tracks = %v, want s on Th(%d) f on Tl(%d)",
				id, flowTid[id], threadNames["Th"], threadNames["Tl"])
		}
	}
}

// TestPerfettoOpenSpansRendered checks that a truncated stream still
// produces slices (materialized as unresolved at the last tick).
func TestPerfettoOpenSpansRendered(t *testing.T) {
	o := NewObserver()
	feed(o,
		ev(0, trace.ThreadStart, "T", "", "", 5),
		ev(10, trace.MonitorAcquired, "T", "M", "", 0),
		ev(50, trace.ContextSwitch, "", "", "", 0),
	)
	doc := writeDoc(t, o)
	found := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "hold M" {
			found = true
			if e.Args["unresolved"] != true {
				t.Errorf("open span not marked unresolved: %+v", e)
			}
			if *e.Ts != 10 || *e.Dur != 40 {
				t.Errorf("open span ts/dur = %d/%d, want 10/40", *e.Ts, *e.Dur)
			}
		}
	}
	if !found {
		t.Fatal("open hold span not rendered")
	}
}
