package obs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/sched"
)

// invObserver runs the canonical inversion scenario — a low-priority holder
// revoked by a high-priority contender — under an observer and returns it.
// The holder logs heap writes and briefly holds a nested monitor, so the
// MonitorAcquired/MonitorExit events snapshot a nonzero undo-log depth.
func invObserver(t *testing.T) *Observer {
	t.Helper()
	o := NewObserver()
	rt := core.New(core.Config{
		Mode:     core.Revocation,
		Sched:    sched.Config{Quantum: 50},
		Observer: o,
	})
	m, inner := rt.NewMonitor("M"), rt.NewMonitor("Inner")
	buf := rt.Heap().AllocArray(8)
	rt.Spawn("Tl", sched.LowPriority, func(tk *core.Task) {
		tk.Synchronized(m, func() {
			for i := 0; i < 8; i++ {
				tk.WriteElem(buf, i, heap.Word(i))
			}
			tk.Synchronized(inner, func() { tk.Work(20) })
			tk.Work(400)
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *core.Task) {
		tk.Work(10)
		tk.Synchronized(m, func() { tk.Work(40) })
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return o
}

// TestPerfettoCounterTracks checks the three "C" counter tracks over a real
// inversion run: each present, monotone in time, never negative, and ending
// at zero (all threads finished, all monitors released, all logs drained).
func TestPerfettoCounterTracks(t *testing.T) {
	doc := writeDoc(t, invObserver(t))

	type sample struct {
		ts int64
		v  float64
	}
	tracks := map[string][]sample{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "C" {
			continue
		}
		if e.Cat != "counter" {
			t.Errorf("counter event with cat %q: %+v", e.Cat, e)
		}
		if e.Ts == nil || len(e.Args) != 1 {
			t.Fatalf("counter without ts or single-value args: %+v", e)
		}
		for _, v := range e.Args {
			f, ok := v.(float64)
			if !ok {
				t.Fatalf("counter value is not a number: %+v", e)
			}
			tracks[e.Name] = append(tracks[e.Name], sample{*e.Ts, f})
		}
	}

	for _, name := range []string{"runnable threads", "held monitors", "undo-log entries"} {
		ss := tracks[name]
		if len(ss) == 0 {
			t.Errorf("no %q counter samples (tracks: %v)", name, keysOf(tracks))
			continue
		}
		var peak float64
		for i, s := range ss {
			if s.v < 0 {
				t.Errorf("%q dips below zero at ts %d: %v", name, s.ts, s.v)
			}
			if s.v > peak {
				peak = s.v
			}
			if i > 0 && s.ts < ss[i-1].ts {
				t.Errorf("%q samples out of order: ts %d after %d", name, s.ts, ss[i-1].ts)
			}
			if i > 0 && s.ts == ss[i-1].ts {
				t.Errorf("%q emits two samples at ts %d — counters must coalesce per timestamp", name, s.ts)
			}
		}
		if peak == 0 {
			t.Errorf("%q never rises above zero in an inversion run", name)
		}
		if last := ss[len(ss)-1]; last.v != 0 {
			t.Errorf("%q ends at %v, want 0 after the run drains", name, last.v)
		}
	}
	// Two threads run concurrently at some point.
	var maxRunnable float64
	for _, s := range tracks["runnable threads"] {
		if s.v > maxRunnable {
			maxRunnable = s.v
		}
	}
	if maxRunnable != 2 {
		t.Errorf("runnable peak = %v, want 2", maxRunnable)
	}
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
