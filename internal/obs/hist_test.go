package obs

import "testing"

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram: count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if got := h.Percentile(50); got != 0 {
		t.Fatalf("empty p50 = %d, want 0", got)
	}
	if b := h.Buckets(); b != nil {
		t.Fatalf("empty Buckets = %v, want nil", b)
	}
}

func TestHistogramPercentilesNearestRank(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	cases := []struct {
		p    float64
		want int64
	}{{50, 50}, {90, 90}, {99, 99}, {100, 100}, {1, 1}}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("p%v = %d, want %d", c.p, got, c.want)
		}
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %d, want 5050", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramObserveAfterPercentile(t *testing.T) {
	var h Histogram
	h.Observe(10)
	if got := h.Percentile(50); got != 10 {
		t.Fatalf("p50 = %d", got)
	}
	h.Observe(1) // must re-sort
	if got := h.Percentile(50); got != 1 {
		t.Fatalf("p50 after new sample = %d, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 100} {
		h.Observe(v)
	}
	buckets := h.Buckets()
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}
	var total int64
	for _, b := range buckets {
		if b.Lo > b.Hi {
			t.Errorf("bucket [%d,%d] inverted", b.Lo, b.Hi)
		}
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", total, h.Count())
	}
	// [0,0]=1, [1,1]=1, [2,3]=2, [4,7]=2, [8,15]=1, ..., [64,127]=1
	if buckets[0].Lo != 0 || buckets[0].Hi != 0 || buckets[0].Count != 1 {
		t.Errorf("bucket 0 = %+v", buckets[0])
	}
	if buckets[2].Lo != 2 || buckets[2].Hi != 3 || buckets[2].Count != 2 {
		t.Errorf("bucket 2 = %+v", buckets[2])
	}
}

func TestHistSummary(t *testing.T) {
	var h Histogram
	for _, v := range []int64{5, 10, 15} {
		h.Observe(v)
	}
	s := h.Summary()
	if s.Count != 3 || s.Sum != 30 || s.Min != 5 || s.Max != 15 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 10 {
		t.Fatalf("p50 = %d, want 10", s.P50)
	}
}
