package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text-format (version 0.0.4) rendering of a MetricsSummary.
// Histograms map onto the summary metric type: one {quantile="…"} series
// per percentile plus the _sum and _count series, all in virtual-time
// ticks. Keys are emitted sorted so scrapes are deterministic.

// WritePrometheus renders the summary as Prometheus text-format metrics.
func WritePrometheus(w io.Writer, s MetricsSummary) error {
	var b strings.Builder

	summaryFamily := func(name, help, label string, m map[string]HistSummary) {
		if len(m) == 0 {
			return
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeSummary(&b, name, fmt.Sprintf("%s=%q", label, escapeLabel(k)), m[k])
		}
	}

	summaryFamily("rvm_blocking_ticks", "Virtual ticks threads spent blocked on monitors.", "thread", s.BlockingPerThread)
	summaryFamily("rvm_hold_ticks", "Virtual ticks monitors were held per acquisition.", "monitor", s.HoldPerMonitor)
	summaryFamily("rvm_contention_ticks", "Virtual ticks of blocking charged per contended monitor.", "monitor", s.ContentionPerMonitor)
	summaryFamily("rvm_wasted_ticks", "Virtual ticks of rolled-back work per victim thread.", "thread", s.WastedPerThread)

	if s.RollbackWasted.Count > 0 {
		fmt.Fprintf(&b, "# HELP rvm_rollback_wasted_ticks Virtual ticks of work discarded per rollback, all threads.\n")
		fmt.Fprintf(&b, "# TYPE rvm_rollback_wasted_ticks summary\n")
		writeSummary(&b, "rvm_rollback_wasted_ticks", "", s.RollbackWasted)
	}

	if len(s.Reexecutions) > 0 {
		fmt.Fprintf(&b, "# HELP rvm_reexecutions_total Section re-executions after rollback.\n")
		fmt.Fprintf(&b, "# TYPE rvm_reexecutions_total counter\n")
		keys := make([]string, 0, len(s.Reexecutions))
		for k := range s.Reexecutions {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "rvm_reexecutions_total{thread=%q} %d\n", escapeLabel(k), s.Reexecutions[k])
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writeSummary emits the quantile/_sum/_count series of one summary child.
// labels is a pre-rendered `k="v"` list without braces ("" for none).
func writeSummary(b *strings.Builder, name, labels string, h HistSummary) {
	q := func(quantile string, v int64) {
		sep := ""
		if labels != "" {
			sep = ","
		}
		fmt.Fprintf(b, "%s{%s%squantile=%q} %d\n", name, labels, sep, quantile, v)
	}
	q("0.5", h.P50)
	q("0.9", h.P90)
	q("0.99", h.P99)
	q("0.999", h.P999)
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %d\n", name, suffix, h.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, h.Count)
}

// escapeLabel escapes a label value per the text-format rules. %q already
// covers backslash and double quote; the format additionally requires
// newline as \n, which %q also produces — so this is just a tidy alias
// kept for intent.
func escapeLabel(v string) string { return v }
