package obs

import (
	"sync"

	"repro/internal/trace"
)

// SyncObserver wraps an Observer with a mutex so it can be read while the
// VM runs. The VM's threads are serialized by the uniprocessor scheduler,
// but a live metrics endpoint scrapes from a foreign goroutine — without
// the lock that read would race the emitting thread. A plain (lock-free)
// Observer remains the right choice for post-run analysis.
type SyncObserver struct {
	mu sync.Mutex
	o  *Observer
}

// NewSyncObserver wraps a fresh Observer.
func NewSyncObserver() *SyncObserver {
	return &SyncObserver{o: NewObserver()}
}

// Emit feeds one event to the wrapped observer. Implements trace.Sink.
func (s *SyncObserver) Emit(e trace.Event) {
	s.mu.Lock()
	s.o.Emit(e)
	s.mu.Unlock()
}

// MetricsSummary digests the current histograms under the lock — the
// mid-run snapshot the /metrics endpoint serves.
func (s *SyncObserver) MetricsSummary() MetricsSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.o.Metrics().Summary()
}

// Dropped returns the wrapped observer's dropped-event count.
func (s *SyncObserver) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.o.Dropped()
}

// Observer returns the wrapped observer for post-run export. Only safe
// once the VM has stopped emitting.
func (s *SyncObserver) Observer() *Observer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.o
}
