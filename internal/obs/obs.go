package obs

import (
	"strings"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// Observer is a trace.Sink that reconstructs causal spans, revocation
// chains and latency histograms from the runtime's event stream. Attach it
// via core.Config.Observer (or any trace.Multi) and query it after the run.
//
// The reconstruction is defensive: events that cannot be joined to an open
// span (a rollback without a matching acquisition, an exit on an empty
// stack) are counted in Dropped rather than corrupting state, so the
// observer is safe on truncated or adversarial streams.
type Observer struct {
	threads map[string]*threadState
	order   []string // first-seen thread order (stable track order)

	spans  []Span
	chains []*Chain

	pending        map[string]*Chain // victim\x00monitor → requested, not yet rolled back
	awaitingReexec map[string]*Chain
	lastDetect     map[string]detection // monitor → latest inversion-detected

	events   []trace.Event
	lastTick simtime.Ticks
	metrics  *Metrics
	dropped  int
}

type detection struct {
	at        simtime.Ticks
	requester string
}

type threadState struct {
	name  string
	prio  int64
	stack []Span // open hold spans, outermost first
	block *Span  // open blocking span, nil when not blocked

	// One suspended hold span during Object.wait: the monitor is released
	// at wait-start and the span resumes (as a fresh interval) at wait-end.
	waitMonitor string
	waitIndex   int
	waitDepth   int
	inWait      bool
}

// NewObserver returns an empty observer.
func NewObserver() *Observer {
	return &Observer{
		threads:        make(map[string]*threadState),
		pending:        make(map[string]*Chain),
		awaitingReexec: make(map[string]*Chain),
		lastDetect:     make(map[string]detection),
		metrics:        newMetrics(),
	}
}

func (o *Observer) thread(name string) *threadState {
	if ts, ok := o.threads[name]; ok {
		return ts
	}
	ts := &threadState{name: name}
	o.threads[name] = ts
	o.order = append(o.order, name)
	return ts
}

func chainKey(victim, monitor string) string { return victim + "\x00" + monitor }

// Emit consumes one event. Implements trace.Sink.
func (o *Observer) Emit(e trace.Event) {
	o.events = append(o.events, e)
	if e.At > o.lastTick {
		o.lastTick = e.At
	}
	switch e.Kind {
	case trace.ThreadStart:
		ts := o.thread(e.Thread)
		ts.prio = e.N

	case trace.ThreadEnd:
		o.threadEnd(e)

	case trace.MonitorBlocked:
		o.blocked(e)

	case trace.MonitorAcquired:
		o.acquired(e)

	case trace.MonitorExit:
		o.exited(e)

	case trace.WaitStart:
		o.waitStart(e)

	case trace.WaitEnd:
		o.waitEnd(e)

	case trace.InversionDetected:
		o.lastDetect[e.Object] = detection{at: e.At, requester: e.Thread}

	case trace.RevokeRequested:
		o.revokeRequested(e)

	case trace.RevokeDenied:
		o.revokeDenied(e)

	case trace.Rollback:
		o.rollback(e)

	case trace.Reexecution:
		o.reexecution(e)
	}
}

func (o *Observer) threadEnd(e trace.Event) {
	ts := o.thread(e.Thread)
	if ts.block != nil {
		// The thread ended while blocked: the wait never resolved.
		b := *ts.block
		b.End = e.At
		b.Unresolved = true
		ts.block = nil
		o.spans = append(o.spans, b)
	}
	for i := len(ts.stack) - 1; i >= 0; i-- {
		s := ts.stack[i]
		s.End = e.At
		s.Unresolved = true
		o.spans = append(o.spans, s)
	}
	ts.stack = ts.stack[:0]
	ts.inWait = false
}

func (o *Observer) blocked(e trace.Event) {
	ts := o.thread(e.Thread)
	if ts.block != nil {
		if ts.block.Monitor == e.Object {
			// Re-blocked on the same monitor (requeue after an interrupt or
			// a preempted grant): one logical wait, refresh the cause.
			if e.Other != "" {
				ts.block.Holder = e.Other
			}
			return
		}
		// Blocked on a different monitor without resolving the previous
		// wait: close the stale span as unresolved.
		b := *ts.block
		b.End = e.At
		b.Unresolved = true
		o.spans = append(o.spans, b)
	}
	ts.block = &Span{Kind: SpanBlock, Thread: e.Thread, Monitor: e.Object, Start: e.At, Holder: e.Other}
}

func (o *Observer) acquired(e trace.Event) {
	ts := o.thread(e.Thread)
	if ts.block != nil && ts.block.Monitor == e.Object {
		b := *ts.block
		b.End = e.At
		ts.block = nil
		o.spans = append(o.spans, b)
		o.metrics.observeBlocking(b)
	}
	ts.stack = append(ts.stack, Span{
		Kind: SpanHold, Thread: e.Thread, Monitor: e.Object, Start: e.At, Depth: len(ts.stack) + 1,
	})
}

func (o *Observer) exited(e trace.Event) {
	ts := o.thread(e.Thread)
	if n := len(ts.stack); n > 0 && ts.stack[n-1].Monitor == e.Object {
		s := ts.stack[n-1]
		s.End = e.At
		ts.stack = ts.stack[:n-1]
		o.spans = append(o.spans, s)
		o.metrics.observeHold(s)
		return
	}
	o.dropped++
}

func (o *Observer) waitStart(e trace.Event) {
	ts := o.thread(e.Thread)
	// Close the topmost span of the waited monitor: the wait releases it,
	// so the held interval ends here and resumes at wait-end.
	for i := len(ts.stack) - 1; i >= 0; i-- {
		if ts.stack[i].Monitor != e.Object {
			continue
		}
		s := ts.stack[i]
		s.End = e.At
		o.spans = append(o.spans, s)
		o.metrics.observeHold(s)
		ts.waitMonitor = e.Object
		ts.waitIndex = i
		ts.waitDepth = s.Depth
		ts.inWait = true
		ts.stack = append(ts.stack[:i], ts.stack[i+1:]...)
		return
	}
	o.dropped++
}

func (o *Observer) waitEnd(e trace.Event) {
	ts := o.thread(e.Thread)
	if !ts.inWait || ts.waitMonitor != e.Object {
		o.dropped++
		return
	}
	s := Span{Kind: SpanHold, Thread: e.Thread, Monitor: e.Object, Start: e.At, Depth: ts.waitDepth}
	i := ts.waitIndex
	if i > len(ts.stack) {
		i = len(ts.stack)
	}
	ts.stack = append(ts.stack[:i], append([]Span{s}, ts.stack[i:]...)...)
	ts.inWait = false
}

func (o *Observer) revokeRequested(e trace.Event) {
	c := &Chain{
		ID:          len(o.chains) + 1,
		Requester:   e.Other,
		Victim:      e.Thread,
		Monitor:     e.Object,
		Reason:      parseReason(e.Detail),
		RequestedAt: e.At,
	}
	if d, ok := o.lastDetect[e.Object]; ok && d.requester == e.Other {
		c.HasDetected = true
		c.DetectedAt = d.at
	}
	o.chains = append(o.chains, c)
	// A newer request supersedes an undelivered one for the same victim and
	// monitor (core keeps a single pending revocation per task); the
	// superseded chain stays in the list, incomplete.
	o.pending[chainKey(e.Thread, e.Object)] = c
}

func (o *Observer) revokeDenied(e trace.Event) {
	key := chainKey(e.Thread, e.Object)
	if c, ok := o.pending[key]; ok {
		c.Denied = true
		delete(o.pending, key)
		return
	}
	o.chains = append(o.chains, &Chain{
		ID: len(o.chains) + 1, Victim: e.Thread, Monitor: e.Object,
		RequestedAt: e.At, Denied: true, Reason: parseReason(e.Detail),
	})
}

func (o *Observer) rollback(e trace.Event) {
	ts := o.thread(e.Thread)
	// Every rollback event carries the discarded work in N (0 for a
	// preempted pending grant), so the histogram total reconciles exactly
	// with core.Stats.WastedTicks.
	o.metrics.observeRollback(e.Thread, e.N)

	// An interrupted wait on an inner monitor ends with the rollback: the
	// victim re-executes from the section start instead of acquiring.
	if ts.block != nil {
		b := *ts.block
		b.End = e.At
		ts.block = nil
		o.spans = append(o.spans, b)
		o.metrics.observeBlocking(b)
	}

	// Close the doomed span nest: everything from the outermost frame of
	// the revoked monitor inward (reentrant acquisitions of the same
	// monitor sit above it in the stack and roll back with it).
	target := -1
	for i, s := range ts.stack {
		if s.Monitor == e.Object {
			target = i
			break
		}
	}
	closed := false
	if target >= 0 {
		for i := len(ts.stack) - 1; i >= target; i-- {
			s := ts.stack[i]
			s.End = e.At
			s.RolledBack = true
			if i == target {
				s.Wasted = simtime.Ticks(e.N)
			}
			o.spans = append(o.spans, s)
			o.metrics.observeHold(s)
		}
		ts.stack = ts.stack[:target]
		closed = true
	}

	key := chainKey(e.Thread, e.Object)
	c, ok := o.pending[key]
	if ok {
		delete(o.pending, key)
		c.RolledBack = true
		c.RolledBackAt = e.At
		c.Wasted = simtime.Ticks(e.N)
		if closed {
			o.awaitingReexec[key] = c
		} else {
			c.PendingGrant = true
		}
	}
	if !ok && !closed {
		o.dropped++ // rollback with neither an open span nor a request
	}
}

func (o *Observer) reexecution(e trace.Event) {
	o.metrics.observeReexecution(e.Thread)
	key := chainKey(e.Thread, e.Object)
	if c, ok := o.awaitingReexec[key]; ok {
		c.Reexecuted = true
		c.ReexecutedAt = e.At
		delete(o.awaitingReexec, key)
	}
}

// parseReason extracts the reason=... token from an event detail.
func parseReason(detail string) string {
	const p = "reason="
	i := strings.Index(detail, p)
	if i < 0 {
		return ""
	}
	rest := detail[i+len(p):]
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		return rest[:j]
	}
	return rest
}

// ---------------------------------------------------------------------------
// Queries.

// Spans returns every closed span, in close order.
func (o *Observer) Spans() []Span { return o.spans }

// AllSpans returns closed spans plus still-open ones materialized as
// unresolved spans ending at the last observed tick — the complete picture
// an exporter should render.
func (o *Observer) AllSpans() []Span {
	out := make([]Span, len(o.spans), len(o.spans)+8)
	copy(out, o.spans)
	for _, name := range o.order {
		ts := o.threads[name]
		if ts.block != nil {
			b := *ts.block
			b.End = o.lastTick
			b.Unresolved = true
			out = append(out, b)
		}
		for _, s := range ts.stack {
			s.End = o.lastTick
			s.Unresolved = true
			out = append(out, s)
		}
	}
	return out
}

// Chains returns every revocation chain, complete or not, in request order.
func (o *Observer) Chains() []*Chain { return o.chains }

// Events returns the retained raw event stream.
func (o *Observer) Events() []trace.Event { return o.events }

// Metrics returns the registry of latency histograms.
func (o *Observer) Metrics() *Metrics { return o.metrics }

// ThreadNames returns thread names in first-seen order.
func (o *Observer) ThreadNames() []string { return o.order }

// ThreadPriority returns the base priority recorded at thread start.
func (o *Observer) ThreadPriority(name string) int64 {
	if ts, ok := o.threads[name]; ok {
		return ts.prio
	}
	return 0
}

// Dropped reports how many events could not be joined to an open span.
func (o *Observer) Dropped() int { return o.dropped }
