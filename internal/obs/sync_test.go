package obs

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/simtime"
	"repro/internal/trace"
)

func TestParseJSONLRoundTrip(t *testing.T) {
	events := []trace.Event{
		ev(0, trace.ThreadStart, "T1", "", "", 8),
		ev(5, trace.MonitorAcquired, "T1", "M", "", 3),
		ev(9, trace.RevokeRequested, "T2", "M", "T1", 0),
		ev(12, trace.Rollback, "T1", "M", "T2", 7),
	}
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for _, e := range events {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip:\ngot  %v\nwant %v", got, events)
	}
}

func TestParseJSONLRejectsInvalid(t *testing.T) {
	if _, err := ParseJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("parsed garbage without error")
	}
}

// TestSyncObserverConcurrentScrape is the live-endpoint contract: one
// goroutine feeds the observer (the VM), others snapshot metrics mid-run
// (the HTTP scraper). Run under -race this pins the locking.
func TestSyncObserverConcurrentScrape(t *testing.T) {
	so := NewSyncObserver()
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 300; i++ {
			at := simtime.Ticks(i * 10)
			so.Emit(ev(at, trace.MonitorBlocked, "T", "M", "", 0))
			so.Emit(ev(at+4, trace.MonitorAcquired, "T", "M", "", 0))
			so.Emit(ev(at+9, trace.MonitorExit, "T", "M", "", 0))
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := so.MetricsSummary()
				if s.RollbackWasted.Count < 0 || so.Dropped() < 0 {
					t.Error("impossible summary")
					return
				}
				var buf bytes.Buffer
				if err := WritePrometheus(&buf, s); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Post-run access goes through the inner observer.
	o := so.Observer()
	if got := o.Metrics().ContentionPerMonitor("M").Count(); got != 300 {
		t.Errorf("contention count = %d, want 300", got)
	}
	if so.Dropped() != 0 {
		t.Errorf("dropped = %d", so.Dropped())
	}
}
