package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePrometheusFormat renders a real inversion run's metrics and pins
// the text-format shape: summary families with quantile/sum/count series,
// the re-execution counter, and deterministic (sorted) label order.
func TestWritePrometheusFormat(t *testing.T) {
	o := invObserver(t)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, o.Metrics().Summary()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE rvm_blocking_ticks summary",
		"# TYPE rvm_hold_ticks summary",
		"# TYPE rvm_contention_ticks summary",
		"# TYPE rvm_wasted_ticks summary",
		"# TYPE rvm_rollback_wasted_ticks summary",
		"# TYPE rvm_reexecutions_total counter",
		`rvm_blocking_ticks{thread="Th",quantile="0.5"}`,
		`rvm_blocking_ticks_sum{thread="Th"}`,
		`rvm_blocking_ticks_count{thread="Th"}`,
		`rvm_hold_ticks{monitor="M",quantile="0.99"}`,
		`rvm_wasted_ticks{thread="Tl"`,
		`rvm_reexecutions_total{thread="Tl"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Every # HELP precedes its # TYPE, and no line is emitted twice.
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if seen[line] {
			t.Errorf("duplicate line %q", line)
		}
		seen[line] = true
	}

	// Deterministic output.
	var again bytes.Buffer
	if err := WritePrometheus(&again, o.Metrics().Summary()); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("two renders of one summary differ")
	}
}
