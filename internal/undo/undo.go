// Package undo implements the sequential update log the paper's write
// barriers fill (§3.1.2): "For object and array stores, three values are
// recorded: object or array reference, value offset and the (old) value
// itself. For static variable stores two values are recorded: the offset of
// the static variable in the global symbol table and the old value."
//
// A rollback processes the log in reverse, restoring every modified location
// to its original value. Marks delimit the portion of the log belonging to a
// synchronized section, so nested sections roll back only their own suffix.
package undo

import (
	"fmt"

	"repro/internal/heap"
)

// Entry is one logged store.
type Entry struct {
	Kind heap.Kind
	Obj  *heap.Object // KindObject
	Arr  *heap.Array  // KindArray
	Idx  int          // field index, element index, or static offset
	Old  heap.Word    // value before the store
}

// Loc identifies a heap location for speculation tracking; it is the map
// key form of an Entry's address.
type Loc struct {
	Kind heap.Kind
	ID   uint64 // object or array id; 0 for statics
	Idx  int
}

// Loc returns the entry's location key.
func (e Entry) Loc() Loc {
	switch e.Kind {
	case heap.KindObject:
		return Loc{Kind: heap.KindObject, ID: e.Obj.ID(), Idx: e.Idx}
	case heap.KindArray:
		return Loc{Kind: heap.KindArray, ID: e.Arr.ID(), Idx: e.Idx}
	default:
		return Loc{Kind: heap.KindStatic, Idx: e.Idx}
	}
}

// String renders the entry for diagnostics.
func (e Entry) String() string {
	switch e.Kind {
	case heap.KindObject:
		return fmt.Sprintf("object %v.%s old=%d", e.Obj, e.Obj.FieldName(e.Idx), e.Old)
	case heap.KindArray:
		return fmt.Sprintf("array %v[%d] old=%d", e.Arr, e.Idx, e.Old)
	default:
		return fmt.Sprintf("static[%d] old=%d", e.Idx, e.Old)
	}
}

// Mark is a position in the log; RollbackTo(m) undoes every entry appended
// at or after m.
type Mark int

// Log is the per-thread sequential buffer. The zero value is an empty log.
type Log struct {
	entries []Entry

	// appended counts every entry ever logged, across truncations; it
	// feeds the statistics the evaluation section reports on.
	appended int64
	undone   int64
}

// NewLog returns a log with capacity pre-allocated for cap entries.
func NewLog(cap int) *Log {
	return &Log{entries: make([]Entry, 0, cap)}
}

// Len returns the number of live entries.
func (l *Log) Len() int { return len(l.entries) }

// Appended returns the lifetime count of logged stores.
func (l *Log) Appended() int64 { return l.appended }

// Undone returns the lifetime count of entries reverted by rollbacks.
func (l *Log) Undone() int64 { return l.undone }

// Mark returns the current log position.
func (l *Log) Mark() Mark { return Mark(len(l.entries)) }

// Entry returns the i-th live entry.
func (l *Log) Entry(i int) Entry { return l.entries[i] }

// LogObject records the pre-store value of an object field.
func (l *Log) LogObject(o *heap.Object, idx int, old heap.Word) {
	l.entries = append(l.entries, Entry{Kind: heap.KindObject, Obj: o, Idx: idx, Old: old})
	l.appended++
}

// LogArray records the pre-store value of an array element.
func (l *Log) LogArray(a *heap.Array, idx int, old heap.Word) {
	l.entries = append(l.entries, Entry{Kind: heap.KindArray, Arr: a, Idx: idx, Old: old})
	l.appended++
}

// LogStatic records the pre-store value of a static variable.
func (l *Log) LogStatic(idx int, old heap.Word) {
	l.entries = append(l.entries, Entry{Kind: heap.KindStatic, Idx: idx, Old: old})
	l.appended++
}

// RollbackTo restores, in reverse order, every location modified at or
// after mark, then truncates the log to mark. h supplies the static table.
// It returns the number of entries undone.
func (l *Log) RollbackTo(mark Mark, h *heap.Heap) int {
	m := int(mark)
	if m < 0 || m > len(l.entries) {
		panic(fmt.Sprintf("undo: rollback to invalid mark %d (len %d)", m, len(l.entries)))
	}
	n := 0
	for i := len(l.entries) - 1; i >= m; i-- {
		e := l.entries[i]
		switch e.Kind {
		case heap.KindObject:
			e.Obj.Set(e.Idx, e.Old)
		case heap.KindArray:
			e.Arr.Set(e.Idx, e.Old)
		case heap.KindStatic:
			h.SetStatic(e.Idx, e.Old)
		}
		n++
	}
	l.entries = l.entries[:m]
	l.undone += int64(n)
	return n
}

// Truncate discards (commits) every entry at or after mark without
// restoring anything: the section completed, its updates are permanent.
func (l *Log) Truncate(mark Mark) {
	m := int(mark)
	if m < 0 || m > len(l.entries) {
		panic(fmt.Sprintf("undo: truncate to invalid mark %d (len %d)", m, len(l.entries)))
	}
	l.entries = l.entries[:m]
}

// Range calls fn for every live entry from mark to the end, in append
// order. Used to unregister speculative writes on commit/rollback.
func (l *Log) Range(mark Mark, fn func(Entry)) {
	for i := int(mark); i < len(l.entries); i++ {
		fn(l.entries[i])
	}
}

// Reset empties the log, keeping capacity and lifetime counters.
func (l *Log) Reset() { l.entries = l.entries[:0] }
