// Package undo implements the sequential update log the paper's write
// barriers fill (§3.1.2): "For object and array stores, three values are
// recorded: object or array reference, value offset and the (old) value
// itself. For static variable stores two values are recorded: the offset of
// the static variable in the global symbol table and the old value."
//
// A rollback processes the log in reverse, restoring every modified location
// to its original value. Marks delimit the portion of the log belonging to a
// synchronized section, so nested sections roll back only their own suffix.
//
// First-write-wins dedup: the LogObjectOnce/LogArrayOnce/LogStaticOnce
// variants stamp the location's heap.ShadowSlot with (log id, epoch,
// position) and skip the append when the same log already holds an entry
// for the location at or after the caller's section mark — one undo entry
// per location per section instead of one per store. Skipping is sound
// because reverse replay restores a location from the *earliest* entry at
// or after the rollback mark, and that entry's old value is exactly the
// location's value when the mark was taken; a later duplicate adds work but
// never changes the result. The epoch increments whenever entries die
// (RollbackTo, Truncate, Reset), invalidating every outstanding stamp at
// once — a stale stamp merely costs a redundant append, never a lost undo
// record.
package undo

import (
	"fmt"
	"sync/atomic"

	"repro/internal/heap"
)

// Entry is one logged store, or one logged allocation (KindAllocObject /
// KindAllocArray): allocation entries snapshot the object's slots at
// allocation time so a rollback can restore it wholesale, which is what
// makes statically elided stores to in-section allocations revertible.
type Entry struct {
	Kind heap.Kind
	Obj  *heap.Object // KindObject, KindAllocObject
	Arr  *heap.Array  // KindArray, KindAllocArray
	Idx  int          // field index, element index, or static offset
	Old  heap.Word    // value before the store
	Init []heap.Word  // slot values at allocation (alloc kinds only)
}

// Loc identifies a heap location for speculation tracking; it is the map
// key form of an Entry's address.
type Loc struct {
	Kind heap.Kind
	ID   uint64 // object or array id; 0 for statics
	Idx  int
}

// Loc returns the entry's location key. Allocation entries yield a key of
// their own kind; nothing registers such keys, so speculation unregistering
// over a log range treats them as a no-op.
func (e Entry) Loc() Loc {
	switch e.Kind {
	case heap.KindObject:
		return Loc{Kind: heap.KindObject, ID: e.Obj.ID(), Idx: e.Idx}
	case heap.KindArray:
		return Loc{Kind: heap.KindArray, ID: e.Arr.ID(), Idx: e.Idx}
	case heap.KindAllocObject:
		return Loc{Kind: heap.KindAllocObject, ID: e.Obj.ID(), Idx: -1}
	case heap.KindAllocArray:
		return Loc{Kind: heap.KindAllocArray, ID: e.Arr.ID(), Idx: -1}
	default:
		return Loc{Kind: heap.KindStatic, Idx: e.Idx}
	}
}

// String renders the entry for diagnostics.
func (e Entry) String() string {
	switch e.Kind {
	case heap.KindObject:
		return fmt.Sprintf("object %v.%s old=%d", e.Obj, e.Obj.FieldName(e.Idx), e.Old)
	case heap.KindArray:
		return fmt.Sprintf("array %v[%d] old=%d", e.Arr, e.Idx, e.Old)
	case heap.KindAllocObject:
		return fmt.Sprintf("alloc %v init=%v", e.Obj, e.Init)
	case heap.KindAllocArray:
		return fmt.Sprintf("alloc %v init=%v", e.Arr, e.Init)
	default:
		return fmt.Sprintf("static[%d] old=%d", e.Idx, e.Old)
	}
}

// Mark is a position in the log; RollbackTo(m) undoes every entry appended
// at or after m.
type Mark int

// nextLogID hands out process-unique log identities for shadow stamps. Ids
// start at 1 so a zeroed ShadowSlot never matches a live log.
var nextLogID uint64

// Log is the per-thread sequential buffer. The zero value is an empty log.
type Log struct {
	entries []Entry

	// id and epoch form the validity key of this log's shadow stamps: a
	// slot stamped (id, epoch, pos) is known to have a live entry at
	// index pos. epoch starts at 1 and increments whenever entries die.
	id    uint64
	epoch uint64

	// appended counts every entry ever logged, across truncations; it
	// feeds the statistics the evaluation section reports on. deduped
	// counts stores skipped by first-write-wins. allocsLogged counts
	// allocation entries separately — they are bookkeeping for static
	// elision, not barrier-produced undo records, and must not inflate
	// the paper's logged-stores statistic.
	appended     int64
	undone       int64
	deduped      int64
	allocsLogged int64
}

// NewLog returns a log with capacity pre-allocated for cap entries.
func NewLog(cap int) *Log {
	return &Log{entries: make([]Entry, 0, cap), id: atomic.AddUint64(&nextLogID, 1), epoch: 1}
}

// ensureIdentity lazily initializes a zero-value Log's stamp identity.
func (l *Log) ensureIdentity() {
	if l.id == 0 {
		l.id = atomic.AddUint64(&nextLogID, 1)
		l.epoch = 1
	}
}

// Len returns the number of live entries.
func (l *Log) Len() int { return len(l.entries) }

// Appended returns the lifetime count of logged stores.
func (l *Log) Appended() int64 { return l.appended }

// Undone returns the lifetime count of entries reverted by rollbacks.
func (l *Log) Undone() int64 { return l.undone }

// Deduped returns the lifetime count of stores skipped by first-write-wins
// (the location was already logged within the same section).
func (l *Log) Deduped() int64 { return l.deduped }

// Mark returns the current log position.
func (l *Log) Mark() Mark { return Mark(len(l.entries)) }

// Entry returns the i-th live entry.
func (l *Log) Entry(i int) Entry { return l.entries[i] }

// LogObject records the pre-store value of an object field.
func (l *Log) LogObject(o *heap.Object, idx int, old heap.Word) {
	l.entries = append(l.entries, Entry{Kind: heap.KindObject, Obj: o, Idx: idx, Old: old})
	l.appended++
}

// LogArray records the pre-store value of an array element.
func (l *Log) LogArray(a *heap.Array, idx int, old heap.Word) {
	l.entries = append(l.entries, Entry{Kind: heap.KindArray, Arr: a, Idx: idx, Old: old})
	l.appended++
}

// LogStatic records the pre-store value of a static variable.
func (l *Log) LogStatic(idx int, old heap.Word) {
	l.entries = append(l.entries, Entry{Kind: heap.KindStatic, Idx: idx, Old: old})
	l.appended++
}

// LogAllocObject records an object allocated inside the current section,
// snapshotting its slots so rollback can restore it wholesale. Elided
// stores to the object need no per-field entries: field entries appended
// later sit after this one in the log, so reverse replay runs them first
// and the alloc entry has the final word.
func (l *Log) LogAllocObject(o *heap.Object) {
	init := make([]heap.Word, o.NumFields())
	for i := range init {
		init[i] = o.Get(i)
	}
	l.entries = append(l.entries, Entry{Kind: heap.KindAllocObject, Obj: o, Idx: -1, Init: init})
	l.allocsLogged++
}

// LogAllocArray is LogAllocObject for arrays.
func (l *Log) LogAllocArray(a *heap.Array) {
	init := make([]heap.Word, a.Len())
	for i := range init {
		init[i] = a.Get(i)
	}
	l.entries = append(l.entries, Entry{Kind: heap.KindAllocArray, Arr: a, Idx: -1, Init: init})
	l.allocsLogged++
}

// AllocsLogged returns the lifetime count of allocation entries.
func (l *Log) AllocsLogged() int64 { return l.allocsLogged }

// stamped reports whether s already guarantees a live entry for its slot at
// or after the section mark; if not, it stamps the slot for the entry about
// to be appended. Shared fast path of the *Once variants.
func (l *Log) stamped(s *heap.ShadowSlot, section Mark) bool {
	l.ensureIdentity()
	if s.LogID == l.id && s.LogEpoch == l.epoch && s.LogPos >= int(section) {
		l.deduped++
		return true
	}
	s.LogID = l.id
	s.LogEpoch = l.epoch
	s.LogPos = len(l.entries)
	return false
}

// LogObjectOnce records the pre-store value of an object field unless this
// log already holds an entry for the slot at or after section (the
// innermost active section's mark) — first-write-wins. It reports whether
// an entry was appended.
func (l *Log) LogObjectOnce(o *heap.Object, idx int, old heap.Word, section Mark) bool {
	if l.stamped(o.Shadow(idx), section) {
		return false
	}
	l.LogObject(o, idx, old)
	return true
}

// LogArrayOnce is LogObjectOnce for array elements.
func (l *Log) LogArrayOnce(a *heap.Array, idx int, old heap.Word, section Mark) bool {
	if l.stamped(a.Shadow(idx), section) {
		return false
	}
	l.LogArray(a, idx, old)
	return true
}

// LogStaticOnce is LogObjectOnce for static variables; h owns the static
// table's shadow slots.
func (l *Log) LogStaticOnce(h *heap.Heap, idx int, old heap.Word, section Mark) bool {
	if l.stamped(h.StaticShadow(idx), section) {
		return false
	}
	l.LogStatic(idx, old)
	return true
}

// RollbackTo restores, in reverse order, every location modified at or
// after mark, then truncates the log to mark. h supplies the static table.
// It returns the number of entries undone.
func (l *Log) RollbackTo(mark Mark, h *heap.Heap) int {
	m := int(mark)
	if m < 0 || m > len(l.entries) {
		panic(fmt.Sprintf("undo: rollback to invalid mark %d (len %d)", m, len(l.entries)))
	}
	n := 0
	for i := len(l.entries) - 1; i >= m; i-- {
		e := l.entries[i]
		switch e.Kind {
		case heap.KindObject:
			e.Obj.Set(e.Idx, e.Old)
		case heap.KindArray:
			e.Arr.Set(e.Idx, e.Old)
		case heap.KindStatic:
			h.SetStatic(e.Idx, e.Old)
		case heap.KindAllocObject:
			for i, v := range e.Init {
				e.Obj.Set(i, v)
			}
		case heap.KindAllocArray:
			for i, v := range e.Init {
				e.Arr.Set(i, v)
			}
		}
		n++
	}
	l.entries = l.entries[:m]
	l.undone += int64(n)
	if n > 0 {
		l.epoch++ // discarded entries: invalidate all outstanding stamps
	}
	return n
}

// Truncate discards (commits) every entry at or after mark without
// restoring anything: the section completed, its updates are permanent.
func (l *Log) Truncate(mark Mark) {
	m := int(mark)
	if m < 0 || m > len(l.entries) {
		panic(fmt.Sprintf("undo: truncate to invalid mark %d (len %d)", m, len(l.entries)))
	}
	if m < len(l.entries) {
		l.epoch++
	}
	l.entries = l.entries[:m]
}

// Range calls fn for every live entry from mark to the end, in append
// order. Used to unregister speculative writes on commit/rollback.
func (l *Log) Range(mark Mark, fn func(Entry)) {
	for i := int(mark); i < len(l.entries); i++ {
		fn(l.entries[i])
	}
}

// Reset empties the log, keeping capacity and lifetime counters.
func (l *Log) Reset() {
	if len(l.entries) > 0 {
		l.epoch++
	}
	l.entries = l.entries[:0]
}
