package undo

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/heap"
)

func setup() (*heap.Heap, *heap.Object, *heap.Array, int) {
	h := heap.New()
	o := h.AllocPlain("C", 4)
	a := h.AllocArray(4)
	s := h.DefineStatic("s", false, 0)
	return h, o, a, s
}

func TestRollbackRestoresObjectField(t *testing.T) {
	h, o, _, _ := setup()
	l := NewLog(0)
	o.Set(0, 10)
	m := l.Mark()
	l.LogObject(o, 0, o.Get(0))
	o.Set(0, 20)
	n := l.RollbackTo(m, h)
	if n != 1 {
		t.Fatalf("undone %d entries, want 1", n)
	}
	if o.Get(0) != 10 {
		t.Fatalf("field = %d, want 10", o.Get(0))
	}
}

func TestRollbackRestoresArrayAndStatic(t *testing.T) {
	h, _, a, s := setup()
	l := NewLog(0)
	l.LogArray(a, 2, a.Get(2))
	a.Set(2, 5)
	l.LogStatic(s, h.GetStatic(s))
	h.SetStatic(s, 7)
	l.RollbackTo(0, h)
	if a.Get(2) != 0 || h.GetStatic(s) != 0 {
		t.Fatalf("array=%d static=%d, want 0,0", a.Get(2), h.GetStatic(s))
	}
}

func TestRollbackReverseOrder(t *testing.T) {
	// Two stores to the same slot: rollback must restore the value from
	// *before the first* store, which only reverse replay achieves.
	h, o, _, _ := setup()
	l := NewLog(0)
	o.Set(1, 100)
	l.LogObject(o, 1, o.Get(1)) // old = 100
	o.Set(1, 200)
	l.LogObject(o, 1, o.Get(1)) // old = 200
	o.Set(1, 300)
	l.RollbackTo(0, h)
	if o.Get(1) != 100 {
		t.Fatalf("field = %d, want 100 (reverse replay)", o.Get(1))
	}
}

func TestPartialRollbackToMark(t *testing.T) {
	h, o, _, _ := setup()
	l := NewLog(0)
	l.LogObject(o, 0, o.Get(0))
	o.Set(0, 1)
	m := l.Mark()
	l.LogObject(o, 1, o.Get(1))
	o.Set(1, 2)
	l.RollbackTo(m, h)
	if o.Get(0) != 1 {
		t.Fatalf("outer write reverted: %d", o.Get(0))
	}
	if o.Get(1) != 0 {
		t.Fatalf("inner write survived: %d", o.Get(1))
	}
	if l.Len() != 1 {
		t.Fatalf("log length %d, want 1", l.Len())
	}
}

func TestTruncateCommits(t *testing.T) {
	h, o, _, _ := setup()
	l := NewLog(0)
	l.LogObject(o, 0, o.Get(0))
	o.Set(0, 9)
	l.Truncate(0)
	if l.Len() != 0 {
		t.Fatalf("log length %d after truncate", l.Len())
	}
	if o.Get(0) != 9 {
		t.Fatalf("truncate restored the value: %d", o.Get(0))
	}
	_ = h
}

func TestRollbackInvalidMarkPanics(t *testing.T) {
	h, _, _, _ := setup()
	l := NewLog(0)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid mark did not panic")
		}
	}()
	l.RollbackTo(5, h)
}

func TestTruncateInvalidMarkPanics(t *testing.T) {
	l := NewLog(0)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid truncate did not panic")
		}
	}()
	l.Truncate(3)
}

func TestCounters(t *testing.T) {
	h, o, _, _ := setup()
	l := NewLog(0)
	for i := 0; i < 5; i++ {
		l.LogObject(o, 0, o.Get(0))
		o.Set(0, heap.Word(i))
	}
	l.RollbackTo(2, h)
	if l.Appended() != 5 {
		t.Fatalf("Appended = %d, want 5", l.Appended())
	}
	if l.Undone() != 3 {
		t.Fatalf("Undone = %d, want 3", l.Undone())
	}
	l.Reset()
	if l.Len() != 0 || l.Appended() != 5 {
		t.Fatal("Reset cleared the wrong things")
	}
}

func TestRange(t *testing.T) {
	_, o, a, s := setup()
	l := NewLog(0)
	l.LogObject(o, 0, 1)
	l.LogArray(a, 1, 2)
	l.LogStatic(s, 3)
	var locs []Loc
	l.Range(1, func(e Entry) { locs = append(locs, e.Loc()) })
	if len(locs) != 2 {
		t.Fatalf("Range visited %d entries, want 2", len(locs))
	}
	if locs[0].Kind != heap.KindArray || locs[0].ID != a.ID() || locs[0].Idx != 1 {
		t.Fatalf("first loc = %+v", locs[0])
	}
	if locs[1].Kind != heap.KindStatic || locs[1].Idx != s {
		t.Fatalf("second loc = %+v", locs[1])
	}
}

func TestEntryString(t *testing.T) {
	_, o, a, s := setup()
	cases := []struct {
		e    Entry
		want string
	}{
		{Entry{Kind: heap.KindObject, Obj: o, Idx: 0, Old: 1}, "object"},
		{Entry{Kind: heap.KindArray, Arr: a, Idx: 1, Old: 2}, "array"},
		{Entry{Kind: heap.KindStatic, Idx: s, Old: 3}, "static"},
	}
	for _, c := range cases {
		if !strings.Contains(c.e.String(), c.want) {
			t.Errorf("Entry.String() = %q, want substring %q", c.e.String(), c.want)
		}
	}
}

// Property: for any random sequence of logged stores over a small heap,
// RollbackTo(0) restores the exact pre-sequence snapshot. This is the
// paper's core invariant — "the end effect of the rollback is as if the
// low-priority thread never executed the section".
func TestRollbackRestoresSnapshotProperty(t *testing.T) {
	prop := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := heap.New()
		o := h.AllocPlain("C", 8)
		a := h.AllocArray(8)
		s := h.DefineStatic("s", false, 0)
		// Random initial state.
		for i := 0; i < 8; i++ {
			o.Set(i, heap.Word(rng.Int63n(100)))
			a.Set(i, heap.Word(rng.Int63n(100)))
		}
		h.SetStatic(s, heap.Word(rng.Int63n(100)))
		before := h.Snapshot()

		l := NewLog(0)
		for i := 0; i < int(steps); i++ {
			idx := rng.Intn(8)
			v := heap.Word(rng.Int63n(1000))
			switch rng.Intn(3) {
			case 0:
				l.LogObject(o, idx, o.Get(idx))
				o.Set(idx, v)
			case 1:
				l.LogArray(a, idx, a.Get(idx))
				a.Set(idx, v)
			case 2:
				l.LogStatic(s, h.GetStatic(s))
				h.SetStatic(s, v)
			}
		}
		l.RollbackTo(0, h)
		return before.Equal(h.Snapshot()) && l.Len() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: nested marks roll back independently — undoing the inner
// suffix then the outer prefix equals undoing everything at once.
func TestNestedMarksProperty(t *testing.T) {
	prop := func(seed int64, outer, inner uint8) bool {
		run := func(twoPhase bool) heap.Snapshot {
			rng := rand.New(rand.NewSource(seed))
			h := heap.New()
			o := h.AllocPlain("C", 4)
			l := NewLog(0)
			write := func() {
				idx := rng.Intn(4)
				l.LogObject(o, idx, o.Get(idx))
				o.Set(idx, heap.Word(rng.Int63n(1000)))
			}
			for i := 0; i < int(outer%16); i++ {
				write()
			}
			m := l.Mark()
			for i := 0; i < int(inner%16); i++ {
				write()
			}
			if twoPhase {
				l.RollbackTo(m, h)
				l.RollbackTo(0, h)
			} else {
				l.RollbackTo(0, h)
			}
			return h.Snapshot()
		}
		return run(true).Equal(run(false))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
