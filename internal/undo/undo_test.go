package undo

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/heap"
)

func setup() (*heap.Heap, *heap.Object, *heap.Array, int) {
	h := heap.New()
	o := h.AllocPlain("C", 4)
	a := h.AllocArray(4)
	s := h.DefineStatic("s", false, 0)
	return h, o, a, s
}

func TestRollbackRestoresObjectField(t *testing.T) {
	h, o, _, _ := setup()
	l := NewLog(0)
	o.Set(0, 10)
	m := l.Mark()
	l.LogObject(o, 0, o.Get(0))
	o.Set(0, 20)
	n := l.RollbackTo(m, h)
	if n != 1 {
		t.Fatalf("undone %d entries, want 1", n)
	}
	if o.Get(0) != 10 {
		t.Fatalf("field = %d, want 10", o.Get(0))
	}
}

func TestRollbackRestoresArrayAndStatic(t *testing.T) {
	h, _, a, s := setup()
	l := NewLog(0)
	l.LogArray(a, 2, a.Get(2))
	a.Set(2, 5)
	l.LogStatic(s, h.GetStatic(s))
	h.SetStatic(s, 7)
	l.RollbackTo(0, h)
	if a.Get(2) != 0 || h.GetStatic(s) != 0 {
		t.Fatalf("array=%d static=%d, want 0,0", a.Get(2), h.GetStatic(s))
	}
}

func TestRollbackReverseOrder(t *testing.T) {
	// Two stores to the same slot: rollback must restore the value from
	// *before the first* store, which only reverse replay achieves.
	h, o, _, _ := setup()
	l := NewLog(0)
	o.Set(1, 100)
	l.LogObject(o, 1, o.Get(1)) // old = 100
	o.Set(1, 200)
	l.LogObject(o, 1, o.Get(1)) // old = 200
	o.Set(1, 300)
	l.RollbackTo(0, h)
	if o.Get(1) != 100 {
		t.Fatalf("field = %d, want 100 (reverse replay)", o.Get(1))
	}
}

func TestPartialRollbackToMark(t *testing.T) {
	h, o, _, _ := setup()
	l := NewLog(0)
	l.LogObject(o, 0, o.Get(0))
	o.Set(0, 1)
	m := l.Mark()
	l.LogObject(o, 1, o.Get(1))
	o.Set(1, 2)
	l.RollbackTo(m, h)
	if o.Get(0) != 1 {
		t.Fatalf("outer write reverted: %d", o.Get(0))
	}
	if o.Get(1) != 0 {
		t.Fatalf("inner write survived: %d", o.Get(1))
	}
	if l.Len() != 1 {
		t.Fatalf("log length %d, want 1", l.Len())
	}
}

func TestTruncateCommits(t *testing.T) {
	h, o, _, _ := setup()
	l := NewLog(0)
	l.LogObject(o, 0, o.Get(0))
	o.Set(0, 9)
	l.Truncate(0)
	if l.Len() != 0 {
		t.Fatalf("log length %d after truncate", l.Len())
	}
	if o.Get(0) != 9 {
		t.Fatalf("truncate restored the value: %d", o.Get(0))
	}
	_ = h
}

func TestRollbackInvalidMarkPanics(t *testing.T) {
	h, _, _, _ := setup()
	l := NewLog(0)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid mark did not panic")
		}
	}()
	l.RollbackTo(5, h)
}

func TestTruncateInvalidMarkPanics(t *testing.T) {
	l := NewLog(0)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid truncate did not panic")
		}
	}()
	l.Truncate(3)
}

func TestCounters(t *testing.T) {
	h, o, _, _ := setup()
	l := NewLog(0)
	for i := 0; i < 5; i++ {
		l.LogObject(o, 0, o.Get(0))
		o.Set(0, heap.Word(i))
	}
	l.RollbackTo(2, h)
	if l.Appended() != 5 {
		t.Fatalf("Appended = %d, want 5", l.Appended())
	}
	if l.Undone() != 3 {
		t.Fatalf("Undone = %d, want 3", l.Undone())
	}
	l.Reset()
	if l.Len() != 0 || l.Appended() != 5 {
		t.Fatal("Reset cleared the wrong things")
	}
}

func TestRange(t *testing.T) {
	_, o, a, s := setup()
	l := NewLog(0)
	l.LogObject(o, 0, 1)
	l.LogArray(a, 1, 2)
	l.LogStatic(s, 3)
	var locs []Loc
	l.Range(1, func(e Entry) { locs = append(locs, e.Loc()) })
	if len(locs) != 2 {
		t.Fatalf("Range visited %d entries, want 2", len(locs))
	}
	if locs[0].Kind != heap.KindArray || locs[0].ID != a.ID() || locs[0].Idx != 1 {
		t.Fatalf("first loc = %+v", locs[0])
	}
	if locs[1].Kind != heap.KindStatic || locs[1].Idx != s {
		t.Fatalf("second loc = %+v", locs[1])
	}
}

func TestEntryString(t *testing.T) {
	_, o, a, s := setup()
	cases := []struct {
		e    Entry
		want string
	}{
		{Entry{Kind: heap.KindObject, Obj: o, Idx: 0, Old: 1}, "object"},
		{Entry{Kind: heap.KindArray, Arr: a, Idx: 1, Old: 2}, "array"},
		{Entry{Kind: heap.KindStatic, Idx: s, Old: 3}, "static"},
	}
	for _, c := range cases {
		if !strings.Contains(c.e.String(), c.want) {
			t.Errorf("Entry.String() = %q, want substring %q", c.e.String(), c.want)
		}
	}
}

// Property: for any random sequence of logged stores over a small heap,
// RollbackTo(0) restores the exact pre-sequence snapshot. This is the
// paper's core invariant — "the end effect of the rollback is as if the
// low-priority thread never executed the section".
func TestRollbackRestoresSnapshotProperty(t *testing.T) {
	prop := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := heap.New()
		o := h.AllocPlain("C", 8)
		a := h.AllocArray(8)
		s := h.DefineStatic("s", false, 0)
		// Random initial state.
		for i := 0; i < 8; i++ {
			o.Set(i, heap.Word(rng.Int63n(100)))
			a.Set(i, heap.Word(rng.Int63n(100)))
		}
		h.SetStatic(s, heap.Word(rng.Int63n(100)))
		before := h.Snapshot()

		l := NewLog(0)
		for i := 0; i < int(steps); i++ {
			idx := rng.Intn(8)
			v := heap.Word(rng.Int63n(1000))
			switch rng.Intn(3) {
			case 0:
				l.LogObject(o, idx, o.Get(idx))
				o.Set(idx, v)
			case 1:
				l.LogArray(a, idx, a.Get(idx))
				a.Set(idx, v)
			case 2:
				l.LogStatic(s, h.GetStatic(s))
				h.SetStatic(s, v)
			}
		}
		l.RollbackTo(0, h)
		return before.Equal(h.Snapshot()) && l.Len() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: nested marks roll back independently — undoing the inner
// suffix then the outer prefix equals undoing everything at once.
func TestNestedMarksProperty(t *testing.T) {
	prop := func(seed int64, outer, inner uint8) bool {
		run := func(twoPhase bool) heap.Snapshot {
			rng := rand.New(rand.NewSource(seed))
			h := heap.New()
			o := h.AllocPlain("C", 4)
			l := NewLog(0)
			write := func() {
				idx := rng.Intn(4)
				l.LogObject(o, idx, o.Get(idx))
				o.Set(idx, heap.Word(rng.Int63n(1000)))
			}
			for i := 0; i < int(outer%16); i++ {
				write()
			}
			m := l.Mark()
			for i := 0; i < int(inner%16); i++ {
				write()
			}
			if twoPhase {
				l.RollbackTo(m, h)
				l.RollbackTo(0, h)
			} else {
				l.RollbackTo(0, h)
			}
			return h.Snapshot()
		}
		return run(true).Equal(run(false))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogOnceDedupsRepeatedStores(t *testing.T) {
	h, o, a, s := setup()
	l := NewLog(0)
	sec := l.Mark()
	for i := 0; i < 100; i++ {
		l.LogObjectOnce(o, 0, o.Get(0), sec)
		o.Set(0, heap.Word(i))
		l.LogArrayOnce(a, 1, a.Get(1), sec)
		a.Set(1, heap.Word(i))
		l.LogStaticOnce(h, s, h.GetStatic(s), sec)
		h.SetStatic(s, heap.Word(i))
	}
	if l.Len() != 3 {
		t.Fatalf("log holds %d entries, want 3 (one per location)", l.Len())
	}
	if l.Deduped() != 297 {
		t.Fatalf("Deduped = %d, want 297", l.Deduped())
	}
	l.RollbackTo(sec, h)
	if o.Get(0) != 0 || a.Get(1) != 0 || h.GetStatic(s) != 0 {
		t.Fatalf("rollback left %d,%d,%d; want 0,0,0", o.Get(0), a.Get(1), h.GetStatic(s))
	}
}

func TestLogOnceReturnsWhetherAppended(t *testing.T) {
	_, o, _, _ := setup()
	l := NewLog(0)
	if !l.LogObjectOnce(o, 0, 0, 0) {
		t.Fatal("first store not appended")
	}
	if l.LogObjectOnce(o, 0, 0, 0) {
		t.Fatal("second store appended")
	}
}

func TestLogOnceNestedSectionRelogs(t *testing.T) {
	// A slot logged by the outer section must be logged AGAIN by an inner
	// section: the inner rollback needs the value as of the inner mark, not
	// the outer one.
	h, o, _, _ := setup()
	l := NewLog(0)
	outer := l.Mark()
	l.LogObjectOnce(o, 0, o.Get(0), outer) // old = 0
	o.Set(0, 10)
	inner := l.Mark()
	if !l.LogObjectOnce(o, 0, o.Get(0), inner) {
		t.Fatal("inner section deduped against outer entry")
	}
	o.Set(0, 20)
	l.RollbackTo(inner, h)
	if o.Get(0) != 10 {
		t.Fatalf("inner rollback left %d, want 10", o.Get(0))
	}
	l.RollbackTo(outer, h)
	if o.Get(0) != 0 {
		t.Fatalf("outer rollback left %d, want 0", o.Get(0))
	}
}

func TestLogOnceStampInvalidatedByRollback(t *testing.T) {
	h, o, _, _ := setup()
	l := NewLog(0)
	l.LogObjectOnce(o, 0, o.Get(0), 0)
	o.Set(0, 5)
	l.RollbackTo(0, h) // kills the entry; the stamp must die with it
	sec := l.Mark()
	o.Set(0, 7)
	if !l.LogObjectOnce(o, 0, 7, sec) {
		t.Fatal("stale stamp survived rollback")
	}
	o.Set(0, 8)
	l.RollbackTo(sec, h)
	if o.Get(0) != 7 {
		t.Fatalf("rollback left %d, want 7", o.Get(0))
	}
}

func TestLogOnceStampInvalidatedByTruncateAndReset(t *testing.T) {
	h, o, _, _ := setup()
	l := NewLog(0)
	l.LogObjectOnce(o, 0, 0, 0)
	l.Truncate(0) // commit: entry gone, stamp must be stale
	if !l.LogObjectOnce(o, 0, 1, 0) {
		t.Fatal("stale stamp survived truncate")
	}
	l.Reset()
	if !l.LogObjectOnce(o, 0, 2, 0) {
		t.Fatal("stale stamp survived reset")
	}
	_ = h
}

func TestLogOnceDistinctLogsDoNotAlias(t *testing.T) {
	// Two threads' logs stamping the same slot must not dedup against each
	// other: log identity is part of the stamp.
	_, o, _, _ := setup()
	l1, l2 := NewLog(0), NewLog(0)
	l1.LogObjectOnce(o, 0, 0, 0)
	if !l2.LogObjectOnce(o, 0, 0, 0) {
		t.Fatal("second log deduped against first log's stamp")
	}
	if l1.Len() != 1 || l2.Len() != 1 {
		t.Fatalf("lens %d,%d; want 1,1", l1.Len(), l2.Len())
	}
}

func TestLogOnceZeroValueLog(t *testing.T) {
	// The zero-value Log must not dedup its first store against the slot's
	// zeroed stamp.
	_, o, _, _ := setup()
	var l Log
	if !l.LogObjectOnce(o, 0, 0, 0) {
		t.Fatal("zero-value log deduped its first store")
	}
	if l.LogObjectOnce(o, 0, 0, 0) {
		t.Fatal("second store not deduped")
	}
}

// Property: rollback of a deduped log restores the same snapshot as rollback
// of a full (undeduped) log over the identical store sequence — the §3.1.2
// guarantee is preserved by first-write-wins.
func TestDedupRollbackEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, steps uint8) bool {
		run := func(dedup bool) heap.Snapshot {
			rng := rand.New(rand.NewSource(seed))
			h := heap.New()
			o := h.AllocPlain("C", 4)
			a := h.AllocArray(4)
			s := h.DefineStatic("s", false, 0)
			for i := 0; i < 4; i++ {
				o.Set(i, heap.Word(rng.Int63n(100)))
				a.Set(i, heap.Word(rng.Int63n(100)))
			}
			h.SetStatic(s, heap.Word(rng.Int63n(100)))
			l := NewLog(0)
			sec := l.Mark()
			for i := 0; i < int(steps); i++ {
				idx := rng.Intn(4)
				v := heap.Word(rng.Int63n(1000))
				switch rng.Intn(3) {
				case 0:
					if dedup {
						l.LogObjectOnce(o, idx, o.Get(idx), sec)
					} else {
						l.LogObject(o, idx, o.Get(idx))
					}
					o.Set(idx, v)
				case 1:
					if dedup {
						l.LogArrayOnce(a, idx, a.Get(idx), sec)
					} else {
						l.LogArray(a, idx, a.Get(idx))
					}
					a.Set(idx, v)
				case 2:
					if dedup {
						l.LogStaticOnce(h, s, h.GetStatic(s), sec)
					} else {
						l.LogStatic(s, h.GetStatic(s))
					}
					h.SetStatic(s, v)
				}
			}
			l.RollbackTo(sec, h)
			return h.Snapshot()
		}
		return run(true).Equal(run(false))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
