package interp

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/causal"
	"repro/internal/core"
	"repro/internal/fr"
	"repro/internal/sched"
	"repro/internal/trace"
)

// runCausal executes one example on one tier with a trace recorder
// attached (plus any extra sink) and an optional perturbation, returning
// the recorded stream and the run's complete final state.
func runCausal(t *testing.T, src string, tier Tier, p *core.Perturb, extra trace.Sink) ([]trace.Event, tierFinalState) {
	t.Helper()
	prog, facts := prepareExample(t, src)
	rec := &trace.Recorder{}
	var sink trace.Sink = rec
	if extra != nil {
		sink = trace.Multi{rec, extra}
	}
	rt := core.New(core.Config{
		Mode:              core.Revocation,
		TrackDependencies: true,
		DeadlockDetection: true,
		Observer:          sink,
		Perturb:           p,
		Sched:             sched.Config{Quantum: 1000, SwitchCost: 3},
	})
	env, err := Run(rt, prog, Options{
		Rewritten:        true,
		Tier:             tier,
		OptCallThreshold: 1,
		Facts:            facts,
	})
	if err != nil {
		t.Fatalf("%v tier: %v", tier, err)
	}
	return rec.Events(), finalState(rt, env)
}

// TestCriticalPathEqualsClock is the causal package's grand invariant,
// checked over every example program (including the deadlocking corpus —
// revocation resolves those runs) on all three tiers: the happens-before
// DAG built from the live trace stream has every timeline point's
// longest-path distance equal to its timestamp, the longest path equals
// the final virtual clock EXACTLY, and the extracted critical path tiles
// [0, clock] gaplessly.
func TestCriticalPathEqualsClock(t *testing.T) {
	for _, src := range exampleSources(t) {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			for _, tier := range allTiers {
				events, st := runCausal(t, src, tier, nil, nil)
				g, err := causal.Build(events, causal.Options{})
				if err != nil {
					t.Fatalf("%v: Build: %v", tier, err)
				}
				if err := g.CheckInvariant(); err != nil {
					t.Fatalf("%v: %v", tier, err)
				}
				if int64(g.FinalClock) != st.clock {
					t.Fatalf("%v: DAG final clock %d != runtime clock %d", tier, g.FinalClock, st.clock)
				}
				a, err := g.CriticalPath()
				if err != nil {
					t.Fatalf("%v: CriticalPath: %v", tier, err)
				}
				var pathLen int64
				for _, p := range a.Pieces {
					pathLen += int64(p.To - p.From)
				}
				if pathLen != st.clock {
					t.Fatalf("%v: critical path %d ticks != final clock %d", tier, pathLen, st.clock)
				}
				// Per-class totals re-partition the makespan exactly.
				var classSum int64
				for c := causal.Class(0); c < causal.NumClasses; c++ {
					classSum += int64(a.ClassTotals[c])
				}
				if classSum != st.clock {
					t.Fatalf("%v: class totals sum %d != final clock %d", tier, classSum, st.clock)
				}
			}
		})
	}
}

// TestWhatIfZeroPerturbationIdentity pins the what-if engine's control
// property on every example and tier: re-executing under an empty
// core.Perturb is indistinguishable from the baseline — same final
// clock, same complete Stats, same heap fingerprint and print stream.
func TestWhatIfZeroPerturbationIdentity(t *testing.T) {
	for _, src := range exampleSources(t) {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			for _, tier := range allTiers {
				_, base := runCausal(t, src, tier, nil, nil)
				_, replay := runCausal(t, src, tier, &core.Perturb{}, nil)
				if replay.clock != base.clock {
					t.Errorf("%v: zero-perturbation clock %d != baseline %d", tier, replay.clock, base.clock)
				}
				if replay.stats != base.stats {
					t.Errorf("%v: zero-perturbation stats diverge:\n base:   %+v\n replay: %+v", tier, base.stats, replay.stats)
				}
				if replay.heap != base.heap {
					t.Errorf("%v: zero-perturbation heap diverges:\n base:\n%s replay:\n%s", tier, base.heap, replay.heap)
				}
			}
		})
	}
}

// TestDumpDAGMatchesLive pins that the DAG built from a flight-recorder
// dump equals the DAG built from the live stream when the ring did not
// wrap: causal.Build is a pure function of the event slice, and the fr
// codec round-trips every field the builder consumes (including the
// PR 10 enrichments: spawner, switch cost, sleep and idle payloads).
func TestDumpDAGMatchesLive(t *testing.T) {
	src := filepath.Join("..", "..", "examples", "bytecode", "inversion.rvm")
	frRec := fr.New(fr.Config{Size: 4 << 20})
	events, _ := runCausal(t, src, TierExec, nil, frRec)
	if frRec.Wrapped() {
		t.Fatalf("ring wrapped (%d lost); enlarge Size so the streams are comparable", frRec.Lost())
	}
	dump, err := frRec.Snapshot("test")
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != len(events) {
		t.Fatalf("dump has %d events, live stream %d", len(dump.Events), len(events))
	}
	for i := range events {
		if dump.Events[i] != events[i] {
			t.Fatalf("event %d round-trip mismatch:\n live: %+v\n dump: %+v", i, events[i], dump.Events[i])
		}
	}
	report := func(evs []trace.Event) string {
		g, err := causal.Build(evs, causal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
		a, err := g.CriticalPath()
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		causal.RenderReport(&b, g, a, 10)
		return b.String()
	}
	live, fromDump := report(events), report(dump.Events)
	if live != fromDump {
		t.Fatalf("live and dump attributions differ:\n--- live ---\n%s--- dump ---\n%s", live, fromDump)
	}
}
