package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

// TestRevocationDiscardsCalleeFrames: a revocation delivered while the
// doomed section is several method calls deep must discard the callee
// activations and restart from the monitorenter (the paper's stack-unwind
// through nested exception scopes, §3.1.2).
func TestRevocationDiscardsCalleeFrames(t *testing.T) {
	src := `
static lockRef = 0
static depthReached = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread low priority 2 run lowMain
thread high priority 8 run highMain

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    return
}

method lowMain locals 1 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    store 0
    sync 0 {
        invoke level1
    }
    return
}
method level1 locals 0 {
    invoke level2
    return
}
method level2 locals 0 {
    const 3
    putstatic depthReached
    const 3000
    work           # revocation lands here, three frames deep
    return
}

method highMain locals 1 {
    const 300
    sleep
    getstatic lockRef
    store 0
    sync 0 {
        nop
    }
    return
}
`
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{Mode: core.Revocation, Sched: sched.Config{Quantum: 200}})
	env, err := Run(rt, prog, Options{Rewritten: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Rollbacks == 0 {
		t.Fatal("no rollback across call frames")
	}
	idx, _ := prog.StaticIndex("depthReached")
	// The write happened in the re-execution too: net value 3.
	if got := env.RT.Heap().GetStatic(idx); got != 3 {
		t.Fatalf("depthReached = %d, want 3", got)
	}
}

// TestBytecodeDeadlockBroken: the classic two-lock deadlock written in
// bytecode, resolved by revocation.
func TestBytecodeDeadlockBroken(t *testing.T) {
	src := `
static lockA = 0
static lockB = 0
static done = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread t1 priority 5 run first
thread t2 priority 5 run second

method setup locals 2 {
    newobj Lock
    store 0
    load 0
    putstatic lockA
    newobj Lock
    store 1
    load 1
    putstatic lockB
    return
}

method first locals 2 {
  spin:
    getstatic lockB
    ifz spin
    getstatic lockA
    store 0
    getstatic lockB
    store 1
    sync 0 {
        const 500
        work
        sync 1 {
            const 10
            work
        }
    }
    getstatic done
    const 1
    add
    putstatic done
    return
}

method second locals 2 {
  spin:
    getstatic lockB
    ifz spin
    getstatic lockA
    store 0
    getstatic lockB
    store 1
    sync 1 {
        const 500
        work
        sync 0 {
            const 10
            work
        }
    }
    getstatic done
    const 1
    add
    putstatic done
    return
}
`
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{
		Mode:              core.Revocation,
		DeadlockDetection: true,
		Sched:             sched.Config{Quantum: 100},
	})
	env, err := Run(rt, prog, Options{Rewritten: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().DeadlocksBroken == 0 {
		t.Fatal("deadlock not broken")
	}
	idx, _ := prog.StaticIndex("done")
	if got := env.RT.Heap().GetStatic(idx); got != 2 {
		t.Fatalf("done = %d, want 2", got)
	}
}

// TestNativeInSectionForcesNonRevocable via bytecode: after a native call
// (print) the section cannot be revoked.
func TestNativeInSectionForcesNonRevocable(t *testing.T) {
	src := `
static lockRef = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread low priority 2 run lowMain
thread high priority 8 run highMain
method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    return
}
method lowMain locals 1 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    store 0
    sync 0 {
        const 7
        native print 1
        pop
        const 3000
        work
    }
    return
}
method highMain locals 1 {
    const 300
    sleep
    getstatic lockRef
    store 0
    sync 0 {
        nop
    }
    return
}
`
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{Mode: core.Revocation, Sched: sched.Config{Quantum: 200}})
	env, err := Run(rt, prog, Options{Rewritten: true})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Rollbacks != 0 {
		t.Fatalf("section with native call was revoked: %+v", st)
	}
	if st.RevocationsDenied == 0 {
		t.Fatal("revocation not denied")
	}
	// The print ran exactly once: irrevocable effects never repeat.
	if len(env.Printed) != 1 || env.Printed[0] != 7 {
		t.Fatalf("Printed = %v, want [7]", env.Printed)
	}
}

// TestWorkAndSleepOpcodes advance virtual time as specified.
func TestWorkAndSleepOpcodes(t *testing.T) {
	prog := bytecode.MustAssemble(`
thread t priority 5 run main
method main locals 0 {
    const 100
    work
    const 200
    sleep
    return
}
`)
	rt := core.New(core.Config{Mode: core.Unmodified, Sched: sched.Config{Quantum: 10000}})
	if _, err := Run(rt, prog, Options{CostPerInstr: 1}); err != nil {
		t.Fatal(err)
	}
	// 5 instructions @1 + 100 work + 200 sleep = 305.
	if got := int64(rt.Now()); got != 305 {
		t.Fatalf("end time = %d, want 305", got)
	}
}

// TestNowAndPriorityNatives exercise the built-in natives.
func TestNowAndPriorityNatives(t *testing.T) {
	_, env := callMain(t, `
method main locals 0 returns {
    native now 0
    pop
    native threadpriority 0
    native print 1
    pop
    const 0
    ireturn
}
`)
	if len(env.Printed) != 1 || env.Printed[0] != int64OfPriority() {
		t.Fatalf("Printed = %v, want [%d]", env.Printed, int64OfPriority())
	}
}

func int64OfPriority() heap.Word { return heap.Word(sched.NormPriority) }

// TestCustomNative registers a native and calls it.
func TestCustomNative(t *testing.T) {
	prog := bytecode.MustAssemble(`
thread t priority 5 run main
static out = 0
method main locals 0 {
    const 6
    const 7
    native mulnative 2
    putstatic out
    return
}
`)
	rt := core.New(core.Config{})
	env, err := NewEnv(rt, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	env.RegisterNative("mulnative", func(e *Env, tk *core.Task, args []heap.Word) heap.Word {
		return args[0] * args[1]
	})
	if err := env.SpawnDeclaredThreads(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	idx, _ := prog.StaticIndex("out")
	if got := rt.Heap().GetStatic(idx); got != 42 {
		t.Fatalf("out = %d", got)
	}
}

// TestUnknownNativeFails cleanly.
func TestUnknownNativeFails(t *testing.T) {
	prog := bytecode.MustAssemble(`
method main locals 0 {
    native nonexistent 0
    pop
    return
}
`)
	rt := core.New(core.Config{})
	env, err := NewEnv(rt, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := prog.Method("main")
	var callErr error
	rt.Spawn("main", sched.NormPriority, func(tk *core.Task) {
		_, callErr = env.Call(tk, m, nil)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if callErr == nil || !strings.Contains(callErr.Error(), "nonexistent") {
		t.Fatalf("err = %v", callErr)
	}
}

// TestEnvRequiresFreshRuntime: statics are laid out by the Env; a reused
// runtime would corrupt offsets.
func TestEnvRequiresFreshRuntime(t *testing.T) {
	rt := core.New(core.Config{})
	rt.Heap().DefineStatic("already", false, 0)
	prog := bytecode.MustAssemble(`
static x = 0
method main locals 0 {
    return
}
`)
	if _, err := NewEnv(rt, prog, Options{}); err == nil {
		t.Fatal("Env accepted a runtime with pre-existing statics")
	}
}

// TestCallArgMismatch reports arity errors.
func TestCallArgMismatch(t *testing.T) {
	prog := bytecode.MustAssemble(`
method two args 2 locals 2 {
    return
}
`)
	rt := core.New(core.Config{})
	env, err := NewEnv(rt, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := prog.Method("two")
	var callErr error
	rt.Spawn("t", sched.NormPriority, func(tk *core.Task) {
		_, callErr = env.Call(tk, m, nil)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if callErr == nil {
		t.Fatal("arity mismatch accepted")
	}
}

// genArithProgram builds a random straight-line arithmetic method; used to
// property-test the two execution tiers against each other.
func genArithProgram(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("method main locals 4 returns {\n")
	// Seed the locals.
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, "    const %d\n    store %d\n", rng.Intn(100)+1, i)
	}
	// Keep one accumulator on the stack.
	b.WriteString("    const 1\n")
	ops := []string{"add", "sub", "mul"}
	for i := 0; i < 20+rng.Intn(30); i++ {
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "    const %d\n    %s\n", rng.Intn(50)+1, ops[rng.Intn(len(ops))])
		case 1:
			fmt.Fprintf(&b, "    load %d\n    %s\n", rng.Intn(4), ops[rng.Intn(len(ops))])
		case 2:
			fmt.Fprintf(&b, "    dup\n    %s\n", ops[rng.Intn(len(ops))])
		case 3:
			fmt.Fprintf(&b, "    neg\n")
		}
	}
	b.WriteString("    ireturn\n}\n")
	return b.String()
}

// TestTiersAgreeOnRandomPrograms: the switch interpreter and the threaded
// tier compute identical results on random arithmetic programs.
func TestTiersAgreeOnRandomPrograms(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genArithProgram(rng)
		a := callMainWith(t, src, Options{})
		b := callMainWith(t, src, Options{Threaded: true})
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestInterleavedRevocationsTwoLocks: two independent locks, two low
// threads, two high threads; each high revokes its own victim without
// cross-talk.
func TestInterleavedRevocationsTwoLocks(t *testing.T) {
	src := `
static lockA = 0
static lockB = 0
static dataA = 0
static dataB = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread lowA priority 2 run lowAMain
thread lowB priority 2 run lowBMain
thread highA priority 8 run highAMain
thread highB priority 8 run highBMain

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockA
    newobj Lock
    store 0
    load 0
    putstatic lockB
    return
}
method lowAMain locals 1 {
  spin:
    getstatic lockB
    ifz spin
    getstatic lockA
    store 0
    sync 0 {
        const 1
        putstatic dataA
        const 4000
        work
    }
    return
}
method lowBMain locals 1 {
  spin:
    getstatic lockB
    ifz spin
    getstatic lockB
    store 0
    sync 0 {
        const 2
        putstatic dataB
        const 4000
        work
    }
    return
}
method highAMain locals 1 {
    const 500
    sleep
    getstatic lockA
    store 0
    sync 0 {
        getstatic dataA
        const 10
        add
        putstatic dataA
    }
    return
}
method highBMain locals 1 {
    const 500
    sleep
    getstatic lockB
    store 0
    sync 0 {
        getstatic dataB
        const 20
        add
        putstatic dataB
    }
    return
}
`
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{Mode: core.Revocation, Sched: sched.Config{Quantum: 300}})
	env, err := Run(rt, prog, Options{Rewritten: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Rollbacks < 2 {
		t.Fatalf("rollbacks = %d, want >= 2 (one per lock)", rt.Stats().Rollbacks)
	}
	getS := func(name string) heap.Word {
		idx, _ := prog.StaticIndex(name)
		return env.RT.Heap().GetStatic(idx)
	}
	// Highs ran on clean state (0+10, 0+20), lows re-executed after.
	if getS("dataA") != 1 || getS("dataB") != 2 {
		t.Fatalf("dataA=%d dataB=%d, want 1, 2", getS("dataA"), getS("dataB"))
	}
}
