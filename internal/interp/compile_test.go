package interp

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

// callMainWith runs "main" under the given options.
func callMainWith(t *testing.T, src string, opts Options) heap.Word {
	t.Helper()
	prog := bytecode.MustAssemble(src)
	rt := core.New(core.Config{Mode: core.Unmodified, Sched: sched.Config{Quantum: 1000}})
	env, err := NewEnv(rt, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := prog.Method("main")
	if !ok {
		t.Fatal("no main")
	}
	var ret heap.Word
	var callErr error
	rt.Spawn("main", sched.NormPriority, func(tk *core.Task) {
		ret, callErr = env.Call(tk, m, nil)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if callErr != nil {
		t.Fatal(callErr)
	}
	return ret
}

// TestThreadedMatchesInterpreter runs a mixed workload on both tiers and
// compares results tick for tick.
func TestThreadedMatchesInterpreter(t *testing.T) {
	src := `
static g = 3
class Box {
    v = 2
}
method main locals 3 returns {
    newobj Box
    store 0
    const 0
    store 1      # acc
    const 20
    store 2      # i
  loop:
    load 2
    ifz done
    load 1
    load 2
    mul
    getstatic g
    add
    store 1
    load 0
    load 1
    putfield Box.v
    load 2
    const 1
    sub
    store 2
    goto loop
  done:
    load 0
    getfield Box.v
    load 1
    add
    invoke half
    ireturn
}
method half args 1 locals 1 returns {
    load 0
    const 2
    div
    ireturn
}
`
	a := callMainWith(t, src, Options{})
	b := callMainWith(t, src, Options{Threaded: true})
	if a != b {
		t.Fatalf("tiers disagree: interp=%d threaded=%d", a, b)
	}
}

// TestThreadedVirtualTimeIdentical: both tiers charge identical virtual
// time, so evaluation results do not depend on the execution tier.
func TestThreadedVirtualTimeIdentical(t *testing.T) {
	run := func(threaded bool) (heap.Word, int64) {
		src := `
static acc = 0
method main locals 1 returns {
    const 30
    store 0
  loop:
    load 0
    ifz done
    getstatic acc
    load 0
    add
    putstatic acc
    load 0
    const 1
    sub
    store 0
    goto loop
  done:
    getstatic acc
    ireturn
}
`
		prog := bytecode.MustAssemble(src)
		rt := core.New(core.Config{Mode: core.Revocation, Sched: sched.Config{Quantum: 100}})
		env, err := NewEnv(rt, prog, Options{Threaded: threaded})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := prog.Method("main")
		var ret heap.Word
		rt.Spawn("main", sched.NormPriority, func(tk *core.Task) {
			ret, _ = env.Call(tk, m, nil)
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return ret, int64(rt.Now())
	}
	r1, t1 := run(false)
	r2, t2 := run(true)
	if r1 != r2 || t1 != t2 {
		t.Fatalf("tiers diverge: (%d, %d ticks) vs (%d, %d ticks)", r1, t1, r2, t2)
	}
}

// TestThreadedRevocation: the threaded tier supports rollback scopes too.
func TestThreadedRevocation(t *testing.T) {
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(revocationProgram))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{
		Mode:              core.Revocation,
		TrackDependencies: true,
		Sched:             sched.Config{Quantum: 200},
	})
	env, err := Run(rt, prog, Options{Rewritten: true, Threaded: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Rollbacks == 0 {
		t.Fatal("no rollback on the threaded tier")
	}
	idx, _ := env.Prog.StaticIndex("highSawDirty")
	if got := env.RT.Heap().GetStatic(idx); got != 0 {
		t.Fatalf("high saw speculative data = %d", got)
	}
}

// TestThreadedExceptions: user-exception dispatch works identically.
func TestThreadedExceptions(t *testing.T) {
	src := `
method main locals 0 returns {
  try:
    const 1
    const 0
    div
    ireturn
  after:
    const 0
    ireturn
  catcher:
    pop
    const 5
    ireturn
}
handler main from try to after target catcher catch ArithmeticException
`
	if got := callMainWith(t, src, Options{Threaded: true}); got != 5 {
		t.Fatalf("ret = %d", got)
	}
}

// TestCompileCache: compiling the same method twice returns the cache.
func TestCompileCache(t *testing.T) {
	prog := bytecode.MustAssemble(`
method main locals 0 returns {
    const 1
    ireturn
}
`)
	rt := core.New(core.Config{})
	env, err := NewEnv(rt, prog, Options{Threaded: true})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := prog.Method("main")
	f1 := env.compile(m)
	f2 := env.compile(m)
	if &f1[0] != &f2[0] {
		t.Fatal("compile not cached")
	}
}
