package interp

import (
	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/simtime"
)

// This file is the third execution tier (Options.Tier: TierOpt): a
// profile-driven superinstruction compiler. Methods start life on the
// threaded tier; once a deterministic hotness threshold is crossed —
// activation count, or attributed work ticks when the virtual-time
// profiler is attached — the method is recompiled into fused closure
// streams:
//
//   - maximal straight-line runs of simple opcodes become one closure
//     that steps through a pre-decoded micro-op array, eliminating the
//     per-instruction indirect call and loop overhead of threaded code;
//   - calls, allocations and natives are resolved once at compile time
//     (method pointer, class field specs, native function) instead of
//     per-execution name lookups;
//   - monitorenter sites whose sections the static analysis proved
//     non-revocable compile to a specialized entry that fuses the enter
//     with the pre-mark — no per-execution fact lookup, no revocability
//     bookkeeping — and the region's SAVESTACK, whose RESTORESTACK can
//     only run under a rollback that can never target the section,
//     compiles to a charge-only no-op.
//
// Every paper semantic is preserved: each fused constituent still charges
// its cost through Work — every original instruction boundary remains a
// yield point with identical quantum-expiry timing — f.pc is maintained
// per constituent so fault pcs and rollback dispatch are unchanged, and
// barrier elision remains exactly the statically-proven RAW opcode set
// produced by rewrite.ApplyStaticElision. The three-tier property tests
// pin heap/Stats/clock equivalence over every example program.

// compileTiered returns the code for one activation of m under TierOpt:
// fused code once hot, threaded code until then. (The activation count
// was already bumped by pushFrame.)
func (e *Env) compileTiered(m *bytecode.Method) []opFunc {
	if fns, ok := e.optCompiled[m]; ok {
		return fns
	}
	if e.hot(m) {
		fns := e.compileOpt(m)
		e.optCompiled[m] = fns
		if e.profOn {
			e.RT.Config().Profiler.SetFuncTier(m.Name, "opt")
		}
		return fns
	}
	return e.compile(m)
}

// hot applies the deterministic hotness thresholds: activation count, or
// profiler-attributed work ticks. Both feeds are functions of the
// deterministic virtual-time execution, so recompilation points — and
// therefore entire runs — are reproducible.
func (e *Env) hot(m *bytecode.Method) bool {
	if e.calls[m] >= e.Opts.OptCallThreshold {
		return true
	}
	return e.profOn && e.RT.Config().Profiler.FuncWork(m.Name) >= e.Opts.OptHotTicks
}

// fusable reports whether op may join a fused straight-line run: simple
// stack/local/static operations with no control transfer out of the
// method. DIV and MOD are included — their ArithmeticException aborts the
// fused closure exactly like exec's early return.
func fusable(op bytecode.Op) bool {
	switch op {
	case bytecode.NOP, bytecode.CONST, bytecode.LOAD, bytecode.STORE,
		bytecode.DUP, bytecode.POP, bytecode.SWAP,
		bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.DIV, bytecode.MOD, bytecode.NEG,
		bytecode.CMPEQ, bytecode.CMPNE, bytecode.CMPLT, bytecode.CMPLE,
		bytecode.CMPGT, bytecode.CMPGE,
		bytecode.GETSTATIC, bytecode.PUTSTATIC,
		bytecode.SAVESTACK, bytecode.RESTORESTACK:
		return true
	}
	return false
}

// elidedSavestacks returns the pcs of SAVESTACK instructions proven dead:
// their region's section is statically non-revocable, so no rollback can
// ever target the region and the spill slots the SAVESTACK fills are only
// read by the region's (unreachable) RESTORESTACK. The tick charge is
// kept — the instruction still executes as a charge-only no-op. Each
// elision is a discharged proof obligation: a fact without a matching
// dead-savestack certificate is never elided (and NewEnv already rejected
// the fact set as a hard error).
func (e *Env) elidedSavestacks(m *bytecode.Method) map[int]bool {
	facts := e.Opts.Facts
	if facts == nil || !e.Opts.Rewritten {
		return nil
	}
	var dead map[int]bool
	for _, r := range m.Regions {
		s := facts.SectionAt(m.Name, r.EnterPC+1)
		if s == nil || !s.NonRevocable {
			continue
		}
		spc := r.EnterPC - 1
		if spc < 0 || m.Code[spc].Op != bytecode.SAVESTACK {
			continue
		}
		if facts.RequireCert(m.Name, spc, analysis.CertDeadSavestack) != nil {
			continue
		}
		if dead == nil {
			dead = map[int]bool{}
		}
		dead[spc] = true
	}
	return dead
}

// compileOpt builds the fused code for a hot method.
func (e *Env) compileOpt(m *bytecode.Method) []opFunc {
	cost := e.Opts.CostPerInstr
	code := m.Code
	fns := make([]opFunc, len(code))

	// Leaders start a new fused run: jump targets and handler entries.
	leader := make([]bool, len(code)+1)
	for _, instr := range code {
		switch instr.Op {
		case bytecode.GOTO, bytecode.IFZ, bytecode.IFNZ:
			if instr.A >= 0 && instr.A < len(leader) {
				leader[instr.A] = true
			}
		}
	}
	for _, h := range m.Handlers {
		if h.Target >= 0 && h.Target < len(leader) {
			leader[h.Target] = true
		}
	}

	deadSaves := e.elidedSavestacks(m)

	for pc := 0; pc < len(code); {
		instr := code[pc]
		if fusable(instr.Op) {
			end := pc + 1
			for end < len(code) && fusable(code[end].Op) && !leader[end] {
				end++
			}
			// Absorb the following non-fusable instruction as the run's
			// terminator (unless it is a jump target, which needs its own
			// dispatch entry): the branch/call/return that ends a basic
			// block executes in the same dispatch as the straight-line code
			// leading up to it, instead of a round trip through the
			// dispatch loop.
			var term opFunc
			termEnd := end
			if end < len(code) && !leader[end] {
				term = e.compileOptOne(m, end, code[end], cost)
				termEnd = end + 1
			}
			fns[pc] = e.fuse(m, pc, end, term, deadSaves)
			// Interior pcs are not leaders, so compiled dispatch never
			// lands on them; keep the table total with exec fallbacks.
			for q := pc + 1; q < end; q++ {
				ins := code[q]
				fns[q] = func(in *Interp, f *frame) { in.exec(f, ins) }
			}
			if term != nil {
				fns[end] = term
			}
			pc = termEnd
			continue
		}
		fns[pc] = e.compileOptOne(m, pc, instr, cost)
		pc++
	}
	return fns
}

// microOp is a fused run's pre-decoded constituent: 16 bytes (vs ~40 for
// bytecode.Instr, whose string operand fused opcodes never need), so long
// runs stay within a couple of cache lines.
type microOp struct {
	op bytecode.Op
	a  int32
	v  int64
}

// fuse compiles code[start:end] — a maximal straight-line run of simple
// opcodes — into one superinstruction closure, with term (the compiled
// closure of the block-ending instruction at pc end, when non-nil) run in
// the same dispatch. Each constituent keeps its own pc stamp, profiler
// stamp and Work charge, so yield points, fault pcs and attribution are
// bit-identical to the other tiers; only the dispatch between constituents
// is gone.
func (e *Env) fuse(m *bytecode.Method, start, end int, term opFunc, deadSaves map[int]bool) opFunc {
	ops := make([]microOp, end-start)
	for i, instr := range m.Code[start:end] {
		if deadSaves[start+i] && instr.Op == bytecode.SAVESTACK {
			// Statically dead spill: same tick charge as the SAVESTACK it
			// replaces, no stack copy.
			ops[i] = microOp{op: bytecode.NOP}
			continue
		}
		ops[i] = microOp{op: instr.Op, a: int32(instr.A), v: instr.V}
	}
	cost := e.Opts.CostPerInstr
	mname := m.Name
	profOn, raceOn := e.profOn, e.raceOn
	audit := e.Opts.ElisionAudit
	// The per-instruction cost is a compile-time constant; when it fits in
	// one quantum (always, in practice) the run charges through the
	// loop-free Step entry point.
	fastStep := cost <= e.RT.Scheduler().Quantum()
	after := end

	return func(in *Interp, f *frame) {
		t := in.task
		pc := start
		for i := range ops {
			op := &ops[i]
			f.pc = pc
			if profOn {
				t.SetProfSite(pc)
			}
			if fastStep {
				t.Step(cost)
			} else {
				t.Work(cost)
			}
			switch op.op {
			case bytecode.NOP:
				if audit != nil && deadSaves[pc] {
					audit(analysis.CertDeadSavestack, mname, pc)
				}
			case bytecode.CONST:
				f.push(heap.Word(op.v))
			case bytecode.LOAD:
				f.push(f.locals[op.a])
			case bytecode.STORE:
				f.locals[op.a] = f.pop()
			case bytecode.DUP:
				v := f.pop()
				f.push(v)
				f.push(v)
			case bytecode.POP:
				f.pop()
			case bytecode.SWAP:
				a, b := f.pop(), f.pop()
				f.push(a)
				f.push(b)
			case bytecode.ADD:
				b, a := f.pop(), f.pop()
				f.push(a + b)
			case bytecode.SUB:
				b, a := f.pop(), f.pop()
				f.push(a - b)
			case bytecode.MUL:
				b, a := f.pop(), f.pop()
				f.push(a * b)
			case bytecode.DIV:
				b, a := f.pop(), f.pop()
				if b == 0 {
					in.raiseUser("ArithmeticException")
					return
				}
				f.push(a / b)
			case bytecode.MOD:
				b, a := f.pop(), f.pop()
				if b == 0 {
					in.raiseUser("ArithmeticException")
					return
				}
				f.push(a % b)
			case bytecode.NEG:
				f.push(-f.pop())
			case bytecode.CMPEQ, bytecode.CMPNE, bytecode.CMPLT, bytecode.CMPLE,
				bytecode.CMPGT, bytecode.CMPGE:
				b, a := f.pop(), f.pop()
				v, _ := arith(op.op, a, b)
				f.push(v)
			case bytecode.GETSTATIC:
				if raceOn {
					t.SetRaceSite(mname, pc)
				}
				f.push(t.ReadStatic(int(op.a)))
			case bytecode.PUTSTATIC:
				if raceOn {
					t.SetRaceSite(mname, pc)
				}
				t.WriteStatic(int(op.a), f.pop())
			case bytecode.SAVESTACK:
				d := int(op.v)
				for j := 0; j < d; j++ {
					f.locals[int(op.a)+j] = f.stack[j]
				}
			case bytecode.RESTORESTACK:
				d := int(op.v)
				for j := 0; j < d; j++ {
					f.push(f.locals[int(op.a)+j])
				}
			}
			pc++
		}
		// after is the terminator's pc (or the next leader's, with no
		// terminator); term stamps its own profiler site and advances f.pc
		// itself, exactly as it would when dispatched from the loop.
		f.pc = after
		if term != nil {
			term(in, f)
		}
	}
}

// compileConfinedElision builds the tier-3 closure for a certified
// thread-confined MONITORENTER or MONITOREXIT: the whole monitor operation
// is a charge-only no-op — the ref is popped and null-checked for NPE
// parity, the elision is counted and audited, and control falls through.
// The certificate check happened at plan-build time (Env.confinedIn), so
// the closure itself carries no fact lookup.
func (e *Env) compileConfinedElision(mname string, pc int, head func(*Interp)) opFunc {
	next := pc + 1
	return func(in *Interp, f *frame) {
		head(in)
		if _, ok := in.object(f.pop()); !ok {
			return
		}
		in.task.CountConfinedElision()
		if audit := in.env.Opts.ElisionAudit; audit != nil {
			audit(analysis.CertConfined, mname, pc)
		}
		f.pc = next
	}
}

// compileOptOne builds the tier-3 closure for one non-fusable
// instruction: compile-time-resolved where the operand allows it, the
// threaded tier's closure for branches, exec fallback for the cold rest.
// Every dedicated closure mirrors exec's hook order exactly — profiler
// stamp, Work, race-site stamp, body.
func (e *Env) compileOptOne(m *bytecode.Method, pc int, instr bytecode.Instr, cost simtime.Ticks) opFunc {
	next := pc + 1
	mname := m.Name

	// head replicates exec's per-instruction prologue for dedicated
	// closures. (The branch on the cached env flags is what exec pays
	// too.) Like fused runs, it charges through Step when the constant
	// cost fits in one quantum.
	fastStep := cost <= e.RT.Scheduler().Quantum()
	head := func(in *Interp) {
		if in.env.profOn {
			in.task.SetProfSite(pc)
		}
		if fastStep {
			in.task.Step(cost)
		} else {
			in.task.Work(cost)
		}
		if in.env.raceOn {
			in.task.SetRaceSite(mname, pc)
		}
	}

	switch instr.Op {
	case bytecode.GOTO, bytecode.IFZ, bytecode.IFNZ:
		fn, _ := compileOne(instr, pc, cost)
		if e.profOn {
			inner := fn
			fn = func(in *Interp, f *frame) {
				in.task.SetProfSite(pc)
				inner(in, f)
			}
		}
		return fn

	case bytecode.GETFIELD:
		idx := instr.A
		return func(in *Interp, f *frame) {
			head(in)
			o, ok := in.object(f.pop())
			if !ok {
				return
			}
			if idx >= o.NumFields() {
				in.fail("%s: field %d out of range on %v", mname, idx, o)
				return
			}
			f.push(in.task.ReadField(o, idx))
			f.pc = next
		}
	case bytecode.PUTFIELD:
		idx := instr.A
		return func(in *Interp, f *frame) {
			head(in)
			v := f.pop()
			o, ok := in.object(f.pop())
			if !ok {
				return
			}
			if idx >= o.NumFields() {
				in.fail("%s: field %d out of range on %v", mname, idx, o)
				return
			}
			in.task.WriteField(o, idx, v)
			f.pc = next
		}
	case bytecode.ALOAD:
		return func(in *Interp, f *frame) {
			head(in)
			idx := f.pop()
			a, ok := in.array(f.pop())
			if !ok {
				return
			}
			if idx < 0 || int(idx) >= a.Len() {
				in.raiseUser("ArrayIndexOutOfBoundsException")
				return
			}
			f.push(in.task.ReadElem(a, int(idx)))
			f.pc = next
		}
	case bytecode.ASTORE:
		return func(in *Interp, f *frame) {
			head(in)
			v := f.pop()
			idx := f.pop()
			a, ok := in.array(f.pop())
			if !ok {
				return
			}
			if idx < 0 || int(idx) >= a.Len() {
				in.raiseUser("ArrayIndexOutOfBoundsException")
				return
			}
			in.task.WriteElem(a, int(idx), v)
			f.pc = next
		}
	case bytecode.ARRAYLEN:
		return func(in *Interp, f *frame) {
			head(in)
			a, ok := in.array(f.pop())
			if !ok {
				return
			}
			f.push(heap.Word(a.Len()))
			f.pc = next
		}

	// Raw stores — the statically elided write barrier. The elided set is
	// exactly what rewrite.ApplyStaticElision rewrote to RAW opcodes; the
	// tier only removes the exec dispatch around the plain store.
	case bytecode.PUTFIELDRAW:
		idx := instr.A
		costWrite := e.RT.Config().CostWrite
		audit := e.Opts.ElisionAudit
		return func(in *Interp, f *frame) {
			head(in)
			v := f.pop()
			o, ok := in.object(f.pop())
			if !ok {
				return
			}
			if idx >= o.NumFields() {
				in.fail("%s: field %d out of range on %v", mname, idx, o)
				return
			}
			in.task.Work(costWrite)
			in.task.CountRawStore()
			if audit != nil {
				audit(analysis.CertElideBarrier, mname, pc)
			}
			o.Set(idx, v)
			in.task.RaceRawWriteField(o, idx)
			f.pc = next
		}
	case bytecode.PUTSTATICRAW:
		idx := instr.A
		costWrite := e.RT.Config().CostWrite
		audit := e.Opts.ElisionAudit
		return func(in *Interp, f *frame) {
			head(in)
			in.task.Work(costWrite)
			in.task.CountRawStore()
			if audit != nil {
				audit(analysis.CertElideBarrier, mname, pc)
			}
			in.env.RT.Heap().SetStatic(idx, f.pop())
			in.task.RaceRawWriteStatic(idx)
			f.pc = next
		}
	case bytecode.ASTORERAW:
		costWrite := e.RT.Config().CostWrite
		audit := e.Opts.ElisionAudit
		return func(in *Interp, f *frame) {
			head(in)
			v := f.pop()
			idx := f.pop()
			a, ok := in.array(f.pop())
			if !ok {
				return
			}
			if idx < 0 || int(idx) >= a.Len() {
				in.raiseUser("ArrayIndexOutOfBoundsException")
				return
			}
			in.task.Work(costWrite)
			in.task.CountRawStore()
			if audit != nil {
				audit(analysis.CertElideBarrier, mname, pc)
			}
			a.Set(int(idx), v)
			in.task.RaceRawWriteElem(a, int(idx))
			f.pc = next
		}

	case bytecode.NEWOBJ:
		// Inline cache: class and field specs resolved once. AllocObject
		// copies the spec values, so the slice is safely shared.
		cls, ok := e.Prog.Class(instr.S)
		if !ok {
			cls = &bytecode.Class{Name: instr.S}
		}
		specs := make([]heap.FieldSpec, len(cls.Fields))
		for i, fd := range cls.Fields {
			specs[i] = heap.FieldSpec{Name: fd.Name, Volatile: fd.Volatile, Init: heap.Word(fd.Init)}
		}
		factsOn := e.Opts.Facts != nil
		class := cls
		return func(in *Interp, f *frame) {
			head(in)
			o := in.env.RT.Heap().AllocObject(class.Name, specs...)
			ref := heap.Word(o.ID())
			in.env.objects[ref] = o
			in.env.classOf[ref] = class
			if factsOn {
				in.task.RegisterAllocObject(o)
			}
			f.push(ref)
			f.pc = next
		}
	case bytecode.NEWARR:
		factsOn := e.Opts.Facts != nil
		return func(in *Interp, f *frame) {
			head(in)
			n := f.pop()
			if n < 0 {
				in.raiseUser("NegativeArraySizeException")
				return
			}
			ref := in.env.NewArray(int(n))
			if factsOn {
				if a, ok := in.env.arrays[ref]; ok {
					in.task.RegisterAllocArray(a)
				}
			}
			f.push(ref)
			f.pc = next
		}

	case bytecode.INVOKE:
		callee, ok := e.Prog.Method(instr.S)
		if !ok {
			break // unknown method: exec reports the error at runtime
		}
		nargs := callee.Args
		return func(in *Interp, f *frame) {
			head(in)
			// Pop into the Interp's scratch buffer: pushFrame copies the
			// args into the callee's locals before the next yield point, so
			// no per-call allocation is needed.
			if cap(in.argBuf) < nargs {
				in.argBuf = make([]heap.Word, nargs)
			}
			args := in.argBuf[:nargs]
			for i := nargs - 1; i >= 0; i-- {
				args[i] = f.pop()
			}
			// The caller's pc stays at the INVOKE (RETURN advances it).
			in.pushFrame(callee, args)
		}
	case bytecode.RETURN, bytecode.IRETURN:
		isIret := instr.Op == bytecode.IRETURN
		returns := m.Returns
		return func(in *Interp, f *frame) {
			head(in)
			var v heap.Word
			if isIret {
				v = f.pop()
			}
			if len(f.syncs) != 0 {
				in.fail("%s: return with %d synchronized sections active", mname, len(f.syncs))
				return
			}
			in.frames = in.frames[:len(in.frames)-1]
			in.profSync()
			if len(in.frames) == 0 {
				in.ret = v
				return
			}
			caller := in.top()
			if returns {
				caller.push(v)
			}
			caller.pc++ // step past the INVOKE
		}
	case bytecode.NATIVE:
		fn, ok := e.natives[instr.S]
		if !ok {
			break // late registration or error: exec resolves at runtime
		}
		name, nargs := instr.S, instr.A
		return func(in *Interp, f *frame) {
			head(in)
			args := make([]heap.Word, nargs)
			for i := nargs - 1; i >= 0; i-- {
				args[i] = f.pop()
			}
			var ret heap.Word
			in.task.Native(name, func() { ret = fn(in.env, in.task, args) })
			f.push(ret)
			f.pc = next
		}

	case bytecode.MONITORENTER:
		// The section fact and region index are resolved at compile time;
		// statically non-revocable sections take the specialized entry
		// that skips the per-execution lookup chain and fuses the
		// pre-mark into the enter. The specialization is a discharged
		// proof obligation: a non-revocable fact without a matching
		// certificate compiles to a hard error, never to a silent
		// specialization.
		if e.confinedIn(m)[pc] == confinedEnter {
			return e.compileConfinedElision(mname, pc, head)
		}
		regionIdx := e.regionIndex(m, pc)
		rewritten := e.Opts.Rewritten
		nonRev := false
		var nonRevReason string
		if facts := e.Opts.Facts; facts != nil {
			if s := facts.SectionAt(mname, pc); s != nil && s.NonRevocable {
				if err := facts.RequireCert(mname, pc, analysis.CertNonRevocable); err != nil {
					certErr := err
					return func(in *Interp, f *frame) { in.fail("%v", certErr) }
				}
				nonRev, nonRevReason = true, s.ReasonSummary()
			}
		}
		dlOn := e.dlOn
		return func(in *Interp, f *frame) {
			head(in)
			mon, ok := in.monitorFor(f.pop())
			if !ok {
				return
			}
			depth := in.task.EngineFrameDepth()
			if dlOn {
				in.task.SetLockSite(mname, pc)
			}
			if nonRev {
				in.task.EngineEnterNonRevocable(mon, nonRevReason)
			} else {
				in.task.EngineEnter(mon)
			}
			if !rewritten {
				in.task.MarkIrrevocable("unrewritten bytecode")
			}
			f.syncs = append(f.syncs, activeSync{staticIdx: regionIdx, mon: mon, coreDepth: depth})
			f.pc = next
		}
	case bytecode.MONITOREXIT:
		if e.confinedIn(m)[pc] == confinedExit {
			return e.compileConfinedElision(mname, pc, head)
		}
		return func(in *Interp, f *frame) {
			head(in)
			mon, ok := in.monitorFor(f.pop())
			if !ok {
				return
			}
			if len(f.syncs) == 0 || f.syncs[len(f.syncs)-1].mon != mon {
				in.fail("%s@%d: monitorexit does not match innermost monitorenter", mname, pc)
				return
			}
			f.syncs = f.syncs[:len(f.syncs)-1]
			in.task.EngineExit(mon)
			f.pc = next
		}

	case bytecode.WORK:
		return func(in *Interp, f *frame) {
			head(in)
			in.task.Work(simtime.Ticks(f.pop()))
			f.pc = next
		}
	case bytecode.SLEEP:
		return func(in *Interp, f *frame) {
			head(in)
			in.task.Sleep(simtime.Ticks(f.pop()))
			f.pc = next
		}
	}

	// Cold rest (WAIT, NOTIFY, THROW, RETHROW, CHECKTARGET, unresolved
	// references): the interpreter's implementation, which stamps its own
	// profiler site.
	ins := instr
	return func(in *Interp, f *frame) { in.exec(f, ins) }
}
