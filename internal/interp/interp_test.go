package interp

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

// runMain assembles src, optionally rewrites it, runs the declared threads
// on a runtime in the given mode, and returns the env.
func runMain(t *testing.T, src string, mode core.Mode, rewriteIt bool) (*Env, *core.Runtime) {
	t.Helper()
	prog := bytecode.MustAssemble(src)
	if rewriteIt {
		var err error
		prog, err = rewrite.Rewrite(prog)
		if err != nil {
			t.Fatal(err)
		}
	}
	rt := core.New(core.Config{
		Mode:              mode,
		TrackDependencies: true,
		DeadlockDetection: mode == core.Revocation,
		Sched:             sched.Config{Quantum: 200},
	})
	env, err := Run(rt, prog, Options{Rewritten: rewriteIt})
	if err != nil {
		t.Fatal(err)
	}
	return env, rt
}

// callMain runs a single method named "main" on one thread and returns its
// result.
func callMain(t *testing.T, src string) (heap.Word, *Env) {
	t.Helper()
	prog := bytecode.MustAssemble(src)
	rt := core.New(core.Config{Mode: core.Unmodified, Sched: sched.Config{Quantum: 1000}})
	env, err := NewEnv(rt, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := prog.Method("main")
	if !ok {
		t.Fatal("no main method")
	}
	var ret heap.Word
	var callErr error
	rt.Spawn("main", sched.NormPriority, func(tk *core.Task) {
		ret, callErr = env.Call(tk, m, nil)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if callErr != nil {
		t.Fatal(callErr)
	}
	return ret, env
}

func TestArithmetic(t *testing.T) {
	ret, _ := callMain(t, `
method main locals 0 returns {
    const 7
    const 3
    mul      # 21
    const 5
    sub      # 16
    const 3
    div      # 5
    const 3
    mod      # 2
    neg      # -2
    ireturn
}
`)
	if ret != -2 {
		t.Fatalf("ret = %d, want -2", ret)
	}
}

func TestComparisonsAndBranches(t *testing.T) {
	// Compute max(12, 9) via a branch.
	ret, _ := callMain(t, `
method main locals 2 returns {
    const 12
    store 0
    const 9
    store 1
    load 0
    load 1
    cmpgt
    ifnz first
    load 1
    ireturn
  first:
    load 0
    ireturn
}
`)
	if ret != 12 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 1..10 = 55.
	ret, _ := callMain(t, `
method main locals 2 returns {
    const 0
    store 0      # sum
    const 10
    store 1      # i
  loop:
    load 1
    ifz done
    load 0
    load 1
    add
    store 0
    load 1
    const 1
    sub
    store 1
    goto loop
  done:
    load 0
    ireturn
}
`)
	if ret != 55 {
		t.Fatalf("sum = %d, want 55", ret)
	}
}

func TestObjectsAndFields(t *testing.T) {
	ret, _ := callMain(t, `
class Point {
    x
    y = 40
}
method main locals 1 returns {
    newobj Point
    store 0
    load 0
    const 2
    putfield Point.x
    load 0
    getfield Point.x
    load 0
    getfield Point.y
    add
    ireturn
}
`)
	if ret != 42 {
		t.Fatalf("ret = %d, want 42", ret)
	}
}

func TestArrays(t *testing.T) {
	ret, _ := callMain(t, `
method main locals 1 returns {
    const 5
    newarr
    store 0
    load 0
    const 2
    const 99
    astore
    load 0
    const 2
    aload
    load 0
    arraylen
    add
    ireturn
}
`)
	if ret != 104 {
		t.Fatalf("ret = %d, want 104", ret)
	}
}

func TestStatics(t *testing.T) {
	ret, _ := callMain(t, `
static acc = 5
method main locals 0 returns {
    getstatic acc
    const 3
    add
    putstatic acc
    getstatic acc
    ireturn
}
`)
	if ret != 8 {
		t.Fatalf("ret = %d, want 8", ret)
	}
}

func TestInvokeAndReturnValues(t *testing.T) {
	ret, _ := callMain(t, `
method main locals 0 returns {
    const 6
    const 7
    invoke mul2
    ireturn
}
method mul2 args 2 locals 2 returns {
    load 0
    load 1
    mul
    ireturn
}
`)
	if ret != 42 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestRecursion(t *testing.T) {
	// factorial(6) = 720
	ret, _ := callMain(t, `
method main locals 0 returns {
    const 6
    invoke fact
    ireturn
}
method fact args 1 locals 1 returns {
    load 0
    ifz base
    load 0
    load 0
    const 1
    sub
    invoke fact
    mul
    ireturn
  base:
    const 1
    ireturn
}
`)
	if ret != 720 {
		t.Fatalf("fact(6) = %d", ret)
	}
}

func TestUserExceptionCaught(t *testing.T) {
	ret, _ := callMain(t, `
method main locals 0 returns {
  try:
    throw Boom
  after:
    const 0
    ireturn
  catcher:
    pop          # discard the exception object
    const 77
    ireturn
}
handler main from try to after target catcher catch Boom
`)
	if ret != 77 {
		t.Fatalf("ret = %d, want 77 (handler result)", ret)
	}
}

func TestUserExceptionCatchAny(t *testing.T) {
	ret, _ := callMain(t, `
method main locals 0 returns {
  try:
    throw Weird
  after:
    const 0
    ireturn
  catcher:
    pop
    const 1
    ireturn
}
handler main from try to after target catcher catch *
`)
	if ret != 1 {
		t.Fatalf("catch-any did not run: %d", ret)
	}
}

func TestUserExceptionPropagatesAcrossFrames(t *testing.T) {
	ret, _ := callMain(t, `
method main locals 0 returns {
  try:
    invoke thrower
  after:
    const 0
    ireturn
  catcher:
    pop
    const 9
    ireturn
}
method thrower locals 0 {
    throw Deep
}
handler main from try to after target catcher catch Deep
`)
	if ret != 9 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestUncaughtExceptionFailsThread(t *testing.T) {
	prog := bytecode.MustAssemble(`
method main locals 0 {
    throw Unhandled
}
`)
	rt := core.New(core.Config{})
	env, err := NewEnv(rt, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := prog.Method("main")
	var callErr error
	rt.Spawn("main", sched.NormPriority, func(tk *core.Task) {
		_, callErr = env.Call(tk, m, nil)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if callErr == nil || !strings.Contains(callErr.Error(), "Unhandled") {
		t.Fatalf("err = %v", callErr)
	}
}

func TestVMExceptions(t *testing.T) {
	cases := []struct {
		name string
		body string
		exc  string
	}{
		{"div-zero", "const 1\n const 0\n div\n pop", "ArithmeticException"},
		{"null-field", "const 999\n const 1\n putfield 0", "NullPointerException"},
		{"array-bounds", "const 2\n newarr\n const 5\n aload\n pop", "ArrayIndexOutOfBoundsException"},
		{"neg-array", "const 0\n const 1\n sub\n newarr\n pop", "NegativeArraySizeException"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := `
method main locals 0 returns {
  try:
    ` + c.body + `
    const 0
    ireturn
  after:
    const 0
    ireturn
  catcher:
    pop
    const 1
    ireturn
}
handler main from try to after target catcher catch ` + c.exc + "\n"
			ret, _ := callMain(t, src)
			if ret != 1 {
				t.Fatalf("%s not raised/caught (ret=%d)", c.exc, ret)
			}
		})
	}
}

func TestNativePrint(t *testing.T) {
	_, env := callMain(t, `
method main locals 0 returns {
    const 123
    native print 1
    pop
    const 0
    ireturn
}
`)
	if len(env.Printed) != 1 || env.Printed[0] != 123 {
		t.Fatalf("Printed = %v", env.Printed)
	}
}

func TestSyncBlockMutualExclusion(t *testing.T) {
	// Two threads increment a static 50 times each under a shared lock
	// object referenced through a static.
	env, _ := runMain(t, `
static lockRef = 0
static counter = 0
class Lock {
    unused
}

thread init priority 9 run setup
thread a priority 5 run worker
thread b priority 5 run worker

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    return
}

method worker locals 2 {
  wait_init:
    getstatic lockRef
    ifz wait_init
    getstatic lockRef
    store 0
    const 50
    store 1
  loop:
    load 1
    ifz done
    sync 0 {
        getstatic counter
        const 1
        add
        putstatic counter
    }
    load 1
    const 1
    sub
    store 1
    goto loop
  done:
    return
}
`, core.Unmodified, false)
	idx, _ := env.Prog.StaticIndex("counter")
	if got := env.RT.Heap().GetStatic(idx); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestWaitNotifyViaBytecode(t *testing.T) {
	env, _ := runMain(t, `
static lockRef = 0
static flag = 0
static result = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread consumer priority 5 run consume
thread producer priority 3 run produce

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    return
}
method consume locals 1 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    store 0
    sync 0 {
      check:
        getstatic flag
        ifnz ready
        load 0
        wait
        goto check
      ready:
        getstatic flag
        putstatic result
    }
    return
}
method produce locals 1 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    store 0
    const 500
    sleep
    sync 0 {
        const 41
        putstatic flag
        load 0
        notify
    }
    return
}
`, core.Unmodified, false)
	idx, _ := env.Prog.StaticIndex("result")
	if got := env.RT.Heap().GetStatic(idx); got != 41 {
		t.Fatalf("result = %d, want 41", got)
	}
}

// revocationProgram is the interpreter version of the paper's Figure 1: a
// low-priority thread dirties shared statics inside a synchronized section
// and busy-loops; a high-priority thread arrives at the same lock. On the
// modified VM the low thread must be revoked, its stores undone, and the
// section re-executed.
const revocationProgram = `
static lockRef = 0
static data = 0
static highSawDirty = 0
static lowRuns = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread low priority 2 run lowMain
thread high priority 8 run highMain

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    return
}

method lowMain locals 2 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    store 0
    sync 0 {
        getstatic lowRuns
        const 1
        add
        putstatic lowRuns
        const 1
        putstatic data
        const 3000
        work
    }
    return
}

method highMain locals 1 {
    const 300
    sleep            # let low grab the lock first
    getstatic lockRef
    store 0
    sync 0 {
        getstatic data
        putstatic highSawDirty
        const 50
        putstatic data
    }
    return
}
`

func TestRevocationThroughRewrittenBytecode(t *testing.T) {
	env, rt := runMain(t, revocationProgram, core.Revocation, true)
	st := rt.Stats()
	if st.Rollbacks == 0 {
		t.Fatalf("no rollback happened: %+v", st)
	}
	if st.Reexecutions == 0 {
		t.Fatal("no re-execution recorded")
	}
	get := func(name string) heap.Word {
		idx, ok := env.Prog.StaticIndex(name)
		if !ok {
			t.Fatalf("static %s missing", name)
		}
		return env.RT.Heap().GetStatic(idx)
	}
	// The high thread entered after the rollback: it must have seen the
	// pristine value, not the speculative 1.
	if got := get("highSawDirty"); got != 0 {
		t.Fatalf("high saw speculative data = %d, want 0", got)
	}
	// The low section re-executed after high: final data is low's 1.
	if got := get("data"); got != 1 {
		t.Fatalf("final data = %d, want 1 (low re-executed last)", got)
	}
	// lowRuns is incremented inside the section, so the aborted run's
	// increment was undone: the net count is exactly 1 — "as if the
	// low-priority thread never executed the section" the first time.
	// The Reexecutions stat (checked above) witnesses the retry.
	if got := get("lowRuns"); got != 1 {
		t.Fatalf("lowRuns = %d, want 1 (first increment rolled back)", got)
	}
}

func TestUnmodifiedBytecodeBlocksInstead(t *testing.T) {
	env, rt := runMain(t, revocationProgram, core.Unmodified, false)
	if rt.Stats().Rollbacks != 0 {
		t.Fatal("unmodified VM rolled back")
	}
	get := func(name string) heap.Word {
		idx, _ := env.Prog.StaticIndex(name)
		return env.RT.Heap().GetStatic(idx)
	}
	// High waited for the full section: it saw low's committed 1 and
	// overwrote it with 50.
	if got := get("highSawDirty"); got != 1 {
		t.Fatalf("high saw %d, want 1 (committed value)", got)
	}
	if got := get("data"); got != 50 {
		t.Fatalf("final data = %d, want 50", got)
	}
	if got := get("lowRuns"); got != 1 {
		t.Fatalf("lowRuns = %d, want 1", got)
	}
}

func TestUnrewrittenSectionsAreIrrevocable(t *testing.T) {
	// Same program, Revocation VM, but NOT rewritten: sections have no
	// rollback scopes, so they are marked irrevocable and the VM behaves
	// like the unmodified one (no rollbacks, no stranded control).
	env, rt := runMain(t, revocationProgram, core.Revocation, false)
	st := rt.Stats()
	if st.Rollbacks != 0 {
		t.Fatalf("unrewritten section was revoked: %+v", st)
	}
	if st.RevocationsDenied == 0 {
		t.Fatal("revocation should have been requested and denied")
	}
	get := func(name string) heap.Word {
		idx, _ := env.Prog.StaticIndex(name)
		return env.RT.Heap().GetStatic(idx)
	}
	if got := get("lowRuns"); got != 1 {
		t.Fatalf("lowRuns = %d, want 1", got)
	}
}

// TestRollbackSkipsUserHandlers reproduces §3.1.2: a rollback exception
// must ignore catch-any handlers (finally blocks) inside the section —
// they would otherwise run side effects for an execution that "never
// happened".
func TestRollbackSkipsUserHandlers(t *testing.T) {
	src := `
static lockRef = 0
static finallyRuns = 0
static sectionRuns = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread low priority 2 run lowMain
thread high priority 8 run highMain

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    return
}

method lowMain locals 2 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    store 0
    sync 0 {
      try:
        getstatic sectionRuns
        const 1
        add
        putstatic sectionRuns
        const 3000
        work
      tryEnd:
        nop
    }
    return
  fin:
    # a "finally" block: records that it ran, rethrows
    pop
    getstatic finallyRuns
    const 1
    add
    putstatic finallyRuns
    throw Refired
}
handler lowMain from try to tryEnd target fin catch *

method highMain locals 1 {
    const 300
    sleep
    getstatic lockRef
    store 0
    sync 0 {
        nop
    }
    return
}
`
	env, rt := runMain(t, src, core.Revocation, true)
	if rt.Stats().Rollbacks == 0 {
		t.Fatal("no rollback")
	}
	idx, _ := env.Prog.StaticIndex("finallyRuns")
	if got := env.RT.Heap().GetStatic(idx); got != 0 {
		t.Fatalf("finally ran %d times during rollback, want 0 (§3.1.2)", got)
	}
	idx2, _ := env.Prog.StaticIndex("sectionRuns")
	if got := env.RT.Heap().GetStatic(idx2); got != 1 {
		t.Fatalf("sectionRuns = %d, want 1 (aborted run was undone)", got)
	}
}

// TestUserExceptionReleasesMonitor: a user exception leaving a rewritten
// synchronized block releases the monitor and keeps updates (no rollback).
func TestUserExceptionReleasesMonitor(t *testing.T) {
	ret, env := callMainRewritten(t, `
static data = 0
class Lock {
    unused
}
method main locals 1 returns {
    newobj Lock
    store 0
  try:
    sync 0 {
        const 7
        putstatic data
        throw Oops
    }
  tryEnd:
    const 0
    ireturn
  catcher:
    pop
    # the monitor must be free again: re-enter it
    sync 0 {
        getstatic data
    }
    ireturn
}
handler main from try to tryEnd target catcher catch Oops
`)
	if ret != 7 {
		t.Fatalf("ret = %d, want 7 (update survives a user exception)", ret)
	}
	_ = env
}

// callMainRewritten runs a single rewritten method "main".
func callMainRewritten(t *testing.T, src string) (heap.Word, *Env) {
	t.Helper()
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{Mode: core.Revocation, TrackDependencies: true, Sched: sched.Config{Quantum: 1000}})
	env, err := NewEnv(rt, prog, Options{Rewritten: true})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := prog.Method("main")
	var ret heap.Word
	var callErr error
	rt.Spawn("main", sched.NormPriority, func(tk *core.Task) {
		ret, callErr = env.Call(tk, m, nil)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if callErr != nil {
		t.Fatal(callErr)
	}
	return ret, env
}

// TestSynchronizedMethodEndToEnd: the full pipeline — synchronized method
// lowered by the rewriter, called concurrently, revoked under contention.
func TestSynchronizedMethodEndToEnd(t *testing.T) {
	src := `
static lockRef = 0
static total = 0
class Account {
    balance
}
thread init priority 9 run setup
thread low priority 2 run lowMain
thread high priority 8 run highMain

method setup locals 1 {
    newobj Account
    store 0
    load 0
    putstatic lockRef
    return
}

method Account.deposit synchronized args 2 locals 2 {
    load 0
    load 0
    getfield Account.balance
    load 1
    add
    putfield Account.balance
    const 2000
    work
    return
}

method lowMain locals 1 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    const 5
    invoke Account.deposit
    return
}

method highMain locals 1 {
    const 300
    sleep
    getstatic lockRef
    const 100
    invoke Account.deposit
    return
}
`
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{Mode: core.Revocation, TrackDependencies: true, Sched: sched.Config{Quantum: 200}})
	env, err := Run(rt, prog, Options{Rewritten: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Rollbacks == 0 {
		t.Fatal("no rollback through the synchronized-method wrapper")
	}
	// Both deposits must have landed exactly once: 5 + 100.
	var acct *heap.Object
	for _, o := range env.RT.Heap().Objects() {
		if o.Class() == "Account" {
			acct = o
		}
	}
	if acct == nil {
		t.Fatal("no Account allocated")
	}
	if got := acct.Get(0); got != 105 {
		t.Fatalf("balance = %d, want 105", got)
	}
}
