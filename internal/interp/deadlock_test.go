package interp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

// exampleSources globs every seeded example program, including the
// deadlocking corpus outside examples/bytecode (which stays clean of
// deadlockers so the observability CI jobs can run it end to end).
func exampleSources(t *testing.T) []string {
	t.Helper()
	var srcs []string
	for _, dir := range []string{"bytecode", "racy", "deadlock", "deadlock2", "aliasdl", "confined", "escape", "recdl"} {
		matches, err := filepath.Glob(filepath.Join("..", "..", "examples", dir, "*.rvm"))
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, matches...)
	}
	if len(srcs) < 11 {
		t.Fatalf("found only %d example programs: %v", len(srcs), srcs)
	}
	return srcs
}

// prepareExample runs one example source through the full rvmrun -static
// pipeline: assemble, verify, rewrite, analyze the rewritten program,
// apply certified elision.
func prepareExample(t *testing.T, src string) (*bytecode.Program, *analysis.Facts) {
	t.Helper()
	text, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := bytecode.Assemble(string(text))
	if err != nil {
		t.Fatal(err)
	}
	if err := bytecode.Verify(prog); err != nil {
		t.Fatal(err)
	}
	prog, err = rewrite.Rewrite(prog)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	rewrite.ApplyStaticElision(prog, facts)
	return prog, facts
}

// TestDynamicDeadlocksSubsetOfStatic is the cross-validation invariant
// between the runtime wait-for-graph detector and the behavioral pass:
// over every example program on every tier, any deadlock the WFG
// observer witnesses at runtime must appear in the static report —
// the program has non-empty Facts.Deadlocks, and every blocked thread's
// stamped acquisition sites are witness positions of the static cycles.
// (The converse is not an invariant: a static may-deadlock need not
// fire on one deterministic schedule.)
func TestDynamicDeadlocksSubsetOfStatic(t *testing.T) {
	for _, src := range exampleSources(t) {
		src := src
		for _, tier := range allTiers {
			tier := tier
			t.Run(filepath.Base(src)+"/"+tier.String(), func(t *testing.T) {
				prog, facts := prepareExample(t, src)

				var cycles [][]core.DeadlockEdge
				rt := core.New(core.Config{
					Mode:              core.Revocation,
					TrackDependencies: true,
					DeadlockDetection: true,
					OnDeadlock: func(cycle []core.DeadlockEdge) {
						cycles = append(cycles, cycle)
					},
					Sched: sched.Config{Quantum: 1000},
				})
				if _, err := Run(rt, prog, Options{
					Rewritten:        true,
					Tier:             tier,
					OptCallThreshold: 1,
					Facts:            facts,
				}); err != nil {
					t.Fatalf("%v tier: %v", tier, err)
				}
				if len(cycles) == 0 {
					return
				}

				// The static side of the inclusion: a witnessed deadlock with
				// no behavioral report would be a soundness hole.
				if len(facts.Deadlocks) == 0 {
					t.Fatalf("runtime witnessed %d deadlock cycles but the behavioral pass reports none", len(cycles))
				}
				staticSites := make(map[string]bool)
				for _, c := range facts.Deadlocks {
					for _, e := range c.Edges {
						staticSites[e.At.String()] = true
						staticSites[e.Outer.String()] = true
					}
				}
				for _, cy := range cycles {
					for _, e := range cy {
						if !staticSites[e.WaitSite] {
							t.Errorf("dynamic wait site %s (task %s waiting for %s) is not a static witness: %v",
								e.WaitSite, e.Task, e.WaitsFor, staticSites)
						}
						if !staticSites[e.HoldSite] {
							t.Errorf("dynamic hold site %s (task %s holding %s) is not a static witness: %v",
								e.HoldSite, e.Task, e.Holds, staticSites)
						}
					}
				}
			})
		}
	}
}

// TestDeadlockExamplesWitnessed pins that the seeded deadlock examples
// actually deadlock at runtime on the deterministic scheduler — keeping
// the subset test above non-vacuous — and that the revocation VM's own
// detector then breaks every cycle so the run completes. recdl is the
// recursion-only shape: its cycle exists statically only through the
// recursive contract inference, and dynamically only past recursion
// depth one.
func TestDeadlockExamplesWitnessed(t *testing.T) {
	for _, name := range []string{"deadlock/deadlock.rvm", "deadlock2/deadlock2.rvm", "aliasdl/aliasdl.rvm", "recdl/recdl.rvm"} {
		name := name
		t.Run(filepath.Base(name), func(t *testing.T) {
			prog, facts := prepareExample(t, filepath.Join("..", "..", "examples", name))
			var cycles [][]core.DeadlockEdge
			rt := core.New(core.Config{
				Mode:              core.Revocation,
				TrackDependencies: true,
				DeadlockDetection: true,
				OnDeadlock:        func(cycle []core.DeadlockEdge) { cycles = append(cycles, cycle) },
				Sched:             sched.Config{Quantum: 1000},
			})
			if _, err := Run(rt, prog, Options{Rewritten: true, Facts: facts}); err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(cycles) == 0 {
				t.Fatal("no runtime deadlock witnessed")
			}
			if len(cycles[0]) != 2 {
				t.Fatalf("first cycle has %d threads, want 2: %+v", len(cycles[0]), cycles[0])
			}
			if rt.Stats().DeadlocksBroken == 0 {
				t.Error("revocation VM did not break the witnessed deadlock")
			}
		})
	}
}

// rawInSource reports the positions that are raw stores in the program
// BEFORE certified elision — hand-seeded barrier bypasses (the racy
// volbypass example) rather than compiler elisions. The audit property
// governs only what ApplyStaticElision introduced.
func rawInSource(t *testing.T, src string) map[string]bool {
	t.Helper()
	text, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(string(text)))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool)
	for _, m := range prog.Methods {
		for pc, in := range m.Code {
			switch in.Op {
			case bytecode.PUTFIELDRAW, bytecode.PUTSTATICRAW, bytecode.ASTORERAW:
				out[analysis.Pos{Method: m.Name, PC: pc}.String()] = true
			}
		}
	}
	return out
}

// TestOptElisionsAllCertified is the certificate-audit property: every
// write barrier the opt tier actually skips and every SAVESTACK it
// compiles to a no-op carries a matching certificate. The example
// corpus exercises barrier elision; a spill-heavy fixture (the
// TestOptSavestackElision shape) exercises dead-SAVESTACK elision so
// neither half of the property is vacuous.
func TestOptElisionsAllCertified(t *testing.T) {
	audited := make(map[analysis.CertKind]int)
	runAudited := func(t *testing.T, prog *bytecode.Program, facts *analysis.Facts, seededRaw map[string]bool) {
		t.Helper()
		rt := core.New(core.Config{
			Mode:              core.Revocation,
			TrackDependencies: true,
			DeadlockDetection: true,
			Sched:             sched.Config{Quantum: 1000},
		})
		if _, err := Run(rt, prog, Options{
			Rewritten:        true,
			Tier:             TierOpt,
			OptCallThreshold: 1,
			Facts:            facts,
			ElisionAudit: func(kind analysis.CertKind, method string, pc int) {
				if kind == analysis.CertElideBarrier && seededRaw[analysis.Pos{Method: method, PC: pc}.String()] {
					return // hand-written .raw store, not an elision
				}
				audited[kind]++
				if facts.CertAt(method, pc, kind) == nil {
					t.Errorf("elision %s at %s@%d executed without a certificate", kind, method, pc)
				}
			},
		}); err != nil {
			t.Fatalf("opt tier: %v", err)
		}
	}

	for _, src := range exampleSources(t) {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			prog, facts := prepareExample(t, src)
			runAudited(t, prog, facts, rawInSource(t, src))
		})
	}

	t.Run("savestack_fixture", func(t *testing.T) {
		prog, err := rewrite.Rewrite(bytecode.MustAssemble(`
class Lock {
    unused
}
static s = 0
thread main priority 5 run main
method main locals 0 {
    invoke spill
    pop
    return
}
method spill locals 1 returns {
    newobj Lock
    store 0
    const 10
    sync 0 {
        const 42
        native print 1
        pop
    }
    const 100
    add
    ireturn
}
`))
		if err != nil {
			t.Fatal(err)
		}
		facts, err := analysis.Analyze(prog)
		if err != nil {
			t.Fatal(err)
		}
		rewrite.ApplyStaticElision(prog, facts)
		runAudited(t, prog, facts, nil)
	})

	if audited[analysis.CertElideBarrier] == 0 {
		t.Error("audit vacuous: no elided write barrier executed")
	}
	if audited[analysis.CertDeadSavestack] == 0 {
		t.Error("audit vacuous: no dead-SAVESTACK elision executed")
	}
	if audited[analysis.CertConfined] == 0 {
		t.Error("audit vacuous: no confined-monitor elision executed (examples/confined should exercise it)")
	}
	t.Logf("audited elisions: %v", audited)
}

// TestNewEnvRejectsTamperedEscapeFacts covers the two certificate kinds
// the escape pass issues. Staling a confined-monitor certificate (editing
// the program so the proved enter/exit bracketing no longer re-derives)
// and forging a race-free obligation (erasing the race findings that
// excluded a slot) must both fail the load gate on every tier.
func TestNewEnvRejectsTamperedEscapeFacts(t *testing.T) {
	rejectAll := func(t *testing.T, prog *bytecode.Program, facts *analysis.Facts) {
		t.Helper()
		for _, tier := range allTiers {
			rt := core.New(core.Config{Mode: core.Revocation, Sched: sched.Config{Quantum: 1000}})
			_, err := NewEnv(rt, prog, Options{Rewritten: true, Tier: tier, Facts: facts})
			if err == nil {
				t.Fatalf("%v tier: tampered facts accepted", tier)
			}
			if !strings.Contains(err.Error(), "certificate") {
				t.Fatalf("%v tier: error %v does not name the certificate gate", tier, err)
			}
		}
	}

	t.Run("stale_confined_cert", func(t *testing.T) {
		prog, facts := prepareExample(t, filepath.Join("..", "..", "examples", "confined", "confined.rvm"))
		// Break the bracketing proof behind one issued confined-monitor
		// certificate: swap an in-section STORE for a WAIT (identical
		// stack effect and monitor balance, so the bytecode still
		// verifies), which disqualifies the section from whole-monitor
		// elision — the re-derivation finds no clean pairing and the
		// issued certificate is stale.
		tampered := false
		for _, m := range prog.Methods {
			for pc := range m.Code {
				if m.Code[pc].Op != bytecode.MONITORENTER || tampered {
					continue
				}
				exits, ok := facts.ConfinedExits(m.Name, pc)
				if !ok || len(exits) == 0 {
					continue
				}
				for tp := pc + 1; tp < exits[0]; tp++ {
					if m.Code[tp].Op == bytecode.STORE {
						m.Code[tp] = bytecode.Instr{Op: bytecode.WAIT}
						tampered = true
						break
					}
				}
			}
		}
		if !tampered {
			t.Fatal("confined example carries no whole-monitor elision plan")
		}
		rejectAll(t, prog, facts)
	})

	t.Run("forged_race_free_obligation", func(t *testing.T) {
		prog, facts := prepareExample(t, filepath.Join("..", "..", "examples", "racy", "counter.rvm"))
		if len(facts.Races) == 0 {
			t.Fatal("counter example reports no candidate races")
		}
		// Erasing the findings turns the racy slot into a race-free
		// obligation that no certificate discharges.
		facts.Races = nil
		rejectAll(t, prog, facts)
	})
}

// TestNewEnvRejectsTamperedFacts: handing the interpreter a fact set
// whose public fields were altered after analysis is a hard load-time
// error on every tier — the program never starts.
func TestNewEnvRejectsTamperedFacts(t *testing.T) {
	prog, facts := prepareExample(t, filepath.Join("..", "..", "examples", "bytecode", "lockorder.rvm"))
	var flipped *analysis.Section
	for i := range facts.Sections {
		if !facts.Sections[i].NonRevocable {
			flipped = facts.Sections[i]
			break
		}
	}
	if flipped == nil {
		t.Fatal("no revocable section in lockorder.rvm")
	}
	flipped.NonRevocable = true
	for _, tier := range allTiers {
		rt := core.New(core.Config{Mode: core.Revocation, Sched: sched.Config{Quantum: 1000}})
		_, err := NewEnv(rt, prog, Options{Rewritten: true, Tier: tier, Facts: facts})
		if err == nil {
			t.Fatalf("%v tier: tampered facts accepted", tier)
		}
		if !strings.Contains(err.Error(), "no trigger") && !strings.Contains(err.Error(), "certificate") {
			t.Fatalf("%v tier: error %v does not name the certificate gate", tier, err)
		}
	}
}
