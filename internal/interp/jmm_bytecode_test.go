package interp

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

// These tests port the paper's JMM-consistency scenarios (§2.2, Figures
// 2-4) to the bytecode engine: the dependency tracking and non-revocability
// marking must work identically when sections run through the interpreter.

// TestBytecodeFigure2NestedDependency: T writes v under outer+inner and
// releases inner; T' reads v under inner; revoking outer must be denied.
func TestBytecodeFigure2NestedDependency(t *testing.T) {
	src := `
static outerRef = 0
static innerRef = 0
static v = 0
static tPrimeSaw = 0
static tRan = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread T priority 2 run tMain
thread Tprime priority 5 run tPrimeMain
thread Th priority 8 run thMain

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic outerRef
    newobj Lock
    store 0
    load 0
    putstatic innerRef
    return
}

method tMain locals 2 {
  spin:
    getstatic innerRef
    ifz spin
    getstatic outerRef
    store 0
    getstatic innerRef
    store 1
    sync 0 {
        sync 1 {
            const 42
            putstatic v
        }
        const 4000
        work
        const 1
        putstatic tRan
    }
    return
}

method tPrimeMain locals 1 {
    const 300
    sleep
    getstatic innerRef
    store 0
    sync 0 {
        getstatic v
        putstatic tPrimeSaw
    }
    return
}

method thMain locals 1 {
    const 900
    sleep
    getstatic outerRef
    store 0
    sync 0 {
        nop
    }
    return
}
`
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{
		Mode:              core.Revocation,
		TrackDependencies: true,
		Sched:             sched.Config{Quantum: 200},
	})
	env, err := Run(rt, prog, Options{Rewritten: true})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) heap.Word {
		idx, _ := prog.StaticIndex(name)
		return env.RT.Heap().GetStatic(idx)
	}
	if get("tPrimeSaw") != 42 {
		t.Fatalf("T' saw %d, want 42 (the allowed speculative read)", get("tPrimeSaw"))
	}
	st := rt.Stats()
	if st.Dependencies == 0 {
		t.Fatal("dependency not detected through the interpreter")
	}
	if st.Rollbacks != 0 {
		t.Fatal("outer was revoked despite the observed dependency")
	}
	if st.RevocationsDenied == 0 {
		t.Fatal("revocation not denied")
	}
}

// TestBytecodeFigure3Volatile: an unmonitored volatile read of a
// speculative volatile write forces non-revocability.
func TestBytecodeFigure3Volatile(t *testing.T) {
	src := `
static lockRef = 0
static vol volatile = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread T priority 2 run tMain
thread Tprime priority 5 run tPrimeMain
thread Th priority 8 run thMain

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    return
}
method tMain locals 1 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    store 0
    sync 0 {
        const 1
        putstatic vol
        const 4000
        work
    }
    return
}
method tPrimeMain locals 0 {
    const 300
    sleep
    getstatic vol     # no monitor at all
    pop
    return
}
method thMain locals 1 {
    const 900
    sleep
    getstatic lockRef
    store 0
    sync 0 {
        nop
    }
    return
}
`
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{
		Mode:              core.Revocation,
		TrackDependencies: true,
		Sched:             sched.Config{Quantum: 200},
	})
	if _, err := Run(rt, prog, Options{Rewritten: true}); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Rollbacks != 0 || st.RevocationsDenied == 0 {
		t.Fatalf("volatile dependency not enforced: %+v", st)
	}
}

// TestBytecodeFigure4 runs the paper's Figure 4 program shape: T' loops
// on a flag under inner until T (under outer+inner) sets it; execution
// must terminate.
func TestBytecodeFigure4(t *testing.T) {
	src := `
static outerRef = 0
static innerRef = 0
static v = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread T priority 5 run tMain
thread Tprime priority 5 run tPrimeMain

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic outerRef
    newobj Lock
    store 0
    load 0
    putstatic innerRef
    return
}
method tMain locals 2 {
  spin:
    getstatic innerRef
    ifz spin
    getstatic outerRef
    store 0
    getstatic innerRef
    store 1
    sync 0 {
        sync 1 {
            const 1
            putstatic v
        }
        const 500
        work
    }
    return
}
method tPrimeMain locals 1 {
  spin:
    getstatic innerRef
    ifz spin
    getstatic innerRef
    store 0
  loop:
    sync 0 {
        getstatic v
        ifnz break_ok
    }
    goto loop
  break_ok:
    getstatic innerRef
    store 0
    load 0
    monitorexit
    return
}
`
	// Note the manual monitorexit on the break path: `ifnz` jumping out
	// of a sync block leaves the monitor held, exactly like raw JVM
	// bytecode with a branch out of a synchronized region.
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{
		Mode:              core.Revocation,
		TrackDependencies: true,
		Sched:             sched.Config{Quantum: 200},
	})
	if _, err := Run(rt, prog, Options{Rewritten: true}); err != nil {
		t.Fatal(err)
	}
}

// TestBytecodeReentrantMonitor: reentrant sync blocks on the same object.
func TestBytecodeReentrantMonitor(t *testing.T) {
	ret, _ := callMainRewritten(t, `
static data = 0
class Lock {
    unused
}
method main locals 1 returns {
    newobj Lock
    store 0
    sync 0 {
        sync 0 {
            const 5
            putstatic data
        }
        getstatic data
        const 2
        mul
        putstatic data
    }
    getstatic data
    ireturn
}
`)
	if ret != 10 {
		t.Fatalf("ret = %d, want 10", ret)
	}
}

// TestBytecodeWaitNestedNonRevocable: wait inside a nested sync block
// forces the enclosing monitors non-revocable through the interpreter.
func TestBytecodeWaitNestedNonRevocable(t *testing.T) {
	src := `
static outerRef = 0
static innerRef = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread low priority 2 run lowMain
thread notifier priority 5 run notifierMain
thread high priority 8 run highMain

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic outerRef
    newobj Lock
    store 0
    load 0
    putstatic innerRef
    return
}
method lowMain locals 2 {
  spin:
    getstatic innerRef
    ifz spin
    getstatic outerRef
    store 0
    getstatic innerRef
    store 1
    sync 0 {
        sync 1 {
            load 1
            wait
        }
        const 2000
        work
    }
    return
}
method notifierMain locals 1 {
    const 400
    sleep
    getstatic innerRef
    store 0
    sync 0 {
        load 0
        notify
    }
    return
}
method highMain locals 1 {
    const 800
    sleep
    getstatic outerRef
    store 0
    sync 0 {
        nop
    }
    return
}
`
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{
		Mode:              core.Revocation,
		TrackDependencies: true,
		Sched:             sched.Config{Quantum: 150},
	})
	if _, err := Run(rt, prog, Options{Rewritten: true}); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Rollbacks != 0 {
		t.Fatal("section containing a nested wait was revoked")
	}
	if st.RevocationsDenied == 0 {
		t.Fatal("revocation should have been requested and denied")
	}
}
