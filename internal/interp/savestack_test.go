package interp

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

// TestOperandStackRestoredAcrossRevocation is the runtime test of §3.1.1's
// trickiest transformation: "The contents of the VM's operand stack before
// executing a monitorenter operation must be the same at the first
// invocation and at all subsequent invocations resulting from that
// section's re-execution."
//
// The low thread enters its synchronized section with two live operands on
// the stack (37 and 5) that are consumed only *after* the section exits.
// The section is revoked and re-executed; if SAVESTACK/RESTORESTACK did not
// preserve the operands, the final sum would be wrong or the verifier-time
// depth bookkeeping would corrupt the stack.
func TestOperandStackRestoredAcrossRevocation(t *testing.T) {
	src := `
static lockRef = 0
static result = 0
static sectionData = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread low priority 2 run lowMain
thread high priority 8 run highMain

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    return
}

method lowMain locals 1 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    store 0
    const 37           # two live operands across the whole section
    const 5
    sync 0 {
        const 1
        putstatic sectionData
        const 3000
        work
    }
    add                # 37 + 5, valid only if the stack was restored
    putstatic result
    return
}

method highMain locals 1 {
    const 300
    sleep
    getstatic lockRef
    store 0
    sync 0 {
        nop
    }
    return
}
`
	for _, threaded := range []bool{false, true} {
		name := "interpreter"
		if threaded {
			name = "threaded"
		}
		t.Run(name, func(t *testing.T) {
			prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
			if err != nil {
				t.Fatal(err)
			}
			// The rewriter must have inserted a depth-2 SAVESTACK.
			low, _ := prog.Method("lowMain")
			found := false
			for _, in := range low.Code {
				if in.Op == bytecode.SAVESTACK && in.V == 2 {
					found = true
				}
			}
			if !found {
				t.Fatalf("no depth-2 SAVESTACK injected:\n%s", bytecode.Disassemble(low))
			}
			rt := core.New(core.Config{Mode: core.Revocation, Sched: sched.Config{Quantum: 200}})
			env, err := Run(rt, prog, Options{Rewritten: true, Threaded: threaded})
			if err != nil {
				t.Fatal(err)
			}
			if rt.Stats().Rollbacks == 0 {
				t.Fatal("no rollback — the stack-restore path was not exercised")
			}
			idx, _ := prog.StaticIndex("result")
			if got := env.RT.Heap().GetStatic(idx); got != 42 {
				t.Fatalf("result = %d, want 42 (operand stack corrupted by re-execution)", got)
			}
		})
	}
}

// TestOperandStackRestoredTwice: two consecutive revocations of the same
// section must each restore the same operands.
func TestOperandStackRestoredTwice(t *testing.T) {
	src := `
static lockRef = 0
static result = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread low priority 2 run lowMain
thread highA priority 8 run highAMain
thread highB priority 8 run highBMain

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    return
}
method lowMain locals 1 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    store 0
    const 20
    const 22
    sync 0 {
        const 3000
        work
    }
    add
    putstatic result
    return
}
method highAMain locals 1 {
    const 300
    sleep
    getstatic lockRef
    store 0
    sync 0 {
        const 1500
        work
    }
    return
}
method highBMain locals 1 {
    const 2500
    sleep
    getstatic lockRef
    store 0
    sync 0 {
        const 500
        work
    }
    return
}
`
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{Mode: core.Revocation, Sched: sched.Config{Quantum: 200}})
	env, err := Run(rt, prog, Options{Rewritten: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Rollbacks < 2 {
		t.Logf("note: only %d rollbacks; still asserting the result", rt.Stats().Rollbacks)
	}
	idx, _ := prog.StaticIndex("result")
	if got := env.RT.Heap().GetStatic(idx); got != 42 {
		t.Fatalf("result = %d, want 42", got)
	}
	var _ heap.Word = 0
}
