package interp

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/prof"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

// profTotals runs one example under the profiler on one tier and returns
// the dimension totals plus the runtime's final clock and wasted ticks.
func profTotals(t *testing.T, src string, tier Tier) ([prof.NumDims]int64, int64, int64) {
	t.Helper()
	text, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := bytecode.Assemble(string(text))
	if err != nil {
		t.Fatal(err)
	}
	if err := bytecode.Verify(prog); err != nil {
		t.Fatal(err)
	}
	prog, err = rewrite.Rewrite(prog)
	if err != nil {
		t.Fatal(err)
	}
	p := prof.New()
	rt := core.New(core.Config{
		Mode:              core.Revocation,
		TrackDependencies: true,
		DeadlockDetection: true,
		Profiler:          p,
		// A nonzero switch cost so the sched dimension participates in the
		// partition, not just idle jumps.
		Sched: sched.Config{Quantum: 1000, SwitchCost: 3},
	})
	if _, err := Run(rt, prog, Options{
		Rewritten: true,
		Tier:      tier,
		// Promote at the first activation so TierOpt runs attribute from
		// fused code throughout.
		OptCallThreshold: 1,
		Out:              io.Discard,
	}); err != nil {
		t.Fatal(err)
	}
	var totals [prof.NumDims]int64
	for _, d := range prof.Dims() {
		totals[d] = p.Total(d)
	}
	return totals, int64(rt.Now()), int64(rt.Stats().WastedTicks)
}

// TestProfilerPartitionsVirtualTime is the profiler's grand invariant,
// checked over every example program on both execution tiers:
//
//   - work + waste + sched ticks sum EXACTLY to the run's final virtual
//     clock — every charged tick is attributed, none twice;
//   - the waste dimension reconciles EXACTLY with core.Stats.WastedTicks —
//     the profiler's rollback reclassification and the runtime's CPU-delta
//     accounting agree tick for tick;
//   - all three tiers attribute identically (the per-constituent stamps in
//     fused superinstructions mirror exec's per-instruction stamps).
//
// Block is deliberately outside the sum: on the uniprocessor, parked time
// overlaps other threads' execution (overlay accounting, like Go's block
// profile).
func TestProfilerPartitionsVirtualTime(t *testing.T) {
	var srcs []string
	for _, dir := range []string{"bytecode", "racy"} {
		matches, err := filepath.Glob(filepath.Join("..", "..", "examples", dir, "*.rvm"))
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, matches...)
	}
	if len(srcs) < 5 {
		t.Fatalf("found only %d example programs: %v", len(srcs), srcs)
	}

	for _, src := range srcs {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			var tierTotals [3][prof.NumDims]int64
			for ti, tier := range allTiers {
				totals, now, wasted := profTotals(t, src, tier)
				tierTotals[ti] = totals
				if sum := totals[prof.Work] + totals[prof.Waste] + totals[prof.Sched]; sum != now {
					t.Errorf("%v: work %d + waste %d + sched %d = %d, want final clock %d",
						tier, totals[prof.Work], totals[prof.Waste], totals[prof.Sched], sum, now)
				}
				if totals[prof.Waste] != wasted {
					t.Errorf("%v: profiled waste %d != Stats.WastedTicks %d",
						tier, totals[prof.Waste], wasted)
				}
				if totals[prof.Block] < 0 {
					t.Errorf("%v: negative block total %d", tier, totals[prof.Block])
				}
			}
			for ti, tier := range allTiers[1:] {
				if tierTotals[ti+1] != tierTotals[0] {
					t.Errorf("tiers disagree: exec %v, %v %v", tierTotals[0], tier, tierTotals[ti+1])
				}
			}
		})
	}
}

// TestProfilerSeesContention pins that the canonical inversion example
// produces a nonzero block profile (the high-priority thread parks on the
// shared monitor) and a nonzero waste profile (its revocation rolls the
// low-priority holder back).
func TestProfilerSeesContention(t *testing.T) {
	totals, _, wasted := profTotals(t, filepath.Join("..", "..", "examples", "bytecode", "inversion.rvm"), TierExec)
	if totals[prof.Block] == 0 {
		t.Error("inversion example blocked no ticks")
	}
	if totals[prof.Waste] == 0 || wasted == 0 {
		t.Errorf("inversion example wasted no ticks (profiled %d, stats %d)", totals[prof.Waste], wasted)
	}
}
