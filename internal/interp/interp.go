// Package interp executes bytecode programs on the revocation runtime. It
// plays the role of the Jikes RVM baseline compiler in the paper: every
// store goes through the runtime's write barrier, yield points sit at every
// instruction boundary, and the exception dispatch implements the paper's
// modification — a rollback exception ignores every handler (including
// finally blocks and catch(Throwable)) that does not explicitly catch it
// (§3.1.2), while user exceptions keep standard Java semantics.
//
// Synchronized-section re-execution uses the artifacts the rewriter
// injects (§3.1.1): SAVESTACK before each rollback-scope's monitorenter,
// handlers catching the internal rollback exception whose code runs
// CHECKTARGET / RESTORESTACK / GOTO monitorenter, and RETHROW to propagate
// to outer scopes. Programs executed on a Revocation-mode runtime should
// first pass through rewrite.Rewrite; unrewritten programs remain runnable
// because their sections are marked irrevocable at entry.
package interp

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/monitor"
	"repro/internal/sched"
	"repro/internal/simtime"
)

// NativeFunc implements a NATIVE opcode. Natives run outside the undo
// machinery; calling one makes the enclosing monitors non-revocable.
type NativeFunc func(e *Env, t *core.Task, args []heap.Word) heap.Word

// Tier selects the execution tier. All tiers are semantically identical —
// same virtual clock, same Stats, same heap — and the property tests pin
// that equivalence over every example program.
type Tier int

const (
	// TierExec is the switch interpreter (the paper's baseline compiler
	// analog).
	TierExec Tier = iota
	// TierThreaded pre-decodes methods into threaded code: one closure
	// per instruction with operands captured.
	TierThreaded
	// TierOpt starts methods on threaded code and, once a deterministic
	// hotness threshold is crossed, recompiles them into fused
	// superinstruction streams specialized against the static facts
	// (compile-time-resolved call/field/class references, statically
	// non-revocable monitorenter, dead SAVESTACK elision). See opt.go.
	TierOpt
)

func (t Tier) String() string {
	switch t {
	case TierExec:
		return "exec"
	case TierThreaded:
		return "threaded"
	case TierOpt:
		return "opt"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// ParseTier parses a -tier flag value.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "exec":
		return TierExec, nil
	case "threaded":
		return TierThreaded, nil
	case "opt":
		return TierOpt, nil
	}
	return TierExec, fmt.Errorf("interp: unknown tier %q (want exec, threaded, or opt)", s)
}

// Options configures an Env.
type Options struct {
	// CostPerInstr is the tick charge per executed instruction (default
	// 1); heap operations additionally pay the runtime's barrier costs.
	CostPerInstr simtime.Ticks
	// Out receives the output of the built-in print natives (default:
	// discarded).
	Out io.Writer
	// Rewritten asserts the program went through rewrite.Rewrite, so
	// synchronized sections have rollback scopes and may be revoked.
	// When false, sections are marked irrevocable at entry to keep
	// un-instrumented code safe on a Revocation-mode runtime.
	Rewritten bool
	// Tier selects the execution tier (default TierExec).
	Tier Tier
	// Threaded is the deprecated alias for Tier: TierThreaded. It is
	// honored when Tier is left at its zero value and mirrored back
	// (Threaded = Tier != TierExec) after normalization.
	Threaded bool
	// OptCallThreshold is the TierOpt invocation-count hotness threshold:
	// a method recompiles to fused code at its Nth activation (default 2).
	// Deterministic by construction — the count does not depend on timing.
	OptCallThreshold int
	// OptHotTicks is the TierOpt profile-feed hotness threshold: with a
	// profiler attached, a method whose attributed work ticks
	// (prof.Profiler.FuncWork) reach this value recompiles at its next
	// activation even below OptCallThreshold (default 1000). Virtual-time
	// attribution is deterministic, so tier decisions stay reproducible.
	OptHotTicks int64
	// Facts supplies whole-program static analysis results (from
	// analysis.Analyze over this exact program). When set, monitorenter
	// sites of statically non-revocable sections are pre-marked so they
	// run with zero undo-log entries, and every allocation performed while
	// logging is active gets a whole-allocation undo entry — the runtime
	// support for stores elided by fresh-target proofs.
	//
	// A Facts value whose elisions are not all certificate-backed is
	// rejected by NewEnv — the consumers trust certificates, not the raw
	// fact fields (see analysis.VerifyCertificates).
	Facts *analysis.Facts
	// ElisionAudit, when non-nil, is called for every statically elided
	// operation actually executed — each barrier-free RAW store and each
	// dead-SAVESTACK no-op — with the certificate kind that licensed it.
	// The certificate property test uses it to assert executed elisions ⊆
	// certificates. A nil hook adds one predictable branch.
	ElisionAudit func(kind analysis.CertKind, method string, pc int)
}

// Env is the shared execution environment: the program, the runtime, the
// object registry and the native table. One Env hosts every thread of a
// program; the uniprocessor scheduler serializes access.
type Env struct {
	RT   *core.Runtime
	Prog *bytecode.Program
	Opts Options

	natives map[string]NativeFunc
	objects map[heap.Word]*heap.Object
	arrays  map[heap.Word]*heap.Array
	classOf map[heap.Word]*bytecode.Class

	// regionAt maps (method, monitorenter pc) to the static region index.
	regionAt map[*bytecode.Method]map[int]int

	// compiled caches threaded code per method (TierThreaded, and TierOpt
	// methods still below the hotness threshold).
	compiled map[*bytecode.Method][]opFunc

	// optCompiled caches fused superinstruction code per hot method
	// (TierOpt only).
	optCompiled map[*bytecode.Method][]opFunc

	// calls counts method activations — TierOpt's invocation-count
	// hotness feed and the per-tier method accounting for TierCounts.
	calls map[*bytecode.Method]int

	// confined caches, per method, the certificate-gated whole-monitor
	// elision plan: pc -> confinedEnter/confinedExit for MONITORENTER/EXIT
	// sites the escape analysis proved thread-confined. A nil map value
	// (still present in the cache) means the method has no elided sites.
	confined map[*bytecode.Method]map[int]int8

	// raceOn caches Config.Race != nil: heap-access instructions then stamp
	// their bytecode site on the task so race reports can name it.
	raceOn bool

	// profOn caches Config.Profiler != nil: every instruction then stamps
	// its pc and every call/return mirrors into the profiler's call tree.
	profOn bool

	// dlOn caches Config.OnDeadlock != nil: monitorenter sites then stamp
	// their bytecode site on the task so wait-for-graph cycle reports can
	// name each edge's acquisition pc.
	dlOn bool

	// spawnCount numbers dynamically spawned threads (SPAWN opcode) so
	// their names are unique and deterministic.
	spawnCount int

	// Printed collects print output when Opts.Out is nil, for tests.
	Printed []heap.Word
}

// NewEnv prepares an environment: statics are defined on the runtime's
// heap in program order, built-in natives are registered.
func NewEnv(rt *core.Runtime, prog *bytecode.Program, opts Options) (*Env, error) {
	if opts.CostPerInstr == 0 {
		opts.CostPerInstr = 1
	}
	if opts.Tier == TierExec && opts.Threaded {
		opts.Tier = TierThreaded // deprecated alias
	}
	opts.Threaded = opts.Tier != TierExec
	if opts.OptCallThreshold == 0 {
		opts.OptCallThreshold = 2
	}
	if opts.OptHotTicks == 0 {
		opts.OptHotTicks = 1000
	}
	if rt.Heap().NumStatics() != 0 {
		return nil, fmt.Errorf("interp: runtime heap already has statics; use a fresh runtime")
	}
	if err := bytecode.Verify(prog); err != nil {
		return nil, err
	}
	if opts.Facts != nil {
		// Hard compile-time gate: every fact a consumer would act on must
		// carry a machine-checked certificate. A tampered or stale Facts
		// value fails here, before any code is compiled against it.
		if err := opts.Facts.VerifyCertificates(); err != nil {
			return nil, err
		}
	}
	e := &Env{
		RT:          rt,
		Prog:        prog,
		Opts:        opts,
		natives:     map[string]NativeFunc{},
		objects:     map[heap.Word]*heap.Object{},
		arrays:      map[heap.Word]*heap.Array{},
		classOf:     map[heap.Word]*bytecode.Class{},
		regionAt:    map[*bytecode.Method]map[int]int{},
		compiled:    map[*bytecode.Method][]opFunc{},
		optCompiled: map[*bytecode.Method][]opFunc{},
		calls:       map[*bytecode.Method]int{},
		confined:    map[*bytecode.Method]map[int]int8{},
		raceOn:      rt.Config().Race != nil,
		profOn:      rt.Config().Profiler != nil,
		dlOn:        rt.Config().OnDeadlock != nil,
	}
	for _, s := range prog.Statics {
		rt.Heap().DefineStatic(s.Name, s.Volatile, heap.Word(s.Init))
	}
	e.RegisterNative("print", func(e *Env, t *core.Task, args []heap.Word) heap.Word {
		if e.Opts.Out != nil {
			fmt.Fprintln(e.Opts.Out, args[0])
		} else {
			e.Printed = append(e.Printed, args[0])
		}
		return args[0]
	})
	e.RegisterNative("now", func(e *Env, t *core.Task, args []heap.Word) heap.Word {
		return heap.Word(e.RT.Now())
	})
	e.RegisterNative("threadpriority", func(e *Env, t *core.Task, args []heap.Word) heap.Word {
		return heap.Word(t.Priority())
	})
	return e, nil
}

// RegisterNative installs a native method.
func (e *Env) RegisterNative(name string, fn NativeFunc) { e.natives[name] = fn }

// NewObject allocates an instance of the named class and returns its ref.
func (e *Env) NewObject(class string) (heap.Word, error) {
	cls, ok := e.Prog.Class(class)
	if !ok {
		// Exception classes may be undeclared: allocate a fieldless
		// instance so throw/catch of arbitrary names works.
		cls = &bytecode.Class{Name: class}
	}
	specs := make([]heap.FieldSpec, len(cls.Fields))
	for i, f := range cls.Fields {
		specs[i] = heap.FieldSpec{Name: f.Name, Volatile: f.Volatile, Init: heap.Word(f.Init)}
	}
	o := e.RT.Heap().AllocObject(class, specs...)
	ref := heap.Word(o.ID())
	e.objects[ref] = o
	e.classOf[ref] = cls
	return ref, nil
}

// NewArray allocates an array of n elements and returns its ref.
func (e *Env) NewArray(n int) heap.Word {
	a := e.RT.Heap().AllocArray(n)
	ref := heap.Word(a.ID())
	e.arrays[ref] = a
	return ref
}

// Object resolves an object ref.
func (e *Env) Object(ref heap.Word) (*heap.Object, bool) {
	o, ok := e.objects[ref]
	return o, ok
}

// Array resolves an array ref.
func (e *Env) Array(ref heap.Word) (*heap.Array, bool) {
	a, ok := e.arrays[ref]
	return a, ok
}

// TierCounts reports how many distinct invoked methods currently sit at
// each tier: opt methods run fused code, threaded methods run pre-decoded
// closures (including TierOpt methods still below the hotness threshold),
// and exec methods run on the switch interpreter.
func (e *Env) TierCounts() (exec, threaded, opt int) {
	opt = len(e.optCompiled)
	for m := range e.compiled {
		if _, ok := e.optCompiled[m]; !ok {
			threaded++
		}
	}
	for m := range e.calls {
		if _, ok := e.compiled[m]; ok {
			continue
		}
		if _, ok := e.optCompiled[m]; ok {
			continue
		}
		exec++
	}
	return exec, threaded, opt
}

// regionIndex returns the static sync-region index whose MONITORENTER sits
// at pc, or -1.
func (e *Env) regionIndex(m *bytecode.Method, pc int) int {
	tbl, ok := e.regionAt[m]
	if !ok {
		tbl = make(map[int]int, len(m.Regions))
		for i, r := range m.Regions {
			tbl[r.EnterPC+1] = i // EnterPC is the LOAD; enter follows
		}
		e.regionAt[m] = tbl
	}
	if i, ok := tbl[pc]; ok {
		return i
	}
	return -1
}

// SpawnDeclaredThreads spawns every thread the program declares.
func (e *Env) SpawnDeclaredThreads() error {
	for _, td := range e.Prog.Threads {
		m, ok := e.Prog.Method(td.Method)
		if !ok {
			return fmt.Errorf("interp: thread %q: unknown method %q", td.Name, td.Method)
		}
		method := m
		e.RT.Spawn(td.Name, sched.Priority(td.Priority), func(tk *core.Task) {
			if _, err := e.Call(tk, method, nil); err != nil {
				panic(fmt.Sprintf("interp: thread %s: %v", tk.Name(), err))
			}
		})
	}
	return nil
}

// Call runs a method to completion on the calling task's thread.
func (e *Env) Call(t *core.Task, m *bytecode.Method, args []heap.Word) (heap.Word, error) {
	if len(args) != m.Args {
		return 0, fmt.Errorf("interp: %s wants %d args, got %d", m.Name, m.Args, len(args))
	}
	in := &Interp{env: e, task: t}
	if e.profOn {
		// Nested Call (native re-entry) stacks on the caller's profile
		// frames; popping back to profBase restores them on any exit.
		in.profBase = t.ProfDepth()
	}
	in.pushFrame(m, args)
	return in.Execute()
}

// Run assembles everything: builds an Env over rt, spawns the declared
// threads, and drives the runtime to completion.
func Run(rt *core.Runtime, prog *bytecode.Program, opts Options) (*Env, error) {
	env, err := NewEnv(rt, prog, opts)
	if err != nil {
		return nil, err
	}
	if err := env.SpawnDeclaredThreads(); err != nil {
		return nil, err
	}
	if err := rt.Run(); err != nil {
		return env, err
	}
	return env, nil
}

// ---------------------------------------------------------------------------
// The interpreter proper.

// activeSync is one entered synchronized region instance.
type activeSync struct {
	staticIdx int // index into Method.Regions; -1 when unstructured
	mon       *monitor.Monitor
	coreDepth int
}

// frame is one method activation.
type frame struct {
	m      *bytecode.Method
	pc     int
	locals []heap.Word
	stack  []heap.Word
	syncs  []activeSync
	// fns is the method's compiled code (TierThreaded and TierOpt).
	fns []opFunc
}

func (f *frame) push(v heap.Word) { f.stack = append(f.stack, v) }

func (f *frame) pop() heap.Word {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

// inflight is the exception being dispatched (rollback or user).
type inflight struct {
	rollback bool
	// Rollback state.
	info         core.RevokeInfo
	targetFrame  *frame
	targetRegion int
	// User-exception state.
	excClass string
	excRef   heap.Word
	// Dispatch cursor.
	faultPC     int
	nextHandler int
}

// Interp executes one thread's activations.
type Interp struct {
	env    *Env
	task   *core.Task
	frames []*frame

	pending *inflight
	ret     heap.Word
	err     error
	done    bool

	// profBase is the task's profiler call-stack depth when this Interp
	// started; the profiler stack mirrors frames above it.
	profBase int

	// argBuf is scratch for the fused tier's compile-time-resolved INVOKE:
	// arguments are popped into it and immediately copied out by pushFrame,
	// with no yield point in between, so one buffer serves every call.
	argBuf []heap.Word
}

func (in *Interp) pushFrame(m *bytecode.Method, args []heap.Word) {
	f := &frame{
		m:      m,
		locals: make([]heap.Word, m.Locals),
		stack:  make([]heap.Word, 0, m.MaxStack),
	}
	in.env.calls[m]++
	switch in.env.Opts.Tier {
	case TierThreaded:
		f.fns = in.env.compile(m)
	case TierOpt:
		f.fns = in.env.compileTiered(m)
	}
	copy(f.locals, args)
	in.frames = append(in.frames, f)
	if in.env.profOn {
		in.task.ProfPush(m.Name)
	}
}

// profSync re-aligns the profiler's call stack with in.frames after any
// frame pop — return, exception unwind, rollback discard, error cleanup.
func (in *Interp) profSync() {
	if in.env.profOn {
		in.task.ProfPopTo(in.profBase + len(in.frames))
	}
}

func (in *Interp) top() *frame { return in.frames[len(in.frames)-1] }

// Execute drives the interpreter to completion, converting delivered
// revocations into the bytecode-level rollback dispatch.
func (in *Interp) Execute() (heap.Word, error) {
	var pendingRevoke *core.RevokeInfo
	for {
		if pendingRevoke != nil {
			info := *pendingRevoke
			pendingRevoke = nil
			again, ok := in.protect(func() { in.beginRollback(info) })
			if ok {
				pendingRevoke = &again
				continue
			}
		}
		if in.done || in.err != nil {
			in.cleanupOnError()
			return in.ret, in.err
		}
		body := in.loop
		if in.env.Opts.Tier != TierExec {
			body = in.loopThreaded
		}
		again, ok := in.protect(body)
		if !ok {
			in.cleanupOnError()
			return in.ret, in.err
		}
		pendingRevoke = &again
	}
}

// cleanupOnError releases the synchronized sections of abandoned frames
// when execution stops with an interpreter error (bad bytecode, uncaught
// condition), so the underlying task is left in a clean state. Updates
// stay committed — an interpreter error is not a rollback.
func (in *Interp) cleanupOnError() {
	if in.err == nil {
		return
	}
	for fi := len(in.frames) - 1; fi >= 0; fi-- {
		f := in.frames[fi]
		for i := len(f.syncs) - 1; i >= 0; i-- {
			in.task.EngineExit(f.syncs[i].mon)
		}
		f.syncs = nil
	}
	in.frames = nil
	in.profSync()
}

// protect runs f, converting a revocation panic into its RevokeInfo.
func (in *Interp) protect(f func()) (info core.RevokeInfo, revoked bool) {
	defer func() {
		if r := recover(); r != nil {
			if ri, ok := core.AsRevocation(r); ok {
				info, revoked = ri, true
				return
			}
			panic(r)
		}
	}()
	f()
	return core.RevokeInfo{}, false
}

// loop runs instructions until every frame returns or an error stops us.
func (in *Interp) loop() {
	for len(in.frames) > 0 && in.err == nil {
		f := in.top()
		if f.pc < 0 || f.pc >= len(f.m.Code) {
			in.err = fmt.Errorf("interp: %s: pc %d out of range", f.m.Name, f.pc)
			return
		}
		in.exec(f, f.m.Code[f.pc])
	}
	in.done = true
}

// fail stops execution with an interpreter error.
func (in *Interp) fail(f string, args ...any) {
	in.err = fmt.Errorf("interp: "+f, args...)
}

// Confined-elision plan markers: the per-method map produced by
// Env.confinedIn tags each elidable pc with the operation it replaces.
const (
	confinedEnter int8 = 1
	confinedExit  int8 = 2
)

// confinedIn resolves (and caches) the whole-monitor elision plan for m:
// every MONITORENTER the escape analysis proved thread-confined, together
// with its bracketing MONITOREXIT pcs, becomes a charge-only no-op. Each
// site is admitted only when the enter and every one of its exits carry a
// verified confined-monitor certificate — a plan entry without its full
// certificate set is dropped, never partially applied.
func (e *Env) confinedIn(m *bytecode.Method) map[int]int8 {
	if ops, ok := e.confined[m]; ok {
		return ops
	}
	var ops map[int]int8
	if facts := e.Opts.Facts; facts != nil {
		for pc, ins := range m.Code {
			if ins.Op != bytecode.MONITORENTER {
				continue
			}
			exits, ok := facts.ConfinedExits(m.Name, pc)
			if !ok {
				continue
			}
			good := facts.RequireCert(m.Name, pc, analysis.CertConfined) == nil
			for _, ep := range exits {
				if facts.RequireCert(m.Name, ep, analysis.CertConfined) != nil {
					good = false
				}
			}
			if !good {
				continue
			}
			if ops == nil {
				ops = map[int]int8{}
			}
			ops[pc] = confinedEnter
			for _, ep := range exits {
				ops[ep] = confinedExit
			}
		}
	}
	e.confined[m] = ops
	return ops
}

// monitorFor resolves an object ref to its monitor, raising
// NullPointerException for a bad ref.
func (in *Interp) monitorFor(ref heap.Word) (*monitor.Monitor, bool) {
	o, ok := in.env.objects[ref]
	if !ok {
		in.raiseUser("NullPointerException")
		return nil, false
	}
	return in.env.RT.MonitorFor(o), true
}

// exec runs one instruction, updating f.pc.
func (in *Interp) exec(f *frame, instr bytecode.Instr) {
	// Every instruction boundary is a yield point; delivery of a pending
	// revocation happens inside Work via the runtime. The profiler site is
	// stamped first so the instruction's own ticks land on its pc.
	if in.env.profOn {
		in.task.SetProfSite(f.pc)
	}
	in.task.Work(in.env.Opts.CostPerInstr)
	if in.env.raceOn {
		in.task.SetRaceSite(f.m.Name, f.pc)
	}

	next := f.pc + 1
	switch instr.Op {
	case bytecode.NOP:

	case bytecode.CONST:
		f.push(heap.Word(instr.V))
	case bytecode.LOAD:
		f.push(f.locals[instr.A])
	case bytecode.STORE:
		f.locals[instr.A] = f.pop()
	case bytecode.DUP:
		v := f.pop()
		f.push(v)
		f.push(v)
	case bytecode.POP:
		f.pop()
	case bytecode.SWAP:
		a, b := f.pop(), f.pop()
		f.push(a)
		f.push(b)

	case bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.DIV, bytecode.MOD,
		bytecode.CMPEQ, bytecode.CMPNE, bytecode.CMPLT, bytecode.CMPLE,
		bytecode.CMPGT, bytecode.CMPGE:
		b, a := f.pop(), f.pop()
		v, ok := arith(instr.Op, a, b)
		if !ok {
			in.raiseUser("ArithmeticException")
			return
		}
		f.push(v)
	case bytecode.NEG:
		f.push(-f.pop())

	case bytecode.GOTO:
		next = instr.A
	case bytecode.IFNZ:
		if f.pop() != 0 {
			next = instr.A
		}
	case bytecode.IFZ:
		if f.pop() == 0 {
			next = instr.A
		}

	case bytecode.NEWOBJ:
		ref, err := in.env.NewObject(instr.S)
		if err != nil {
			in.fail("%v", err)
			return
		}
		if in.env.Opts.Facts != nil {
			if o, ok := in.env.objects[ref]; ok {
				in.task.RegisterAllocObject(o)
			}
		}
		f.push(ref)
	case bytecode.NEWARR:
		n := f.pop()
		if n < 0 {
			in.raiseUser("NegativeArraySizeException")
			return
		}
		ref := in.env.NewArray(int(n))
		if in.env.Opts.Facts != nil {
			if a, ok := in.env.arrays[ref]; ok {
				in.task.RegisterAllocArray(a)
			}
		}
		f.push(ref)
	case bytecode.ARRAYLEN:
		a, ok := in.array(f.pop())
		if !ok {
			return
		}
		f.push(heap.Word(a.Len()))

	case bytecode.GETFIELD:
		o, ok := in.object(f.pop())
		if !ok {
			return
		}
		if instr.A >= o.NumFields() {
			in.fail("%s: field %d out of range on %v", f.m.Name, instr.A, o)
			return
		}
		f.push(in.task.ReadField(o, instr.A))
	case bytecode.PUTFIELD:
		v := f.pop()
		o, ok := in.object(f.pop())
		if !ok {
			return
		}
		if instr.A >= o.NumFields() {
			in.fail("%s: field %d out of range on %v", f.m.Name, instr.A, o)
			return
		}
		in.task.WriteField(o, instr.A, v)
	case bytecode.GETSTATIC:
		f.push(in.task.ReadStatic(instr.A))
	case bytecode.PUTSTATIC:
		in.task.WriteStatic(instr.A, f.pop())
	case bytecode.ALOAD:
		idx := f.pop()
		a, ok := in.array(f.pop())
		if !ok {
			return
		}
		if idx < 0 || int(idx) >= a.Len() {
			in.raiseUser("ArrayIndexOutOfBoundsException")
			return
		}
		f.push(in.task.ReadElem(a, int(idx)))
	case bytecode.ASTORE:
		v := f.pop()
		idx := f.pop()
		a, ok := in.array(f.pop())
		if !ok {
			return
		}
		if idx < 0 || int(idx) >= a.Len() {
			in.raiseUser("ArrayIndexOutOfBoundsException")
			return
		}
		in.task.WriteElem(a, int(idx), v)

	// Raw stores (barrier elided by rewrite.ApplyElision): the store
	// cost is still charged, but the in-section check, undo logging and
	// speculation registration are skipped.
	case bytecode.PUTFIELDRAW:
		v := f.pop()
		o, ok := in.object(f.pop())
		if !ok {
			return
		}
		if instr.A >= o.NumFields() {
			in.fail("%s: field %d out of range on %v", f.m.Name, instr.A, o)
			return
		}
		in.task.Work(in.env.RT.Config().CostWrite)
		in.task.CountRawStore()
		if audit := in.env.Opts.ElisionAudit; audit != nil {
			audit(analysis.CertElideBarrier, f.m.Name, f.pc)
		}
		o.Set(instr.A, v)
		in.task.RaceRawWriteField(o, instr.A)
	case bytecode.PUTSTATICRAW:
		in.task.Work(in.env.RT.Config().CostWrite)
		in.task.CountRawStore()
		if audit := in.env.Opts.ElisionAudit; audit != nil {
			audit(analysis.CertElideBarrier, f.m.Name, f.pc)
		}
		in.env.RT.Heap().SetStatic(instr.A, f.pop())
		in.task.RaceRawWriteStatic(instr.A)
	case bytecode.ASTORERAW:
		v := f.pop()
		idx := f.pop()
		a, ok := in.array(f.pop())
		if !ok {
			return
		}
		if idx < 0 || int(idx) >= a.Len() {
			in.raiseUser("ArrayIndexOutOfBoundsException")
			return
		}
		in.task.Work(in.env.RT.Config().CostWrite)
		in.task.CountRawStore()
		if audit := in.env.Opts.ElisionAudit; audit != nil {
			audit(analysis.CertElideBarrier, f.m.Name, f.pc)
		}
		a.Set(int(idx), v)
		in.task.RaceRawWriteElem(a, int(idx))

	case bytecode.MONITORENTER:
		if in.env.confinedIn(f.m)[f.pc] == confinedEnter {
			// Certified thread-confined monitor: no second thread can ever
			// reach the object, so acquisition is a charge-only no-op. The
			// ref is still popped and null-checked for NPE parity.
			if _, ok := in.object(f.pop()); !ok {
				return
			}
			in.task.CountConfinedElision()
			if audit := in.env.Opts.ElisionAudit; audit != nil {
				audit(analysis.CertConfined, f.m.Name, f.pc)
			}
			break
		}
		m, ok := in.monitorFor(f.pop())
		if !ok {
			return
		}
		depth := in.task.EngineFrameDepth()
		if in.env.dlOn {
			in.task.SetLockSite(f.m.Name, f.pc)
		}
		in.task.EngineEnter(m)
		if facts := in.env.Opts.Facts; facts != nil {
			if s := facts.SectionAt(f.m.Name, f.pc); s != nil && s.NonRevocable {
				if err := facts.RequireCert(f.m.Name, f.pc, analysis.CertNonRevocable); err != nil {
					in.fail("%v", err)
					return
				}
				in.task.PreMarkNonRevocable(s.ReasonSummary())
			}
		}
		if !in.env.Opts.Rewritten {
			// No rollback scopes exist: revoking would strand control.
			in.task.MarkIrrevocable("unrewritten bytecode")
		}
		f.syncs = append(f.syncs, activeSync{
			staticIdx: in.env.regionIndex(f.m, f.pc),
			mon:       m,
			coreDepth: depth,
		})
	case bytecode.MONITOREXIT:
		if in.env.confinedIn(f.m)[f.pc] == confinedExit {
			if _, ok := in.object(f.pop()); !ok {
				return
			}
			in.task.CountConfinedElision()
			if audit := in.env.Opts.ElisionAudit; audit != nil {
				audit(analysis.CertConfined, f.m.Name, f.pc)
			}
			break
		}
		m, ok := in.monitorFor(f.pop())
		if !ok {
			return
		}
		if len(f.syncs) == 0 || f.syncs[len(f.syncs)-1].mon != m {
			in.fail("%s@%d: monitorexit does not match innermost monitorenter", f.m.Name, f.pc)
			return
		}
		f.syncs = f.syncs[:len(f.syncs)-1]
		in.task.EngineExit(m)

	case bytecode.WAIT:
		m, ok := in.monitorFor(f.pop())
		if !ok {
			return
		}
		in.task.Wait(m)
	case bytecode.NOTIFY:
		m, ok := in.monitorFor(f.pop())
		if !ok {
			return
		}
		in.task.Notify(m)
	case bytecode.NOTIFYALL:
		m, ok := in.monitorFor(f.pop())
		if !ok {
			return
		}
		in.task.NotifyAll(m)

	case bytecode.INVOKE:
		callee, ok := in.env.Prog.Method(instr.S)
		if !ok {
			in.fail("%s@%d: unknown method %q", f.m.Name, f.pc, instr.S)
			return
		}
		args := make([]heap.Word, callee.Args)
		for i := callee.Args - 1; i >= 0; i-- {
			args[i] = f.pop()
		}
		// The caller's pc stays at the INVOKE while the callee runs, so
		// an exception propagating out of the callee dispatches against
		// the call site; RETURN advances it.
		in.pushFrame(callee, args)
		return
	case bytecode.RETURN, bytecode.IRETURN:
		var v heap.Word
		if instr.Op == bytecode.IRETURN {
			v = f.pop()
		}
		if len(f.syncs) != 0 {
			in.fail("%s: return with %d synchronized sections active", f.m.Name, len(f.syncs))
			return
		}
		in.frames = in.frames[:len(in.frames)-1]
		in.profSync()
		if len(in.frames) == 0 {
			in.ret = v
			return
		}
		caller := in.top()
		if f.m.Returns {
			caller.push(v)
		}
		caller.pc++ // step past the INVOKE
		return

	case bytecode.THROW:
		in.raiseUser(instr.S)
		return
	case bytecode.RETHROW:
		in.rethrow()
		return

	case bytecode.NATIVE:
		fn, ok := in.env.natives[instr.S]
		if !ok {
			in.fail("%s@%d: unknown native %q", f.m.Name, f.pc, instr.S)
			return
		}
		args := make([]heap.Word, instr.A)
		for i := instr.A - 1; i >= 0; i-- {
			args[i] = f.pop()
		}
		var ret heap.Word
		in.task.Native(instr.S, func() { ret = fn(in.env, in.task, args) })
		f.push(ret)

	case bytecode.WORK:
		in.task.Work(simtime.Ticks(f.pop()))
	case bytecode.SLEEP:
		in.task.Sleep(simtime.Ticks(f.pop()))

	case bytecode.SPAWN:
		callee, ok := in.env.Prog.Method(instr.S)
		if !ok {
			in.fail("%s@%d: spawn of unknown method %q", f.m.Name, f.pc, instr.S)
			return
		}
		args := make([]heap.Word, callee.Args)
		for i := callee.Args - 1; i >= 0; i-- {
			args[i] = f.pop()
		}
		in.env.spawnCount++
		name := fmt.Sprintf("%s#%d", instr.S, in.env.spawnCount)
		env := in.env
		in.env.RT.Spawn(name, sched.Priority(instr.A), func(tk *core.Task) {
			if _, err := env.Call(tk, callee, args); err != nil {
				panic(fmt.Sprintf("interp: thread %s: %v", tk.Name(), err))
			}
		})

	case bytecode.SAVESTACK:
		d := int(instr.V)
		for i := 0; i < d; i++ {
			f.locals[instr.A+i] = f.stack[i]
		}
	case bytecode.RESTORESTACK:
		d := int(instr.V)
		for i := 0; i < d; i++ {
			f.push(f.locals[instr.A+i])
		}
	case bytecode.CHECKTARGET:
		p := in.pending
		if p != nil && p.rollback && p.targetFrame == f && p.targetRegion == instr.A {
			in.pending = nil // rollback caught; the handler re-enters
			f.push(1)
		} else {
			f.push(0)
		}

	default:
		in.fail("%s@%d: unimplemented opcode %v", f.m.Name, f.pc, instr.Op)
		return
	}
	f.pc = next
}

// arith evaluates a binary operator; ok is false on division by zero.
func arith(op bytecode.Op, a, b heap.Word) (heap.Word, bool) {
	switch op {
	case bytecode.ADD:
		return a + b, true
	case bytecode.SUB:
		return a - b, true
	case bytecode.MUL:
		return a * b, true
	case bytecode.DIV:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case bytecode.MOD:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case bytecode.CMPEQ:
		return bool2w(a == b), true
	case bytecode.CMPNE:
		return bool2w(a != b), true
	case bytecode.CMPLT:
		return bool2w(a < b), true
	case bytecode.CMPLE:
		return bool2w(a <= b), true
	case bytecode.CMPGT:
		return bool2w(a > b), true
	case bytecode.CMPGE:
		return bool2w(a >= b), true
	}
	panic("unreachable")
}

func bool2w(b bool) heap.Word {
	if b {
		return 1
	}
	return 0
}

// object resolves an object ref, raising NullPointerException on failure.
func (in *Interp) object(ref heap.Word) (*heap.Object, bool) {
	o, ok := in.env.objects[ref]
	if !ok {
		in.raiseUser("NullPointerException")
		return nil, false
	}
	return o, true
}

// array resolves an array ref, raising NullPointerException on failure.
func (in *Interp) array(ref heap.Word) (*heap.Array, bool) {
	a, ok := in.env.arrays[ref]
	if !ok {
		in.raiseUser("NullPointerException")
		return nil, false
	}
	return a, true
}

// ---------------------------------------------------------------------------
// Exception dispatch.

// raiseUser throws a user (or VM) exception of the given class from the
// current pc, using standard Java dispatch: the innermost handler whose
// range covers the pc and whose catch type matches (exact name or "*").
// Handlers for the internal rollback exception never match.
func (in *Interp) raiseUser(class string) {
	ref, err := in.env.NewObject(class)
	if err != nil {
		in.fail("%v", err)
		return
	}
	in.pending = &inflight{
		excClass:    class,
		excRef:      ref,
		faultPC:     in.top().pc,
		nextHandler: 0,
	}
	in.dispatchUser()
}

// rethrow re-raises the in-flight exception to the next outer scope.
func (in *Interp) rethrow() {
	p := in.pending
	if p == nil {
		in.fail("rethrow with no in-flight exception")
		return
	}
	if p.rollback {
		in.dispatchRollback()
		return
	}
	in.dispatchUser()
}

// dispatchUser finds the next handler for the in-flight user exception.
func (in *Interp) dispatchUser() {
	p := in.pending
	for len(in.frames) > 0 {
		f := in.top()
		for h := p.nextHandler; h < len(f.m.Handlers); h++ {
			hd := f.m.Handlers[h]
			if hd.Catch == bytecode.RollbackClass {
				continue
			}
			if p.faultPC < hd.From || p.faultPC >= hd.To {
				continue
			}
			if hd.Catch != bytecode.CatchAny && hd.Catch != p.excClass {
				continue
			}
			f.stack = f.stack[:0]
			f.push(p.excRef)
			f.pc = hd.Target
			p.nextHandler = h + 1
			return
		}
		// No handler here: this activation dies. Java semantics release
		// the monitors of abandoned synchronized blocks (updates stay —
		// exceptions do not roll back).
		for i := len(f.syncs) - 1; i >= 0; i-- {
			in.task.EngineExit(f.syncs[i].mon)
		}
		in.frames = in.frames[:len(in.frames)-1]
		in.profSync()
		if len(in.frames) > 0 {
			p.faultPC = in.top().pc
			p.nextHandler = 0
		}
	}
	in.pending = nil
	in.err = fmt.Errorf("interp: uncaught exception %s in thread %s", p.excClass, in.task.Name())
}

// beginRollback starts bytecode-level dispatch of a delivered revocation:
// discard the rolled-back core frames, purge the dead region instances,
// locate the target region, and find the first rollback handler.
func (in *Interp) beginRollback(info core.RevokeInfo) {
	in.task.EngineUnwind(info)

	// Locate the target region instance and purge everything at or above
	// the target depth — those sections' effects and monitors are gone.
	var targetFrame *frame
	targetRegion := -1
	for fi := len(in.frames) - 1; fi >= 0; fi-- {
		f := in.frames[fi]
		keep := f.syncs[:0]
		for _, s := range f.syncs {
			if s.coreDepth == info.Target {
				targetFrame = f
				targetRegion = s.staticIdx
			}
			if s.coreDepth < info.Target {
				keep = append(keep, s)
			}
		}
		f.syncs = keep
	}
	if targetFrame == nil {
		in.fail("rollback target %d has no active region (thread %s)", info.Target, in.task.Name())
		return
	}
	if targetRegion < 0 {
		in.fail("rollback targeted an unstructured synchronized section (thread %s)", in.task.Name())
		return
	}
	in.pending = &inflight{
		rollback:     true,
		info:         info,
		targetFrame:  targetFrame,
		targetRegion: targetRegion,
		faultPC:      in.top().pc,
		nextHandler:  0,
	}
	in.dispatchRollback()
}

// dispatchRollback finds the next handler explicitly catching the rollback
// exception. Per §3.1.2, every other handler — finally blocks,
// catch(Throwable) — is ignored while a rollback is in flight.
func (in *Interp) dispatchRollback() {
	p := in.pending
	for len(in.frames) > 0 {
		f := in.top()
		for h := p.nextHandler; h < len(f.m.Handlers); h++ {
			hd := f.m.Handlers[h]
			if hd.Catch != bytecode.RollbackClass {
				continue // the modified exception dispatch
			}
			if p.faultPC < hd.From || p.faultPC >= hd.To {
				continue
			}
			f.stack = f.stack[:0]
			f.pc = hd.Target
			p.nextHandler = h + 1
			return
		}
		// The activation was called inside the doomed section: discard it.
		// Its monitors were already force-released by the rollback.
		in.frames = in.frames[:len(in.frames)-1]
		in.profSync()
		if len(in.frames) > 0 {
			p.faultPC = in.top().pc
			p.nextHandler = 0
		}
	}
	in.pending = nil
	in.err = fmt.Errorf("interp: rollback escaped every scope in thread %s (program not rewritten?)", in.task.Name())
}
