package interp

import (
	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/simtime"
)

// This file is the reproduction's "optimizing compiler" analog (the Jikes
// RVM optimizing compiler in the paper): methods are pre-decoded into
// threaded code — one closure per instruction with operands captured — so
// the hot path skips instruction fetch and opcode dispatch. Semantics are
// identical to the switch interpreter (the closures fall back to exec for
// the complex opcodes); every instruction remains a yield point and every
// store keeps its write barrier, exactly as the paper requires for all
// compiled code.
//
// Enable with Options.Threaded. The BenchmarkCompilerTiers benchmark
// (bench_test.go) measures the dispatch saving.

// opFunc executes one pre-decoded instruction, updating f.pc itself.
type opFunc func(in *Interp, f *frame)

// compile pre-decodes a method. The result is cached per Env.
func (e *Env) compile(m *bytecode.Method) []opFunc {
	if fns, ok := e.compiled[m]; ok {
		return fns
	}
	cost := e.Opts.CostPerInstr
	fns := make([]opFunc, len(m.Code))
	for pc, instr := range m.Code {
		// With the race sanitizer on, static accesses take the exec path so
		// the access site gets stamped; all other heap ops already do.
		if e.raceOn && (instr.Op == bytecode.GETSTATIC || instr.Op == bytecode.PUTSTATIC) {
			ins := instr
			fns[pc] = func(in *Interp, f *frame) { in.exec(f, ins) }
			continue
		}
		fn, dedicated := compileOne(instr, pc, cost)
		if e.profOn && dedicated {
			// Profiling stamps the pc before the instruction body so its
			// tick charges attribute to this site — the threaded-code twin
			// of the stamp at the top of exec. Fallback closures are not
			// wrapped: exec stamps the same pc itself, and wrapping them
			// would stamp it twice per instruction.
			spc, inner := pc, fn
			fn = func(in *Interp, f *frame) {
				in.task.SetProfSite(spc)
				inner(in, f)
			}
		}
		fns[pc] = fn
	}
	if e.profOn {
		e.RT.Config().Profiler.SetFuncTier(m.Name, "threaded")
	}
	e.compiled[m] = fns
	return fns
}

// compileOne builds the closure for one instruction. Hot, simple opcodes
// get dedicated closures; everything with non-trivial control flow or
// runtime interaction reuses the interpreter's exec, which is already a
// single call away. dedicated is false for those exec fallbacks, whose
// profiler stamping exec already performs.
func compileOne(instr bytecode.Instr, pc int, cost simtime.Ticks) (fn opFunc, dedicated bool) {
	next := pc + 1
	switch instr.Op {
	case bytecode.NOP:
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			f.pc = next
		}, true
	case bytecode.CONST:
		v := heap.Word(instr.V)
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			f.push(v)
			f.pc = next
		}, true
	case bytecode.LOAD:
		idx := instr.A
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			f.push(f.locals[idx])
			f.pc = next
		}, true
	case bytecode.STORE:
		idx := instr.A
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			f.locals[idx] = f.pop()
			f.pc = next
		}, true
	case bytecode.DUP:
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			v := f.pop()
			f.push(v)
			f.push(v)
			f.pc = next
		}, true
	case bytecode.POP:
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			f.pop()
			f.pc = next
		}, true
	case bytecode.SWAP:
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			a, b := f.pop(), f.pop()
			f.push(a)
			f.push(b)
			f.pc = next
		}, true
	case bytecode.ADD:
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			b, a := f.pop(), f.pop()
			f.push(a + b)
			f.pc = next
		}, true
	case bytecode.SUB:
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			b, a := f.pop(), f.pop()
			f.push(a - b)
			f.pc = next
		}, true
	case bytecode.MUL:
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			b, a := f.pop(), f.pop()
			f.push(a * b)
			f.pc = next
		}, true
	case bytecode.NEG:
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			f.push(-f.pop())
			f.pc = next
		}, true
	case bytecode.CMPEQ, bytecode.CMPNE, bytecode.CMPLT, bytecode.CMPLE, bytecode.CMPGT, bytecode.CMPGE:
		op := instr.Op
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			b, a := f.pop(), f.pop()
			v, _ := arith(op, a, b)
			f.push(v)
			f.pc = next
		}, true
	case bytecode.GOTO:
		target := instr.A
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			f.pc = target
		}, true
	case bytecode.IFNZ:
		target := instr.A
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			if f.pop() != 0 {
				f.pc = target
			} else {
				f.pc = next
			}
		}, true
	case bytecode.IFZ:
		target := instr.A
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			if f.pop() == 0 {
				f.pc = target
			} else {
				f.pc = next
			}
		}, true
	case bytecode.GETSTATIC:
		idx := instr.A
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			f.push(in.task.ReadStatic(idx))
			f.pc = next
		}, true
	case bytecode.PUTSTATIC:
		idx := instr.A
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			in.task.WriteStatic(idx, f.pop())
			f.pc = next
		}, true
	case bytecode.SAVESTACK:
		base, d := instr.A, int(instr.V)
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			for i := 0; i < d; i++ {
				f.locals[base+i] = f.stack[i]
			}
			f.pc = next
		}, true
	case bytecode.RESTORESTACK:
		base, d := instr.A, int(instr.V)
		return func(in *Interp, f *frame) {
			in.task.Work(cost)
			for i := 0; i < d; i++ {
				f.push(f.locals[base+i])
			}
			f.pc = next
		}, true
	default:
		// Everything else (heap object/array access with null checks,
		// monitors, invoke/return, exceptions, natives, waits) keeps the
		// interpreter's implementation.
		ins := instr
		return func(in *Interp, f *frame) {
			in.exec(f, ins)
		}, false
	}
}

// loopThreaded is the threaded-code twin of loop.
func (in *Interp) loopThreaded() {
	for len(in.frames) > 0 && in.err == nil {
		f := in.top()
		if f.pc < 0 || f.pc >= len(f.fns) {
			in.fail("%s: pc %d out of range", f.m.Name, f.pc)
			return
		}
		f.fns[f.pc](in, f)
	}
	in.done = true
}
