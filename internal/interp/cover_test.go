package interp

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/sched"
)

// TestAllComparisonOps exercises every comparison operator on both tiers.
func TestAllComparisonOps(t *testing.T) {
	cases := []struct {
		op   string
		a, b int64
		want heap.Word
	}{
		{"cmpeq", 3, 3, 1}, {"cmpeq", 3, 4, 0},
		{"cmpne", 3, 4, 1}, {"cmpne", 3, 3, 0},
		{"cmplt", 2, 3, 1}, {"cmplt", 3, 3, 0},
		{"cmple", 3, 3, 1}, {"cmple", 4, 3, 0},
		{"cmpgt", 4, 3, 1}, {"cmpgt", 3, 3, 0},
		{"cmpge", 3, 3, 1}, {"cmpge", 2, 3, 0},
	}
	for _, c := range cases {
		src := `
method main locals 0 returns {
    const ` + itoa(c.a) + `
    const ` + itoa(c.b) + `
    ` + c.op + `
    ireturn
}
`
		for _, threaded := range []bool{false, true} {
			got := callMainWith(t, src, Options{Threaded: threaded})
			if got != c.want {
				t.Errorf("%s(%d,%d) threaded=%v = %d, want %d", c.op, c.a, c.b, threaded, got, c.want)
			}
		}
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

// TestModByZero raises ArithmeticException like div.
func TestModByZero(t *testing.T) {
	ret, _ := callMain(t, `
method main locals 0 returns {
  try:
    const 1
    const 0
    mod
    ireturn
  after:
    const 0
    ireturn
  catcher:
    pop
    const 1
    ireturn
}
handler main from try to after target catcher catch ArithmeticException
`)
	if ret != 1 {
		t.Fatalf("mod-by-zero not raised: %d", ret)
	}
}

// TestSwapAndNopAndDup cover the small stack ops on both tiers.
func TestSwapAndNopAndDup(t *testing.T) {
	src := `
method main locals 0 returns {
    nop
    const 10
    const 3
    swap
    sub      # 3 - 10 = -7
    dup
    add      # -14
    neg      # 14
    ireturn
}
`
	for _, threaded := range []bool{false, true} {
		if got := callMainWith(t, src, Options{Threaded: threaded}); got != 14 {
			t.Errorf("threaded=%v: got %d, want 14", threaded, got)
		}
	}
}

// TestEnvObjectArrayAccessors cover the public resolution helpers.
func TestEnvObjectArrayAccessors(t *testing.T) {
	prog := bytecode.MustAssemble(`
class C {
    f
}
method main locals 0 {
    return
}
`)
	rt := core.New(core.Config{})
	env, err := NewEnv(rt, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := env.NewObject("C")
	if err != nil {
		t.Fatal(err)
	}
	if o, ok := env.Object(ref); !ok || o.Class() != "C" {
		t.Fatal("Object accessor failed")
	}
	if _, ok := env.Object(9999); ok {
		t.Fatal("phantom object")
	}
	aref := env.NewArray(3)
	if a, ok := env.Array(aref); !ok || a.Len() != 3 {
		t.Fatal("Array accessor failed")
	}
	if _, ok := env.Array(9999); ok {
		t.Fatal("phantom array")
	}
	rt.Spawn("noop", sched.NormPriority, func(*core.Task) {})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRunPropagatesSpawnErrors covers Run's error paths.
func TestRunPropagatesSpawnErrors(t *testing.T) {
	// Unverifiable program.
	rt := core.New(core.Config{})
	bad := &bytecode.Program{Methods: []*bytecode.Method{{Name: "m", Locals: 0, Code: []bytecode.Instr{{Op: bytecode.ADD}, {Op: bytecode.RETURN}}}}}
	if _, err := Run(rt, bad, Options{}); err == nil {
		t.Fatal("unverifiable program accepted")
	}
}

// TestMonitorOpsOnBadRefs raise NullPointerException.
func TestMonitorOpsOnBadRefs(t *testing.T) {
	for _, op := range []string{"monitorenter", "wait", "notify", "notifyall"} {
		src := `
method main locals 0 returns {
  try:
    const 424242
    ` + op + `
  after:
    const 0
    ireturn
  catcher:
    pop
    const 1
    ireturn
}
handler main from try to after target catcher catch NullPointerException
`
		if got, _ := callMain(t, src); got != 1 {
			t.Errorf("%s on bad ref: got %d, want NPE handler (1)", op, got)
		}
	}
}

// TestMonitorExitMismatchFails: exiting a monitor that is not the innermost
// active region is an interpreter error.
func TestMonitorExitMismatchFails(t *testing.T) {
	prog := bytecode.MustAssemble(`
class Lock {
    unused
}
method main locals 2 {
    newobj Lock
    store 0
    newobj Lock
    store 1
    load 0
    monitorenter
    load 1
    monitorenter
    load 0
    monitorexit
    load 1
    monitorexit
    return
}
`)
	rt := core.New(core.Config{})
	env, err := NewEnv(rt, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := prog.Method("main")
	var callErr error
	rt.Spawn("main", sched.NormPriority, func(tk *core.Task) {
		_, callErr = env.Call(tk, m, nil)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if callErr == nil || !strings.Contains(callErr.Error(), "monitorexit") {
		t.Fatalf("err = %v", callErr)
	}
}

// TestFieldIndexOutOfRangeFails cleanly.
func TestFieldIndexOutOfRangeFails(t *testing.T) {
	prog := bytecode.MustAssemble(`
class C {
    f
}
method main locals 1 {
    newobj C
    store 0
    load 0
    getfield 7
    pop
    return
}
`)
	rt := core.New(core.Config{})
	env, err := NewEnv(rt, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := prog.Method("main")
	var callErr error
	rt.Spawn("main", sched.NormPriority, func(tk *core.Task) {
		_, callErr = env.Call(tk, m, nil)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if callErr == nil || !strings.Contains(callErr.Error(), "out of range") {
		t.Fatalf("err = %v", callErr)
	}
}
