package interp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/prof"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

// allTiers is the complete tier set the equivalence properties quantify
// over.
var allTiers = []Tier{TierExec, TierThreaded, TierOpt}

// tierFinalState is everything externally observable at the end of a run:
// the final virtual clock, the complete runtime statistics, and a
// rendering of the final heap (statics, objects, arrays) plus the print
// stream. Two runs are equivalent iff their tierFinalStates are equal.
type tierFinalState struct {
	clock int64
	stats core.Stats
	heap  string
}

// runExampleTier executes one example file on one tier through the full
// rvmrun pipeline — assemble, verify, rewrite, static analysis, elision —
// and captures the final state. OptCallThreshold 1 forces every method
// onto fused code from its first activation, so TierOpt runs exercise the
// superinstruction compiler throughout, not just on re-invoked methods.
func runExampleTier(t *testing.T, src string, tier Tier) tierFinalState {
	t.Helper()
	text, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := bytecode.Assemble(string(text))
	if err != nil {
		t.Fatal(err)
	}
	if err := bytecode.Verify(prog); err != nil {
		t.Fatal(err)
	}
	prog, err = rewrite.Rewrite(prog)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	rewrite.ApplyStaticElision(prog, facts)

	rt := core.New(core.Config{
		Mode:              core.Revocation,
		TrackDependencies: true,
		DeadlockDetection: true,
		Sched:             sched.Config{Quantum: 1000, SwitchCost: 3},
	})
	env, err := Run(rt, prog, Options{
		Rewritten:        true,
		Tier:             tier,
		OptCallThreshold: 1,
		Facts:            facts,
	})
	if err != nil {
		t.Fatalf("%v tier: %v", tier, err)
	}
	return finalState(rt, env)
}

// finalState fingerprints everything externally observable at the end of
// a run. Shared by the tier-equivalence and the zero-perturbation
// identity properties.
func finalState(rt *core.Runtime, env *Env) tierFinalState {
	var b strings.Builder
	h := rt.Heap()
	for i := 0; i < h.NumStatics(); i++ {
		fmt.Fprintf(&b, "static %s=%d\n", h.StaticName(i), h.GetStatic(i))
	}
	for _, o := range h.Objects() {
		fmt.Fprintf(&b, "object %s#%d", o.Class(), o.ID())
		for i := 0; i < o.NumFields(); i++ {
			fmt.Fprintf(&b, " %s=%d", o.FieldName(i), o.Get(i))
		}
		b.WriteByte('\n')
	}
	for _, a := range h.Arrays() {
		fmt.Fprintf(&b, "array #%d", a.ID())
		for i := 0; i < a.Len(); i++ {
			fmt.Fprintf(&b, " %d", a.Get(i))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "printed %v\n", env.Printed)

	return tierFinalState{clock: int64(rt.Now()), stats: rt.Stats(), heap: b.String()}
}

// TestTierEquivalenceAllExamples is the three-tier grand invariant: every
// example program produces an identical final heap (statics, object
// fields, array elements, print stream), identical complete Stats
// (rollbacks, log entries, wasted ticks, raw stores, lock-word counters,
// ...) and an identical final virtual clock on the switch interpreter,
// the threaded tier, and the fused superinstruction tier. Fusion,
// compile-time fact specialization and dead-SAVESTACK elision must be
// invisible to everything but wall-clock time.
func TestTierEquivalenceAllExamples(t *testing.T) {
	// exampleSources includes the deadlocking corpus: those runs form a
	// real wait-for cycle, the VM's detector revokes a certified section,
	// and the rolled-back heaps must still fingerprint identically across
	// tiers.
	for _, src := range exampleSources(t) {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			base := runExampleTier(t, src, TierExec)
			for _, tier := range allTiers[1:] {
				got := runExampleTier(t, src, tier)
				if got.clock != base.clock {
					t.Errorf("%v tier: final clock %d, exec %d", tier, got.clock, base.clock)
				}
				if got.stats != base.stats {
					t.Errorf("%v tier: stats diverge:\n exec: %+v\n %v:  %+v", tier, base.stats, tier, got.stats)
				}
				if got.heap != base.heap {
					t.Errorf("%v tier: final heap diverges:\n exec:\n%s %v:\n%s", tier, base.heap, tier, got.heap)
				}
			}
		})
	}
}

// TestOptMatchesInterpreter reuses the threaded tier's mixed workload on
// fused code (threshold 1, so both main and the callee run fused).
func TestOptMatchesInterpreter(t *testing.T) {
	src := `
static g = 3
class Box {
    v = 2
}
method main locals 3 returns {
    newobj Box
    store 0
    const 0
    store 1
    const 20
    store 2
  loop:
    load 2
    ifz done
    load 1
    load 2
    mul
    getstatic g
    add
    store 1
    load 0
    load 1
    putfield Box.v
    load 2
    const 1
    sub
    store 2
    goto loop
  done:
    load 0
    getfield Box.v
    load 1
    add
    invoke half
    ireturn
}
method half args 1 locals 1 returns {
    load 0
    const 2
    div
    ireturn
}
`
	a := callMainWith(t, src, Options{})
	b := callMainWith(t, src, Options{Tier: TierOpt, OptCallThreshold: 1})
	if a != b {
		t.Fatalf("tiers disagree: interp=%d opt=%d", a, b)
	}
}

// TestOptRevocation: fused code keeps full rollback-scope support — the
// SAVESTACK of a revocable section is NOT elided, and CHECKTARGET /
// RESTORESTACK dispatch still works from inside fused frames.
func TestOptRevocation(t *testing.T) {
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(revocationProgram))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{
		Mode:              core.Revocation,
		TrackDependencies: true,
		Sched:             sched.Config{Quantum: 200},
	})
	env, err := Run(rt, prog, Options{Rewritten: true, Tier: TierOpt, OptCallThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Rollbacks == 0 {
		t.Fatal("no rollback on the fused tier")
	}
	idx, _ := env.Prog.StaticIndex("highSawDirty")
	if got := env.RT.Heap().GetStatic(idx); got != 0 {
		t.Fatalf("high saw speculative data = %d", got)
	}
}

// TestOptExceptions: ArithmeticException raised from inside a fused run
// dispatches to the handler with the faulting pc.
func TestOptExceptions(t *testing.T) {
	src := `
method main locals 0 returns {
  try:
    const 1
    const 0
    div
    ireturn
  after:
    const 0
    ireturn
  catcher:
    pop
    const 5
    ireturn
}
handler main from try to after target catcher catch ArithmeticException
`
	if got := callMainWith(t, src, Options{Tier: TierOpt, OptCallThreshold: 1}); got != 5 {
		t.Fatalf("ret = %d", got)
	}
}

// TestParseTier covers the flag surface, including the rejection message.
func TestParseTier(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Tier
	}{{"exec", TierExec}, {"threaded", TierThreaded}, {"opt", TierOpt}} {
		got, err := ParseTier(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseTier(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("Tier(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseTier("jit"); err == nil {
		t.Error("ParseTier(jit) succeeded")
	}
}

// TestTierPromotion pins the deterministic invocation-count promotion: a
// method tiers up at its OptCallThreshold'th activation, and TierCounts
// reports the per-tier method split.
func TestTierPromotion(t *testing.T) {
	src := `
method main locals 1 returns {
    invoke work
    pop
    invoke work
    pop
    invoke work
    ireturn
}
method work locals 0 returns {
    const 7
    ireturn
}
`
	prog := bytecode.MustAssemble(src)
	rt := core.New(core.Config{Mode: core.Unmodified, Sched: sched.Config{Quantum: 1000}})
	env, err := NewEnv(rt, prog, Options{Tier: TierOpt, OptCallThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := prog.Method("main")
	var ret heap.Word
	rt.Spawn("main", sched.NormPriority, func(tk *core.Task) {
		ret, err = env.Call(tk, m, nil)
	})
	if rerr := rt.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if ret != 7 {
		t.Fatalf("ret = %d", ret)
	}
	work, _ := prog.Method("work")
	if _, ok := env.optCompiled[work]; !ok {
		t.Error("work (3 activations, threshold 2) not promoted to fused code")
	}
	if _, ok := env.optCompiled[m]; ok {
		t.Error("main (1 activation, threshold 2) promoted to fused code")
	}
	exec, threaded, opt := env.TierCounts()
	if exec != 0 || threaded != 1 || opt != 1 {
		t.Errorf("TierCounts = (%d, %d, %d), want (0, 1, 1)", exec, threaded, opt)
	}
}

// TestTierProfilePromotion pins the profile feed: with a profiler
// attached, a method whose attributed work ticks reach OptHotTicks
// recompiles even when its activation count stays below OptCallThreshold.
func TestTierProfilePromotion(t *testing.T) {
	src := `
method main locals 1 returns {
    invoke work
    pop
    invoke work
    ireturn
}
method work locals 1 returns {
    const 40
    store 0
  loop:
    load 0
    ifz done
    load 0
    const 1
    sub
    store 0
    goto loop
  done:
    const 1
    ireturn
}
`
	prog := bytecode.MustAssemble(src)
	p := prof.New()
	rt := core.New(core.Config{Mode: core.Unmodified, Profiler: p, Sched: sched.Config{Quantum: 1000}})
	env, err := NewEnv(rt, prog, Options{
		Tier:             TierOpt,
		OptCallThreshold: 100, // activation count alone will never promote
		OptHotTicks:      50,  // ...but the first activation's ~200 work ticks will
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := prog.Method("main")
	rt.Spawn("main", sched.NormPriority, func(tk *core.Task) {
		_, err = env.Call(tk, m, nil)
	})
	if rerr := rt.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	work, _ := prog.Method("work")
	if _, ok := env.optCompiled[work]; !ok {
		t.Fatalf("work not promoted by profile feed (FuncWork=%d)", p.FuncWork("work"))
	}
	if tier := p.Snapshot().FuncTier["work"]; tier != "opt" {
		t.Errorf("profiler tier tag for work = %q, want opt", tier)
	}
}

// TestOptSavestackElision pins the static specialization: the SAVESTACK of
// a statically non-revocable section is compiled to a charge-only no-op
// (elidedSavestacks flags it) while revocable sections keep theirs.
func TestOptSavestackElision(t *testing.T) {
	// Both sections are entered with a live operand stack, which is what
	// makes the rewriter spill: a depth-1 SAVESTACK before each.
	src := `
class Lock {
    unused
}
static s = 0
method main locals 1 returns {
    newobj Lock
    store 0
    const 10
    sync 0 {
        const 42
        native print 1
        pop
    }
    const 100
    sync 0 {
        getstatic s
        const 1
        add
        putstatic s
    }
    add
    ireturn
}
`
	prog, err := rewrite.Rewrite(bytecode.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	facts, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	rewrite.ApplyStaticElision(prog, facts)
	rt := core.New(core.Config{Mode: core.Revocation, Sched: sched.Config{Quantum: 1000}})
	env, err := NewEnv(rt, prog, Options{Rewritten: true, Tier: TierOpt, OptCallThreshold: 1, Facts: facts})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := prog.Method("main")

	var savestacks, dead int
	deadSet := env.elidedSavestacks(m)
	for pc, instr := range m.Code {
		if instr.Op == bytecode.SAVESTACK {
			savestacks++
			if deadSet[pc] {
				dead++
			}
		}
	}
	if savestacks != 2 {
		t.Fatalf("rewriter inserted %d SAVESTACKs, want 2", savestacks)
	}
	if dead != 1 {
		t.Fatalf("elided %d of %d SAVESTACKs, want exactly the native-calling section's", dead, savestacks)
	}
}
