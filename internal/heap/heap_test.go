package heap

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAllocObjectFields(t *testing.T) {
	h := New()
	o := h.AllocObject("Point", FieldSpec{Name: "x", Init: 3}, FieldSpec{Name: "y", Init: 4})
	if o.NumFields() != 2 {
		t.Fatalf("NumFields = %d, want 2", o.NumFields())
	}
	if o.Get(0) != 3 || o.Get(1) != 4 {
		t.Fatalf("initial values %d,%d; want 3,4", o.Get(0), o.Get(1))
	}
	if o.Class() != "Point" {
		t.Fatalf("Class = %q", o.Class())
	}
}

func TestFieldIndexLookup(t *testing.T) {
	h := New()
	o := h.AllocObject("C", FieldSpec{Name: "a"}, FieldSpec{Name: "b"})
	i, ok := o.FieldIndex("b")
	if !ok || i != 1 {
		t.Fatalf("FieldIndex(b) = %d,%v; want 1,true", i, ok)
	}
	if _, ok := o.FieldIndex("missing"); ok {
		t.Fatal("FieldIndex found a missing field")
	}
}

func TestFieldNames(t *testing.T) {
	h := New()
	o := h.AllocObject("C", FieldSpec{Name: "named"}, FieldSpec{})
	if o.FieldName(0) != "named" {
		t.Fatalf("FieldName(0) = %q", o.FieldName(0))
	}
	if o.FieldName(1) != "f1" {
		t.Fatalf("FieldName(1) = %q, want f1", o.FieldName(1))
	}
}

func TestVolatileFlag(t *testing.T) {
	h := New()
	o := h.AllocObject("C", FieldSpec{Name: "v", Volatile: true}, FieldSpec{Name: "p"})
	if !o.IsVolatile(0) || o.IsVolatile(1) {
		t.Fatal("volatile flags wrong")
	}
}

func TestObjectSetGet(t *testing.T) {
	h := New()
	o := h.AllocPlain("C", 3)
	o.Set(2, 99)
	if o.Get(2) != 99 {
		t.Fatalf("Get(2) = %d", o.Get(2))
	}
}

func TestUniqueIDs(t *testing.T) {
	h := New()
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		var id uint64
		if i%2 == 0 {
			id = h.AllocPlain("C", 1).ID()
		} else {
			id = h.AllocArray(1).ID()
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestArray(t *testing.T) {
	h := New()
	a := h.AllocArray(5)
	if a.Len() != 5 {
		t.Fatalf("Len = %d", a.Len())
	}
	a.Set(4, -7)
	if a.Get(4) != -7 {
		t.Fatalf("Get(4) = %d", a.Get(4))
	}
	if !strings.Contains(a.String(), "[5]") {
		t.Fatalf("String() = %q", a.String())
	}
}

func TestStatics(t *testing.T) {
	h := New()
	i := h.DefineStatic("flag", true, 1)
	j := h.DefineStatic("count", false, 0)
	if i == j {
		t.Fatal("duplicate static offsets")
	}
	if h.NumStatics() != 2 {
		t.Fatalf("NumStatics = %d", h.NumStatics())
	}
	if !h.IsStaticVolatile(i) || h.IsStaticVolatile(j) {
		t.Fatal("volatile flags wrong")
	}
	if h.GetStatic(i) != 1 {
		t.Fatalf("GetStatic = %d", h.GetStatic(i))
	}
	h.SetStatic(j, 42)
	if h.GetStatic(j) != 42 {
		t.Fatalf("GetStatic = %d", h.GetStatic(j))
	}
	k, ok := h.StaticIndex("count")
	if !ok || k != j {
		t.Fatalf("StaticIndex = %d,%v", k, ok)
	}
	if h.StaticName(i) != "flag" {
		t.Fatalf("StaticName = %q", h.StaticName(i))
	}
	if _, ok := h.StaticIndex("nope"); ok {
		t.Fatal("found missing static")
	}
}

func TestObjectArrayLookup(t *testing.T) {
	h := New()
	o := h.AllocPlain("C", 1)
	a := h.AllocArray(1)
	if h.Object(o.ID()) != o {
		t.Fatal("Object lookup failed")
	}
	if h.Array(a.ID()) != a {
		t.Fatal("Array lookup failed")
	}
	if h.Object(a.ID()) != nil {
		t.Fatal("Object lookup returned array id")
	}
	if h.Array(9999) != nil {
		t.Fatal("Array lookup invented an array")
	}
	if len(h.Objects()) != 1 || len(h.Arrays()) != 1 {
		t.Fatal("Objects/Arrays lengths wrong")
	}
}

func TestSnapshotEqualAndDiff(t *testing.T) {
	h := New()
	o := h.AllocPlain("C", 2)
	a := h.AllocArray(2)
	h.DefineStatic("s", false, 0)
	s1 := h.Snapshot()
	s2 := h.Snapshot()
	if !s1.Equal(s2) {
		t.Fatal("identical snapshots not equal")
	}
	if d := s1.Diff(s2); d != "" {
		t.Fatalf("Diff of equal snapshots: %s", d)
	}
	o.Set(1, 5)
	s3 := h.Snapshot()
	if s1.Equal(s3) {
		t.Fatal("snapshots equal after object mutation")
	}
	if s1.Diff(s3) == "" {
		t.Fatal("Diff empty after object mutation")
	}
	o.Set(1, 0)
	a.Set(0, 9)
	if s1.Equal(h.Snapshot()) {
		t.Fatal("snapshots equal after array mutation")
	}
	a.Set(0, 0)
	h.SetStatic(0, 1)
	if s1.Equal(h.Snapshot()) {
		t.Fatal("snapshots equal after static mutation")
	}
}

func TestSnapshotIsDeep(t *testing.T) {
	h := New()
	o := h.AllocPlain("C", 1)
	s := h.Snapshot()
	o.Set(0, 123)
	if s.Objects[o.ID()][0] != 0 {
		t.Fatal("snapshot aliases live heap")
	}
}

// Property: a snapshot taken after arbitrary mutations equals a snapshot
// taken immediately again, and differs from the pre-mutation snapshot
// whenever at least one value actually changed.
func TestSnapshotProperty(t *testing.T) {
	prop := func(vals []int64) bool {
		h := New()
		o := h.AllocPlain("C", 4)
		before := h.Snapshot()
		for i, v := range vals {
			o.Set(i%4, Word(v))
		}
		changed := false
		for i := 0; i < 4; i++ {
			if o.Get(i) != 0 {
				changed = true
			}
		}
		after := h.Snapshot()
		if !after.Equal(h.Snapshot()) {
			return false
		}
		return before.Equal(after) == !changed
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShadowLazyAndStable(t *testing.T) {
	h := New()
	o := h.AllocPlain("C", 3)
	a := h.AllocArray(3)
	s1 := o.Shadow(1)
	if s1.OwnerEra != 0 || s1.LogID != 0 {
		t.Fatal("fresh shadow slot not zeroed")
	}
	s1.OwnerThread = 7
	if o.Shadow(1) != s1 || o.Shadow(1).OwnerThread != 7 {
		t.Fatal("Shadow not stable across calls")
	}
	as := a.Shadow(2)
	as.LogPos = 5
	if a.Shadow(2) != as {
		t.Fatal("array Shadow not stable across calls")
	}
}

func TestStaticShadowGrows(t *testing.T) {
	h := New()
	i := h.DefineStatic("a", false, 0)
	si := h.StaticShadow(i)
	si.LogPos = 42
	j := h.DefineStatic("b", false, 0)
	sj := h.StaticShadow(j)
	if sj.LogPos != 0 {
		t.Fatal("grown shadow slot not zeroed")
	}
	// Growth must preserve existing stamps (pointer identity may change,
	// but contents must carry over).
	if h.StaticShadow(i).LogPos != 42 {
		t.Fatal("growth lost existing stamp")
	}
}

func TestStaticIndexStaysCurrentAfterDefine(t *testing.T) {
	h := New()
	h.DefineStatic("a", false, 0)
	if i, ok := h.StaticIndex("a"); !ok || i != 0 {
		t.Fatalf("StaticIndex(a) = %d,%v", i, ok)
	}
	// Defining after the index is built must update it incrementally.
	j := h.DefineStatic("b", false, 0)
	if k, ok := h.StaticIndex("b"); !ok || k != j {
		t.Fatalf("StaticIndex(b) = %d,%v; want %d,true", k, ok, j)
	}
}

func TestNameIndexFirstMatch(t *testing.T) {
	h := New()
	// Duplicate names must resolve to the first occurrence, matching the
	// original linear-scan semantics.
	o := h.AllocObject("C", FieldSpec{Name: "x"}, FieldSpec{Name: "x"})
	if i, ok := o.FieldIndex("x"); !ok || i != 0 {
		t.Fatalf("FieldIndex(x) = %d,%v; want 0,true", i, ok)
	}
	h.DefineStatic("s", false, 1)
	h.DefineStatic("s", false, 2)
	if i, ok := h.StaticIndex("s"); !ok || i != 0 {
		t.Fatalf("StaticIndex(s) = %d,%v; want 0,true", i, ok)
	}
	// Same with the index built before the duplicate is defined.
	h2 := New()
	h2.DefineStatic("t", false, 1)
	h2.StaticIndex("t")
	h2.DefineStatic("t", false, 2)
	if i, ok := h2.StaticIndex("t"); !ok || i != 0 {
		t.Fatalf("StaticIndex(t) = %d,%v; want 0,true", i, ok)
	}
	if _, ok := o.FieldIndex(""); ok {
		t.Fatal("empty name resolved")
	}
}

func TestDenseLookupInterleaved(t *testing.T) {
	h := New()
	var objs []*Object
	var arrs []*Array
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			objs = append(objs, h.AllocPlain("C", 1))
		} else {
			arrs = append(arrs, h.AllocArray(1))
		}
	}
	for _, o := range objs {
		if h.Object(o.ID()) != o {
			t.Fatalf("Object(%d) lookup failed", o.ID())
		}
		if h.Array(o.ID()) != nil {
			t.Fatalf("Array(%d) returned non-nil for object id", o.ID())
		}
	}
	for _, a := range arrs {
		if h.Array(a.ID()) != a {
			t.Fatalf("Array(%d) lookup failed", a.ID())
		}
		if h.Object(a.ID()) != nil {
			t.Fatalf("Object(%d) returned non-nil for array id", a.ID())
		}
	}
	if h.Object(0) != nil || h.Array(0) != nil {
		t.Fatal("id 0 resolved")
	}
	if h.Object(1000) != nil || h.Array(1000) != nil {
		t.Fatal("out-of-range id resolved")
	}
}
