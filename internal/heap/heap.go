// Package heap models the shared-memory store the revocation machinery
// operates on: objects with named fields, arrays, and a global static table
// (the paper logs object stores, array stores and static stores separately,
// §3.1.2). Slots hold 64-bit words; references are represented as object ids
// so a snapshot of the heap is a plain value.
//
// The heap performs no synchronization and no logging itself: barriers are
// the runtime's job. This mirrors the paper, where the raw heap is the Java
// heap and the compiler injects barriers around stores.
package heap

import "fmt"

// Word is the contents of one heap slot.
type Word int64

// Kind distinguishes the three logged location classes (§3.1.2), plus the
// whole-allocation entries backing static barrier elision: one alloc entry
// restores every slot of an object or array allocated inside a section,
// subsuming per-slot entries for stores the analysis proved target it.
type Kind uint8

const (
	// KindObject is an object field (paper: putfield).
	KindObject Kind = iota
	// KindArray is an array element (paper: Xastore).
	KindArray
	// KindStatic is a static variable (paper: putstatic).
	KindStatic
	// KindAllocObject restores an in-section-allocated object wholesale.
	KindAllocObject
	// KindAllocArray restores an in-section-allocated array wholesale.
	KindAllocArray
)

func (k Kind) String() string {
	switch k {
	case KindObject:
		return "object"
	case KindArray:
		return "array"
	case KindStatic:
		return "static"
	case KindAllocObject:
		return "alloc-object"
	case KindAllocArray:
		return "alloc-array"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ShadowSlot is the per-slot metadata word the runtime layers stamp instead
// of keying global maps by location (the "inline metadata" move of Compact
// Java Monitors, applied to speculation state). Two independent layers
// share it:
//
//   - the jmm layer records the speculative owner of the slot's current
//     value (OwnerThread/OwnerGen, validated against OwnerEra so a
//     terminated thread's stamps expire in O(1));
//   - the undo layer records its first-write-wins stamp (LogID/LogEpoch/
//     LogPos), letting a repeated store inside one synchronized section
//     skip re-logging.
//
// The zero value means "no owner, never logged": eras, log ids and log
// epochs all start at 1 so a zeroed slot can never alias a live stamp.
type ShadowSlot struct {
	OwnerThread int
	OwnerGen    uint64
	OwnerEra    uint64
	LogID       uint64
	LogEpoch    uint64
	LogPos      int
}

// Object is a heap object: a fixed set of named slots, some possibly
// volatile. Every Object can act as a monitor in the runtime layer, exactly
// as in Java; the monitor itself lives in internal/monitor.
type Object struct {
	id       uint64
	class    string
	fields   []Word
	names    []string
	volatile []bool
	shadow   []ShadowSlot
	nameIdx  map[string]int
}

// ID returns the heap-unique object id.
func (o *Object) ID() uint64 { return o.id }

// Class returns the class name the object was allocated with.
func (o *Object) Class() string { return o.class }

// NumFields returns the object's slot count.
func (o *Object) NumFields() int { return len(o.fields) }

// FieldName returns the declared name of slot i ("fN" if unnamed).
func (o *Object) FieldName(i int) string {
	if i < len(o.names) && o.names[i] != "" {
		return o.names[i]
	}
	return fmt.Sprintf("f%d", i)
}

// FieldIndex resolves a field name to its slot index. The name table is
// indexed lazily on first use; field sets are fixed at allocation, so the
// index never goes stale.
func (o *Object) FieldIndex(name string) (int, bool) {
	if o.nameIdx == nil {
		o.nameIdx = make(map[string]int, len(o.names))
		for i, n := range o.names {
			if _, dup := o.nameIdx[n]; n != "" && !dup {
				o.nameIdx[n] = i
			}
		}
	}
	i, ok := o.nameIdx[name]
	return i, ok
}

// Shadow returns the slot's shadow metadata, allocating the object's shadow
// array on first use (steady-state barriers then index it directly).
func (o *Object) Shadow(i int) *ShadowSlot {
	if o.shadow == nil {
		o.shadow = make([]ShadowSlot, len(o.fields))
	}
	return &o.shadow[i]
}

// IsVolatile reports whether slot i was declared volatile.
func (o *Object) IsVolatile(i int) bool {
	return i < len(o.volatile) && o.volatile[i]
}

// Get reads slot i with no barrier.
func (o *Object) Get(i int) Word { return o.fields[i] }

// Set writes slot i with no barrier.
func (o *Object) Set(i int, v Word) { o.fields[i] = v }

// String renders the object as Class#id.
func (o *Object) String() string { return fmt.Sprintf("%s#%d", o.class, o.id) }

// Array is a heap array of words.
type Array struct {
	id     uint64
	elems  []Word
	shadow []ShadowSlot
}

// ID returns the heap-unique array id.
func (a *Array) ID() uint64 { return a.id }

// Len returns the element count.
func (a *Array) Len() int { return len(a.elems) }

// Get reads element i with no barrier.
func (a *Array) Get(i int) Word { return a.elems[i] }

// Set writes element i with no barrier.
func (a *Array) Set(i int, v Word) { a.elems[i] = v }

// Shadow returns the element's shadow metadata, allocating the array's
// shadow on first use.
func (a *Array) Shadow(i int) *ShadowSlot {
	if a.shadow == nil {
		a.shadow = make([]ShadowSlot, len(a.elems))
	}
	return &a.shadow[i]
}

// String renders the array as array#id[len].
func (a *Array) String() string { return fmt.Sprintf("array#%d[%d]", a.id, len(a.elems)) }

// FieldSpec declares one object field.
type FieldSpec struct {
	Name     string
	Volatile bool
	Init     Word
}

// Heap owns all objects, arrays and the static table.
type Heap struct {
	nextID  uint64
	objects []*Object
	arrays  []*Array
	// objByID/arrByID are dense id→value tables (ids come from the shared
	// counter, so every id in [1, nextID) is exactly one of the two kinds;
	// the other table holds nil at that index).
	objByID      []*Object
	arrByID      []*Array
	statics      []Word
	staticNames  []string
	staticVol    []bool
	staticShadow []ShadowSlot
	staticIdx    map[string]int
}

// New returns an empty heap.
func New() *Heap {
	// Index 0 of the dense tables is a permanent nil: ids start at 1.
	return &Heap{nextID: 1, objByID: make([]*Object, 1), arrByID: make([]*Array, 1)}
}

// AllocObject allocates an object of the given class with the given fields.
func (h *Heap) AllocObject(class string, fields ...FieldSpec) *Object {
	o := &Object{
		id:       h.nextID,
		class:    class,
		fields:   make([]Word, len(fields)),
		names:    make([]string, len(fields)),
		volatile: make([]bool, len(fields)),
	}
	h.nextID++
	for i, f := range fields {
		o.fields[i] = f.Init
		o.names[i] = f.Name
		o.volatile[i] = f.Volatile
	}
	h.objects = append(h.objects, o)
	h.objByID = append(h.objByID, o)
	h.arrByID = append(h.arrByID, nil)
	return o
}

// AllocPlain allocates an object with n unnamed, non-volatile, zeroed slots.
func (h *Heap) AllocPlain(class string, n int) *Object {
	o := &Object{
		id:       h.nextID,
		class:    class,
		fields:   make([]Word, n),
		names:    make([]string, n),
		volatile: make([]bool, n),
	}
	h.nextID++
	h.objects = append(h.objects, o)
	h.objByID = append(h.objByID, o)
	h.arrByID = append(h.arrByID, nil)
	return o
}

// AllocArray allocates a zeroed array of n elements.
func (h *Heap) AllocArray(n int) *Array {
	a := &Array{id: h.nextID, elems: make([]Word, n)}
	h.nextID++
	h.arrays = append(h.arrays, a)
	h.arrByID = append(h.arrByID, a)
	h.objByID = append(h.objByID, nil)
	return a
}

// DefineStatic adds a named static variable and returns its offset in the
// global symbol table (the paper logs static stores by this offset).
func (h *Heap) DefineStatic(name string, volatile bool, init Word) int {
	h.statics = append(h.statics, init)
	h.staticNames = append(h.staticNames, name)
	h.staticVol = append(h.staticVol, volatile)
	if h.staticIdx != nil {
		if _, dup := h.staticIdx[name]; !dup {
			h.staticIdx[name] = len(h.statics) - 1
		}
	}
	return len(h.statics) - 1
}

// StaticIndex resolves a static name to its offset. The name table is
// indexed lazily on first use and kept current by DefineStatic.
func (h *Heap) StaticIndex(name string) (int, bool) {
	if h.staticIdx == nil {
		h.staticIdx = make(map[string]int, len(h.staticNames))
		for i, n := range h.staticNames {
			if _, dup := h.staticIdx[n]; !dup {
				h.staticIdx[n] = i
			}
		}
	}
	i, ok := h.staticIdx[name]
	return i, ok
}

// StaticShadow returns the shadow metadata of static offset i, allocating
// (or growing, if statics were defined since) the shadow table on demand.
func (h *Heap) StaticShadow(i int) *ShadowSlot {
	if i >= len(h.staticShadow) {
		grown := make([]ShadowSlot, len(h.statics))
		copy(grown, h.staticShadow)
		h.staticShadow = grown
	}
	return &h.staticShadow[i]
}

// StaticName returns the declared name of static offset i.
func (h *Heap) StaticName(i int) string { return h.staticNames[i] }

// NumStatics returns the static table size.
func (h *Heap) NumStatics() int { return len(h.statics) }

// IsStaticVolatile reports whether static offset i is volatile.
func (h *Heap) IsStaticVolatile(i int) bool { return h.staticVol[i] }

// GetStatic reads a static slot with no barrier.
func (h *Heap) GetStatic(i int) Word { return h.statics[i] }

// SetStatic writes a static slot with no barrier.
func (h *Heap) SetStatic(i int, v Word) { h.statics[i] = v }

// Objects returns all allocated objects in allocation order (shared slice).
func (h *Heap) Objects() []*Object { return h.objects }

// Arrays returns all allocated arrays in allocation order (shared slice).
func (h *Heap) Arrays() []*Array { return h.arrays }

// Object resolves an object id (nil if unknown). Ids are assigned from a
// single counter shared with arrays, so not every id in range is an object;
// the dense table holds nil at array ids.
func (h *Heap) Object(id uint64) *Object {
	if id < uint64(len(h.objByID)) {
		return h.objByID[id]
	}
	return nil
}

// Array resolves an array id (nil if unknown).
func (h *Heap) Array(id uint64) *Array {
	if id < uint64(len(h.arrByID)) {
		return h.arrByID[id]
	}
	return nil
}

// Snapshot captures the entire mutable state of the heap as a value, for
// tests that assert rollback restored everything.
type Snapshot struct {
	Objects map[uint64][]Word
	Arrays  map[uint64][]Word
	Statics []Word
}

// Snapshot returns a deep copy of all slot contents.
func (h *Heap) Snapshot() Snapshot {
	s := Snapshot{
		Objects: make(map[uint64][]Word, len(h.objects)),
		Arrays:  make(map[uint64][]Word, len(h.arrays)),
		Statics: append([]Word(nil), h.statics...),
	}
	for _, o := range h.objects {
		s.Objects[o.id] = append([]Word(nil), o.fields...)
	}
	for _, a := range h.arrays {
		s.Arrays[a.id] = append([]Word(nil), a.elems...)
	}
	return s
}

// Equal reports whether two snapshots describe identical heap contents.
func (s Snapshot) Equal(other Snapshot) bool {
	if len(s.Objects) != len(other.Objects) || len(s.Arrays) != len(other.Arrays) || len(s.Statics) != len(other.Statics) {
		return false
	}
	for i, v := range s.Statics {
		if other.Statics[i] != v {
			return false
		}
	}
	for id, fs := range s.Objects {
		ofs, ok := other.Objects[id]
		if !ok || len(ofs) != len(fs) {
			return false
		}
		for i, v := range fs {
			if ofs[i] != v {
				return false
			}
		}
	}
	for id, es := range s.Arrays {
		oes, ok := other.Arrays[id]
		if !ok || len(oes) != len(es) {
			return false
		}
		for i, v := range es {
			if oes[i] != v {
				return false
			}
		}
	}
	return true
}

// Diff returns a human-readable description of the first few differences
// between two snapshots (empty when equal). Intended for test failures.
func (s Snapshot) Diff(other Snapshot) string {
	const max = 8
	var out []string
	add := func(f string, args ...any) {
		if len(out) < max {
			out = append(out, fmt.Sprintf(f, args...))
		}
	}
	for i, v := range s.Statics {
		if i < len(other.Statics) && other.Statics[i] != v {
			add("static[%d]: %d != %d", i, v, other.Statics[i])
		}
	}
	for id, fs := range s.Objects {
		ofs := other.Objects[id]
		for i, v := range fs {
			if i < len(ofs) && ofs[i] != v {
				add("object#%d.f%d: %d != %d", id, i, v, ofs[i])
			}
		}
	}
	for id, es := range s.Arrays {
		oes := other.Arrays[id]
		for i, v := range es {
			if i < len(oes) && oes[i] != v {
				add("array#%d[%d]: %d != %d", id, i, v, oes[i])
			}
		}
	}
	if len(out) == 0 {
		return ""
	}
	return fmt.Sprintf("%d+ differences: %v", len(out), out)
}
