package causal

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/simtime"
)

// Export surfaces for the critical-path attribution: a human-readable
// report (rvmrun -critpath, rvmfr critpath), folded stacks for flame
// tooling, and a Perfetto trace with the critical path highlighted.

// RenderReport writes the attribution as text: the invariant line first
// (the number a CLI wrapper asserts against), then the per-class makespan
// decomposition, the critical-vs-raw contention table, the path pieces,
// and — when site attribution ran — the top critical bytecode sites.
func RenderReport(w io.Writer, g *Graph, a *Attribution, topN int) {
	if topN <= 0 {
		topN = 5
	}
	fmt.Fprintf(w, "critical path: %d ticks == final clock %d\n", pathLen(a), a.Clock)
	if g.Truncated {
		fmt.Fprintf(w, "  WARNING: built from a truncated stream; attribution is best-effort\n")
	}
	fmt.Fprintf(w, "\nmakespan by class (critical path):\n")
	for c := Class(0); c < NumClasses; c++ {
		t := a.ClassTotals[c]
		fmt.Fprintf(w, "  %-8s %10d ticks  %5.1f%%\n", c, int64(t), pct(t, a.Clock))
	}

	crit := a.TopCritical(topN)
	raw := a.TopRaw(topN)
	if len(crit) > 0 || len(raw) > 0 {
		fmt.Fprintf(w, "\nmonitor contention, critical vs raw:\n")
		fmt.Fprintf(w, "  %-20s %14s %14s\n", "monitor", "critical", "raw")
		for _, name := range unionMonitors(crit, raw) {
			fmt.Fprintf(w, "  %-20s %14d %14d\n", name, int64(a.CritBlock[name]), int64(a.RawBlock[name]))
		}
		if top := firstMonitor(crit); top != "" {
			fmt.Fprintf(w, "  critical monitor: %s (%d ticks on path)\n", top, int64(a.CritBlock[top]))
		}
		if top := firstMonitor(raw); top != "" {
			fmt.Fprintf(w, "  hottest monitor:  %s (%d ticks blocked overall)\n", top, int64(a.RawBlock[top]))
		}
	}

	if len(a.Sites) > 0 {
		fmt.Fprintf(w, "\ntop critical sites (work+waste on path):\n")
		for _, st := range a.TopSites(topN) {
			fmt.Fprintf(w, "  %-28s %10d ticks\n", st.Site, int64(st.Ticks))
		}
	}

	fmt.Fprintf(w, "\npath pieces (%d):\n", len(a.Pieces))
	for _, p := range a.Pieces {
		fmt.Fprintf(w, "  [%8d, %8d] %s\n", int64(p.From), int64(p.To), p.Thread)
	}
}

// RenderWhatIf writes an experiment batch as text: the determinism
// control verdict first, then one line per experiment with its exact
// virtual speedup.
func RenderWhatIf(w io.Writer, wi *WhatIf) {
	fmt.Fprintf(w, "baseline clock: %d ticks\n", int64(wi.Baseline.Clock))
	if !wi.ControlOK {
		fmt.Fprintf(w, "CONTROL FAILED: zero-perturbation replay diverged (clock %d vs %d) — refusing to report speedups\n",
			int64(wi.Control.Clock), int64(wi.Baseline.Clock))
		return
	}
	fmt.Fprintf(w, "control: zero-perturbation replay tick-identical (clock %d, fingerprint match)\n", int64(wi.Control.Clock))
	fmt.Fprintf(w, "\nexact what-if speedups:\n")
	for _, r := range wi.Results {
		if r.Err != "" {
			fmt.Fprintf(w, "  %-28s %s\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(w, "  %-28s clock %8d  speedup %+d ticks (%.1f%%)\n",
			r.Name, int64(r.Outcome.Clock), r.SpeedupTicks,
			100*float64(r.SpeedupTicks)/float64(wi.Baseline.Clock))
	}
}

// WriteFolded emits the critical path as folded stacks (thread;class[;
// detail] count), one frame chain per critical segment, suitable for
// flamegraph tooling. Segments of the same folded key merge.
func WriteFolded(w io.Writer, a *Attribution) error {
	agg := make(map[string]simtime.Ticks)
	for _, s := range a.Segments {
		key := s.Thread + ";" + s.Class.String()
		switch s.Class {
		case Block:
			if s.Wait {
				key = s.Thread + ";block;wait " + s.Monitor
			} else {
				key = s.Thread + ";block;" + s.Monitor
			}
		case Waste:
			key = s.Thread + ";waste;" + s.Monitor
		}
		agg[key] += s.Dur()
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, int64(agg[k])); err != nil {
			return err
		}
	}
	return nil
}

// WritePerfetto serializes every thread's classified timeline as a
// Perfetto trace (the same legacy Chrome JSON array format as the obs
// exporter): one track per thread, a complete slice per segment, the
// critical path's segments flagged (cat "critical", crit arg) and chained
// with flow arrows wherever the path hops threads, so the makespan chain
// reads as one connected ribbon in the UI.
func WritePerfetto(w io.Writer, g *Graph, a *Attribution) error {
	var events []map[string]any
	add := func(e map[string]any) { events = append(events, e) }

	add(map[string]any{
		"ph": "M", "pid": perfettoPid, "name": "process_name",
		"args": map[string]any{"name": "rvm critical path"},
	})
	tids := make(map[string]int, len(g.Threads))
	for i, th := range g.Threads {
		tids[th.Name] = i + 1
		add(map[string]any{
			"ph": "M", "pid": perfettoPid, "tid": i + 1, "name": "thread_name",
			"args": map[string]any{"name": th.Name},
		})
	}

	// Critical coverage per thread, for flagging segments on the path.
	critical := make(map[string][]PathPiece)
	for _, p := range a.Pieces {
		critical[p.Thread] = append(critical[p.Thread], p)
	}
	onPath := func(s Segment) bool {
		for _, p := range critical[s.Thread] {
			if s.Start < p.To && s.End > p.From {
				return true
			}
		}
		return false
	}

	for _, th := range g.Threads {
		for _, s := range th.Segments {
			name := s.Class.String()
			if s.Monitor != "" {
				name += " " + s.Monitor
			}
			cat := "segment"
			args := map[string]any{"class": s.Class.String()}
			if s.Monitor != "" {
				args["monitor"] = s.Monitor
			}
			if s.Holder != "" {
				args["holder"] = s.Holder
			}
			if s.Wait {
				args["wait"] = true
			}
			if onPath(s) {
				cat = "critical"
				args["crit"] = true
			}
			add(map[string]any{
				"ph": "X", "pid": perfettoPid, "tid": tids[s.Thread], "name": name,
				"cat": cat, "ts": int64(s.Start), "dur": int64(s.Dur()), "args": args,
			})
		}
	}

	// Flow arrows along the critical path: one arrow per thread hop, from
	// the spawn instant on the parent to the child's start.
	for i := 1; i < len(a.Pieces); i++ {
		prev, next := a.Pieces[i-1], a.Pieces[i]
		add(map[string]any{
			"ph": "s", "pid": perfettoPid, "tid": tids[prev.Thread], "id": i,
			"name": "critical-path", "cat": "crit-flow", "ts": int64(prev.To),
		})
		add(map[string]any{
			"ph": "f", "bp": "e", "pid": perfettoPid, "tid": tids[next.Thread], "id": i,
			"name": "critical-path", "cat": "crit-flow", "ts": int64(next.From),
		})
	}

	return json.NewEncoder(w).Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

const perfettoPid = 1

func pathLen(a *Attribution) simtime.Ticks {
	var sum simtime.Ticks
	for _, p := range a.Pieces {
		sum += p.To - p.From
	}
	return sum
}

func pct(part, whole simtime.Ticks) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func firstMonitor(mts []MonitorTicks) string {
	if len(mts) == 0 {
		return ""
	}
	return mts[0].Monitor
}

// unionMonitors merges the two top-k lists preserving critical-first
// order, then raw-only entries.
func unionMonitors(crit, raw []MonitorTicks) []string {
	var out []string
	seen := make(map[string]bool)
	for _, m := range crit {
		if !seen[m.Monitor] {
			seen[m.Monitor] = true
			out = append(out, m.Monitor)
		}
	}
	for _, m := range raw {
		if !seen[m.Monitor] {
			seen[m.Monitor] = true
			out = append(out, m.Monitor)
		}
	}
	return out
}
