package causal

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// PathPiece is one thread's contribution to the critical path: the chain
// occupied thread Thread from From to To. Pieces tile [0, FinalClock]
// gaplessly in chronological order.
type PathPiece struct {
	Thread string
	From   simtime.Ticks
	To     simtime.Ticks
}

// SiteKey names a bytecode site for per-site attribution.
type SiteKey struct {
	Method string
	PC     int
}

func (k SiteKey) String() string {
	if k.Method == "" {
		return "(thread root)"
	}
	return fmt.Sprintf("%s@%d", k.Method, k.PC)
}

// Attribution is the classified critical path: which thread the makespan
// chain ran on at every instant, what each tick was spent on, and which
// monitors' contention actually bounded the program (critical contention)
// versus merely showing up in the histograms (raw contention).
type Attribution struct {
	Clock    simtime.Ticks
	Pieces   []PathPiece
	Segments []Segment // critical segments in chronological order

	ClassTotals [NumClasses]simtime.Ticks
	// CritBlock is blocked ticks ON THE CRITICAL PATH per monitor — the
	// contention that actually delayed program completion.
	CritBlock map[string]simtime.Ticks
	// CritWaste is rolled-back ticks on the critical path per revoked
	// monitor.
	CritWaste map[string]simtime.Ticks
	// RawBlock is blocked ticks across ALL threads per monitor (the
	// contention-histogram view). A monitor can dominate RawBlock while
	// never appearing in CritBlock.
	RawBlock map[string]simtime.Ticks

	// Sites is per-(method,pc) work+waste ticks on the critical path,
	// populated when a SiteRecorder was attached to the baseline run.
	Sites map[SiteKey]simtime.Ticks
}

// CriticalPath extracts the critical path by walking backward from the
// point that determines the final clock. Inside a thread the predecessor
// is always the in-thread chain (its edge weight is the full elapsed
// time, so no zero-weight cross edge can beat it); the walk only leaves a
// thread at its start point, following the spawn edge into the parent.
// The resulting pieces therefore tile [0, FinalClock] exactly — which
// CheckInvariant has already certified via dist==at for every point.
func (g *Graph) CriticalPath() (*Attribution, error) {
	if len(g.Threads) == 0 {
		return nil, fmt.Errorf("causal: empty graph")
	}
	// The program ends at the last thread-end; ties broken by stream
	// order (the later event is the one that ended the run).
	var endP *point
	for _, th := range g.Threads {
		p := th.last()
		if endP == nil || p.at > endP.at || (p.at == endP.at && p.seq > endP.seq) {
			endP = p
		}
	}

	var pieces []PathPiece
	cur := endP
	entry := endP.at
	for {
		start := cur.th.points[0]
		pieces = append(pieces, PathPiece{Thread: cur.th.Name, From: start.at, To: entry})
		for p := cur; p != nil; p = p.prev {
			p.onPath = true
		}
		var spawn *point
		for _, c := range start.cross {
			if c.label == "spawn" {
				spawn = c.from
				break
			}
		}
		if spawn == nil {
			if start.at != 0 && !g.Truncated {
				return nil, fmt.Errorf("causal: critical path walk stranded at thread %s start (t=%d) with no spawn edge", cur.th.Name, start.at)
			}
			break
		}
		spawn.onPath = true
		cur, entry = spawn, spawn.at
	}
	// Walked newest→oldest; flip to chronological order.
	for i, j := 0, len(pieces)-1; i < j; i, j = i+1, j-1 {
		pieces[i], pieces[j] = pieces[j], pieces[i]
	}

	a := &Attribution{
		Clock:     g.FinalClock,
		Pieces:    pieces,
		CritBlock: make(map[string]simtime.Ticks),
		CritWaste: make(map[string]simtime.Ticks),
		RawBlock:  g.RawContention(),
	}
	for _, pc := range pieces {
		th := g.byName[pc.Thread]
		for _, s := range th.Segments {
			lo, hi := maxT(s.Start, pc.From), minT(s.End, pc.To)
			if hi <= lo {
				continue
			}
			seg := s
			seg.Start, seg.End = lo, hi
			a.Segments = append(a.Segments, seg)
			a.ClassTotals[seg.Class] += seg.Dur()
			switch seg.Class {
			case Block:
				a.CritBlock[seg.Monitor] += seg.Dur()
			case Waste:
				a.CritWaste[seg.Monitor] += seg.Dur()
			}
		}
	}

	// The classified segments must re-tile the whole makespan: the same
	// exactness the DAG invariant certifies, carried through the sweep.
	var covered simtime.Ticks
	for _, s := range a.Segments {
		covered += s.Dur()
	}
	if !g.Truncated && covered != g.FinalClock {
		return nil, fmt.Errorf("causal: critical segments cover %d ticks, want the full makespan %d", covered, g.FinalClock)
	}
	return a, nil
}

// TopCritical returns up to k (monitor, critical blocked ticks) pairs in
// descending order, ties broken by name for determinism.
func (a *Attribution) TopCritical(k int) []MonitorTicks { return topTicks(a.CritBlock, k) }

// TopRaw returns up to k (monitor, raw blocked ticks) pairs.
func (a *Attribution) TopRaw(k int) []MonitorTicks { return topTicks(a.RawBlock, k) }

// MonitorTicks pairs a monitor with an attributed tick count.
type MonitorTicks struct {
	Monitor string
	Ticks   simtime.Ticks
}

func topTicks(m map[string]simtime.Ticks, k int) []MonitorTicks {
	out := make([]MonitorTicks, 0, len(m))
	for mon, t := range m {
		out = append(out, MonitorTicks{mon, t})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ticks != out[j].Ticks {
			return out[i].Ticks > out[j].Ticks
		}
		return out[i].Monitor < out[j].Monitor
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SiteRecorder accumulates the profiler's per-tick charge stream
// (prof.Profiler.SetSampler) so critical work can be attributed to
// bytecode sites after the fact. Charges are coalesced per thread when
// contiguous at the same site, keeping memory proportional to the number
// of site transitions rather than the number of Work calls.
type SiteRecorder struct {
	charges map[string][]siteCharge // per thread, in time order
}

type siteCharge struct {
	start, end simtime.Ticks // the charged interval [start, end)
	site       SiteKey
}

// NewSiteRecorder returns an empty recorder; pass its Add to
// prof.Profiler.SetSampler.
func NewSiteRecorder() *SiteRecorder {
	return &SiteRecorder{charges: make(map[string][]siteCharge)}
}

// Add records one charge: d ticks ending at end, attributed to (fn, pc)
// on thread. Matches the prof sampler callback signature.
func (r *SiteRecorder) Add(thread string, end, d simtime.Ticks, fn string, pc int) {
	if d <= 0 {
		return
	}
	key := SiteKey{Method: fn, PC: pc}
	cs := r.charges[thread]
	if n := len(cs); n > 0 && cs[n-1].site == key && cs[n-1].end == end-d {
		cs[n-1].end = end
		r.charges[thread] = cs
		return
	}
	r.charges[thread] = append(cs, siteCharge{start: end - d, end: end, site: key})
}

// AttachSites intersects the recorded charges with the attribution's
// critical work and waste segments, filling a.Sites with on-path ticks
// per bytecode site.
func (r *SiteRecorder) AttachSites(a *Attribution) {
	a.Sites = make(map[SiteKey]simtime.Ticks)
	// Index critical work/waste segments per thread, already in time
	// order from the path walk.
	perThread := make(map[string][]Segment)
	for _, s := range a.Segments {
		if s.Class == Work || s.Class == Waste {
			perThread[s.Thread] = append(perThread[s.Thread], s)
		}
	}
	for th, segs := range perThread {
		cs := r.charges[th]
		ci := 0
		for _, s := range segs {
			for ci < len(cs) && cs[ci].end <= s.Start {
				ci++
			}
			for j := ci; j < len(cs) && cs[j].start < s.End; j++ {
				lo, hi := maxT(cs[j].start, s.Start), minT(cs[j].end, s.End)
				if hi > lo {
					a.Sites[cs[j].site] += hi - lo
				}
			}
		}
	}
}

// TopSites returns up to k (site, ticks) pairs in descending order.
func (a *Attribution) TopSites(k int) []SiteTicks {
	out := make([]SiteTicks, 0, len(a.Sites))
	for s, t := range a.Sites {
		out = append(out, SiteTicks{s, t})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ticks != out[j].Ticks {
			return out[i].Ticks > out[j].Ticks
		}
		if out[i].Site.Method != out[j].Site.Method {
			return out[i].Site.Method < out[j].Site.Method
		}
		return out[i].Site.PC < out[j].Site.PC
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SiteTicks pairs a bytecode site with attributed critical ticks.
type SiteTicks struct {
	Site  SiteKey
	Ticks simtime.Ticks
}
