// Package causal builds an exact happens-before DAG over the virtual-time
// trace stream and extracts the critical path — the analysis layer that
// turns the obs/prof/fr recording stack into optimization decisions.
//
// Nodes are per-thread timeline points anchored at trace events; edges are
// in-thread program order (weighted by elapsed virtual time) and
// zero-weight cross-thread dependencies: spawn (ThreadStart.Other),
// monitor release→acquire handoff (MonitorExit/Rollback → MonitorAcquired),
// notify→wait-end, and revocation request chains. Because the VM is a
// deterministic uniprocessor, every edge runs forward in virtual time and
// each thread's in-thread chain is gapless, which yields the package's
// grand invariant (the DAG analogue of the profiler's partition
// invariant): the longest virtual-time path from program start equals the
// final clock EXACTLY — every timeline point's longest-path distance is
// its own timestamp. A missing edge (an unenriched spawner, a dropped
// event) breaks reachability and fails the invariant loudly instead of
// skewing the attribution silently.
//
// On top of the DAG the package classifies every interval of every thread
// by the profiler's dimensions — work, waste (rolled-back work), block
// (monitor contention and waits), sleep, sched (queueing, switch cost,
// idle) — extracts the deterministic critical path, and attributes its
// blocked ticks per monitor: *critical contention*, which is distinct from
// raw contention (a monitor can be the most contended in the program while
// never once blocking the chain of segments that bounds the makespan).
// The what-if engine (whatif.go) then turns candidate optimizations into
// core.Perturb re-executions whose clock deltas are exact virtual
// speedups.
package causal

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// Class classifies a timeline segment by the profiler's dimensions, with
// sleep split out (a sleeping thread holds no CPU but its elapsed time is
// real makespan when it sits on the critical path).
type Class int

// Segment classes.
const (
	Work  Class = iota // dispatched and executing surviving computation
	Waste              // dispatched, but the ticks were rolled back later
	Block              // blocked on a monitor or in Object.wait
	Sleep              // parked on the virtual-time timer queue
	Sched              // runnable-but-not-running, switch cost, idle jumps
	NumClasses
)

var classNames = [NumClasses]string{"work", "waste", "block", "sleep", "sched"}

func (c Class) String() string {
	if c >= 0 && c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Segment is one classified interval of one thread's timeline. Segments
// tile [Start(thread), End(thread)] gaplessly.
type Segment struct {
	Thread  string
	Start   simtime.Ticks
	End     simtime.Ticks
	Class   Class
	Monitor string // Block: the contended monitor; Waste: the revoked one
	Holder  string // Block: the owner observed at block time, if any
	Wait    bool   // Block: an Object.wait span rather than contention
}

// Dur returns the segment's length in ticks.
func (s Segment) Dur() simtime.Ticks { return s.End - s.Start }

// point is a DAG node: one thread-timeline instant anchored at a trace
// event. seq is the event's stream position — a topological order, since
// every dependency is emitted before the event it enables.
type point struct {
	seq     int
	at      simtime.Ticks
	th      *Thread
	prev    *point // in-thread predecessor (nil at thread start)
	cross   []crossEdge
	dist    simtime.Ticks
	reached bool
	// onPath marks the point as part of the extracted critical path.
	onPath bool
}

type crossEdge struct {
	from  *point
	label string // "spawn", "handoff", "notify", "revoke"
}

// interval is a raw pre-classification span of one thread.
type interval struct {
	start, end simtime.Ticks
	monitor    string
	holder     string
	wait       bool
	open       bool
}

// Thread is one thread's reconstructed timeline.
type Thread struct {
	Name     string
	Spawner  string // empty for pre-Run root threads
	Prio     int64
	Start    simtime.Ticks
	End      simtime.Ticks
	Segments []Segment

	points    []*point
	blocks    []interval // monitor contention + wait spans
	sleeps    []interval
	runs      []interval
	wastes    []interval // rolled-back section windows
	dispatch  []simtime.Ticks
	sections  []openSection // currently open monitor sections (waste windows)
	closed    bool
	synthetic bool // reconstructed from a truncated stream
}

type openSection struct {
	monitor string
	at      simtime.Ticks
}

func (t *Thread) last() *point { return t.points[len(t.points)-1] }

// Options configures Build.
type Options struct {
	// AllowTruncated accepts streams missing their prefix (a wrapped
	// flight-recorder ring): threads appearing without a ThreadStart get
	// synthetic starts and the grand invariant is not claimable — the
	// graph is best-effort and Graph.Truncated is set.
	AllowTruncated bool
}

// Graph is the happens-before DAG plus the per-thread classified
// timelines derived from one event stream.
type Graph struct {
	FinalClock simtime.Ticks
	Threads    []*Thread
	Truncated  bool // built under AllowTruncated with missing context

	byName map[string]*Thread
	points []*point // all points in seq (topological) order
	// rawBlock accumulates blocked ticks per monitor across every thread —
	// raw contention, the histogram view critical contention is compared
	// against.
	rawBlock map[string]simtime.Ticks
}

type dispatchRec struct {
	at   simtime.Ticks
	th   *Thread
	cost simtime.Ticks
}

type idleRec struct {
	at simtime.Ticks // post-jump time; the idle interval is [at-n, at)
	n  simtime.Ticks
}

// Build constructs the DAG from an event stream in emission order. The
// stream must be complete (every thread's ThreadStart present) unless
// opts.AllowTruncated is set.
func Build(events []trace.Event, opts Options) (*Graph, error) {
	g := &Graph{
		byName:   make(map[string]*Thread),
		rawBlock: make(map[string]simtime.Ticks),
	}
	releases := make(map[string]*point) // last release point per monitor
	notifies := make(map[string]*point) // last notify point per monitor
	var dispatches []dispatchRec
	var idles []idleRec

	tlFor := func(name string, e trace.Event) (*Thread, error) {
		if th, ok := g.byName[name]; ok {
			return th, nil
		}
		if !opts.AllowTruncated {
			return nil, fmt.Errorf("causal: event %v for thread %q before its thread-start — stream truncated? (use AllowTruncated for flight-recorder rings)", e.Kind, name)
		}
		g.Truncated = true
		th := &Thread{Name: name, Start: e.At, synthetic: true}
		p := &point{seq: -1, at: e.At, th: th}
		th.points = []*point{p}
		g.points = append(g.points, p)
		g.byName[name] = th
		g.Threads = append(g.Threads, th)
		return th, nil
	}

	addPoint := func(th *Thread, seq int, e trace.Event) (*point, error) {
		prev := th.last()
		if e.At < prev.at {
			return nil, fmt.Errorf("causal: thread %s time regression: %v at %d after point at %d", th.Name, e.Kind, e.At, prev.at)
		}
		p := &point{seq: seq, at: e.At, th: th, prev: prev}
		th.points = append(th.points, p)
		g.points = append(g.points, p)
		return p, nil
	}

	for i, e := range events {
		switch e.Kind {
		case trace.SchedIdle:
			idles = append(idles, idleRec{at: e.At, n: simtime.Ticks(e.N)})
			continue
		case trace.ThreadStart:
			if _, dup := g.byName[e.Thread]; dup {
				return nil, fmt.Errorf("causal: duplicate thread-start for %q", e.Thread)
			}
			th := &Thread{Name: e.Thread, Spawner: e.Other, Prio: e.N, Start: e.At}
			start := &point{seq: i, at: e.At, th: th}
			if e.Other != "" {
				parent, ok := g.byName[e.Other]
				if !ok {
					if !opts.AllowTruncated {
						return nil, fmt.Errorf("causal: thread %q spawned by unknown thread %q", e.Thread, e.Other)
					}
					g.Truncated = true
				} else {
					// Split the parent's timeline at the spawn instant so
					// the spawn edge leaves a segment boundary; this is
					// what makes the child's chain tile back to time 0.
					sp, err := addPoint(parent, i, e)
					if err != nil {
						return nil, err
					}
					start.cross = append(start.cross, crossEdge{from: sp, label: "spawn"})
				}
			}
			th.points = []*point{start}
			g.points = append(g.points, start)
			g.byName[e.Thread] = th
			g.Threads = append(g.Threads, th)
			continue
		}
		if e.Thread == "" {
			continue
		}
		th, err := tlFor(e.Thread, e)
		if err != nil {
			return nil, err
		}
		p, err := addPoint(th, i, e)
		if err != nil {
			return nil, err
		}

		switch e.Kind {
		case trace.ThreadEnd:
			th.closed = true
			th.End = e.At

		case trace.ContextSwitch:
			th.dispatch = append(th.dispatch, e.At)
			dispatches = append(dispatches, dispatchRec{at: e.At, th: th, cost: simtime.Ticks(e.N)})

		case trace.MonitorBlocked:
			// A re-block (revoked pending grant, wait interrupt) before any
			// acquire extends the same contention episode: close the open
			// span here and open a fresh one back to back.
			closeOpenBlock(th, e.At)
			th.blocks = append(th.blocks, interval{start: e.At, monitor: e.Object, holder: e.Other, open: true})

		case trace.MonitorAcquired:
			closeOpenBlock(th, e.At)
			if rel, ok := releases[e.Object]; ok {
				p.cross = append(p.cross, crossEdge{from: rel, label: "handoff"})
			}
			th.sections = append(th.sections, openSection{monitor: e.Object, at: e.At})

		case trace.MonitorExit:
			releases[e.Object] = p
			popSection(th, e.Object)

		case trace.Rollback:
			// The rollback releases the revoked monitor (and everything
			// nested inside it); the N payload is the wasted CPU. The run
			// ticks inside [section enter, rollback] reclassify as waste.
			releases[e.Object] = p
			if at, ok := popSectionsThrough(th, e.Object); ok {
				th.wastes = append(th.wastes, interval{start: at, end: e.At, monitor: e.Object})
			}

		case trace.WaitStart:
			th.blocks = append(th.blocks, interval{start: e.At, monitor: e.Object, wait: true, open: true})

		case trace.WaitEnd:
			closeOpenBlock(th, e.At)
			if n, ok := notifies[e.Object]; ok {
				p.cross = append(p.cross, crossEdge{from: n, label: "notify"})
			}
			if rel, ok := releases[e.Object]; ok {
				p.cross = append(p.cross, crossEdge{from: rel, label: "handoff"})
			}

		case trace.Notify:
			notifies[e.Object] = p

		case trace.Sleep:
			th.sleeps = append(th.sleeps, interval{start: e.At, end: e.At + simtime.Ticks(e.N), open: true})

		case trace.RevokeRequested:
			// The event is attributed to the victim but caused by the
			// requester, running at this very instant: a cross edge makes
			// the revocation chain explicit in the DAG.
			if req, ok := g.byName[e.Other]; ok && req != th {
				p.cross = append(p.cross, crossEdge{from: req.last(), label: "revoke"})
			}
		}
	}

	if err := g.finalize(dispatches, idles, opts); err != nil {
		return nil, err
	}
	return g, nil
}

// closeOpenBlock closes the thread's trailing open contention/wait span.
func closeOpenBlock(th *Thread, at simtime.Ticks) {
	if n := len(th.blocks); n > 0 && th.blocks[n-1].open {
		th.blocks[n-1].end = at
		th.blocks[n-1].open = false
	}
}

// popSection pops the innermost open section of the monitor (a normal
// commit is LIFO; the defensive scan keeps a mispaired stream from
// corrupting later windows).
func popSection(th *Thread, mon string) {
	for i := len(th.sections) - 1; i >= 0; i-- {
		if th.sections[i].monitor == mon {
			th.sections = append(th.sections[:i], th.sections[i+1:]...)
			return
		}
	}
}

// popSectionsThrough pops everything down to and including the OUTERMOST
// open section of the monitor — a rollback revokes the first acquisition
// and every frame nested inside it — returning its enter time.
func popSectionsThrough(th *Thread, mon string) (simtime.Ticks, bool) {
	for i, s := range th.sections {
		if s.monitor == mon {
			th.sections = th.sections[:i]
			return s.at, true
		}
	}
	return 0, false
}

// finalize resolves run windows and sleep ends, tiles every thread's
// timeline into classified segments, and runs the longest-path DP.
func (g *Graph) finalize(dispatches []dispatchRec, idles []idleRec, opts Options) error {
	for _, th := range g.Threads {
		if !th.closed {
			if !opts.AllowTruncated {
				return fmt.Errorf("causal: thread %q has no thread-end — stream truncated?", th.Name)
			}
			g.Truncated = true
			th.End = th.last().at
		}
		if th.End > g.FinalClock {
			g.FinalClock = th.End
		}
	}

	// Run windows: on a uniprocessor the thread dispatched at cs[k] runs
	// until its yield moment, recoverable exactly as the next dispatch
	// time minus that dispatch's switch cost minus any idle jumps between
	// (both carried on the stream since PR 10).
	idleBetween := func(lo, hi simtime.Ticks) simtime.Ticks {
		var sum simtime.Ticks
		for _, id := range idles {
			if id.at > lo && id.at <= hi {
				sum += id.n
			}
		}
		return sum
	}
	for k, d := range dispatches {
		var yield simtime.Ticks
		if k+1 < len(dispatches) {
			next := dispatches[k+1]
			yield = next.at - next.cost - idleBetween(d.at, next.at)
		} else {
			yield = d.th.End
		}
		if yield < d.at {
			yield = d.at
		}
		if yield > d.th.End {
			yield = d.th.End
		}
		d.th.runs = append(d.th.runs, interval{start: d.at, end: yield})
	}

	for _, th := range g.Threads {
		th.resolveSleeps()
		th.tile()
		for _, s := range th.Segments {
			if s.Class == Block {
				g.rawBlock[s.Monitor] += s.Dur()
			}
		}
	}

	// Longest-path DP in stream order (a topological order: every
	// dependency is emitted before the event it enables).
	for _, p := range g.points {
		if p.prev == nil && len(p.cross) == 0 {
			// A source: only the program start (virtual time zero) is a
			// legitimate one on a complete stream.
			p.reached = p.at == 0 || p.th.synthetic
			p.dist = p.at
			continue
		}
		best := simtime.Ticks(-1)
		ok := false
		if p.prev != nil && p.prev.reached {
			if d := p.prev.dist + (p.at - p.prev.at); d > best {
				best, ok = d, true
			}
		}
		for _, c := range p.cross {
			if c.from.reached && c.from.dist > best {
				best, ok = c.from.dist, true
			}
		}
		p.reached = ok
		if ok {
			p.dist = best
		}
	}
	return nil
}

// resolveSleeps closes each sleep span at its timer deadline or at the
// thread's next dispatch, whichever comes first (deadlock resolution can
// wake a sleeping victim early).
func (th *Thread) resolveSleeps() {
	for i := range th.sleeps {
		s := &th.sleeps[i]
		for _, d := range th.dispatch {
			if d > s.start && d < s.end {
				s.end = d
				break
			}
		}
		if s.end > th.End {
			s.end = th.End
		}
		s.open = false
	}
}

// tile partitions [Start, End] into classified segments: block/wait and
// sleep spans win, run windows (split into work/waste by the rollback
// windows) fill their remainder, and whatever is left — queued runnable
// time, switch cost, idle — is sched.
func (th *Thread) tile() {
	type hard struct {
		interval
		class Class
	}
	var hards []hard
	for _, b := range th.blocks {
		if b.open { // truncated stream: close at thread end
			b.end, b.open = th.End, false
		}
		if b.end > b.start {
			hards = append(hards, hard{b, Block})
		}
	}
	for _, s := range th.sleeps {
		if s.end > s.start {
			hards = append(hards, hard{s, Sleep})
		}
	}
	sort.Slice(hards, func(i, j int) bool { return hards[i].start < hards[j].start })

	// Sweep [Start, End]; hard spans never overlap (a thread blocks,
	// waits, or sleeps one at a time) — clip defensively anyway.
	emit := func(seg Segment) {
		if seg.End > seg.Start {
			th.Segments = append(th.Segments, seg)
		}
	}
	emitRun := func(from, to simtime.Ticks) {
		// Run ticks inside a rolled-back section window are waste.
		cur := from
		for _, w := range th.wastes {
			lo, hi := maxT(cur, w.start), minT(to, w.end)
			if hi <= lo {
				continue
			}
			emit(Segment{Thread: th.Name, Start: cur, End: lo, Class: Work})
			emit(Segment{Thread: th.Name, Start: lo, End: hi, Class: Waste, Monitor: w.monitor})
			cur = hi
		}
		emit(Segment{Thread: th.Name, Start: cur, End: to, Class: Work})
	}
	// fillOpen classifies a hard-free range using the run windows.
	fillOpen := func(from, to simtime.Ticks) {
		cur := from
		for _, r := range th.runs {
			lo, hi := maxT(cur, r.start), minT(to, r.end)
			if hi <= lo {
				continue
			}
			emit(Segment{Thread: th.Name, Start: cur, End: lo, Class: Sched})
			emitRun(lo, hi)
			cur = hi
		}
		emit(Segment{Thread: th.Name, Start: cur, End: to, Class: Sched})
	}

	cur := th.Start
	for _, h := range hards {
		lo, hi := maxT(cur, h.start), minT(th.End, h.end)
		if hi <= lo {
			continue
		}
		fillOpen(cur, lo)
		emit(Segment{Thread: th.Name, Start: lo, End: hi, Class: h.class, Monitor: h.monitor, Holder: h.holder, Wait: h.wait})
		cur = hi
	}
	fillOpen(cur, th.End)
}

func maxT(a, b simtime.Ticks) simtime.Ticks {
	if a > b {
		return a
	}
	return b
}

func minT(a, b simtime.Ticks) simtime.Ticks {
	if a < b {
		return a
	}
	return b
}

// LongestPath returns the longest virtual-time path from program start:
// the maximum longest-path distance over every thread-end point.
func (g *Graph) LongestPath() simtime.Ticks {
	var max simtime.Ticks
	for _, th := range g.Threads {
		if p := th.last(); p.reached && p.dist > max {
			max = p.dist
		}
	}
	return max
}

// CheckInvariant verifies the grand invariant on a complete stream: every
// timeline point is reachable from program start and its longest-path
// distance equals its timestamp exactly — hence the longest path equals
// the final clock. Truncated graphs fail with an explicit error.
func (g *Graph) CheckInvariant() error {
	if g.Truncated {
		return fmt.Errorf("causal: stream truncated — the invariant is not claimable on a partial DAG")
	}
	for _, p := range g.points {
		for _, c := range p.cross {
			if c.from.at > p.at {
				return fmt.Errorf("causal: %s edge into thread %s runs backward in time (%d > %d)", c.label, p.th.Name, c.from.at, p.at)
			}
		}
		if !p.reached {
			return fmt.Errorf("causal: point at %d on thread %s unreachable from program start (missing spawn or handoff edge)", p.at, p.th.Name)
		}
		if p.dist != p.at {
			return fmt.Errorf("causal: point at %d on thread %s has longest-path distance %d, want exactly its timestamp", p.at, p.th.Name, p.dist)
		}
	}
	if lp := g.LongestPath(); lp != g.FinalClock {
		return fmt.Errorf("causal: longest path %d != final clock %d", lp, g.FinalClock)
	}
	return nil
}

// RawContention returns total blocked ticks per monitor across every
// thread — the contention-histogram view the critical attribution is
// compared against.
func (g *Graph) RawContention() map[string]simtime.Ticks {
	out := make(map[string]simtime.Ticks, len(g.rawBlock))
	for k, v := range g.rawBlock {
		out[k] = v
	}
	return out
}

// Thread returns the named thread's timeline, or nil.
func (g *Graph) Thread(name string) *Thread { return g.byName[name] }
