package causal

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/simtime"
)

// The what-if engine. Where Coz-style causal profilers *sample* virtual
// speedups by inserting delays into a nondeterministic execution, this VM
// is deterministic in virtual time, so a what-if experiment is a full
// re-execution under a core.Perturb cost model and the measured speedup
// is exact — the same program, the same schedule decisions wherever costs
// are untouched, and a clock delta that IS the answer, not an estimate.
//
// Every batch runs a zero-perturbation control first and demands it be
// tick-identical (clock and fingerprint) to the baseline. If the control
// drifts, the harness is nondeterministic and every speedup number is
// garbage; the engine refuses to report rather than report noise.

// Outcome is the observable result of one (re-)execution: the final
// virtual clock plus a determinism fingerprint covering whatever the
// caller considers "the program's behavior" (stats, printed output, heap
// digest). The zero-perturbation control must match both exactly.
type Outcome struct {
	Clock       simtime.Ticks
	Fingerprint string
}

// RunFn re-executes the program under a perturbation. A nil or empty
// Perturb must reproduce the baseline exactly. The causal package never
// runs programs itself — the CLI supplies the closure, keeping this layer
// free of interpreter dependencies.
type RunFn func(p *core.Perturb) (Outcome, error)

// Experiment is one candidate optimization expressed as a perturbation.
type Experiment struct {
	Name    string // stable identifier, e.g. "uncontended:M_crit"
	Target  string // the monitor or site being optimized
	Kind    string // "uncontended", "norevoke", "scale", "control"
	Perturb *core.Perturb
}

// ExperimentResult is one experiment's exact outcome.
type ExperimentResult struct {
	Experiment
	Outcome Outcome
	Err     string
	// SpeedupTicks = baseline clock − experiment clock: positive when the
	// optimization shortens the program, negative when it lengthens it.
	SpeedupTicks int64
}

// WhatIf is a completed experiment batch.
type WhatIf struct {
	Baseline  Outcome
	ControlOK bool
	Control   Outcome
	Results   []ExperimentResult
}

// RunWhatIf executes the batch: first a zero-perturbation control checked
// tick-identical against baseline, then each experiment. Experiments that
// fail (e.g. eliding a monitor the program waits on) record their error
// and the batch continues. Returns an error only when the control run
// itself cannot execute; ControlOK=false with a nil error means the
// harness failed the determinism check and the caller should refuse to
// trust the numbers.
func RunWhatIf(baseline Outcome, run RunFn, exps []Experiment) (*WhatIf, error) {
	w := &WhatIf{Baseline: baseline}
	control, err := run(&core.Perturb{})
	if err != nil {
		return nil, fmt.Errorf("causal: control re-execution failed: %w", err)
	}
	w.Control = control
	w.ControlOK = control.Clock == baseline.Clock && control.Fingerprint == baseline.Fingerprint
	if !w.ControlOK {
		return w, nil
	}
	for _, e := range exps {
		res := ExperimentResult{Experiment: e}
		out, err := runExperiment(run, e.Perturb)
		if err != nil {
			res.Err = err.Error()
		} else {
			res.Outcome = out
			res.SpeedupTicks = int64(baseline.Clock) - int64(out.Clock)
		}
		w.Results = append(w.Results, res)
	}
	return w, nil
}

// runExperiment isolates a single perturbed run, converting panics (the
// documented Wait-on-elided-monitor refusal) into errors so one infeasible
// experiment cannot take down the batch.
func runExperiment(run RunFn, p *core.Perturb) (out Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("infeasible perturbation: %v", r)
		}
	}()
	return run(p)
}

// SuggestExperiments derives the experiment set the attribution itself
// recommends: the top-k critically contended monitors (the ones whose
// elision should buy real ticks), the top raw-contended monitors not
// already covered (the histogram's favorites — typically the negative
// control showing raw contention is the wrong signal), and a
// revocation-disable ablation for the monitor with the most critical
// waste, when any waste is on the path.
func SuggestExperiments(a *Attribution, k int) []Experiment {
	if k <= 0 {
		k = 3
	}
	var exps []Experiment
	seen := make(map[string]bool)
	add := func(kind, mon string, p *core.Perturb) {
		name := kind + ":" + mon
		if seen[name] {
			return
		}
		seen[name] = true
		exps = append(exps, Experiment{Name: name, Target: mon, Kind: kind, Perturb: p})
	}
	for _, mt := range a.TopCritical(k) {
		if mt.Ticks > 0 {
			add("uncontended", mt.Monitor, &core.Perturb{Uncontended: map[string]bool{mt.Monitor: true}})
		}
	}
	for _, mt := range a.TopRaw(k) {
		if mt.Ticks > 0 {
			add("uncontended", mt.Monitor, &core.Perturb{Uncontended: map[string]bool{mt.Monitor: true}})
		}
	}
	if len(a.CritWaste) > 0 {
		mons := make([]MonitorTicks, 0, len(a.CritWaste))
		for m, t := range a.CritWaste {
			mons = append(mons, MonitorTicks{m, t})
		}
		sort.Slice(mons, func(i, j int) bool {
			if mons[i].Ticks != mons[j].Ticks {
				return mons[i].Ticks > mons[j].Ticks
			}
			return mons[i].Monitor < mons[j].Monitor
		})
		add("norevoke", mons[0].Monitor, &core.Perturb{NoRevoke: map[string]bool{mons[0].Monitor: true}})
	}
	return exps
}
