package causal

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func ev(at int64, k trace.Kind, thread, object, other string, n int64) trace.Event {
	return trace.Event{At: simtime.Ticks(at), Kind: k, Thread: thread, Object: object, Other: other, N: n}
}

func mustBuild(t *testing.T, events []trace.Event) *Graph {
	t.Helper()
	g, err := Build(events, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func mustPath(t *testing.T, g *Graph) *Attribution {
	t.Helper()
	if err := g.CheckInvariant(); err != nil {
		t.Fatalf("CheckInvariant: %v", err)
	}
	a, err := g.CriticalPath()
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	return a
}

func TestSingleThread(t *testing.T) {
	g := mustBuild(t, []trace.Event{
		ev(0, trace.ThreadStart, "T", "", "", 5),
		ev(0, trace.ContextSwitch, "T", "", "", 0),
		ev(100, trace.ThreadEnd, "T", "", "", 0),
	})
	if g.FinalClock != 100 {
		t.Fatalf("FinalClock = %d, want 100", g.FinalClock)
	}
	a := mustPath(t, g)
	if len(a.Pieces) != 1 || a.Pieces[0] != (PathPiece{Thread: "T", From: 0, To: 100}) {
		t.Fatalf("pieces = %+v", a.Pieces)
	}
	if a.ClassTotals[Work] != 100 {
		t.Fatalf("work = %d, want 100 (totals %v)", a.ClassTotals[Work], a.ClassTotals)
	}
}

// Contention handoff: B blocks on M held by A; the release→acquire edge
// makes B's acquisition reachable and the blocked span critical.
func TestHandoffAndCriticalContention(t *testing.T) {
	g := mustBuild(t, []trace.Event{
		ev(0, trace.ThreadStart, "A", "", "", 5),
		ev(0, trace.ThreadStart, "B", "", "", 5),
		ev(0, trace.ContextSwitch, "A", "", "", 0),
		ev(5, trace.MonitorAcquired, "A", "M", "", 0),
		ev(10, trace.ContextSwitch, "B", "", "", 0),
		ev(10, trace.MonitorBlocked, "B", "M", "A", 0),
		ev(12, trace.ContextSwitch, "A", "", "", 0),
		ev(15, trace.MonitorExit, "A", "M", "", 0),
		ev(20, trace.ThreadEnd, "A", "", "", 0),
		ev(20, trace.ContextSwitch, "B", "", "", 0),
		ev(20, trace.MonitorAcquired, "B", "M", "", 0),
		ev(25, trace.MonitorExit, "B", "M", "", 0),
		ev(30, trace.ThreadEnd, "B", "", "", 0),
	})
	a := mustPath(t, g)
	if a.Clock != 30 {
		t.Fatalf("clock = %d, want 30", a.Clock)
	}
	if got := a.CritBlock["M"]; got != 10 {
		t.Fatalf("critical contention on M = %d, want 10", got)
	}
	if got := a.RawBlock["M"]; got != 10 {
		t.Fatalf("raw contention on M = %d, want 10", got)
	}
	// The blocked span [10,20] sits on B's timeline, the only path thread.
	if len(a.Pieces) != 1 || a.Pieces[0].Thread != "B" {
		t.Fatalf("pieces = %+v, want single piece on B", a.Pieces)
	}
}

// A spawn edge is what ties a mid-run child back to time zero; the spawn
// point also splits the parent's timeline at the hop.
func TestSpawnEdge(t *testing.T) {
	g := mustBuild(t, []trace.Event{
		ev(0, trace.ThreadStart, "P", "", "", 5),
		ev(0, trace.ContextSwitch, "P", "", "", 0),
		ev(5, trace.ThreadStart, "C", "", "P", 7),
		ev(10, trace.ThreadEnd, "P", "", "", 0),
		ev(10, trace.ContextSwitch, "C", "", "", 0),
		ev(40, trace.ThreadEnd, "C", "", "", 0),
	})
	a := mustPath(t, g)
	want := []PathPiece{{Thread: "P", From: 0, To: 5}, {Thread: "C", From: 5, To: 40}}
	if len(a.Pieces) != 2 || a.Pieces[0] != want[0] || a.Pieces[1] != want[1] {
		t.Fatalf("pieces = %+v, want %+v", a.Pieces, want)
	}
	if c := g.Thread("C"); c.Spawner != "P" {
		t.Fatalf("spawner = %q, want P", c.Spawner)
	}
}

// A child starting mid-run with no spawner is an incomplete DAG: Build
// rejects an unknown spawner, and a root-looking start at t>0 fails the
// invariant instead of silently shortening the longest path.
func TestMissingSpawnEdgeDetected(t *testing.T) {
	_, err := Build([]trace.Event{
		ev(0, trace.ThreadStart, "P", "", "", 5),
		{At: 5, Kind: trace.ThreadStart, Thread: "C", Other: "ghost"},
	}, Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown thread") {
		t.Fatalf("err = %v, want unknown-spawner rejection", err)
	}

	g := mustBuild(t, []trace.Event{
		ev(0, trace.ThreadStart, "P", "", "", 5),
		ev(0, trace.ContextSwitch, "P", "", "", 0),
		ev(10, trace.ThreadEnd, "P", "", "", 0),
		ev(5, trace.ThreadStart, "C", "", "", 0), // no spawner, not at t=0
		ev(12, trace.ContextSwitch, "C", "", "", 0),
		ev(20, trace.ThreadEnd, "C", "", "", 0),
	})
	if err := g.CheckInvariant(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("CheckInvariant = %v, want unreachable-point failure", err)
	}
}

// Rollback: the run ticks inside the revoked section reclassify as waste,
// the rollback point releases the monitor for the handoff edge, and the
// revocation-request edge ties the victim's wakeup to the requester.
func TestRollbackWaste(t *testing.T) {
	g := mustBuild(t, []trace.Event{
		ev(0, trace.ThreadStart, "V", "", "", 3),
		ev(0, trace.ThreadStart, "R", "", "", 8),
		ev(0, trace.ContextSwitch, "V", "", "", 0),
		ev(2, trace.MonitorAcquired, "V", "M", "", 0),
		ev(10, trace.ContextSwitch, "R", "", "", 0),
		ev(11, trace.MonitorBlocked, "R", "M", "V", 0),
		ev(11, trace.RevokeRequested, "V", "M", "R", 0),
		ev(12, trace.ContextSwitch, "V", "", "", 0),
		ev(12, trace.Rollback, "V", "M", "R", 10),
		ev(14, trace.ContextSwitch, "R", "", "", 0),
		ev(14, trace.MonitorAcquired, "R", "M", "", 0),
		ev(20, trace.MonitorExit, "R", "M", "", 0),
		ev(25, trace.ThreadEnd, "R", "", "", 0),
		ev(25, trace.ContextSwitch, "V", "", "", 0),
		ev(30, trace.ThreadEnd, "V", "", "", 0),
	})
	a := mustPath(t, g)
	if got := a.CritWaste["M"]; got != 8 {
		t.Fatalf("critical waste on M = %d, want 8 ([2,10] of the revoked section)", got)
	}
	if a.ClassTotals[Waste] != 8 {
		t.Fatalf("waste total = %d, want 8", a.ClassTotals[Waste])
	}
	// SuggestExperiments must include the revocation ablation.
	exps := SuggestExperiments(a, 3)
	var hasNoRevoke bool
	for _, e := range exps {
		if e.Kind == "norevoke" && e.Target == "M" {
			hasNoRevoke = true
		}
	}
	if !hasNoRevoke {
		t.Fatalf("experiments %+v missing norevoke:M", exps)
	}
}

// Sleep spans close at the timer deadline; scheduler idle jumps subtract
// from the preceding run window so yield moments reconstruct exactly.
func TestSleepAndIdle(t *testing.T) {
	g := mustBuild(t, []trace.Event{
		ev(0, trace.ThreadStart, "S", "", "", 5),
		ev(0, trace.ContextSwitch, "S", "", "", 0),
		ev(5, trace.Sleep, "S", "", "", 10),
		ev(15, trace.SchedIdle, "", "", "", 10),
		ev(15, trace.ContextSwitch, "S", "", "", 0),
		ev(20, trace.ThreadEnd, "S", "", "", 0),
	})
	a := mustPath(t, g)
	if a.ClassTotals[Sleep] != 10 || a.ClassTotals[Work] != 10 || a.ClassTotals[Sched] != 0 {
		t.Fatalf("totals = %v, want work 10 / sleep 10 / sched 0", a.ClassTotals)
	}
}

// Context-switch cost lands in sched, not in the previous thread's work:
// the N payload carries the cost so the yield moment reconstructs.
func TestSwitchCostIsSched(t *testing.T) {
	g := mustBuild(t, []trace.Event{
		ev(0, trace.ThreadStart, "A", "", "", 5),
		ev(0, trace.ContextSwitch, "A", "", "", 0),
		ev(10, trace.ContextSwitch, "A", "", "", 3), // yielded at 7, 3 ticks of switch cost
		ev(20, trace.ThreadEnd, "A", "", "", 0),
	})
	a := mustPath(t, g)
	if a.ClassTotals[Work] != 17 || a.ClassTotals[Sched] != 3 {
		t.Fatalf("totals = %v, want work 17 / sched 3", a.ClassTotals)
	}
}

// Wait/notify: the wait span is critical block time and the notify and
// release edges make the wakeup reachable.
func TestWaitNotify(t *testing.T) {
	g := mustBuild(t, []trace.Event{
		ev(0, trace.ThreadStart, "W", "", "", 5),
		ev(0, trace.ThreadStart, "N", "", "", 5),
		ev(0, trace.ContextSwitch, "W", "", "", 0),
		ev(2, trace.MonitorAcquired, "W", "M", "", 0),
		ev(3, trace.WaitStart, "W", "M", "", 0),
		ev(3, trace.ContextSwitch, "N", "", "", 0),
		ev(5, trace.MonitorAcquired, "N", "M", "", 0),
		ev(7, trace.Notify, "N", "M", "", 0),
		ev(8, trace.MonitorExit, "N", "M", "", 0),
		ev(10, trace.ThreadEnd, "N", "", "", 0),
		ev(10, trace.ContextSwitch, "W", "", "", 0),
		ev(10, trace.WaitEnd, "W", "M", "", 0),
		ev(12, trace.MonitorExit, "W", "M", "", 0),
		ev(15, trace.ThreadEnd, "W", "", "", 0),
	})
	a := mustPath(t, g)
	if got := a.CritBlock["M"]; got != 7 {
		t.Fatalf("critical block on M = %d, want 7 (the wait span)", got)
	}
	var waitSeg bool
	for _, s := range a.Segments {
		if s.Class == Block && s.Wait && s.Monitor == "M" {
			waitSeg = true
		}
	}
	if !waitSeg {
		t.Fatalf("segments %+v missing wait-flagged block", a.Segments)
	}
}

func TestTruncatedStream(t *testing.T) {
	events := []trace.Event{
		// No ThreadStart for T: a wrapped flight-recorder ring.
		ev(50, trace.ContextSwitch, "T", "", "", 0),
		ev(80, trace.ThreadEnd, "T", "", "", 0),
	}
	if _, err := Build(events, Options{}); err == nil {
		t.Fatal("Build accepted a truncated stream without AllowTruncated")
	}
	g, err := Build(events, Options{AllowTruncated: true})
	if err != nil {
		t.Fatalf("Build(AllowTruncated): %v", err)
	}
	if !g.Truncated {
		t.Fatal("Truncated flag not set")
	}
	if err := g.CheckInvariant(); err == nil {
		t.Fatal("CheckInvariant passed on a truncated graph")
	}
}

// The same events must yield the same graph whether they came from a live
// sink or a flight-recorder dump — Build is a pure function of the slice.
func TestBuildIsPure(t *testing.T) {
	events := []trace.Event{
		ev(0, trace.ThreadStart, "A", "", "", 5),
		ev(0, trace.ContextSwitch, "A", "", "", 0),
		ev(5, trace.ThreadStart, "C", "", "A", 3),
		ev(12, trace.ThreadEnd, "A", "", "", 0),
		ev(12, trace.ContextSwitch, "C", "", "", 0),
		ev(30, trace.ThreadEnd, "C", "", "", 0),
	}
	g1 := mustBuild(t, events)
	g2 := mustBuild(t, append([]trace.Event(nil), events...))
	a1, a2 := mustPath(t, g1), mustPath(t, g2)
	var b1, b2 bytes.Buffer
	RenderReport(&b1, g1, a1, 5)
	RenderReport(&b2, g2, a2, 5)
	if b1.String() != b2.String() {
		t.Fatalf("reports differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
}

func TestSiteRecorder(t *testing.T) {
	r := NewSiteRecorder()
	// Contiguous same-site charges coalesce.
	r.Add("T", 5, 5, "f", 3)
	r.Add("T", 9, 4, "f", 3)
	r.Add("T", 12, 3, "g", 1)
	if got := len(r.charges["T"]); got != 2 {
		t.Fatalf("charges = %d, want 2 after coalescing", got)
	}

	g := mustBuild(t, []trace.Event{
		ev(0, trace.ThreadStart, "T", "", "", 5),
		ev(0, trace.ContextSwitch, "T", "", "", 0),
		ev(12, trace.ThreadEnd, "T", "", "", 0),
	})
	a := mustPath(t, g)
	r.AttachSites(a)
	if got := a.Sites[SiteKey{Method: "f", PC: 3}]; got != 9 {
		t.Fatalf("site f@3 = %d, want 9", got)
	}
	if got := a.Sites[SiteKey{Method: "g", PC: 1}]; got != 3 {
		t.Fatalf("site g@1 = %d, want 3", got)
	}
}

func TestFoldedOutput(t *testing.T) {
	g := mustBuild(t, []trace.Event{
		ev(0, trace.ThreadStart, "A", "", "", 5),
		ev(0, trace.ThreadStart, "B", "", "", 5),
		ev(0, trace.ContextSwitch, "A", "", "", 0),
		ev(5, trace.MonitorAcquired, "A", "M", "", 0),
		ev(10, trace.ContextSwitch, "B", "", "", 0),
		ev(10, trace.MonitorBlocked, "B", "M", "A", 0),
		ev(12, trace.ContextSwitch, "A", "", "", 0),
		ev(15, trace.MonitorExit, "A", "M", "", 0),
		ev(20, trace.ThreadEnd, "A", "", "", 0),
		ev(20, trace.ContextSwitch, "B", "", "", 0),
		ev(20, trace.MonitorAcquired, "B", "M", "", 0),
		ev(30, trace.ThreadEnd, "B", "", "", 0),
	})
	a := mustPath(t, g)
	var buf bytes.Buffer
	if err := WriteFolded(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "B;block;M 10") {
		t.Fatalf("folded output missing critical block line:\n%s", buf.String())
	}
	buf.Reset()
	if err := WritePerfetto(&buf, g, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"traceEvents"`) || !strings.Contains(out, `"critical"`) {
		t.Fatalf("perfetto output missing critical flagging:\n%.400s", out)
	}
}

// The what-if engine refuses to report when the zero-perturbation control
// diverges, and converts infeasible-perturbation panics into per-
// experiment errors.
func TestRunWhatIf(t *testing.T) {
	baseline := Outcome{Clock: 100, Fingerprint: "fp"}
	runs := 0
	run := func(p *core.Perturb) (Outcome, error) {
		runs++
		if p.Uncontended["bad"] {
			panic("core: whatif: Wait on bad")
		}
		if p.Uncontended["M"] {
			return Outcome{Clock: 80, Fingerprint: "fp2"}, nil
		}
		return baseline, nil
	}
	exps := []Experiment{
		{Name: "uncontended:M", Target: "M", Kind: "uncontended", Perturb: &core.Perturb{Uncontended: map[string]bool{"M": true}}},
		{Name: "uncontended:bad", Target: "bad", Kind: "uncontended", Perturb: &core.Perturb{Uncontended: map[string]bool{"bad": true}}},
	}
	w, err := RunWhatIf(baseline, run, exps)
	if err != nil {
		t.Fatal(err)
	}
	if !w.ControlOK {
		t.Fatal("control failed, want tick-identical")
	}
	if w.Results[0].SpeedupTicks != 20 {
		t.Fatalf("speedup = %d, want 20", w.Results[0].SpeedupTicks)
	}
	if w.Results[1].Err == "" || !strings.Contains(w.Results[1].Err, "infeasible") {
		t.Fatalf("infeasible experiment err = %q", w.Results[1].Err)
	}

	// Nondeterministic harness: control mismatch must be flagged.
	bad := func(p *core.Perturb) (Outcome, error) { return Outcome{Clock: 99, Fingerprint: "x"}, nil }
	w2, err := RunWhatIf(baseline, bad, nil)
	if err != nil || w2.ControlOK {
		t.Fatalf("ControlOK = %v err = %v, want failed control", w2.ControlOK, err)
	}
	var buf bytes.Buffer
	RenderWhatIf(&buf, w2)
	if !strings.Contains(buf.String(), "CONTROL FAILED") {
		t.Fatalf("render missing control failure:\n%s", buf.String())
	}
}

func TestSuggestExperimentsOrdering(t *testing.T) {
	a := &Attribution{
		Clock:     100,
		CritBlock: map[string]simtime.Ticks{"M_crit": 40, "M_minor": 5},
		RawBlock:  map[string]simtime.Ticks{"M_hot": 70, "M_crit": 40, "M_minor": 5},
		CritWaste: map[string]simtime.Ticks{},
	}
	exps := SuggestExperiments(a, 2)
	if len(exps) < 3 {
		t.Fatalf("experiments = %+v, want critical + raw suggestions", exps)
	}
	if exps[0].Target != "M_crit" {
		t.Fatalf("first experiment targets %q, want the top critical monitor", exps[0].Target)
	}
	var hasHot bool
	for _, e := range exps {
		if e.Target == "M_hot" {
			hasHot = true
		}
	}
	if !hasHot {
		t.Fatalf("experiments %+v missing the hottest-by-raw monitor", exps)
	}
}
