package prof

import (
	"fmt"
	"io"
	"net/http"
)

// Live endpoint. Handler serves:
//
//	/metrics               Prometheus text format: per-dimension tick
//	                       totals, plus whatever the extra callback writes
//	                       (rvmrun feeds the obs.Metrics registry through
//	                       it).
//	/debug/pprof/          HTML index of the profile downloads.
//	/debug/pprof/<dim>     gzipped pprof protobuf for one dimension
//	                       (work, waste, block, sched).
//	/debug/pprof/<dim>.folded
//	                       the same dimension as folded stacks.
//
// Every request snapshots the profiler under its lock, so scraping is safe
// while the VM runs.

// Handler returns the live-profiling HTTP handler. extra, if non-nil, is
// invoked after the profiler's own /metrics output to append further
// Prometheus text-format metrics.
func Handler(p *Profiler, extra func(io.Writer)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprintf(w, "# HELP rvm_profile_ticks_total Virtual ticks attributed per profile dimension.\n")
		fmt.Fprintf(w, "# TYPE rvm_profile_ticks_total counter\n")
		for _, d := range Dims() {
			fmt.Fprintf(w, "rvm_profile_ticks_total{dim=%q} %d\n", d.String(), p.Total(d))
		}
		if extra != nil {
			extra(w)
		}
	})
	mux.HandleFunc("/debug/pprof/", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Path[len("/debug/pprof/"):]
		if name == "" {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			fmt.Fprintf(w, "<html><body><h1>rvm virtual-time profiles</h1><ul>\n")
			for _, d := range Dims() {
				fmt.Fprintf(w, `<li><a href="/debug/pprof/%[1]s">%[1]s</a> (<a href="/debug/pprof/%[1]s.folded">folded</a>)</li>`+"\n", d.String())
			}
			fmt.Fprintf(w, "</ul><p><a href=\"/metrics\">/metrics</a></p></body></html>\n")
			return
		}
		folded := false
		if n := len(name) - len(".folded"); n > 0 && name[n:] == ".folded" {
			folded, name = true, name[:n]
		}
		dim, ok := dimByName(name)
		if !ok {
			http.NotFound(w, r)
			return
		}
		snap := p.Snapshot()
		if folded {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteFolded(w, dim)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", fmt.Sprintf(`attachment; filename=%q`, name+".pb.gz"))
		snap.WritePprof(w, dim)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/debug/pprof/", http.StatusFound)
	})
	return mux
}

func dimByName(name string) (Dim, bool) {
	for _, d := range Dims() {
		if d.String() == name {
			return d, true
		}
	}
	return 0, false
}
