package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, h *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := h.Client().Get(h.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestHandlerEndpoints(t *testing.T) {
	p := New()
	tp := p.Thread("T")
	tp.SetPC(2)
	tp.Tick(40)
	tp.BlockTick(3, "M")
	srv := httptest.NewServer(Handler(p, func(w io.Writer) {
		fmt.Fprintln(w, "rvm_extra_metric 1")
	}))
	defer srv.Close()

	code, body, ct := get(t, srv, "/metrics")
	if code != 200 || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics: code %d, content-type %q", code, ct)
	}
	for _, want := range []string{
		`rvm_profile_ticks_total{dim="work"} 40`,
		`rvm_profile_ticks_total{dim="block"} 3`,
		`rvm_profile_ticks_total{dim="waste"} 0`,
		"rvm_extra_metric 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body, _ = get(t, srv, "/debug/pprof/")
	if code != 200 {
		t.Fatalf("/debug/pprof/ index: code %d", code)
	}
	for _, d := range Dims() {
		if !strings.Contains(body, "/debug/pprof/"+d.String()) {
			t.Errorf("index missing link to %s:\n%s", d, body)
		}
	}

	code, body, _ = get(t, srv, "/debug/pprof/work")
	if code != 200 {
		t.Fatalf("/debug/pprof/work: code %d", code)
	}
	zr, err := gzip.NewReader(bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("work profile download is not gzipped: %v", err)
	}
	if _, err := io.ReadAll(zr); err != nil {
		t.Fatalf("work profile gzip stream: %v", err)
	}

	code, body, _ = get(t, srv, "/debug/pprof/work.folded")
	if code != 200 || !strings.Contains(body, "T@2 40") {
		t.Errorf("/debug/pprof/work.folded: code %d body %q", code, body)
	}

	if code, _, _ = get(t, srv, "/debug/pprof/bogus"); code != 404 {
		t.Errorf("unknown profile: code %d, want 404", code)
	}
	if code, _, _ = get(t, srv, "/nope"); code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}
}

// TestConcurrentScrape exercises the mid-run contract under the race
// detector: one goroutine plays the VM (ticking, rolling back), others
// scrape every endpoint concurrently.
func TestConcurrentScrape(t *testing.T) {
	p := New()
	srv := httptest.NewServer(Handler(p, nil))
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		tp := p.Thread("vm")
		for i := 0; i < 500; i++ {
			tp.SetPC(i % 17)
			tp.SectionEnter()
			tp.Tick(2)
			if i%3 == 0 {
				tp.SectionRollback(0)
			} else {
				tp.SectionCommit()
			}
			tp.BlockTick(1, "M")
			p.SchedTick("idle", 1)
		}
	}()

	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/debug/pprof/work", "/debug/pprof/waste.folded"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := srv.Client().Get(srv.URL + path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("%s: code %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	wg.Wait()
	<-done

	// After the writer finishes: 500 iterations x 2 ticks split across
	// work/waste, plus the overlay dimensions.
	s := p.Snapshot()
	if got := s.Totals[Work] + s.Totals[Waste]; got != 1000 {
		t.Errorf("work+waste = %d, want 1000", got)
	}
	if s.Totals[Block] != 500 || s.Totals[Sched] != 500 {
		t.Errorf("block=%d sched=%d, want 500/500", s.Totals[Block], s.Totals[Sched])
	}
}
