package prof

import (
	"compress/gzip"
	"io"
	"sort"
)

// pprof profile.proto export, hand-encoded. The module has no dependencies,
// so instead of importing github.com/google/pprof we emit the protobuf wire
// format directly; the schema is small and stable (profile.proto from the
// pprof repo). Output is gzip-compressed, as `go tool pprof` expects.
//
// Message layout used (field numbers from profile.proto):
//
//	Profile:   sample_type=1  sample=2  mapping=3  location=4  function=5
//	           string_table=6 period_type=11 period=12
//	ValueType: type=1 unit=2           (string-table indices)
//	Sample:    location_id=1 value=2   (both packed repeated)
//	Location:  id=1 line=4
//	Line:      function_id=1 line=2
//	Function:  id=1 name=2 system_name=3 filename=4
//	Mapping:   id=1
//
// time_nanos is deliberately omitted so profiles are byte-for-byte
// deterministic across runs.

// protoBuf is a minimal protobuf writer.
type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// tag writes a field key. wire: 0 = varint, 2 = length-delimited.
func (p *protoBuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

func (p *protoBuf) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.varint(uint64(v))
}

func (p *protoBuf) bytesField(field int, b []byte) {
	p.tag(field, 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *protoBuf) packedInt64s(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vs {
		inner.varint(uint64(v))
	}
	p.bytesField(field, inner.b)
}

// WritePprof encodes one dimension of the snapshot as a gzipped pprof
// protobuf profile with a single "ticks"-valued sample type. Stacks are
// leaf-first, matching pprof's location order. Each distinct (function, pc)
// pair becomes one Location so per-pc attribution survives into the pprof
// UI ("lines" granularity); PCs are rendered as line numbers.
func (s *Snapshot) WritePprof(w io.Writer, dim Dim) error {
	strings := []string{""} // string table; index 0 must be ""
	strIdx := map[string]int64{"": 0}
	str := func(v string) int64 {
		if i, ok := strIdx[v]; ok {
			return i
		}
		i := int64(len(strings))
		strings = append(strings, v)
		strIdx[v] = i
		return i
	}

	type funcKey struct{ name string }
	funcIDs := map[funcKey]uint64{}
	var funcs []funcKey
	type locKey struct {
		fn uint64
		pc int
	}
	locIDs := map[locKey]uint64{}
	var locs []locKey

	functionID := func(name string) uint64 {
		k := funcKey{name}
		if id, ok := funcIDs[k]; ok {
			return id
		}
		id := uint64(len(funcs) + 1)
		funcIDs[k] = id
		funcs = append(funcs, k)
		return id
	}
	locationID := func(f Frame) uint64 {
		k := locKey{fn: functionID(f.Func), pc: f.PC}
		if id, ok := locIDs[k]; ok {
			return id
		}
		id := uint64(len(locs) + 1)
		locIDs[k] = id
		locs = append(locs, k)
		return id
	}

	var out protoBuf

	// sample_type: one ValueType {type: <dim>, unit: "ticks"}.
	var vt protoBuf
	vt.int64Field(1, str(dim.String()))
	vt.int64Field(2, str("ticks"))
	out.bytesField(1, vt.b)

	for _, smp := range s.Dims[dim] {
		ids := make([]int64, len(smp.Stack))
		for i, f := range smp.Stack {
			ids[i] = int64(locationID(f))
		}
		var sm protoBuf
		sm.packedInt64s(1, ids)
		sm.packedInt64s(2, []int64{smp.Value})
		out.bytesField(2, sm.b)
	}

	// One trivial mapping (id 1); pprof tolerates locations without a
	// mapping but some front ends render better with one present.
	var mp protoBuf
	mp.int64Field(1, 1)
	out.bytesField(3, mp.b)

	fileIdx := str("rvm")
	for i, lk := range locs {
		var loc protoBuf
		loc.int64Field(1, int64(i)+1)
		var line protoBuf
		line.int64Field(1, int64(lk.fn))
		line.int64Field(2, int64(lk.pc))
		loc.bytesField(4, line.b)
		out.bytesField(4, loc.b)
	}
	for i, fk := range funcs {
		var fn protoBuf
		fn.int64Field(1, int64(i)+1)
		nameIdx := str(fk.name)
		fn.int64Field(2, nameIdx)
		fn.int64Field(3, nameIdx)
		fn.int64Field(4, fileIdx)
		out.bytesField(5, fn.b)
	}
	for _, sv := range strings {
		out.bytesField(6, []byte(sv))
	}

	// period_type {ticks, ticks}, period 1: every tick is sampled.
	var pt protoBuf
	pt.int64Field(1, str("ticks"))
	pt.int64Field(2, str("ticks"))
	out.bytesField(11, pt.b)
	out.int64Field(12, 1)

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		gz.Close()
		return err
	}
	return gz.Close()
}

// WriteFolded renders one dimension in Brendan Gregg's folded-stack
// format — `root;caller;leaf count` per line, root-first — ready for
// flamegraph.pl or speedscope. Frames with a pc render as `func@pc`.
// Lines are aggregated and sorted for deterministic output.
func (s *Snapshot) WriteFolded(w io.Writer, dim Dim) error {
	agg := make(map[string]int64)
	for _, smp := range s.Dims[dim] {
		line := ""
		for i := len(smp.Stack) - 1; i >= 0; i-- {
			f := smp.Stack[i]
			if line != "" {
				line += ";"
			}
			line += f.Func
			if f.PC != 0 {
				line += "@" + itoa(f.PC)
			}
		}
		agg[line] += smp.Value
	}
	lines := make([]string, 0, len(agg))
	for l := range agg {
		lines = append(lines, l)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := io.WriteString(w, l+" "+itoa64(agg[l])+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func itoa(v int) string { return itoa64(int64(v)) }

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
