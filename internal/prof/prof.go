// Package prof implements a deterministic virtual-time profiler for the
// reproduction VM, in the style of Go's CPU/block/mutex profiles. Every
// tick a thread charges to the virtual clock is attributed to the thread's
// current (method, PC) site — stamped by the interpreter at each
// instruction — and bucketed into one of four profile dimensions:
//
//   - Work:  committed execution,
//   - Waste: execution later retracted by a rollback (reclassified from
//     Work when the runtime's SectionRollback hook fires, reconciling
//     exactly with core.Stats.WastedTicks),
//   - Block: virtual time spent parked on a monitor, attributed to both
//     the waiter's site and the contended monitor (like Go's mutex
//     profile),
//   - Sched: scheduler overhead — context-switch cost and discrete-event
//     idle jumps, charged to the clock by no thread.
//
// Work, Waste and Sched partition the virtual timeline exactly: their
// totals sum to the final clock value of a run that profiles every thread.
// Block is overlay accounting — on the uniprocessor the clock advances on
// behalf of whichever thread runs while the waiter is parked, so blocked
// time overlaps Work/Waste of other threads and can exceed wall time when
// several threads wait at once.
//
// The profiler is driven by hooks in internal/core and internal/sched
// behind the core.Config.Profiler knob; nil = zero cost, the same contract
// as Config.Observer and Config.Race. All shared state is mutex-guarded so
// a live HTTP endpoint can snapshot profiles mid-run.
package prof

import (
	"sort"
	"sync"

	"repro/internal/simtime"
)

// Dim is one of the four profile dimensions.
type Dim int

// Profile dimensions.
const (
	Work Dim = iota
	Waste
	Block
	Sched
	NumDims
)

var dimNames = [NumDims]string{"work", "waste", "block", "sched"}

func (d Dim) String() string {
	if d >= 0 && d < NumDims {
		return dimNames[d]
	}
	return "dim(?)"
}

// Dims lists every dimension, in declaration order.
func Dims() []Dim { return []Dim{Work, Waste, Block, Sched} }

// node is one interned call-tree node: a method activation context. The
// parent chain reconstructs the stack; callPC is the caller's pc at the
// call site (0 for roots).
type node struct {
	parent int32
	fn     int32
	callPC int32
}

// sampleKey keys one accumulation cell: the innermost call node, the
// stamped pc, and (Block dimension only) the interned contended-monitor
// pseudo-frame.
type sampleKey struct {
	node int32
	pc   int32
	aux  int32
}

// Profiler accumulates tick attributions for one VM instance. Safe for
// concurrent use: the VM threads mutate it under mu, and Snapshot may be
// called from any goroutine (e.g. the live HTTP endpoint) while the VM
// runs.
type Profiler struct {
	mu        sync.Mutex
	funcIDs   map[string]int32
	funcNames []string // funcNames[id-1]
	nodes     []node   // nodes[id-1]
	nodeIDs   map[node]int32
	counts    [NumDims]map[sampleKey]int64
	totals    [NumDims]int64

	// funcWork accumulates gross Work ticks per function — the hotness
	// feed for the interpreter's compiling tier. Gross deliberately:
	// rollback reclassification does not subtract, since a method that
	// burns ticks in doomed sections is still hot.
	funcWork map[int32]int64

	// funcTier tags functions with the execution tier that last compiled
	// them ("threaded", "opt"), surfaced on attributed sites in Top.
	funcTier map[int32]string

	// sampler, when set, observes every Work tick charge with its leaf
	// frame — the per-tick feed the causal profiler intersects with the
	// critical path for exact (method, pc) attribution. clock supplies the
	// virtual time at the charge (the end of the charged interval); it is
	// wired by core.New. Both run on the VM goroutine.
	sampler func(thread string, end, d simtime.Ticks, fn string, pc int)
	clock   func() simtime.Ticks
}

// New creates an empty profiler.
func New() *Profiler {
	p := &Profiler{
		funcIDs:  make(map[string]int32),
		nodeIDs:  make(map[node]int32),
		funcWork: make(map[int32]int64),
		funcTier: make(map[int32]string),
	}
	for d := range p.counts {
		p.counts[d] = make(map[sampleKey]int64)
	}
	return p
}

// internFunc interns a function (method, thread, or pseudo-frame) name.
// Caller holds mu.
func (p *Profiler) internFunc(name string) int32 {
	if id, ok := p.funcIDs[name]; ok {
		return id
	}
	p.funcNames = append(p.funcNames, name)
	id := int32(len(p.funcNames))
	p.funcIDs[name] = id
	return id
}

// internNode interns a call-tree node. Caller holds mu.
func (p *Profiler) internNode(n node) int32 {
	if id, ok := p.nodeIDs[n]; ok {
		return id
	}
	p.nodes = append(p.nodes, n)
	id := int32(len(p.nodes))
	p.nodeIDs[n] = id
	return id
}

// add accumulates d ticks into one cell. Caller holds mu.
func (p *Profiler) add(dim Dim, key sampleKey, d int64) {
	p.counts[dim][key] += d
	p.totals[dim] += d
}

// SchedTick attributes scheduler-level ticks — context-switch cost or a
// discrete-event idle jump — that no thread charged. The label becomes a
// synthetic root frame ("<context-switch>", "<idle>").
func (p *Profiler) SchedTick(label string, d simtime.Ticks) {
	if d <= 0 {
		return
	}
	p.mu.Lock()
	n := p.internNode(node{fn: p.internFunc("<" + label + ">")})
	p.add(Sched, sampleKey{node: n}, int64(d))
	p.mu.Unlock()
}

// FuncWork returns the gross Work ticks attributed to function fn so far
// — the deterministic hotness feed consumed by the compiling tier.
// Unknown functions return 0.
func (p *Profiler) FuncWork(fn string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, ok := p.funcIDs[fn]
	if !ok {
		return 0
	}
	return p.funcWork[id]
}

// SetFuncTier tags fn with the execution tier that compiled it; Top
// surfaces the tag on attributed sites.
func (p *Profiler) SetFuncTier(fn, tier string) {
	p.mu.Lock()
	p.funcTier[p.internFunc(fn)] = tier
	p.mu.Unlock()
}

// Total returns one dimension's accumulated ticks.
func (p *Profiler) Total(dim Dim) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totals[dim]
}

// ---------------------------------------------------------------------------
// Per-thread handle.

// journalEntry records one Work attribution made inside a synchronized
// section, so a later rollback can reclassify it as Waste.
type journalEntry struct {
	key   sampleKey
	ticks int64
}

// ThreadProf is one thread's attribution handle. The call stack, stamped
// pc, and journal are owned by the VM thread (the scheduler serializes all
// thread execution), so only the shared accumulation tables take the
// profiler lock.
type ThreadProf struct {
	p     *Profiler
	name  string
	stack []int32 // interned nodes; stack[0] is the thread root
	pc    int32   // current bytecode pc, stamped by the interpreter

	// journal records Work attributions since the outermost revocable
	// section entry; marks[i] is its length when core frame i was pushed.
	journal []journalEntry
	marks   []int
}

// Thread registers a thread root (named after the thread) and returns its
// attribution handle.
func (p *Profiler) Thread(name string) *ThreadProf {
	p.mu.Lock()
	root := p.internNode(node{fn: p.internFunc(name)})
	p.mu.Unlock()
	return &ThreadProf{p: p, name: name, stack: []int32{root}}
}

// SetClock wires the virtual-time source consulted by the tick sampler;
// core.New calls it when the profiler is attached to a runtime.
func (p *Profiler) SetClock(now func() simtime.Ticks) { p.clock = now }

// SetSampler installs the per-charge observer: fn is the leaf method name
// ("" for thread-root charges), end the virtual time at the end of the
// charged [end-d, end) interval. The sampler is called on the VM goroutine
// without the profiler lock held and must not call back into the profiler.
func (p *Profiler) SetSampler(s func(thread string, end, d simtime.Ticks, fn string, pc int)) {
	p.sampler = s
}

func (tp *ThreadProf) top() int32 { return tp.stack[len(tp.stack)-1] }

// SetPC stamps the current bytecode pc; subsequent ticks are attributed to
// (current method, pc).
func (tp *ThreadProf) SetPC(pc int) { tp.pc = int32(pc) }

// Depth returns the number of pushed method frames (the thread root does
// not count).
func (tp *ThreadProf) Depth() int { return len(tp.stack) - 1 }

// Push enters a method: a child node of the current top, recording the
// caller's pc as the call site.
func (tp *ThreadProf) Push(fn string) {
	p := tp.p
	p.mu.Lock()
	n := p.internNode(node{parent: tp.top(), fn: p.internFunc(fn), callPC: tp.pc})
	p.mu.Unlock()
	tp.stack = append(tp.stack, n)
	tp.pc = 0
}

// PopTo truncates the method stack to depth frames (as counted by Depth).
// Interpreters call it after any unwinding — return, exception, rollback —
// so multi-frame discards stay in sync.
func (tp *ThreadProf) PopTo(depth int) {
	if depth < 0 {
		depth = 0
	}
	if n := depth + 1; n < len(tp.stack) {
		tp.stack = tp.stack[:n]
	}
}

// Tick attributes d charged CPU ticks to the current site as Work,
// journaling the attribution when inside a synchronized section so a
// rollback can retract it.
func (tp *ThreadProf) Tick(d simtime.Ticks) {
	if d <= 0 {
		return
	}
	key := sampleKey{node: tp.top(), pc: tp.pc}
	p := tp.p
	var leaf string
	p.mu.Lock()
	p.add(Work, key, int64(d))
	if key.node != 0 {
		fn := p.nodes[key.node-1].fn
		p.funcWork[fn] += int64(d)
		if p.sampler != nil && len(tp.stack) > 1 {
			leaf = p.funcNames[fn-1]
		}
	}
	p.mu.Unlock()
	if p.sampler != nil && p.clock != nil {
		p.sampler(tp.name, p.clock(), d, leaf, int(tp.pc))
	}
	if len(tp.marks) > 0 {
		tp.journal = append(tp.journal, journalEntry{key: key, ticks: int64(d)})
	}
}

// Site returns the leaf frame the next tick charge would attribute to: the
// current method name ("" at the thread root) and bytecode pc. The what-if
// engine keys Perturb.Scale lookups by it.
func (tp *ThreadProf) Site() (fn string, pc int) {
	if len(tp.stack) > 1 {
		p := tp.p
		p.mu.Lock()
		fn = p.funcNames[p.nodes[tp.top()-1].fn-1]
		p.mu.Unlock()
	}
	return fn, int(tp.pc)
}

// BlockTick attributes d ticks parked on monitor mon to the current site.
// The monitor becomes a pseudo-leaf frame ("monitor:NAME") so block
// profiles aggregate both by waiting site and by contended monitor.
// Blocked time is not CPU, so it is never journaled: a rollback's wasted
// ticks are the victim's own charges only.
func (tp *ThreadProf) BlockTick(d simtime.Ticks, mon string) {
	if d <= 0 {
		return
	}
	p := tp.p
	p.mu.Lock()
	key := sampleKey{node: tp.top(), pc: tp.pc, aux: p.internFunc("monitor:" + mon)}
	p.add(Block, key, int64(d))
	p.mu.Unlock()
}

// SectionEnter records a synchronized-section frame push, aligning the
// journal with the runtime's frame stack (mirrors race.Detector.SectionEnter).
func (tp *ThreadProf) SectionEnter() {
	tp.marks = append(tp.marks, len(tp.journal))
}

// SectionCommit records a normal section exit. When the outermost frame
// commits, the journaled attributions become permanent Work and the
// journal resets.
func (tp *ThreadProf) SectionCommit() {
	n := len(tp.marks)
	if n == 0 {
		return
	}
	tp.marks = tp.marks[:n-1]
	if n == 1 {
		tp.journal = tp.journal[:0]
	}
}

// SectionRollback reclassifies every attribution journaled since frame idx
// was pushed from Work to Waste — the profiler's view of the undo replay.
// The runtime calls it where it computes Stats.WastedTicks, and the charges
// journaled in between (instruction costs, barrier costs, log-entry costs,
// the undo replay itself) are exactly the CPU delta that computation
// measures, so the Waste dimension reconciles tick-for-tick.
func (tp *ThreadProf) SectionRollback(idx int) {
	if idx < 0 || idx >= len(tp.marks) {
		return
	}
	m := tp.marks[idx]
	p := tp.p
	p.mu.Lock()
	for _, e := range tp.journal[m:] {
		p.add(Work, e.key, -e.ticks)
		if p.counts[Work][e.key] == 0 {
			delete(p.counts[Work], e.key)
		}
		p.add(Waste, e.key, e.ticks)
	}
	p.mu.Unlock()
	tp.journal = tp.journal[:m]
	tp.marks = tp.marks[:idx]
}

// WaitTruncate commits the journal in place: Object.wait released the
// monitor (or marked the nest non-revocable), so no attribution made so
// far can be rolled back anymore (mirrors race.Detector.WaitTruncate).
func (tp *ThreadProf) WaitTruncate() {
	tp.journal = tp.journal[:0]
	for i := range tp.marks {
		tp.marks[i] = 0
	}
}

// ---------------------------------------------------------------------------
// Snapshots.

// Frame is one resolved stack frame of a sample. PC is the bytecode pc (0
// for thread roots and pseudo-frames).
type Frame struct {
	Func string
	PC   int
}

// Sample is one resolved accumulation cell: a stack (leaf first, thread
// root last) and its tick count.
type Sample struct {
	Stack []Frame
	Value int64
}

// Snapshot is an immutable copy of the profiler's state, safe to export
// while the VM keeps running.
type Snapshot struct {
	Dims   [NumDims][]Sample
	Totals [NumDims]int64

	// FuncTier maps function names to the execution tier that compiled
	// them (absent = interpreted only).
	FuncTier map[string]string
}

// Snapshot resolves every cell into stacks under the lock and returns a
// deterministic (value-descending, then stack-ordered) copy.
func (p *Profiler) Snapshot() *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &Snapshot{Totals: p.totals, FuncTier: make(map[string]string, len(p.funcTier))}
	for id, tier := range p.funcTier {
		s.FuncTier[p.funcNames[id-1]] = tier
	}
	for d := Dim(0); d < NumDims; d++ {
		samples := make([]Sample, 0, len(p.counts[d]))
		for key, v := range p.counts[d] {
			if v == 0 {
				continue
			}
			samples = append(samples, Sample{Stack: p.resolveStack(key), Value: v})
		}
		sort.Slice(samples, func(i, j int) bool {
			if samples[i].Value != samples[j].Value {
				return samples[i].Value > samples[j].Value
			}
			return stackLess(samples[i].Stack, samples[j].Stack)
		})
		s.Dims[d] = samples
	}
	return s
}

// resolveStack renders a sample key as frames, leaf first. Caller holds mu.
func (p *Profiler) resolveStack(key sampleKey) []Frame {
	var stack []Frame
	if key.aux != 0 {
		stack = append(stack, Frame{Func: p.funcNames[key.aux-1]})
	}
	pc := key.pc
	for id := key.node; id != 0; {
		n := p.nodes[id-1]
		stack = append(stack, Frame{Func: p.funcNames[n.fn-1], PC: int(pc)})
		pc = n.callPC
		id = n.parent
	}
	return stack
}

func stackLess(a, b []Frame) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Func != b[i].Func {
			return a[i].Func < b[i].Func
		}
		if a[i].PC != b[i].PC {
			return a[i].PC < b[i].PC
		}
	}
	return len(a) < len(b)
}

// TopSite is one leaf site in a Top ranking. Tier, when non-empty, names
// the execution tier that compiled the function ("threaded", "opt").
type TopSite struct {
	Func  string `json:"func"`
	PC    int    `json:"pc"`
	Ticks int64  `json:"ticks"`
	Tier  string `json:"tier,omitempty"`
}

// Top ranks one dimension's leaf sites by accumulated ticks and returns
// the first n (all when n <= 0). For Block the leaf is the contended
// monitor's pseudo-frame.
func (s *Snapshot) Top(dim Dim, n int) []TopSite {
	agg := make(map[Frame]int64)
	for _, smp := range s.Dims[dim] {
		if len(smp.Stack) == 0 {
			continue
		}
		agg[smp.Stack[0]] += smp.Value
	}
	sites := make([]TopSite, 0, len(agg))
	for f, v := range agg {
		sites = append(sites, TopSite{Func: f.Func, PC: f.PC, Ticks: v, Tier: s.FuncTier[f.Func]})
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Ticks != sites[j].Ticks {
			return sites[i].Ticks > sites[j].Ticks
		}
		if sites[i].Func != sites[j].Func {
			return sites[i].Func < sites[j].Func
		}
		return sites[i].PC < sites[j].PC
	})
	if n > 0 && len(sites) > n {
		sites = sites[:n]
	}
	return sites
}
