package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strings"
	"testing"
)

// --- minimal profile.proto decoder, just enough to verify the encoder ---

type pbField struct {
	num  int
	vint uint64
	body []byte
}

func pbFields(t *testing.T, b []byte) []pbField {
	t.Helper()
	var out []pbField
	for len(b) > 0 {
		key, n := pbVarint(b)
		if n == 0 {
			t.Fatalf("truncated varint key")
		}
		b = b[n:]
		f := pbField{num: int(key >> 3)}
		switch key & 7 {
		case 0:
			f.vint, n = pbVarint(b)
			if n == 0 {
				t.Fatalf("truncated varint value (field %d)", f.num)
			}
			b = b[n:]
		case 2:
			ln, n := pbVarint(b)
			b = b[n:]
			if uint64(len(b)) < ln {
				t.Fatalf("truncated bytes value (field %d)", f.num)
			}
			f.body, b = b[:ln], b[ln:]
		default:
			t.Fatalf("unexpected wire type %d (field %d)", key&7, f.num)
		}
		out = append(out, f)
	}
	return out
}

func pbVarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

func pbPacked(b []byte) []int64 {
	var out []int64
	for len(b) > 0 {
		v, n := pbVarint(b)
		out = append(out, int64(v))
		b = b[n:]
	}
	return out
}

// decodedProfile is the decoder's view of one emitted profile.
type decodedProfile struct {
	strings    []string
	sampleType [2]int64           // type, unit string indices
	samples    []decodedSample    // location ids + value
	locs       map[int64][2]int64 // id -> function id, line
	funcs      map[int64][3]int64 // id -> name, system_name, filename indices
	periodType [2]int64
	period     int64
}

type decodedSample struct {
	locIDs []int64
	value  int64
}

func decodeProfile(t *testing.T, gzipped []byte) decodedProfile {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(gzipped))
	if err != nil {
		t.Fatalf("profile is not gzipped: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	p := decodedProfile{locs: map[int64][2]int64{}, funcs: map[int64][3]int64{}}
	for _, f := range pbFields(t, raw) {
		switch f.num {
		case 1: // sample_type
			for _, vf := range pbFields(t, f.body) {
				p.sampleType[vf.num-1] = int64(vf.vint)
			}
		case 2: // sample
			var s decodedSample
			for _, sf := range pbFields(t, f.body) {
				switch sf.num {
				case 1:
					s.locIDs = pbPacked(sf.body)
				case 2:
					vs := pbPacked(sf.body)
					if len(vs) != 1 {
						t.Fatalf("sample has %d values, want 1", len(vs))
					}
					s.value = vs[0]
				}
			}
			p.samples = append(p.samples, s)
		case 4: // location
			var id, fn, line int64
			for _, lf := range pbFields(t, f.body) {
				switch lf.num {
				case 1:
					id = int64(lf.vint)
				case 4:
					for _, ln := range pbFields(t, lf.body) {
						switch ln.num {
						case 1:
							fn = int64(ln.vint)
						case 2:
							line = int64(ln.vint)
						}
					}
				}
			}
			p.locs[id] = [2]int64{fn, line}
		case 5: // function
			var id int64
			var rest [3]int64
			for _, ff := range pbFields(t, f.body) {
				switch ff.num {
				case 1:
					id = int64(ff.vint)
				case 2, 3, 4:
					rest[ff.num-2] = int64(ff.vint)
				}
			}
			p.funcs[id] = rest
		case 6: // string_table
			p.strings = append(p.strings, string(f.body))
		case 11:
			for _, vf := range pbFields(t, f.body) {
				p.periodType[vf.num-1] = int64(vf.vint)
			}
		case 12:
			p.period = int64(f.vint)
		}
	}
	return p
}

func testSnapshot() *Snapshot {
	p := New()
	tp := p.Thread("main")
	tp.SetPC(3)
	tp.Tick(10)
	tp.Push("inner")
	tp.SetPC(8)
	tp.Tick(25)
	tp.SectionEnter()
	tp.SetPC(9)
	tp.Tick(7)
	tp.SectionRollback(0)
	tp.BlockTick(4, "Lock")
	p.SchedTick("idle", 2)
	return p.Snapshot()
}

func TestWritePprofDecodes(t *testing.T) {
	s := testSnapshot()
	var buf bytes.Buffer
	if err := s.WritePprof(&buf, Work); err != nil {
		t.Fatal(err)
	}
	p := decodeProfile(t, buf.Bytes())

	if len(p.strings) == 0 || p.strings[0] != "" {
		t.Fatalf("string table must start with the empty string: %q", p.strings)
	}
	str := func(i int64) string {
		if i < 0 || int(i) >= len(p.strings) {
			t.Fatalf("string index %d out of table (len %d)", i, len(p.strings))
		}
		return p.strings[i]
	}
	if got := str(p.sampleType[0]); got != "work" {
		t.Errorf("sample_type.type = %q, want work", got)
	}
	if got := str(p.sampleType[1]); got != "ticks" {
		t.Errorf("sample_type.unit = %q, want ticks", got)
	}
	if str(p.periodType[1]) != "ticks" || p.period != 1 {
		t.Errorf("period = %d %q, want 1 ticks", p.period, str(p.periodType[1]))
	}

	var total int64
	stacks := map[string]int64{}
	for _, smp := range p.samples {
		total += smp.value
		var frames []string
		for _, id := range smp.locIDs {
			loc, ok := p.locs[id]
			if !ok {
				t.Fatalf("sample references undefined location %d", id)
			}
			fn, ok := p.funcs[loc[0]]
			if !ok {
				t.Fatalf("location %d references undefined function %d", id, loc[0])
			}
			frames = append(frames, fmt.Sprintf("%s:%d", str(fn[0]), loc[1]))
		}
		stacks[strings.Join(frames, ";")] = smp.value
	}
	if total != s.Totals[Work] {
		t.Errorf("decoded sample values sum to %d, want work total %d", total, s.Totals[Work])
	}
	// Leaf-first: the committed inner tick renders callee before caller,
	// with the caller's line at the call-site pc.
	if v := stacks["inner:8;main:3"]; v != 25 {
		t.Errorf("stack inner:8;main:3 = %d, want 25; decoded stacks: %v", v, stacks)
	}
	for id, fn := range p.funcs {
		if str(fn[2]) != "rvm" {
			t.Errorf("function %d filename = %q, want rvm", id, str(fn[2]))
		}
	}
}

func TestWritePprofDeterministic(t *testing.T) {
	enc := func() []byte {
		var buf bytes.Buffer
		if err := testSnapshot().WritePprof(&buf, Waste); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Error("identical snapshots encode to different bytes")
	}
}

func TestWriteFolded(t *testing.T) {
	s := testSnapshot()
	var buf bytes.Buffer
	if err := s.WriteFolded(&buf, Work); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	// Root-first, `func@pc` frames (the caller renders its call-site pc),
	// aggregated and sorted.
	want := "main@3 10\nmain@3;inner@8 25\n"
	if got != want {
		t.Errorf("folded work profile:\n%q\nwant:\n%q", got, want)
	}

	buf.Reset()
	if err := s.WriteFolded(&buf, Block); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "main@3;inner@9;monitor:Lock 4\n" {
		t.Errorf("folded block profile = %q — the contended monitor must be the leaf", got)
	}
}
