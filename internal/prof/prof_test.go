package prof

import (
	"reflect"
	"testing"
)

// findSample returns the value of the sample whose leaf-first stack renders
// as the given (func, pc) frames, or 0 when absent.
func findSample(s *Snapshot, dim Dim, stack ...Frame) int64 {
	for _, smp := range s.Dims[dim] {
		if reflect.DeepEqual(smp.Stack, stack) {
			return smp.Value
		}
	}
	return 0
}

func TestTickAttribution(t *testing.T) {
	p := New()
	tp := p.Thread("T")
	tp.SetPC(3)
	tp.Tick(10)
	tp.Push("m")
	tp.SetPC(7)
	tp.Tick(5)
	tp.PopTo(0)
	tp.SetPC(4)
	tp.Tick(2)

	s := p.Snapshot()
	if got := s.Totals[Work]; got != 17 {
		t.Fatalf("work total = %d, want 17", got)
	}
	if v := findSample(s, Work, Frame{"T", 3}); v != 10 {
		t.Errorf("root site T@3 = %d ticks, want 10", v)
	}
	// The callee's stack records the caller's pc at the call site.
	if v := findSample(s, Work, Frame{"m", 7}, Frame{"T", 3}); v != 5 {
		t.Errorf("callee site m@7 under T@3 = %d ticks, want 5", v)
	}
	if v := findSample(s, Work, Frame{"T", 4}); v != 2 {
		t.Errorf("post-return site T@4 = %d ticks, want 2", v)
	}
	if tp.Depth() != 0 {
		t.Errorf("depth = %d after PopTo(0)", tp.Depth())
	}
}

func TestSectionRollbackReclassifies(t *testing.T) {
	p := New()
	tp := p.Thread("T")
	tp.SetPC(1)
	tp.Tick(100) // outside any section: permanent

	tp.SectionEnter()
	tp.SetPC(2)
	tp.Tick(30)
	tp.SectionEnter() // nested
	tp.SetPC(3)
	tp.Tick(12)
	tp.SectionRollback(0) // roll back the outermost frame

	s := p.Snapshot()
	if s.Totals[Work] != 100 || s.Totals[Waste] != 42 {
		t.Fatalf("work=%d waste=%d, want 100/42", s.Totals[Work], s.Totals[Waste])
	}
	// The retracted cells move wholesale: zeroed Work cells disappear.
	if v := findSample(s, Work, Frame{"T", 2}); v != 0 {
		t.Errorf("rolled-back work cell T@2 still present with %d ticks", v)
	}
	if v := findSample(s, Waste, Frame{"T", 2}); v != 30 {
		t.Errorf("waste cell T@2 = %d, want 30", v)
	}
	if v := findSample(s, Waste, Frame{"T", 3}); v != 12 {
		t.Errorf("waste cell T@3 = %d, want 12", v)
	}
	// The pre-section tick never entered the journal.
	if v := findSample(s, Work, Frame{"T", 1}); v != 100 {
		t.Errorf("permanent work T@1 = %d, want 100", v)
	}
	// Marks were truncated to idx: a re-execution re-enters from scratch.
	if len(tp.marks) != 0 || len(tp.journal) != 0 {
		t.Errorf("marks=%d journal=%d after rollback, want 0/0", len(tp.marks), len(tp.journal))
	}
}

func TestPartialRollbackKeepsOuterJournal(t *testing.T) {
	p := New()
	tp := p.Thread("T")
	tp.SectionEnter()
	tp.SetPC(1)
	tp.Tick(5)
	tp.SectionEnter()
	tp.SetPC(2)
	tp.Tick(7)
	tp.SectionRollback(1) // inner frame only

	if got := p.Total(Waste); got != 7 {
		t.Fatalf("waste = %d, want 7", got)
	}
	// The outer frame's journal survives: a later outer rollback retracts
	// the remaining 5.
	tp.SectionRollback(0)
	if got := p.Total(Waste); got != 12 {
		t.Fatalf("waste after outer rollback = %d, want 12", got)
	}
	if got := p.Total(Work); got != 0 {
		t.Fatalf("work after full rollback = %d, want 0", got)
	}
}

func TestSectionCommitClearsJournal(t *testing.T) {
	p := New()
	tp := p.Thread("T")
	tp.SectionEnter()
	tp.SetPC(1)
	tp.Tick(9)
	tp.SectionCommit() // outermost commit: ticks become permanent

	tp.SectionEnter()
	tp.SetPC(2)
	tp.Tick(4)
	tp.SectionRollback(0)

	s := p.Snapshot()
	if s.Totals[Work] != 9 || s.Totals[Waste] != 4 {
		t.Fatalf("work=%d waste=%d, want 9/4 — committed ticks must not be retractable",
			s.Totals[Work], s.Totals[Waste])
	}
}

func TestWaitTruncateCommitsInPlace(t *testing.T) {
	p := New()
	tp := p.Thread("T")
	tp.SectionEnter()
	tp.SetPC(1)
	tp.Tick(50)
	tp.WaitTruncate() // Object.wait released the monitor mid-section
	tp.SetPC(2)
	tp.Tick(8)
	tp.SectionRollback(0)

	s := p.Snapshot()
	// Only the post-wait ticks are retractable.
	if s.Totals[Work] != 50 || s.Totals[Waste] != 8 {
		t.Fatalf("work=%d waste=%d, want 50/8", s.Totals[Work], s.Totals[Waste])
	}
}

func TestBlockTickAuxFrameAndNoJournal(t *testing.T) {
	p := New()
	tp := p.Thread("T")
	tp.SectionEnter()
	tp.SetPC(6)
	tp.BlockTick(11, "M")
	tp.SectionRollback(0)

	s := p.Snapshot()
	if s.Totals[Block] != 11 || s.Totals[Waste] != 0 {
		t.Fatalf("block=%d waste=%d, want 11/0 — blocked time is not CPU and never rolls back",
			s.Totals[Block], s.Totals[Waste])
	}
	// The contended monitor is the pseudo-leaf; the waiting site follows.
	if v := findSample(s, Block, Frame{"monitor:M", 0}, Frame{"T", 6}); v != 11 {
		t.Errorf("block sample = %d, want 11 under monitor:M leaf; got dims %+v", v, s.Dims[Block])
	}
}

func TestSchedTickSyntheticRoot(t *testing.T) {
	p := New()
	p.SchedTick("context-switch", 4)
	p.SchedTick("idle", 6)
	p.SchedTick("idle", 0) // no-op

	s := p.Snapshot()
	if s.Totals[Sched] != 10 {
		t.Fatalf("sched total = %d, want 10", s.Totals[Sched])
	}
	if v := findSample(s, Sched, Frame{"<idle>", 0}); v != 6 {
		t.Errorf("<idle> = %d, want 6", v)
	}
	if v := findSample(s, Sched, Frame{"<context-switch>", 0}); v != 4 {
		t.Errorf("<context-switch> = %d, want 4", v)
	}
}

func TestTopRanksLeafSites(t *testing.T) {
	p := New()
	a := p.Thread("A")
	a.SetPC(1)
	a.Tick(5)
	a.Push("m")
	a.SetPC(2)
	a.Tick(20) // same leaf (m, 2) from a different path
	b := p.Thread("B")
	b.Push("m")
	b.SetPC(2)
	b.Tick(30)

	top := p.Snapshot().Top(Work, 2)
	if len(top) != 2 {
		t.Fatalf("top = %+v, want 2 sites", top)
	}
	if top[0].Func != "m" || top[0].PC != 2 || top[0].Ticks != 50 {
		t.Errorf("top[0] = %+v, want m@2 with 50 ticks aggregated across paths", top[0])
	}
	if top[1].Func != "A" || top[1].Ticks != 5 {
		t.Errorf("top[1] = %+v, want A@1 with 5", top[1])
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Snapshot {
		p := New()
		for _, name := range []string{"T1", "T2", "T3"} {
			tp := p.Thread(name)
			for pc := 1; pc <= 5; pc++ {
				tp.SetPC(pc)
				tp.Tick(3)
			}
		}
		p.SchedTick("idle", 2)
		return p.Snapshot()
	}
	if a, b := build(), build(); !reflect.DeepEqual(a, b) {
		t.Errorf("snapshots of identical runs differ:\n%+v\n%+v", a, b)
	}
}
