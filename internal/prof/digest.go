package prof

// Digest is the compact JSON form of a snapshot: per-dimension tick totals
// plus the top leaf sites of each dimension. The flight recorder embeds it
// in .rvmfr dumps so a post-mortem carries the hot sites without the full
// pprof payload.
type Digest struct {
	// Totals maps dimension name (work, waste, block, sched) to its
	// accumulated virtual ticks.
	Totals map[string]int64 `json:"totals"`
	// Top maps dimension name to its highest-ticks leaf sites.
	Top map[string][]TopSite `json:"top,omitempty"`
}

// Digest ranks each dimension's top n leaf sites (all when n <= 0).
func (s *Snapshot) Digest(n int) Digest {
	d := Digest{
		Totals: make(map[string]int64, NumDims),
		Top:    make(map[string][]TopSite, NumDims),
	}
	for _, dim := range Dims() {
		d.Totals[dim.String()] = s.Totals[dim]
		if sites := s.Top(dim, n); len(sites) > 0 {
			d.Top[dim.String()] = sites
		}
	}
	if len(d.Top) == 0 {
		d.Top = nil
	}
	return d
}
