package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/simtime"
)

// Summary aggregates a trace: events per kind and per thread, plus the
// time span covered. Useful for asserting on runs without enumerating raw
// events.
//
// An empty trace has no time span: Total == 0 means Start and End are
// meaningless (both zero, but indistinguishable from a real tick-0 event
// only by checking Total). Use HasSpan before interpreting [Start, End].
type Summary struct {
	Start, End simtime.Ticks
	PerKind    map[Kind]int
	PerThread  map[string]int
	Total      int
}

// HasSpan reports whether the summary covers any events at all; when false
// the [Start, End] interval is undefined.
func (s Summary) HasSpan() bool { return s.Total > 0 }

// Summarize builds a Summary from recorded events.
func Summarize(events []Event) Summary {
	s := Summary{
		PerKind:   map[Kind]int{},
		PerThread: map[string]int{},
		Total:     len(events),
	}
	for i, e := range events {
		if i == 0 || e.At < s.Start {
			s.Start = e.At
		}
		if e.At > s.End {
			s.End = e.At
		}
		s.PerKind[e.Kind]++
		if e.Thread != "" {
			s.PerThread[e.Thread]++
		}
	}
	return s
}

// Render writes the summary as aligned text.
func (s Summary) Render(w io.Writer) {
	if !s.HasSpan() {
		fmt.Fprintf(w, "trace: 0 events (no span)\n")
		return
	}
	fmt.Fprintf(w, "trace: %d events over [%d, %d]\n", s.Total, s.Start, s.End)
	kinds := make([]Kind, 0, len(s.PerKind))
	for k := range s.PerKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-20s %d\n", k.String(), s.PerKind[k])
	}
}

// Timeline renders an ASCII schedule of thread activity: one row per
// thread, one column per bucket of virtual time, '#' where the thread was
// dispatched in that bucket, 'R' where one of its sections rolled back.
// Width is the number of columns (min 10).
func Timeline(events []Event, width int) string {
	if len(events) == 0 {
		return "(empty trace)\n"
	}
	if width < 10 {
		width = 10
	}
	s := Summarize(events)
	span := s.End - s.Start
	if span <= 0 {
		span = 1
	}
	bucket := func(at simtime.Ticks) int {
		b := int((at - s.Start) * simtime.Ticks(width-1) / span)
		if b < 0 {
			b = 0
		}
		if b >= width {
			b = width - 1
		}
		return b
	}

	// Rows in first-appearance order.
	var names []string
	seen := map[string]bool{}
	rows := map[string][]byte{}
	for _, e := range events {
		if e.Thread == "" || seen[e.Thread] {
			continue
		}
		seen[e.Thread] = true
		names = append(names, e.Thread)
		rows[e.Thread] = []byte(strings.Repeat(".", width))
	}
	cur := ""
	for _, e := range events {
		switch e.Kind {
		case ContextSwitch:
			cur = e.Thread
			if row := rows[cur]; row != nil {
				if b := bucket(e.At); row[b] == '.' {
					row[b] = '#' // 'R' markers stay visible
				}
			}
		case Rollback:
			if row := rows[e.Thread]; row != nil {
				row[bucket(e.At)] = 'R'
			}
		case ThreadEnd:
			if cur == e.Thread {
				cur = ""
			}
		default:
			// Any activity by the current thread marks its bucket.
			if e.Thread == cur && cur != "" {
				if row := rows[cur]; row != nil && row[bucket(e.At)] == '.' {
					row[bucket(e.At)] = '#'
				}
			}
		}
	}
	var b strings.Builder
	maxName := 0
	for _, n := range names {
		if len(n) > maxName {
			maxName = len(n)
		}
	}
	fmt.Fprintf(&b, "%*s  t=%d%s t=%d\n", maxName, "", s.Start,
		strings.Repeat(" ", max(1, width-len(fmt.Sprint(s.Start))-len(fmt.Sprint(s.End))-4)), s.End)
	for _, n := range names {
		fmt.Fprintf(&b, "%*s  %s\n", maxName, n, rows[n])
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
