package trace

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if Rollback.String() != "rollback" {
		t.Fatalf("Rollback = %q", Rollback)
	}
	if got := Kind(999).String(); !strings.Contains(got, "999") {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 42, Kind: MonitorEnter, Thread: "hi", Object: "m", Detail: "contended"}
	s := e.String()
	for _, want := range []string{"42", "monitor-enter", "thread=hi", "object=m", "contended"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q, missing %q", s, want)
		}
	}
}

func TestEventStringOmitsEmptyFields(t *testing.T) {
	e := Event{At: 1, Kind: ContextSwitch}
	s := e.String()
	if strings.Contains(s, "thread=") || strings.Contains(s, "object=") {
		t.Fatalf("empty fields rendered: %q", s)
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Emit(Event{Kind: Rollback, Thread: "lo"})
	r.Emit(Event{Kind: Rollback, Thread: "lo2"})
	r.Emit(Event{Kind: MonitorExit, Thread: "lo"})
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Count(Rollback) != 2 {
		t.Fatalf("Count(Rollback) = %d", r.Count(Rollback))
	}
	if r.CountFor(Rollback, "lo") != 1 {
		t.Fatalf("CountFor = %d", r.CountFor(Rollback, "lo"))
	}
	e, ok := r.First(MonitorExit)
	if !ok || e.Thread != "lo" {
		t.Fatalf("First = %+v,%v", e, ok)
	}
	if _, ok := r.First(DeadlockBroken); ok {
		t.Fatal("First found a missing kind")
	}
	got := r.Filter(func(e Event) bool { return e.Thread == "lo" })
	if len(got) != 2 {
		t.Fatalf("Filter = %d events", len(got))
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

// TestRecorderEventsSurvivesReset is the regression test for Events()
// returning the live backing store: a snapshot taken before Reset must not
// be clobbered by events recorded afterwards (Reset reuses the array).
func TestRecorderEventsSurvivesReset(t *testing.T) {
	var r Recorder
	r.Emit(Event{Kind: Rollback, Thread: "victim"})
	r.Emit(Event{Kind: Reexecution, Thread: "victim"})
	snap := r.Events()
	r.Reset()
	r.Emit(Event{Kind: Notify, Thread: "other"})
	r.Emit(Event{Kind: Notify, Thread: "other"})
	if len(snap) != 2 {
		t.Fatalf("snapshot length = %d, want 2", len(snap))
	}
	if snap[0].Kind != Rollback || snap[1].Kind != Reexecution {
		t.Fatalf("snapshot clobbered by post-Reset emits: %+v", snap)
	}
	// Mutating the snapshot must not corrupt the recorder either.
	snap[0].Thread = "mutated"
	if e, _ := r.First(Notify); e.Thread != "other" {
		t.Fatalf("recorder state shares memory with snapshot: %+v", e)
	}
}

func TestRecorderDump(t *testing.T) {
	var r Recorder
	r.Emit(Event{Kind: Notify, Thread: "a"})
	var b strings.Builder
	r.Dump(&b)
	if !strings.Contains(b.String(), "notify") {
		t.Fatalf("Dump = %q", b.String())
	}
}

func TestWriterSink(t *testing.T) {
	var b strings.Builder
	w := Writer{W: &b}
	w.Emit(Event{Kind: ThreadStart, Thread: "x"})
	if !strings.Contains(b.String(), "thread-start") {
		t.Fatalf("Writer output = %q", b.String())
	}
}

func TestMultiSink(t *testing.T) {
	var a, b Recorder
	m := Multi{&a, &b}
	m.Emit(Event{Kind: Custom})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("Multi did not fan out")
	}
}

func TestDiscard(t *testing.T) {
	Discard.Emit(Event{Kind: Custom}) // must not panic
}

func TestAllKindsHaveNames(t *testing.T) {
	for k := ThreadStart; k <= Custom; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}
