package trace

import (
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{At: 0, Kind: ThreadStart, Thread: "a"},
		{At: 0, Kind: ContextSwitch, Thread: "a"},
		{At: 10, Kind: MonitorAcquired, Thread: "a", Object: "m"},
		{At: 50, Kind: ContextSwitch, Thread: "b"},
		{At: 60, Kind: Rollback, Thread: "a", Object: "m"},
		{At: 90, Kind: ThreadEnd, Thread: "b"},
		{At: 100, Kind: ThreadEnd, Thread: "a"},
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleEvents())
	if s.Total != 7 {
		t.Fatalf("Total = %d", s.Total)
	}
	if s.Start != 0 || s.End != 100 {
		t.Fatalf("span = [%d,%d]", s.Start, s.End)
	}
	if s.PerKind[ContextSwitch] != 2 || s.PerKind[Rollback] != 1 {
		t.Fatalf("PerKind = %v", s.PerKind)
	}
	if s.PerThread["a"] != 5 || s.PerThread["b"] != 2 {
		t.Fatalf("PerThread = %v", s.PerThread)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Total != 0 || s.Start != 0 || s.End != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	// Total == 0 means "no span": [0,0] is not a real interval and must be
	// distinguishable from a trace with one event at tick 0.
	if s.HasSpan() {
		t.Fatal("empty summary claims a span")
	}
	var b strings.Builder
	s.Render(&b)
	if !strings.Contains(b.String(), "no span") {
		t.Fatalf("empty render = %q, want explicit no-span notice", b.String())
	}
	if one := Summarize([]Event{{At: 0, Kind: ThreadStart}}); !one.HasSpan() {
		t.Fatal("single-event trace must have a span")
	}
}

func TestSummaryRender(t *testing.T) {
	var b strings.Builder
	Summarize(sampleEvents()).Render(&b)
	out := b.String()
	for _, want := range []string{"7 events", "context-switch", "rollback"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTimeline(t *testing.T) {
	out := Timeline(sampleEvents(), 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 threads
		t.Fatalf("timeline lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "a") || !strings.Contains(out, "R") {
		t.Fatalf("timeline missing thread row or rollback marker:\n%s", out)
	}
	// Thread a was dispatched at t=0: its row starts with '#'.
	aRow := lines[1][strings.Index(lines[1], " ")+2:]
	if !strings.Contains(aRow, "#") {
		t.Fatalf("no dispatch marks for a: %q", aRow)
	}
}

func TestTimelineEmpty(t *testing.T) {
	if Timeline(nil, 20) != "(empty trace)\n" {
		t.Fatal("empty timeline wrong")
	}
}

func TestTimelineMinWidth(t *testing.T) {
	out := Timeline(sampleEvents(), 1) // clamped to 10
	if len(out) == 0 {
		t.Fatal("empty output")
	}
}

func TestTimelineEndToEnd(t *testing.T) {
	// Build a realistic recorder via a tiny fake run.
	var r Recorder
	r.Emit(Event{At: 0, Kind: ContextSwitch, Thread: "low"})
	r.Emit(Event{At: 40, Kind: Rollback, Thread: "low"})
	r.Emit(Event{At: 41, Kind: ContextSwitch, Thread: "high"})
	r.Emit(Event{At: 80, Kind: ThreadEnd, Thread: "high"})
	out := Timeline(r.Events(), 40)
	if !strings.Contains(out, "low") || !strings.Contains(out, "high") {
		t.Fatalf("missing rows:\n%s", out)
	}
}
