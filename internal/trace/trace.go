// Package trace records structured events emitted by the runtime: monitor
// acquisitions, revocations, rollbacks, context switches, deadlock
// resolutions. Traces drive integration tests (assert on the event stream)
// and the example programs (human-readable narration of a schedule).
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/simtime"
)

// Kind classifies an event.
type Kind int

// Event kinds, roughly in lifecycle order.
const (
	ThreadStart Kind = iota
	ThreadEnd
	ContextSwitch
	MonitorEnter
	MonitorAcquired
	MonitorBlocked
	MonitorExit
	InversionDetected
	RevokeRequested
	RevokeDenied
	Rollback
	Reexecution
	NonRevocable
	DeadlockDetected
	DeadlockBroken
	WaitStart
	WaitEnd
	Notify
	NativeCall
	VolatileWrite
	VolatileRead
	Custom
	// StaticPreMark records a monitor made non-revocable at monitorenter by
	// load-time static analysis rather than by a dynamic trigger.
	StaticPreMark
	// RaceDetected records a data race confirmed by the dynamic sanitizer
	// (internal/race): two accesses to one slot, at least one a write,
	// unordered by happens-before — and neither retracted by a rollback.
	// Thread is the later accessor, Other the earlier one, Object the slot,
	// N the number of deduplicated occurrences of the same site pair.
	RaceDetected
	// Sleep records a thread parking on the virtual-time timer queue for N
	// ticks. Without it, sleeps are invisible in the stream and the causal
	// DAG (internal/causal) cannot bound the idle jumps they cause.
	Sleep
	// SchedIdle records the scheduler jumping the clock forward by N ticks
	// because no thread was runnable (all sleeping on timers). Thread is
	// empty; At is the post-jump time, so the idle interval is [At-N, At).
	SchedIdle
)

// numKinds is the number of defined kinds. AllKinds, the name table and
// every binary/JSONL vocabulary are sized by it; a kind added above without
// extending kindNames leaves an empty slot that the vocabulary coverage
// test rejects, so a new kind can never silently miss an exporter.
const numKinds = int(SchedIdle) + 1

// kindNames is THE event-kind vocabulary: the single shared table behind
// the JSONL meta line, the flight-recorder binary codec and every String()
// rendering. Names are wire format — renaming one changes what every
// downstream consumer parses, so the golden test pins the exact list and a
// rename must bump the trace schema version.
var kindNames = [numKinds]string{
	ThreadStart:       "thread-start",
	ThreadEnd:         "thread-end",
	ContextSwitch:     "context-switch",
	MonitorEnter:      "monitor-enter",
	MonitorAcquired:   "monitor-acquired",
	MonitorBlocked:    "monitor-blocked",
	MonitorExit:       "monitor-exit",
	InversionDetected: "inversion-detected",
	RevokeRequested:   "revoke-requested",
	RevokeDenied:      "revoke-denied",
	Rollback:          "rollback",
	Reexecution:       "re-execution",
	NonRevocable:      "non-revocable",
	DeadlockDetected:  "deadlock-detected",
	DeadlockBroken:    "deadlock-broken",
	WaitStart:         "wait-start",
	WaitEnd:           "wait-end",
	Notify:            "notify",
	NativeCall:        "native-call",
	VolatileWrite:     "volatile-write",
	VolatileRead:      "volatile-read",
	Custom:            "custom",
	StaticPreMark:     "static-premark",
	RaceDetected:      "race-detected",
	Sleep:             "sleep",
	SchedIdle:         "sched-idle",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k, name := range kindNames {
		if name != "" {
			m[name] = Kind(k)
		}
	}
	return m
}()

// String returns the stable, hyphenated name of the kind.
func (k Kind) String() string {
	if k >= 0 && int(k) < numKinds && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Names returns the stable name of every kind, indexed by kind value —
// the shared vocabulary consumed by the JSONL meta line and the
// flight-recorder binary codec.
func Names() []string {
	out := make([]string, numKinds)
	copy(out, kindNames[:])
	return out
}

// KindByName resolves a stable name back to its kind, the inverse of
// String for every defined kind.
func KindByName(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// ValidKind reports whether k is a defined kind with a name in the
// vocabulary — the decode-side check of the binary codec.
func ValidKind(k Kind) bool {
	return k >= 0 && int(k) < numKinds && kindNames[k] != ""
}

// Event is one timestamped occurrence. Beyond the acting thread, events
// that describe an interaction carry the counterpart thread in Other so
// consumers can join causally related events without parsing Detail:
// MonitorBlocked names the holder that caused the wait, RevokeRequested /
// Rollback name the requesting (high-priority) thread. N is a per-kind
// numeric payload: the rolled-back span's wasted CPU ticks on Rollback,
// the retry attempt on Reexecution, the base priority on ThreadStart.
type Event struct {
	At     simtime.Ticks
	Kind   Kind
	Thread string // name of the acting thread ("" for scheduler events)
	Object string // monitor or object involved, if any
	Other  string // counterpart thread: holder on blocked, requester on revocations
	N      int64  // numeric payload (kind-specific); zero when unused
	Detail string // free-form context
}

// String renders the event on one line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%8d] %-18s", e.At, e.Kind)
	if e.Thread != "" {
		fmt.Fprintf(&b, " thread=%s", e.Thread)
	}
	if e.Object != "" {
		fmt.Fprintf(&b, " object=%s", e.Object)
	}
	if e.Other != "" {
		fmt.Fprintf(&b, " other=%s", e.Other)
	}
	if e.N != 0 {
		fmt.Fprintf(&b, " n=%d", e.N)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// AllKinds returns every defined kind in declaration order. Exporters use
// it to enumerate the stable name set; a new kind added above extends the
// slice automatically (SchedIdle is the last defined kind).
func AllKinds() []Kind {
	kinds := make([]Kind, 0, numKinds)
	for k := ThreadStart; int(k) < numKinds; k++ {
		kinds = append(kinds, k)
	}
	return kinds
}

// Sink receives events. Implementations must be cheap; the runtime calls
// Emit on the hot path when tracing is enabled.
type Sink interface {
	Emit(Event)
}

// Recorder is a Sink that appends events to memory for later inspection.
// The zero value is ready to use.
type Recorder struct {
	events []Event
}

// Emit appends the event.
func (r *Recorder) Emit(e Event) { r.events = append(r.events, e) }

// Events returns a snapshot of the recorded events in emission order. The
// snapshot is a copy: it stays valid (and stable) across later Emit and
// Reset calls. Reset truncates the backing store in place, so returning it
// directly would let post-Reset emissions silently clobber a slice captured
// earlier.
func (r *Recorder) Events() []Event {
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len reports how many events were recorded.
func (r *Recorder) Len() int { return len(r.events) }

// Reset discards all recorded events.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// Count returns the number of recorded events of the given kind.
func (r *Recorder) Count(k Kind) int {
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// CountFor returns the number of events of kind k acted by the named thread.
func (r *Recorder) CountFor(k Kind, thread string) int {
	n := 0
	for _, e := range r.events {
		if e.Kind == k && e.Thread == thread {
			n++
		}
	}
	return n
}

// First returns the first event of the given kind, or ok=false.
func (r *Recorder) First(k Kind) (Event, bool) {
	for _, e := range r.events {
		if e.Kind == k {
			return e, true
		}
	}
	return Event{}, false
}

// Filter returns all events satisfying keep, in order.
func (r *Recorder) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the whole trace to w, one event per line.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.events {
		fmt.Fprintln(w, e)
	}
}

// Writer is a Sink that streams each event to an io.Writer as it occurs.
type Writer struct {
	W io.Writer
}

// Emit writes the event followed by a newline.
func (w Writer) Emit(e Event) { fmt.Fprintln(w.W, e) }

// Multi fans events out to several sinks.
type Multi []Sink

// Emit delivers e to every sink in order.
func (m Multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Discard is a Sink that drops everything.
var Discard Sink = discard{}

type discard struct{}

func (discard) Emit(Event) {}
