package trace

import "testing"

// goldenKindNames pins the shared event-kind vocabulary at its source. The
// JSONL meta line, the flight-recorder binary codec and every downstream
// consumer parse these exact strings, so a rename or reorder is a wire
// format change: it must fail here loudly and force a schema-version bump
// review. New kinds are appended, never inserted.
var goldenKindNames = []string{
	"thread-start",
	"thread-end",
	"context-switch",
	"monitor-enter",
	"monitor-acquired",
	"monitor-blocked",
	"monitor-exit",
	"inversion-detected",
	"revoke-requested",
	"revoke-denied",
	"rollback",
	"re-execution",
	"non-revocable",
	"deadlock-detected",
	"deadlock-broken",
	"wait-start",
	"wait-end",
	"notify",
	"native-call",
	"volatile-write",
	"volatile-read",
	"custom",
	"static-premark",
	"race-detected",
	"sleep",
	"sched-idle",
}

func TestKindVocabularyGolden(t *testing.T) {
	got := Names()
	if len(got) != len(goldenKindNames) {
		t.Fatalf("vocabulary has %d names, golden has %d — append new kinds to the golden list and review every exporter: %v",
			len(got), len(goldenKindNames), got)
	}
	for i, want := range goldenKindNames {
		if got[i] != want {
			t.Errorf("kind %d = %q, want %q — renaming a kind changes the wire format; bump the schema version", i, got[i], want)
		}
	}
}

// TestKindVocabularyCovers guards the failure mode the shared table exists
// to prevent: a kind declared in the const block without a name would
// silently fall out of every exporter's vocabulary. Every kind AllKinds
// enumerates must have a real name, resolve back through KindByName, and
// pass ValidKind; everything outside the table must not.
func TestKindVocabularyCovers(t *testing.T) {
	kinds := AllKinds()
	if len(kinds) != len(Names()) {
		t.Fatalf("AllKinds has %d entries, Names has %d", len(kinds), len(Names()))
	}
	for _, k := range kinds {
		name := k.String()
		if name == "" || len(name) > 0 && name[0] == 'k' && len(name) > 5 && name[:5] == "kind(" {
			t.Errorf("kind %d has no vocabulary name (String() = %q) — extend kindNames", int(k), name)
			continue
		}
		back, ok := KindByName(name)
		if !ok || back != k {
			t.Errorf("KindByName(%q) = %v, %v; want %v, true", name, back, ok, k)
		}
		if !ValidKind(k) {
			t.Errorf("ValidKind(%v) = false for a defined kind", k)
		}
	}
	if ValidKind(Kind(len(kinds))) {
		t.Errorf("ValidKind accepts the first undefined kind %d", len(kinds))
	}
	if ValidKind(Kind(-1)) {
		t.Errorf("ValidKind accepts a negative kind")
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Errorf("KindByName resolves an unknown name")
	}
}
