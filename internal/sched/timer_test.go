package sched

import (
	"fmt"
	"testing"

	"repro/internal/simtime"
)

// TestTimerPreemptionMidSlice: a thread dispatched mid-slice gets only the
// remainder of the global timeslice, like under a wall-clock interval
// timer (the Jikes RVM model).
func TestTimerPreemptionMidSlice(t *testing.T) {
	s := New(Config{Quantum: 100})
	var bFirstRun simtime.Ticks = -1
	var aResumed simtime.Ticks = -1
	var blocked *Thread
	blocked = s.Spawn("sleeper", NormPriority, func(th *Thread) {
		th.Block("poke") // parked immediately
		// Woken at t=60 by "a"; runs mid-slice: boundary at 100.
		for i := 0; i < 20; i++ {
			th.Advance(10)
			th.YieldPoint()
			if bFirstRun < 0 {
				bFirstRun = s.Now()
			}
		}
	})
	s.Spawn("a", NormPriority, func(th *Thread) {
		th.Advance(60)
		s.Unblock(blocked, WakeGranted)
		th.Yield() // hand over mid-slice
		aResumed = s.Now()
		th.Advance(10)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// sleeper was dispatched at 60 and must have been preempted at the
	// global boundary t=100 (not at 60+100=160): "a" resumed at ~100.
	if aResumed < 100 || aResumed > 110 {
		t.Fatalf("a resumed at %d, want ~100 (global timeslice boundary)", aResumed)
	}
}

// TestTimerBoundaryResetOnExpiry: after a boundary-triggered switch, the
// next boundary is a full quantum later.
func TestTimerBoundaryResetOnExpiry(t *testing.T) {
	s := New(Config{Quantum: 50})
	var switches []simtime.Ticks
	work := func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Advance(25)
			if th.NeedsYield() {
				switches = append(switches, s.Now())
			}
			th.YieldPoint()
		}
	}
	s.Spawn("a", NormPriority, work)
	s.Spawn("b", NormPriority, work)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, at := range switches {
		if at%50 != 0 {
			t.Fatalf("switch %d at %d, not on a 50-tick boundary", i, at)
		}
	}
	if len(switches) < 4 {
		t.Fatalf("too few boundary switches: %v", switches)
	}
}

// TestExpediteOverridesQueueOrder: the expedited thread is dispatched next
// even from the back of the queue.
func TestExpediteOverridesQueueOrder(t *testing.T) {
	s := New(Config{})
	var order []string
	var last *Thread
	s.Spawn("first", NormPriority, func(th *Thread) {
		s.Expedite(last) // jump the queue
		th.Yield()
		order = append(order, "first")
	})
	s.Spawn("second", NormPriority, func(th *Thread) {
		order = append(order, "second")
	})
	last = s.Spawn("last", NormPriority, func(th *Thread) {
		order = append(order, "last")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "last" {
		t.Fatalf("order = %v, want last first (expedited)", order)
	}
}

// TestExpediteOverridesPriority: expedite must beat even the PriorityRR
// dispatcher — the revocation victim needs the CPU precisely when
// higher-priority threads are hogging it.
func TestExpediteOverridesPriority(t *testing.T) {
	s := New(Config{Policy: PriorityRR, Quantum: 50})
	var order []string
	var low *Thread
	low = s.Spawn("low", LowPriority, func(th *Thread) {
		order = append(order, "low")
	})
	s.Spawn("high", HighPriority, func(th *Thread) {
		s.Expedite(low)
		th.Yield()
		order = append(order, "high")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "low" {
		t.Fatalf("order = %v, want expedited low before high", order)
	}
}

// TestExpediteNonQueuedIsNoop: expediting a blocked thread does nothing.
func TestExpediteNonQueuedIsNoop(t *testing.T) {
	s := New(Config{})
	var blocked *Thread
	blocked = s.Spawn("blocked", NormPriority, func(th *Thread) {
		th.Block("forever-ish")
	})
	s.Spawn("driver", NormPriority, func(th *Thread) {
		th.Yield() // let blocked park
		s.Expedite(blocked)
		th.Yield() // scheduler must not dispatch the blocked thread
		s.Unblock(blocked, WakeGranted)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestExpediteStaleEntryIgnored: an expedited thread that blocks before
// the next dispatch is skipped safely.
func TestExpediteStaleEntryIgnored(t *testing.T) {
	s := New(Config{})
	ran := false
	var a *Thread
	a = s.Spawn("a", NormPriority, func(th *Thread) {
		th.Yield()
		ran = true
	})
	s.Spawn("b", NormPriority, func(th *Thread) {
		s.Expedite(a)
		s.dequeue(a) // simulate a racing state change
		th.Yield()
		s.enqueue(a)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("a never ran")
	}
}

// TestManyThreadsRoundRobinFairness: with equal work, all threads finish
// within one quantum of each other under round robin.
func TestManyThreadsRoundRobinFairness(t *testing.T) {
	s := New(Config{Quantum: 100})
	const n = 8
	ends := make([]simtime.Ticks, n)
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(fmt.Sprintf("t%d", i), NormPriority, func(th *Thread) {
			for k := 0; k < 50; k++ {
				th.Advance(20)
				th.YieldPoint()
			}
			ends[i] = s.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	min, max := ends[0], ends[0]
	for _, e := range ends {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if max-min > 8*100+200 {
		t.Fatalf("unfair spread: %v", ends)
	}
}

// TestClockNeverMovesBackwards across a long mixed run.
func TestClockNeverMovesBackwards(t *testing.T) {
	s := New(Config{Quantum: 30, Seed: 9})
	var last simtime.Ticks
	check := func(th *Thread) {
		now := s.Now()
		if now < last {
			t.Errorf("clock went backwards: %d -> %d", last, now)
		}
		last = now
	}
	for i := 0; i < 5; i++ {
		s.Spawn(fmt.Sprintf("t%d", i), NormPriority, func(th *Thread) {
			for k := 0; k < 30; k++ {
				switch k % 3 {
				case 0:
					th.Advance(simtime.Ticks(s.Rng().Intn(40)))
					th.YieldPoint()
				case 1:
					th.Sleep(simtime.Ticks(s.Rng().Intn(25)))
				case 2:
					th.Yield()
				}
				check(th)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
