// Package sched implements the user-level thread system the reproduction
// runs on: a deterministic, uniprocessor, pseudo-preemptive scheduler in the
// style of the Jikes RVM virtual processor the paper targets.
//
// Every simulated thread is backed by a goroutine, but exactly one thread
// runs at a time; control is handed off over unbuffered channels. Threads
// give up the processor only at yield points (§3.1: "thread context-switches
// can happen only at pre-specified yield points inserted by the compiler"),
// which the runtime places at every shared-data operation, loop back-edge
// and method entry. Time is virtual: threads charge ticks to a shared
// simtime.Clock as they execute, and a quantum expires after a configurable
// number of ticks.
//
// The scheduler knows nothing about monitors or revocation; those live in
// internal/monitor and internal/core. It provides exactly the primitives the
// paper's runtime needs: spawn, yield points, block/unblock with a wake
// reason (so a blocked thread can be interrupted for revocation), sleep,
// preemption requests, and priority changes (for the priority-inheritance
// baseline).
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// Priority is a thread priority. Higher values are more urgent. The paper's
// benchmark uses two levels; the implementation supports the full Java range
// (1..10) so the baselines (inheritance, ceiling) are expressible.
type Priority int

// Java-style priority levels.
const (
	MinPriority  Priority = 1
	LowPriority  Priority = 2
	NormPriority Priority = 5
	HighPriority Priority = 8
	MaxPriority  Priority = 10
)

// numPriorities bounds the priority bucket array (index 0 unused).
const numPriorities = int(MaxPriority) + 1

// State describes a thread's lifecycle position.
type State int

// Thread states.
const (
	StateNew State = iota
	StateRunnable
	StateRunning
	StateBlocked
	StateSleeping
	StateDone
)

var stateNames = [...]string{"new", "runnable", "running", "blocked", "sleeping", "done"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// WakeKind tells an unblocked thread why it was woken.
type WakeKind int

const (
	// WakeNone is returned while the thread is still blocked (internal).
	WakeNone WakeKind = iota
	// WakeGranted means the resource the thread blocked for was handed to
	// it (e.g. it now owns the monitor).
	WakeGranted
	// WakeRetry means the thread should re-attempt its blocking operation
	// (e.g. notify-style wakeup with no ownership transfer).
	WakeRetry
	// WakeInterrupt means the runtime interrupted the blocked thread, e.g.
	// to revoke one of its synchronized sections while it waits on another
	// monitor (deadlock resolution).
	WakeInterrupt
)

func (k WakeKind) String() string {
	switch k {
	case WakeNone:
		return "none"
	case WakeGranted:
		return "granted"
	case WakeRetry:
		return "retry"
	case WakeInterrupt:
		return "interrupt"
	default:
		return fmt.Sprintf("wake(%d)", int(k))
	}
}

// Policy selects the dispatch discipline.
type Policy int

const (
	// RoundRobin ignores priorities when dispatching, like the unmodified
	// Jikes RVM scheduler the paper builds on (§4: "threads are scheduled
	// in a round-robin fashion"). Priorities still matter at monitors,
	// which use prioritized entry queues.
	RoundRobin Policy = iota
	// PriorityRR always dispatches from the highest non-empty priority
	// level, round-robin within a level. Used by ablations.
	PriorityRR
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case PriorityRR:
		return "priority-rr"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes a Scheduler.
type Config struct {
	// Quantum is the tick budget a thread may consume before a yield point
	// forces a context switch. Zero selects DefaultQuantum.
	Quantum simtime.Ticks
	// SwitchCost is charged to the clock at every context switch.
	SwitchCost simtime.Ticks
	// Policy selects the dispatch discipline (default RoundRobin, as in
	// Jikes RVM).
	Policy Policy
	// Seed initializes the deterministic RNG exposed via Rng.
	Seed int64
	// Tracer receives scheduler events; nil discards them.
	Tracer trace.Sink
}

// DefaultQuantum is the quantum used when Config.Quantum is zero. The paper
// reports the benchmark's random pause as "on average equal to a single
// thread quantum in Jikes RVM"; all workloads express pauses relative to
// this value.
const DefaultQuantum simtime.Ticks = 1000

// ErrDeadlock is returned by Run when live threads remain but none is
// runnable or sleeping: every thread is blocked and nothing can unblock
// them. The runtime layered above resolves *monitor* deadlocks itself; this
// error surfaces only if resolution is disabled or impossible.
var ErrDeadlock = errors.New("sched: all live threads are blocked")

// resumeMsg is sent scheduler→thread to hand over the processor.
type resumeMsg struct {
	kill bool
}

// killSignal is panicked inside a thread goroutine to terminate it during
// Drain. It never escapes the package.
type killSignal struct{}

// Thread is a simulated thread of control.
type Thread struct {
	id   int
	name string
	prio Priority
	base Priority // priority before any inheritance boost

	state  State
	sch    *Scheduler
	body   func(*Thread)
	resume chan resumeMsg

	// Accounting.
	cpu       simtime.Ticks // total ticks charged by this thread
	sliceUsed simtime.Ticks // ticks since last dispatch
	switches  int64
	startedAt simtime.Ticks
	endedAt   simtime.Ticks

	preemptReq  bool
	wakeKind    WakeKind
	blockReason string
	inQueue     bool

	// Data carries the runtime layer's per-thread payload (core.Task).
	Data any

	panicVal any
}

// ID returns the thread's scheduler-unique id.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's display name.
func (t *Thread) Name() string { return t.name }

// Priority returns the thread's current (possibly boosted) priority.
func (t *Thread) Priority() Priority { return t.prio }

// BasePriority returns the priority the thread was spawned with, ignoring
// any inheritance boost.
func (t *Thread) BasePriority() Priority { return t.base }

// State returns the thread's lifecycle state.
func (t *Thread) State() State { return t.state }

// CPU returns the total ticks this thread has charged to the clock.
func (t *Thread) CPU() simtime.Ticks { return t.cpu }

// Switches returns how many times the thread has been dispatched.
func (t *Thread) Switches() int64 { return t.switches }

// StartedAt returns the virtual time of the thread's first dispatch.
func (t *Thread) StartedAt() simtime.Ticks { return t.startedAt }

// EndedAt returns the virtual time at which the thread finished.
func (t *Thread) EndedAt() simtime.Ticks { return t.endedAt }

// BlockReason describes what a blocked thread is waiting for ("" otherwise).
func (t *Thread) BlockReason() string { return t.blockReason }

// Scheduler multiplexes threads over one virtual processor.
type Scheduler struct {
	cfg     Config
	clock   *simtime.Clock
	tracer  trace.Sink
	rng     *rand.Rand
	back    chan *Thread
	current *Thread

	threads []*Thread // all spawned threads, in spawn order
	live    int       // threads not yet Done

	fifo    deque                // RoundRobin run queue
	buckets [numPriorities]deque // PriorityRR run queues

	// nextPreempt is the next global timeslice boundary. Preemption is
	// timer-driven, as in Jikes RVM: a periodic clock tick requests a
	// context switch, honoured at the running thread's next yield point.
	// A thread dispatched mid-slice gets only the remainder, so thread
	// activity desynchronizes from slice boundaries exactly as it does
	// under a wall-clock interval timer.
	nextPreempt simtime.Ticks

	// expedited is a one-shot dispatch override set by Expedite: the
	// thread to run next regardless of queue order or priority.
	expedited *Thread

	switchCount int64
	running     bool

	// PreDispatch, when non-nil, runs in scheduler context immediately
	// before a thread is dispatched. The runtime uses it for the periodic
	// inversion detector.
	PreDispatch func(next *Thread)

	// OnSwitchCost and OnIdle, when non-nil, observe the two clock
	// advances the scheduler itself makes: the per-dispatch SwitchCost
	// charge, and the discrete-event jump to the next timer when no
	// thread is runnable. The profiler uses them to account scheduler
	// overhead ticks that no thread charged.
	OnSwitchCost func(d simtime.Ticks)
	OnIdle       func(d simtime.Ticks)
}

// New creates a scheduler over a fresh clock.
func New(cfg Config) *Scheduler {
	if cfg.Quantum <= 0 {
		cfg.Quantum = DefaultQuantum
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.Discard
	}
	return &Scheduler{
		cfg:    cfg,
		clock:  simtime.NewClock(),
		tracer: cfg.Tracer,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		back:   make(chan *Thread),
	}
}

// Clock returns the scheduler's virtual clock.
func (s *Scheduler) Clock() *simtime.Clock { return s.clock }

// Now returns the current virtual time.
func (s *Scheduler) Now() simtime.Ticks { return s.clock.Now() }

// Rng returns the deterministic random source (seeded from Config.Seed).
func (s *Scheduler) Rng() *rand.Rand { return s.rng }

// Quantum returns the configured quantum.
func (s *Scheduler) Quantum() simtime.Ticks { return s.cfg.Quantum }

// Policy returns the dispatch policy.
func (s *Scheduler) Policy() Policy { return s.cfg.Policy }

// Current returns the running thread, or nil when the scheduler itself is
// executing.
func (s *Scheduler) Current() *Thread { return s.current }

// ContextSwitches returns the number of dispatches performed.
func (s *Scheduler) ContextSwitches() int64 { return s.switchCount }

// Threads returns all spawned threads in spawn order. The slice is shared;
// callers must not mutate it.
func (s *Scheduler) Threads() []*Thread { return s.threads }

// Spawn creates a new thread. It may be called before Run or from a running
// thread. The body runs on its own goroutine but only when dispatched.
func (s *Scheduler) Spawn(name string, prio Priority, body func(*Thread)) *Thread {
	if prio < MinPriority || prio > MaxPriority {
		panic(fmt.Sprintf("sched: priority %d out of range [%d,%d]", prio, MinPriority, MaxPriority))
	}
	t := &Thread{
		id:     len(s.threads),
		name:   name,
		prio:   prio,
		base:   prio,
		state:  StateNew,
		sch:    s,
		body:   body,
		resume: make(chan resumeMsg),
	}
	s.threads = append(s.threads, t)
	s.live++
	go t.top()
	s.enqueue(t)
	// Other names the spawning thread (empty for pre-Run root spawns): the
	// happens-before edge the causal DAG (internal/causal) needs to anchor
	// a dynamically spawned thread's start to its parent's timeline.
	var spawner string
	if s.current != nil {
		spawner = s.current.name
	}
	s.tracer.Emit(trace.Event{At: s.clock.Now(), Kind: trace.ThreadStart, Thread: name, Other: spawner, N: int64(prio), Detail: fmt.Sprintf("prio=%d", prio)})
	return t
}

// top is the goroutine wrapper around the thread body.
func (t *Thread) top() {
	msg := <-t.resume
	if msg.kill {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, isKill := r.(killSignal); isKill {
				return // Drain: exit silently, scheduler is not listening.
			}
			t.panicVal = r
		}
		t.state = StateDone
		t.endedAt = t.sch.clock.Now()
		t.sch.tracer.Emit(trace.Event{At: t.endedAt, Kind: trace.ThreadEnd, Thread: t.name})
		t.sch.back <- t
	}()
	t.body(t)
}

// enqueue makes t runnable and places it on the run queue.
func (s *Scheduler) enqueue(t *Thread) {
	if t.inQueue {
		panic(fmt.Sprintf("sched: thread %q enqueued twice", t.name))
	}
	t.state = StateRunnable
	t.inQueue = true
	switch s.cfg.Policy {
	case RoundRobin:
		s.fifo.pushBack(t)
	case PriorityRR:
		s.buckets[t.prio].pushBack(t)
	}
}

// dequeue removes t from the run queue (used by SetPriority).
func (s *Scheduler) dequeue(t *Thread) {
	if !t.inQueue {
		return
	}
	switch s.cfg.Policy {
	case RoundRobin:
		s.fifo.remove(t)
	case PriorityRR:
		s.buckets[t.prio].remove(t)
	}
	t.inQueue = false
}

// pickNext pops the next runnable thread, or nil.
func (s *Scheduler) pickNext() *Thread {
	if t := s.expedited; t != nil {
		s.expedited = nil
		if t.inQueue {
			s.dequeue(t)
			return t
		}
	}
	switch s.cfg.Policy {
	case RoundRobin:
		if t := s.fifo.popFront(); t != nil {
			t.inQueue = false
			return t
		}
	case PriorityRR:
		for p := numPriorities - 1; p >= int(MinPriority); p-- {
			if t := s.buckets[p].popFront(); t != nil {
				t.inQueue = false
				return t
			}
		}
	}
	return nil
}

// Run dispatches threads until all are done (nil), or no progress is
// possible (ErrDeadlock), or some thread body panicked (the panic value is
// wrapped in the returned error).
func (s *Scheduler) Run() error {
	if s.running {
		panic("sched: Run reentered")
	}
	s.running = true
	defer func() { s.running = false }()

	for s.live > 0 {
		s.fireExpired()
		t := s.pickNext()
		if t == nil {
			// Nobody runnable: jump to the next timer if one exists.
			before := s.clock.Now()
			if s.clock.AdvanceToNext() {
				s.tracer.Emit(trace.Event{At: s.clock.Now(), Kind: trace.SchedIdle, N: int64(s.clock.Now() - before)})
				if s.OnIdle != nil {
					s.OnIdle(s.clock.Now() - before)
				}
				continue
			}
			return fmt.Errorf("%w: %s", ErrDeadlock, s.describeBlocked())
		}
		if s.PreDispatch != nil {
			s.PreDispatch(t)
		}
		s.dispatch(t)
		if t.state == StateDone {
			s.live--
			if t.panicVal != nil {
				return fmt.Errorf("sched: thread %q panicked: %v", t.name, t.panicVal)
			}
		}
	}
	return nil
}

// dispatch hands the processor to t and waits for it to come back.
func (s *Scheduler) dispatch(t *Thread) {
	s.switchCount++
	t.switches++
	if t.switches == 1 {
		t.startedAt = s.clock.Now()
	}
	if s.cfg.SwitchCost > 0 {
		s.clock.Advance(s.cfg.SwitchCost)
		if s.OnSwitchCost != nil {
			s.OnSwitchCost(s.cfg.SwitchCost)
		}
	}
	if s.clock.Now() >= s.nextPreempt {
		s.nextPreempt = s.clock.Now() + s.cfg.Quantum
	}
	t.sliceUsed = 0
	t.state = StateRunning
	s.current = t
	// N carries the dispatch cost just paid so stream consumers (the causal
	// DAG) can recover the previous thread's exact yield moment without
	// knowing the scheduler configuration.
	s.tracer.Emit(trace.Event{At: s.clock.Now(), Kind: trace.ContextSwitch, Thread: t.name, N: int64(s.cfg.SwitchCost)})
	t.resume <- resumeMsg{}
	<-s.back
	s.current = nil
	// A thread that yielded while runnable goes to the back of the queue.
	if t.state == StateRunnable && !t.inQueue {
		t.state = StateNew // enqueue() asserts/flips to Runnable
		s.enqueue(t)
	}
}

// fireExpired wakes every sleeping thread whose deadline has passed.
func (s *Scheduler) fireExpired() {
	for {
		payload, ok := s.clock.Expired()
		if !ok {
			return
		}
		switch v := payload.(type) {
		case *Thread:
			if v.state == StateSleeping {
				s.enqueue(v)
			}
		case func():
			v()
		default:
			panic(fmt.Sprintf("sched: unknown timer payload %T", payload))
		}
	}
}

// describeBlocked renders the blocked threads for ErrDeadlock.
func (s *Scheduler) describeBlocked() string {
	var parts []string
	for _, t := range s.threads {
		if t.state == StateBlocked {
			parts = append(parts, fmt.Sprintf("%s(on %s)", t.name, t.blockReason))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// Drain force-terminates every live thread goroutine. Call it after Run
// returns an error to avoid leaking goroutines. The scheduler is unusable
// afterwards.
func (s *Scheduler) Drain() {
	for _, t := range s.threads {
		switch t.state {
		case StateDone:
			continue
		case StateNew:
			// Never dispatched: goroutine is parked on first resume.
			t.resume <- resumeMsg{kill: true}
		case StateRunnable, StateBlocked, StateSleeping:
			// Parked inside yieldToScheduler: resume with kill, goroutine
			// panics killSignal and exits without reporting back.
			t.resume <- resumeMsg{kill: true}
		case StateRunning:
			panic("sched: Drain called while a thread is running")
		}
		t.state = StateDone
	}
	s.live = 0
}

// ---------------------------------------------------------------------------
// Thread-side primitives. All of the following must be called from the
// thread's own body (i.e. while it is the running thread).

// assertRunning guards thread-side entry points.
func (t *Thread) assertRunning(op string) {
	if t.sch.current != t {
		panic(fmt.Sprintf("sched: %s called on thread %q which is not running", op, t.name))
	}
}

// Advance charges d ticks of work to the clock without yielding.
func (t *Thread) Advance(d simtime.Ticks) {
	t.assertRunning("Advance")
	t.sch.clock.Advance(d)
	t.cpu += d
	t.sliceUsed += d
}

// NeedsYield reports whether the next YieldPoint would context-switch:
// the global timeslice timer has fired, or a preemption was requested.
func (t *Thread) NeedsYield() bool {
	return t.sch.clock.Now() >= t.sch.nextPreempt || t.preemptReq
}

// YieldPoint gives up the processor if the quantum has expired or a
// preemption was requested; otherwise it returns immediately. This is the
// analog of the compiler-inserted yield points in Jikes RVM.
func (t *Thread) YieldPoint() {
	t.assertRunning("YieldPoint")
	if t.NeedsYield() {
		t.preemptReq = false
		t.yieldToScheduler(StateRunnable, "")
	}
}

// Yield unconditionally gives up the processor, going to the back of the
// run queue.
func (t *Thread) Yield() {
	t.assertRunning("Yield")
	t.preemptReq = false
	t.yieldToScheduler(StateRunnable, "")
}

// Block parks the thread until some other thread calls Unblock, returning
// the wake reason. The reason string names the awaited resource and shows
// up in deadlock reports.
func (t *Thread) Block(reason string) WakeKind {
	t.assertRunning("Block")
	t.wakeKind = WakeNone
	t.yieldToScheduler(StateBlocked, reason)
	k := t.wakeKind
	t.wakeKind = WakeNone
	return k
}

// Sleep parks the thread for d ticks of virtual time.
func (t *Thread) Sleep(d simtime.Ticks) {
	t.assertRunning("Sleep")
	if d <= 0 {
		t.Yield()
		return
	}
	t.sch.tracer.Emit(trace.Event{At: t.sch.clock.Now(), Kind: trace.Sleep, Thread: t.name, N: int64(d)})
	t.sch.clock.ScheduleAfter(d, t)
	t.yieldToScheduler(StateSleeping, "sleep")
}

// Preempt requests that t yields at its next yield point. Any thread (or
// the scheduler) may call it.
func (t *Thread) Preempt() { t.preemptReq = true }

// Unblock makes a blocked thread runnable with the given wake reason. It
// must be called from scheduler context or from the running thread.
func (s *Scheduler) Unblock(t *Thread, kind WakeKind) {
	if t.state != StateBlocked {
		panic(fmt.Sprintf("sched: Unblock(%q) in state %v", t.name, t.state))
	}
	t.wakeKind = kind
	t.blockReason = ""
	s.enqueue(t)
}

// WakeSleeper prematurely wakes a sleeping thread (its timer fires as a
// no-op later). Used by deadlock resolution when the victim is asleep.
func (s *Scheduler) WakeSleeper(t *Thread, kind WakeKind) {
	if t.state != StateSleeping {
		panic(fmt.Sprintf("sched: WakeSleeper(%q) in state %v", t.name, t.state))
	}
	t.wakeKind = kind
	s.enqueue(t)
}

// Expedite marks a runnable thread to be dispatched next, overriding queue
// order and — crucially — dispatch priority. The revocation runtime uses
// it to implement the paper's "the scheduler initiates a context-switch
// and triggers rollback of the low priority thread at the next yield
// point": the victim runs promptly even when higher-priority CPU-bound
// threads exist (otherwise the rollback itself would suffer the very
// priority inversion it is meant to cure). No-op for threads that are not
// queued by the time the next dispatch happens; a later Expedite replaces
// an earlier one.
func (s *Scheduler) Expedite(t *Thread) {
	if !t.inQueue {
		return
	}
	s.expedited = t
}

// SetPriority changes a thread's effective priority (priority inheritance,
// ceiling protocols). The base priority is unchanged; use RestorePriority
// to undo a boost.
func (s *Scheduler) SetPriority(t *Thread, p Priority) {
	if p < MinPriority || p > MaxPriority {
		panic(fmt.Sprintf("sched: priority %d out of range", p))
	}
	if p == t.prio {
		return
	}
	inQ := t.inQueue
	if inQ {
		s.dequeue(t)
	}
	t.prio = p
	if inQ {
		t.state = StateNew
		s.enqueue(t)
	}
}

// RestorePriority resets a thread to its base (spawn-time) priority.
func (s *Scheduler) RestorePriority(t *Thread) { s.SetPriority(t, t.base) }

// yieldToScheduler transfers control to the scheduler loop and parks until
// redispatched.
func (t *Thread) yieldToScheduler(st State, reason string) {
	t.state = st
	t.blockReason = reason
	t.sch.back <- t
	msg := <-t.resume
	if msg.kill {
		panic(killSignal{})
	}
}

// ---------------------------------------------------------------------------
// deque is an intrusively indexed FIFO of threads with O(1) push/pop and
// O(n) removal (removal is rare: only priority changes).

type deque struct {
	items []*Thread
}

func (d *deque) pushBack(t *Thread) { d.items = append(d.items, t) }

func (d *deque) popFront() *Thread {
	if len(d.items) == 0 {
		return nil
	}
	t := d.items[0]
	copy(d.items, d.items[1:])
	d.items[len(d.items)-1] = nil
	d.items = d.items[:len(d.items)-1]
	return t
}

func (d *deque) remove(t *Thread) {
	for i, x := range d.items {
		if x == t {
			copy(d.items[i:], d.items[i+1:])
			d.items[len(d.items)-1] = nil
			d.items = d.items[:len(d.items)-1]
			return
		}
	}
}

func (d *deque) len() int { return len(d.items) }

func (d *deque) moveToFront(t *Thread) {
	for i, x := range d.items {
		if x == t {
			copy(d.items[1:i+1], d.items[:i])
			d.items[0] = t
			return
		}
	}
}
