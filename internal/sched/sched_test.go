package sched

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/simtime"
	"repro/internal/trace"
)

func newTestSched(cfg Config) *Scheduler {
	return New(cfg)
}

func TestSingleThreadRunsToCompletion(t *testing.T) {
	s := newTestSched(Config{})
	done := false
	s.Spawn("a", NormPriority, func(th *Thread) {
		th.Advance(10)
		done = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("body did not run")
	}
	if s.Now() != 10 {
		t.Fatalf("clock = %d, want 10", s.Now())
	}
}

func TestOnlyOneThreadRunsAtATime(t *testing.T) {
	s := newTestSched(Config{Quantum: 5})
	running := 0
	maxRunning := 0
	for i := 0; i < 4; i++ {
		s.Spawn(fmt.Sprintf("t%d", i), NormPriority, func(th *Thread) {
			for j := 0; j < 10; j++ {
				running++
				if running > maxRunning {
					maxRunning = running
				}
				th.Advance(1)
				running--
				th.YieldPoint()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxRunning != 1 {
		t.Fatalf("max concurrent threads = %d, want 1", maxRunning)
	}
}

func TestQuantumForcesRoundRobin(t *testing.T) {
	s := newTestSched(Config{Quantum: 3})
	var order []string
	work := func(th *Thread) {
		for i := 0; i < 3; i++ {
			order = append(order, th.Name())
			th.Advance(3) // exactly one quantum
			th.YieldPoint()
		}
	}
	s.Spawn("a", NormPriority, work)
	s.Spawn("b", NormPriority, work)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestYieldPointBelowQuantumDoesNotSwitch(t *testing.T) {
	s := newTestSched(Config{Quantum: 100})
	var order []string
	s.Spawn("a", NormPriority, func(th *Thread) {
		for i := 0; i < 5; i++ {
			order = append(order, "a")
			th.Advance(1)
			th.YieldPoint()
		}
	})
	s.Spawn("b", NormPriority, func(th *Thread) {
		order = append(order, "b")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// a never exhausts its quantum, so it finishes before b starts.
	want := []string{"a", "a", "a", "a", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestExplicitYield(t *testing.T) {
	s := newTestSched(Config{Quantum: 1000})
	var order []string
	s.Spawn("a", NormPriority, func(th *Thread) {
		order = append(order, "a1")
		th.Yield()
		order = append(order, "a2")
	})
	s.Spawn("b", NormPriority, func(th *Thread) {
		order = append(order, "b1")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBlockUnblock(t *testing.T) {
	s := newTestSched(Config{})
	var blocked *Thread
	var got WakeKind
	s.Spawn("waiter", NormPriority, func(th *Thread) {
		blocked = th
		got = th.Block("resource")
	})
	s.Spawn("waker", NormPriority, func(th *Thread) {
		for blocked == nil || blocked.State() != StateBlocked {
			th.Yield()
		}
		s.Unblock(blocked, WakeGranted)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != WakeGranted {
		t.Fatalf("wake kind = %v, want granted", got)
	}
}

func TestBlockReasonVisible(t *testing.T) {
	s := newTestSched(Config{})
	s.Spawn("a", NormPriority, func(th *Thread) {
		th.Block("the-lock")
	})
	err := s.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if want := "the-lock"; !contains(err.Error(), want) {
		t.Fatalf("error %q missing %q", err, want)
	}
	s.Drain()
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := newTestSched(Config{})
	s.Spawn("sleeper", NormPriority, func(th *Thread) {
		th.Sleep(500)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 500 {
		t.Fatalf("clock = %d, want 500 (discrete-event jump)", s.Now())
	}
}

func TestSleepZeroYields(t *testing.T) {
	s := newTestSched(Config{})
	var order []string
	s.Spawn("a", NormPriority, func(th *Thread) {
		th.Sleep(0)
		order = append(order, "a")
	})
	s.Spawn("b", NormPriority, func(th *Thread) {
		order = append(order, "b")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestSleepersInterleaveWithRunners(t *testing.T) {
	s := newTestSched(Config{Quantum: 10})
	var wokeAt simtime.Ticks
	s.Spawn("sleeper", NormPriority, func(th *Thread) {
		th.Sleep(15)
		wokeAt = s.Now()
	})
	s.Spawn("worker", NormPriority, func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Advance(10)
			th.YieldPoint()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt < 15 || wokeAt > 40 {
		t.Fatalf("sleeper woke at %d, want shortly after 15", wokeAt)
	}
}

func TestPreemptForcesYield(t *testing.T) {
	s := newTestSched(Config{Quantum: 1 << 40})
	var order []string
	var a *Thread
	a = s.Spawn("a", NormPriority, func(th *Thread) {
		order = append(order, "a1")
		th.Advance(1)
		th.YieldPoint() // no switch: huge quantum
		order = append(order, "a2")
		th.Preempt() // self-preempt
		th.YieldPoint()
		order = append(order, "a3")
	})
	s.Spawn("b", NormPriority, func(th *Thread) {
		order = append(order, "b1")
	})
	_ = a
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "a2", "b1", "a3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPriorityPolicyDispatchesHighFirst(t *testing.T) {
	s := newTestSched(Config{Policy: PriorityRR, Quantum: 5})
	var order []string
	s.Spawn("low", LowPriority, func(th *Thread) {
		order = append(order, "low")
	})
	s.Spawn("high", HighPriority, func(th *Thread) {
		order = append(order, "high")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "high" {
		t.Fatalf("order = %v, want high first", order)
	}
}

func TestRoundRobinIgnoresPriority(t *testing.T) {
	s := newTestSched(Config{Policy: RoundRobin})
	var order []string
	s.Spawn("low", LowPriority, func(th *Thread) {
		order = append(order, "low")
	})
	s.Spawn("high", HighPriority, func(th *Thread) {
		order = append(order, "high")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "low" {
		t.Fatalf("order = %v, want spawn order (round-robin ignores priority)", order)
	}
}

func TestSetPriorityRequeues(t *testing.T) {
	s := newTestSched(Config{Policy: PriorityRR, Quantum: 5})
	var order []string
	var low *Thread
	low = s.Spawn("low", LowPriority, func(th *Thread) {
		order = append(order, "low")
	})
	s.Spawn("boss", MaxPriority, func(th *Thread) {
		s.SetPriority(low, MaxPriority-1)
		order = append(order, "boss")
	})
	s.Spawn("mid", NormPriority, func(th *Thread) {
		order = append(order, "mid")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"boss", "low", "mid"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if low.BasePriority() != LowPriority {
		t.Fatalf("base priority changed: %d", low.BasePriority())
	}
	s.RestorePriority(low)
	if low.Priority() != LowPriority {
		t.Fatalf("RestorePriority: %d", low.Priority())
	}
}

func TestSpawnFromRunningThread(t *testing.T) {
	s := newTestSched(Config{})
	ran := false
	s.Spawn("parent", NormPriority, func(th *Thread) {
		s.Spawn("child", NormPriority, func(*Thread) { ran = true })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("child did not run")
	}
}

func TestPanicInBodyReported(t *testing.T) {
	s := newTestSched(Config{})
	s.Spawn("boom", NormPriority, func(th *Thread) {
		panic("kaboom")
	})
	err := s.Run()
	if err == nil || !contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestSwitchCostCharged(t *testing.T) {
	s := newTestSched(Config{SwitchCost: 7})
	s.Spawn("a", NormPriority, func(th *Thread) {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 7 {
		t.Fatalf("clock = %d, want 7 (one dispatch)", s.Now())
	}
}

func TestAccounting(t *testing.T) {
	s := newTestSched(Config{Quantum: 10})
	var th1 *Thread
	th1 = s.Spawn("a", NormPriority, func(th *Thread) {
		th.Advance(25)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if th1.CPU() != 25 {
		t.Fatalf("CPU = %d", th1.CPU())
	}
	if th1.State() != StateDone {
		t.Fatalf("state = %v", th1.State())
	}
	if th1.EndedAt() != 25 {
		t.Fatalf("EndedAt = %d", th1.EndedAt())
	}
	if s.ContextSwitches() != 1 {
		t.Fatalf("switches = %d", s.ContextSwitches())
	}
}

func TestDeterministicRng(t *testing.T) {
	run := func() []int64 {
		s := newTestSched(Config{Seed: 42})
		var vals []int64
		s.Spawn("a", NormPriority, func(th *Thread) {
			for i := 0; i < 5; i++ {
				vals = append(vals, s.Rng().Int63n(1000))
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs differ: %v vs %v", a, b)
		}
	}
}

func TestTracerReceivesLifecycleEvents(t *testing.T) {
	var rec trace.Recorder
	s := newTestSched(Config{Tracer: &rec})
	s.Spawn("a", NormPriority, func(th *Thread) { th.Advance(1) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Count(trace.ThreadStart) != 1 || rec.Count(trace.ThreadEnd) != 1 {
		t.Fatalf("lifecycle events: %d starts, %d ends", rec.Count(trace.ThreadStart), rec.Count(trace.ThreadEnd))
	}
	if rec.Count(trace.ContextSwitch) < 1 {
		t.Fatal("no context-switch events")
	}
}

func TestWakeSleeperEarly(t *testing.T) {
	s := newTestSched(Config{})
	var sleeper *Thread
	wokeAt := simtime.Ticks(-1)
	sleeper = s.Spawn("sleeper", NormPriority, func(th *Thread) {
		th.Sleep(1_000_000)
		wokeAt = s.Now()
	})
	s.Spawn("waker", NormPriority, func(th *Thread) {
		th.Advance(10)
		th.Yield() // let sleeper park first? it parked before us (spawn order)
		if sleeper.State() == StateSleeping {
			s.WakeSleeper(sleeper, WakeInterrupt)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt < 0 || wokeAt >= 1_000_000 {
		t.Fatalf("sleeper woke at %d, want early wake", wokeAt)
	}
}

func TestDrainOnDeadlock(t *testing.T) {
	s := newTestSched(Config{})
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("b%d", i), NormPriority, func(th *Thread) {
			th.Block("forever")
		})
	}
	err := s.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
	s.Drain() // must not hang or panic
}

func TestThreadIntrospection(t *testing.T) {
	s := newTestSched(Config{})
	th := s.Spawn("named", HighPriority, func(th *Thread) {})
	if th.Name() != "named" || th.ID() != 0 || th.Priority() != HighPriority {
		t.Fatalf("introspection: %s %d %d", th.Name(), th.ID(), th.Priority())
	}
	if len(s.Threads()) != 1 {
		t.Fatal("Threads() wrong")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidPriorityPanics(t *testing.T) {
	s := newTestSched(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid priority")
		}
	}()
	s.Spawn("bad", 0, func(*Thread) {})
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{
		StateNew: "new", StateRunnable: "runnable", StateRunning: "running",
		StateBlocked: "blocked", StateSleeping: "sleeping", StateDone: "done",
	} {
		if st.String() != want {
			t.Errorf("State(%d) = %q, want %q", int(st), st, want)
		}
	}
	if RoundRobin.String() != "round-robin" || PriorityRR.String() != "priority-rr" {
		t.Error("policy strings wrong")
	}
	for k, want := range map[WakeKind]string{WakeGranted: "granted", WakeRetry: "retry", WakeInterrupt: "interrupt", WakeNone: "none"} {
		if k.String() != want {
			t.Errorf("WakeKind %d = %q", int(k), k)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
