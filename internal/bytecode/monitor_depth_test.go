package bytecode

import (
	"strings"
	"testing"
)

// assembleAndVerify assembles src and runs full verification, returning the
// first error from either stage.
func assembleAndVerify(src string) error {
	p, err := Assemble(src)
	if err != nil {
		return err
	}
	return Verify(p)
}

// TestMonitorBalanceUnderflow: a path reaching MONITOREXIT with no monitor
// held is rejected.
func TestMonitorBalanceUnderflow(t *testing.T) {
	err := assembleAndVerify(`
class Lock {
    unused
}
method main locals 1 {
    newobj Lock
    store 0
    load 0
    monitorexit
    return
}
`)
	if err == nil || !strings.Contains(err.Error(), "monitorexit with no enclosing monitorenter") {
		t.Fatalf("underflow not rejected: %v", err)
	}
}

// TestMonitorBalanceMergeMismatch: two paths joining at different monitor
// depths are rejected (one enters, the other does not).
func TestMonitorBalanceMergeMismatch(t *testing.T) {
	err := assembleAndVerify(`
class Lock {
    unused
}
method main locals 2 {
    newobj Lock
    store 0
    load 1
    ifz skip
    load 0
    monitorenter
  skip:
    return
}
`)
	if err == nil || !strings.Contains(err.Error(), "inconsistent monitor depth") {
		t.Fatalf("merge mismatch not rejected: %v", err)
	}
}

// TestMonitorBalanceLoopMismatch: a loop whose body enters a monitor it
// never exits accumulates depth across iterations — the back edge merges at
// a different depth and is rejected.
func TestMonitorBalanceLoopMismatch(t *testing.T) {
	err := assembleAndVerify(`
class Lock {
    unused
}
method main locals 2 {
    newobj Lock
    store 0
  loop:
    load 0
    monitorenter
    load 1
    ifz loop
    load 0
    monitorexit
    return
}
`)
	if err == nil || !strings.Contains(err.Error(), "inconsistent monitor depth") {
		t.Fatalf("loop depth growth not rejected: %v", err)
	}
}

// TestMonitorBalanceAccepted: balanced nesting, branches and handlers pass,
// and MonitorDepths reports the expected depths.
func TestMonitorBalanceAccepted(t *testing.T) {
	p, err := Assemble(`
class Lock {
    unused
}
method main locals 2 {
    newobj Lock
    store 0
    newobj Lock
    store 1
    load 0
    monitorenter
    load 1
    monitorenter
    load 1
    monitorexit
    load 0
    monitorexit
    return
}
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := p.Method("main")
	depths, err := MonitorDepths(p, m)
	if err != nil {
		t.Fatal(err)
	}
	// Depth before each instruction: rises to 2 between the enters and the
	// exits, back to 0 before return.
	want := []int{0, 0, 0, 0, 0, 0, 1, 1, 2, 2, 1, 1, 0}
	for pc, w := range want {
		if depths[pc] != w {
			t.Fatalf("depth[%d] = %d, want %d (all %v)", pc, depths[pc], w, depths)
		}
	}
}

// TestMonitorBalanceHandlerEntry: a handler covering a synchronized body
// enters at the depth of its range start — the depth the runtime's
// inner-releases-first dispatch produces.
func TestMonitorBalanceHandlerEntry(t *testing.T) {
	// Rewriter output shape: the whole sync block is covered by a handler
	// that releases the monitor and rethrows.
	p, err := Assemble(`
class Lock {
    unused
}
method main locals 1 {
    newobj Lock
    store 0
    load 0
    monitorenter
  body:
    nop
  exit:
    load 0
    monitorexit
    return
  rel:
    pop
    load 0
    monitorexit
    rethrow
}
handler main from body to exit target rel catch *
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := p.Method("main")
	depths, err := MonitorDepths(p, m)
	if err != nil {
		t.Fatal(err)
	}
	var rel int
	for _, h := range m.Handlers {
		rel = h.Target
	}
	if depths[rel] != 1 {
		t.Fatalf("handler entry depth = %d, want 1 (all %v)", depths[rel], depths)
	}
}

// TestVerifyRunsBalanceCheck: Verify rejects unbalanced programs, not just
// MonitorDepths called directly.
func TestVerifyRunsBalanceCheck(t *testing.T) {
	p := &Program{
		Classes: []*Class{{Name: "Lock", Fields: []Field{{Name: "f"}}}},
		Methods: []*Method{{
			Name:   "main",
			Locals: 1,
			Code: []Instr{
				{Op: NEWOBJ, S: "Lock"},
				{Op: STORE, A: 0},
				{Op: LOAD, A: 0},
				{Op: MONITOREXIT},
				{Op: RETURN},
			},
		}},
	}
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "monitorexit") {
		t.Fatalf("Verify accepted unbalanced program: %v", err)
	}
}
