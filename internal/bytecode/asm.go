package bytecode

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual program form. The syntax is line-based;
// '#' and '//' start comments. Example:
//
//	static flag volatile = 0
//	static total = 100
//
//	class Point {
//	    x
//	    y volatile
//	    z = 7
//	}
//
//	thread worker priority 2 run workerMain
//
//	method workerMain locals 2 {
//	    const 10
//	    store 0
//	  loop:
//	    load 0
//	    ifz done
//	    load 0
//	    const 1
//	    sub
//	    store 0
//	    goto loop
//	  done:
//	    return
//	}
//
//	method Point.get synchronized args 1 locals 1 returns {
//	    load 0
//	    getfield Point.x
//	    ireturn
//	}
//
//	handler workerMain from loop to done target done catch *
//
// Field operands may be written as Class.field (resolved to an offset) or
// as a bare integer offset. Static operands may be a name or an offset.
// Branch targets are labels or absolute instruction indices.
func Assemble(src string) (*Program, error) {
	p := &Program{}
	lines := strings.Split(src, "\n")
	i := 0
	var pendingHandlers []handlerDecl
	labelsByMethod := map[string]map[string]int{}
	for i < len(lines) {
		line := stripComment(lines[i])
		i++
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "static":
			s, err := parseStatic(fields[1:])
			if err != nil {
				return nil, asmErr(i, err)
			}
			p.Statics = append(p.Statics, s)
		case "class":
			cls, consumed, err := parseClass(fields[1:], lines[i:])
			if err != nil {
				return nil, asmErr(i, err)
			}
			p.Classes = append(p.Classes, cls)
			i += consumed
		case "thread":
			t, err := parseThread(fields[1:])
			if err != nil {
				return nil, asmErr(i, err)
			}
			p.Threads = append(p.Threads, t)
		case "method":
			m, labels, consumed, err := parseMethod(fields[1:], lines[i:])
			if err != nil {
				return nil, asmErr(i, err)
			}
			p.Methods = append(p.Methods, m)
			labelsByMethod[m.Name] = labels
			i += consumed
		case "handler":
			h, err := parseHandlerDecl(fields[1:])
			if err != nil {
				return nil, asmErr(i, err)
			}
			pendingHandlers = append(pendingHandlers, h)
		default:
			return nil, asmErr(i, fmt.Errorf("unknown directive %q", fields[0]))
		}
	}
	// Resolve symbolic operands now that all classes/statics/methods exist.
	for _, m := range p.Methods {
		if err := resolveSymbols(p, m); err != nil {
			return nil, err
		}
	}
	for _, h := range pendingHandlers {
		m, ok := p.Method(h.method)
		if !ok {
			return nil, fmt.Errorf("asm: handler for unknown method %q", h.method)
		}
		labels := labelsByMethod[m.Name]
		from, err := resolveLabel(m, labels, h.from)
		if err != nil {
			return nil, err
		}
		to, err := resolveLabel(m, labels, h.to)
		if err != nil {
			return nil, err
		}
		target, err := resolveLabel(m, labels, h.target)
		if err != nil {
			return nil, err
		}
		m.Handlers = append(m.Handlers, Handler{From: from, To: to, Target: target, Catch: h.catch})
	}
	return p, nil
}

// MustAssemble is Assemble panicking on error; for tests and examples.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type handlerDecl struct {
	method, from, to, target, catch string
}

func asmErr(line int, err error) error {
	return fmt.Errorf("asm: line %d: %w", line, err)
}

func stripComment(s string) string {
	if i := strings.Index(s, "#"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// parseStatic: NAME [volatile] [= INIT]
func parseStatic(f []string) (Static, error) {
	if len(f) == 0 {
		return Static{}, fmt.Errorf("static needs a name")
	}
	s := Static{Name: f[0]}
	rest := f[1:]
	for len(rest) > 0 {
		switch rest[0] {
		case "volatile":
			s.Volatile = true
			rest = rest[1:]
		case "=":
			if len(rest) < 2 {
				return s, fmt.Errorf("static %s: missing initializer", s.Name)
			}
			v, err := strconv.ParseInt(rest[1], 10, 64)
			if err != nil {
				return s, fmt.Errorf("static %s: %v", s.Name, err)
			}
			s.Init = v
			rest = rest[2:]
		default:
			return s, fmt.Errorf("static %s: unexpected %q", s.Name, rest[0])
		}
	}
	return s, nil
}

// parseClass: NAME { field-lines } — fields one per line: NAME [volatile] [= INIT]
func parseClass(f []string, body []string) (*Class, int, error) {
	if len(f) < 1 {
		return nil, 0, fmt.Errorf("class needs a name")
	}
	cls := &Class{Name: f[0]}
	if len(f) < 2 || f[1] != "{" {
		return nil, 0, fmt.Errorf("class %s: expected '{'", cls.Name)
	}
	if len(f) > 2 {
		return nil, 0, fmt.Errorf("class %s: unexpected %q after '{' (fields go on following lines)", cls.Name, f[2])
	}
	for n, raw := range body {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if line == "}" {
			return cls, n + 1, nil
		}
		fs := strings.Fields(line)
		fld := Field{Name: fs[0]}
		rest := fs[1:]
		for len(rest) > 0 {
			switch rest[0] {
			case "volatile":
				fld.Volatile = true
				rest = rest[1:]
			case "=":
				if len(rest) < 2 {
					return nil, 0, fmt.Errorf("field %s.%s: missing initializer", cls.Name, fld.Name)
				}
				v, err := strconv.ParseInt(rest[1], 10, 64)
				if err != nil {
					return nil, 0, err
				}
				fld.Init = v
				rest = rest[2:]
			default:
				return nil, 0, fmt.Errorf("field %s.%s: unexpected %q", cls.Name, fld.Name, rest[0])
			}
		}
		cls.Fields = append(cls.Fields, fld)
	}
	return nil, 0, fmt.Errorf("class %s: missing '}'", cls.Name)
}

// parseThread: NAME priority N run METHOD
func parseThread(f []string) (ThreadDecl, error) {
	t := ThreadDecl{Priority: 5}
	if len(f) == 0 {
		return t, fmt.Errorf("thread needs a name")
	}
	t.Name = f[0]
	rest := f[1:]
	for len(rest) > 0 {
		switch rest[0] {
		case "priority":
			if len(rest) < 2 {
				return t, fmt.Errorf("thread %s: missing priority", t.Name)
			}
			v, err := strconv.Atoi(rest[1])
			if err != nil {
				return t, err
			}
			t.Priority = v
			rest = rest[2:]
		case "run":
			if len(rest) < 2 {
				return t, fmt.Errorf("thread %s: missing method", t.Name)
			}
			t.Method = rest[1]
			rest = rest[2:]
		default:
			return t, fmt.Errorf("thread %s: unexpected %q", t.Name, rest[0])
		}
	}
	if t.Method == "" {
		return t, fmt.Errorf("thread %s: no run method", t.Name)
	}
	return t, nil
}

// parseHandlerDecl: METHOD from LABEL to LABEL target LABEL catch CLASS
func parseHandlerDecl(f []string) (handlerDecl, error) {
	var h handlerDecl
	if len(f) != 9 || f[1] != "from" || f[3] != "to" || f[5] != "target" || f[7] != "catch" {
		return h, fmt.Errorf("handler wants: METHOD from L to L target L catch CLASS")
	}
	h.method, h.from, h.to, h.target, h.catch = f[0], f[2], f[4], f[6], f[8]
	return h, nil
}

// parseMethod: NAME [synchronized] [args N] [locals N] [returns] { body }
// It returns the method, its label table, and the number of body lines
// consumed.
func parseMethod(f []string, body []string) (*Method, map[string]int, int, error) {
	if len(f) < 1 {
		return nil, nil, 0, fmt.Errorf("method needs a name")
	}
	m := &Method{Name: f[0], Locals: 0}
	rest := f[1:]
	for len(rest) > 0 && rest[0] != "{" {
		switch rest[0] {
		case "synchronized":
			m.Synchronized = true
			rest = rest[1:]
		case "returns":
			m.Returns = true
			rest = rest[1:]
		case "args":
			if len(rest) < 2 {
				return nil, nil, 0, fmt.Errorf("method %s: missing args count", m.Name)
			}
			v, err := strconv.Atoi(rest[1])
			if err != nil {
				return nil, nil, 0, err
			}
			m.Args = v
			rest = rest[2:]
		case "locals":
			if len(rest) < 2 {
				return nil, nil, 0, fmt.Errorf("method %s: missing locals count", m.Name)
			}
			v, err := strconv.Atoi(rest[1])
			if err != nil {
				return nil, nil, 0, err
			}
			m.Locals = v
			rest = rest[2:]
		default:
			return nil, nil, 0, fmt.Errorf("method %s: unexpected %q", m.Name, rest[0])
		}
	}
	if len(rest) == 0 || rest[0] != "{" {
		return nil, nil, 0, fmt.Errorf("method %s: expected '{'", m.Name)
	}
	if len(rest) > 1 {
		return nil, nil, 0, fmt.Errorf("method %s: unexpected %q after '{' (body starts on the next line)", m.Name, rest[1])
	}
	if m.Locals < m.Args {
		m.Locals = m.Args
	}
	labels := map[string]int{}
	var pending []pendingBranch
	// Structured synchronized blocks: `sync N {` ... `}` lower to
	// LOAD N; MONITORENTER ... LOAD N; MONITOREXIT with the extent
	// recorded in m.Regions so the rewriter can build rollback scopes.
	type openSync struct {
		objLocal int
		loadPC   int
	}
	var syncStack []openSync
	for n, raw := range body {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if line == "}" {
			if len(syncStack) > 0 {
				os := syncStack[len(syncStack)-1]
				syncStack = syncStack[:len(syncStack)-1]
				m.Code = append(m.Code, Instr{Op: LOAD, A: os.objLocal})
				exitPC := len(m.Code)
				m.Code = append(m.Code, Instr{Op: MONITOREXIT})
				m.Regions = append(m.Regions, SyncRegion{EnterPC: os.loadPC, ExitPC: exitPC, ObjLocal: os.objLocal})
				continue
			}
			for _, pb := range pending {
				pc, ok := labels[pb.label]
				if !ok {
					return nil, nil, 0, fmt.Errorf("method %s: undefined label %q", m.Name, pb.label)
				}
				m.Code[pb.at].A = pc
			}
			return m, labels, n + 1, nil
		}
		if fs := strings.Fields(line); fs[0] == "sync" {
			if len(fs) != 3 || fs[2] != "{" {
				return nil, nil, 0, fmt.Errorf("method %s: sync wants `sync LOCAL {`", m.Name)
			}
			local, err := strconv.Atoi(fs[1])
			if err != nil {
				return nil, nil, 0, fmt.Errorf("method %s: sync local: %v", m.Name, err)
			}
			loadPC := len(m.Code)
			m.Code = append(m.Code, Instr{Op: LOAD, A: local})
			m.Code = append(m.Code, Instr{Op: MONITORENTER})
			syncStack = append(syncStack, openSync{objLocal: local, loadPC: loadPC})
			continue
		}
		if strings.HasSuffix(line, ":") && len(strings.Fields(line)) == 1 {
			labels[strings.TrimSuffix(line, ":")] = len(m.Code)
			continue
		}
		in, pb, err := parseInstr(line, len(m.Code))
		if err != nil {
			return nil, nil, 0, fmt.Errorf("method %s: %w", m.Name, err)
		}
		m.Code = append(m.Code, in)
		if pb != nil {
			pending = append(pending, *pb)
		}
	}
	return nil, nil, 0, fmt.Errorf("method %s: missing '}'", m.Name)
}

type pendingBranch struct {
	at    int
	label string
}

// parseInstr parses one instruction line.
func parseInstr(line string, pc int) (Instr, *pendingBranch, error) {
	f := strings.Fields(line)
	op, ok := opByName[f[0]]
	if !ok {
		return Instr{}, nil, fmt.Errorf("unknown opcode %q", f[0])
	}
	in := Instr{Op: op}
	arg := func(i int) (string, error) {
		if len(f) <= i {
			return "", fmt.Errorf("%s: missing operand", f[0])
		}
		return f[i], nil
	}
	switch op {
	case CONST:
		s, err := arg(1)
		if err != nil {
			return in, nil, err
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return in, nil, err
		}
		in.V = v
	case LOAD, STORE:
		s, err := arg(1)
		if err != nil {
			return in, nil, err
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return in, nil, err
		}
		in.A = v
	case GOTO, IFNZ, IFZ:
		s, err := arg(1)
		if err != nil {
			return in, nil, err
		}
		if v, err := strconv.Atoi(s); err == nil {
			in.A = v
			return in, nil, nil
		}
		return in, &pendingBranch{at: pc, label: s}, nil
	case GETFIELD, PUTFIELD, GETSTATIC, PUTSTATIC, PUTFIELDRAW, PUTSTATICRAW:
		s, err := arg(1)
		if err != nil {
			return in, nil, err
		}
		if v, err := strconv.Atoi(s); err == nil {
			in.A = v
		} else {
			in.S = s // resolved later (Class.field or static name)
			in.A = -1
		}
	case NEWOBJ, INVOKE, THROW:
		s, err := arg(1)
		if err != nil {
			return in, nil, err
		}
		in.S = s
	case NATIVE:
		s, err := arg(1)
		if err != nil {
			return in, nil, err
		}
		// native NAME [nargs]
		in.S = s
		if len(f) > 2 {
			v, err := strconv.Atoi(f[2])
			if err != nil {
				return in, nil, err
			}
			in.A = v
		}
	case SPAWN:
		s, err := arg(1)
		if err != nil {
			return in, nil, err
		}
		// spawn METHOD [priority]  (priority defaults to 5, Java-style)
		in.S = s
		in.A = 5
		if len(f) > 2 {
			v, err := strconv.Atoi(f[2])
			if err != nil {
				return in, nil, err
			}
			in.A = v
		}
	}
	return in, nil, nil
}

// resolveSymbols turns Class.field / static-name operands into offsets.
func resolveSymbols(p *Program, m *Method) error {
	for i := range m.Code {
		in := &m.Code[i]
		if in.A != -1 || in.S == "" {
			continue
		}
		switch in.Op {
		case GETFIELD, PUTFIELD, PUTFIELDRAW:
			cls, fieldName, ok := strings.Cut(in.S, ".")
			if !ok {
				return fmt.Errorf("asm: %s@%d: field operand %q wants Class.field", m.Name, i, in.S)
			}
			c, okc := p.Class(cls)
			if !okc {
				return fmt.Errorf("asm: %s@%d: unknown class %q", m.Name, i, cls)
			}
			idx, okf := c.FieldIndex(fieldName)
			if !okf {
				return fmt.Errorf("asm: %s@%d: unknown field %q", m.Name, i, in.S)
			}
			in.A = idx
		case GETSTATIC, PUTSTATIC, PUTSTATICRAW:
			idx, ok := p.StaticIndex(in.S)
			if !ok {
				return fmt.Errorf("asm: %s@%d: unknown static %q", m.Name, i, in.S)
			}
			in.A = idx
		}
	}
	return nil
}

// resolveLabel resolves a label or absolute index within a method.
func resolveLabel(m *Method, labels map[string]int, s string) (int, error) {
	if v, err := strconv.Atoi(s); err == nil {
		return v, nil
	}
	if pc, ok := labels[s]; ok {
		return pc, nil
	}
	return 0, fmt.Errorf("asm: method %s: undefined label %q", m.Name, s)
}

// Disassemble renders a method for debugging.
func Disassemble(m *Method) string {
	var b strings.Builder
	fmt.Fprintf(&b, "method %s args=%d locals=%d maxstack=%d", m.Name, m.Args, m.Locals, m.MaxStack)
	if m.Synchronized {
		b.WriteString(" synchronized")
	}
	if m.Returns {
		b.WriteString(" returns")
	}
	b.WriteString("\n")
	for pc, in := range m.Code {
		fmt.Fprintf(&b, "  %3d: %v\n", pc, in)
	}
	for _, h := range m.Handlers {
		fmt.Fprintf(&b, "  handler [%d,%d) -> %d catch %s\n", h.From, h.To, h.Target, h.Catch)
	}
	return b.String()
}
