package bytecode

import (
	"strings"
	"testing"
)

const miniProgram = `
# A small complete program.
static counter = 0
static flag volatile = 1

class Point {
    x
    y volatile
    z = 7
}

thread worker priority 2 run workerMain
thread boss priority 8 run bossMain

method workerMain locals 2 {
    const 10
    store 0
  loop:
    load 0
    ifz done
    load 0
    const 1
    sub
    store 0
    goto loop
  done:
    return
}

method bossMain locals 1 {
    getstatic counter
    const 1
    add
    putstatic counter
    return
}

method Point.get args 1 locals 1 returns {
    load 0
    getfield Point.x
    ireturn
}
`

func TestAssembleMiniProgram(t *testing.T) {
	p, err := Assemble(miniProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Statics) != 2 || len(p.Classes) != 1 || len(p.Methods) != 3 || len(p.Threads) != 2 {
		t.Fatalf("counts: %d statics %d classes %d methods %d threads",
			len(p.Statics), len(p.Classes), len(p.Methods), len(p.Threads))
	}
	if !p.Statics[1].Volatile || p.Statics[1].Name != "flag" || p.Statics[1].Init != 1 {
		t.Errorf("static flag parsed wrong: %+v", p.Statics[1])
	}
	cls, _ := p.Class("Point")
	if len(cls.Fields) != 3 || !cls.Fields[1].Volatile || cls.Fields[2].Init != 7 {
		t.Errorf("class fields wrong: %+v", cls.Fields)
	}
	if i, ok := cls.FieldIndex("y"); !ok || i != 1 {
		t.Errorf("FieldIndex(y) = %d,%v", i, ok)
	}
	if p.Threads[1].Priority != 8 || p.Threads[1].Method != "bossMain" {
		t.Errorf("thread parsed wrong: %+v", p.Threads[1])
	}
	if err := Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestAssembleLabelsResolve(t *testing.T) {
	p := MustAssemble(miniProgram)
	m, _ := p.Method("workerMain")
	// The ifz at pc 2 must target the pc labelled "done".
	var ifzTarget, gotoTarget int
	for _, in := range m.Code {
		if in.Op == IFZ {
			ifzTarget = in.A
		}
		if in.Op == GOTO {
			gotoTarget = in.A
		}
	}
	if m.Code[ifzTarget].Op != RETURN {
		t.Errorf("ifz targets %v, want return", m.Code[ifzTarget].Op)
	}
	if gotoTarget != 2 {
		t.Errorf("goto targets %d, want 2 (loop head)", gotoTarget)
	}
}

func TestAssembleFieldSymbolResolution(t *testing.T) {
	p := MustAssemble(miniProgram)
	m, _ := p.Method("Point.get")
	if m.Code[1].Op != GETFIELD || m.Code[1].A != 0 {
		t.Errorf("getfield Point.x resolved to %+v", m.Code[1])
	}
}

func TestAssembleSyncBlocks(t *testing.T) {
	p := MustAssemble(`
class Lock {
    dummy
}
method run locals 2 {
    newobj Lock
    store 0
    sync 0 {
        const 1
        pop
        sync 0 {
            const 2
            pop
        }
    }
    return
}
`)
	m, _ := p.Method("run")
	if len(m.Regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(m.Regions))
	}
	// Innermost first.
	inner, outer := m.Regions[0], m.Regions[1]
	if !(outer.EnterPC < inner.EnterPC && inner.ExitPC < outer.ExitPC) {
		t.Errorf("region nesting wrong: inner=%+v outer=%+v", inner, outer)
	}
	if m.Code[inner.EnterPC].Op != LOAD || m.Code[inner.EnterPC+1].Op != MONITORENTER {
		t.Errorf("region entry code wrong")
	}
	if m.Code[inner.ExitPC].Op != MONITOREXIT {
		t.Errorf("region exit code wrong")
	}
	if err := Verify(p); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleHandlers(t *testing.T) {
	p := MustAssemble(`
method risky locals 1 {
  tryStart:
    throw Boom
  tryEnd:
    return
  catcher:
    pop
    return
}
handler risky from tryStart to tryEnd target catcher catch Boom
`)
	m, _ := p.Method("risky")
	if len(m.Handlers) != 1 {
		t.Fatalf("handlers = %d", len(m.Handlers))
	}
	h := m.Handlers[0]
	if h.From != 0 || h.Catch != "Boom" {
		t.Errorf("handler = %+v", h)
	}
	if err := Verify(p); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus directive",
		"method m { zzz\n}",
		"method m locals 1 {\n goto nowhere\n return\n}",
		"static",
		"class C x",                            // missing {
		"thread t run",                         // missing method
		"method m {\n return",                  // missing }
		"handler m from a to b target c catch", // malformed
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestVerifyCatchesStackUnderflow(t *testing.T) {
	p := MustAssemble(`
method bad locals 1 {
    add
    return
}
`)
	if err := Verify(p); err == nil {
		t.Fatal("underflow not caught")
	}
}

func TestVerifyCatchesInconsistentMerge(t *testing.T) {
	p := &Program{Methods: []*Method{{
		Name:   "bad",
		Locals: 1,
		Code: []Instr{
			{Op: LOAD, A: 0},  // 0: depth 0 -> 1
			{Op: IFNZ, A: 0},  // 1: branch back to 0 with depth 0; fallthrough depth 0
			{Op: CONST, V: 1}, // 2: depth 0 -> 1
			{Op: IFNZ, A: 0},  // 3: jump to 0 with depth... consistent actually
			{Op: RETURN},
		},
	}}}
	// Build a real inconsistency: jump into the middle of a push sequence.
	p = &Program{Methods: []*Method{{
		Name:   "bad",
		Locals: 1,
		Code: []Instr{
			{Op: CONST, V: 1}, // 0: -> depth 1
			{Op: IFNZ, A: 3},  // 1: to 3 with depth 0
			{Op: CONST, V: 2}, // 2: depth 0 -> 1
			{Op: POP},         // 3: depth 1 (fallthrough) vs 0 (branch): inconsistent
			{Op: RETURN},
		},
	}}}
	if err := Verify(p); err == nil {
		t.Fatal("inconsistent merge not caught")
	}
}

func TestVerifyCatchesBadLocals(t *testing.T) {
	p := &Program{Methods: []*Method{{
		Name: "bad", Locals: 1,
		Code: []Instr{{Op: LOAD, A: 5}, {Op: POP}, {Op: RETURN}},
	}}}
	if err := Verify(p); err == nil {
		t.Fatal("bad local not caught")
	}
}

func TestVerifyCatchesFallOffEnd(t *testing.T) {
	p := &Program{Methods: []*Method{{
		Name: "bad", Locals: 0,
		Code: []Instr{{Op: NOP}},
	}}}
	if err := Verify(p); err == nil {
		t.Fatal("fall-off-end not caught")
	}
}

func TestVerifyCatchesUnknownSymbols(t *testing.T) {
	p := &Program{Methods: []*Method{{
		Name: "bad", Locals: 0,
		Code: []Instr{{Op: INVOKE, S: "missing"}, {Op: RETURN}},
	}}}
	if err := Verify(p); err == nil {
		t.Fatal("unknown invoke not caught")
	}
	p = &Program{Methods: []*Method{{
		Name: "bad", Locals: 0,
		Code: []Instr{{Op: NEWOBJ, S: "Nope"}, {Op: POP}, {Op: RETURN}},
	}}}
	if err := Verify(p); err == nil {
		t.Fatal("unknown class not caught")
	}
}

func TestVerifyThreadDecls(t *testing.T) {
	p := &Program{
		Methods: []*Method{{Name: "m", Locals: 0, Code: []Instr{{Op: RETURN}}}},
		Threads: []ThreadDecl{{Name: "t", Priority: 99, Method: "m"}},
	}
	if err := Verify(p); err == nil {
		t.Fatal("bad priority not caught")
	}
	p.Threads[0].Priority = 5
	p.Threads[0].Method = "nope"
	if err := Verify(p); err == nil {
		t.Fatal("unknown thread method not caught")
	}
}

func TestVerifyComputesMaxStack(t *testing.T) {
	p := MustAssemble(`
method deep locals 0 {
    const 1
    const 2
    const 3
    add
    add
    pop
    return
}
`)
	if err := Verify(p); err != nil {
		t.Fatal(err)
	}
	m, _ := p.Method("deep")
	if m.MaxStack != 3 {
		t.Errorf("MaxStack = %d, want 3", m.MaxStack)
	}
}

func TestVerifyReturnMismatch(t *testing.T) {
	p := &Program{Methods: []*Method{{
		Name: "bad", Locals: 0, Returns: true,
		Code: []Instr{{Op: RETURN}},
	}}}
	if err := Verify(p); err == nil {
		t.Fatal("return in value method not caught")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := MustAssemble(miniProgram)
	q := p.Clone()
	q.Methods[0].Code[0] = Instr{Op: NOP}
	q.Classes[0].Fields[0].Name = "mutated"
	q.Statics[0].Name = "mutated"
	if p.Methods[0].Code[0].Op == NOP {
		t.Error("clone shares code")
	}
	if p.Classes[0].Fields[0].Name == "mutated" {
		t.Error("clone shares fields")
	}
	if p.Statics[0].Name == "mutated" {
		t.Error("clone shares statics")
	}
}

func TestDisassembleRoundtrip(t *testing.T) {
	p := MustAssemble(miniProgram)
	if err := Verify(p); err != nil {
		t.Fatal(err)
	}
	m, _ := p.Method("workerMain")
	dis := Disassemble(m)
	for _, want := range []string{"method workerMain", "const 1", "goto @2", "return"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestOpStrings(t *testing.T) {
	if MONITORENTER.String() != "monitorenter" {
		t.Error("op name wrong")
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Error("unknown op string")
	}
	// Every named op round-trips through the assembler table.
	for op, name := range opNames {
		if got, ok := opByName[name]; !ok || got != op {
			t.Errorf("op %v does not round-trip", op)
		}
	}
}

func TestFieldIndexCacheInvalidation(t *testing.T) {
	c := &Class{Name: "C", Fields: []Field{{Name: "a"}, {Name: "b"}}}
	if i, ok := c.FieldIndex("b"); !ok || i != 1 {
		t.Fatalf("FieldIndex(b) = %d,%v", i, ok)
	}
	// Appending a field after the cache is built must invalidate it.
	c.Fields = append(c.Fields, Field{Name: "c"})
	if i, ok := c.FieldIndex("c"); !ok || i != 2 {
		t.Fatalf("FieldIndex(c) after append = %d,%v", i, ok)
	}
	if _, ok := c.FieldIndex("missing"); ok {
		t.Fatal("found missing field")
	}
	// Duplicate names resolve to the first occurrence.
	d := &Class{Name: "D", Fields: []Field{{Name: "x"}, {Name: "x"}}}
	if i, ok := d.FieldIndex("x"); !ok || i != 0 {
		t.Fatalf("duplicate FieldIndex(x) = %d,%v; want 0", i, ok)
	}
}

func TestStaticIndexCacheInvalidation(t *testing.T) {
	p := &Program{Statics: []Static{{Name: "a"}, {Name: "b"}}}
	if i, ok := p.StaticIndex("a"); !ok || i != 0 {
		t.Fatalf("StaticIndex(a) = %d,%v", i, ok)
	}
	p.Statics = append(p.Statics, Static{Name: "c"})
	if i, ok := p.StaticIndex("c"); !ok || i != 2 {
		t.Fatalf("StaticIndex(c) after append = %d,%v", i, ok)
	}
	if _, ok := p.StaticIndex("missing"); ok {
		t.Fatal("found missing static")
	}
}

func TestCloneDoesNotShareLookupCaches(t *testing.T) {
	p := &Program{
		Classes: []*Class{{Name: "C", Fields: []Field{{Name: "a"}}}},
		Statics: []Static{{Name: "s"}},
	}
	// Build both caches, then clone and diverge the clone.
	p.Classes[0].FieldIndex("a")
	p.StaticIndex("s")
	q := p.Clone()
	q.Classes[0].Fields[0].Name = "renamed"
	q.Classes[0].idx = nil // renames don't change length; drop the cache
	if _, ok := q.Classes[0].FieldIndex("a"); ok {
		t.Fatal("clone resolved the original's field name")
	}
	if i, ok := q.Classes[0].FieldIndex("renamed"); !ok || i != 0 {
		t.Fatalf("clone FieldIndex(renamed) = %d,%v", i, ok)
	}
	// The original is untouched.
	if i, ok := p.Classes[0].FieldIndex("a"); !ok || i != 0 {
		t.Fatalf("original FieldIndex(a) = %d,%v", i, ok)
	}
}
