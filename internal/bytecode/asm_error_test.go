package bytecode

import (
	"strings"
	"testing"
)

// TestAssembleErrorMessages checks each parse-failure path produces a
// located, descriptive error.
func TestAssembleErrorMessages(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"static x = notanumber", "invalid syntax"},
		{"static x volatile extra", "unexpected"},
		{"class C {\n f = bad\n}", "invalid syntax"},
		{"class C {\n f extra\n}", "unexpected"},
		{"class C {\n f\n", "missing '}'"},
		{"class C junk {\n}", "expected '{'"},
		{"class C { inline }", "unexpected"},
		{"thread t priority x run m", "invalid syntax"},
		{"thread t priority", "missing priority"},
		{"thread t run", "missing method"},
		{"thread t oops m", "unexpected"},
		{"method m args {\n}", "invalid syntax"},
		{"method m locals {\n}", "invalid syntax"},
		{"method m wrongtoken {\n return\n}", "unexpected"},
		{"method m { trailing\n return\n}", "body starts on the next line"},
		{"method m locals 0 {\n const\n return\n}", "missing operand"},
		{"method m locals 0 {\n load\n return\n}", "missing operand"},
		{"method m locals 0 {\n sync {\n }\n return\n}", "sync wants"},
		{"method m locals 1 {\n sync x {\n }\n return\n}", "invalid syntax"},
		{"method m locals 1 {\n getfield NoDot\n return\n}", "wants Class.field"},
		{"method m locals 1 {\n getfield No.f\n return\n}", "unknown class"},
		{"class C {\n g\n}\nmethod m locals 1 {\n getfield C.missing\n return\n}", "unknown field"},
		{"method m locals 0 {\n getstatic nope\n return\n}", "unknown static"},
		{"handler nosuch from a to b target c catch X", "unknown method"},
		{"method m locals 0 {\n return\n}\nhandler m from nowhere to 0 target 0 catch X", "undefined label"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q): no error, want %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q): error %q, want substring %q", c.src, err, c.want)
		}
	}
}

// TestAssembleNumericOperandForms: field/static operands as raw offsets and
// branch targets as absolute indices.
func TestAssembleNumericOperandForms(t *testing.T) {
	p := MustAssemble(`
static s = 0
class C {
    f
}
method m locals 1 {
    newobj C
    store 0
    load 0
    const 1
    putfield 0
    const 2
    putstatic 0
    goto 7
    return
}
`)
	m, _ := p.Method("m")
	if m.Code[4].Op != PUTFIELD || m.Code[4].A != 0 {
		t.Errorf("numeric putfield = %+v", m.Code[4])
	}
	if m.Code[7].Op != GOTO && m.Code[7].Op != RETURN {
		t.Errorf("unexpected code layout")
	}
	if err := Verify(p); err != nil {
		t.Fatal(err)
	}
}

// TestAssembleRawStoreMnemonics round-trips the raw store opcodes.
func TestAssembleRawStoreMnemonics(t *testing.T) {
	p := MustAssemble(`
static s = 0
class C {
    f
}
method m locals 1 {
    newobj C
    store 0
    load 0
    const 1
    putfield.raw C.f
    const 2
    putstatic.raw s
    const 1
    newarr
    const 0
    const 3
    astore.raw
    return
}
`)
	if err := Verify(p); err != nil {
		t.Fatal(err)
	}
	m, _ := p.Method("m")
	ops := map[Op]bool{}
	for _, in := range m.Code {
		ops[in.Op] = true
	}
	for _, want := range []Op{PUTFIELDRAW, PUTSTATICRAW, ASTORERAW} {
		if !ops[want] {
			t.Errorf("missing %v", want)
		}
	}
}

// TestVerifyHandlerValidation covers the handler-range checks.
func TestVerifyHandlerValidation(t *testing.T) {
	mk := func(h Handler) *Program {
		return &Program{Methods: []*Method{{
			Name: "m", Locals: 0,
			Code:     []Instr{{Op: NOP}, {Op: RETURN}},
			Handlers: []Handler{h},
		}}}
	}
	bad := []Handler{
		{From: -1, To: 1, Target: 0, Catch: "X"},
		{From: 1, To: 1, Target: 0, Catch: "X"},
		{From: 0, To: 5, Target: 0, Catch: "X"},
		{From: 0, To: 1, Target: 9, Catch: "X"},
	}
	for i, h := range bad {
		if err := Verify(mk(h)); err == nil {
			t.Errorf("handler case %d accepted: %+v", i, h)
		}
	}
}

// TestVerifySaveRestoreBounds covers the save/restore local-range checks.
func TestVerifySaveRestoreBounds(t *testing.T) {
	p := &Program{Methods: []*Method{{
		Name: "m", Locals: 1,
		Code: []Instr{
			{Op: CONST, V: 1},
			{Op: SAVESTACK, A: 0, V: 5}, // locals [0,5) out of range
			{Op: POP},
			{Op: RETURN},
		},
	}}}
	if err := Verify(p); err == nil {
		t.Fatal("out-of-range savestack accepted")
	}
	p.Methods[0].Code[1] = Instr{Op: SAVESTACK, A: 0, V: 0}
	p.Methods[0].Code[1].V = 2 // depth mismatch: stack has 1
	p.Methods[0].Locals = 4
	if err := Verify(p); err == nil {
		t.Fatal("savestack depth mismatch accepted")
	}
}

// TestVerifyNativeArity rejects negative arity.
func TestVerifyNativeArity(t *testing.T) {
	p := &Program{Methods: []*Method{{
		Name: "m", Locals: 0,
		Code: []Instr{{Op: NATIVE, S: "x", A: -1}, {Op: POP}, {Op: RETURN}},
	}}}
	if err := Verify(p); err == nil {
		t.Fatal("negative native arity accepted")
	}
}

// TestVerifyThrowValidation rejects empty and reserved classes.
func TestVerifyThrowValidation(t *testing.T) {
	for _, cls := range []string{"", RollbackClass} {
		p := &Program{Methods: []*Method{{
			Name: "m", Locals: 0,
			Code: []Instr{{Op: THROW, S: cls}},
		}}}
		if err := Verify(p); err == nil {
			t.Errorf("throw %q accepted", cls)
		}
	}
}
