// Package bytecode defines the instruction set and program model of the
// reproduction's virtual machine: a small JVM-like stack machine with
// objects, arrays, statics, monitors (monitorenter/monitorexit), exception
// tables, wait/notify intrinsics and native calls — everything the paper's
// bytecode rewriting needs to operate on (§3.1.1).
//
// Programs are built with the Builder API or assembled from the textual
// form understood by Assemble. The rewriter (internal/rewrite) transforms
// programs exactly as the paper describes: synchronized methods become
// wrappers around synchronized blocks, every synchronized block is wrapped
// in a rollback-exception scope with operand-stack save/restore, and store
// instructions gain write barriers.
package bytecode

import "fmt"

// Op is an opcode.
type Op uint8

// The instruction set. Stack effects are noted as (before -- after).
const (
	NOP Op = iota
	// CONST pushes V. ( -- v)
	CONST
	// LOAD pushes local A. ( -- v)
	LOAD
	// STORE pops into local A. (v -- )
	STORE
	// DUP duplicates the top. (v -- v v)
	DUP
	// POP discards the top. (v -- )
	POP
	// SWAP exchanges the top two. (a b -- b a)
	SWAP

	// Arithmetic. (a b -- a·b) except NEG (a -- -a).
	ADD
	SUB
	MUL
	DIV // panics VM-exception "ArithmeticException" on divide by zero
	MOD
	NEG

	// Comparisons push 1 or 0. (a b -- a?b)
	CMPEQ
	CMPNE
	CMPLT
	CMPLE
	CMPGT
	CMPGE

	// GOTO jumps to A.
	GOTO
	// IFNZ pops v and jumps to A when v != 0. (v -- )
	IFNZ
	// IFZ pops v and jumps to A when v == 0. (v -- )
	IFZ

	// NEWOBJ allocates an instance of class S and pushes its ref. ( -- ref)
	NEWOBJ
	// NEWARR pops a length and pushes an array ref. (n -- ref)
	NEWARR
	// ARRAYLEN pops an array ref and pushes its length. (ref -- n)
	ARRAYLEN

	// GETFIELD pushes field A of the popped object. (ref -- v)
	GETFIELD
	// PUTFIELD stores into field A. (ref v -- )  [paper: putfield]
	PUTFIELD
	// GETSTATIC pushes static A. ( -- v)
	GETSTATIC
	// PUTSTATIC stores into static A. (v -- )  [paper: putstatic]
	PUTSTATIC
	// ALOAD pushes an array element. (ref idx -- v)
	ALOAD
	// ASTORE stores an array element. (ref idx v -- )  [paper: Xastore]
	ASTORE

	// MONITORENTER acquires the monitor of the popped object. (ref -- )
	MONITORENTER
	// MONITOREXIT releases it. (ref -- )
	MONITOREXIT

	// WAIT, NOTIFY, NOTIFYALL are the Object intrinsics. (ref -- )
	WAIT
	NOTIFY
	NOTIFYALL

	// INVOKE calls method S; arguments are popped (last on top), the
	// return value (if any) is pushed. (a1..an -- [ret])
	INVOKE
	// RETURN returns void.
	RETURN
	// IRETURN returns the popped value. (v -- )
	IRETURN

	// THROW raises a user exception of class S. ( -- )
	THROW

	// NATIVE calls the registered native S with A arguments popped from
	// the stack, pushing its result; it makes every enclosing monitor
	// non-revocable (§2.2). (a1..an -- ret)
	NATIVE

	// WORK pops n and charges n ticks of thread-local computation. (n -- )
	WORK
	// SLEEP pops n and sleeps n virtual ticks. (n -- )
	SLEEP

	// SPAWN starts a new VM thread running method S at priority A
	// (1..10, Java-style). The callee's arguments are popped from the
	// stack (last on top) and become its initial locals, exactly as for
	// INVOKE, but the callee runs on its own thread under the
	// deterministic scheduler. Unlike the static `thread` declarations,
	// SPAWN creates threads dynamically — possibly unboundedly many from
	// a loop — which is what the behavioral deadlock pass models by
	// contract unfolding. (a1..an -- )
	SPAWN

	// The rewriter injects the following; hand-written programs normally
	// do not use them.

	// SAVESTACK copies the operand stack (deepest first, depth V) into
	// locals starting at A, leaving the stack unchanged. Injected before a
	// rollback-scope's monitorenter so re-execution can rebuild the stack
	// ("we inject bytecode to save the values on the operand stack just
	// before each rollback-scope's monitorenter opcode", §3.1.1).
	SAVESTACK
	// RESTORESTACK rebuilds the operand stack from locals A.. with depth V.
	RESTORESTACK
	// CHECKTARGET pushes 1 when the pending rollback targets synchronized
	// region A of the current method activation, else 0. Injected at the
	// head of every rollback handler ("each rollback exception catch
	// handler invokes an internal VM method to check if it corresponds to
	// the synchronized section that is to be re-executed", §3.1.1).
	CHECKTARGET
	// RETHROW re-raises the in-flight exception (rollback or user) to the
	// next outer scope.
	RETHROW

	// Raw stores skip the write barrier entirely. The elision optimizer
	// (§1.1: "compiler analyses and optimization may elide these run-time
	// checks") emits them in methods proven never to execute inside a
	// synchronized section; hand-writing them in synchronized code is
	// unsound (updates would survive a rollback).

	// PUTFIELDRAW stores into field A with no barrier. (ref v -- )
	PUTFIELDRAW
	// PUTSTATICRAW stores into static A with no barrier. (v -- )
	PUTSTATICRAW
	// ASTORERAW stores an array element with no barrier. (ref idx v -- )
	ASTORERAW
)

var opNames = map[Op]string{
	NOP: "nop", CONST: "const", LOAD: "load", STORE: "store", DUP: "dup",
	POP: "pop", SWAP: "swap", ADD: "add", SUB: "sub", MUL: "mul", DIV: "div",
	MOD: "mod", NEG: "neg", CMPEQ: "cmpeq", CMPNE: "cmpne", CMPLT: "cmplt",
	CMPLE: "cmple", CMPGT: "cmpgt", CMPGE: "cmpge", GOTO: "goto",
	IFNZ: "ifnz", IFZ: "ifz", NEWOBJ: "newobj", NEWARR: "newarr",
	ARRAYLEN: "arraylen", GETFIELD: "getfield", PUTFIELD: "putfield",
	GETSTATIC: "getstatic", PUTSTATIC: "putstatic", ALOAD: "aload",
	ASTORE: "astore", MONITORENTER: "monitorenter", MONITOREXIT: "monitorexit",
	WAIT: "wait", NOTIFY: "notify", NOTIFYALL: "notifyall", INVOKE: "invoke",
	RETURN: "return", IRETURN: "ireturn", THROW: "throw", NATIVE: "native",
	WORK: "work", SLEEP: "sleep", SPAWN: "spawn", SAVESTACK: "savestack",
	RESTORESTACK: "restorestack", CHECKTARGET: "checktarget", RETHROW: "rethrow",
	PUTFIELDRAW: "putfield.raw", PUTSTATICRAW: "putstatic.raw", ASTORERAW: "astore.raw",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// opByName is the reverse mapping, used by the assembler.
var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// Instr is one instruction. A holds a small integer operand (local index,
// field offset, jump target, argument count), V a constant value, S a
// symbol (class, method, native or exception name).
type Instr struct {
	Op Op
	A  int
	V  int64
	S  string
}

// String renders the instruction in assembler form.
func (i Instr) String() string {
	switch i.Op {
	case CONST:
		return fmt.Sprintf("const %d", i.V)
	case LOAD, STORE, GETFIELD, PUTFIELD, GETSTATIC, PUTSTATIC, PUTFIELDRAW, PUTSTATICRAW:
		return fmt.Sprintf("%v %d", i.Op, i.A)
	case GOTO, IFNZ, IFZ:
		return fmt.Sprintf("%v @%d", i.Op, i.A)
	case NEWOBJ, INVOKE, THROW:
		return fmt.Sprintf("%v %s", i.Op, i.S)
	case NATIVE:
		return fmt.Sprintf("native %s/%d", i.S, i.A)
	case SPAWN:
		return fmt.Sprintf("spawn %s prio=%d", i.S, i.A)
	case SAVESTACK, RESTORESTACK:
		return fmt.Sprintf("%v base=%d depth=%d", i.Op, i.A, i.V)
	default:
		return i.Op.String()
	}
}

// RollbackClass is the exception-class name of the internal rollback
// exception the runtime throws to restart a synchronized section. The
// rewriter injects handlers catching it; user code cannot construct it.
const RollbackClass = "<rollback>"

// CatchAny marks a handler that catches every user exception (the
// compilation of finally blocks and catch(Throwable)).
const CatchAny = "*"

// Handler is one exception-table entry: if an exception of class Catch is
// thrown at pc in [From, To), control transfers to Target with the operand
// stack cleared (holding only the exception, for user exceptions).
type Handler struct {
	From, To int
	Target   int
	Catch    string
}

// SyncRegion records the static extent of one structured synchronized
// block (the assembler's `sync N { ... }` form): EnterPC is the pc of the
// LOAD that pushes the monitor object (immediately followed by
// MONITORENTER), ExitPC the pc of the matching MONITOREXIT, ObjLocal the
// local holding the monitor object. The rewriter turns each region into a
// rollback scope.
type SyncRegion struct {
	EnterPC  int
	ExitPC   int
	ObjLocal int
}

// Method is one method body.
type Method struct {
	Name string
	// Args is the number of leading locals filled from the caller's
	// stack. For instance methods local 0 is the receiver, by convention.
	Args int
	// Locals is the total local-variable count (≥ Args).
	Locals int
	// Synchronized marks Java's synchronized methods; the rewriter lowers
	// the flag into an explicit monitorenter/monitorexit wrapper (§3.1.1).
	Synchronized bool
	// Returns reports whether the method pushes a value (IRETURN).
	Returns  bool
	Code     []Instr
	Handlers []Handler
	// Regions lists the structured synchronized blocks, innermost first.
	Regions []SyncRegion
	// MaxStack is filled in by the verifier.
	MaxStack int
}

// Class declares a set of named fields.
type Class struct {
	Name   string
	Fields []Field

	// idx caches FieldIndex lookups; idxLen is the Fields length it was
	// built for, so appending fields invalidates it.
	idx    map[string]int
	idxLen int
}

// Field declares one object field.
type Field struct {
	Name     string
	Volatile bool
	Init     int64
}

// FieldIndex resolves a field name. Lookups are cached; duplicate names
// resolve to the first occurrence, as with a linear scan.
func (c *Class) FieldIndex(name string) (int, bool) {
	if c.idx == nil || c.idxLen != len(c.Fields) {
		c.idx = make(map[string]int, len(c.Fields))
		c.idxLen = len(c.Fields)
		for i, f := range c.Fields {
			if _, dup := c.idx[f.Name]; !dup {
				c.idx[f.Name] = i
			}
		}
	}
	i, ok := c.idx[name]
	return i, ok
}

// Static declares one global variable.
type Static struct {
	Name     string
	Volatile bool
	Init     int64
}

// ThreadDecl declares a thread the program spawns at startup.
type ThreadDecl struct {
	Name     string
	Priority int // 1..10, Java-style
	Method   string
}

// Program is a complete unit: classes, statics, methods and the threads to
// run.
type Program struct {
	Classes []*Class
	Statics []Static
	Methods []*Method
	Threads []ThreadDecl

	// staticIdx caches StaticIndex lookups; staticIdxLen is the Statics
	// length it was built for, so appending statics invalidates it.
	staticIdx    map[string]int
	staticIdxLen int
}

// Class resolves a class by name.
func (p *Program) Class(name string) (*Class, bool) {
	for _, c := range p.Classes {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// Method resolves a method by name.
func (p *Program) Method(name string) (*Method, bool) {
	for _, m := range p.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return nil, false
}

// StaticIndex resolves a static by name. Lookups are cached; duplicate
// names resolve to the first occurrence, as with a linear scan.
func (p *Program) StaticIndex(name string) (int, bool) {
	if p.staticIdx == nil || p.staticIdxLen != len(p.Statics) {
		p.staticIdx = make(map[string]int, len(p.Statics))
		p.staticIdxLen = len(p.Statics)
		for i, s := range p.Statics {
			if _, dup := p.staticIdx[s.Name]; !dup {
				p.staticIdx[s.Name] = i
			}
		}
	}
	i, ok := p.staticIdx[name]
	return i, ok
}

// Clone deep-copies the program so the rewriter can transform it without
// mutating the input.
func (p *Program) Clone() *Program {
	q := &Program{
		Classes: make([]*Class, len(p.Classes)),
		Statics: append([]Static(nil), p.Statics...),
		Methods: make([]*Method, len(p.Methods)),
		Threads: append([]ThreadDecl(nil), p.Threads...),
	}
	for i, c := range p.Classes {
		cc := *c
		cc.Fields = append([]Field(nil), c.Fields...)
		cc.idx = nil // never share a lookup cache with the original
		q.Classes[i] = &cc
	}
	for i, m := range p.Methods {
		mm := *m
		mm.Code = append([]Instr(nil), m.Code...)
		mm.Handlers = append([]Handler(nil), m.Handlers...)
		mm.Regions = append([]SyncRegion(nil), m.Regions...)
		q.Methods[i] = &mm
	}
	return q
}
