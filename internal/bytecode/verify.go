package bytecode

import "fmt"

// VerifyError describes a verification failure.
type VerifyError struct {
	Method string
	PC     int
	Msg    string
}

func (e *VerifyError) Error() string {
	if e.PC >= 0 {
		return fmt.Sprintf("bytecode: %s@%d: %s", e.Method, e.PC, e.Msg)
	}
	return fmt.Sprintf("bytecode: %s: %s", e.Method, e.Msg)
}

// Verify checks the whole program and computes every method's MaxStack.
// It validates jump targets, local indices, symbol references, stack
// discipline (no underflow, consistent depth at merge points), handler
// ranges, and MONITORENTER/MONITOREXIT balance along every control-flow
// path (see MonitorDepths).
func Verify(p *Program) error {
	for _, m := range p.Methods {
		if _, err := VerifyMethod(p, m); err != nil {
			return err
		}
		if _, err := MonitorDepths(p, m); err != nil {
			return err
		}
	}
	for _, t := range p.Threads {
		mt, ok := p.Method(t.Method)
		if !ok {
			return &VerifyError{Method: t.Method, PC: -1, Msg: fmt.Sprintf("thread %q runs undefined method", t.Name)}
		}
		if mt.Args != 0 {
			return &VerifyError{Method: t.Method, PC: -1, Msg: fmt.Sprintf("thread entry method takes %d args, want 0", mt.Args)}
		}
		if t.Priority < 1 || t.Priority > 10 {
			return &VerifyError{Method: t.Method, PC: -1, Msg: fmt.Sprintf("thread %q priority %d out of range", t.Name, t.Priority)}
		}
	}
	return nil
}

// VerifyMethod checks one method and returns the stack depth before each
// instruction (-1 for unreachable code). It also sets m.MaxStack.
func VerifyMethod(p *Program, m *Method) ([]int, error) {
	n := len(m.Code)
	if n == 0 {
		return nil, &VerifyError{Method: m.Name, PC: -1, Msg: "empty body"}
	}
	if m.Locals < m.Args {
		return nil, &VerifyError{Method: m.Name, PC: -1, Msg: fmt.Sprintf("locals %d < args %d", m.Locals, m.Args)}
	}
	fail := func(pc int, f string, args ...any) error {
		return &VerifyError{Method: m.Name, PC: pc, Msg: fmt.Sprintf(f, args...)}
	}

	for _, h := range m.Handlers {
		if h.From < 0 || h.To > n || h.From >= h.To {
			return nil, fail(-1, "handler range [%d,%d) invalid", h.From, h.To)
		}
		if h.Target < 0 || h.Target >= n {
			return nil, fail(-1, "handler target %d out of range", h.Target)
		}
	}

	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	type work struct{ pc, d int }
	queue := []work{{0, 0}}
	// Handler targets are reachable with their own entry depth.
	for _, h := range m.Handlers {
		d := 1 // user exception pushed
		if h.Catch == RollbackClass {
			d = 0 // rollback dispatch clears the stack
		}
		queue = append(queue, work{h.Target, d})
	}

	maxStack := 0
	push := func(q []work, pc, d int) ([]work, error) {
		if pc < 0 || pc >= n {
			return q, fail(pc, "jump target out of range")
		}
		if depth[pc] == -1 {
			depth[pc] = d
			return append(q, work{pc, d}), nil
		}
		if depth[pc] != d {
			return q, fail(pc, "inconsistent stack depth at merge: %d vs %d", depth[pc], d)
		}
		return q, nil
	}

	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if depth[w.pc] == -1 {
			depth[w.pc] = w.d
		} else if depth[w.pc] != w.d {
			return nil, fail(w.pc, "inconsistent stack depth: %d vs %d", depth[w.pc], w.d)
		}
		pc, d := w.pc, w.d
		for {
			in := m.Code[pc]
			pops, pushes, terminal, branch, err := effect(p, m, pc, in, fail)
			if err != nil {
				return nil, err
			}
			if d < pops {
				return nil, fail(pc, "stack underflow: %v needs %d, have %d", in.Op, pops, d)
			}
			nd := d - pops + pushes
			if in.Op == SAVESTACK {
				if d != int(in.V) {
					return nil, fail(pc, "savestack expects depth %d, have %d", in.V, d)
				}
				// Copies to locals; stack unchanged.
			}
			if in.Op == RESTORESTACK {
				nd = d + int(in.V) // rebuilds V entries from locals
			}
			if nd > maxStack {
				maxStack = nd
			}
			if branch {
				if queue, err = push(queue, in.A, nd); err != nil {
					return nil, err
				}
			}
			if terminal {
				break
			}
			next := pc + 1
			if in.Op == GOTO {
				next = in.A
			}
			if next >= n {
				return nil, fail(pc, "control falls off the end")
			}
			if depth[next] != -1 {
				if depth[next] != nd {
					return nil, fail(next, "inconsistent stack depth: %d vs %d", depth[next], nd)
				}
				break // already explored
			}
			depth[next] = nd
			pc, d = next, nd
		}
	}
	m.MaxStack = maxStack
	return depth, nil
}

// StackEffect reports the operand-stack effect of one instruction plus its
// control-flow classification: terminal means control does not fall through
// (GOTO is not terminal — its target is the fall-through successor), branch
// means in.A is an additional successor. SAVESTACK and RESTORESTACK report
// zero effect; their depth semantics (assert depth V / rebuild V entries)
// are the caller's to model, as the verifier does. Exported for the static
// analyses in internal/analysis.
func StackEffect(p *Program, m *Method, pc int, in Instr) (pops, pushes int, terminal, branch bool, err error) {
	fail := func(pc int, f string, args ...any) error {
		return &VerifyError{Method: m.Name, PC: pc, Msg: fmt.Sprintf(f, args...)}
	}
	return effect(p, m, pc, in, fail)
}

// effect returns the stack effect of one instruction plus control-flow
// classification: terminal means control does not fall through (GOTO falls
// through to its target, handled by the caller); branch means in.A is an
// additional successor.
func effect(p *Program, m *Method, pc int, in Instr, fail func(int, string, ...any) error) (pops, pushes int, terminal, branch bool, err error) {
	switch in.Op {
	case NOP, CHECKTARGET:
		if in.Op == CHECKTARGET {
			return 0, 1, false, false, nil
		}
		return 0, 0, false, false, nil
	case CONST:
		return 0, 1, false, false, nil
	case LOAD:
		if in.A < 0 || in.A >= m.Locals {
			return 0, 0, false, false, fail(pc, "local %d out of range (%d locals)", in.A, m.Locals)
		}
		return 0, 1, false, false, nil
	case STORE:
		if in.A < 0 || in.A >= m.Locals {
			return 0, 0, false, false, fail(pc, "local %d out of range (%d locals)", in.A, m.Locals)
		}
		return 1, 0, false, false, nil
	case DUP:
		return 1, 2, false, false, nil
	case POP:
		return 1, 0, false, false, nil
	case SWAP:
		return 2, 2, false, false, nil
	case ADD, SUB, MUL, DIV, MOD, CMPEQ, CMPNE, CMPLT, CMPLE, CMPGT, CMPGE:
		return 2, 1, false, false, nil
	case NEG:
		return 1, 1, false, false, nil
	case GOTO:
		// Fall-through to in.A is modelled by the caller.
		if in.A < 0 || in.A >= len(m.Code) {
			return 0, 0, false, false, fail(pc, "goto target %d out of range", in.A)
		}
		return 0, 0, false, false, nil
	case IFNZ, IFZ:
		if in.A < 0 || in.A >= len(m.Code) {
			return 0, 0, false, false, fail(pc, "branch target %d out of range", in.A)
		}
		return 1, 0, false, true, nil
	case NEWOBJ:
		if _, ok := p.Class(in.S); !ok {
			return 0, 0, false, false, fail(pc, "unknown class %q", in.S)
		}
		return 0, 1, false, false, nil
	case NEWARR:
		return 1, 1, false, false, nil
	case ARRAYLEN:
		return 1, 1, false, false, nil
	case GETFIELD:
		return 1, 1, false, false, nil
	case PUTFIELD, PUTFIELDRAW:
		return 2, 0, false, false, nil
	case GETSTATIC:
		if in.A < 0 || in.A >= len(p.Statics) {
			return 0, 0, false, false, fail(pc, "static %d out of range", in.A)
		}
		return 0, 1, false, false, nil
	case PUTSTATIC, PUTSTATICRAW:
		if in.A < 0 || in.A >= len(p.Statics) {
			return 0, 0, false, false, fail(pc, "static %d out of range", in.A)
		}
		return 1, 0, false, false, nil
	case ALOAD:
		return 2, 1, false, false, nil
	case ASTORE, ASTORERAW:
		return 3, 0, false, false, nil
	case MONITORENTER, MONITOREXIT, WAIT, NOTIFY, NOTIFYALL:
		return 1, 0, false, false, nil
	case INVOKE:
		callee, ok := p.Method(in.S)
		if !ok {
			return 0, 0, false, false, fail(pc, "unknown method %q", in.S)
		}
		pushes := 0
		if callee.Returns {
			pushes = 1
		}
		return callee.Args, pushes, false, false, nil
	case RETURN:
		if m.Returns {
			return 0, 0, false, false, fail(pc, "return in value-returning method")
		}
		return 0, 0, true, false, nil
	case IRETURN:
		if !m.Returns {
			return 0, 0, false, false, fail(pc, "ireturn in void method")
		}
		return 1, 0, true, false, nil
	case THROW:
		if in.S == "" || in.S == RollbackClass {
			return 0, 0, false, false, fail(pc, "throw needs a user exception class")
		}
		return 0, 0, true, false, nil
	case RETHROW:
		return 0, 0, true, false, nil
	case NATIVE:
		if in.A < 0 {
			return 0, 0, false, false, fail(pc, "negative native arity")
		}
		return in.A, 1, false, false, nil
	case WORK, SLEEP:
		return 1, 0, false, false, nil
	case SPAWN:
		callee, ok := p.Method(in.S)
		if !ok {
			return 0, 0, false, false, fail(pc, "spawn of unknown method %q", in.S)
		}
		if in.A < 1 || in.A > 10 {
			return 0, 0, false, false, fail(pc, "spawn priority %d out of range", in.A)
		}
		return callee.Args, 0, false, false, nil
	case SAVESTACK, RESTORESTACK:
		if in.A < 0 || in.A+int(in.V) > m.Locals {
			return 0, 0, false, false, fail(pc, "%v locals [%d,%d) out of range", in.Op, in.A, in.A+int(in.V))
		}
		return 0, 0, false, false, nil
	default:
		return 0, 0, false, false, fail(pc, "unknown opcode %d", in.Op)
	}
}
