package bytecode

import "fmt"

// Monitor-balance verification: MONITORENTER/MONITOREXIT must balance along
// every control-flow path, in the same way the stack verifier requires a
// consistent operand-stack depth at merge points. The JVM specification
// leaves structured locking optional; this VM enforces it at load time
// because the rewriter's rollback scopes (§3.1.1) assume every synchronized
// region has a statically known extent.
//
// Two rules are deliberately *not* enforced here:
//
//   - Returning while a monitor is held stays a runtime error (the
//     interpreter raises "return with synchronized sections active").
//     MONITORENTER can throw NullPointerException before acquiring, so a
//     program whose post-enter path is dynamically unreachable — e.g. a test
//     that enters on a bad ref purely to exercise the NPE handler — is
//     statically "unbalanced" on a path that can never execute.
//
//   - Which *object* a MONITOREXIT releases is unknowable without alias
//     information; the interpreter checks exits against the innermost
//     active region at runtime.

// MonitorDepths computes the monitor nesting depth before each instruction
// of m (-1 for unreachable code). It reports an error when an exit would
// underflow (a path reaches MONITOREXIT holding no monitor) or when two
// paths merge at different depths. Exception-handler targets start at the
// depth of their range's first covered instruction: that is the depth the
// runtime dispatch produces, because inner handlers release their own
// monitors before rethrowing to outer ones.
//
// The method must already satisfy VerifyMethod (jump targets in range).
func MonitorDepths(p *Program, m *Method) ([]int, error) {
	n := len(m.Code)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	fail := func(pc int, f string, args ...any) error {
		return &VerifyError{Method: m.Name, PC: pc, Msg: fmt.Sprintf(f, args...)}
	}

	type work struct{ pc, d int }
	var queue []work
	post := func(q []work, pc, d int) ([]work, error) {
		if depth[pc] == -1 {
			depth[pc] = d
			return append(q, work{pc, d}), nil
		}
		if depth[pc] != d {
			return q, fail(pc, "inconsistent monitor depth at merge: %d vs %d", depth[pc], d)
		}
		return q, nil
	}

	var err error
	if queue, err = post(queue, 0, 0); err != nil {
		return nil, err
	}
	for {
		for len(queue) > 0 {
			w := queue[0]
			queue = queue[1:]
			pc, d := w.pc, depth[w.pc]
			in := m.Code[pc]
			nd := d
			switch in.Op {
			case MONITORENTER:
				nd = d + 1
			case MONITOREXIT:
				if d == 0 {
					return nil, fail(pc, "monitorexit with no enclosing monitorenter on some path")
				}
				nd = d - 1
			}
			switch in.Op {
			case GOTO:
				if queue, err = post(queue, in.A, nd); err != nil {
					return nil, err
				}
				continue
			case IFNZ, IFZ:
				if queue, err = post(queue, in.A, nd); err != nil {
					return nil, err
				}
			case RETURN, IRETURN, THROW, RETHROW:
				continue // no fall-through
			}
			if pc+1 < n {
				if queue, err = post(queue, pc+1, nd); err != nil {
					return nil, err
				}
			}
		}
		// Seed handler targets whose range entry has become reachable. A
		// handler enters at the depth of its From pc: by the time dispatch
		// reaches this handler, every monitor entered inside its range has
		// been released (inner monitor-release handlers run first and
		// rethrow outward).
		progressed := false
		for _, h := range m.Handlers {
			if depth[h.From] >= 0 && depth[h.Target] == -1 {
				depth[h.Target] = depth[h.From]
				queue = append(queue, work{h.Target, depth[h.From]})
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return depth, nil
}
