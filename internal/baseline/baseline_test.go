package baseline

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/simtime"
)

func TestProtocolStrings(t *testing.T) {
	want := map[Protocol]string{
		Unmodified:  "unmodified",
		Inheritance: "inheritance",
		Ceiling:     "ceiling",
		Revocation:  "revocation",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p, s)
		}
	}
	if Protocol(42).String() != "protocol(?)" {
		t.Error("unknown protocol string")
	}
}

func TestNewConfiguresProtocols(t *testing.T) {
	cases := []struct {
		p      Protocol
		mode   core.Mode
		inh    bool
		ceil   bool
		policy sched.Policy
	}{
		{Unmodified, core.Unmodified, false, false, sched.RoundRobin},
		{Inheritance, core.Unmodified, true, false, sched.PriorityRR},
		{Ceiling, core.Unmodified, false, true, sched.PriorityRR},
		{Revocation, core.Revocation, false, false, sched.RoundRobin},
	}
	for _, c := range cases {
		rt := New(c.p, sched.Config{})
		cfg := rt.Config()
		if cfg.Mode != c.mode || cfg.PriorityInheritance != c.inh || cfg.PriorityCeiling != c.ceil {
			t.Errorf("%v: config %+v", c.p, cfg)
		}
		if rt.Scheduler().Policy() != c.policy {
			t.Errorf("%v: policy %v, want %v", c.p, rt.Scheduler().Policy(), c.policy)
		}
	}
}

// inversionScenario builds the motivating scenario: a low-priority thread
// takes the lock, medium-priority CPU hogs keep the processor busy, and a
// high-priority thread needs the lock. It returns the high thread's
// completion time.
func inversionScenario(t *testing.T, proto Protocol) simtime.Ticks {
	t.Helper()
	rt := New(proto, sched.Config{Quantum: 50, Seed: 11})
	m := rt.NewMonitor("resource")
	m.Ceiling = sched.HighPriority

	var highDone simtime.Ticks
	rt.Spawn("low", sched.LowPriority, func(tk *core.Task) {
		tk.Synchronized(m, func() {
			tk.Work(3000)
		})
	})
	for i := 0; i < 3; i++ {
		rt.Spawn(fmt.Sprintf("med%d", i), sched.NormPriority, func(tk *core.Task) {
			tk.Sleep(20)
			tk.Work(4000)
		})
	}
	rt.Spawn("high", sched.HighPriority, func(tk *core.Task) {
		tk.Sleep(60)
		tk.Synchronized(m, func() { tk.Work(50) })
		highDone = rt.Now()
	})
	if err := rt.Run(); err != nil {
		t.Fatalf("%v: %v", proto, err)
	}
	return highDone
}

// TestProtocolsBoundInversion is the cross-protocol comparison the paper's
// related-work section argues about: inheritance, ceiling and revocation
// all bound the high-priority thread's wait; plain blocking under a
// priority scheduler does not (medium threads starve the lock holder).
func TestProtocolsBoundInversion(t *testing.T) {
	// Plain blocking, but under the strict-priority dispatcher, to expose
	// classic unbounded inversion (round-robin would eventually run the
	// low thread anyway).
	rtPlain := core.New(core.Config{Mode: core.Unmodified, Sched: sched.Config{Quantum: 50, Seed: 11, Policy: sched.PriorityRR}})
	m := rtPlain.NewMonitor("resource")
	var plainDone simtime.Ticks
	rtPlain.Spawn("low", sched.LowPriority, func(tk *core.Task) {
		tk.Synchronized(m, func() { tk.Work(3000) })
	})
	for i := 0; i < 3; i++ {
		rtPlain.Spawn(fmt.Sprintf("med%d", i), sched.NormPriority, func(tk *core.Task) {
			tk.Sleep(20)
			tk.Work(4000)
		})
	}
	rtPlain.Spawn("high", sched.HighPriority, func(tk *core.Task) {
		tk.Sleep(60)
		tk.Synchronized(m, func() { tk.Work(50) })
		plainDone = rtPlain.Now()
	})
	if err := rtPlain.Run(); err != nil {
		t.Fatal(err)
	}

	for _, proto := range []Protocol{Inheritance, Ceiling, Revocation} {
		done := inversionScenario(t, proto)
		if done >= plainDone {
			t.Errorf("%v: high finished at %d, not better than plain blocking (%d)", proto, done, plainDone)
		}
	}
}

// TestRevocationBeatsInheritanceForHighPriority: inheritance still makes
// the high thread wait out the whole section; revocation preempts it.
func TestRevocationBeatsInheritanceForHighPriority(t *testing.T) {
	inh := inversionScenario(t, Inheritance)
	rev := inversionScenario(t, Revocation)
	if rev >= inh {
		t.Fatalf("revocation (%d) not faster than inheritance (%d)", rev, inh)
	}
}

// TestCeilingRequiresDeclaredCeiling: without a declared ceiling the
// protocol silently degrades to plain blocking — the transparency critique
// of §1.
func TestCeilingRequiresDeclaredCeiling(t *testing.T) {
	rt := New(Ceiling, sched.Config{Quantum: 50})
	m := rt.NewMonitor("undeclared") // Ceiling left zero
	var inside sched.Priority
	rt.Spawn("low", sched.LowPriority, func(tk *core.Task) {
		tk.Synchronized(m, func() { inside = tk.Priority() })
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if inside != sched.LowPriority {
		t.Fatalf("priority raised to %d without a declared ceiling", inside)
	}
}

// TestAllProtocolsPreserveMutualExclusion runs a counter workload under
// every protocol and checks the total.
func TestAllProtocolsPreserveMutualExclusion(t *testing.T) {
	for _, proto := range Protocols {
		t.Run(proto.String(), func(t *testing.T) {
			rt := New(proto, sched.Config{Quantum: 17, Seed: 5})
			o := rt.Heap().AllocPlain("counter", 1)
			m := rt.NewMonitor("m")
			m.Ceiling = sched.HighPriority
			prios := []sched.Priority{sched.LowPriority, sched.NormPriority, sched.HighPriority}
			for i := 0; i < 6; i++ {
				prio := prios[i%3]
				rt.Spawn(fmt.Sprintf("t%d", i), prio, func(tk *core.Task) {
					for k := 0; k < 10; k++ {
						tk.Synchronized(m, func() {
							v := tk.ReadField(o, 0)
							tk.Work(7)
							tk.WriteField(o, 0, v+1)
						})
					}
				})
			}
			if err := rt.Run(); err != nil {
				t.Fatal(err)
			}
			if got := o.Get(0); got != 60 {
				t.Fatalf("counter = %d, want 60", got)
			}
		})
	}
}
