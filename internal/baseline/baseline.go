// Package baseline assembles the comparison systems the paper measures
// against or discusses (§1, §5):
//
//   - Unmodified: the paper's reference VM — plain blocking monitors with
//     prioritized entry queues and no remedy for priority inversion.
//   - Inheritance: the classic priority-inheritance protocol [Sha et al.]:
//     a blocking thread donates its priority to the monitor owner,
//     transitively across the waits-for chain.
//   - Ceiling: priority-ceiling emulation: acquiring a monitor immediately
//     raises the owner to the monitor's programmer-declared ceiling.
//   - Revocation: the paper's contribution, re-exported for symmetric use
//     by the benchmark harness.
//
// All four run on the identical scheduler, heap and monitor substrate, so
// measured differences isolate the protocol itself.
package baseline

import (
	"repro/internal/core"
	"repro/internal/sched"
)

// Protocol names a lock-management discipline.
type Protocol int

const (
	// Unmodified is plain blocking (the paper's baseline).
	Unmodified Protocol = iota
	// Inheritance is the priority-inheritance protocol.
	Inheritance
	// Ceiling is priority-ceiling emulation. Monitor ceilings must be set
	// by the program (Monitor.Ceiling), as the protocol requires the
	// programmer to declare them — the paper's §1 transparency critique.
	Ceiling
	// Revocation is the paper's preemption/rollback scheme.
	Revocation
)

var protocolNames = [...]string{"unmodified", "inheritance", "ceiling", "revocation"}

func (p Protocol) String() string {
	if int(p) < len(protocolNames) {
		return protocolNames[p]
	}
	return "protocol(?)"
}

// Protocols lists every discipline, for sweeps.
var Protocols = []Protocol{Unmodified, Inheritance, Ceiling, Revocation}

// New builds a runtime configured for the given protocol. The scheduler
// configuration (quantum, policy, seed) is shared so protocols are
// comparable. Inheritance and Ceiling use the strict-priority dispatcher —
// they are meaningless under pure round-robin — while Unmodified and
// Revocation default to the paper's round-robin + prioritized monitor
// queues setup unless the caller overrides the policy.
func New(p Protocol, schedCfg sched.Config) *core.Runtime {
	cfg := core.Config{Sched: schedCfg}
	switch p {
	case Unmodified:
		cfg.Mode = core.Unmodified
	case Inheritance:
		cfg.Mode = core.Unmodified
		cfg.PriorityInheritance = true
		cfg.Sched.Policy = sched.PriorityRR
	case Ceiling:
		cfg.Mode = core.Unmodified
		cfg.PriorityCeiling = true
		cfg.Sched.Policy = sched.PriorityRR
	case Revocation:
		cfg.Mode = core.Revocation
		cfg.TrackDependencies = true
		cfg.DeadlockDetection = true
	}
	return core.New(cfg)
}
