// Package simtime provides the virtual-time core of the simulated virtual
// machine: a monotonic tick counter and a timer queue used to implement
// sleeping threads in a discrete-event style.
//
// All durations in the reproduction are expressed in ticks. One tick is the
// cost of a single shared-data operation inside a synchronized section,
// matching the paper's decision to make section execution time directly
// proportional to the number of shared-data operations performed (§4.1).
package simtime

import (
	"container/heap"
	"fmt"
)

// Ticks is a span or instant of virtual time.
type Ticks int64

// Clock is a monotonic virtual clock with an associated timer queue. It is
// not safe for concurrent use; the scheduler guarantees single ownership.
type Clock struct {
	now    Ticks
	timers timerQueue
	seq    int64 // tie-breaker so equal deadlines fire FIFO
}

// NewClock returns a clock positioned at tick zero.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() Ticks { return c.now }

// Advance moves the clock forward by d ticks. It panics if d is negative:
// virtual time never runs backwards.
func (c *Clock) Advance(d Ticks) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %d", d))
	}
	c.now += d
}

// Timer is a scheduled wakeup. The payload is opaque to the clock.
type Timer struct {
	Deadline Ticks
	Payload  any

	seq   int64
	index int // heap index, -1 once popped or cancelled
}

// Schedule registers a wakeup at absolute time deadline. Deadlines in the
// past (or at the current instant) are legal and fire on the next Expired
// call.
func (c *Clock) Schedule(deadline Ticks, payload any) *Timer {
	t := &Timer{Deadline: deadline, Payload: payload, seq: c.seq}
	c.seq++
	heap.Push(&c.timers, t)
	return t
}

// ScheduleAfter registers a wakeup d ticks from now.
func (c *Clock) ScheduleAfter(d Ticks, payload any) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative delay %d", d))
	}
	return c.Schedule(c.now+d, payload)
}

// Cancel removes a pending timer. Cancelling an already-fired or cancelled
// timer is a no-op and returns false.
func (c *Clock) Cancel(t *Timer) bool {
	if t == nil || t.index < 0 {
		return false
	}
	heap.Remove(&c.timers, t.index)
	t.index = -1
	return true
}

// PendingTimers reports how many timers are scheduled.
func (c *Clock) PendingTimers() int { return len(c.timers) }

// NextDeadline returns the earliest pending deadline. ok is false when no
// timers are pending.
func (c *Clock) NextDeadline() (deadline Ticks, ok bool) {
	if len(c.timers) == 0 {
		return 0, false
	}
	return c.timers[0].Deadline, true
}

// Expired pops and returns the payload of the earliest timer whose deadline
// is at or before the current time. ok is false when no timer has expired.
func (c *Clock) Expired() (payload any, ok bool) {
	if len(c.timers) == 0 || c.timers[0].Deadline > c.now {
		return nil, false
	}
	t := heap.Pop(&c.timers).(*Timer)
	t.index = -1
	return t.Payload, true
}

// AdvanceToNext jumps the clock to the earliest pending deadline, if any,
// and reports whether a jump happened. It is the discrete-event idle step:
// the scheduler calls it when every thread is sleeping.
func (c *Clock) AdvanceToNext() bool {
	d, ok := c.NextDeadline()
	if !ok {
		return false
	}
	if d > c.now {
		c.now = d
	}
	return true
}

// timerQueue implements heap.Interface ordered by (deadline, seq).
type timerQueue []*Timer

func (q timerQueue) Len() int { return len(q) }

func (q timerQueue) Less(i, j int) bool {
	if q[i].Deadline != q[j].Deadline {
		return q[i].Deadline < q[j].Deadline
	}
	return q[i].seq < q[j].seq
}

func (q timerQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *timerQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *timerQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
