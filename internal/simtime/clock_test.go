package simtime

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("new clock at %d, want 0", got)
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	c := NewClock()
	c.Advance(5)
	c.Advance(7)
	if got := c.Now(); got != 12 {
		t.Fatalf("Now() = %d, want 12", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	c.Advance(-1)
}

func TestScheduleAndExpire(t *testing.T) {
	c := NewClock()
	c.Schedule(10, "a")
	c.Schedule(5, "b")
	if _, ok := c.Expired(); ok {
		t.Fatal("timer expired before its deadline")
	}
	c.Advance(5)
	p, ok := c.Expired()
	if !ok || p != "b" {
		t.Fatalf("Expired() = %v,%v; want b,true", p, ok)
	}
	if _, ok := c.Expired(); ok {
		t.Fatal("second timer expired early")
	}
	c.Advance(5)
	p, ok = c.Expired()
	if !ok || p != "a" {
		t.Fatalf("Expired() = %v,%v; want a,true", p, ok)
	}
}

func TestEqualDeadlinesFireFIFO(t *testing.T) {
	c := NewClock()
	for _, name := range []string{"first", "second", "third"} {
		c.Schedule(3, name)
	}
	c.Advance(3)
	for _, want := range []string{"first", "second", "third"} {
		p, ok := c.Expired()
		if !ok || p != want {
			t.Fatalf("Expired() = %v,%v; want %s,true", p, ok, want)
		}
	}
}

func TestScheduleAfter(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	tm := c.ScheduleAfter(20, "x")
	if tm.Deadline != 120 {
		t.Fatalf("deadline %d, want 120", tm.Deadline)
	}
}

func TestScheduleAfterNegativePanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("negative ScheduleAfter did not panic")
		}
	}()
	c.ScheduleAfter(-5, nil)
}

func TestCancel(t *testing.T) {
	c := NewClock()
	tm := c.Schedule(1, "gone")
	if !c.Cancel(tm) {
		t.Fatal("Cancel returned false for a pending timer")
	}
	if c.Cancel(tm) {
		t.Fatal("double Cancel returned true")
	}
	c.Advance(10)
	if _, ok := c.Expired(); ok {
		t.Fatal("cancelled timer fired")
	}
}

func TestCancelNil(t *testing.T) {
	c := NewClock()
	if c.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	c := NewClock()
	a := c.Schedule(1, "a")
	b := c.Schedule(2, "b")
	d := c.Schedule(3, "d")
	_ = a
	_ = d
	if !c.Cancel(b) {
		t.Fatal("cancel failed")
	}
	c.Advance(5)
	var fired []string
	for {
		p, ok := c.Expired()
		if !ok {
			break
		}
		fired = append(fired, p.(string))
	}
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "d" {
		t.Fatalf("fired %v, want [a d]", fired)
	}
}

func TestNextDeadline(t *testing.T) {
	c := NewClock()
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline ok on empty queue")
	}
	c.Schedule(42, nil)
	c.Schedule(17, nil)
	d, ok := c.NextDeadline()
	if !ok || d != 17 {
		t.Fatalf("NextDeadline = %d,%v; want 17,true", d, ok)
	}
}

func TestAdvanceToNext(t *testing.T) {
	c := NewClock()
	if c.AdvanceToNext() {
		t.Fatal("AdvanceToNext true with no timers")
	}
	c.Schedule(50, nil)
	if !c.AdvanceToNext() {
		t.Fatal("AdvanceToNext false with pending timer")
	}
	if c.Now() != 50 {
		t.Fatalf("Now() = %d, want 50", c.Now())
	}
	// A deadline in the past must not move the clock backwards.
	c.Schedule(10, nil)
	c.AdvanceToNext()
	if c.Now() != 50 {
		t.Fatalf("clock moved backwards to %d", c.Now())
	}
}

func TestPendingTimers(t *testing.T) {
	c := NewClock()
	c.Schedule(1, nil)
	c.Schedule(2, nil)
	if got := c.PendingTimers(); got != 2 {
		t.Fatalf("PendingTimers = %d, want 2", got)
	}
	c.Advance(1)
	c.Expired()
	if got := c.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers = %d, want 1", got)
	}
}

// Property: timers always fire in (deadline, insertion) order regardless of
// insertion order.
func TestTimersFireInOrderProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewClock()
		count := int(n%32) + 1
		type item struct {
			deadline Ticks
			seq      int
		}
		for i := 0; i < count; i++ {
			c.Schedule(Ticks(rng.Intn(10)), item{Ticks(rng.Intn(10)), i})
		}
		// Re-stamp deadlines from the payload (Schedule stored random ones).
		// Instead just drain and check monotonicity of deadlines.
		c.Advance(100)
		var last Ticks = -1
		for {
			p, ok := c.Expired()
			if !ok {
				break
			}
			it := p.(item)
			_ = it
			count--
			if last > 10 {
				return false
			}
		}
		return count == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after an arbitrary interleaving of schedules and expirations,
// the earliest pending deadline is never smaller than any already-fired
// deadline at its firing time.
func TestHeapOrderProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewClock()
		fired := []Ticks{}
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0:
				c.ScheduleAfter(Ticks(rng.Intn(20)), Ticks(0))
			case 1:
				c.Advance(Ticks(rng.Intn(5)))
			case 2:
				for {
					_, ok := c.Expired()
					if !ok {
						break
					}
					fired = append(fired, c.Now())
				}
			}
		}
		// Firing times observed must be non-decreasing.
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
