package jmm

import (
	"testing"
	"testing/quick"

	"repro/internal/heap"
	"repro/internal/undo"
)

// newTestTable builds a table over a heap holding one 16-field object with
// id 1, so loc(0..15) resolves to a shadow slot.
func newTestTable() (*Table, *heap.Object) {
	h := heap.New()
	o := h.AllocPlain("C", 16)
	return NewTable(h), o
}

func loc(i int) undo.Loc {
	return undo.Loc{Kind: heap.KindObject, ID: 1, Idx: i}
}

func TestRegisterAndCheckForeignRead(t *testing.T) {
	tb, _ := newTestTable()
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 7})
	ref, hit := tb.CheckRead(loc(0), 2)
	if !hit {
		t.Fatal("foreign read not detected")
	}
	if ref.Thread != 1 || ref.Gen != 7 {
		t.Fatalf("ref = %+v", ref)
	}
	if tb.Dependencies() != 1 {
		t.Fatalf("Dependencies = %d", tb.Dependencies())
	}
}

func TestOwnReadIsNotADependency(t *testing.T) {
	tb, _ := newTestTable()
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 1})
	if _, hit := tb.CheckRead(loc(0), 1); hit {
		t.Fatal("own read flagged as dependency")
	}
	if tb.Dependencies() != 0 {
		t.Fatal("dependency counted for own read")
	}
}

func TestUnknownLocationMisses(t *testing.T) {
	tb, _ := newTestTable()
	if _, hit := tb.CheckRead(loc(9), 2); hit {
		t.Fatal("phantom hit")
	}
	// Locations outside the heap are tolerated and never hit.
	if _, hit := tb.CheckRead(undo.Loc{Kind: heap.KindObject, ID: 99, Idx: 0}, 2); hit {
		t.Fatal("phantom hit on unknown object")
	}
	if _, hit := tb.CheckRead(undo.Loc{Kind: heap.KindObject, ID: 1, Idx: 99}, 2); hit {
		t.Fatal("phantom hit on out-of-range field")
	}
	tb.RegisterWrite(undo.Loc{Kind: heap.KindObject, ID: 99, Idx: 0}, SpanRef{Thread: 1, Gen: 1})
	if tb.Entries() != 0 {
		t.Fatal("register of unknown location counted")
	}
}

func TestHasForeignFastPath(t *testing.T) {
	tb, _ := newTestTable()
	if tb.HasForeign(1) {
		t.Fatal("empty table has foreign entries")
	}
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 1})
	if tb.HasForeign(1) {
		t.Fatal("own entries counted as foreign")
	}
	if !tb.HasForeign(2) {
		t.Fatal("foreign entry not visible")
	}
	tb.RegisterWrite(loc(1), SpanRef{Thread: 2, Gen: 1})
	if !tb.HasForeign(1) {
		t.Fatal("thread 2's entry not foreign to thread 1")
	}
}

func TestUnregisterOnlyOwn(t *testing.T) {
	tb, _ := newTestTable()
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 1})
	tb.Unregister(loc(0), 2) // wrong thread: must not remove
	if _, hit := tb.CheckRead(loc(0), 2); !hit {
		t.Fatal("entry vanished after foreign unregister")
	}
	tb.Unregister(loc(0), 1)
	if _, hit := tb.CheckRead(loc(0), 2); hit {
		t.Fatal("entry survived owner unregister")
	}
	if tb.Entries() != 0 {
		t.Fatalf("Entries = %d", tb.Entries())
	}
}

func TestReRegisterSameThreadUpdatesGen(t *testing.T) {
	tb, _ := newTestTable()
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 1})
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 2})
	ref, _ := tb.CheckRead(loc(0), 2)
	if ref.Gen != 2 {
		t.Fatalf("Gen = %d, want 2", ref.Gen)
	}
	if tb.Entries() != 1 {
		t.Fatalf("Entries = %d, want 1", tb.Entries())
	}
}

func TestTakeoverByOtherThread(t *testing.T) {
	tb, _ := newTestTable()
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 1})
	tb.RegisterWrite(loc(0), SpanRef{Thread: 2, Gen: 5})
	if tb.Entries() != 1 {
		t.Fatalf("Entries = %d, want 1", tb.Entries())
	}
	ref, hit := tb.CheckRead(loc(0), 1)
	if !hit || ref.Thread != 2 {
		t.Fatalf("CheckRead = %+v,%v", ref, hit)
	}
	// Thread 1's per-thread count must have been decremented: with only
	// thread 2 owning entries, thread 2 sees no foreign writes.
	if tb.HasForeign(2) {
		t.Fatal("HasForeign(2) true after takeover")
	}
}

func TestDropThread(t *testing.T) {
	tb, _ := newTestTable()
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 1})
	tb.RegisterWrite(loc(1), SpanRef{Thread: 1, Gen: 1})
	tb.RegisterWrite(loc(2), SpanRef{Thread: 2, Gen: 1})
	tb.DropThread(1)
	if tb.Entries() != 1 {
		t.Fatalf("Entries = %d, want 1", tb.Entries())
	}
	if _, hit := tb.CheckRead(loc(0), 3); hit {
		t.Fatal("dropped entry still present")
	}
	if _, hit := tb.CheckRead(loc(2), 3); !hit {
		t.Fatal("unrelated entry dropped")
	}
	tb.DropThread(1) // idempotent
}

func TestPointerFastPathsMatchLocAPI(t *testing.T) {
	h := heap.New()
	o := h.AllocPlain("C", 4)
	a := h.AllocArray(4)
	h.DefineStatic("s", false, 0)
	tb := NewTable(h)

	tb.RegisterObject(o, 1, SpanRef{Thread: 1, Gen: 3})
	tb.RegisterArray(a, 2, SpanRef{Thread: 1, Gen: 3})
	tb.RegisterStatic(0, SpanRef{Thread: 1, Gen: 3})
	if tb.Entries() != 3 {
		t.Fatalf("Entries = %d, want 3", tb.Entries())
	}
	if ref, hit := tb.CheckReadObject(o, 1, 2); !hit || ref.Gen != 3 {
		t.Fatalf("CheckReadObject = %+v,%v", ref, hit)
	}
	if _, hit := tb.CheckReadArray(a, 2, 2); !hit {
		t.Fatal("CheckReadArray missed")
	}
	if _, hit := tb.CheckReadStatic(0, 2); !hit {
		t.Fatal("CheckReadStatic missed")
	}
	// The Loc API sees the same slots.
	tb.Unregister(undo.Loc{Kind: heap.KindObject, ID: o.ID(), Idx: 1}, 1)
	tb.Unregister(undo.Loc{Kind: heap.KindArray, ID: a.ID(), Idx: 2}, 1)
	tb.Unregister(undo.Loc{Kind: heap.KindStatic, Idx: 0}, 1)
	if tb.Entries() != 0 {
		t.Fatalf("Entries = %d after unregister, want 0", tb.Entries())
	}
}

func TestTwoTablesDoNotShareStamps(t *testing.T) {
	// Stamps written through one table over a heap must read as stale to a
	// second table over the same heap: eras are process-global.
	h := heap.New()
	o := h.AllocPlain("C", 2)
	tb1 := NewTable(h)
	tb1.RegisterObject(o, 0, SpanRef{Thread: 1, Gen: 1})
	tb2 := NewTable(h)
	if _, hit := tb2.CheckReadObject(o, 0, 2); hit {
		t.Fatal("stamp from another table read as live")
	}
	if tb2.Entries() != 0 {
		t.Fatalf("tb2.Entries = %d", tb2.Entries())
	}
}

// Property: per-thread counts sum to total, and total equals the number of
// live shadow slots, across arbitrary operation sequences.
func TestCountInvariantProperty(t *testing.T) {
	type op struct {
		Kind   uint8
		Loc    uint8
		Thread uint8
	}
	prop := func(ops []op) bool {
		h := heap.New()
		o := h.AllocPlain("C", 8)
		tb := NewTable(h)
		for _, op := range ops {
			l := loc(int(op.Loc % 8))
			th := int(op.Thread % 4)
			switch op.Kind % 3 {
			case 0:
				tb.RegisterWrite(l, SpanRef{Thread: th, Gen: 1})
			case 1:
				tb.Unregister(l, th)
			case 2:
				tb.DropThread(th)
			}
			sum := 0
			for _, c := range tb.perThread {
				if c < 0 {
					return false
				}
				sum += c
			}
			live := 0
			for i := 0; i < o.NumFields(); i++ {
				if tb.live(o.Shadow(i)) {
					live++
				}
			}
			if sum != tb.total || tb.total != live {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
