package jmm

import (
	"testing"
	"testing/quick"

	"repro/internal/heap"
	"repro/internal/undo"
)

func loc(i int) undo.Loc {
	return undo.Loc{Kind: heap.KindObject, ID: 1, Idx: i}
}

func TestRegisterAndCheckForeignRead(t *testing.T) {
	tb := NewTable()
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 7})
	ref, hit := tb.CheckRead(loc(0), 2)
	if !hit {
		t.Fatal("foreign read not detected")
	}
	if ref.Thread != 1 || ref.Gen != 7 {
		t.Fatalf("ref = %+v", ref)
	}
	if tb.Dependencies() != 1 {
		t.Fatalf("Dependencies = %d", tb.Dependencies())
	}
}

func TestOwnReadIsNotADependency(t *testing.T) {
	tb := NewTable()
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 1})
	if _, hit := tb.CheckRead(loc(0), 1); hit {
		t.Fatal("own read flagged as dependency")
	}
	if tb.Dependencies() != 0 {
		t.Fatal("dependency counted for own read")
	}
}

func TestUnknownLocationMisses(t *testing.T) {
	tb := NewTable()
	if _, hit := tb.CheckRead(loc(9), 2); hit {
		t.Fatal("phantom hit")
	}
}

func TestHasForeignFastPath(t *testing.T) {
	tb := NewTable()
	if tb.HasForeign(1) {
		t.Fatal("empty table has foreign entries")
	}
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 1})
	if tb.HasForeign(1) {
		t.Fatal("own entries counted as foreign")
	}
	if !tb.HasForeign(2) {
		t.Fatal("foreign entry not visible")
	}
	tb.RegisterWrite(loc(1), SpanRef{Thread: 2, Gen: 1})
	if !tb.HasForeign(1) {
		t.Fatal("thread 2's entry not foreign to thread 1")
	}
}

func TestUnregisterOnlyOwn(t *testing.T) {
	tb := NewTable()
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 1})
	tb.Unregister(loc(0), 2) // wrong thread: must not remove
	if _, hit := tb.CheckRead(loc(0), 2); !hit {
		t.Fatal("entry vanished after foreign unregister")
	}
	tb.Unregister(loc(0), 1)
	if _, hit := tb.CheckRead(loc(0), 2); hit {
		t.Fatal("entry survived owner unregister")
	}
	if tb.Entries() != 0 {
		t.Fatalf("Entries = %d", tb.Entries())
	}
}

func TestReRegisterSameThreadUpdatesGen(t *testing.T) {
	tb := NewTable()
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 1})
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 2})
	ref, _ := tb.CheckRead(loc(0), 2)
	if ref.Gen != 2 {
		t.Fatalf("Gen = %d, want 2", ref.Gen)
	}
	if tb.Entries() != 1 {
		t.Fatalf("Entries = %d, want 1", tb.Entries())
	}
}

func TestTakeoverByOtherThread(t *testing.T) {
	tb := NewTable()
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 1})
	tb.RegisterWrite(loc(0), SpanRef{Thread: 2, Gen: 5})
	if tb.Entries() != 1 {
		t.Fatalf("Entries = %d, want 1", tb.Entries())
	}
	ref, hit := tb.CheckRead(loc(0), 1)
	if !hit || ref.Thread != 2 {
		t.Fatalf("CheckRead = %+v,%v", ref, hit)
	}
	// Thread 1's per-thread count must have been decremented: with only
	// thread 2 owning entries, thread 2 sees no foreign writes.
	if tb.HasForeign(2) {
		t.Fatal("HasForeign(2) true after takeover")
	}
}

func TestDropThread(t *testing.T) {
	tb := NewTable()
	tb.RegisterWrite(loc(0), SpanRef{Thread: 1, Gen: 1})
	tb.RegisterWrite(loc(1), SpanRef{Thread: 1, Gen: 1})
	tb.RegisterWrite(loc(2), SpanRef{Thread: 2, Gen: 1})
	tb.DropThread(1)
	if tb.Entries() != 1 {
		t.Fatalf("Entries = %d, want 1", tb.Entries())
	}
	if _, hit := tb.CheckRead(loc(0), 3); hit {
		t.Fatal("dropped entry still present")
	}
	if _, hit := tb.CheckRead(loc(2), 3); !hit {
		t.Fatal("unrelated entry dropped")
	}
	tb.DropThread(1) // idempotent
}

// Property: total always equals the number of live map entries, and
// per-thread counts always sum to total, across arbitrary operation
// sequences.
func TestCountInvariantProperty(t *testing.T) {
	type op struct {
		Kind   uint8
		Loc    uint8
		Thread uint8
	}
	prop := func(ops []op) bool {
		tb := NewTable()
		for _, o := range ops {
			l := loc(int(o.Loc % 8))
			th := int(o.Thread % 4)
			switch o.Kind % 3 {
			case 0:
				tb.RegisterWrite(l, SpanRef{Thread: th, Gen: 1})
			case 1:
				tb.Unregister(l, th)
			case 2:
				tb.DropThread(th)
			}
			sum := 0
			for th2 := 0; th2 < 4; th2++ {
				c := tb.perThread[th2]
				if c < 0 {
					return false
				}
				sum += c
			}
			if sum != tb.total || tb.total != len(tb.writes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
