// Package jmm implements the Java-memory-model bookkeeping of §2.2: it
// tracks which heap locations currently hold *speculative* values (written
// by a synchronized section that is still active and could yet be revoked)
// and detects the read-write dependencies whose creation must force the
// guarding monitors non-revocable.
//
// The rule reproduced here: a monitor M must become non-revocable when a
// read-write dependency is created between a write performed within M and a
// read performed by another thread. Rolling M back after such a read would
// make the value the reader saw appear "out of thin air", violating
// JMM-consistency (paper Figures 2 and 3). Volatile locations follow the
// same rule; their reads establish happens-before edges even without any
// monitor (Figure 3).
//
// Representation: ownership lives *inline* with the data, in the per-slot
// heap.ShadowSlot next to each field/element/static — no global map, no
// hashing, no allocation on the barrier path (the Compact-Java-Monitors
// move applied to speculation metadata). The Table keeps only O(threads)
// counters: per-thread live-slot counts for the HasForeign fast path, and
// per-thread "eras" so DropThread can expire every stamp a terminated
// thread left behind in O(1) instead of sweeping the heap. A slot's stamp
// is live iff its recorded era equals the owning thread's current era in
// this table; eras are drawn from a process-global counter, so stamps
// written through one Table can never be mistaken for live state by
// another.
//
// A fast path avoids the per-slot check entirely when no thread other than
// the reader has speculative writes outstanding, which is the common case
// the paper's benchmark exercises (all accesses guarded by the same
// monitor).
package jmm

import (
	"sync/atomic"

	"repro/internal/heap"
	"repro/internal/undo"
)

// nextEra hands out globally unique era values; 0 is reserved so a zeroed
// ShadowSlot is always stale.
var nextEra uint64

// SpanRef identifies one activation of a thread's outermost synchronized
// section. Gen increments every time the thread enters an outermost
// section, so stale slot stamps can never be confused with a newer span.
type SpanRef struct {
	Thread int
	Gen    uint64
}

// Table tracks speculative writes across all threads. It is not safe for
// concurrent use; the uniprocessor scheduler serializes access.
type Table struct {
	h *heap.Heap

	// perThread[t] counts live speculative slots owned by thread t, so
	// HasForeign can answer "does anyone but me have speculative writes?"
	// in O(1). eras[t] is thread t's current stamp era.
	perThread []int
	eras      []uint64
	total     int

	// deps counts dependencies detected (reads of foreign speculative
	// locations); reported in runtime statistics.
	deps int64
}

// NewTable returns an empty speculation table over h's shadow slots.
func NewTable(h *heap.Heap) *Table {
	return &Table{h: h}
}

// era returns thread's current era, assigning a fresh one on first use and
// growing the per-thread slices as needed.
func (t *Table) era(thread int) uint64 {
	for thread >= len(t.eras) {
		t.eras = append(t.eras, 0)
		t.perThread = append(t.perThread, 0)
	}
	if t.eras[thread] == 0 {
		t.eras[thread] = atomic.AddUint64(&nextEra, 1)
	}
	return t.eras[thread]
}

// live reports whether s carries a current ownership stamp of this table.
func (t *Table) live(s *heap.ShadowSlot) bool {
	return s.OwnerEra != 0 && s.OwnerThread < len(t.eras) && t.eras[s.OwnerThread] == s.OwnerEra
}

// registerSlot records that s now holds a speculative value owned by ref. A
// slot already owned by the same thread is re-stamped with the newer
// generation; a slot owned by a different thread is taken over (the
// previous owner's section must already have committed or the program has a
// racy double-write, which the conservative takeover handles safely).
func (t *Table) registerSlot(s *heap.ShadowSlot, ref SpanRef) {
	era := t.era(ref.Thread)
	if t.live(s) {
		if s.OwnerThread == ref.Thread {
			s.OwnerGen = ref.Gen
			return
		}
		t.perThread[s.OwnerThread]--
		t.total--
	}
	s.OwnerThread = ref.Thread
	s.OwnerGen = ref.Gen
	s.OwnerEra = era
	t.perThread[ref.Thread]++
	t.total++
}

// unregisterSlot clears s if it is still owned by the given thread. Called
// for every log entry when a section commits or rolls back.
func (t *Table) unregisterSlot(s *heap.ShadowSlot, thread int) {
	if t.live(s) && s.OwnerThread == thread {
		s.OwnerEra = 0
		t.perThread[thread]--
		t.total--
	}
}

// checkSlot reports the owning span if s holds a speculative value written
// by a thread other than reader.
func (t *Table) checkSlot(s *heap.ShadowSlot, reader int) (SpanRef, bool) {
	if !t.live(s) || s.OwnerThread == reader {
		return SpanRef{}, false
	}
	t.deps++
	return SpanRef{Thread: s.OwnerThread, Gen: s.OwnerGen}, true
}

// ---------------------------------------------------------------------------
// Pointer fast paths: the barriers in internal/core hold the object/array
// pointer already, so registration and the read check are a direct shadow-
// slice index.

// RegisterObject marks object field (o, idx) speculative, owned by ref.
func (t *Table) RegisterObject(o *heap.Object, idx int, ref SpanRef) {
	t.registerSlot(o.Shadow(idx), ref)
}

// RegisterArray marks array element (a, idx) speculative, owned by ref.
func (t *Table) RegisterArray(a *heap.Array, idx int, ref SpanRef) {
	t.registerSlot(a.Shadow(idx), ref)
}

// RegisterStatic marks static offset idx speculative, owned by ref.
func (t *Table) RegisterStatic(idx int, ref SpanRef) {
	t.registerSlot(t.h.StaticShadow(idx), ref)
}

// CheckReadObject is CheckRead for an already-resolved object field. A hit
// means a read-write dependency has just been created and the owner's
// active monitors must be marked non-revocable.
func (t *Table) CheckReadObject(o *heap.Object, idx, reader int) (SpanRef, bool) {
	return t.checkSlot(o.Shadow(idx), reader)
}

// CheckReadArray is CheckRead for an already-resolved array element.
func (t *Table) CheckReadArray(a *heap.Array, idx, reader int) (SpanRef, bool) {
	return t.checkSlot(a.Shadow(idx), reader)
}

// CheckReadStatic is CheckRead for a static offset.
func (t *Table) CheckReadStatic(idx, reader int) (SpanRef, bool) {
	return t.checkSlot(t.h.StaticShadow(idx), reader)
}

// ---------------------------------------------------------------------------
// Loc-based API, preserved for log-driven unregistration and external
// callers. Resolution is O(1) through the heap's dense id tables.

// slot resolves loc to its shadow slot, nil when the id or index is unknown
// to the heap (stale or foreign-kind locs are tolerated, as before).
func (t *Table) slot(loc undo.Loc) *heap.ShadowSlot {
	switch loc.Kind {
	case heap.KindObject:
		if o := t.h.Object(loc.ID); o != nil && loc.Idx >= 0 && loc.Idx < o.NumFields() {
			return o.Shadow(loc.Idx)
		}
	case heap.KindArray:
		if a := t.h.Array(loc.ID); a != nil && loc.Idx >= 0 && loc.Idx < a.Len() {
			return a.Shadow(loc.Idx)
		}
	default:
		if loc.Idx >= 0 && loc.Idx < t.h.NumStatics() {
			return t.h.StaticShadow(loc.Idx)
		}
	}
	return nil
}

// RegisterWrite records that loc now holds a speculative value owned by
// ref. Locations unknown to the heap are ignored.
func (t *Table) RegisterWrite(loc undo.Loc, ref SpanRef) {
	if s := t.slot(loc); s != nil {
		t.registerSlot(s, ref)
	}
}

// Unregister removes loc from speculation if it is still owned by the given
// thread. Called for every log entry when a section commits or rolls back.
func (t *Table) Unregister(loc undo.Loc, thread int) {
	if s := t.slot(loc); s != nil {
		t.unregisterSlot(s, thread)
	}
}

// CheckRead reports the owning span if loc holds a speculative value
// written by a thread other than reader.
func (t *Table) CheckRead(loc undo.Loc, reader int) (SpanRef, bool) {
	if s := t.slot(loc); s != nil {
		return t.checkSlot(s, reader)
	}
	return SpanRef{}, false
}

// ---------------------------------------------------------------------------

// HasForeign reports whether any thread other than reader has speculative
// writes outstanding. When false, no read by reader can create a dependency
// and the per-slot check can be skipped entirely.
func (t *Table) HasForeign(reader int) bool {
	if t.total == 0 {
		return false
	}
	if reader >= 0 && reader < len(t.perThread) {
		return t.total > t.perThread[reader]
	}
	return true
}

// Entries returns the number of live speculative locations.
func (t *Table) Entries() int { return t.total }

// Dependencies returns the lifetime count of detected read-write
// dependencies.
func (t *Table) Dependencies() int64 { return t.deps }

// DropThread expires every stamp owned by the given thread, regardless of
// generation, by retiring the thread's era — O(1), no heap sweep. Used when
// a thread terminates with sections force-committed.
func (t *Table) DropThread(thread int) {
	if thread < 0 || thread >= len(t.perThread) {
		return
	}
	if t.perThread[thread] != 0 {
		t.total -= t.perThread[thread]
		t.perThread[thread] = 0
	}
	if t.eras[thread] != 0 {
		t.eras[thread] = atomic.AddUint64(&nextEra, 1)
	}
}
