// Package jmm implements the Java-memory-model bookkeeping of §2.2: it
// tracks which heap locations currently hold *speculative* values (written
// by a synchronized section that is still active and could yet be revoked)
// and detects the read-write dependencies whose creation must force the
// guarding monitors non-revocable.
//
// The rule reproduced here: a monitor M must become non-revocable when a
// read-write dependency is created between a write performed within M and a
// read performed by another thread. Rolling M back after such a read would
// make the value the reader saw appear "out of thin air", violating
// JMM-consistency (paper Figures 2 and 3). Volatile locations follow the
// same rule; their reads establish happens-before edges even without any
// monitor (Figure 3).
//
// The structure is a single table mapping location → owning thread span. A
// fast path avoids the table entirely when no thread other than the reader
// has speculative writes outstanding, which is the common case the paper's
// benchmark exercises (all accesses guarded by the same monitor).
package jmm

import "repro/internal/undo"

// SpanRef identifies one activation of a thread's outermost synchronized
// section. Gen increments every time the thread enters an outermost
// section, so stale table entries can never be confused with a newer span.
type SpanRef struct {
	Thread int
	Gen    uint64
}

// Table tracks speculative writes across all threads. It is not safe for
// concurrent use; the uniprocessor scheduler serializes access.
type Table struct {
	writes map[undo.Loc]SpanRef

	// perThread counts live table entries per thread id, so Foreign can
	// answer "does anyone but me have speculative writes?" in O(1).
	perThread map[int]int
	total     int

	// deps counts dependencies detected (reads of foreign speculative
	// locations); reported in runtime statistics.
	deps int64
}

// NewTable returns an empty speculation table.
func NewTable() *Table {
	return &Table{
		writes:    make(map[undo.Loc]SpanRef),
		perThread: make(map[int]int),
	}
}

// RegisterWrite records that loc now holds a speculative value owned by
// ref. A location already owned by the same thread is re-stamped with the
// newer generation; a location owned by a different thread is taken over
// (the previous owner's section must already have committed or the program
// has a racy double-write, which the conservative takeover handles safely).
func (t *Table) RegisterWrite(loc undo.Loc, ref SpanRef) {
	if prev, ok := t.writes[loc]; ok {
		if prev.Thread == ref.Thread {
			t.writes[loc] = ref
			return
		}
		t.perThread[prev.Thread]--
		t.total--
	}
	t.writes[loc] = ref
	t.perThread[ref.Thread]++
	t.total++
}

// Unregister removes loc from the table if it is still owned by the given
// thread. Called for every log entry when a section commits or rolls back.
func (t *Table) Unregister(loc undo.Loc, thread int) {
	if prev, ok := t.writes[loc]; ok && prev.Thread == thread {
		delete(t.writes, loc)
		t.perThread[thread]--
		t.total--
	}
}

// HasForeign reports whether any thread other than reader has speculative
// writes outstanding. When false, no read by reader can create a dependency
// and the table lookup can be skipped entirely.
func (t *Table) HasForeign(reader int) bool {
	if t.total == 0 {
		return false
	}
	return t.total > t.perThread[reader]
}

// CheckRead reports the owning span if loc holds a speculative value
// written by a thread other than reader. A hit means a read-write
// dependency has just been created and the owner's active monitors must be
// marked non-revocable.
func (t *Table) CheckRead(loc undo.Loc, reader int) (SpanRef, bool) {
	ref, ok := t.writes[loc]
	if !ok || ref.Thread == reader {
		return SpanRef{}, false
	}
	t.deps++
	return ref, true
}

// Entries returns the number of live speculative locations.
func (t *Table) Entries() int { return t.total }

// Dependencies returns the lifetime count of detected read-write
// dependencies.
func (t *Table) Dependencies() int64 { return t.deps }

// DropThread removes every entry owned by the given thread, regardless of
// generation. Used when a thread terminates with sections force-committed.
func (t *Table) DropThread(thread int) {
	if t.perThread[thread] == 0 {
		return
	}
	for loc, ref := range t.writes {
		if ref.Thread == thread {
			delete(t.writes, loc)
			t.total--
		}
	}
	t.perThread[thread] = 0
}
