package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bytecode"
)

// Static data-race candidates (the Eraser-style lockset half of the
// sanitizer; internal/race is the dynamic half).
//
// For every heap access reachable from a declared thread the pass computes
// a MUST-HELD lockset: the monitors that are provably held on every
// execution reaching the access. Per slot, any pair of accesses with at
// least one write, disjoint must-locksets, not both volatile, and reachable
// by two distinct threads is a candidate race. Because protection is
// under-approximated (only stable lock identities count, caller contexts
// are intersected over all call sites) and access reachability is
// over-approximated, every dynamically observable race is contained in the
// candidate set — the containment the differential harness in
// internal/race checks over the example programs.
//
// Under-approximating protection:
//
//   - Only "static:NAME" and "recv:NAME" lock identities protect an access.
//     "new:"/"local:"/"argN:" ids name potentially distinct objects per
//     execution, so two accesses under the "same" such id may in fact hold
//     different monitors.
//
//   - A section's lock counts at pc only when the verifier's static monitor
//     depth proves some monitor is held on every path there; a
//     synchronized method's receiver counts everywhere in its body.
//
//   - A callee's inherited lockset is the intersection over all reachable
//     call sites of (caller's context ∪ caller's locks at the site);
//     thread roots start with the empty context.
//
// Thread-local objects are elided with a freshness variant that kills all
// facts the moment a fresh reference escapes (stored anywhere, passed to
// any call): a reference fresh at its access point was never published, so
// no other thread can reach it. Volatile accesses get release/acquire
// semantics dynamically, so volatile/volatile pairs are exempt; mixed
// volatile/plain declarations at one field index and barrier-elided raw
// stores to volatile slots defeat that exemption and are flagged as
// volatile-bypass findings.

// Race is one candidate data race: a slot with at least one unprotected
// racy access pair. Writes/Reads list only the sites that participate in
// some racy pair.
type Race struct {
	Slot    string   `json:"slot"`
	Threads []string `json:"threads"`
	Writes  []Pos    `json:"writes"`
	Reads   []Pos    `json:"reads,omitempty"`
}

// VolatileBypass flags an access pattern that defeats the volatile
// exemption on a slot: a field index declared volatile in one class and
// plain in another ("mixed-declaration"), or a barrier-elided raw store to
// a volatile slot ("raw-store").
type VolatileBypass struct {
	Slot   string `json:"slot"`
	Kind   string `json:"kind"` // "mixed-declaration" or "raw-store"
	Pos    Pos    `json:"pos"`
	Detail string `json:"detail,omitempty"`
}

// saccess is one reachable heap access with its static protection facts.
type saccess struct {
	pos     Pos
	write   bool
	vol     bool
	lockset map[string]bool
	threads map[string]bool
}

// stableLock reports whether a lock identity names the same monitor object
// across executions, so holding it genuinely orders two accesses.
func stableLock(id string) bool {
	return strings.HasPrefix(id, "static:") || strings.HasPrefix(id, "recv:")
}

// computeRaces runs the lockset pass, filling Facts.Races and
// Facts.Bypasses.
func (f *Facts) computeRaces() {
	reach := f.threadReachability()
	if len(reach) == 0 {
		return // no declared threads: nothing can race
	}
	sectionsOf := make(map[string][]*Section)
	for _, s := range f.Sections {
		sectionsOf[s.Enter.Method] = append(sectionsOf[s.Enter.Method], s)
	}
	ctx := f.contextLocksets(reach, sectionsOf)

	// Volatile classification per field index: an access is volatile only
	// when EVERY class declaring that index declares it volatile; a mix
	// leaves plain accesses possible on the same slot.
	decl := make(map[int]int)
	volDecl := make(map[int]int)
	volName := make(map[int]string)
	for _, c := range f.prog.Classes {
		for i, fld := range c.Fields {
			decl[i]++
			if fld.Volatile {
				volDecl[i]++
				if _, ok := volName[i]; !ok {
					volName[i] = c.Name + "." + fld.Name
				}
			}
		}
	}
	allVol := func(idx int) bool { return decl[idx] > 0 && volDecl[idx] == decl[idx] }
	someVol := func(idx int) bool { return volDecl[idx] > 0 }

	perSlot := make(map[string][]saccess)
	bypassSeen := make(map[VolatileBypass]bool)
	bypass := func(b VolatileBypass) {
		if !bypassSeen[b] {
			bypassSeen[b] = true
			f.Bypasses = append(f.Bypasses, b)
		}
	}
	staticSlot := func(idx int) string {
		if idx >= 0 && idx < len(f.prog.Statics) {
			return "static:" + f.prog.Statics[idx].Name
		}
		return fmt.Sprintf("static:#%d", idx)
	}
	staticVol := func(idx int) bool {
		return idx >= 0 && idx < len(f.prog.Statics) && f.prog.Statics[idx].Volatile
	}

	for _, m := range f.prog.Methods {
		threads := reach[m.Name]
		if len(threads) == 0 {
			continue
		}
		mi := f.methods[m.Name]
		var fresh []*freshState
		freshDone := false
		freshAt := func(pc, receiverDepth int) bool {
			if !freshDone {
				fresh = f.freshness(mi, true)
				freshDone = true
			}
			if fresh == nil || fresh[pc] == nil {
				return false
			}
			st := fresh[pc]
			return len(st.stack) >= receiverDepth && st.stack[len(st.stack)-receiverDepth]
		}
		for pc, in := range m.Code {
			if mi.depth[pc] < 0 {
				continue // unreachable
			}
			pos := Pos{m.Name, pc}
			var (
				slot          string
				write, vol    bool
				receiverDepth int // stack slots from top to the target ref; 0 = none
			)
			switch in.Op {
			case bytecode.GETSTATIC:
				slot, vol = staticSlot(in.A), staticVol(in.A)
			case bytecode.PUTSTATIC:
				slot, write, vol = staticSlot(in.A), true, staticVol(in.A)
			case bytecode.PUTSTATICRAW:
				slot, write = staticSlot(in.A), true
				if staticVol(in.A) {
					bypass(VolatileBypass{Slot: slot, Kind: "raw-store", Pos: pos})
				}
			case bytecode.GETFIELD:
				slot, vol, receiverDepth = fmt.Sprintf("field:#%d", in.A), allVol(in.A), 1
				if someVol(in.A) && !allVol(in.A) {
					bypass(VolatileBypass{Slot: slot, Kind: "mixed-declaration", Pos: pos, Detail: volName[in.A]})
				}
			case bytecode.PUTFIELD:
				slot, write, vol, receiverDepth = fmt.Sprintf("field:#%d", in.A), true, allVol(in.A), 2
				if someVol(in.A) && !allVol(in.A) {
					bypass(VolatileBypass{Slot: slot, Kind: "mixed-declaration", Pos: pos, Detail: volName[in.A]})
				}
			case bytecode.PUTFIELDRAW:
				slot, write, receiverDepth = fmt.Sprintf("field:#%d", in.A), true, 2
				if someVol(in.A) {
					bypass(VolatileBypass{Slot: slot, Kind: "raw-store", Pos: pos, Detail: volName[in.A]})
				}
			case bytecode.ALOAD:
				slot, receiverDepth = "array:elem", 2
			case bytecode.ASTORE:
				slot, write, receiverDepth = "array:elem", true, 3
			case bytecode.ASTORERAW:
				slot, write, receiverDepth = "array:elem", true, 3
			default:
				continue
			}
			if receiverDepth > 0 && freshAt(pc, receiverDepth) {
				continue // provably never published: thread-local
			}
			perSlot[slot] = append(perSlot[slot], saccess{
				pos:     pos,
				write:   write,
				vol:     vol,
				lockset: unionSet(ctx[m.Name], f.localMust(mi, pc, sectionsOf[m.Name])),
				threads: threads,
			})
		}
	}

	slots := make([]string, 0, len(perSlot))
	for s := range perSlot {
		slots = append(slots, s)
	}
	sort.Strings(slots)
	// Confinement refinement (escape.go): a field slot whose every access
	// dereferences a provably thread-confined object cannot race even
	// though its multi-instance lock earns no lockset credit.
	confinedRecv := f.confinedReceiverSlots()
	for _, slot := range slots {
		if confinedRecv[slot] {
			continue
		}
		accs := perSlot[slot]
		racy := make([]bool, len(accs))
		for i := range accs {
			for j := i + 1; j < len(accs); j++ {
				a, b := &accs[i], &accs[j]
				if !a.write && !b.write {
					continue
				}
				if a.vol && b.vol {
					continue // ordered by the volatile acquire
				}
				if countUnion(a.threads, b.threads) < 2 {
					continue // only one thread can ever perform the pair
				}
				if intersects(a.lockset, b.lockset) {
					continue // a common monitor orders every such pair
				}
				racy[i], racy[j] = true, true
			}
		}
		r := Race{Slot: slot}
		threads := make(map[string]bool)
		seenPos := make(map[Pos]bool)
		for i, a := range accs {
			if !racy[i] || seenPos[a.pos] {
				continue
			}
			seenPos[a.pos] = true
			if a.write {
				r.Writes = append(r.Writes, a.pos)
			} else {
				r.Reads = append(r.Reads, a.pos)
			}
			for t := range a.threads {
				threads[t] = true
			}
		}
		if len(r.Writes)+len(r.Reads) == 0 {
			continue
		}
		for t := range threads {
			r.Threads = append(r.Threads, t)
		}
		sort.Strings(r.Threads)
		sortPos(r.Writes)
		sortPos(r.Reads)
		f.Races = append(f.Races, r)
	}
}

// threadReachability maps each method to the set of thread identities that
// can (transitively) call it: the declared threads plus one pseudo-root per
// SPAWN target. Uses the full call graph: over-approximating reachability
// only adds candidate accesses.
//
// A spawn target gets TWO pseudo-identities ("spawn:M" and "spawn:M'"):
// one spawn site can start several concurrent instances of the same method
// (a spawn inside a loop, or a spawning method itself running on two
// threads), so an access pair entirely inside a spawned body must still
// count as reachable by two threads. Treating every spawn site as live
// regardless of its own reachability is a further over-approximation in
// the same safe direction.
func (f *Facts) threadReachability() map[string]map[string]bool {
	reach := make(map[string]map[string]bool)
	mark := func(root, tname string) {
		queue := []string{root}
		for len(queue) > 0 {
			name := queue[0]
			queue = queue[1:]
			if reach[name] == nil {
				reach[name] = make(map[string]bool)
			}
			if reach[name][tname] {
				continue
			}
			reach[name][tname] = true
			queue = append(queue, f.CallGraph[name]...)
		}
	}
	for _, td := range f.prog.Threads {
		if f.methods[td.Method] != nil {
			mark(td.Method, td.Name)
		}
	}
	for _, m := range f.prog.Methods {
		mi := f.methods[m.Name]
		for pc, in := range m.Code {
			if in.Op == bytecode.SPAWN && mi.depth[pc] >= 0 && f.methods[in.S] != nil {
				mark(in.S, "spawn:"+in.S)
				mark(in.S, "spawn:"+in.S+"'")
			}
		}
	}
	return reach
}

// localMust returns the stable locks provably held at (mi, pc): the
// receiver of a synchronized method everywhere in its body, and the locks
// of sections covering pc when the static monitor depth proves some
// monitor is held on every path to pc. (With several same-depth sections
// covering one pc on alternative paths this over-claims protection — the
// documented approximation; assembler-structured sync blocks are exact.)
func (f *Facts) localMust(mi *methodInfo, pc int, sections []*Section) map[string]bool {
	var out map[string]bool
	add := func(id string) {
		if !stableLock(id) {
			return
		}
		if out == nil {
			out = make(map[string]bool, 2)
		}
		out[id] = true
	}
	for _, s := range sections {
		if s.SyncMethod {
			add(s.Lock)
			continue
		}
		if mi.depth[pc] < 1 {
			continue
		}
		i := sort.SearchInts(s.PCs, pc)
		if i < len(s.PCs) && s.PCs[i] == pc {
			add(s.Lock)
		}
	}
	return out
}

// contextLocksets runs the caller-context fixpoint: ctx(root) = ∅ for
// thread roots; ctx(callee) = ∩ over reachable call sites of
// (ctx(caller) ∪ localMust at the site). nil means "not yet constrained"
// (⊤); the intersection only shrinks, so the fixpoint terminates.
func (f *Facts) contextLocksets(reach map[string]map[string]bool, sectionsOf map[string][]*Section) map[string]map[string]bool {
	ctx := make(map[string]map[string]bool)
	known := make(map[string]bool)
	var queue []string
	for _, td := range f.prog.Threads {
		if f.methods[td.Method] != nil && !known[td.Method] {
			ctx[td.Method] = make(map[string]bool)
			known[td.Method] = true
			queue = append(queue, td.Method)
		}
	}
	// A spawned body starts on a fresh thread holding nothing: seed every
	// SPAWN target with the empty context so locks held at the spawn site
	// never count as protecting the spawned code.
	for _, m := range f.prog.Methods {
		mi := f.methods[m.Name]
		for pc, in := range m.Code {
			if in.Op != bytecode.SPAWN || mi.depth[pc] < 0 || f.methods[in.S] == nil {
				continue
			}
			if known[in.S] {
				if shrinkTo(ctx[in.S], nil) {
					queue = append(queue, in.S)
				}
				continue
			}
			ctx[in.S] = make(map[string]bool)
			known[in.S] = true
			queue = append(queue, in.S)
		}
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		mi := f.methods[name]
		for pc, in := range mi.m.Code {
			if in.Op != bytecode.INVOKE || mi.depth[pc] < 0 {
				continue
			}
			callee := in.S
			if f.methods[callee] == nil || len(reach[callee]) == 0 {
				continue
			}
			site := unionSet(ctx[name], f.localMust(mi, pc, sectionsOf[name]))
			if !known[callee] {
				ctx[callee] = site
				known[callee] = true
				queue = append(queue, callee)
				continue
			}
			if shrinkTo(ctx[callee], site) {
				queue = append(queue, callee)
			}
		}
	}
	return ctx
}

// unionSet returns a fresh set holding a ∪ b (never nil).
func unionSet(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// shrinkTo intersects dst with src in place; reports whether dst changed.
func shrinkTo(dst, src map[string]bool) bool {
	changed := false
	for k := range dst {
		if !src[k] {
			delete(dst, k)
			changed = true
		}
	}
	return changed
}

func intersects(a, b map[string]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

func countUnion(a, b map[string]bool) int {
	n := len(a)
	for k := range b {
		if !a[k] {
			n++
		}
	}
	return n
}

func sortPos(ps []Pos) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Method != ps[j].Method {
			return ps[i].Method < ps[j].Method
		}
		return ps[i].PC < ps[j].PC
	})
}

// RaceSlots returns the candidate slot set: every slot named by a race or
// volatile-bypass finding. The differential harness checks dynamic reports
// against it.
func (f *Facts) RaceSlots() map[string]bool {
	out := make(map[string]bool, len(f.Races)+len(f.Bypasses))
	for _, r := range f.Races {
		out[r.Slot] = true
	}
	for _, b := range f.Bypasses {
		out[b.Slot] = true
	}
	return out
}

// RenderRaces formats the race findings as deterministic text (the
// rvmlint -races section).
func (f *Facts) RenderRaces() string {
	var b strings.Builder
	fmt.Fprintf(&b, "candidate races: %d  volatile bypasses: %d\n", len(f.Races), len(f.Bypasses))
	for _, r := range f.Races {
		fmt.Fprintf(&b, "  race: %s  threads=%s\n", r.Slot, strings.Join(r.Threads, ","))
		for _, p := range r.Writes {
			fmt.Fprintf(&b, "    write at %v\n", p)
		}
		for _, p := range r.Reads {
			fmt.Fprintf(&b, "    read  at %v\n", p)
		}
	}
	for _, v := range f.Bypasses {
		if v.Detail != "" {
			fmt.Fprintf(&b, "  volatile-bypass: %s  %s (%s) at %v\n", v.Slot, v.Kind, v.Detail, v.Pos)
		} else {
			fmt.Fprintf(&b, "  volatile-bypass: %s  %s at %v\n", v.Slot, v.Kind, v.Pos)
		}
	}
	return b.String()
}
