package analysis

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
)

func analyze(t *testing.T, src string) *Facts {
	t.Helper()
	p, err := bytecode.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestNativeSectionNonRevocable: a section containing a native call is
// statically non-revocable, with the native named in the reason.
func TestNativeSectionNonRevocable(t *testing.T) {
	f := analyze(t, `
class Lock {
    unused
}
static L
method main locals 1 {
    newobj Lock
    putstatic L
    getstatic L
    store 0
    sync 0 {
        const 1
        native log 1
        pop
    }
    return
}
`)
	if len(f.Sections) != 1 {
		t.Fatalf("sections = %d, want 1", len(f.Sections))
	}
	s := f.Sections[0]
	if !s.NonRevocable {
		t.Fatalf("native section classified revocable: %+v", s)
	}
	if len(s.Reasons) != 1 || s.Reasons[0].Kind != "native-call" || s.Reasons[0].Detail != "log" {
		t.Fatalf("reasons = %+v, want one native-call log", s.Reasons)
	}
	if s.Lock != "static:L" {
		t.Fatalf("lock id = %q, want static:L", s.Lock)
	}
	if got := f.SectionAt(s.Enter.Method, s.Enter.PC); got != s {
		t.Fatalf("SectionAt(%v) = %v", s.Enter, got)
	}
}

// TestVolatileAndWaitTriggers: volatile static reads and waits inside a
// section mark it non-revocable; a clean section stays revocable.
func TestVolatileAndWaitTriggers(t *testing.T) {
	f := analyze(t, `
class Lock {
    unused
}
static L
static flag volatile = 0
method volsec locals 1 {
    getstatic L
    store 0
    sync 0 {
        getstatic flag
        pop
    }
    return
}
method waitsec locals 1 {
    getstatic L
    store 0
    sync 0 {
        load 0
        wait
    }
    return
}
method cleansec locals 1 {
    getstatic L
    store 0
    sync 0 {
        nop
    }
    return
}
`)
	byMethod := map[string]*Section{}
	for _, s := range f.Sections {
		byMethod[s.Enter.Method] = s
	}
	if s := byMethod["volsec"]; !s.NonRevocable || s.Reasons[0].Kind != "volatile-read" || s.Reasons[0].Detail != "flag" {
		t.Fatalf("volsec: %+v", s)
	}
	if s := byMethod["waitsec"]; !s.NonRevocable || s.Reasons[0].Kind != "nested-wait" {
		t.Fatalf("waitsec: %+v", s)
	}
	if s := byMethod["cleansec"]; s.NonRevocable {
		t.Fatalf("cleansec flagged non-revocable: %+v", s)
	}
	if n := f.NonRevocableSections(); n != 2 {
		t.Fatalf("NonRevocableSections = %d, want 2", n)
	}
}

// TestTriggerInCallee: a native reachable only through a chain of calls
// still poisons the section.
func TestTriggerInCallee(t *testing.T) {
	f := analyze(t, `
class Lock {
    unused
}
static L
method deep locals 0 {
    const 1
    native log 1
    pop
    return
}
method mid locals 0 {
    invoke deep
    return
}
method main locals 1 {
    getstatic L
    store 0
    sync 0 {
        invoke mid
    }
    return
}
`)
	var s *Section
	for _, c := range f.Sections {
		if c.Enter.Method == "main" {
			s = c
		}
	}
	if s == nil || !s.NonRevocable {
		t.Fatalf("section with native in transitive callee not flagged: %+v", s)
	}
	if s.Reasons[0].Pos.Method != "deep" {
		t.Fatalf("reason position = %v, want deep", s.Reasons[0].Pos)
	}
	if len(s.Callees) != 2 {
		t.Fatalf("callees = %v, want [deep mid]", s.Callees)
	}
}

// TestLockOrderCycle: two methods acquiring two static locks in opposite
// orders produce one two-lock cycle with method@pc witnesses.
func TestLockOrderCycle(t *testing.T) {
	f := analyze(t, `
class Lock {
    unused
}
static A
static B
method ab locals 2 {
    getstatic A
    store 0
    getstatic B
    store 1
    sync 0 {
        sync 1 {
            nop
        }
    }
    return
}
method ba locals 2 {
    getstatic A
    store 0
    getstatic B
    store 1
    sync 1 {
        sync 0 {
            nop
        }
    }
    return
}
`)
	if len(f.Cycles) != 1 {
		t.Fatalf("cycles = %+v, want exactly 1", f.Cycles)
	}
	c := f.Cycles[0]
	if len(c.Locks) != 2 || c.Locks[0] != "static:A" || c.Locks[1] != "static:B" {
		t.Fatalf("cycle locks = %v", c.Locks)
	}
	if len(c.Edges) != 2 {
		t.Fatalf("cycle edges = %+v, want 2 witnesses", c.Edges)
	}
	for _, e := range c.Edges {
		if e.At.Method != "ab" && e.At.Method != "ba" {
			t.Fatalf("witness %+v names unexpected method", e)
		}
	}
}

// TestLockOrderThroughCallee: nesting via an invoked method still yields the
// cycle, and consistent ordering yields none.
func TestLockOrderThroughCallee(t *testing.T) {
	f := analyze(t, `
class Lock {
    unused
}
static A
static B
method inner locals 1 {
    getstatic B
    store 0
    sync 0 {
        nop
    }
    return
}
method outer locals 1 {
    getstatic A
    store 0
    sync 0 {
        invoke inner
    }
    return
}
method reversed locals 2 {
    getstatic A
    store 0
    getstatic B
    store 1
    sync 1 {
        sync 0 {
            nop
        }
    }
    return
}
`)
	if len(f.Cycles) != 1 {
		t.Fatalf("cycles = %+v, want 1", f.Cycles)
	}

	// Without the reversed acquisition there is no cycle.
	f2 := analyze(t, `
class Lock {
    unused
}
static A
static B
method inner locals 1 {
    getstatic B
    store 0
    sync 0 {
        nop
    }
    return
}
method outer locals 1 {
    getstatic A
    store 0
    sync 0 {
        invoke inner
    }
    return
}
`)
	if len(f2.Cycles) != 0 {
		t.Fatalf("consistent order reported cycles: %+v", f2.Cycles)
	}
}

// TestElisionNeverHeld: stores in a method that never runs under a monitor
// are elidable; the same store becomes barriered when the method is invoked
// from inside a section.
func TestElisionNeverHeld(t *testing.T) {
	src := `
class Point {
    x
}
class Lock {
    unused
}
static L
method free locals 1 {
    newobj Point
    store 0
    load 0
    const 5
    putfield Point.x
    return
}
`
	f := analyze(t, src)
	if f.TotalStores != 1 || f.ElidableStores != 1 || f.NeverHeldStores != 1 {
		t.Fatalf("counts = total %d elidable %d neverHeld %d", f.TotalStores, f.ElidableStores, f.NeverHeldStores)
	}
	if !f.MethodElidable("free") || !f.StoreNeverHeld("free", 4) {
		t.Fatalf("free not elidable: %+v", f)
	}

	f2 := analyze(t, src+`
method caller locals 1 {
    getstatic L
    store 0
    sync 0 {
        invoke free
    }
    return
}
`)
	if f2.MethodElidable("free") || f2.StoreNeverHeld("free", 4) {
		t.Fatal("free still never-held though invoked from a section")
	}
	if !f2.MayRunHeld("free") {
		t.Fatal("MayRunHeld(free) = false")
	}
	// The store's receiver is freshly allocated, so per-instruction elision
	// still applies (via allocation logging), just not the never-held proof.
	if !f2.ElidableStore("free", 4) || f2.FreshStores != 1 {
		t.Fatalf("fresh-target elision missing: fresh=%d", f2.FreshStores)
	}
}

// TestElisionFreshInSection: a store to an object allocated inside the
// section is elidable; a store to an object allocated before the enter is
// not.
func TestElisionFreshInSection(t *testing.T) {
	f := analyze(t, `
class Point {
    x
}
class Lock {
    unused
}
static L
method freshstore locals 2 {
    getstatic L
    store 0
    sync 0 {
        newobj Point
        store 1
        load 1
        const 5
        putfield Point.x
    }
    return
}
method stale locals 2 {
    getstatic L
    store 0
    newobj Point
    store 1
    sync 0 {
        load 1
        const 5
        putfield Point.x
    }
    return
}
`)
	freshPC, stalePC := -1, -1
	p := f.prog
	for _, name := range []string{"freshstore", "stale"} {
		m, _ := p.Method(name)
		for pc, in := range m.Code {
			if in.Op == bytecode.PUTFIELD {
				if name == "freshstore" {
					freshPC = pc
				} else {
					stalePC = pc
				}
			}
		}
	}
	if !f.ElidableStore("freshstore", freshPC) {
		t.Fatal("store to in-section allocation not elided")
	}
	if f.ElidableStore("stale", stalePC) {
		t.Fatal("store to pre-section allocation unsoundly elided")
	}
	if f.FreshStores != 1 || f.NeverHeldStores != 0 {
		t.Fatalf("fresh=%d neverHeld=%d, want 1/0", f.FreshStores, f.NeverHeldStores)
	}
	// Method-level elision must reject both: it may not rely on freshness.
	if f.MethodElidable("freshstore") || f.MethodElidable("stale") {
		t.Fatal("MethodElidable used a fresh-target proof")
	}
}

// TestFreshnessKilledByImpureCall: an intervening call to a method that
// takes monitors invalidates freshness.
func TestFreshnessKilledByImpureCall(t *testing.T) {
	f := analyze(t, `
class Point {
    x
}
class Lock {
    unused
}
static L
method impure locals 1 {
    getstatic L
    store 0
    sync 0 {
        nop
    }
    return
}
method pure locals 0 {
    const 1
    pop
    return
}
method killed locals 2 {
    getstatic L
    store 0
    sync 0 {
        newobj Point
        store 1
        invoke impure
        load 1
        const 5
        putfield Point.x
    }
    return
}
method kept locals 2 {
    getstatic L
    store 0
    sync 0 {
        newobj Point
        store 1
        invoke pure
        load 1
        const 5
        putfield Point.x
    }
    return
}
`)
	find := func(method string) int {
		m, _ := f.prog.Method(method)
		for pc, in := range m.Code {
			if in.Op == bytecode.PUTFIELD {
				return pc
			}
		}
		t.Fatalf("no putfield in %s", method)
		return -1
	}
	if f.ElidableStore("killed", find("killed")) {
		t.Fatal("freshness survived a monitor-taking call")
	}
	if !f.ElidableStore("kept", find("kept")) {
		t.Fatal("freshness lost across a provably monitor-free call")
	}
}

// TestHandlerUnionHeld: a user handler covering a synchronized region runs
// with the monitor held (no release handler in hand-written code), so its
// stores are not elidable — even though the handler's range starts outside
// the region at monitor depth 0.
func TestHandlerUnionHeld(t *testing.T) {
	f := analyze(t, `
class Point {
    x
}
class Lock {
    unused
}
static L
method uhandler locals 2 {
    getstatic L
    store 0
    newobj Point
    store 1
  tfrom:
    nop
    load 0
    monitorenter
    nop
    load 0
    monitorexit
  tend:
    goto done
  hdl:
    pop
    load 1
    const 7
    putfield Point.x
    goto done
  done:
    return
}
handler uhandler from tfrom to tend target hdl catch *
`)
	m, _ := f.prog.Method("uhandler")
	pfPC := -1
	for pc, in := range m.Code {
		if in.Op == bytecode.PUTFIELD {
			pfPC = pc
		}
	}
	if f.ElidableStore("uhandler", pfPC) || f.StoreNeverHeld("uhandler", pfPC) {
		t.Fatal("store in handler over a synchronized region was elided")
	}
	// The handler pcs must be inside the section.
	s := f.Sections[0]
	inSection := false
	for _, pc := range s.PCs {
		if pc == pfPC {
			inSection = true
		}
	}
	if !inSection {
		t.Fatalf("handler store pc %d missing from section pcs %v", pfPC, s.PCs)
	}
}

// TestSynchronizedMethodSection: a synchronized method yields a synthetic
// whole-body section and its stores are never elidable by the never-held
// proof.
func TestSynchronizedMethodSection(t *testing.T) {
	f := analyze(t, `
class Point {
    x
}
method Point.set synchronized args 2 locals 2 {
    load 0
    load 1
    putfield Point.x
    const 1
    native log 1
    pop
    return
}
`)
	if len(f.Sections) != 1 {
		t.Fatalf("sections = %+v", f.Sections)
	}
	s := f.Sections[0]
	if !s.SyncMethod || !s.NonRevocable || s.Lock != "recv:Point.set" {
		t.Fatalf("synthetic section = %+v", s)
	}
	if f.MethodElidable("Point.set") || f.ElidableStore("Point.set", 2) {
		t.Fatal("store in synchronized method elided")
	}
}

// TestRenderDeterministic: Render mentions the load-bearing findings and is
// stable across runs.
func TestRenderDeterministic(t *testing.T) {
	src := `
class Lock {
    unused
}
static A
static B
method ab locals 2 {
    getstatic A
    store 0
    getstatic B
    store 1
    sync 0 {
        sync 1 {
            const 1
            native log 1
            pop
        }
    }
    return
}
method ba locals 2 {
    getstatic A
    store 0
    getstatic B
    store 1
    sync 1 {
        sync 0 {
            nop
        }
    }
    return
}
`
	out := analyze(t, src).Render()
	for _, want := range []string{"NON-REVOCABLE", "native-call log", "static:A <-> static:B", "potential deadlocks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if out2 := analyze(t, src).Render(); out != out2 {
		t.Fatal("render not deterministic")
	}
}
