package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// normalize sorts and dedups every finding list so rendered and JSON
// output is deterministic regardless of map-iteration or discovery order —
// the contract the cmd/rvmlint golden tests pin.
func (f *Facts) normalize() {
	sort.Slice(f.Sections, func(i, j int) bool {
		a, b := f.Sections[i].Enter, f.Sections[j].Enter
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		return a.PC < b.PC
	})
	for _, s := range f.Sections {
		sort.Slice(s.Reasons, func(i, j int) bool {
			a, b := s.Reasons[i], s.Reasons[j]
			if a.Pos.Method != b.Pos.Method {
				return a.Pos.Method < b.Pos.Method
			}
			if a.Pos.PC != b.Pos.PC {
				return a.Pos.PC < b.Pos.PC
			}
			return a.Kind < b.Kind
		})
		w := 0
		for i, r := range s.Reasons {
			if i == 0 || r != s.Reasons[w-1] {
				s.Reasons[w] = r
				w++
			}
		}
		s.Reasons = s.Reasons[:w]
	}
	f.Cycles = canonicalCycles(f.Cycles)
	f.Deadlocks = canonicalCycles(f.Deadlocks)
	sort.Slice(f.Certs, func(i, j int) bool {
		a, b := f.Certs[i], f.Certs[j]
		if a.Pos.Method != b.Pos.Method {
			return a.Pos.Method < b.Pos.Method
		}
		if a.Pos.PC != b.Pos.PC {
			return a.Pos.PC < b.Pos.PC
		}
		return a.Kind < b.Kind
	})
	sort.Slice(f.Races, func(i, j int) bool { return f.Races[i].Slot < f.Races[j].Slot })
	sort.Slice(f.Confinements, func(i, j int) bool { return f.Confinements[i].Lock < f.Confinements[j].Lock })
	for i := range f.Confinements {
		sortPos(f.Confinements[i].Sites)
	}
	sort.Slice(f.Bypasses, func(i, j int) bool {
		a, b := f.Bypasses[i], f.Bypasses[j]
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Pos.Method != b.Pos.Method {
			return a.Pos.Method < b.Pos.Method
		}
		return a.Pos.PC < b.Pos.PC
	})
}

// canonicalCycles puts every cycle report in canonical form and dedups:
// the member locks sort lexicographically (so every rotation of one cycle
// collapses to a single form, anchored at the smallest lock) and dedup,
// witness edges sort and dedup, and cycles whose canonical lock sets
// coincide merge into one report with the union of their witnesses.
func canonicalCycles(cs []Cycle) []Cycle {
	byKey := make(map[string]int)
	var out []Cycle
	for _, c := range cs {
		sort.Strings(c.Locks)
		w := 0
		for i, l := range c.Locks {
			if i == 0 || l != c.Locks[w-1] {
				c.Locks[w] = l
				w++
			}
		}
		c.Locks = c.Locks[:w]
		key := strings.Join(c.Locks, "\x00")
		if i, ok := byKey[key]; ok {
			out[i].Edges = append(out[i].Edges, c.Edges...)
			continue
		}
		byKey[key] = len(out)
		out = append(out, c)
	}
	for i := range out {
		c := &out[i]
		sort.Slice(c.Edges, func(i, j int) bool {
			a, b := c.Edges[i], c.Edges[j]
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			if a.At.Method != b.At.Method {
				return a.At.Method < b.At.Method
			}
			if a.At.PC != b.At.PC {
				return a.At.PC < b.At.PC
			}
			if a.Outer.Method != b.Outer.Method {
				return a.Outer.Method < b.Outer.Method
			}
			return a.Outer.PC < b.Outer.PC
		})
		w := 0
		for j, e := range c.Edges {
			if j == 0 || e != c.Edges[w-1] {
				c.Edges[w] = e
				w++
			}
		}
		c.Edges = c.Edges[:w]
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Locks, "\x00") < strings.Join(out[j].Locks, "\x00")
	})
	return out
}

// Render formats the findings as deterministic human-readable text — the
// default output of cmd/rvmlint and the subject of its golden tests.
func (f *Facts) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "methods: %d  sections: %d (%d non-revocable)  cycles: %d\n",
		len(f.methods), len(f.Sections), f.NonRevocableSections(), len(f.Cycles))
	fmt.Fprintf(&b, "stores: %d total, %d elidable (%d never-held, %d fresh-target)\n",
		f.TotalStores, f.ElidableStores, f.NeverHeldStores, f.FreshStores)

	if len(f.Sections) > 0 {
		b.WriteString("\nsections:\n")
		for _, s := range f.Sections {
			kind := "sync block"
			if s.SyncMethod {
				kind = "sync method"
			}
			class := "revocable"
			if s.NonRevocable {
				class = "NON-REVOCABLE"
			}
			fmt.Fprintf(&b, "  %v  %s  lock=%s  %s\n", s.Enter, kind, s.Lock, class)
			for _, r := range s.Reasons {
				fmt.Fprintf(&b, "    reason: %v\n", r)
			}
		}
	}

	if len(f.Cycles) > 0 {
		b.WriteString("\npotential deadlocks (lock-order cycles):\n")
		for _, c := range f.Cycles {
			fmt.Fprintf(&b, "  cycle: %s\n", strings.Join(c.Locks, " <-> "))
			for _, e := range c.Edges {
				fmt.Fprintf(&b, "    %s acquired at %v while holding %s (entered at %v)\n",
					e.To, e.At, e.From, e.Outer)
			}
		}
	}
	return b.String()
}
