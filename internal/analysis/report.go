package analysis

import (
	"fmt"
	"strings"
)

// Render formats the findings as deterministic human-readable text — the
// default output of cmd/rvmlint and the subject of its golden tests.
func (f *Facts) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "methods: %d  sections: %d (%d non-revocable)  cycles: %d\n",
		len(f.methods), len(f.Sections), f.NonRevocableSections(), len(f.Cycles))
	fmt.Fprintf(&b, "stores: %d total, %d elidable (%d never-held, %d fresh-target)\n",
		f.TotalStores, f.ElidableStores, f.NeverHeldStores, f.FreshStores)

	if len(f.Sections) > 0 {
		b.WriteString("\nsections:\n")
		for _, s := range f.Sections {
			kind := "sync block"
			if s.SyncMethod {
				kind = "sync method"
			}
			class := "revocable"
			if s.NonRevocable {
				class = "NON-REVOCABLE"
			}
			fmt.Fprintf(&b, "  %v  %s  lock=%s  %s\n", s.Enter, kind, s.Lock, class)
			for _, r := range s.Reasons {
				fmt.Fprintf(&b, "    reason: %v\n", r)
			}
		}
	}

	if len(f.Cycles) > 0 {
		b.WriteString("\npotential deadlocks (lock-order cycles):\n")
		for _, c := range f.Cycles {
			fmt.Fprintf(&b, "  cycle: %s\n", strings.Join(c.Locks, " <-> "))
			for _, e := range c.Edges {
				fmt.Fprintf(&b, "    %s acquired at %v while holding %s (entered at %v)\n",
					e.To, e.At, e.From, e.Outer)
			}
		}
	}
	return b.String()
}
