package analysis

import (
	"repro/internal/bytecode"
)

// Flow-sensitive barrier elision.
//
// A store instruction needs no write-barrier slow path when either
//
//  1. it can never execute while a monitor is held — not inside any section
//     of its own method, the method is not synchronized, and the method is
//     never (transitively) invoked from inside a section; with no monitor
//     held the barrier's logging branch is statically dead; or
//
//  2. its target object is provably fresh: allocated after the current
//     section's MONITORENTER with no intervening operation that could leak
//     it or start a new section. The runtime logs one allocation undo entry
//     for such objects (restoring every slot wholesale on rollback), which
//     subsumes per-field undo entries for all subsequent stores to them.
//
// Freshness is a forward dataflow over (stack, locals) boolean vectors,
// AND-merged at joins. NEWOBJ/NEWARR results are fresh; freshness dies at
// any monitor boundary, wait, native call, or call to a method that is not
// provably monitor-free, because past that point a rollback of the current
// section may not replay the allocation.

// freshState tracks which stack slots and locals hold provably-fresh
// references at one pc. Stack index 0 is the bottom (the interpreter's
// SAVESTACK/RESTORESTACK order).
type freshState struct {
	stack  []bool
	locals []bool
}

func (s *freshState) clone() *freshState {
	c := &freshState{
		stack:  append([]bool(nil), s.stack...),
		locals: append([]bool(nil), s.locals...),
	}
	return c
}

// merge ANDs other into s; reports whether s changed. A stack-shape mismatch
// (impossible in verified code) reports ok=false to abort the analysis.
func (s *freshState) merge(other *freshState) (changed, ok bool) {
	if len(s.stack) != len(other.stack) || len(s.locals) != len(other.locals) {
		return false, false
	}
	for i := range s.stack {
		if s.stack[i] && !other.stack[i] {
			s.stack[i] = false
			changed = true
		}
	}
	for i := range s.locals {
		if s.locals[i] && !other.locals[i] {
			s.locals[i] = false
			changed = true
		}
	}
	return changed, true
}

func (s *freshState) killAll() {
	for i := range s.stack {
		s.stack[i] = false
	}
	for i := range s.locals {
		s.locals[i] = false
	}
}

// freshness computes the in-state for every pc of mi's method, or nil when
// the method contains something the transfer function cannot model (every
// store then simply keeps its barrier).
//
// escapeKills selects the stricter thread-locality variant used by the
// race pass: all freshness dies the moment a fresh value escapes (is
// stored into any object/array/static or passed to any call). The base
// dataflow does not track aliases, so "fresh" alone only proves the object
// was allocated in-section — good enough for rollback elision (the
// allocation undo entry restores it) but not for thread-locality, where a
// published alias would let another thread reach the object.
func (f *Facts) freshness(mi *methodInfo, escapeKills bool) []*freshState {
	m := mi.m
	n := len(m.Code)
	states := make([]*freshState, n)
	var queue []int
	post := func(pc int, st *freshState) bool {
		if states[pc] == nil {
			states[pc] = st.clone()
			queue = append(queue, pc)
			return true
		}
		changed, ok := states[pc].merge(st)
		if !ok {
			return false
		}
		if changed {
			queue = append(queue, pc)
		}
		return true
	}

	entry := &freshState{locals: make([]bool, m.Locals)}
	if !post(0, entry) {
		return nil
	}
	// Handler entries: nothing is fresh (the throwing path is unknown), with
	// the verifier's entry depth for the stack shape.
	for _, h := range m.Handlers {
		if mi.stack[h.Target] < 0 {
			continue
		}
		hs := &freshState{
			stack:  make([]bool, mi.stack[h.Target]),
			locals: make([]bool, m.Locals),
		}
		if !post(h.Target, hs) {
			return nil
		}
	}

	for len(queue) > 0 {
		pc := queue[0]
		queue = queue[1:]
		st := states[pc].clone()
		in := m.Code[pc]
		if !f.transfer(mi, pc, in, st, escapeKills) {
			return nil
		}
		for _, s := range succs(m, pc) {
			if !post(s, st) {
				return nil
			}
		}
	}
	return states
}

// transfer applies one instruction to st in place; reports ok=false when the
// instruction cannot be modelled (stack underflow against the tracked shape).
func (f *Facts) transfer(mi *methodInfo, pc int, in bytecode.Instr, st *freshState, escapeKills bool) bool {
	m := mi.m
	top := func(k int) int { return len(st.stack) - k } // index of k-th from top
	pop := func(k int) bool {
		if len(st.stack) < k {
			return false
		}
		st.stack = st.stack[:len(st.stack)-k]
		return true
	}
	push := func(vals ...bool) { st.stack = append(st.stack, vals...) }

	doKill := false
	if escapeKills {
		escaped := func(k int) bool { return len(st.stack) >= k && st.stack[top(k)] }
		switch in.Op {
		case bytecode.PUTFIELD, bytecode.PUTFIELDRAW, bytecode.PUTSTATIC,
			bytecode.PUTSTATICRAW, bytecode.ASTORE, bytecode.ASTORERAW:
			doKill = escaped(1) // the stored value is on top
		case bytecode.INVOKE:
			if callee := f.methods[in.S]; callee != nil {
				for k := 1; k <= callee.m.Args; k++ {
					if escaped(k) {
						doKill = true
					}
				}
			}
		}
	}
	defer func() {
		if doKill {
			st.killAll()
		}
	}()

	switch in.Op {
	case bytecode.LOAD:
		push(st.locals[in.A])
	case bytecode.STORE:
		if len(st.stack) < 1 {
			return false
		}
		st.locals[in.A] = st.stack[top(1)]
		pop(1)
	case bytecode.DUP:
		if len(st.stack) < 1 {
			return false
		}
		push(st.stack[top(1)])
	case bytecode.SWAP:
		if len(st.stack) < 2 {
			return false
		}
		st.stack[top(1)], st.stack[top(2)] = st.stack[top(2)], st.stack[top(1)]
	case bytecode.NEWOBJ:
		push(true)
	case bytecode.NEWARR:
		if !pop(1) {
			return false
		}
		push(true)
	case bytecode.MONITORENTER, bytecode.MONITOREXIT, bytecode.WAIT, bytecode.NATIVE:
		// A monitor boundary starts/ends a section; a wait releases and
		// re-acquires; a native is opaque. All invalidate freshness.
		pops := 1
		if in.Op == bytecode.NATIVE {
			pops = in.A
		}
		if !pop(pops) {
			return false
		}
		st.killAll()
		if in.Op == bytecode.NATIVE {
			push(false)
		}
	case bytecode.INVOKE:
		callee := f.methods[in.S]
		if callee == nil {
			return false
		}
		if !pop(callee.m.Args) {
			return false
		}
		if !callee.monitorFree {
			st.killAll()
		}
		if callee.m.Returns {
			push(false)
		}
	case bytecode.SPAWN:
		callee := f.methods[in.S]
		if callee == nil {
			return false
		}
		if !pop(callee.m.Args) {
			return false
		}
		// The spawned thread runs concurrently from here on: its arguments
		// are published, and any object it can reach may be mutated outside
		// the current section, so a rollback replaying the allocation would
		// wipe another thread's writes. All freshness dies.
		st.killAll()
	case bytecode.SAVESTACK:
		d := int(in.V)
		if len(st.stack) != d {
			return false
		}
		for i := 0; i < d; i++ {
			st.locals[in.A+i] = st.stack[i]
		}
	case bytecode.RESTORESTACK:
		d := int(in.V)
		for i := 0; i < d; i++ {
			push(st.locals[in.A+i])
		}
	default:
		pops, pushes, _, _, err := bytecode.StackEffect(f.prog, m, pc, in)
		if err != nil || !pop(pops) {
			return false
		}
		for i := 0; i < pushes; i++ {
			push(false)
		}
	}
	return true
}

// computeElision classifies every reachable store instruction.
func (f *Facts) computeElision() {
	for _, m := range f.prog.Methods {
		mi := f.methods[m.Name]
		var fresh []*freshState
		freshDone := false
		for pc, in := range m.Code {
			var receiverDepth int // stack slots from top to the target ref
			switch in.Op {
			case bytecode.PUTFIELD:
				receiverDepth = 2
			case bytecode.ASTORE:
				receiverDepth = 3
			case bytecode.PUTSTATIC:
				receiverDepth = 0 // statics are never fresh
			default:
				continue
			}
			if mi.depth[pc] < 0 {
				continue // unreachable
			}
			f.TotalStores++
			pos := Pos{m.Name, pc}
			if !mi.held[pc] && !mi.mayRunHeld && !m.Synchronized {
				f.neverHeld[pos] = true
				f.elidable[pos] = true
				f.ElidableStores++
				f.NeverHeldStores++
				continue
			}
			if receiverDepth == 0 {
				continue
			}
			if !freshDone {
				fresh = f.freshness(mi, false)
				freshDone = true
			}
			if fresh == nil {
				continue
			}
			st := fresh[pc]
			if st != nil && len(st.stack) >= receiverDepth && st.stack[len(st.stack)-receiverDepth] {
				f.elidable[pos] = true
				f.ElidableStores++
				f.FreshStores++
			}
		}
	}
}
