package analysis

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
)

// Section discovery and the revocability classifier.
//
// For every MONITORENTER site the analysis computes the set of instructions
// that may execute while that acquisition is still held, by propagating a
// relative monitor depth from the enter site through the CFG: the depth
// starts at 1 after the enter, rises at nested MONITORENTERs, falls at
// MONITOREXITs, and propagation stops where it reaches 0 (the matching
// exit). Exception-handler targets use a union rule — if ANY covered pc may
// execute while held, the handler target may too — which is deliberately
// more conservative than the verifier's entry-depth rule: a hand-written
// handler spanning a synchronized block genuinely enters while the monitor
// is held, and under-approximating here would unsoundly elide barriers
// inside it.
//
// A section is statically non-revocable when one of the paper's dynamic
// triggers (§2.2) is reachable inside it: a NATIVE call, a volatile read,
// or a WAIT (any wait — even a wait on the section's own monitor leaves the
// section non-revocable at the resume point, so pre-marking at enter only
// denies revocations the runtime would deny moments later). Triggers are
// searched in the section's own instructions and in the whole body of every
// method transitively invocable while the monitor is held.

// succs returns pc's control successors inside the method (handler edges
// excluded; the callers apply their own handler rules).
func succs(m *bytecode.Method, pc int) []int {
	in := m.Code[pc]
	switch in.Op {
	case bytecode.GOTO:
		return []int{in.A}
	case bytecode.IFNZ, bytecode.IFZ:
		return []int{in.A, pc + 1}
	case bytecode.RETURN, bytecode.IRETURN, bytecode.THROW, bytecode.RETHROW:
		return nil
	default:
		if pc+1 < len(m.Code) {
			return []int{pc + 1}
		}
		return nil
	}
}

// heldFrom computes the pcs reachable from the MONITORENTER at ep while
// that acquisition is held. rels[pc] records the relative depths seen
// (depth of this acquisition = 1); a pc is in-section when it has any
// recorded depth ≥ 1.
func heldFrom(m *bytecode.Method, ep int) map[int]bool {
	// visited[pc][rel] marks processed (pc, relative-depth) states. On
	// verified programs rel is bounded by the static monitor depth, but a
	// hand-written handler that loops back through its own covered enter
	// site can grow it without bound; past relCap the analysis gives up
	// and reports every instruction held (conservative: more held pcs only
	// suppress elisions).
	relCap := len(m.Code) + 1
	blowup := false
	visited := make(map[int]map[int]bool)
	type work struct{ pc, rel int }
	var queue []work
	post := func(pc, rel int) {
		if rel < 1 {
			return // the acquisition was released on this path
		}
		if rel > relCap {
			blowup = true
			return
		}
		if visited[pc] == nil {
			visited[pc] = make(map[int]bool, 2)
		}
		if visited[pc][rel] {
			return
		}
		visited[pc][rel] = true
		queue = append(queue, work{pc, rel})
	}
	for _, s := range succs(m, ep) {
		post(s, 1)
	}
	for {
		for len(queue) > 0 {
			w := queue[0]
			queue = queue[1:]
			rel := w.rel
			switch m.Code[w.pc].Op {
			case bytecode.MONITORENTER:
				rel++
			case bytecode.MONITOREXIT:
				rel--
			}
			for _, s := range succs(m, w.pc) {
				post(s, rel)
			}
		}
		// Union handler rule: an exception at any held pc in the range may
		// transfer to the target with the monitor still held. Seed with the
		// maximum depth observed in the range (over-approximating the depth
		// only extends the held region — conservative).
		progressed := false
		for _, h := range m.Handlers {
			if h.Catch == bytecode.RollbackClass {
				// A rollback unwind releases the monitor (and undoes its
				// effects) before control reaches the handler, so the
				// checktarget trampoline runs un-held; seeding it as held
				// would also follow its re-execution back-edge through the
				// enter site again and grow rel without bound.
				continue
			}
			maxRel := 0
			for pc := h.From; pc < h.To && pc < len(m.Code); pc++ {
				for rel := range visited[pc] {
					if rel > maxRel {
						maxRel = rel
					}
				}
			}
			if maxRel >= 1 && !visited[h.Target][maxRel] {
				post(h.Target, maxRel)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	if blowup {
		all := make(map[int]bool, len(m.Code))
		for pc := range m.Code {
			all[pc] = true
		}
		return all
	}
	held := make(map[int]bool, len(visited))
	for pc := range visited {
		held[pc] = true
	}
	return held
}

// discoverSections builds one Section per MONITORENTER site plus one
// synthetic Section per synchronized method (whose whole body runs held),
// filling methodInfo.held along the way.
func (f *Facts) discoverSections() {
	vol := f.volatileFieldIndices()
	for _, m := range f.prog.Methods {
		mi := f.methods[m.Name]
		mi.held = make([]bool, len(m.Code))
		if m.Synchronized {
			s := &Section{
				Enter:      Pos{m.Name, 0},
				Lock:       "recv:" + baseName(m.Name),
				SyncMethod: true,
			}
			for pc := range m.Code {
				if mi.depth[pc] >= 0 {
					mi.held[pc] = true
					s.PCs = append(s.PCs, pc)
				}
			}
			s.Callees = f.calleeClosure(mi.callees)
			f.classify(s, m, heldAll(mi), vol)
			f.Sections = append(f.Sections, s)
			f.sectionAt[s.Enter] = s
		}
		for pc, in := range m.Code {
			if in.Op != bytecode.MONITORENTER || mi.depth[pc] < 0 {
				continue
			}
			held := heldFrom(m, pc)
			s := &Section{
				Enter: Pos{m.Name, pc},
				Lock:  f.lockID(mi, pc),
			}
			var invoked []string
			for hp := range held {
				mi.held[hp] = true
				s.PCs = append(s.PCs, hp)
				if m.Code[hp].Op == bytecode.INVOKE {
					invoked = append(invoked, m.Code[hp].S)
				}
			}
			sort.Ints(s.PCs)
			s.Callees = f.calleeClosure(invoked)
			f.classify(s, m, held, vol)
			f.Sections = append(f.Sections, s)
			f.sectionAt[s.Enter] = s
		}
	}
}

// heldAll is the trivially-true held set for synchronized-method bodies.
func heldAll(mi *methodInfo) map[int]bool {
	held := make(map[int]bool, len(mi.m.Code))
	for pc := range mi.m.Code {
		if mi.depth[pc] >= 0 {
			held[pc] = true
		}
	}
	return held
}

// classify scans the section's own held pcs and its callee closure for the
// §2.2 triggers and sets NonRevocable/Reasons.
func (f *Facts) classify(s *Section, m *bytecode.Method, held map[int]bool, vol map[int]string) {
	pcs := make([]int, 0, len(held))
	for pc := range held {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		f.scanTrigger(s, m, pc, vol)
	}
	for _, callee := range s.Callees {
		cm, ok := f.prog.Method(callee)
		if !ok {
			continue
		}
		for pc := range cm.Code {
			f.scanTrigger(s, cm, pc, vol)
		}
	}
	s.NonRevocable = len(s.Reasons) > 0
}

// scanTrigger appends a Reason when the instruction at (m, pc) is one of
// the paper's non-revocability triggers.
func (f *Facts) scanTrigger(s *Section, m *bytecode.Method, pc int, vol map[int]string) {
	in := m.Code[pc]
	switch in.Op {
	case bytecode.NATIVE:
		s.Reasons = append(s.Reasons, Reason{Kind: "native-call", Pos: Pos{m.Name, pc}, Detail: in.S})
	case bytecode.GETSTATIC:
		if in.A >= 0 && in.A < len(f.prog.Statics) && f.prog.Statics[in.A].Volatile {
			s.Reasons = append(s.Reasons, Reason{Kind: "volatile-read", Pos: Pos{m.Name, pc}, Detail: f.prog.Statics[in.A].Name})
		}
	case bytecode.GETFIELD:
		// GETFIELD carries only a field index; without receiver types the
		// read is volatile whenever ANY class declares a volatile field at
		// that index (conservative).
		if name, ok := vol[in.A]; ok {
			s.Reasons = append(s.Reasons, Reason{Kind: "volatile-read", Pos: Pos{m.Name, pc}, Detail: name})
		}
	case bytecode.WAIT:
		s.Reasons = append(s.Reasons, Reason{Kind: "nested-wait", Pos: Pos{m.Name, pc}})
	}
}

// volatileFieldIndices maps field index → "Class.field" for every index at
// which some class declares a volatile field.
func (f *Facts) volatileFieldIndices() map[int]string {
	vol := make(map[int]string)
	for _, c := range f.prog.Classes {
		for i, fld := range c.Fields {
			if fld.Volatile {
				if _, seen := vol[i]; !seen {
					vol[i] = c.Name + "." + fld.Name
				}
			}
		}
	}
	return vol
}

// calleeClosure returns the transitive call-graph closure of the given
// roots, sorted.
func (f *Facts) calleeClosure(roots []string) []string {
	seen := make(map[string]bool)
	var queue []string
	for _, r := range roots {
		if f.methods[r] != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		for _, c := range f.methods[name].callees {
			if f.methods[c] != nil && !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lockID derives the abstract identity of the monitor object pushed for the
// MONITORENTER at ep. Identities over-merge deliberately ("recv:" merges
// every receiver of a method; "static:" merges by variable) so real
// ordering conflicts surface; the unique "local:" fallback never aliases,
// trading missed cycles for zero false positives on unknown objects.
func (f *Facts) lockID(mi *methodInfo, ep int) string {
	m := mi.m
	if ep == 0 {
		return fmt.Sprintf("local:%s@%d", m.Name, ep)
	}
	switch prev := m.Code[ep-1]; prev.Op {
	case bytecode.GETSTATIC:
		if prev.A >= 0 && prev.A < len(f.prog.Statics) {
			return "static:" + f.prog.Statics[prev.A].Name
		}
	case bytecode.NEWOBJ:
		return fmt.Sprintf("new:%s@%s@%d", prev.S, m.Name, ep-1)
	case bytecode.LOAD:
		return f.localLockID(mi, prev.A, ep)
	}
	return fmt.Sprintf("local:%s@%d", m.Name, ep)
}

// localLockID resolves the identity of a local used as a monitor object: if
// every STORE to the local is fed by the same identifiable source (a
// GETSTATIC or a NEWOBJ immediately preceding it), that source is the
// identity; an unwritten local 0 of an instance method is the receiver.
func (f *Facts) localLockID(mi *methodInfo, local, ep int) string {
	m := mi.m
	var ids []string
	stores := 0
	for pc, in := range m.Code {
		if in.Op != bytecode.STORE || in.A != local {
			continue
		}
		stores++
		if pc == 0 {
			continue
		}
		switch prev := m.Code[pc-1]; prev.Op {
		case bytecode.GETSTATIC:
			if prev.A >= 0 && prev.A < len(f.prog.Statics) {
				ids = append(ids, "static:"+f.prog.Statics[prev.A].Name)
			}
		case bytecode.NEWOBJ:
			ids = append(ids, fmt.Sprintf("new:%s@%s@%d", prev.S, m.Name, pc-1))
		}
	}
	if stores == 0 && local < m.Args {
		// Parameter never overwritten: for local 0 this is the receiver.
		if local == 0 {
			return "recv:" + baseName(m.Name)
		}
		return fmt.Sprintf("arg%d:%s", local, baseName(m.Name))
	}
	if len(ids) == stores && stores > 0 {
		first := ids[0]
		same := true
		for _, id := range ids[1:] {
			if id != first {
				same = false
			}
		}
		if same {
			return first
		}
	}
	return fmt.Sprintf("local:%s@%d", m.Name, ep)
}

// baseName strips the rewriter's $impl suffix so a lowered synchronized
// method and its wrapper share one receiver identity.
func baseName(name string) string {
	const suffix = "$impl"
	if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
		return name[:len(name)-len(suffix)]
	}
	return name
}
