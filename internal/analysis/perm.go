package analysis

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
)

// Permission-certified elision.
//
// Every optimization the runtime performs on the strength of a static fact
// — executing a store without its write barrier, pre-marking a section
// non-revocable at monitorenter, compiling the SAVESTACK of a dead
// re-execution snapshot to a no-op — is a proof obligation: performing it
// when the proof does not hold silently corrupts rollback. The consuming
// tiers therefore never act on raw fact fields; they demand a Certificate
// per (method, pc, kind) via RequireCert, and interp.NewEnv calls
// VerifyCertificates before any code runs, so a tampered or stale fact set
// is a hard load-time error instead of a miscompilation.
//
// Certificates are issued by a small permission system over two lattices:
//
//   - The held-region lattice orders program points by the monitors that
//     may frame them. A store at a point that no monitor can ever frame
//     (not inside any section, method not synchronized, never invoked
//     while held) holds the full write permission 1 outright: no undo log
//     can be active, so the barrier's logging branch is statically dead.
//
//   - The freshness lattice tracks permission from allocation. NEWOBJ and
//     NEWARR grant the allocating section the full permission 1 on the new
//     object; the permission fractures to a read share the moment the
//     reference may escape and is destroyed by any operation whose replay
//     on rollback could differ (monitor boundary, wait, native call,
//     non-monitor-free call, spawn). A store whose target still carries
//     permission 1 needs no per-slot undo entry: the allocation's
//     wholesale undo entry already restores the object.
//
// A statically non-revocable section holds a section-level certificate
// (its §2.2 trigger is the witness), and the SAVESTACK feeding such a
// section's re-execution snapshot inherits a dead-spill certificate: a
// section that can never roll back can never read the spilled stack back.

// CertKind names one class of discharged proof obligation.
type CertKind string

const (
	// CertElideBarrier certifies that the store at Pos may execute without
	// its write barrier: the permission pass granted the storing code the
	// full write permission on the target with no undo obligation.
	CertElideBarrier CertKind = "elide-barrier"
	// CertDeadSavestack certifies that the SAVESTACK at Pos is a dead
	// spill: the region it snapshots belongs to a statically non-revocable
	// section, so its RESTORESTACK is unreachable.
	CertDeadSavestack CertKind = "dead-savestack"
	// CertNonRevocable certifies the monitorenter pre-mark of a statically
	// non-revocable section (and the compiling tiers' specialized,
	// lookup-free entry sequence for it).
	CertNonRevocable CertKind = "non-revocable"
	// CertConfined certifies a whole-monitor elision site: the
	// MONITORENTER (or a MONITOREXIT paired with it) operates on a
	// thread-confined allocation that never escapes, never waits, and
	// brackets exactly, so all three tiers compile the instruction to a
	// charge-only no-op (escape.go derives the sites).
	CertConfined CertKind = "confined-monitor"
	// CertRaceFree certifies per-slot race freedom: no candidate race and
	// no volatile bypass names the slot, so the dynamic race detector may
	// skip its vector-clock checks. The certificate carries the slot name
	// and anchors at the slot's first reachable access.
	CertRaceFree CertKind = "race-free"
)

// Certificate is one machine-checkable discharged obligation. Pos is the
// instruction the optimization applies to (the store, the SAVESTACK, or
// the MONITORENTER / synchronized-method entry).
type Certificate struct {
	Kind CertKind `json:"kind"`
	Pos  Pos      `json:"pos"`
	// Perm is the permission-lattice point that discharges the obligation:
	// "1/never-held", "1/fresh", "section/non-revocable",
	// "monitor/thread-confined" or "slot/race-free".
	Perm string `json:"perm"`
	// Evidence is the human-readable proof witness.
	Evidence string `json:"evidence,omitempty"`
	// Slot names the certified heap slot for race-free certificates.
	Slot string `json:"slot,omitempty"`
}

func (c *Certificate) String() string {
	return fmt.Sprintf("%s %v perm=%s", c.Kind, c.Pos, c.Perm)
}

type certKey struct {
	pos  Pos
	kind CertKind
}

const (
	permNeverHeld = "1/never-held"
	permFresh     = "1/fresh"
	permNonRev    = "section/non-revocable"
	permConfined  = "monitor/thread-confined"
	permRaceFree  = "slot/race-free"
)

// computePermissions issues one certificate per obligation the earlier
// passes created. It runs after discoverSections and computeElision.
func (f *Facts) computePermissions() {
	f.certAt = make(map[certKey]*Certificate)
	issue := func(c *Certificate) {
		k := certKey{c.Pos, c.Kind}
		if f.certAt[k] != nil {
			return
		}
		f.certAt[k] = c
		f.Certs = append(f.Certs, c)
	}

	for _, m := range f.prog.Methods {
		for pc := range m.Code {
			pos := Pos{m.Name, pc}
			if !f.elidable[pos] {
				continue
			}
			c := &Certificate{Kind: CertElideBarrier, Pos: pos}
			if f.neverHeld[pos] {
				c.Perm = permNeverHeld
				c.Evidence = "no monitor can frame this store: outside every section, method never runs held"
			} else {
				c.Perm = permFresh
				c.Evidence = "target holds write permission 1 from its in-section allocation; the allocation undo entry subsumes per-slot logging"
			}
			issue(c)
		}
	}

	for _, s := range f.Sections {
		if !s.NonRevocable {
			continue
		}
		c := &Certificate{Kind: CertNonRevocable, Pos: s.Enter, Perm: permNonRev}
		if len(s.Reasons) > 0 {
			c.Evidence = s.Reasons[0].String()
		}
		issue(c)
	}

	for _, m := range f.prog.Methods {
		for _, spc := range f.deadSavestackPCs(m) {
			issue(&Certificate{
				Kind: CertDeadSavestack, Pos: Pos{m.Name, spc}, Perm: permNonRev,
				Evidence: fmt.Sprintf("region section at %s@%d can never roll back; the spill is only read by its unreachable RESTORESTACK", m.Name, spc+2),
			})
		}
	}

	// Whole-monitor elision sites (escape.go): one certificate at the
	// enter and one at every paired exit, so each compiled no-op is
	// individually gated.
	enters := make([]Pos, 0, len(f.confined))
	for p := range f.confined {
		enters = append(enters, p)
	}
	sortPos(enters)
	for _, p := range enters {
		exits := f.confined[p]
		issue(&Certificate{
			Kind: CertConfined, Pos: p, Perm: permConfined,
			Evidence: fmt.Sprintf("thread-confined allocation: lock never escapes, never waits, brackets exactly; exit pcs %v", exits),
		})
		for _, epc := range exits {
			issue(&Certificate{
				Kind: CertConfined, Pos: Pos{p.Method, epc}, Perm: permConfined,
				Evidence: fmt.Sprintf("releases the confined monitorenter at %v", p),
			})
		}
	}

	// Race-free slots: confinement + lockset facts cover every reachable
	// access with no racy pair, so the dynamic detector may skip the slot.
	obls := f.raceFreeObligations()
	slots := make([]string, 0, len(obls))
	for s := range obls {
		slots = append(slots, s)
	}
	sort.Strings(slots)
	for _, slot := range slots {
		issue(&Certificate{
			Kind: CertRaceFree, Pos: obls[slot], Perm: permRaceFree, Slot: slot,
			Evidence: "no candidate race or volatile bypass names this slot over every thread-reachable access",
		})
	}
}

// deadSavestackPCs derives the dead-SAVESTACK obligation set of one method
// exactly as the opt tier's elidedSavestacks does: the SAVESTACK directly
// preceding a rollback region whose section is statically non-revocable.
// On a program analyzed before the rollback rewrite there are no regions
// and no obligations.
func (f *Facts) deadSavestackPCs(m *bytecode.Method) []int {
	var out []int
	for _, r := range m.Regions {
		if r.EnterPC+1 >= len(m.Code) {
			continue
		}
		s := f.sectionAt[Pos{m.Name, r.EnterPC + 1}]
		if s == nil || !s.NonRevocable {
			continue
		}
		spc := r.EnterPC - 1
		if spc < 0 || m.Code[spc].Op != bytecode.SAVESTACK {
			continue
		}
		out = append(out, spc)
	}
	return out
}

// CertAt returns the certificate discharging the given obligation, or nil.
func (f *Facts) CertAt(method string, pc int, kind CertKind) *Certificate {
	return f.certAt[certKey{Pos{method, pc}, kind}]
}

// RequireCert is the consuming tiers' gate: it returns nil when the
// obligation at (method, pc) is discharged and a hard error otherwise. An
// optimization whose RequireCert fails must not be performed.
func (f *Facts) RequireCert(method string, pc int, kind CertKind) error {
	if f.certAt[certKey{Pos{method, pc}, kind}] != nil {
		return nil
	}
	return fmt.Errorf("analysis: uncertified elision: no %s certificate at %s@%d", kind, method, pc)
}

// VerifyCertificates re-derives every proof obligation from the program
// and checks that the certificate set discharges it exactly: every
// obligation has a certificate at the permission the proof re-derives to,
// every certificate matches a live obligation, and every recorded
// non-revocability trigger names a real trigger instruction. interp.NewEnv
// calls it before executing anything, so flipping a fact field without
// re-running the analysis (a bogus or stale fact set) is a hard error.
func (f *Facts) VerifyCertificates() error {
	if f.prog == nil {
		return fmt.Errorf("analysis: facts carry no program; certificates cannot be checked")
	}
	want := make(map[certKey]string)

	for _, m := range f.prog.Methods {
		for pc, in := range m.Code {
			pos := Pos{m.Name, pc}
			if !f.elidable[pos] {
				continue
			}
			switch in.Op {
			case bytecode.PUTFIELD, bytecode.PUTFIELDRAW, bytecode.PUTSTATIC,
				bytecode.PUTSTATICRAW, bytecode.ASTORE, bytecode.ASTORERAW:
			default:
				return fmt.Errorf("analysis: elidable fact at %v names non-store instruction %v", pos, in.Op)
			}
			perm := permFresh
			if f.neverHeld[pos] {
				perm = permNeverHeld
			}
			want[certKey{pos, CertElideBarrier}] = perm
		}
	}

	for _, s := range f.Sections {
		if !s.NonRevocable {
			continue
		}
		if len(s.Reasons) == 0 {
			return fmt.Errorf("analysis: section %v marked non-revocable with no trigger; fact does not re-derive", s.Enter)
		}
		for _, r := range s.Reasons {
			if err := f.checkTrigger(r); err != nil {
				return err
			}
		}
		want[certKey{s.Enter, CertNonRevocable}] = permNonRev
	}

	for _, m := range f.prog.Methods {
		for _, spc := range f.deadSavestackPCs(m) {
			want[certKey{Pos{m.Name, spc}, CertDeadSavestack}] = permNonRev
		}
	}

	// Re-derive the whole-monitor elision sites from the program; a
	// tampered section list (a deleted or edited acquisition) shifts the
	// derivation and surfaces as a missing or stale certificate below.
	_, elide := f.escapeResults()
	for p, exits := range elide {
		want[certKey{p, CertConfined}] = permConfined
		for _, epc := range exits {
			want[certKey{Pos{p.Method, epc}, CertConfined}] = permConfined
		}
	}

	// Re-derive the race-free slot set; removing a race finding without
	// re-running the analysis creates an uncertified obligation here.
	slotAt := make(map[Pos]string)
	for slot, pos := range f.raceFreeObligations() {
		want[certKey{pos, CertRaceFree}] = permRaceFree
		slotAt[pos] = slot
	}
	for k, c := range f.certAt {
		if k.kind == CertRaceFree && c.Slot != slotAt[k.pos] {
			return fmt.Errorf("analysis: race-free certificate at %v names slot %q; obligation re-derives as %q", k.pos, c.Slot, slotAt[k.pos])
		}
	}

	for k, perm := range want {
		c := f.certAt[k]
		if c == nil {
			return fmt.Errorf("analysis: uncertified elision: %s obligation at %v has no certificate", k.kind, k.pos)
		}
		if c.Perm != perm {
			return fmt.Errorf("analysis: certificate %s at %v claims permission %q; obligation re-derives as %q", k.kind, k.pos, c.Perm, perm)
		}
	}
	for k := range f.certAt {
		if _, ok := want[k]; !ok {
			return fmt.Errorf("analysis: stale certificate: %s at %v matches no obligation in this program", k.kind, k.pos)
		}
	}
	return nil
}

// checkTrigger re-checks one recorded non-revocability trigger against the
// program: the instruction at the witness position must actually be a
// trigger of the recorded kind.
func (f *Facts) checkTrigger(r Reason) error {
	m, ok := f.prog.Method(r.Pos.Method)
	if !ok || r.Pos.PC < 0 || r.Pos.PC >= len(m.Code) {
		return fmt.Errorf("analysis: non-revocability trigger at %v: no such instruction", r.Pos)
	}
	in := m.Code[r.Pos.PC]
	valid := false
	switch r.Kind {
	case "native-call":
		valid = in.Op == bytecode.NATIVE
	case "volatile-read":
		switch in.Op {
		case bytecode.GETSTATIC:
			valid = in.A >= 0 && in.A < len(f.prog.Statics) && f.prog.Statics[in.A].Volatile
		case bytecode.GETFIELD:
			_, valid = f.volatileFieldIndices()[in.A]
		}
	case "nested-wait":
		valid = in.Op == bytecode.WAIT
	}
	if !valid {
		return fmt.Errorf("analysis: non-revocability trigger %q at %v does not re-derive from instruction %v", r.Kind, r.Pos, in.Op)
	}
	return nil
}
