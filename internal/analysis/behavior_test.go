package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bytecode"
)

// TestBehavioralArraySelfCycle: one worker method spawned twice locks
// arr[i] then arr[j]. Under the SCC pass both monitors are untraceable
// locals with unique names (no cycle); the behavioral pass merges them
// into the multi-instance name "array:elem" and keeps the self-edge
// because two spawned contract instances perform the nested acquisition.
func TestBehavioralArraySelfCycle(t *testing.T) {
	f := analyze(t, `
class Lock {
    unused
}
static ARR
method main locals 0 {
    const 2
    newarr
    putstatic ARR
    const 0
    spawn worker
    const 1
    spawn worker
    return
}
method worker args 1 locals 3 {
    getstatic ARR
    load 0
    aload
    store 1
    sync 1 {
        getstatic ARR
        const 0
        aload
        store 2
        sync 2 {
            nop
        }
    }
    return
}
`)
	if len(f.Cycles) != 0 {
		t.Fatalf("SCC pass should be silent, got %+v", f.Cycles)
	}
	if len(f.Deadlocks) != 1 {
		t.Fatalf("deadlocks = %+v, want exactly 1", f.Deadlocks)
	}
	c := f.Deadlocks[0]
	if len(c.Locks) != 1 || c.Locks[0] != "array:elem" {
		t.Fatalf("deadlock locks = %v, want [array:elem]", c.Locks)
	}
	if len(c.Edges) == 0 {
		t.Fatalf("self-cycle has no witness edges: %+v", c)
	}
	for _, e := range c.Edges {
		if e.From != "array:elem" || e.To != "array:elem" {
			t.Fatalf("witness %+v is not a self-edge on array:elem", e)
		}
	}
}

// TestBehavioralFieldSelfCycle: two threads lock first.l then second.l
// and second.l then first.l. No syntactic lock expression is shared —
// only the field the locks flow through — so the SCC pass is silent and
// the behavioral pass reports the field:#0 self-cycle.
func TestBehavioralFieldSelfCycle(t *testing.T) {
	f := analyze(t, `
class Lock {
    unused
}
class Cell {
    l
}
static FIRST
static SECOND
method main locals 0 {
    spawn forward
    spawn backward
    return
}
method forward locals 2 {
    getstatic FIRST
    getfield Cell.l
    store 0
    sync 0 {
        getstatic SECOND
        getfield Cell.l
        store 1
        sync 1 {
            nop
        }
    }
    return
}
method backward locals 2 {
    getstatic SECOND
    getfield Cell.l
    store 0
    sync 0 {
        getstatic FIRST
        getfield Cell.l
        store 1
        sync 1 {
            nop
        }
    }
    return
}
`)
	if len(f.Cycles) != 0 {
		t.Fatalf("SCC pass should be silent, got %+v", f.Cycles)
	}
	if len(f.Deadlocks) != 1 {
		t.Fatalf("deadlocks = %+v, want exactly 1", f.Deadlocks)
	}
	c := f.Deadlocks[0]
	if len(c.Locks) != 1 || c.Locks[0] != "field:#0" {
		t.Fatalf("deadlock locks = %v, want [field:#0]", c.Locks)
	}
	// Both threads' nested acquisitions witness the one canonical cycle.
	if len(c.Edges) != 2 {
		t.Fatalf("witnesses = %+v, want both threads' nested acquisitions", c.Edges)
	}
}

// TestBehavioralSilentOnReentrancy: nested acquisition of one
// single-instance name (a static lock) is plain reentrancy, not a
// deadlock — the self-edge is dropped because static: names one object.
func TestBehavioralSilentOnReentrancy(t *testing.T) {
	f := analyze(t, `
class Lock {
    unused
}
static A
method main locals 1 {
    newobj Lock
    putstatic A
    getstatic A
    store 0
    sync 0 {
        sync 0 {
            nop
        }
    }
    return
}
method spawned locals 1 {
    getstatic A
    store 0
    sync 0 {
        sync 0 {
            nop
        }
    }
    return
}
`)
	if len(f.Deadlocks) != 0 {
		t.Fatalf("reentrant static lock reported as deadlock: %+v", f.Deadlocks)
	}
}

// TestBehavioralNeedsTwoAcquirers: the field self-edge is only a
// deadlock when at least two concurrent thread instances can perform
// the nested acquisition. One declared thread, no spawns: silent.
func TestBehavioralNeedsTwoAcquirers(t *testing.T) {
	f := analyze(t, `
class Cell {
    l
}
static FIRST
static SECOND
thread main priority 5 run forward
method forward locals 2 {
    getstatic FIRST
    getfield Cell.l
    store 0
    sync 0 {
        getstatic SECOND
        getfield Cell.l
        store 1
        sync 1 {
            nop
        }
    }
    return
}
`)
	if len(f.Deadlocks) != 0 {
		t.Fatalf("single-thread field nesting reported as deadlock: %+v", f.Deadlocks)
	}
}

// TestBehavioralSeesStaticCycles: on the plain two-static opposite-order
// shape the behavioral pass agrees with the SCC pass — same canonical
// cycle under the same names, so the finer naming loses nothing.
func TestBehavioralSeesStaticCycles(t *testing.T) {
	f := analyze(t, `
class Lock {
    unused
}
static A
static B
method main locals 0 {
    spawn ab
    spawn ba
    return
}
method ab locals 2 {
    getstatic A
    store 0
    getstatic B
    store 1
    sync 0 {
        sync 1 {
            nop
        }
    }
    return
}
method ba locals 2 {
    getstatic A
    store 0
    getstatic B
    store 1
    sync 1 {
        sync 0 {
            nop
        }
    }
    return
}
`)
	if len(f.Cycles) != 1 {
		t.Fatalf("cycles = %+v, want 1", f.Cycles)
	}
	if len(f.Deadlocks) != 1 {
		t.Fatalf("deadlocks = %+v, want 1", f.Deadlocks)
	}
	got, want := f.Deadlocks[0], f.Cycles[0]
	if len(got.Locks) != 2 || got.Locks[0] != want.Locks[0] || got.Locks[1] != want.Locks[1] {
		t.Fatalf("behavioral cycle %v, SCC cycle %v", got.Locks, want.Locks)
	}
}

// TestCanonicalCycles: rotations and permutations of one cycle collapse
// to a single canonical report anchored at the smallest lock, with the
// witness edges unioned, sorted, and deduped.
func TestCanonicalCycles(t *testing.T) {
	e1 := LockEdge{From: "static:A", To: "static:B", At: Pos{"m", 3}}
	e2 := LockEdge{From: "static:B", To: "static:A", At: Pos{"n", 7}}
	out := canonicalCycles([]Cycle{
		{Locks: []string{"static:B", "static:A"}, Edges: []LockEdge{e2, e1}},
		{Locks: []string{"static:A", "static:B"}, Edges: []LockEdge{e1}},
		{Locks: []string{"static:A", "static:A", "static:B"}, Edges: []LockEdge{e2}},
	})
	if len(out) != 1 {
		t.Fatalf("canonicalCycles merged to %d cycles, want 1: %+v", len(out), out)
	}
	c := out[0]
	if len(c.Locks) != 2 || c.Locks[0] != "static:A" || c.Locks[1] != "static:B" {
		t.Fatalf("canonical locks = %v", c.Locks)
	}
	if len(c.Edges) != 2 || c.Edges[0] != e1 || c.Edges[1] != e2 {
		t.Fatalf("canonical edges = %+v, want [%+v %+v]", c.Edges, e1, e2)
	}
}

// TestBehavioralVsSCCOnExamples is the diffing test over the seeded
// example corpus (rewrite-independent: both passes report the same lock
// names pre- and post-rewrite; the post-rewrite pcs are pinned by the
// rvmlint goldens): the SCC pass reports only the statically named
// deadlock.rvm cycle, while the behavioral pass additionally reports
// the spawn-multiplicity (deadlock2) and field-aliasing (aliasdl)
// shapes it was built to see.
func TestBehavioralVsSCCOnExamples(t *testing.T) {
	cases := []struct {
		path      string
		wantSCC   bool
		wantLocks []string
	}{
		{"deadlock/deadlock.rvm", true, []string{"static:A", "static:B"}},
		{"deadlock2/deadlock2.rvm", false, []string{"array:elem"}},
		{"aliasdl/aliasdl.rvm", false, []string{"field:#0"}},
	}
	for _, c := range cases {
		c := c
		t.Run(filepath.Base(c.path), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("..", "..", "examples", c.path))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := bytecode.Assemble(string(src))
			if err != nil {
				t.Fatal(err)
			}
			f, err := Analyze(prog)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(f.Cycles) > 0; got != c.wantSCC {
				t.Errorf("SCC cycles = %+v, want reported=%v", f.Cycles, c.wantSCC)
			}
			if len(f.Deadlocks) != 1 {
				t.Fatalf("behavioral deadlocks = %+v, want exactly 1", f.Deadlocks)
			}
			got := f.Deadlocks[0].Locks
			if len(got) != len(c.wantLocks) {
				t.Fatalf("deadlock locks = %v, want %v", got, c.wantLocks)
			}
			for i := range got {
				if got[i] != c.wantLocks[i] {
					t.Fatalf("deadlock locks = %v, want %v", got, c.wantLocks)
				}
			}
		})
	}
}
