package analysis

import (
	"sort"

	"repro/internal/bytecode"
)

// Lock-order graph and deadlock cycle detection.
//
// Every section contributes one edge per monitor acquisition reachable while
// its own monitor is held: nested MONITORENTERs in the section body, enters
// anywhere in transitively invocable methods, and synchronized callees. A
// strongly connected component of two or more abstract locks means two
// threads can acquire the member locks in conflicting orders — a potential
// deadlock reported before any thread ever blocks. Self-edges (reentrant
// acquisition of one abstract lock) are not deadlocks and are dropped.

// buildLockOrder collects the edges and runs Tarjan's SCC over the lock ids.
func (f *Facts) buildLockOrder() {
	var edges []LockEdge
	seen := make(map[LockEdge]bool)
	add := func(e LockEdge) {
		if e.From == e.To || seen[e] {
			return
		}
		seen[e] = true
		edges = append(edges, e)
	}

	for _, s := range f.Sections {
		mi := f.methods[s.Enter.Method]
		for _, pc := range s.PCs {
			if mi.m.Code[pc].Op == bytecode.MONITORENTER && pc != s.Enter.PC {
				add(LockEdge{From: s.Lock, To: f.lockID(mi, pc), At: Pos{mi.m.Name, pc}, Outer: s.Enter})
			}
		}
		for _, callee := range s.Callees {
			ci := f.methods[callee]
			if ci == nil {
				continue
			}
			if ci.m.Synchronized {
				add(LockEdge{From: s.Lock, To: "recv:" + baseName(callee), At: Pos{callee, 0}, Outer: s.Enter})
			}
			for pc, in := range ci.m.Code {
				if in.Op == bytecode.MONITORENTER && ci.depth[pc] >= 0 {
					add(LockEdge{From: s.Lock, To: f.lockID(ci, pc), At: Pos{callee, pc}, Outer: s.Enter})
				}
			}
		}
	}

	f.Cycles = findCycles(edges)
}

// findCycles runs Tarjan's strongly-connected-components algorithm over the
// edge set and returns every component with at least two locks, each with
// its witnessing edges, in deterministic order.
func findCycles(edges []LockEdge) []Cycle {
	adj := make(map[string][]string)
	nodes := make([]string, 0)
	addNode := func(id string) {
		if _, ok := adj[id]; !ok {
			adj[id] = nil
			nodes = append(nodes, id)
		}
	}
	for _, e := range edges {
		addNode(e.From)
		addNode(e.To)
		adj[e.From] = append(adj[e.From], e.To)
	}
	sort.Strings(nodes)

	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	next := 0
	var comps [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) >= 2 {
				comps = append(comps, comp)
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	var cycles []Cycle
	for _, comp := range comps {
		sort.Strings(comp)
		member := make(map[string]bool, len(comp))
		for _, id := range comp {
			member[id] = true
		}
		var witness []LockEdge
		for _, e := range edges {
			if member[e.From] && member[e.To] {
				witness = append(witness, e)
			}
		}
		cycles = append(cycles, Cycle{Locks: comp, Edges: witness})
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i].Locks[0] < cycles[j].Locks[0] })
	return cycles
}
