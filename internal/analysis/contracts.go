package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bytecode"
)

// Recursive contract inference.
//
// The behavioral pass names a monitor reached through an unwritten
// parameter "recv:M" / "argN:M" — one object per executing frame, so the
// nominal name is deliberately excluded from every circularity criterion
// (a nested acquisition through one unchanged variable is plain
// reentrancy). That exclusion is exactly right per frame and exactly wrong
// across frames: a RECURSIVE method that swaps its lock parameters on the
// way down re-acquires, in the callee frame, an object the caller frame
// named differently. Bounded unfolding of the contract cannot see it —
// any finite unfolding of f(a,b) -> f(b,a) keeps producing the same
// nominal "recv:f" name — which is the truncation Garcia & Laneve's
// circularity on lam terms removes: instead of unfolding, solve for the
// set of concrete lock names each parameter may be BOUND to, as the least
// fixpoint of the call-site flow constraints, and let the cycle check run
// over resolved names.
//
// The inference has two halves:
//
//   - Per method, a symbolic name dataflow over (stack, locals) computes,
//     at every INVOKE/SPAWN, which behavioral name each argument carries:
//     a concrete name (static:/new:/field:/array:), a reference to one of
//     the current method's own parameters (the lam variable), or unknown.
//     The lattice is flat — two different names meet to unknown.
//
//   - A whole-program fixpoint closes the flow relation: a concrete name
//     flowing into parameter j of g lands in binds[g][j]; a parameter
//     reference (m, i) adds the edge binds[g][j] ⊇ binds[m][i]; recursion
//     makes the constraint graph cyclic and the least solution saturates
//     exactly where bounded unfolding truncates (f(a,b) -> f(b,a) yields
//     binds[f][0] = binds[f][1] = {a, b}).
//
// computeDeadlocks then substitutes: an acquisition whose nominal name is
// recv:/argN: and whose parameter resolves to a non-empty, closed binding
// set (no unknown may reach it) contributes every bound name to the
// behavioral lock-order graph. An open binding keeps the nominal name —
// the original zero-false-positive behavior — so programs that never pass
// locks through calls report exactly as before.

// lamBinding is the resolved binding set of one method parameter.
type lamBinding struct {
	names map[string]bool
	// open marks a parameter that may also be bound to a value the naming
	// cannot resolve (unknown flow, unmodelled caller, thread-root entry);
	// substitution is then unsound and the nominal name is kept.
	open bool
}

// paramRefPrefix marks a symbolic dataflow value that names the current
// method's i-th parameter; behavioral lock names never collide with it.
const paramRefPrefix = "\x00param:"

// lamFlowTerm is one constraint on a callee parameter collected at a call
// site: a concrete behavioral name, a caller-parameter reference, or ""
// (unknown — the parameter is open).
type lamFlowTerm struct {
	name      string // concrete name, or "" when ref/open
	refMethod string // caller method for a parameter reference
	refIdx    int
}

// paramBindings runs the whole-program fixpoint and returns the binding
// set per method and parameter index.
func (f *Facts) paramBindings() map[string][]lamBinding {
	// Collect flow terms per (callee, param index).
	type slot struct {
		method string
		idx    int
	}
	terms := make(map[slot]map[lamFlowTerm]bool)
	addTerm := func(callee string, idx int, t lamFlowTerm) {
		s := slot{callee, idx}
		if terms[s] == nil {
			terms[s] = make(map[lamFlowTerm]bool)
		}
		terms[s][t] = true
	}
	for _, m := range f.prog.Methods {
		mi := f.methods[m.Name]
		states := f.nameStates(mi)
		if states == nil {
			// Unmodellable method: every argument it passes is open.
			for pc, in := range m.Code {
				if (in.Op != bytecode.INVOKE && in.Op != bytecode.SPAWN) || mi.depth[pc] < 0 {
					continue
				}
				if callee := f.methods[in.S]; callee != nil {
					for j := 0; j < callee.m.Args; j++ {
						addTerm(in.S, j, lamFlowTerm{})
					}
				}
			}
			continue
		}
		for pc, in := range m.Code {
			if (in.Op != bytecode.INVOKE && in.Op != bytecode.SPAWN) || mi.depth[pc] < 0 {
				continue
			}
			callee := f.methods[in.S]
			if callee == nil {
				continue
			}
			st := states[pc]
			if st == nil || len(st.stack) < callee.m.Args {
				for j := 0; j < callee.m.Args; j++ {
					addTerm(in.S, j, lamFlowTerm{})
				}
				continue
			}
			base := len(st.stack) - callee.m.Args
			for j := 0; j < callee.m.Args; j++ {
				v := st.stack[base+j]
				switch {
				case v == "":
					addTerm(in.S, j, lamFlowTerm{})
				case strings.HasPrefix(v, paramRefPrefix):
					var i int
					fmt.Sscanf(v[len(paramRefPrefix):], "%d", &i)
					addTerm(in.S, j, lamFlowTerm{refMethod: m.Name, refIdx: i})
				default:
					addTerm(in.S, j, lamFlowTerm{name: v})
				}
			}
		}
	}
	// A declared thread's target starts with zeroed locals, not caller
	// arguments: any parameters it has are open.
	for _, td := range f.prog.Threads {
		if mi := f.methods[td.Method]; mi != nil {
			for j := 0; j < mi.m.Args; j++ {
				addTerm(td.Method, j, lamFlowTerm{})
			}
		}
	}

	binds := make(map[string][]lamBinding)
	for _, m := range f.prog.Methods {
		bs := make([]lamBinding, m.Args)
		for i := range bs {
			bs[i].names = make(map[string]bool)
		}
		binds[m.Name] = bs
	}
	// Least-fixpoint iteration over the (small) constraint graph.
	for changed := true; changed; {
		changed = false
		for s, ts := range terms {
			b := &binds[s.method][s.idx]
			for t := range ts {
				switch {
				case t.name != "":
					if !b.names[t.name] {
						b.names[t.name] = true
						changed = true
					}
				case t.refMethod != "":
					src := binds[t.refMethod]
					if t.refIdx < 0 || t.refIdx >= len(src) {
						if !b.open {
							b.open = true
							changed = true
						}
						continue
					}
					for n := range src[t.refIdx].names {
						if !b.names[n] {
							b.names[n] = true
							changed = true
						}
					}
					if src[t.refIdx].open && !b.open {
						b.open = true
						changed = true
					}
				default:
					if !b.open {
						b.open = true
						changed = true
					}
				}
			}
		}
	}
	return binds
}

// nameState is the symbolic lock-name vector at one pc: each slot holds a
// concrete behavioral name, a paramRefPrefix reference, or "" (unknown).
type nameState struct {
	stack  []string
	locals []string
}

func (s *nameState) clone() *nameState {
	return &nameState{
		stack:  append([]string(nil), s.stack...),
		locals: append([]string(nil), s.locals...),
	}
}

// flatMerge meets other into s slot-wise on the flat lattice (equal names
// keep, different names drop to unknown); reports whether s changed and
// ok=false on a stack-shape mismatch.
func (s *nameState) flatMerge(other *nameState) (changed, ok bool) {
	if len(s.stack) != len(other.stack) || len(s.locals) != len(other.locals) {
		return false, false
	}
	for i := range s.stack {
		if s.stack[i] != other.stack[i] && s.stack[i] != "" {
			s.stack[i] = ""
			changed = true
		}
	}
	for i := range s.locals {
		if s.locals[i] != other.locals[i] && s.locals[i] != "" {
			s.locals[i] = ""
			changed = true
		}
	}
	return changed, true
}

// nameStates computes the in-state for every pc, or nil when an
// instruction cannot be modelled (the callers then treat every argument
// the method passes as open).
func (f *Facts) nameStates(mi *methodInfo) []*nameState {
	m := mi.m
	states := make([]*nameState, len(m.Code))
	var queue []int
	bad := false
	post := func(pc int, st *nameState) {
		if states[pc] == nil {
			states[pc] = st.clone()
			queue = append(queue, pc)
			return
		}
		changed, ok := states[pc].flatMerge(st)
		if !ok {
			bad = true
			return
		}
		if changed {
			queue = append(queue, pc)
		}
	}
	entry := &nameState{locals: make([]string, m.Locals)}
	for i := 0; i < m.Args && i < m.Locals; i++ {
		entry.locals[i] = fmt.Sprintf("%s%d", paramRefPrefix, i)
	}
	post(0, entry)
	run := func() {
		for len(queue) > 0 {
			pc := queue[0]
			queue = queue[1:]
			st := states[pc].clone()
			if !f.nameTransfer(mi, pc, st) {
				bad = true
				continue
			}
			for _, s := range succs(m, pc) {
				post(s, st)
			}
		}
	}
	run()
	// Handler union rule: an exception at any covered pc transfers to the
	// target with an unknown operand stack but the LOCALS preserved, so the
	// target's locals are the flat meet over the covered range. (Seeding
	// with all-unknown locals instead would let a rollback trampoline's
	// back edge erase every name the straight-line flow established.)
	// Iterate to a fixpoint, as a handler may cover another handler's body.
	for !bad {
		progressed := false
		for _, h := range m.Handlers {
			if mi.stack[h.Target] < 0 {
				continue
			}
			hs := &nameState{
				stack:  make([]string, mi.stack[h.Target]),
				locals: make([]string, m.Locals),
			}
			first := true
			for pc := h.From; pc < h.To && pc < len(m.Code); pc++ {
				if states[pc] == nil {
					continue
				}
				if first {
					copy(hs.locals, states[pc].locals)
					first = false
					continue
				}
				for i := range hs.locals {
					if hs.locals[i] != states[pc].locals[i] {
						hs.locals[i] = ""
					}
				}
			}
			if first {
				continue // no covered pc reached yet
			}
			before := len(queue)
			post(h.Target, hs)
			if len(queue) > before {
				progressed = true
			}
		}
		if !progressed {
			break
		}
		run()
	}
	if bad {
		return nil
	}
	return states
}

// nameTransfer applies one instruction to st in place; ok=false when the
// tracked stack shape underflows.
func (f *Facts) nameTransfer(mi *methodInfo, pc int, st *nameState) bool {
	m := mi.m
	in := m.Code[pc]
	top := func(k int) int { return len(st.stack) - k }
	pop := func(k int) bool {
		if len(st.stack) < k {
			return false
		}
		st.stack = st.stack[:len(st.stack)-k]
		return true
	}
	push := func(vals ...string) { st.stack = append(st.stack, vals...) }

	switch in.Op {
	case bytecode.LOAD:
		push(st.locals[in.A])
	case bytecode.STORE:
		if len(st.stack) < 1 {
			return false
		}
		st.locals[in.A] = st.stack[top(1)]
		pop(1)
	case bytecode.DUP:
		if len(st.stack) < 1 {
			return false
		}
		push(st.stack[top(1)])
	case bytecode.SWAP:
		if len(st.stack) < 2 {
			return false
		}
		st.stack[top(1)], st.stack[top(2)] = st.stack[top(2)], st.stack[top(1)]
	case bytecode.GETSTATIC:
		if in.A >= 0 && in.A < len(f.prog.Statics) {
			push("static:" + f.prog.Statics[in.A].Name)
		} else {
			push("")
		}
	case bytecode.NEWOBJ:
		push(fmt.Sprintf("new:%s@%s@%d", in.S, m.Name, pc))
	case bytecode.GETFIELD:
		if !pop(1) {
			return false
		}
		push(fmt.Sprintf("field:#%d", in.A))
	case bytecode.ALOAD:
		if !pop(2) {
			return false
		}
		push("array:elem")
	case bytecode.INVOKE:
		callee := f.methods[in.S]
		if callee == nil {
			return false
		}
		if !pop(callee.m.Args) {
			return false
		}
		if callee.m.Returns {
			push("")
		}
	case bytecode.SPAWN:
		callee := f.methods[in.S]
		if callee == nil {
			return false
		}
		if !pop(callee.m.Args) {
			return false
		}
	case bytecode.NATIVE:
		if !pop(in.A) {
			return false
		}
		push("")
	case bytecode.SAVESTACK:
		d := int(in.V)
		if len(st.stack) != d {
			return false
		}
		for i := 0; i < d; i++ {
			st.locals[in.A+i] = st.stack[i]
		}
	case bytecode.RESTORESTACK:
		d := int(in.V)
		for i := 0; i < d; i++ {
			push(st.locals[in.A+i])
		}
	default:
		pops, pushes, _, _, err := bytecode.StackEffect(f.prog, m, pc, in)
		if err != nil || !pop(pops) {
			return false
		}
		for i := 0; i < pushes; i++ {
			push("")
		}
	}
	return true
}

// paramIndexOf maps a nominal recv:/argN: lock name of the given method
// to the parameter index it denotes, or -1.
func paramIndexOf(name, method string) int {
	base := baseName(method)
	if name == "recv:"+base {
		return 0
	}
	var i int
	if n, _ := fmt.Sscanf(name, "arg%d:", &i); n == 1 && strings.HasSuffix(name, ":"+base) {
		return i
	}
	return -1
}

// resolveLockName substitutes the inferred parameter binding for a
// nominal recv:/argN: acquisition name: a closed, non-empty binding
// yields its concrete names (sorted); anything else keeps the nominal
// name.
func resolveLockName(name, method string, binds map[string][]lamBinding) []string {
	idx := paramIndexOf(name, method)
	if idx < 0 {
		return []string{name}
	}
	bs := binds[method]
	if idx >= len(bs) || bs[idx].open || len(bs[idx].names) == 0 {
		return []string{name}
	}
	out := make([]string, 0, len(bs[idx].names))
	for n := range bs[idx].names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
