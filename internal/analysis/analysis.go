// Package analysis is the whole-program static analysis framework over
// bytecode programs. It moves decisions the paper's runtime makes
// dynamically to load time (§1.1: "compiler analyses and optimization may
// elide these run-time checks"):
//
//   - Section discovery maps every MONITORENTER site to the instructions
//     and methods reachable while the monitor is held.
//
//   - The revocability classifier marks a section statically non-revocable
//     when a native call, a volatile read, or a nested wait is reachable
//     inside it — the same three triggers the runtime checks dynamically
//     (§2.2). A statically non-revocable monitor can be pre-marked at
//     monitorenter, so the section runs with zero undo-log entries instead
//     of logging right up to the dynamic trigger.
//
//   - The lock-order graph records which abstract locks are acquired while
//     which others are held; a strongly connected component of two or more
//     locks is a potential deadlock, reported with method@pc witnesses
//     before any thread ever blocks.
//
//   - Flow-sensitive barrier elision proves, per store instruction, that
//     the write barrier's logging slow path can never fire: either the
//     store can never execute while a monitor is held, or its target object
//     was allocated inside the current section (whose allocation undo entry
//     already restores it wholesale on rollback).
//
//   - The behavioral deadlock pass (behavior.go) infers per-method
//     lock/spawn contracts, unfolds them through SPAWN to a thread-system
//     fixpoint, and checks circularity under a finer abstract-lock naming
//     (field- and array-sourced monitors get merged identities). It reports
//     deadlocks that need spawned thread multiplicity or value-dependent
//     lock aliasing, where the SCC pass above stays structurally silent.
//
//   - The permission pass (perm.go) re-derives every optimization the
//     facts license as a proof obligation over held-region and freshness
//     permission lattices and emits a machine-checkable elision
//     Certificate per (method, pc, kind). Consumers call RequireCert
//     instead of trusting raw fact fields; interp.NewEnv rejects a fact
//     set whose obligations are not fully discharged.
//
// Every classification errs on the conservative side: over-marking a
// section non-revocable only denies revocations (the unmodified VM denies
// all of them), and under-eliding only keeps a barrier that was already
// sound. cmd/rvmlint exposes the findings as a CLI; interp.Options.Facts
// feeds them to the runtime.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
)

// Pos identifies one instruction.
type Pos struct {
	Method string `json:"method"`
	PC     int    `json:"pc"`
}

func (p Pos) String() string { return fmt.Sprintf("%s@%d", p.Method, p.PC) }

// Reason is one revocability trigger found inside a section.
type Reason struct {
	// Kind is "native-call", "volatile-read" or "nested-wait".
	Kind string `json:"kind"`
	// Pos is the triggering instruction.
	Pos Pos `json:"pos"`
	// Detail names the native, variable or monitor involved.
	Detail string `json:"detail,omitempty"`
}

func (r Reason) String() string {
	if r.Detail != "" {
		return fmt.Sprintf("%s %s at %v", r.Kind, r.Detail, r.Pos)
	}
	return fmt.Sprintf("%s at %v", r.Kind, r.Pos)
}

// Section is one MONITORENTER site plus everything reachable while its
// monitor is held.
type Section struct {
	// Enter is the MONITORENTER instruction.
	Enter Pos `json:"enter"`
	// Lock is the abstract identity of the monitor object (see lock ids in
	// lockorder.go).
	Lock string `json:"lock"`
	// PCs lists the containing method's instructions inside the section,
	// ascending (conservative over-approximation; includes teardown).
	PCs []int `json:"pcs"`
	// Callees lists the methods transitively invocable while held, sorted.
	Callees []string `json:"callees,omitempty"`
	// SyncMethod marks the synthetic section representing a synchronized
	// method's whole body (Enter.PC is 0, the first instruction).
	SyncMethod bool `json:"sync_method,omitempty"`
	// NonRevocable reports the static classification; Reasons carries the
	// triggers (empty when revocable).
	NonRevocable bool     `json:"non_revocable"`
	Reasons      []Reason `json:"reasons,omitempty"`
}

// ReasonSummary renders the first trigger for trace/runtime consumption.
func (s *Section) ReasonSummary() string {
	if len(s.Reasons) == 0 {
		return "static"
	}
	return "static: " + s.Reasons[0].String()
}

// LockEdge is one lock-order edge: To is acquired while From is held.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// At is the inner acquisition site, Outer the section it runs under.
	At    Pos `json:"at"`
	Outer Pos `json:"outer"`
}

// Cycle is one potential deadlock: a strongly connected set of locks.
type Cycle struct {
	// Locks lists the member lock ids, sorted.
	Locks []string `json:"locks"`
	// Edges lists the witnessing acquisitions inside the component.
	Edges []LockEdge `json:"edges"`
}

// methodInfo holds the per-method analysis state.
type methodInfo struct {
	m *bytecode.Method
	// depth[pc] is the static monitor depth before pc (-1 unreachable)
	// within this method body (bytecode.MonitorDepths).
	depth []int
	// stack[pc] is the operand-stack depth before pc (-1 unreachable).
	stack []int
	// held[pc] is true when some monitor entered in this method may still
	// be held at pc (union over enter sites, handler-conservative).
	held []bool
	// mayRunHeld is true when the method body may execute with any monitor
	// held: it is synchronized, called from inside a section, or called
	// from a mayRunHeld method.
	mayRunHeld bool
	// callees lists INVOKE targets (with duplicates, in code order).
	callees []string
	// monitorFree is true when neither this method nor anything it can
	// call contains MONITORENTER/MONITOREXIT/WAIT/NATIVE or is
	// synchronized — the condition under which a call preserves the
	// caller's object-freshness facts.
	monitorFree bool
}

// Facts is the analysis result attached to a program.
type Facts struct {
	// Sections lists every MONITORENTER site, ordered by method then pc.
	Sections []*Section `json:"sections"`
	// Cycles lists the potential lock-order deadlocks.
	Cycles []Cycle `json:"cycles,omitempty"`
	// Deadlocks lists the circularities found by the behavioral contract
	// pass (behavior.go): every lock-order cycle under the finer behavioral
	// naming, plus single-name circularities on multi-instance locks that
	// the SCC pass structurally cannot see.
	Deadlocks []Cycle `json:"deadlocks,omitempty"`
	// Certs lists the elision certificates issued by the permission pass
	// (perm.go): one discharged proof obligation per optimization the
	// runtime is allowed to perform on the strength of these facts.
	Certs []*Certificate `json:"certificates,omitempty"`
	// Races lists the candidate data races (races.go); Bypasses the
	// volatile-bypass access patterns.
	Races    []Race           `json:"races,omitempty"`
	Bypasses []VolatileBypass `json:"volatile_bypasses,omitempty"`
	// Confinements classifies every acquired multi-instance behavioral
	// lock name as thread-confined, shared or unknown (escape.go).
	Confinements []Confinement `json:"confinements,omitempty"`
	// TotalStores and ElidableStores count the program's reachable store
	// instructions and how many can skip the write-barrier slow path;
	// NeverHeldStores and FreshStores split the elidable count by proof
	// (never executes held vs. provably-fresh target object).
	TotalStores     int `json:"total_stores"`
	ElidableStores  int `json:"elidable_stores"`
	NeverHeldStores int `json:"never_held_stores"`
	FreshStores     int `json:"fresh_stores"`

	// CallGraph maps each method to its sorted, deduplicated callees.
	CallGraph map[string][]string `json:"call_graph,omitempty"`

	prog      *bytecode.Program
	methods   map[string]*methodInfo
	sectionAt map[Pos]*Section
	elidable  map[Pos]bool
	neverHeld map[Pos]bool
	certAt    map[certKey]*Certificate
	// confined maps each elidable confined MONITORENTER position to its
	// paired MONITOREXIT pcs (escape.go).
	confined map[Pos][]int
}

// Analyze runs every pass over p. The program must verify (Analyze runs
// bytecode.Verify itself and returns its error otherwise). p is not
// modified; Facts keyed by method name and pc remain valid for any clone
// with identical code, including the same program after ApplyElision
// rewrites stores to their raw forms.
func Analyze(p *bytecode.Program) (*Facts, error) {
	if err := bytecode.Verify(p); err != nil {
		return nil, err
	}
	f := &Facts{
		prog:      p,
		methods:   make(map[string]*methodInfo, len(p.Methods)),
		sectionAt: make(map[Pos]*Section),
		elidable:  make(map[Pos]bool),
		neverHeld: make(map[Pos]bool),
		CallGraph: make(map[string][]string, len(p.Methods)),
	}
	for _, m := range p.Methods {
		stack, err := bytecode.VerifyMethod(p, m)
		if err != nil {
			return nil, err
		}
		depth, err := bytecode.MonitorDepths(p, m)
		if err != nil {
			return nil, err
		}
		mi := &methodInfo{m: m, depth: depth, stack: stack}
		for _, in := range m.Code {
			if in.Op == bytecode.INVOKE {
				mi.callees = append(mi.callees, in.S)
			}
		}
		f.methods[m.Name] = mi
		f.CallGraph[m.Name] = sortedUnique(mi.callees)
	}
	f.computeMayRunHeld()
	f.computeMonitorFree()
	f.discoverSections()
	f.buildLockOrder()
	f.computeElision()
	f.computeRaces()
	f.computeEscape()
	f.computeDeadlocks()
	f.computePermissions()
	f.normalize()
	return f, nil
}

// SectionAt returns the section whose MONITORENTER sits at (method, pc), or
// nil. The runtime uses it to pre-mark statically non-revocable monitors.
func (f *Facts) SectionAt(method string, pc int) *Section {
	return f.sectionAt[Pos{method, pc}]
}

// ElidableStore reports whether the store instruction at (method, pc) needs
// no write barrier: it can never execute while a monitor is held, or its
// target is provably an object allocated inside the current section.
func (f *Facts) ElidableStore(method string, pc int) bool {
	return f.elidable[Pos{method, pc}]
}

// StoreNeverHeld reports whether the store at (method, pc) is elidable by
// the never-executes-held proof alone. Unlike ElidableStore it never relies
// on target freshness, so it is sound even when the runtime does not log
// allocations (the legacy rewrite.ApplyElision path).
func (f *Facts) StoreNeverHeld(method string, pc int) bool {
	return f.neverHeld[Pos{method, pc}]
}

// MayRunHeld reports whether the named method's body may execute while any
// monitor is held (its own sections aside).
func (f *Facts) MayRunHeld(method string) bool {
	mi, ok := f.methods[method]
	return ok && mi.mayRunHeld
}

// MethodElidable reports whether every store in the named method can never
// execute while a monitor is held (the coarse, method-level view
// rewrite.BarrierAnalysis exposes; fresh-target proofs are deliberately
// excluded because they need the runtime's allocation logging).
func (f *Facts) MethodElidable(method string) bool {
	mi, ok := f.methods[method]
	if !ok {
		return false
	}
	for pc, in := range mi.m.Code {
		switch in.Op {
		case bytecode.PUTFIELD, bytecode.PUTSTATIC, bytecode.ASTORE:
			if mi.depth[pc] < 0 {
				continue
			}
			if !f.neverHeld[Pos{method, pc}] {
				return false
			}
		}
	}
	return true
}

// NonRevocableSections counts the statically non-revocable sections.
func (f *Facts) NonRevocableSections() int {
	n := 0
	for _, s := range f.Sections {
		if s.NonRevocable {
			n++
		}
	}
	return n
}

// computeMayRunHeld runs the caller-context fixpoint: a method may run held
// when it is synchronized, is invoked at a pc whose static monitor depth is
// positive, or is invoked (anywhere) by a method that may run held.
func (f *Facts) computeMayRunHeld() {
	var queue []string
	mark := func(name string) {
		if mi, ok := f.methods[name]; ok && !mi.mayRunHeld {
			mi.mayRunHeld = true
			queue = append(queue, name)
		}
	}
	for _, mi := range f.methods {
		if mi.m.Synchronized {
			mark(mi.m.Name)
		}
		base := 0
		if mi.m.Synchronized {
			base = 1
		}
		for pc, in := range mi.m.Code {
			if in.Op == bytecode.INVOKE && mi.depth[pc] >= 0 && mi.depth[pc]+base > 0 {
				mark(in.S)
			}
		}
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		for _, c := range f.methods[name].callees {
			mark(c)
		}
	}
}

// computeMonitorFree marks methods whose transitive call tree contains no
// monitor operation and no native call — calls to them preserve freshness.
func (f *Facts) computeMonitorFree() {
	// Start optimistic, knock out methods with a local monitor op or an
	// unknown/impure callee, then propagate impurity up the call graph.
	impure := func(mi *methodInfo) bool {
		if mi.m.Synchronized {
			return true
		}
		for _, in := range mi.m.Code {
			switch in.Op {
			case bytecode.MONITORENTER, bytecode.MONITOREXIT, bytecode.WAIT, bytecode.NATIVE,
				bytecode.SPAWN:
				// SPAWN publishes its arguments to a concurrently running
				// thread, so a call into a spawning method must not preserve
				// the caller's freshness facts.
				return true
			}
		}
		return false
	}
	callers := make(map[string][]string)
	var queue []string
	for name, mi := range f.methods {
		mi.monitorFree = true
		for _, c := range mi.callees {
			callers[c] = append(callers[c], name)
		}
		if impure(mi) {
			mi.monitorFree = false
			queue = append(queue, name)
		}
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		for _, caller := range callers[name] {
			if mi := f.methods[caller]; mi.monitorFree {
				mi.monitorFree = false
				queue = append(queue, caller)
			}
		}
	}
}

func sortedUnique(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := append([]string(nil), in...)
	sort.Strings(out)
	w := 0
	for i, s := range out {
		if i == 0 || s != out[w-1] {
			out[w] = s
			w++
		}
	}
	return out[:w]
}
