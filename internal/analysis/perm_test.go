package analysis

import (
	"strings"
	"testing"
)

// permSrc has one of everything the permission pass certifies: a
// never-held store (outside every section), a fresh in-section store
// (allocation inside the section), and a non-revocable section (native
// call trigger).
const permSrc = `
class Lock {
    unused
}
class Box {
    v
}
static L
static g = 0
method main locals 2 {
    newobj Lock
    putstatic L
    const 1
    putstatic g
    getstatic L
    store 0
    sync 0 {
        newobj Box
        store 1
        load 1
        const 7
        putfield Box.v
        const 1
        native log 1
        pop
    }
    return
}
`

// TestCertificatesIssued: every elidable store and every non-revocable
// section carries a certificate at the right permission-lattice point,
// reachable through CertAt and RequireCert.
func TestCertificatesIssued(t *testing.T) {
	f := analyze(t, permSrc)
	if len(f.Certs) == 0 {
		t.Fatal("no certificates issued")
	}
	var barriers, nonrev int
	for _, c := range f.Certs {
		switch c.Kind {
		case CertElideBarrier:
			barriers++
			if c.Perm != permNeverHeld && c.Perm != permFresh {
				t.Errorf("barrier cert %v has perm %q", c.Pos, c.Perm)
			}
			if f.CertAt(c.Pos.Method, c.Pos.PC, CertElideBarrier) != c {
				t.Errorf("CertAt does not find %v", c)
			}
			if err := f.RequireCert(c.Pos.Method, c.Pos.PC, CertElideBarrier); err != nil {
				t.Errorf("RequireCert(%v) = %v", c.Pos, err)
			}
		case CertNonRevocable:
			nonrev++
			if c.Perm != permNonRev {
				t.Errorf("non-revocable cert %v has perm %q", c.Pos, c.Perm)
			}
		}
	}
	if barriers == 0 || nonrev == 0 {
		t.Fatalf("certs missing a kind: %d barriers, %d non-revocable (%v)", barriers, nonrev, f.Certs)
	}
	if err := f.RequireCert("main", 9999, CertElideBarrier); err == nil {
		t.Fatal("RequireCert at a pc with no obligation succeeded")
	} else if !strings.Contains(err.Error(), "uncertified elision") {
		t.Fatalf("RequireCert error = %v, want uncertified-elision", err)
	}
	if err := f.VerifyCertificates(); err != nil {
		t.Fatalf("fresh facts fail verification: %v", err)
	}
}

// TestVerifyCatchesTampering: every way of flipping a public fact field
// without re-running the analysis is a hard VerifyCertificates error —
// the gate interp.NewEnv and rvmlint apply.
func TestVerifyCatchesTampering(t *testing.T) {
	nonRevIdx := func(f *Facts) int {
		for i, s := range f.Sections {
			if s.NonRevocable {
				return i
			}
		}
		t.Fatal("no non-revocable section in fixture")
		return -1
	}

	t.Run("revocable flipped non-revocable", func(t *testing.T) {
		f := analyze(t, `
class Lock {
    unused
}
static L
method main locals 1 {
    newobj Lock
    putstatic L
    getstatic L
    store 0
    sync 0 {
        nop
    }
    return
}
`)
		if len(f.Sections) != 1 || f.Sections[0].NonRevocable {
			t.Fatalf("fixture sections = %+v", f.Sections)
		}
		f.Sections[0].NonRevocable = true
		err := f.VerifyCertificates()
		if err == nil || !strings.Contains(err.Error(), "no trigger") {
			t.Fatalf("tampered facts verified: %v", err)
		}
	})

	t.Run("non-revocable flipped revocable", func(t *testing.T) {
		f := analyze(t, permSrc)
		f.Sections[nonRevIdx(f)].NonRevocable = false
		err := f.VerifyCertificates()
		if err == nil || !strings.Contains(err.Error(), "stale certificate") {
			t.Fatalf("tampered facts verified: %v", err)
		}
	})

	t.Run("fabricated trigger", func(t *testing.T) {
		f := analyze(t, permSrc)
		s := f.Sections[nonRevIdx(f)]
		s.Reasons[0].Pos = Pos{"main", 0} // a NEWOBJ, not a native call
		err := f.VerifyCertificates()
		if err == nil || !strings.Contains(err.Error(), "does not re-derive") {
			t.Fatalf("fabricated trigger verified: %v", err)
		}
	})

	t.Run("forged certificate", func(t *testing.T) {
		f := analyze(t, permSrc)
		forged := &Certificate{Kind: CertElideBarrier, Pos: Pos{"main", 0}, Perm: permNeverHeld}
		f.certAt[certKey{forged.Pos, forged.Kind}] = forged
		f.Certs = append(f.Certs, forged)
		err := f.VerifyCertificates()
		if err == nil || !strings.Contains(err.Error(), "stale certificate") {
			t.Fatalf("forged certificate verified: %v", err)
		}
	})

	t.Run("permission downgraded", func(t *testing.T) {
		f := analyze(t, permSrc)
		var tampered bool
		for _, c := range f.Certs {
			if c.Kind == CertElideBarrier && c.Perm == permFresh {
				c.Perm = permNeverHeld
				tampered = true
				break
			}
		}
		if !tampered {
			t.Fatal("no fresh-target certificate in fixture")
		}
		err := f.VerifyCertificates()
		if err == nil || !strings.Contains(err.Error(), "re-derives") {
			t.Fatalf("permission tampering verified: %v", err)
		}
	})
}
