package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bytecode"
)

// Behavioral deadlock analysis.
//
// The SCC pass in lockorder.go reasons about a fixed set of abstract lock
// NAMES: it reports a deadlock only when two or more distinct names form a
// cycle, it deliberately drops self-edges (reentrant re-acquisition of one
// name is not a deadlock for a single object), and its naming gives every
// monitor it cannot trace to a static or receiver a unique "local:" id, so
// locks reached through fields or array elements never alias. Both choices
// are right for zero-false-positive reporting on statically named locks —
// and both make the pass structurally blind to two real deadlock shapes:
//
//  1. Spawned multiplicity. A method that locks a then b deadlocks against
//     a second concurrent instance of ITSELF when a and b come from one
//     multi-instance source (one allocation site run in a loop, one array
//     of locks): thread 1 holds instance x waiting for y while thread 2
//     holds y waiting for x. Under abstraction both acquisitions carry the
//     SAME name, so the only witness is a self-edge — exactly what the SCC
//     pass drops.
//
//  2. Value-dependent aliasing. Two threads locking c1.l then c2.l and
//     c2.l then c1.l never share a syntactic lock expression; only the
//     FIELD the lock flows through is common. Unique "local:" names hide
//     the conflict entirely.
//
// This pass closes both gaps with a behavioral-contract view (after
// Garcia & Laneve's deadlock analysis of contracts with dynamic thread
// creation): each method's contract is the sequence of lock acquisitions
// and SPAWN actions it may perform, abstracted to behavioral lock names;
// contracts unfold through INVOKE and SPAWN until the set of
// (held-lock, acquired-lock) pairs and the set of concurrently live
// contract instances both reach a fixpoint. Circularity is then checked on
// the saturated system:
//
//   - every SCC of two or more behavioral names is a deadlock (the
//     lockorder.go criterion, under the finer naming); and
//
//   - a SELF-edge l -> l is a deadlock when l is a multi-instance name
//     (allocation-site, field- or array-sourced: one name, many objects)
//     AND at least two concurrent thread instances can perform the nested
//     acquisition — two instances suffice to cross-block on two objects of
//     the name. Receiver and argument names are excluded: a nested
//     acquisition through one unchanged variable is the same object on any
//     single execution (plain reentrancy), keeping the pass silent on the
//     ubiquitous reentrant-sync pattern.
//
// Thread multiplicity comes from threadReachability (races.go), which
// models dynamic thread creation: every SPAWN target is a contract root
// carrying two pseudo-identities, because one spawn site may start many
// concurrent instances (spawn in a loop, spawning method itself running
// twice). Declared threads carry one identity each. Findings land in
// Facts.Deadlocks as Cycle values — same shape, same witness edges — and
// render via RenderDeadlocks (rvmlint -deadlocks).

// behavLockID is the behavioral naming: lockID extended so monitors traced
// to a GETFIELD merge per field index and monitors traced to an ALOAD
// merge into one array-element name. Merging over-approximates aliasing —
// the right direction for a may-deadlock report.
func (f *Facts) behavLockID(mi *methodInfo, ep int) string {
	m := mi.m
	if ep > 0 {
		switch prev := m.Code[ep-1]; prev.Op {
		case bytecode.GETFIELD:
			return fmt.Sprintf("field:#%d", prev.A)
		case bytecode.ALOAD:
			return "array:elem"
		case bytecode.LOAD:
			if id := f.behavLocalSource(mi, prev.A); id != "" {
				return id
			}
		}
	}
	return f.lockID(mi, ep)
}

// behavLocalSource resolves a local used as a monitor to a merged
// behavioral name when every STORE to it is fed by the same field or
// array-element source; "" defers to the base localLockID resolution.
func (f *Facts) behavLocalSource(mi *methodInfo, local int) string {
	m := mi.m
	var ids []string
	stores := 0
	for pc, in := range m.Code {
		if in.Op != bytecode.STORE || in.A != local {
			continue
		}
		stores++
		if pc == 0 {
			continue
		}
		switch prev := m.Code[pc-1]; prev.Op {
		case bytecode.GETFIELD:
			ids = append(ids, fmt.Sprintf("field:#%d", prev.A))
		case bytecode.ALOAD:
			ids = append(ids, "array:elem")
		}
	}
	if stores == 0 || len(ids) != stores {
		return ""
	}
	for _, id := range ids[1:] {
		if id != ids[0] {
			return ""
		}
	}
	return ids[0]
}

// multiInstance reports whether a behavioral name may denote two or more
// distinct monitor objects at once: allocation-site names (one site, many
// executions) and merged field/array names. Static and receiver/argument
// names are excluded — "static:" is one object, and a receiver or argument
// is one object per executing frame.
func multiInstance(id string) bool {
	return strings.HasPrefix(id, "new:") ||
		strings.HasPrefix(id, "field:") ||
		strings.HasPrefix(id, "array:")
}

// computeDeadlocks builds the behavioral lock-order graph and fills
// Facts.Deadlocks. Runs after discoverSections and buildLockOrder.
func (f *Facts) computeDeadlocks() {
	// Recursive contract inference (contracts.go): a nominal recv:/argN:
	// name whose parameter binding closes over concrete names contributes
	// every bound name; recursion saturates the bindings where bounded
	// unfolding would truncate the evidence.
	binds := f.paramBindings()
	resolve := func(mi *methodInfo, ep int) []string {
		return resolveLockName(f.behavLockID(mi, ep), mi.m.Name, binds)
	}

	// The saturated acquisition system: discoverSections already has one
	// Section per acquisition site in EVERY method — spawned bodies
	// included — so re-deriving lockorder.go's edges under the behavioral
	// naming, self-edges kept, is the contract unfolding's order component.
	lockOf := make(map[Pos][]string, len(f.Sections))
	for _, s := range f.Sections {
		if s.SyncMethod {
			lockOf[s.Enter] = resolveLockName(s.Lock, s.Enter.Method, binds)
		} else {
			lockOf[s.Enter] = resolve(f.methods[s.Enter.Method], s.Enter.PC)
		}
	}

	var edges []LockEdge
	seen := make(map[LockEdge]bool)
	add := func(froms []string, to []string, at, outer Pos) {
		for _, from := range froms {
			for _, t := range to {
				e := LockEdge{From: from, To: t, At: at, Outer: outer}
				if !seen[e] {
					seen[e] = true
					edges = append(edges, e)
				}
			}
		}
	}
	for _, s := range f.Sections {
		from := lockOf[s.Enter]
		mi := f.methods[s.Enter.Method]
		for _, pc := range s.PCs {
			if mi.m.Code[pc].Op == bytecode.MONITORENTER && pc != s.Enter.PC {
				add(from, resolve(mi, pc), Pos{mi.m.Name, pc}, s.Enter)
			}
		}
		for _, callee := range s.Callees {
			ci := f.methods[callee]
			if ci == nil {
				continue
			}
			if ci.m.Synchronized {
				add(from, resolveLockName("recv:"+baseName(callee), callee, binds), Pos{callee, 0}, s.Enter)
			}
			for pc, in := range ci.m.Code {
				if in.Op == bytecode.MONITORENTER && ci.depth[pc] >= 0 {
					add(from, resolve(ci, pc), Pos{callee, pc}, s.Enter)
				}
			}
		}
	}

	// Multi-name circularities: the SCC criterion under behavioral naming.
	f.Deadlocks = findCycles(edges)

	// Single-name circularities. acq[l] is the set of concurrent thread
	// instances that may acquire l — the thread-system fixpoint, spawn
	// pseudo-identities counting their multiplicity.
	reach := f.threadReachability()
	acq := make(map[string]map[string]bool)
	for _, s := range f.Sections {
		for _, l := range lockOf[s.Enter] {
			for t := range reach[s.Enter.Method] {
				if acq[l] == nil {
					acq[l] = make(map[string]bool)
				}
				acq[l][t] = true
			}
		}
	}
	selfEdges := make(map[string][]LockEdge)
	var selfNames []string
	for _, e := range edges {
		if e.From != e.To || !multiInstance(e.From) || len(acq[e.From]) < 2 {
			continue
		}
		if selfEdges[e.From] == nil {
			selfNames = append(selfNames, e.From)
		}
		selfEdges[e.From] = append(selfEdges[e.From], e)
	}
	sort.Strings(selfNames)
	for _, l := range selfNames {
		f.Deadlocks = append(f.Deadlocks, Cycle{Locks: []string{l}, Edges: selfEdges[l]})
	}
}

// RenderDeadlocks formats the behavioral findings as deterministic text
// (the rvmlint -deadlocks section).
func (f *Facts) RenderDeadlocks() string {
	var b strings.Builder
	fmt.Fprintf(&b, "behavioral deadlocks: %d (lock-order cycles: %d)\n", len(f.Deadlocks), len(f.Cycles))
	for _, c := range f.Deadlocks {
		if len(c.Locks) == 1 {
			fmt.Fprintf(&b, "  deadlock: %s (multi-instance self-cycle)\n", c.Locks[0])
		} else {
			fmt.Fprintf(&b, "  deadlock: %s\n", strings.Join(c.Locks, " <-> "))
		}
		for _, e := range c.Edges {
			fmt.Fprintf(&b, "    %s acquired at %v while holding %s (entered at %v)\n",
				e.To, e.At, e.From, e.Outer)
		}
	}
	return b.String()
}
