package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bytecode"
)

// Escape / thread-confinement analysis.
//
// The behavioral naming (behavior.go) deliberately over-merges the
// multi-instance lock names — "new:" per allocation site, "field:#N" per
// field index, "array:elem" for every array element — because aliasing
// over-approximation is the right direction for a may-deadlock report. For
// the runtime the interesting question is the opposite one: which of those
// monitors can ONE thread ever touch? A monitor no second thread can reach
// needs none of the paper's machinery — no lock word, no revocation
// eligibility, no undo logging, no race clocks — so every certified
// confined MONITORENTER/MONITOREXIT pair compiles to a charge-only no-op
// in all three tiers.
//
// Classification is per behavioral lock name:
//
//   - "new:Class@method@pc" names are classified by an allocation-site
//     points-to dataflow: a MAY-alias bit for the one allocation site is
//     propagated forward over (stack, locals), OR-merged at joins (the
//     dual of the freshness lattice in fresh.go, which is a MUST analysis
//     and AND-merges). The object escapes its creating thread exactly when
//     an aliasing value is stored into any object, array or static
//     (PUTFIELD/PUTSTATIC/ASTORE and their RAW forms) or passed to a SPAWN
//     — the escape kills the race pass already applies to freshness, here
//     recorded instead of killing. A value that flows into an INVOKE, a
//     NATIVE or a return leaves the method's view, so the site degrades to
//     "unknown" rather than "shared". No escape on any path means every
//     dynamic instance of the site is reachable only by its allocating
//     thread: thread-confined even when the method itself runs on many
//     threads, because each execution allocates a fresh instance.
//
//   - "field:#N" / "array:elem" names are classified by thread
//     reachability (races.go): if the union of thread identities that can
//     reach any acquiring method — declared threads one identity, SPAWN
//     targets two pseudo-identities for their multiplicity — has size at
//     most one, only one thread can ever perform any of those
//     acquisitions and the name is thread-confined; otherwise it is
//     shared. (Reachability is the whole proof here: a field-sourced lock
//     has escaped into the heap by construction.)
//
// On top of the classification the pass derives the whole-monitor elision
// sites: a confined "new:"-named MONITORENTER whose acquisition pairs
// exactly with its MONITOREXITs (monitorPairing below) may skip the
// monitor entirely. The permission pass (perm.go) turns each such site
// into CertConfined certificates — one at the enter, one at every paired
// exit — and the tiers demand them via RequireCert before compiling the
// no-op, so a tampered fact set fails at load time, not silently at run
// time.

// Confinement classes.
const (
	ConfinedClass = "thread-confined"
	SharedClass   = "shared"
	UnknownClass  = "unknown"
)

// Confinement is the classification of one multi-instance behavioral lock
// name that some section acquires.
type Confinement struct {
	// Lock is the behavioral lock name ("new:"/"field:"/"array:" prefixed).
	Lock string `json:"lock"`
	// Class is ConfinedClass, SharedClass or UnknownClass.
	Class string `json:"class"`
	// Reason is the human-readable proof or counterexample.
	Reason string `json:"reason"`
	// Sites lists the MONITORENTER positions acquiring this name, sorted.
	Sites []Pos `json:"sites"`
}

// escState is the MAY-alias vector for one allocation site: true marks a
// slot that may hold a reference to an object from the site.
type escState struct {
	stack  []bool
	locals []bool
}

func (s *escState) clone() *escState {
	return &escState{
		stack:  append([]bool(nil), s.stack...),
		locals: append([]bool(nil), s.locals...),
	}
}

// orMerge ORs other into s; reports whether s changed. A stack-shape
// mismatch (impossible in verified code) reports ok=false.
func (s *escState) orMerge(other *escState) (changed, ok bool) {
	if len(s.stack) != len(other.stack) || len(s.locals) != len(other.locals) {
		return false, false
	}
	for i := range s.stack {
		if !s.stack[i] && other.stack[i] {
			s.stack[i] = true
			changed = true
		}
	}
	for i := range s.locals {
		if !s.locals[i] && other.locals[i] {
			s.locals[i] = true
			changed = true
		}
	}
	return changed, true
}

// escInfo is the verdict of allocEscape for one allocation site.
type escInfo struct {
	// heapEscape: an alias was stored into an object/array/static or
	// published to a spawned thread — definitely reachable by others.
	heapEscape bool
	// unknown: an alias left the method's view (call, native, return,
	// throw) or the dataflow could not model an instruction.
	unknown bool
	// synced: an alias was the target of WAIT/NOTIFY/NOTIFYALL. The object
	// may still be confined, but its monitor has observable suspension
	// semantics, so whole-monitor elision is off the table.
	synced bool
}

func (e escInfo) class() string {
	switch {
	case e.heapEscape:
		return SharedClass
	case e.unknown:
		return UnknownClass
	default:
		return ConfinedClass
	}
}

// allocEscape runs the MAY-alias dataflow for the allocation at
// (mi, allocPC) over the whole method body.
func (f *Facts) allocEscape(mi *methodInfo, allocPC int) escInfo {
	m := mi.m
	var info escInfo
	states := make([]*escState, len(m.Code))
	var queue []int
	post := func(pc int, st *escState) {
		if states[pc] == nil {
			states[pc] = st.clone()
			queue = append(queue, pc)
			return
		}
		changed, ok := states[pc].orMerge(st)
		if !ok {
			info.unknown = true
			return
		}
		if changed {
			queue = append(queue, pc)
		}
	}
	post(0, &escState{locals: make([]bool, m.Locals)})

	run := func() {
		for len(queue) > 0 {
			pc := queue[0]
			queue = queue[1:]
			st := states[pc].clone()
			if !f.escTransfer(mi, pc, allocPC, st, &info) {
				info.unknown = true
				continue
			}
			for _, s := range succs(m, pc) {
				post(s, st)
			}
		}
	}
	run()
	// Handler union rule: an exception at any covered pc transfers to the
	// target with the thrown object on the stack and the LOCALS preserved —
	// aliases survive in locals across the unwind, so the target's locals
	// are the OR over the covered range. Iterate to a fixpoint (a handler
	// may cover another handler's body). Rollback handlers are included:
	// conservative, since more flow only widens the may-alias set.
	for {
		progressed := false
		for _, h := range m.Handlers {
			if mi.stack[h.Target] < 0 {
				continue
			}
			hs := &escState{
				stack:  make([]bool, mi.stack[h.Target]),
				locals: make([]bool, m.Locals),
			}
			seen := false
			for pc := h.From; pc < h.To && pc < len(m.Code); pc++ {
				if states[pc] == nil {
					continue
				}
				seen = true
				for i, b := range states[pc].locals {
					if b {
						hs.locals[i] = true
					}
				}
			}
			if !seen {
				continue
			}
			if states[h.Target] == nil {
				states[h.Target] = hs
				queue = append(queue, h.Target)
				progressed = true
				continue
			}
			changed, ok := states[h.Target].orMerge(hs)
			if !ok {
				info.unknown = true
				continue
			}
			if changed {
				queue = append(queue, h.Target)
				progressed = true
			}
		}
		if !progressed {
			break
		}
		run()
	}
	return info
}

// escTransfer applies one instruction to st in place, recording escape
// events into info; reports ok=false when the instruction cannot be
// modelled against the tracked stack shape.
func (f *Facts) escTransfer(mi *methodInfo, pc, allocPC int, st *escState, info *escInfo) bool {
	m := mi.m
	in := m.Code[pc]
	top := func(k int) int { return len(st.stack) - k }
	tracked := func(k int) bool { return len(st.stack) >= k && st.stack[top(k)] }
	pop := func(k int) bool {
		if len(st.stack) < k {
			return false
		}
		st.stack = st.stack[:len(st.stack)-k]
		return true
	}
	push := func(vals ...bool) { st.stack = append(st.stack, vals...) }

	switch in.Op {
	case bytecode.LOAD:
		push(st.locals[in.A])
	case bytecode.STORE:
		if len(st.stack) < 1 {
			return false
		}
		st.locals[in.A] = st.stack[top(1)]
		pop(1)
	case bytecode.DUP:
		if len(st.stack) < 1 {
			return false
		}
		push(st.stack[top(1)])
	case bytecode.SWAP:
		if len(st.stack) < 2 {
			return false
		}
		st.stack[top(1)], st.stack[top(2)] = st.stack[top(2)], st.stack[top(1)]
	case bytecode.NEWOBJ:
		push(pc == allocPC)
	case bytecode.NEWARR:
		if !pop(1) {
			return false
		}
		push(false)
	case bytecode.PUTFIELD, bytecode.PUTFIELDRAW, bytecode.PUTSTATIC,
		bytecode.PUTSTATICRAW, bytecode.ASTORE, bytecode.ASTORERAW:
		// The stored VALUE is on top; storing an alias publishes the object
		// into the heap. Storing INTO the object is not an escape of it.
		if tracked(1) {
			info.heapEscape = true
		}
		pops, _, _, _, err := bytecode.StackEffect(f.prog, m, pc, in)
		if err != nil || !pop(pops) {
			return false
		}
	case bytecode.MONITORENTER, bytecode.MONITOREXIT:
		// Locking the object is its intended use, not an escape.
		if !pop(1) {
			return false
		}
	case bytecode.WAIT, bytecode.NOTIFY, bytecode.NOTIFYALL:
		if tracked(1) {
			info.synced = true
		}
		if !pop(1) {
			return false
		}
	case bytecode.NATIVE:
		for k := 1; k <= in.A; k++ {
			if tracked(k) {
				info.unknown = true
			}
		}
		if !pop(in.A) {
			return false
		}
		push(false)
	case bytecode.INVOKE:
		callee := f.methods[in.S]
		if callee == nil {
			return false
		}
		for k := 1; k <= callee.m.Args; k++ {
			if tracked(k) {
				info.unknown = true
			}
		}
		if !pop(callee.m.Args) {
			return false
		}
		if callee.m.Returns {
			push(false)
		}
	case bytecode.SPAWN:
		callee := f.methods[in.S]
		if callee == nil {
			return false
		}
		for k := 1; k <= callee.m.Args; k++ {
			if tracked(k) {
				info.heapEscape = true
			}
		}
		if !pop(callee.m.Args) {
			return false
		}
	case bytecode.IRETURN, bytecode.THROW:
		if tracked(1) {
			info.unknown = true
		}
		if !pop(1) {
			return false
		}
	case bytecode.SAVESTACK:
		d := int(in.V)
		if len(st.stack) != d {
			return false
		}
		for i := 0; i < d; i++ {
			st.locals[in.A+i] = st.stack[i]
		}
	case bytecode.RESTORESTACK:
		d := int(in.V)
		for i := 0; i < d; i++ {
			push(st.locals[in.A+i])
		}
	default:
		pops, pushes, _, _, err := bytecode.StackEffect(f.prog, m, pc, in)
		if err != nil || !pop(pops) {
			return false
		}
		for i := 0; i < pushes; i++ {
			push(false)
		}
	}
	return true
}

// pairing is the result of tracking one MONITORENTER's acquisition through
// the CFG.
type pairing struct {
	// exits is the set of MONITOREXIT pcs reached at relative depth 1 —
	// the instructions that release exactly this acquisition.
	exits map[int]bool
	// clean is true when the acquisition is exactly bracketed: no path
	// leaks it past a terminal instruction, no WAIT can suspend inside it,
	// no user exception handler covers it, no exit pc is reachable at two
	// different relative depths, and the depth tracking stayed bounded.
	clean bool
	// poison marks a depth-tracking blowup: the exit set is unreliable and
	// the enter must be treated as potentially using every exit.
	poison bool
}

// monitorPairing walks (pc, relative-depth) states from the MONITORENTER
// at ep — the same state space heldFrom explores — and classifies the
// acquisition's release structure. Unlike heldFrom it never gives up
// early: the full exit set is needed for the cross-enter exclusivity
// check even when the enter itself is not cleanly bracketed.
func monitorPairing(m *bytecode.Method, ep int) pairing {
	p := pairing{exits: make(map[int]bool), clean: true}
	relCap := len(m.Code) + 1
	visited := make(map[int]map[int]bool)
	exitRels := make(map[int]map[int]bool)
	type work struct{ pc, rel int }
	var queue []work
	post := func(pc, rel int) {
		if rel < 1 {
			return
		}
		if rel > relCap {
			p.poison = true
			p.clean = false
			return
		}
		if visited[pc] == nil {
			visited[pc] = make(map[int]bool, 2)
		}
		if visited[pc][rel] {
			return
		}
		visited[pc][rel] = true
		queue = append(queue, work{pc, rel})
	}
	for _, s := range succs(m, ep) {
		post(s, 1)
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		rel := w.rel
		switch m.Code[w.pc].Op {
		case bytecode.MONITORENTER:
			rel++
		case bytecode.MONITOREXIT:
			if exitRels[w.pc] == nil {
				exitRels[w.pc] = make(map[int]bool, 1)
			}
			exitRels[w.pc][w.rel] = true
			if w.rel == 1 {
				// This exit releases our acquisition; the continuation
				// runs un-held and is no longer our concern.
				p.exits[w.pc] = true
				continue
			}
			rel--
		case bytecode.WAIT:
			// A wait suspends (and releases/re-acquires its own monitor)
			// while ours is conceptually held; an elided section must not
			// contain one.
			p.clean = false
		case bytecode.RETURN, bytecode.IRETURN, bytecode.THROW, bytecode.RETHROW:
			// The acquisition leaks past a terminal instruction.
			p.clean = false
			continue
		}
		for _, s := range succs(m, w.pc) {
			post(s, rel)
		}
	}
	// An exit pc reachable both as our release (rel 1) and as a nested
	// release (rel > 1) is ambiguous: the runtime cannot tell from the pc
	// alone which acquisition it closes.
	for pc := range p.exits {
		if len(exitRels[pc]) > 1 {
			p.clean = false
		}
	}
	// Exception handlers covering an in-section pc. Three shapes are
	// benign, everything else defeats the elision:
	//
	//   - rollback trampolines: a rollback releases before its handler
	//     runs, and a confined monitor is never a revocation target;
	//   - THIS enter's compensation handler — the rewriter brackets every
	//     sync block with `load k; monitorexit; rethrow` (protected range
	//     starting right after the enter) so an exception releases the
	//     monitor before unwinding. Its MONITOREXIT releases exactly our
	//     acquisition, so it joins the exit set and the runtime elides the
	//     exception path too;
	//   - compensation handlers of nested or sibling enters, which release
	//     their own acquisitions and rethrow without touching ours.
	//
	// A user handler (any other shape) can observe the unwound acquisition
	// — and in non-elided mode the VM's sync-stack dispatch interacts with
	// it there — so the enter is not cleanly bracketed.
	for _, h := range m.Handlers {
		if h.Catch == bytecode.RollbackClass {
			continue
		}
		if epc := compensationExit(m, h); epc >= 0 {
			if h.From == ep+1 {
				p.exits[epc] = true
			}
			continue
		}
		for pc := h.From; pc < h.To && pc < len(m.Code); pc++ {
			if len(visited[pc]) > 0 {
				p.clean = false
			}
		}
	}
	return p
}

// compensationExit reports the MONITOREXIT pc of a rewriter-shaped
// monitor-compensation handler — a body of exactly `load k; monitorexit;
// rethrow` — or -1 for any other handler.
func compensationExit(m *bytecode.Method, h bytecode.Handler) int {
	t := h.Target
	if t >= 0 && t+2 < len(m.Code) &&
		m.Code[t].Op == bytecode.LOAD &&
		m.Code[t+1].Op == bytecode.MONITOREXIT &&
		m.Code[t+2].Op == bytecode.RETHROW {
		return t + 1
	}
	return -1
}

// allocSite locates one reachable NEWOBJ instruction.
type allocSite struct {
	mi *methodInfo
	pc int
}

// allocIndex maps each reachable allocation's behavioral lock name
// ("new:Class@method@pc") to its site.
func (f *Facts) allocIndex() map[string]allocSite {
	allocs := make(map[string]allocSite)
	for _, m := range f.prog.Methods {
		mi := f.methods[m.Name]
		for pc, in := range m.Code {
			if in.Op == bytecode.NEWOBJ && mi.depth[pc] >= 0 {
				allocs[fmt.Sprintf("new:%s@%s@%d", in.S, m.Name, pc)] = allocSite{mi, pc}
			}
		}
	}
	return allocs
}

// confinedReceiverSlots returns the field slot names ("field:#N") whose
// every thread-reachable access dereferences a receiver that must-alias a
// thread-confined allocation site. The lockset pass cannot credit a
// multi-instance lock with protecting such a slot (two threads may hold
// two distinct instances), but confinement is the stronger fact: each
// instance is reachable only by its allocating thread, so no access pair
// on the slot can ever be concurrent. The symbolic name dataflow
// (contracts.go) supplies must-alias — its flat lattice drops to unknown
// on any merge of distinct origins — and allocEscape supplies the
// confinement proof per origin site. computeRaces subtracts these slots
// from the candidate race set, which in turn lets the race-free
// certificate pass cover them.
func (f *Facts) confinedReceiverSlots() map[string]bool {
	allocs := f.allocIndex()
	reach := f.threadReachability()
	classOf := make(map[string]string)
	siteConfined := func(name string) bool {
		cls, ok := classOf[name]
		if !ok {
			if site, found := allocs[name]; found {
				cls = f.allocEscape(site.mi, site.pc).class()
			} else {
				cls = UnknownClass
			}
			classOf[name] = cls
		}
		return cls == ConfinedClass
	}
	allConfined := make(map[string]bool)
	for _, m := range f.prog.Methods {
		if len(reach[m.Name]) == 0 {
			continue
		}
		mi := f.methods[m.Name]
		var states []*nameState
		statesDone := false
		for pc, in := range m.Code {
			var slot string
			var recvDepth int
			switch in.Op {
			case bytecode.GETFIELD:
				slot, recvDepth = fmt.Sprintf("field:#%d", in.A), 1
			case bytecode.PUTFIELD, bytecode.PUTFIELDRAW:
				slot, recvDepth = fmt.Sprintf("field:#%d", in.A), 2
			default:
				continue
			}
			if mi.depth[pc] < 0 {
				continue
			}
			if _, ok := allConfined[slot]; !ok {
				allConfined[slot] = true
			}
			if !statesDone {
				states = f.nameStates(mi)
				statesDone = true
			}
			name := ""
			if states != nil && states[pc] != nil && len(states[pc].stack) >= recvDepth {
				name = states[pc].stack[len(states[pc].stack)-recvDepth]
			}
			if !strings.HasPrefix(name, "new:") || !siteConfined(name) {
				allConfined[slot] = false
			}
		}
	}
	out := make(map[string]bool)
	for slot, ok := range allConfined {
		if ok {
			out[slot] = true
		}
	}
	return out
}

// escapeResults is the pure derivation shared by computeEscape (which
// caches it on Facts) and VerifyCertificates (which re-derives it to
// check the certificate set): the confinement classification of every
// acquired multi-instance lock name, and the elidable confined
// MONITORENTER sites with their paired exit pcs.
func (f *Facts) escapeResults() (confs []Confinement, elide map[Pos][]int) {
	// Behavioral name and acquisition sites per multi-instance lock.
	lockOf := make(map[Pos]string, len(f.Sections))
	sites := make(map[string][]Pos)
	for _, s := range f.Sections {
		name := s.Lock
		if !s.SyncMethod {
			name = f.behavLockID(f.methods[s.Enter.Method], s.Enter.PC)
		}
		lockOf[s.Enter] = name
		if multiInstance(name) {
			sites[name] = append(sites[name], s.Enter)
		}
	}

	// Allocation-site index: behavioral name -> (method, NEWOBJ pc).
	allocs := f.allocIndex()

	reach := f.threadReachability()
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)

	escOf := make(map[string]escInfo)
	for _, name := range names {
		sortPos(sites[name])
		c := Confinement{Lock: name, Sites: sites[name]}
		switch {
		case strings.HasPrefix(name, "new:"):
			site, ok := allocs[name]
			if !ok {
				c.Class = UnknownClass
				c.Reason = "allocation site not found in this program"
				break
			}
			info := f.allocEscape(site.mi, site.pc)
			escOf[name] = info
			c.Class = info.class()
			at := Pos{site.mi.m.Name, site.pc}
			switch c.Class {
			case ConfinedClass:
				c.Reason = fmt.Sprintf("allocation at %v never escapes: no alias is stored to the heap, spawned, returned or passed on", at)
			case SharedClass:
				c.Reason = fmt.Sprintf("allocation at %v escapes: an alias is stored into the heap or published to a spawned thread", at)
			default:
				c.Reason = fmt.Sprintf("allocation at %v flows into a call, native or return; confinement undecidable", at)
			}
		default: // field:#N / array:elem
			threads := make(map[string]bool)
			for _, p := range sites[name] {
				for t := range reach[p.Method] {
					threads[t] = true
				}
			}
			if len(threads) <= 1 {
				c.Class = ConfinedClass
				c.Reason = "every acquiring method is reachable by at most one thread identity"
			} else {
				ts := make([]string, 0, len(threads))
				for t := range threads {
					ts = append(ts, t)
				}
				sort.Strings(ts)
				c.Class = SharedClass
				c.Reason = fmt.Sprintf("acquiring methods reachable by %d thread identities (%s)", len(ts), strings.Join(ts, ","))
			}
		}
		confs = append(confs, c)
	}

	// Whole-monitor elision: confined, never-waited "new:" locks whose
	// explicit MONITORENTER brackets exactly, with exits used by no other
	// enter in the method.
	elide = make(map[Pos][]int)
	type enterInfo struct {
		pos Pos
		p   pairing
	}
	byMethod := make(map[string][]enterInfo)
	for _, s := range f.Sections {
		if s.SyncMethod {
			continue
		}
		name := lockOf[s.Enter]
		info, ok := escOf[name]
		if !ok || info.class() != ConfinedClass || info.synced {
			continue
		}
		mi := f.methods[s.Enter.Method]
		byMethod[s.Enter.Method] = append(byMethod[s.Enter.Method],
			enterInfo{s.Enter, monitorPairing(mi.m, s.Enter.PC)})
	}
	methodsWith := make([]string, 0, len(byMethod))
	for name := range byMethod {
		methodsWith = append(methodsWith, name)
	}
	sort.Strings(methodsWith)
	for _, mname := range methodsWith {
		mi := f.methods[mname]
		// Exit exclusivity must account for EVERY enter in the method, not
		// just the candidates: a non-confined enter sharing an exit pc with
		// a confined one makes the exit's runtime behavior ambiguous.
		users := make(map[int]int)
		poisoned := false
		for pc, in := range mi.m.Code {
			if in.Op != bytecode.MONITORENTER || mi.depth[pc] < 0 {
				continue
			}
			p := monitorPairing(mi.m, pc)
			if p.poison {
				poisoned = true
			}
			for e := range p.exits {
				users[e]++
			}
		}
		for _, ei := range byMethod[mname] {
			if !ei.p.clean || poisoned {
				continue
			}
			exclusive := true
			exits := make([]int, 0, len(ei.p.exits))
			for e := range ei.p.exits {
				if users[e] != 1 {
					exclusive = false
				}
				exits = append(exits, e)
			}
			if !exclusive {
				continue
			}
			sort.Ints(exits)
			elide[ei.pos] = exits
		}
	}
	return confs, elide
}

// computeEscape runs the confinement classification and caches its
// results on Facts. Runs after computeRaces (threadReachability shape)
// and before computePermissions (which certifies the elision sites).
func (f *Facts) computeEscape() {
	f.Confinements, f.confined = f.escapeResults()
}

// ConfinedExits returns the MONITOREXIT pcs paired with the confined,
// elidable MONITORENTER at (method, pc); ok is false when the enter is
// not an elision site. Callers must still demand the CertConfined
// certificates via RequireCert before acting.
func (f *Facts) ConfinedExits(method string, pc int) ([]int, bool) {
	exits, ok := f.confined[Pos{method, pc}]
	return exits, ok
}

// LockConfinement returns the confinement class of a behavioral lock
// name, or "" when the name was not classified (not acquired, or not a
// multi-instance name).
func (f *Facts) LockConfinement(lock string) string {
	for _, c := range f.Confinements {
		if c.Lock == lock {
			return c.Class
		}
	}
	return ""
}

// EscapeRegressions returns the allocation-site ("new:") lock names that
// failed confinement — the findings rvmlint -fail-on-escape-regression
// turns into a non-zero exit. Field/array names are excluded: sharing a
// heap-reachable lock is normal, publishing a scratch object is the
// regression.
func (f *Facts) EscapeRegressions() []Confinement {
	var out []Confinement
	for _, c := range f.Confinements {
		if strings.HasPrefix(c.Lock, "new:") && c.Class != ConfinedClass {
			out = append(out, c)
		}
	}
	return out
}

// ConfinedElisionSites counts the certified whole-monitor elision sites
// (enter and exit instructions both count — each compiles to a no-op).
func (f *Facts) ConfinedElisionSites() int {
	n := 0
	for _, exits := range f.confined {
		n += 1 + len(exits)
	}
	return n
}

// RaceFreeSlotNames returns the slot names carried by the issued
// race-free certificates — by construction, exactly the obligation set
// VerifyCertificates re-derives.
func (f *Facts) RaceFreeSlotNames() map[string]bool {
	out := make(map[string]bool)
	for _, c := range f.Certs {
		if c.Kind == CertRaceFree {
			out[c.Slot] = true
		}
	}
	return out
}

// raceFreeObligations derives the certified-race-free slot set: every
// heap slot accessed from thread-reachable code that no candidate race
// and no volatile-bypass finding names, anchored at its first access
// position. The lockset pass over-approximates reachable accesses and
// under-approximates protection, so a slot outside its finding set is
// race-free on every execution; the anchor makes the obligation a
// (method, pc, kind) key like every other certificate.
func (f *Facts) raceFreeObligations() map[string]Pos {
	reach := f.threadReachability()
	first := make(map[string]Pos)
	note := func(slot string, pos Pos) {
		cur, ok := first[slot]
		if !ok || pos.Method < cur.Method || (pos.Method == cur.Method && pos.PC < cur.PC) {
			first[slot] = pos
		}
	}
	staticSlot := func(idx int) string {
		if idx >= 0 && idx < len(f.prog.Statics) {
			return "static:" + f.prog.Statics[idx].Name
		}
		return fmt.Sprintf("static:#%d", idx)
	}
	for _, m := range f.prog.Methods {
		if len(reach[m.Name]) == 0 {
			continue
		}
		mi := f.methods[m.Name]
		for pc, in := range m.Code {
			if mi.depth[pc] < 0 {
				continue
			}
			pos := Pos{m.Name, pc}
			switch in.Op {
			case bytecode.GETSTATIC, bytecode.PUTSTATIC, bytecode.PUTSTATICRAW:
				note(staticSlot(in.A), pos)
			case bytecode.GETFIELD, bytecode.PUTFIELD, bytecode.PUTFIELDRAW:
				note(fmt.Sprintf("field:#%d", in.A), pos)
			case bytecode.ALOAD, bytecode.ASTORE, bytecode.ASTORERAW:
				note("array:elem", pos)
			}
		}
	}
	for slot := range f.RaceSlots() {
		delete(first, slot)
	}
	return first
}

// RenderEscape formats the confinement findings as deterministic text
// (the rvmlint -escape section).
func (f *Facts) RenderEscape() string {
	var b strings.Builder
	var nc, ns, nu int
	for _, c := range f.Confinements {
		switch c.Class {
		case ConfinedClass:
			nc++
		case SharedClass:
			ns++
		default:
			nu++
		}
	}
	fmt.Fprintf(&b, "confinement: %d multi-instance locks (%d thread-confined, %d shared, %d unknown)\n",
		len(f.Confinements), nc, ns, nu)
	for _, c := range f.Confinements {
		fmt.Fprintf(&b, "  %s  %s\n    %s\n", c.Lock, c.Class, c.Reason)
		for _, p := range c.Sites {
			if exits, ok := f.confined[p]; ok {
				fmt.Fprintf(&b, "    elide whole monitor at %v (exit pcs %v)\n", p, exits)
			}
		}
	}
	obls := make([]string, 0)
	for _, c := range f.Certs {
		if c.Kind == CertRaceFree {
			obls = append(obls, fmt.Sprintf("  %s  first access at %v", c.Slot, c.Pos))
		}
	}
	fmt.Fprintf(&b, "race-free slots: %d certified\n", len(obls))
	sort.Strings(obls)
	for _, l := range obls {
		b.WriteString(l + "\n")
	}
	return b.String()
}
