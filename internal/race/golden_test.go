package race_test

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/race"
	"repro/internal/rewrite"
	"repro/internal/sched"
	"repro/internal/simtime"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExampleReportsGolden pins the exact rvmrun -race report text for the
// seeded racy examples: the same pipeline and defaults as the CLI
// (rewrite on, revocation mode, quantum 1000, seed 0), so the goldens in
// examples/racy/ double as the documented expected output.
func TestExampleReportsGolden(t *testing.T) {
	for _, name := range []string{"counter", "volbypass"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("..", "..", "examples", "racy")
			text, err := os.ReadFile(filepath.Join(dir, name+".rvm"))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := bytecode.Assemble(string(text))
			if err != nil {
				t.Fatal(err)
			}
			if err := bytecode.Verify(prog); err != nil {
				t.Fatal(err)
			}
			prog, err = rewrite.Rewrite(prog)
			if err != nil {
				t.Fatal(err)
			}
			detector := race.New()
			rt := core.New(core.Config{
				Mode:              core.Revocation,
				TrackDependencies: true,
				DeadlockDetection: true,
				Race:              detector,
				Sched:             sched.Config{Quantum: simtime.Ticks(1000)},
			})
			if _, err := interp.Run(rt, prog, interp.Options{Rewritten: true, Out: io.Discard}); err != nil {
				t.Fatal(err)
			}
			got := race.RenderReports(detector.Finalize())

			golden := filepath.Join(dir, name+".race.expected")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("report drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}
