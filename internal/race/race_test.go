package race_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/monitor"
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/simtime"
)

var (
	slotS = race.Slot{Kind: heap.KindStatic, Idx: 0}
	slotD = race.Slot{Kind: heap.KindStatic, Idx: 1}
	siteA = race.Site{Method: "a", PC: 1}
	siteB = race.Site{Method: "b", PC: 2}
)

// newDetector returns an unbound detector with two named threads — slot
// names fall back to "static:#N", which is all these tests need.
func newDetector() *race.Detector {
	d := race.New()
	d.ThreadStart(1, "T1")
	d.ThreadStart(2, "T2")
	return d
}

func TestUnorderedWritesReported(t *testing.T) {
	d := newDetector()
	d.Write(1, slotS, siteA)
	d.Write(2, slotS, siteB)
	reports := d.Finalize()
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1: %v", len(reports), reports)
	}
	r := reports[0]
	if r.Kind != "write-write" || r.Slot != "static:#0" ||
		r.Prev.Thread != "T1" || r.Cur.Thread != "T2" {
		t.Errorf("wrong report: %v", r)
	}
}

func TestMonitorOrderingSuppresses(t *testing.T) {
	d := newDetector()
	m := monitor.New(nil, "M")
	d.Acquire(1, m)
	d.Write(1, slotS, siteA)
	d.Release(1, m)
	d.Acquire(2, m)
	d.Write(2, slotS, siteB)
	d.Read(2, slotS, siteB)
	d.Release(2, m)
	if reports := d.Finalize(); len(reports) != 0 {
		t.Fatalf("lock-ordered accesses reported as races: %v", reports)
	}
}

// TestVolatilePublication: volatile-volatile pairs never race, and the
// acquire performed by a volatile read orders earlier plain writes too
// (the safe-publication idiom the volbypass example breaks).
func TestVolatilePublication(t *testing.T) {
	d := newDetector()
	d.Write(1, slotD, siteA)         // data
	d.VolatileWrite(1, slotS, siteA) // flag release
	d.VolatileRead(2, slotS, siteB)  // flag acquire
	d.Read(2, slotD, siteB)          // data: ordered by the flag edge
	if reports := d.Finalize(); len(reports) != 0 {
		t.Fatalf("volatile publication reported as race: %v", reports)
	}
}

// TestRawVsVolatileReported: a barrier-elided raw store to a volatile slot
// publishes nothing, so a subsequent volatile read races with it — the
// dynamic face of the static raw-store volatile-bypass finding.
func TestRawVsVolatileReported(t *testing.T) {
	d := newDetector()
	d.RawWrite(1, slotS, siteA)
	d.VolatileRead(2, slotS, siteB)
	reports := d.Finalize()
	if len(reports) != 1 || reports[0].Kind != "write-read" {
		t.Fatalf("raw-vs-volatile not reported: %v", reports)
	}
}

// TestRollbackRetractsAccess: an access made inside a revoked section must
// not ground any later report — its slot metadata is restored wholesale.
func TestRollbackRetractsAccess(t *testing.T) {
	d := newDetector()
	d.SectionEnter(1)
	d.Write(1, slotS, siteA)
	d.SectionRollback(1, 0)
	d.Write(2, slotS, siteB) // would race with the retracted write
	if reports := d.Finalize(); len(reports) != 0 {
		t.Fatalf("retracted access grounded a report: %v", reports)
	}
	_, _, retracted := d.Stats()
	if retracted != 1 {
		t.Errorf("retracted accesses = %d, want 1", retracted)
	}
}

// TestPendingReportDroppedOnRollback: a report already filed against an
// access is withdrawn when that access is rolled back — reports stay
// pending until both endpoints are beyond their rollback horizon.
func TestPendingReportDroppedOnRollback(t *testing.T) {
	d := newDetector()
	d.SectionEnter(1)
	d.Write(1, slotS, siteA)
	d.Read(2, slotS, siteB) // files a pending write-read report
	d.SectionRollback(1, 0)
	if reports := d.Finalize(); len(reports) != 0 {
		t.Fatalf("report with retracted endpoint survived: %v", reports)
	}
	_, dropped, _ := d.Stats()
	if dropped != 1 {
		t.Errorf("dropped reports = %d, want 1", dropped)
	}
}

// TestCommitConfirmsPending is the converse: the same interleaving with a
// commit instead of a rollback emits the report.
func TestCommitConfirmsPending(t *testing.T) {
	d := newDetector()
	d.SectionEnter(1)
	d.Write(1, slotS, siteA)
	d.Read(2, slotS, siteB)
	d.SectionCommit(1)
	reports := d.Finalize()
	if len(reports) != 1 || reports[0].Kind != "write-read" {
		t.Fatalf("committed race not reported: %v", reports)
	}
}

// TestRevocationTransparencyProperty is the satellite property test: a
// program whose only unsynchronized write happens on the first attempt of
// an always-revoked section produces ZERO dynamic reports — the retraction
// makes the revoked attempt invisible, exactly like its heap effects. The
// converse program, identical except the re-execution writes too, must
// report. Both halves also assert a rollback really happened, so the
// "always-revoked" premise is checked, not assumed.
func TestRevocationTransparencyProperty(t *testing.T) {
	prop := func(seed int64, workSel uint8) bool {
		work := simtime.Ticks(3000 + int64(workSel)*37)
		for _, writeAlways := range []bool{false, true} {
			detector := race.New()
			rt := core.New(core.Config{
				Mode:              core.Revocation,
				TrackDependencies: true,
				Race:              detector,
				Sched:             sched.Config{Quantum: 1000, Seed: seed},
			})
			s := rt.Heap().DefineStatic("S", false, 0)
			m := rt.NewMonitor("M")
			attempt := 0
			rt.Spawn("victim", sched.LowPriority, func(tk *core.Task) {
				tk.Synchronized(m, func() {
					attempt++
					if attempt == 1 || writeAlways {
						tk.WriteStatic(s, 42)
					}
					tk.Work(work)
				})
			})
			rt.Spawn("revoker", sched.HighPriority, func(tk *core.Task) {
				tk.Sleep(100) // let the victim enter first, then preempt it
				tk.Synchronized(m, func() {})
			})
			rt.Spawn("reader", sched.LowPriority, func(tk *core.Task) {
				tk.Sleep(4 * work) // read unsynchronized, after the commit
				tk.ReadStatic(s)
			})
			if err := rt.Run(); err != nil {
				t.Logf("seed %d writeAlways=%v: %v", seed, writeAlways, err)
				return false
			}
			if rt.Stats().Rollbacks == 0 {
				t.Logf("seed %d writeAlways=%v: no rollback happened", seed, writeAlways)
				return false
			}
			reports := detector.Finalize()
			if writeAlways && len(reports) == 0 {
				t.Logf("seed %d: committed unsynchronized write not reported", seed)
				return false
			}
			if !writeAlways && len(reports) != 0 {
				t.Logf("seed %d: rolled-back write grounded reports: %v", seed, reports)
				return false
			}
			if !writeAlways {
				_, _, retracted := detector.Stats()
				if retracted == 0 {
					t.Logf("seed %d: write was never retracted", seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
