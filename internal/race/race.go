// Package race is the dynamic half of the data-race sanitizer: a
// vector-clock happens-before detector in the FastTrack style (per-thread
// epochs, a last-write epoch and a per-thread read map on every checked
// slot), wired into the runtime's read/write barriers via core.Config.Race.
//
// Synchronization edges follow the Java memory model as the runtime
// implements it: MONITOREXIT releases (publishes the owner's vector clock
// into the monitor), MONITORENTER acquires (joins it), a volatile write
// releases into the slot's own clock and a volatile read acquires from it.
// Volatile accesses additionally run the slot check themselves, so a plain
// (or barrier-elided raw) access racing against a volatile one is reported —
// the dynamic face of the static pass's volatile-bypass finding — while
// volatile-volatile pairs are ordered by the acquire they just performed and
// never report.
//
// The paper-specific wrinkle is rollback-awareness (§2.2: a revoked section
// must behave "as if it never executed"). Every checked access is recorded
// in a per-thread history aligned with the task's section frames; when a
// section is revoked, the history is retracted alongside the undo log: slot
// metadata is restored where the aborted access is still current, and any
// race report with a retracted endpoint is dropped. Reports are therefore
// held PENDING until both endpoints can no longer be rolled back — at the
// outermost commit, at a wait (which either publishes the prefix or marks
// the nest non-revocable), at thread end, or at Finalize — and only then
// emitted as trace.RaceDetected events.
//
// Deliberately, a rollback's ForceRelease does NOT publish the victim's
// clock into the monitor: JMM-wise the aborted critical section never
// happened, so there is no synchronizes-with edge until the re-execution's
// real release. See DESIGN.md §9.
package race

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/heap"
	"repro/internal/monitor"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Site is the bytecode location of an access ("method@pc"); the zero value
// renders as "?" for accesses performed through the Go-level core API.
type Site struct {
	Method string
	PC     int
}

func (s Site) String() string {
	if s.Method == "" {
		return "?"
	}
	return fmt.Sprintf("%s@%d", s.Method, s.PC)
}

// Slot identifies one checked memory location.
type Slot struct {
	Kind heap.Kind // KindObject, KindArray or KindStatic
	ID   uint64    // object/array id; unused for statics
	Idx  int       // field index, element index, or static offset
}

// vclock is a sparse vector clock: thread id → last-synchronized epoch.
type vclock map[int]uint64

func (v vclock) copyInto(dst vclock) vclock {
	if dst == nil {
		dst = make(vclock, len(v))
	}
	for k := range dst {
		delete(dst, k)
	}
	for k, c := range v {
		dst[k] = c
	}
	return dst
}

func (v vclock) join(o vclock) {
	for k, c := range o {
		if c > v[k] {
			v[k] = c
		}
	}
}

// access is one epoch-stamped slot access.
type access struct {
	tid  int
	clk  uint64 // the accessor's own epoch at access time
	seq  int64  // per-thread monotone sequence number (never reused)
	site Site
	at   simtime.Ticks
	vol  bool // performed with volatile semantics
	raw  bool // barrier-elided store: survives rollback, never retracted
}

func (a access) valid() bool { return a.tid != 0 || a.clk != 0 || a.seq != 0 }

// varState is the FastTrack-style per-slot metadata: the last write epoch
// and the last read epoch per thread since that write.
type varState struct {
	w     access
	reads map[int]access
}

// record is one history entry: enough to restore the slot metadata the
// access displaced, replayed in reverse on retraction.
type record struct {
	slot      Slot
	isWrite   bool
	raw       bool
	acc       access         // the access this record installed
	prevW     access         // write: displaced last-write
	prevReads map[int]access // write: displaced read map (ownership moved)
	prevRead  access         // read: displaced same-thread read entry
	hadRead   bool
}

// threadState is the per-thread detector state.
type threadState struct {
	name    string
	clk     uint64
	vc      vclock
	history []record
	// marks[i] is the history length when section frame i was entered;
	// aligned with the task's frame stack.
	marks []int
	// finalSeq: accesses with seq < finalSeq can no longer be rolled back.
	finalSeq int64
	nextSeq  int64
	// retracted holds the seqs of rolled-back accesses (consulted when a
	// pending report's endpoint is checked).
	retracted map[int64]bool
}

// Endpoint is one side of a race report.
type Endpoint struct {
	Thread string
	Site   string
	Write  bool
	At     simtime.Ticks

	tid int
	seq int64
}

// Report is one confirmed (post-finality) data race.
type Report struct {
	Slot  string // canonical slot name: "static:NAME", "field:#I", "array:elem"
	Kind  string // "write-write", "read-write" (earlier read) or "write-read"
	Prev  Endpoint
	Cur   Endpoint
	Count int64 // deduplicated occurrences of this (slot, kind, site-pair)
}

func (r Report) String() string {
	return fmt.Sprintf("%s %s prev=%s (%s) cur=%s (%s) count=%d",
		r.Kind, r.Slot, r.Prev.Site, r.Prev.Thread, r.Cur.Site, r.Cur.Thread, r.Count)
}

// reportKey dedups structurally identical races.
type reportKey struct {
	slot, kind         string
	prevSite, curSite  string
	prevWrite, curWrit bool
}

// pending is a not-yet-final report plus its dedup key.
type pending struct {
	rep     Report
	key     reportKey
	emitted bool
}

// Detector is the dynamic sanitizer. One instance serves one runtime; the
// uniprocessor scheduler serializes all calls. The zero cost of a disabled
// sanitizer is achieved by core checking Config.Race == nil, not here.
type Detector struct {
	hp   *heap.Heap
	sink trace.Sink
	now  func() simtime.Ticks

	threads map[int]*threadState
	mons    map[*monitor.Monitor]vclock
	volVC   map[Slot]vclock
	vars    map[Slot]*varState

	pend    []*pending
	byKey   map[reportKey]*pending
	reports []Report

	detected int64 // reports emitted
	dropped  int64 // pending reports retracted by rollbacks
	accesses int64
	retracts int64 // access records retracted

	// certFree holds the certified race-free slot names installed by
	// SetCertifiedRaceFree; certSkip caches the per-Slot decision so the
	// hot path never renders a slot name twice.
	certFree map[string]bool
	certSkip map[Slot]bool
	skipped  int64
}

// New returns an unbound detector; core's Runtime binds it at construction.
func New() *Detector {
	return &Detector{
		threads: make(map[int]*threadState),
		mons:    make(map[*monitor.Monitor]vclock),
		volVC:   make(map[Slot]vclock),
		vars:    make(map[Slot]*varState),
		byKey:   make(map[reportKey]*pending),
		now:     func() simtime.Ticks { return 0 },
		sink:    trace.Discard,
	}
}

// Bind attaches the detector to the runtime's heap (for slot names), tracer
// (RaceDetected emission) and virtual clock. Called once by core.New.
func (d *Detector) Bind(hp *heap.Heap, sink trace.Sink, now func() simtime.Ticks) {
	d.hp = hp
	if sink != nil {
		d.sink = sink
	}
	if now != nil {
		d.now = now
	}
}

func (d *Detector) ts(tid int) *threadState {
	t, ok := d.threads[tid]
	if !ok {
		t = &threadState{
			clk:       1,
			vc:        vclock{tid: 1},
			retracted: make(map[int64]bool),
			name:      fmt.Sprintf("thread-%d", tid),
		}
		d.threads[tid] = t
	}
	return t
}

// ThreadStart names a thread. Threads synchronize-with their spawner only
// through real monitor/volatile edges; the runtime spawns all declared
// threads before any runs, so no start edge exists to model.
func (d *Detector) ThreadStart(tid int, name string) {
	t := d.ts(tid)
	t.name = name
}

// ThreadEnd finalizes a finished thread's history: with no frames left it
// can never roll anything back again.
func (d *Detector) ThreadEnd(tid int) {
	t := d.ts(tid)
	t.finalSeq = t.nextSeq
	t.history = t.history[:0]
	d.flush()
}

// ---------------------------------------------------------------------------
// Synchronization edges.

// Acquire joins the monitor's release clock into the thread's clock
// (MONITORENTER / wait re-acquire).
func (d *Detector) Acquire(tid int, m *monitor.Monitor) {
	if lm, ok := d.mons[m]; ok {
		d.ts(tid).vc.join(lm)
	}
}

// Release publishes the thread's clock into the monitor and advances the
// thread's epoch (MONITOREXIT / wait release). Rollback's ForceRelease
// deliberately does NOT call this: the aborted section never happened.
func (d *Detector) Release(tid int, m *monitor.Monitor) {
	t := d.ts(tid)
	d.mons[m] = t.vc.copyInto(d.mons[m])
	t.clk++
	t.vc[tid] = t.clk
}

// ---------------------------------------------------------------------------
// Section lifecycle (rollback-awareness).

// SectionEnter pushes a history mark aligned with the task's new frame.
func (d *Detector) SectionEnter(tid int) {
	t := d.ts(tid)
	t.marks = append(t.marks, len(t.history))
}

// SectionCommit pops the top mark. On the outermost commit every access of
// the nest becomes permanent: the history is finalized and any pending
// report whose endpoints are now both final is emitted.
func (d *Detector) SectionCommit(tid int) {
	t := d.ts(tid)
	if n := len(t.marks); n > 0 {
		t.marks = t.marks[:n-1]
	}
	if len(t.marks) == 0 {
		t.finalSeq = t.nextSeq
		t.history = t.history[:0]
		d.flush()
	}
}

// SectionRollback retracts every access recorded since frame idx was
// entered — the revoked attempt's accesses "never happened". Raw stores are
// skipped: their heap effects survive the undo replay, so their metadata
// must too. Called by core.deliverRevocation after the undo-log replay;
// marks above idx are discarded with their frames.
func (d *Detector) SectionRollback(tid int, idx int) {
	t := d.ts(tid)
	if idx >= len(t.marks) {
		return
	}
	mark := t.marks[idx]
	for i := len(t.history) - 1; i >= mark; i-- {
		rec := &t.history[i]
		if rec.raw {
			continue
		}
		t.retracted[rec.acc.seq] = true
		d.retracts++
		d.retract(rec)
	}
	t.history = t.history[:mark]
	t.marks = t.marks[:idx]
	d.dropRetracted()
}

// WaitTruncate handles the rollback-horizon move at Object.wait: whether
// the wait published the log prefix (non-nested) or marked the whole nest
// non-revocable (nested), no access made so far can be rolled back anymore.
// The history is finalized and all live marks jump to the new origin.
func (d *Detector) WaitTruncate(tid int) {
	t := d.ts(tid)
	t.finalSeq = t.nextSeq
	t.history = t.history[:0]
	for i := range t.marks {
		t.marks[i] = 0
	}
	d.flush()
}

// retract restores the slot metadata rec displaced, but only where rec's
// access is still current — a later access by another thread supersedes it
// and is not touched (its own report, if racy, was already filed against
// the retracted seq and will be dropped).
func (d *Detector) retract(rec *record) {
	vs := d.vars[rec.slot]
	if vs == nil {
		return
	}
	if rec.isWrite {
		if vs.w.tid == rec.acc.tid && vs.w.seq == rec.acc.seq {
			vs.w = rec.prevW
			// Keep reads that landed after our write (they are later than
			// the retracted access and belong to other threads); resurrect
			// the displaced ones where no newer entry exists.
			for tid, a := range rec.prevReads {
				if _, ok := vs.reads[tid]; !ok {
					if vs.reads == nil {
						vs.reads = make(map[int]access, 2)
					}
					vs.reads[tid] = a
				}
			}
		}
		return
	}
	if cur, ok := vs.reads[rec.acc.tid]; ok && cur.seq == rec.acc.seq {
		if rec.hadRead {
			vs.reads[rec.acc.tid] = rec.prevRead
		} else {
			delete(vs.reads, rec.acc.tid)
		}
	}
}

// dropRetracted removes pending reports with a retracted endpoint.
func (d *Detector) dropRetracted() {
	w := 0
	for _, p := range d.pend {
		dead := false
		for _, ep := range []Endpoint{p.rep.Prev, p.rep.Cur} {
			if ts, ok := d.threads[ep.tid]; ok && ts.retracted[ep.seq] {
				dead = true
			}
		}
		if dead {
			d.dropped++
			delete(d.byKey, p.key)
			continue
		}
		d.pend[w] = p
		w++
	}
	d.pend = d.pend[:w]
}

// ---------------------------------------------------------------------------
// Access checks.

func (d *Detector) slotName(s Slot) string {
	switch s.Kind {
	case heap.KindStatic:
		if d.hp != nil && s.Idx < d.hp.NumStatics() {
			return "static:" + d.hp.StaticName(s.Idx)
		}
		return fmt.Sprintf("static:#%d", s.Idx)
	case heap.KindArray:
		return "array:elem"
	default:
		return fmt.Sprintf("field:#%d", s.Idx)
	}
}

// hb reports whether access a happens-before thread t's current point.
func hb(a access, t *threadState) bool { return a.clk <= t.vc[a.tid] }

// Read checks and records a plain read (GETFIELD/GETSTATIC/ALOAD).
func (d *Detector) Read(tid int, slot Slot, site Site) { d.check(tid, slot, site, false, false, false) }

// Write checks and records a plain write (PUTFIELD/PUTSTATIC/ASTORE).
func (d *Detector) Write(tid int, slot Slot, site Site) { d.check(tid, slot, site, true, false, false) }

// RawWrite checks and records a barrier-elided store. Its heap effect
// survives any rollback, so the record is marked non-retractable.
func (d *Detector) RawWrite(tid int, slot Slot, site Site) {
	d.check(tid, slot, site, true, false, true)
}

// VolatileRead acquires from the slot's clock, then runs the check (so a
// racing plain write is still caught) with volatile semantics.
func (d *Detector) VolatileRead(tid int, slot Slot, site Site) {
	t := d.ts(tid)
	if lv, ok := d.volVC[slot]; ok {
		t.vc.join(lv)
	}
	d.check(tid, slot, site, false, true, false)
}

// VolatileWrite acquires from the slot's clock (volatile ops on one slot
// are totally ordered), runs the check, then releases into the slot.
func (d *Detector) VolatileWrite(tid int, slot Slot, site Site) {
	t := d.ts(tid)
	if lv, ok := d.volVC[slot]; ok {
		t.vc.join(lv)
	}
	d.check(tid, slot, site, true, true, false)
	d.volVC[slot] = t.vc.copyInto(d.volVC[slot])
	t.clk++
	t.vc[tid] = t.clk
}

// SetCertifiedRaceFree installs the certified race-free slot set (the
// slot names carried by the analysis' CertRaceFree certificates). Checks
// on those slots are skipped and counted; synchronization edges — monitor
// acquire/release and the volatile clock joins performed OUTSIDE check —
// are never skipped, so happens-before reasoning for every other slot is
// unchanged, and per-slot FastTrack state independence keeps the skip
// from perturbing any non-certified slot's verdicts.
func (d *Detector) SetCertifiedRaceFree(names map[string]bool) {
	if len(names) == 0 {
		return
	}
	d.certFree = names
	d.certSkip = make(map[Slot]bool)
}

// ChecksSkipped returns how many accesses were skipped on certified
// race-free slots.
func (d *Detector) ChecksSkipped() int64 { return d.skipped }

// check is the FastTrack slot check plus history recording.
func (d *Detector) check(tid int, slot Slot, site Site, isWrite, vol, raw bool) {
	if d.certFree != nil {
		sk, ok := d.certSkip[slot]
		if !ok {
			sk = d.certFree[d.slotName(slot)]
			d.certSkip[slot] = sk
		}
		if sk {
			d.skipped++
			return
		}
	}
	t := d.ts(tid)
	vs := d.vars[slot]
	if vs == nil {
		vs = &varState{}
		d.vars[slot] = vs
	}
	d.accesses++
	cur := access{tid: tid, clk: t.vc[tid], seq: t.nextSeq, site: site, at: d.now(), vol: vol, raw: raw}
	t.nextSeq++

	// Race checks against the displaced metadata. Volatile-volatile pairs
	// are ordered by the acquire performed just before this check.
	if vs.w.valid() && vs.w.tid != tid && !hb(vs.w, t) {
		kind := "write-read"
		if isWrite {
			kind = "write-write"
		}
		d.file(slot, kind, vs.w, cur)
	}
	if isWrite {
		for _, r := range vs.reads {
			if r.tid != tid && !hb(r, t) {
				d.file(slot, "read-write", r, cur)
			}
		}
	}

	// Record the displaced state, then install the access.
	rec := record{slot: slot, isWrite: isWrite, raw: raw, acc: cur}
	if isWrite {
		rec.prevW = vs.w
		rec.prevReads = vs.reads
		vs.w = cur
		vs.reads = nil
	} else {
		if prev, ok := vs.reads[tid]; ok {
			rec.prevRead = prev
			rec.hadRead = true
		}
		if vs.reads == nil {
			vs.reads = make(map[int]access, 2)
		}
		vs.reads[tid] = cur
	}
	if len(t.marks) > 0 && !raw {
		t.history = append(t.history, rec)
	} else {
		// Outside any section (or a raw store) the access can never be
		// rolled back: final immediately.
		if t.nextSeq > t.finalSeq && len(t.marks) == 0 {
			t.finalSeq = t.nextSeq
			d.flush()
		}
	}
}

// file records a candidate report, deduplicated by (slot, kind, site pair).
func (d *Detector) file(slot Slot, kind string, prev, cur access) {
	name := d.slotName(slot)
	key := reportKey{
		slot: name, kind: kind,
		prevSite: prev.site.String(), curSite: cur.site.String(),
		prevWrite: kind == "write-write" || kind == "write-read",
		curWrit:   kind != "write-read",
	}
	if p, ok := d.byKey[key]; ok {
		p.rep.Count++
		return
	}
	p := &pending{
		key: key,
		rep: Report{
			Slot: name, Kind: kind, Count: 1,
			Prev: Endpoint{Thread: d.ts(prev.tid).name, Site: prev.site.String(), Write: key.prevWrite, At: prev.at, tid: prev.tid, seq: prev.seq},
			Cur:  Endpoint{Thread: d.ts(cur.tid).name, Site: cur.site.String(), Write: key.curWrit, At: cur.at, tid: cur.tid, seq: cur.seq},
		},
	}
	d.pend = append(d.pend, p)
	d.byKey[key] = p
}

// ---------------------------------------------------------------------------
// Finality and emission.

func (d *Detector) final(ep Endpoint) bool {
	t, ok := d.threads[ep.tid]
	return ok && ep.seq < t.finalSeq && !t.retracted[ep.seq]
}

// flush emits every pending report whose endpoints are both final.
func (d *Detector) flush() {
	w := 0
	for _, p := range d.pend {
		if !d.final(p.rep.Prev) || !d.final(p.rep.Cur) {
			d.pend[w] = p
			w++
			continue
		}
		d.emit(p)
	}
	d.pend = d.pend[:w]
}

func (d *Detector) emit(p *pending) {
	if p.emitted {
		return
	}
	p.emitted = true
	d.detected++
	d.reports = append(d.reports, p.rep)
	d.sink.Emit(trace.Event{
		At: d.now(), Kind: trace.RaceDetected,
		Thread: p.rep.Cur.Thread, Object: p.rep.Slot, Other: p.rep.Prev.Thread,
		N:      p.rep.Count,
		Detail: fmt.Sprintf("%s prev=%s cur=%s", p.rep.Kind, p.rep.Prev.Site, p.rep.Cur.Site),
	})
}

// Finalize ends the run: every surviving access is permanent, so every
// surviving pending report is emitted. It returns all reports in
// deterministic order (slot, kind, sites). Idempotent.
func (d *Detector) Finalize() []Report {
	for _, t := range d.threads {
		t.finalSeq = t.nextSeq
	}
	d.flush()
	return d.Reports()
}

// Reports returns the reports emitted so far, sorted deterministically.
func (d *Detector) Reports() []Report {
	out := append([]Report(nil), d.reports...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Prev.Site != b.Prev.Site {
			return a.Prev.Site < b.Prev.Site
		}
		return a.Cur.Site < b.Cur.Site
	})
	return out
}

// Stats returns (reports emitted, pending reports dropped by retraction,
// access records retracted).
func (d *Detector) Stats() (detected, droppedReports, retractedAccesses int64) {
	return d.detected, d.dropped, d.retracts
}

// RenderReports formats reports as the deterministic text block rvmrun
// -race prints and examples/racy pins as expected output.
func RenderReports(reports []Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "dynamic races: %d\n", len(reports))
	for _, r := range reports {
		fmt.Fprintf(&b, "  race: %s\n", r)
	}
	return b.String()
}
