package race_test

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/race"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

// TestDifferentialDynamicSubsetOfStatic cross-validates the two engines
// over every example program: any race the dynamic sanitizer observes at
// runtime must involve a slot the static lockset pass already named a
// candidate (race or volatile-bypass). The static pass over-approximates
// behavior (all interleavings) while the dynamic pass sees one schedule,
// so dynamic ⊆ static is the soundness contract between them; a violation
// means the lockset analysis wrongly proved a racing slot protected.
func TestDifferentialDynamicSubsetOfStatic(t *testing.T) {
	var srcs []string
	for _, dir := range []string{"bytecode", "racy"} {
		matches, err := filepath.Glob(filepath.Join("..", "..", "examples", dir, "*.rvm"))
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, matches...)
	}
	if len(srcs) < 5 {
		t.Fatalf("found only %d example programs: %v", len(srcs), srcs)
	}

	for _, src := range srcs {
		for _, tier := range []interp.Tier{interp.TierExec, interp.TierThreaded, interp.TierOpt} {
			src, tier := src, tier
			name := filepath.Base(src) + "/" + tier.String()
			t.Run(name, func(t *testing.T) {
				text, err := os.ReadFile(src)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := bytecode.Assemble(string(text))
				if err != nil {
					t.Fatal(err)
				}
				if err := bytecode.Verify(prog); err != nil {
					t.Fatal(err)
				}
				prog, err = rewrite.Rewrite(prog)
				if err != nil {
					t.Fatal(err)
				}
				// Analyze the program the VM executes (post-rewrite), exactly
				// as rvmrun -static does, so pcs and slots line up.
				facts, err := analysis.Analyze(prog)
				if err != nil {
					t.Fatal(err)
				}
				static := facts.RaceSlots()

				detector := race.New()
				rt := core.New(core.Config{
					Mode:              core.Revocation,
					TrackDependencies: true,
					DeadlockDetection: true,
					Race:              detector,
					Sched:             sched.Config{Quantum: 1000},
				})
				if _, err := interp.Run(rt, prog, interp.Options{
					Rewritten:        true,
					Tier:             tier,
					OptCallThreshold: 1,
					Out:              io.Discard,
				}); err != nil {
					t.Fatal(err)
				}
				for _, r := range detector.Finalize() {
					if !static[r.Slot] {
						t.Errorf("dynamic race on %s not in static candidate set %v\n  report: %v",
							r.Slot, keys(static), r)
					}
				}
			})
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
