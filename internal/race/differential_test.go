package race_test

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/race"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

// exampleCorpus globs the non-deadlocking example programs (the
// deadlocking corpus needs the deterministic revocation schedule and is
// cross-validated by the interp-side differential tests instead).
func exampleCorpus(t *testing.T) []string {
	t.Helper()
	var srcs []string
	for _, dir := range []string{"bytecode", "racy", "confined", "escape"} {
		matches, err := filepath.Glob(filepath.Join("..", "..", "examples", dir, "*.rvm"))
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, matches...)
	}
	if len(srcs) < 7 {
		t.Fatalf("found only %d example programs: %v", len(srcs), srcs)
	}
	return srcs
}

// TestDifferentialDynamicSubsetOfStatic cross-validates the two engines
// over every example program: any race the dynamic sanitizer observes at
// runtime must involve a slot the static lockset pass already named a
// candidate (race or volatile-bypass). The static pass over-approximates
// behavior (all interleavings) while the dynamic pass sees one schedule,
// so dynamic ⊆ static is the soundness contract between them; a violation
// means the lockset analysis wrongly proved a racing slot protected.
func TestDifferentialDynamicSubsetOfStatic(t *testing.T) {
	for _, src := range exampleCorpus(t) {
		for _, tier := range []interp.Tier{interp.TierExec, interp.TierThreaded, interp.TierOpt} {
			src, tier := src, tier
			name := filepath.Base(src) + "/" + tier.String()
			t.Run(name, func(t *testing.T) {
				text, err := os.ReadFile(src)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := bytecode.Assemble(string(text))
				if err != nil {
					t.Fatal(err)
				}
				if err := bytecode.Verify(prog); err != nil {
					t.Fatal(err)
				}
				prog, err = rewrite.Rewrite(prog)
				if err != nil {
					t.Fatal(err)
				}
				// Analyze the program the VM executes (post-rewrite), exactly
				// as rvmrun -static does, so pcs and slots line up.
				facts, err := analysis.Analyze(prog)
				if err != nil {
					t.Fatal(err)
				}
				static := facts.RaceSlots()

				detector := race.New()
				rt := core.New(core.Config{
					Mode:              core.Revocation,
					TrackDependencies: true,
					DeadlockDetection: true,
					Race:              detector,
					Sched:             sched.Config{Quantum: 1000},
				})
				if _, err := interp.Run(rt, prog, interp.Options{
					Rewritten:        true,
					Tier:             tier,
					OptCallThreshold: 1,
					Out:              io.Discard,
				}); err != nil {
					t.Fatal(err)
				}
				for _, r := range detector.Finalize() {
					if !static[r.Slot] {
						t.Errorf("dynamic race on %s not in static candidate set %v\n  report: %v",
							r.Slot, keys(static), r)
					}
				}
			})
		}
	}
}

// TestCertifiedSkipPreservesReports is the soundness property of the
// certificate-armed detector: loading the analysis's race-free
// certificates must only remove work, never reports. Over every example
// on every tier, the report set with certificates loaded is identical to
// the baseline's — a certified slot that produced a report would mean the
// static pass wrongly proved it race-free. The confined example keeps the
// property non-vacuous: its certified slot is accessed in the hot loop,
// so the armed detector must actually skip checks there.
func TestCertifiedSkipPreservesReports(t *testing.T) {
	sawSkips := false
	for _, src := range exampleCorpus(t) {
		for _, tier := range []interp.Tier{interp.TierExec, interp.TierThreaded, interp.TierOpt} {
			src, tier := src, tier
			t.Run(filepath.Base(src)+"/"+tier.String(), func(t *testing.T) {
				text, err := os.ReadFile(src)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := bytecode.Assemble(string(text))
				if err != nil {
					t.Fatal(err)
				}
				if err := bytecode.Verify(prog); err != nil {
					t.Fatal(err)
				}
				prog, err = rewrite.Rewrite(prog)
				if err != nil {
					t.Fatal(err)
				}
				facts, err := analysis.Analyze(prog)
				if err != nil {
					t.Fatal(err)
				}

				runOnce := func(certified bool) ([]race.Report, int64) {
					detector := race.New()
					if certified {
						detector.SetCertifiedRaceFree(facts.RaceFreeSlotNames())
					}
					rt := core.New(core.Config{
						Mode:              core.Revocation,
						TrackDependencies: true,
						DeadlockDetection: true,
						Race:              detector,
						Sched:             sched.Config{Quantum: 1000},
					})
					if _, err := interp.Run(rt, prog, interp.Options{
						Rewritten:        true,
						Tier:             tier,
						OptCallThreshold: 1,
						Out:              io.Discard,
					}); err != nil {
						t.Fatal(err)
					}
					return detector.Finalize(), detector.ChecksSkipped()
				}

				baseline, noSkips := runOnce(false)
				armed, skips := runOnce(true)
				if noSkips != 0 {
					t.Errorf("unarmed detector skipped %d checks", noSkips)
				}
				if skips > 0 {
					sawSkips = true
				}
				baseSlots, armedSlots := map[string]int{}, map[string]int{}
				for _, r := range baseline {
					baseSlots[r.Slot]++
				}
				for _, r := range armed {
					armedSlots[r.Slot]++
				}
				if len(baseSlots) != len(armedSlots) {
					t.Fatalf("certificates changed the report set: baseline %v, armed %v", baseSlots, armedSlots)
				}
				for slot, n := range baseSlots {
					if armedSlots[slot] != n {
						t.Errorf("certificates changed reports on %s: baseline %d, armed %d", slot, n, armedSlots[slot])
					}
				}
				for slot := range facts.RaceFreeSlotNames() {
					if baseSlots[slot] != 0 {
						t.Errorf("certified slot %s produced a dynamic report — static race-free proof is wrong", slot)
					}
				}
			})
		}
	}
	if !sawSkips {
		t.Error("property vacuous: no run skipped any certified checks")
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
