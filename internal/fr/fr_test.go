package fr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

// sampleEvents exercises every field shape: empty strings, repeated interned
// strings, negative N, detail churn.
func sampleEvents() []trace.Event {
	return []trace.Event{
		{At: 0, Kind: trace.ThreadStart, Thread: "high", N: 9},
		{At: 5, Kind: trace.MonitorEnter, Thread: "high", Object: "lock"},
		{At: 5, Kind: trace.MonitorAcquired, Thread: "high", Object: "lock"},
		{At: 9, Kind: trace.MonitorBlocked, Thread: "low", Object: "lock", Other: "high"},
		{At: 12, Kind: trace.Rollback, Thread: "low", Object: "lock", Other: "high", N: -3, Detail: "reason=inversion"},
		{At: 20, Kind: trace.ContextSwitch, Detail: "quantum"},
		{At: 31, Kind: trace.RaceDetected, Thread: "w2", Object: "slot#4", Other: "w1", N: 2},
		{At: 40, Kind: trace.ThreadEnd, Thread: "high"},
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := New(Config{Size: 1 << 16})
	want := sampleEvents()
	for _, e := range want {
		r.Emit(e)
	}
	got, err := r.Events()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %v\nwant %v", got, want)
	}
	if r.Wrapped() {
		t.Fatal("ring should not have wrapped")
	}
}

func TestRecorderEmitSteadyStateZeroAllocs(t *testing.T) {
	r := New(Config{Size: 1 << 16, Triggers: DefaultTriggers()})
	events := []trace.Event{
		{At: 1, Kind: trace.MonitorEnter, Thread: "worker-1", Object: "m0"},
		{At: 2, Kind: trace.MonitorAcquired, Thread: "worker-1", Object: "m0"},
		{At: 3, Kind: trace.MonitorExit, Thread: "worker-1", Object: "m0"},
		{At: 4, Kind: trace.MonitorBlocked, Thread: "worker-2", Object: "m0", Other: "worker-1"},
	}
	// Warm up: intern every string, grow the scratch buffer.
	for _, e := range events {
		r.Emit(e)
	}
	var at simtime.Ticks = 100
	allocs := testing.AllocsPerRun(1000, func() {
		for i := range events {
			e := events[i]
			e.At = at
			at++
			r.Emit(e)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Emit allocates %v times per 4 events, want 0", allocs)
	}
}

func TestStringInternOverflowGoesInline(t *testing.T) {
	r := New(Config{Size: 1 << 16, MaxStrings: 2})
	var want []trace.Event
	for i := 0; i < 10; i++ {
		e := trace.Event{At: simtime.Ticks(i), Kind: trace.Custom, Thread: "t", Detail: fmt.Sprintf("unique-%d", i)}
		want = append(want, e)
		r.Emit(e)
	}
	got, err := r.Events()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("inline overflow round trip mismatch:\ngot  %v\nwant %v", got, want)
	}
}

func TestDecodeRejectsCorruptRecords(t *testing.T) {
	d := decoder{strs: []string{"a"}}
	if _, err := d.decodeEvent([]byte{}); err == nil {
		t.Error("empty record should fail")
	}
	// Unknown kind 200.
	buf := []byte{0x01, 200, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00}
	if _, err := d.decodeEvent(buf); err == nil {
		t.Error("unknown kind should fail")
	}
	// String id out of range: strref 5 -> odd -> id 2 with a 1-string table.
	buf = []byte{0x01, 0x00, 0x05}
	if _, err := d.decodeEvent(buf); err == nil {
		t.Error("out-of-range string id should fail")
	}
}

func TestParseTriggers(t *testing.T) {
	cases := []struct {
		spec string
		want TriggerSpec
		err  bool
	}{
		{"", DefaultTriggers(), false},
		{"none", TriggerSpec{}, false},
		{"deadlock", TriggerSpec{Deadlock: true}, false},
		{"deadlock,race", TriggerSpec{Deadlock: true, Race: true}, false},
		{"storm", TriggerSpec{StormN: DefaultStormN, StormWindow: DefaultStormWindow}, false},
		{"storm=4@100", TriggerSpec{StormN: 4, StormWindow: 100}, false},
		{"storm=4", TriggerSpec{StormN: 4, StormWindow: DefaultStormWindow}, false},
		{"latency=5000", TriggerSpec{Latency: 5000}, false},
		{"exit", TriggerSpec{Exit: true}, false},
		{"deadlock,exit", TriggerSpec{Deadlock: true, Exit: true}, false},
		{"deadlock,storm=2@10,latency=1", TriggerSpec{Deadlock: true, StormN: 2, StormWindow: 10, Latency: 1}, false},
		{"bogus", TriggerSpec{}, true},
		{"latency", TriggerSpec{}, true},
		{"latency=-1", TriggerSpec{}, true},
		{"storm=0", TriggerSpec{}, true},
		{"none,deadlock", TriggerSpec{}, true},
		{"deadlock=1", TriggerSpec{}, true},
	}
	for _, c := range cases {
		got, err := ParseTriggers(c.spec)
		if c.err {
			if err == nil {
				t.Errorf("ParseTriggers(%q): want error, got %+v", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTriggers(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTriggers(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		// String() must round-trip through ParseTriggers.
		back, err := ParseTriggers(got.String())
		if err != nil || back != got {
			t.Errorf("round trip %q -> %q -> %+v (%v)", c.spec, got.String(), back, err)
		}
	}
}

// dumpCollector is an OnDump hook capturing fired dumps.
type dumpCollector struct{ dumps []*Dump }

func (c *dumpCollector) hook(d *Dump) { c.dumps = append(c.dumps, d) }

func TestTriggerDeadlockFiresOnce(t *testing.T) {
	var c dumpCollector
	r := New(Config{Size: 1 << 14, Triggers: TriggerSpec{Deadlock: true}, OnDump: c.hook})
	r.Emit(trace.Event{At: 10, Kind: trace.MonitorBlocked, Thread: "a", Object: "l1", Other: "b"})
	r.Emit(trace.Event{At: 20, Kind: trace.DeadlockDetected, Thread: "a", Object: "l1", Detail: "cycle=a->b->a"})
	r.Emit(trace.Event{At: 30, Kind: trace.DeadlockDetected, Thread: "b", Object: "l2"})
	if len(c.dumps) != 1 {
		t.Fatalf("deadlock trigger fired %d times, want 1 (latched)", len(c.dumps))
	}
	d := c.dumps[0]
	if d.Meta.Reason != ReasonDeadlock {
		t.Errorf("reason %q, want %q", d.Meta.Reason, ReasonDeadlock)
	}
	if d.Meta.At != 20 {
		t.Errorf("trigger at %d, want 20", d.Meta.At)
	}
	if !strings.Contains(d.Meta.Detail, "deadlock-detected") {
		t.Errorf("trigger detail %q should carry the firing event", d.Meta.Detail)
	}
	if len(d.Events) != 2 {
		t.Errorf("dump window has %d events, want 2 (the firing event is included)", len(d.Events))
	}
}

func TestTriggerRace(t *testing.T) {
	var c dumpCollector
	r := New(Config{Size: 1 << 14, Triggers: TriggerSpec{Race: true}, OnDump: c.hook})
	r.Emit(trace.Event{At: 5, Kind: trace.RaceDetected, Thread: "w2", Object: "slot#1", Other: "w1"})
	if len(c.dumps) != 1 || c.dumps[0].Meta.Reason != ReasonRace {
		t.Fatalf("race trigger: %d dumps", len(c.dumps))
	}
}

func TestTriggerStormWindow(t *testing.T) {
	var c dumpCollector
	spec := TriggerSpec{StormN: 3, StormWindow: 100}
	r := New(Config{Size: 1 << 14, Triggers: spec, OnDump: c.hook})
	// Three rollbacks spread beyond the window: no fire.
	r.Emit(trace.Event{At: 0, Kind: trace.Rollback, Thread: "a", Object: "l"})
	r.Emit(trace.Event{At: 90, Kind: trace.Rollback, Thread: "a", Object: "l"})
	r.Emit(trace.Event{At: 200, Kind: trace.Rollback, Thread: "a", Object: "l"})
	if len(c.dumps) != 0 {
		t.Fatalf("storm fired on a spread-out sequence")
	}
	// A third rollback within 100 ticks of the 90-tick one: 90,200,210 spans
	// 120 > 100 — still no. Then 90..190 window closes it? stormTimes now
	// holds 90,200,210; oldest in window check is 90: 210-90 > 100. Add 280:
	// oldest 200, 280-200 <= 100 -> fire.
	r.Emit(trace.Event{At: 210, Kind: trace.Rollback, Thread: "a", Object: "l"})
	if len(c.dumps) != 0 {
		t.Fatalf("storm fired with window slack exceeded")
	}
	r.Emit(trace.Event{At: 280, Kind: trace.Rollback, Thread: "a", Object: "l"})
	if len(c.dumps) != 1 || c.dumps[0].Meta.Reason != ReasonStorm {
		t.Fatalf("storm should fire when %d rollbacks land inside the window (%d dumps)", spec.StormN, len(c.dumps))
	}
}

func TestTriggerLatency(t *testing.T) {
	var c dumpCollector
	r := New(Config{Size: 1 << 14, Triggers: TriggerSpec{Latency: 50}, OnDump: c.hook})
	// Short wait: no fire.
	r.Emit(trace.Event{At: 0, Kind: trace.MonitorBlocked, Thread: "a", Object: "l", Other: "b"})
	r.Emit(trace.Event{At: 10, Kind: trace.MonitorAcquired, Thread: "a", Object: "l"})
	if len(c.dumps) != 0 {
		t.Fatal("latency fired under threshold")
	}
	// A wait cleared by rollback must not count: the span was revoked.
	r.Emit(trace.Event{At: 20, Kind: trace.MonitorBlocked, Thread: "a", Object: "l", Other: "b"})
	r.Emit(trace.Event{At: 40, Kind: trace.Rollback, Thread: "a", Object: "l"})
	r.Emit(trace.Event{At: 200, Kind: trace.MonitorAcquired, Thread: "a", Object: "l"})
	if len(c.dumps) != 0 {
		t.Fatal("latency counted a rolled-back wait")
	}
	// A genuine long wait fires.
	r.Emit(trace.Event{At: 300, Kind: trace.MonitorBlocked, Thread: "a", Object: "l", Other: "b"})
	r.Emit(trace.Event{At: 355, Kind: trace.MonitorAcquired, Thread: "a", Object: "l"})
	if len(c.dumps) != 1 || c.dumps[0].Meta.Reason != ReasonLatency {
		t.Fatalf("latency trigger: %d dumps", len(c.dumps))
	}
}

func TestDumpWriteReadRoundTrip(t *testing.T) {
	statsJSON := []byte(`{"rollbacks":3}`)
	profJSON := []byte(`{"sites":[]}`)
	r := New(Config{
		Size: 1 << 16, Program: "examples/deadlock2", VM: "revocation",
		StatsJSON:   func() []byte { return statsJSON },
		ProfileJSON: func() []byte { return profJSON },
	})
	for _, e := range sampleEvents() {
		r.Emit(e)
	}
	d, err := r.Snapshot("manual")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, d.Events) {
		t.Errorf("events differ after container round trip")
	}
	if got.Meta != d.Meta {
		t.Errorf("meta differs: %+v vs %+v", got.Meta, d.Meta)
	}
	if got.Meta.Program != "examples/deadlock2" || got.Meta.VM != "revocation" {
		t.Errorf("program/vm labels lost: %+v", got.Meta)
	}
	if !bytes.Equal(got.StatsJSON, statsJSON) || !bytes.Equal(got.ProfileJSON, profJSON) {
		t.Errorf("stats/profile sections differ")
	}
	if got.Truncated || got.Lost != 0 {
		t.Errorf("unwrapped dump marked truncated (lost=%d)", got.Lost)
	}
	// The embedded metrics must decode and match a direct replay. JSON is
	// the canonical form (it normalizes empty-vs-nil maps).
	if _, err := got.Metrics(); err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver()
	for _, e := range d.Events {
		o.Emit(e)
	}
	wantJSON, err := json.Marshal(o.Metrics().Summary())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.MetricsJSON, wantJSON) {
		t.Errorf("dump metrics differ from direct replay:\n%s\nvs\n%s", got.MetricsJSON, wantJSON)
	}
}

func TestDumpUnknownSectionSkipped(t *testing.T) {
	r := New(Config{Size: 1 << 14})
	r.Emit(trace.Event{At: 1, Kind: trace.ThreadStart, Thread: "t", N: 5})
	d, err := r.Snapshot("")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	// Splice an unknown section (id 0x7f) in before EOF.
	raw := append(buf.Bytes(), 0x7f, 3, 'x', 'y', 'z')
	got, err := ReadDump(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("unknown section should be skipped: %v", err)
	}
	if len(got.Events) != 1 || got.Meta.Reason != ReasonManual {
		t.Fatalf("dump content lost around unknown section: %+v", got.Meta)
	}
}

func TestDumpRejectsBadMagic(t *testing.T) {
	if _, err := ReadDump(bytes.NewReader([]byte("NOTAFR\x00\x01"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestWrappedDumpCarriesTruncation(t *testing.T) {
	r := New(Config{Size: 256})
	for i := 0; i < 500; i++ {
		r.Emit(trace.Event{At: simtime.Ticks(i), Kind: trace.ContextSwitch, Detail: "q"})
	}
	if !r.Wrapped() {
		t.Fatal("500 events in a 256-byte ring must wrap")
	}
	d, err := r.Snapshot("")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Truncated || d.Lost == 0 {
		t.Fatalf("wrapped dump not marked truncated (lost=%d)", d.Lost)
	}
	if uint64(len(d.Events))+d.Lost != 500 {
		t.Fatalf("events %d + lost %d != 500", len(d.Events), d.Lost)
	}
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	events, info, err := obs.ParseJSONLInfo(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated || info.Lost != d.Lost {
		t.Fatalf("JSONL meta lost the truncation marker: %+v", info)
	}
	if len(events) != len(d.Events) {
		t.Fatalf("JSONL carries %d events, dump %d", len(events), len(d.Events))
	}
}

func TestSyncRecorderConcurrentSnapshot(t *testing.T) {
	s := NewSync(New(Config{Size: 1 << 12}))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			s.Emit(trace.Event{At: simtime.Ticks(i), Kind: trace.ContextSwitch})
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := s.Snapshot(""); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if s.Len() == 0 {
		t.Fatal("no events recorded")
	}
}

func TestFleetMergeDumpsAndBench(t *testing.T) {
	dir := t.TempDir()

	// Two dumps with known blocking spans: 10 ticks and 30 ticks.
	writeDump := func(name string, block int64) string {
		r := New(Config{Size: 1 << 14})
		r.Emit(trace.Event{At: 0, Kind: trace.ThreadStart, Thread: "a", N: 1})
		r.Emit(trace.Event{At: 0, Kind: trace.MonitorBlocked, Thread: "a", Object: "l", Other: "b"})
		r.Emit(trace.Event{At: simtime.Ticks(block), Kind: trace.MonitorAcquired, Thread: "a", Object: "l"})
		r.Emit(trace.Event{At: simtime.Ticks(block + 5), Kind: trace.MonitorExit, Thread: "a", Object: "l"})
		d, err := r.Snapshot("")
		if err != nil {
			t.Fatal(err)
		}
		path := dir + "/" + name
		var buf bytes.Buffer
		if err := WriteDump(&buf, d); err != nil {
			t.Fatal(err)
		}
		if err := writeFile(path, buf.Bytes()); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p1 := writeDump("a.rvmfr", 10)
	p2 := writeDump("b.rvmfr", 30)

	// One BENCH report array with a 2-sample blocking digest.
	bench := `[{"label":"x","date":"2026-08-08","latency":[{"name":"cell","vm":"modified",
	  "blocking_per_thread":{"t1":{"count":2,"sum":40,"min":15,"max":25,"p50":15,"p90":25,"p99":25,"p999":25}},
	  "rollback_wasted":{"count":1,"sum":7,"min":7,"max":7,"p50":7,"p90":7,"p99":7,"p999":7}}]}]`
	p3 := dir + "/BENCH_test.json"
	if err := writeFile(p3, []byte(bench)); err != nil {
		t.Fatal(err)
	}

	rep, err := MergeFleet([]string{p1, p2, p3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DumpCount != 2 || rep.BenchCount != 1 {
		t.Fatalf("counts: %d dumps, %d bench", rep.DumpCount, rep.BenchCount)
	}
	blocking, ok := rep.Series["blocking"]
	if !ok {
		t.Fatal("no blocking series")
	}
	if blocking.Count != 4 {
		t.Fatalf("blocking count %d, want 4 (2 dump samples + 2 digest samples)", blocking.Count)
	}
	if blocking.Sum != 10+30+40 {
		t.Fatalf("blocking sum %d, want 80 (exact sums)", blocking.Sum)
	}
	if !blocking.Approximate {
		t.Fatal("series with digest inputs must be marked approximate")
	}
	if blocking.Max != 30 && blocking.Max != 25 {
		t.Fatalf("blocking max %d not from any input", blocking.Max)
	}
	hold := rep.Series["hold"]
	if hold.Approximate {
		t.Fatal("hold series has only dump samples; must stay exact")
	}
	if hold.Count != 2 {
		t.Fatalf("hold count %d, want 2", hold.Count)
	}

	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "blocking") || !strings.Contains(out, "p99.9") {
		t.Fatalf("render missing series table:\n%s", out)
	}
	buf.Reset()
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back FleetReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Series["blocking"].Count != 4 {
		t.Fatal("JSON round trip lost series")
	}
}

func TestFleetMergeRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	p := dir + "/junk.bin"
	if err := writeFile(p, []byte("not a dump, not json")); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeFleet([]string{p}); err == nil {
		t.Fatal("garbage input accepted")
	}
	if _, err := MergeFleet(nil); err == nil {
		t.Fatal("empty input list accepted")
	}
}
