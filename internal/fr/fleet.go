// Fleet SLO merge: aggregate the latency distributions of many VM
// instances — flight-recorder dumps and results/BENCH_*.json trajectory
// files — into one p50/p99/p99.9 service-level report. This is the fleet
// half of ROADMAP item 3: each dump or report is one instance's view, and
// the SLO question ("what blocking time does the slowest permille see?")
// only exists over their union.
//
// Dumps merge exactly: the event window is replayed through a fresh
// observer, so every raw sample participates. BENCH files carry only
// HistSummary digests; their distributions are reconstituted as weighted
// samples at the digest's percentile values — tails and counts are honored,
// interior shape is approximated — and the report says so via Approximate.
package fr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

// Fleet series names, in render order.
var fleetSeries = []string{"blocking", "hold", "contention", "rollback_wasted"}

// SLOSeries is one merged distribution of the fleet report.
type SLOSeries struct {
	obs.HistSummary
	// Sources counts how many inputs contributed samples to this series.
	Sources int `json:"sources"`
	// Approximate marks a series that includes digest-reconstituted samples
	// (from BENCH files) rather than only raw ones (from dumps).
	Approximate bool `json:"approximate,omitempty"`
}

// FleetReport is the merged SLO view over a set of instances.
type FleetReport struct {
	SchemaVersion int      `json:"v"`
	Inputs        []string `json:"inputs"`
	DumpCount     int      `json:"dump_count"`
	BenchCount    int      `json:"bench_count"`
	// Series maps series name (blocking, hold, contention, rollback_wasted)
	// to its fleet-wide distribution.
	Series map[string]SLOSeries `json:"series"`
}

// fleetAccum collects samples per series across inputs.
type fleetAccum struct {
	hists   map[string]*obs.Histogram
	sources map[string]int
	approx  map[string]bool
	sums    map[string]int64 // exact sums (digest sums are exact even when shape is not)
}

func newFleetAccum() *fleetAccum {
	return &fleetAccum{
		hists:   make(map[string]*obs.Histogram),
		sources: make(map[string]int),
		approx:  make(map[string]bool),
		sums:    make(map[string]int64),
	}
}

func (a *fleetAccum) hist(series string) *obs.Histogram {
	h, ok := a.hists[series]
	if !ok {
		h = &obs.Histogram{}
		a.hists[series] = h
	}
	return h
}

// addSamples merges raw samples (the exact path).
func (a *fleetAccum) addSamples(series string, samples []int64) {
	if len(samples) == 0 {
		return
	}
	h := a.hist(series)
	for _, v := range samples {
		h.Observe(v)
		a.sums[series] += v
	}
	a.sources[series]++
}

// addDigest reconstitutes a HistSummary as weighted percentile samples (the
// approximate path). Counts are split at the nearest-rank boundaries so the
// merged percentiles respect each digest's P50/P90/P99/P999/Max; the true
// interior shape is lost, which the series' Approximate flag declares.
func (a *fleetAccum) addDigest(series string, d obs.HistSummary) {
	if d.Count == 0 {
		return
	}
	h := a.hist(series)
	n := d.Count
	ranks := []struct {
		upto int64 // cumulative nearest-rank boundary
		v    int64
	}{
		{n * 500 / 1000, d.P50},
		{n * 900 / 1000, d.P90},
		{n * 990 / 1000, d.P99},
		{n * 999 / 1000, d.P999},
		{n, d.Max},
	}
	var emitted int64
	for _, r := range ranks {
		for emitted < r.upto {
			h.Observe(r.v)
			emitted++
		}
	}
	a.sums[series] += d.Sum
	a.sources[series]++
	a.approx[series] = true
}

func (a *fleetAccum) report(inputs []string, dumps, benches int) *FleetReport {
	rep := &FleetReport{
		SchemaVersion: obs.SchemaVersion,
		Inputs:        inputs,
		DumpCount:     dumps,
		BenchCount:    benches,
		Series:        make(map[string]SLOSeries, len(a.hists)),
	}
	for name, h := range a.hists {
		s := h.Summary()
		// Synthesized samples distort the sum; the per-input sums are exact.
		s.Sum = a.sums[name]
		rep.Series[name] = SLOSeries{
			HistSummary: s,
			Sources:     a.sources[name],
			Approximate: a.approx[name],
		}
	}
	return rep
}

// MergeFleet merges flight-recorder dumps (.rvmfr) and benchmark trajectory
// files (BENCH_*.json report arrays) into one fleet SLO report. Inputs are
// sniffed by content, not extension.
func MergeFleet(paths []string) (*FleetReport, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("fr: no fleet inputs")
	}
	acc := newFleetAccum()
	var dumps, benches int
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		switch {
		case bytes.HasPrefix(raw, Magic):
			d, err := ReadDump(bytes.NewReader(raw))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			mergeDump(acc, d)
			dumps++
		default:
			n, err := mergeBenchFile(acc, raw)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			benches += n
		}
	}
	return acc.report(paths, dumps, benches), nil
}

// mergeDump replays the dump's event window through a fresh observer and
// merges the resulting raw samples — exact, no digest reconstruction.
func mergeDump(acc *fleetAccum, d *Dump) {
	o := obs.NewObserver()
	for _, e := range d.Events {
		o.Emit(e)
	}
	m := o.Metrics()
	var blocking, hold, contention []int64
	for _, h := range m.BlockingPerThreadAll() {
		blocking = append(blocking, h.Samples()...)
	}
	for _, h := range m.HoldPerMonitorAll() {
		hold = append(hold, h.Samples()...)
	}
	for _, h := range m.ContentionPerMonitorAll() {
		contention = append(contention, h.Samples()...)
	}
	acc.addSamples("blocking", blocking)
	acc.addSamples("hold", hold)
	acc.addSamples("contention", contention)
	acc.addSamples("rollback_wasted", m.RollbackWasted().Samples())
}

// benchReport mirrors the fields of bench.Report the merge consumes.
// Declared locally because internal/bench imports fr for the recorder
// benchmarks; importing bench here would close the cycle.
type benchReport struct {
	Label   string `json:"label"`
	Date    string `json:"date"`
	Latency []struct {
		Name              string                     `json:"name"`
		VM                string                     `json:"vm"`
		BlockingPerThread map[string]obs.HistSummary `json:"blocking_per_thread"`
		RollbackWasted    obs.HistSummary            `json:"rollback_wasted"`
	} `json:"latency"`
}

// mergeBenchFile merges every latency digest of a BENCH report array and
// returns how many reports contributed.
func mergeBenchFile(acc *fleetAccum, raw []byte) (int, error) {
	var reports []benchReport
	if err := json.Unmarshal(raw, &reports); err != nil {
		return 0, fmt.Errorf("neither a .rvmfr dump nor a BENCH report array: %v", err)
	}
	n := 0
	for _, rep := range reports {
		if len(rep.Latency) == 0 {
			continue
		}
		n++
		for _, lat := range rep.Latency {
			for _, d := range lat.BlockingPerThread {
				acc.addDigest("blocking", d)
			}
			acc.addDigest("rollback_wasted", lat.RollbackWasted)
		}
	}
	if n == 0 && len(reports) == 0 {
		return 0, fmt.Errorf("empty report array")
	}
	return n, nil
}

// Render writes the report as an aligned text table.
func (r *FleetReport) Render(w io.Writer) {
	fmt.Fprintf(w, "fleet SLO report: %d input(s) — %d dump(s), %d bench report(s)\n",
		len(r.Inputs), r.DumpCount, r.BenchCount)
	names := make([]string, 0, len(r.Series))
	for name := range r.Series {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return seriesRank(names[i]) < seriesRank(names[j]) })
	fmt.Fprintf(w, "  %-18s %8s %12s %8s %8s %8s %8s %6s\n",
		"series", "n", "sum", "p50", "p99", "p99.9", "max", "exact")
	for _, name := range names {
		s := r.Series[name]
		exact := "yes"
		if s.Approximate {
			exact = "no"
		}
		fmt.Fprintf(w, "  %-18s %8d %12d %8d %8d %8d %8d %6s\n",
			name, s.Count, s.Sum, s.P50, s.P99, s.P999, s.Max, exact)
	}
}

// WriteJSON writes the report as indented JSON.
func (r *FleetReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func seriesRank(name string) int {
	for i, s := range fleetSeries {
		if s == name {
			return i
		}
	}
	return len(fleetSeries) + len(name)
}
