package fr

import (
	"sync"

	"repro/internal/trace"
)

// SyncRecorder wraps a Recorder in a mutex so a foreign goroutine — the
// /debug/fr HTTP endpoint — can snapshot the ring while the VM emits into
// it. Same rationale as obs.SyncObserver: the VM itself is single-threaded
// over virtual time, so the lock is only needed when serving is live.
type SyncRecorder struct {
	mu sync.Mutex
	r  *Recorder
}

// NewSync wraps r.
func NewSync(r *Recorder) *SyncRecorder { return &SyncRecorder{r: r} }

// Emit forwards one event under the lock. Implements trace.Sink.
func (s *SyncRecorder) Emit(e trace.Event) {
	s.mu.Lock()
	s.r.Emit(e)
	s.mu.Unlock()
}

// Snapshot assembles a dump under the lock.
func (s *SyncRecorder) Snapshot(reason string) (*Dump, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Snapshot(reason)
}

// Len reports the ring's current event count under the lock.
func (s *SyncRecorder) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Len()
}

// Lost reports overwritten events under the lock.
func (s *SyncRecorder) Lost() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Lost()
}
