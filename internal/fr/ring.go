package fr

import "encoding/binary"

// ring is a bounded circular byte buffer of length-prefixed records — the
// flight recorder's backing store. Each record is a uvarint payload length
// followed by the payload bytes; when an append does not fit, whole oldest
// records are evicted (counted in lost) until it does, so the ring always
// holds a contiguous suffix of the emitted stream. All operations are
// allocation-free: the buffer is sized once at construction.
type ring struct {
	buf   []byte
	head  int    // offset of the oldest record's length prefix
	size  int    // bytes in use
	count int    // records stored
	lost  uint64 // records evicted by wrap (or individually too large)
}

func newRing(capacity int) *ring {
	if capacity < 64 {
		capacity = 64
	}
	return &ring{buf: make([]byte, capacity)}
}

// wrap folds an offset in [0, 2*len) back into the buffer. Every position
// the ring computes is a sum of two in-range values, so a single
// conditional subtraction replaces the integer modulo the hot append path
// would otherwise pay several times per record.
func (g *ring) wrap(i int) int {
	if i >= len(g.buf) {
		i -= len(g.buf)
	}
	return i
}

// append stores one record, evicting the oldest records until it fits. A
// payload larger than the whole ring is counted lost and dropped — it
// could never coexist with any other record anyway.
func (g *ring) append(payload []byte) {
	var pfx [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pfx[:], uint64(len(payload)))
	need := n + len(payload)
	if need > len(g.buf) {
		g.lost++
		return
	}
	for len(g.buf)-g.size < need {
		g.evict()
	}
	tail := g.wrap(g.head + g.size)
	tail = g.copyAt(tail, pfx[:n])
	g.copyAt(tail, payload)
	g.size += need
	g.count++
}

// evict drops the oldest record.
func (g *ring) evict() {
	plen, n := g.uvarintAt(g.head)
	adv := n + int(plen)
	g.head = g.wrap(g.head + adv)
	g.size -= adv
	g.count--
	g.lost++
}

// copyAt writes p into the buffer starting at pos, wrapping as needed, and
// returns the position one past the last byte written.
func (g *ring) copyAt(pos int, p []byte) int {
	n := copy(g.buf[pos:], p)
	if n < len(p) {
		copy(g.buf, p[n:])
	}
	return g.wrap(pos + len(p))
}

// uvarintAt decodes a uvarint at pos with wraparound, returning the value
// and the number of bytes it occupied.
func (g *ring) uvarintAt(pos int) (uint64, int) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		b := g.buf[g.wrap(pos+i)]
		if b < 0x80 {
			return v | uint64(b)<<shift, i + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// snapshot calls fn with each stored record's payload, oldest first. The
// payload slice is only valid for the duration of the call: records that
// wrap are linearized through scratch, which is grown once and reused.
func (g *ring) snapshot(scratch []byte, fn func(payload []byte) error) ([]byte, error) {
	pos := g.head
	for i := 0; i < g.count; i++ {
		plen, n := g.uvarintAt(pos)
		pos = (pos + n) % len(g.buf)
		var payload []byte
		if pos+int(plen) <= len(g.buf) {
			payload = g.buf[pos : pos+int(plen)]
		} else {
			if cap(scratch) < int(plen) {
				scratch = make([]byte, int(plen))
			}
			scratch = scratch[:plen]
			n := copy(scratch, g.buf[pos:])
			copy(scratch[n:], g.buf)
			payload = scratch
		}
		if err := fn(payload); err != nil {
			return scratch, err
		}
		pos = (pos + int(plen)) % len(g.buf)
	}
	return scratch, nil
}

// linearize returns a fresh contiguous copy of every stored record
// (prefix + payload), oldest first — the events section of a dump.
func (g *ring) linearize() []byte {
	out := make([]byte, g.size)
	n := copy(out, g.buf[g.head:])
	if n < g.size {
		copy(out[n:], g.buf[:g.size-n])
	}
	return out[:g.size]
}
