// Binary event codec. One event encodes to a compact varint record:
//
//	uvarint at          absolute virtual-time tick
//	uvarint kind        value from the shared internal/trace vocabulary
//	strref  thread      acting thread
//	strref  object      monitor or object
//	strref  other       counterpart thread
//	varint  n           zigzag numeric payload
//	strref  detail      free-form context
//
// where strref is a single uvarint d: d == 0 is the empty string, odd d is
// the interned string-table id d>>1 (ids are 1-based), and even d > 0 is an
// inline string of d>>1 bytes that follow immediately — the overflow path
// once the intern table hits its cap. Records are self-delimiting only
// through the ring's length prefix, so the codec never writes one.
package fr

import (
	"encoding/binary"
	"fmt"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// stringTable interns the strings events carry — thread, monitor and
// method names are drawn from a small fixed set, so the table converges
// fast and the append path stops allocating. The cap bounds memory on
// adversarial high-cardinality details; past it, strings go inline.
type stringTable struct {
	ids  map[string]uint32
	strs []string // id i ↔ strs[i-1]
	max  int
}

func newStringTable(max int) *stringTable {
	return &stringTable{ids: make(map[string]uint32, 64), max: max}
}

// intern returns the table id for s, assigning one on first sight. ok is
// false when the table is full and s is not already present.
func (t *stringTable) intern(s string) (uint32, bool) {
	if id, ok := t.ids[s]; ok {
		return id, true
	}
	if len(t.strs) >= t.max {
		return 0, false
	}
	t.strs = append(t.strs, s)
	id := uint32(len(t.strs))
	t.ids[s] = id
	return id, true
}

// strCache is a small per-field memo in front of the intern map. Events
// cycle through a handful of thread/monitor names (often the very same
// string header, making the == below a pointer compare), so a four-entry
// linear scan absorbs alternating threads where a single entry would
// thrash straight back to the map and its hashing.
type strCache struct {
	s    [4]string
	id   [4]uint32
	next uint8
}

// appendStr encodes one string field.
func appendStr(dst []byte, s string, tab *stringTable, cache *strCache) []byte {
	if s == "" {
		return append(dst, 0)
	}
	for i, cs := range cache.s {
		if cs == s {
			return binary.AppendUvarint(dst, uint64(cache.id[i])<<1|1)
		}
	}
	if id, ok := tab.intern(s); ok {
		i := cache.next & 3
		cache.s[i], cache.id[i] = s, id
		cache.next++
		return binary.AppendUvarint(dst, uint64(id)<<1|1)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s))<<1)
	return append(dst, s...)
}

// decoder reads event payloads back against a resolved string table.
type decoder struct {
	strs []string
}

func (d *decoder) str(buf []byte) (string, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return "", nil, fmt.Errorf("fr: truncated string ref")
	}
	buf = buf[n:]
	if v == 0 {
		return "", buf, nil
	}
	if v&1 == 1 {
		id := v >> 1
		if id == 0 || id > uint64(len(d.strs)) {
			return "", nil, fmt.Errorf("fr: string id %d out of table range %d", id, len(d.strs))
		}
		return d.strs[id-1], buf, nil
	}
	l := int(v >> 1)
	if l > len(buf) {
		return "", nil, fmt.Errorf("fr: inline string of %d bytes overruns record", l)
	}
	return string(buf[:l]), buf[l:], nil
}

// decodeEvent decodes one record payload.
func (d *decoder) decodeEvent(buf []byte) (trace.Event, error) {
	var e trace.Event
	at, n := binary.Uvarint(buf)
	if n <= 0 {
		return e, fmt.Errorf("fr: truncated timestamp")
	}
	buf = buf[n:]
	kind, n := binary.Uvarint(buf)
	if n <= 0 {
		return e, fmt.Errorf("fr: truncated kind")
	}
	buf = buf[n:]
	if !trace.ValidKind(trace.Kind(kind)) {
		return e, fmt.Errorf("fr: unknown event kind %d (vocabulary has %d)", kind, len(trace.Names()))
	}
	e.At = simtime.Ticks(at)
	e.Kind = trace.Kind(kind)
	var err error
	if e.Thread, buf, err = d.str(buf); err != nil {
		return e, err
	}
	if e.Object, buf, err = d.str(buf); err != nil {
		return e, err
	}
	if e.Other, buf, err = d.str(buf); err != nil {
		return e, err
	}
	v, n := binary.Varint(buf)
	if n <= 0 {
		return e, fmt.Errorf("fr: truncated numeric payload")
	}
	e.N = v
	buf = buf[n:]
	if e.Detail, buf, err = d.str(buf); err != nil {
		return e, err
	}
	if len(buf) != 0 {
		return e, fmt.Errorf("fr: %d trailing bytes in event record", len(buf))
	}
	return e, nil
}

// decodeRecords decodes a linearized records block (count length-prefixed
// records) against the string table.
func decodeRecords(records []byte, count int, strs []string) ([]trace.Event, error) {
	d := decoder{strs: strs}
	events := make([]trace.Event, 0, count)
	for i := 0; i < count; i++ {
		plen, n := binary.Uvarint(records)
		if n <= 0 {
			return nil, fmt.Errorf("fr: record %d: truncated length prefix", i)
		}
		records = records[n:]
		if uint64(len(records)) < plen {
			return nil, fmt.Errorf("fr: record %d: payload %d exceeds remaining %d bytes", i, plen, len(records))
		}
		e, err := d.decodeEvent(records[:plen])
		if err != nil {
			return nil, fmt.Errorf("fr: record %d: %w", i, err)
		}
		events = append(events, e)
		records = records[plen:]
	}
	if len(records) != 0 {
		return nil, fmt.Errorf("fr: %d trailing bytes after %d records", len(records), count)
	}
	return events, nil
}

// encodeRecords encodes events into a fresh records block plus the string
// table it references — the write path for dumps assembled from decoded
// events rather than from a live ring (tests, converters).
func encodeRecords(events []trace.Event, maxStrings int) (records []byte, strs []string) {
	tab := newStringTable(maxStrings)
	var caches [4]strCache
	var buf []byte
	for _, e := range events {
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(e.At))
		buf = binary.AppendUvarint(buf, uint64(e.Kind))
		buf = appendStr(buf, e.Thread, tab, &caches[0])
		buf = appendStr(buf, e.Object, tab, &caches[1])
		buf = appendStr(buf, e.Other, tab, &caches[2])
		buf = binary.AppendVarint(buf, e.N)
		buf = appendStr(buf, e.Detail, tab, &caches[3])
		records = binary.AppendUvarint(records, uint64(len(buf)))
		records = append(records, buf...)
	}
	return records, tab.strs
}
