// Package fr is the VM's black-box flight recorder: a bounded ring-buffer
// trace.Sink cheap enough to stay attached on every run, paired with a
// trigger engine that snapshots the ring into a self-contained .rvmfr dump
// the moment an anomaly fires — a runtime deadlock cycle, a committed race
// report, a revocation storm, or a blocking-latency breach.
//
// The paper's revocation protocol makes failures transient: wasted work,
// rollback storms and inversions leave no artifact unless a trace sink was
// attached up front, which a production VM cannot afford at full fidelity.
// The recorder resolves that tension the JFR way: every event is encoded
// into a compact varint record (interned strings, one allocation-free
// append path) and written into a fixed ring that overwrites its oldest
// records, so the last window of history is always available for the price
// of a few dozen nanoseconds per event. Dumps embed the event window, the
// intern table, runtime stats, the window's replayed metrics and an
// optional profiler digest — everything a post-mortem needs, with nothing
// required of the run that crashed.
package fr

import (
	"encoding/binary"
	"encoding/json"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// DefaultSize is the default ring capacity in bytes. Records average
// 10–20 bytes, so the default window holds on the order of 15–25 thousand
// events — minutes of virtual time for the example workloads.
const DefaultSize = 256 << 10

// DefaultMaxStrings caps the intern table. Thread, monitor and method
// names number in the dozens; the cap only matters against adversarial
// high-cardinality detail strings, which overflow to inline encoding.
const DefaultMaxStrings = 1 << 16

// Config parameterizes a Recorder.
type Config struct {
	// Size is the ring capacity in bytes (DefaultSize when zero).
	Size int
	// MaxStrings caps the intern table (DefaultMaxStrings when zero).
	MaxStrings int
	// Triggers selects which anomalies snapshot the ring.
	Triggers TriggerSpec
	// OnDump receives each trigger-fired dump. Nil disables automatic
	// dumps; Snapshot still works.
	OnDump func(*Dump)

	// Program and VM label the dump's meta section.
	Program string
	VM      string

	// StatsJSON, when non-nil, is invoked at dump time for the stats
	// section payload (rvmrun feeds core.Stats through it). ProfileJSON
	// likewise for the profiler digest. Either may return nil.
	StatsJSON   func() []byte
	ProfileJSON func() []byte
}

// Recorder is the always-on trace.Sink. Not safe for concurrent use — the
// VM's uniprocessor scheduler serializes emissions; wrap in a SyncRecorder
// when a foreign goroutine (the /debug/fr endpoint) must snapshot a live
// ring.
type Recorder struct {
	cfg  Config
	ring *ring
	tab  *stringTable

	buf     []byte // encode scratch, grown once
	scratch []byte // snapshot linearization scratch
	caches  [4]strCache

	trig   triggerState
	seq    int
	lastAt simtime.Ticks
}

// New creates a recorder.
func New(cfg Config) *Recorder {
	if cfg.Size == 0 {
		cfg.Size = DefaultSize
	}
	if cfg.MaxStrings == 0 {
		cfg.MaxStrings = DefaultMaxStrings
	}
	r := &Recorder{
		cfg:  cfg,
		ring: newRing(cfg.Size),
		tab:  newStringTable(cfg.MaxStrings),
		buf:  make([]byte, 0, 256),
	}
	r.trig.init(cfg.Triggers)
	return r
}

// Emit encodes one event into the ring and runs the trigger checks.
// Implements trace.Sink. Steady state (all strings interned, no anomaly)
// performs zero allocations.
func (r *Recorder) Emit(e trace.Event) {
	b := r.buf[:0]
	b = binary.AppendUvarint(b, uint64(e.At))
	b = binary.AppendUvarint(b, uint64(e.Kind))
	b = appendStr(b, e.Thread, r.tab, &r.caches[0])
	b = appendStr(b, e.Object, r.tab, &r.caches[1])
	b = appendStr(b, e.Other, r.tab, &r.caches[2])
	b = binary.AppendVarint(b, e.N)
	b = appendStr(b, e.Detail, r.tab, &r.caches[3])
	r.buf = b
	r.ring.append(b)
	if e.At > r.lastAt {
		r.lastAt = e.At
	}
	if reason, ok := r.trig.check(&e); ok {
		r.fire(reason, e)
	}
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int { return r.ring.count }

// Lost reports how many events have been overwritten (or were too large to
// store) since the recorder started.
func (r *Recorder) Lost() uint64 { return r.ring.lost }

// Wrapped reports whether the ring has overwritten any event.
func (r *Recorder) Wrapped() bool { return r.ring.lost > 0 }

// Events decodes the ring's current contents, oldest first.
func (r *Recorder) Events() ([]trace.Event, error) {
	d := decoder{strs: r.tab.strs}
	events := make([]trace.Event, 0, r.ring.count)
	var err error
	r.scratch, err = r.ring.snapshot(r.scratch, func(payload []byte) error {
		e, derr := d.decodeEvent(payload)
		if derr != nil {
			return derr
		}
		events = append(events, e)
		return nil
	})
	return events, err
}

// Snapshot assembles a dump of the current ring on demand — the manual
// variant of a trigger firing (the /debug/fr endpoint, end-of-run capture).
func (r *Recorder) Snapshot(reason string) (*Dump, error) {
	if reason == "" {
		reason = ReasonManual
	}
	return r.dump(reason, trace.Event{At: r.lastAt})
}

// fire assembles and delivers a dump for an anomaly. Each trigger reason
// fires at most once per run: the first occurrence is the interesting one,
// and a storm of dumps from a storm of rollbacks would bury it.
func (r *Recorder) fire(reason string, e trace.Event) {
	if r.cfg.OnDump == nil {
		return
	}
	d, err := r.dump(reason, e)
	if err != nil {
		// A ring that fails to decode is a codec bug; surface it through
		// the dump's meta rather than dropping the anomaly on the floor.
		d = &Dump{Version: DumpVersion, Meta: Meta{
			V: DumpVersion, Reason: reason, Seq: r.seq, At: int64(e.At),
			Detail: "decode error: " + err.Error(),
		}}
	}
	r.cfg.OnDump(d)
}

// dump snapshots the ring and every attached registry into a Dump.
func (r *Recorder) dump(reason string, e trace.Event) (*Dump, error) {
	r.seq++
	events, err := r.Events()
	if err != nil {
		return nil, err
	}
	d := &Dump{
		Version: DumpVersion,
		Meta: Meta{
			V:       DumpVersion,
			Reason:  reason,
			Seq:     r.seq,
			At:      int64(e.At),
			Detail:  triggerDetail(e),
			Program: r.cfg.Program,
			VM:      r.cfg.VM,
		},
		Strings:    append([]string(nil), r.tab.strs...),
		Events:     events,
		EventCount: len(events),
		Truncated:  r.ring.lost > 0,
		Lost:       r.ring.lost,
		records:    r.ring.linearize(),
	}
	// The metrics section is the ring window replayed through a fresh
	// observer: self-contained, exact for an unwrapped ring, and the
	// property tests pin it equal to a live-attached Observer.
	o := obs.NewObserver()
	for _, ev := range events {
		o.Emit(ev)
	}
	if mj, err := json.Marshal(o.Metrics().Summary()); err == nil {
		d.MetricsJSON = mj
	}
	if r.cfg.StatsJSON != nil {
		d.StatsJSON = r.cfg.StatsJSON()
	}
	if r.cfg.ProfileJSON != nil {
		d.ProfileJSON = r.cfg.ProfileJSON()
	}
	return d, nil
}

// triggerDetail renders the firing event as human-readable trigger context.
func triggerDetail(e trace.Event) string {
	if e.Kind == 0 && e.Thread == "" && e.Object == "" && e.Detail == "" {
		return ""
	}
	return e.String()
}
