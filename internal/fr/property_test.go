package fr

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/rewrite"
	"repro/internal/sched"
	"repro/internal/trace"
)

var allTiers = []interp.Tier{interp.TierExec, interp.TierThreaded, interp.TierOpt}

// exampleSources globs every example program, same corpus as the interp and
// prof property tests.
func exampleSources(t *testing.T) []string {
	t.Helper()
	var srcs []string
	for _, dir := range []string{"bytecode", "racy"} {
		matches, err := filepath.Glob(filepath.Join("..", "..", "examples", dir, "*.rvm"))
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, matches...)
	}
	if len(srcs) < 5 {
		t.Fatalf("found only %d example programs: %v", len(srcs), srcs)
	}
	return srcs
}

// runExample executes one example on one tier with the given sinks attached.
func runExample(t *testing.T, src string, tier interp.Tier, sink trace.Sink) {
	t.Helper()
	text, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := bytecode.Assemble(string(text))
	if err != nil {
		t.Fatal(err)
	}
	if err := bytecode.Verify(prog); err != nil {
		t.Fatal(err)
	}
	prog, err = rewrite.Rewrite(prog)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.Config{
		Mode:              core.Revocation,
		TrackDependencies: true,
		DeadlockDetection: true,
		Observer:          sink,
		Sched:             sched.Config{Quantum: 1000, SwitchCost: 3},
	})
	if _, err := interp.Run(rt, prog, interp.Options{
		Rewritten:        true,
		Tier:             tier,
		OptCallThreshold: 1,
		Out:              io.Discard,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRecorderRoundTripsEveryExample is the codec's grand property, checked
// over the whole example corpus on all three execution tiers: recording a
// run through the binary ring and decoding it back yields the event stream
// identically — field for field — to a plain in-memory trace.Recorder
// attached to the same run.
func TestRecorderRoundTripsEveryExample(t *testing.T) {
	for _, src := range exampleSources(t) {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			for _, tier := range allTiers {
				var ref trace.Recorder
				rec := New(Config{Size: 8 << 20}) // large: must not wrap
				runExample(t, src, tier, trace.Multi{&ref, rec})
				if rec.Wrapped() {
					t.Fatalf("%v: 8 MiB ring wrapped; example too big for the identity check", tier)
				}
				got, err := rec.Events()
				if err != nil {
					t.Fatalf("%v: decode: %v", tier, err)
				}
				want := ref.Events()
				if len(got) != len(want) {
					t.Fatalf("%v: recorded %d events, reference %d", tier, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v: event %d differs:\nring %+v\nref  %+v", tier, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestDumpReplayMatchesLiveObserver pins the acceptance property: replaying
// an unwrapped dump's window through internal/obs yields metrics identical
// to an Observer that was attached to the live run — the dump is a faithful
// substitute for having had full observability on.
func TestDumpReplayMatchesLiveObserver(t *testing.T) {
	for _, src := range exampleSources(t) {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			live := obs.NewObserver()
			rec := New(Config{Size: 8 << 20})
			runExample(t, src, interp.TierExec, trace.Multi{live, rec})
			if rec.Wrapped() {
				t.Fatal("ring wrapped; property only holds for complete windows")
			}
			d, err := rec.Snapshot("")
			if err != nil {
				t.Fatal(err)
			}

			// The dump's embedded metrics section vs the live observer.
			liveJSON, err := json.Marshal(live.Metrics().Summary())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(d.MetricsJSON, liveJSON) {
				t.Errorf("embedded metrics differ from live observer:\n%s\nvs\n%s", d.MetricsJSON, liveJSON)
			}

			// And through a full container round trip + fresh replay.
			var buf bytes.Buffer
			if err := WriteDump(&buf, d); err != nil {
				t.Fatal(err)
			}
			back, err := ReadDump(&buf)
			if err != nil {
				t.Fatal(err)
			}
			replayed := obs.NewObserver()
			for _, e := range back.Events {
				replayed.Emit(e)
			}
			replayJSON, err := json.Marshal(replayed.Metrics().Summary())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(replayJSON, liveJSON) {
				t.Errorf("metrics replayed from container differ from live observer")
			}
			if replayed.Dropped() != live.Dropped() {
				t.Errorf("replay dropped %d events, live %d", replayed.Dropped(), live.Dropped())
			}
			// Span/chain reconstruction must agree too, not just histograms.
			if len(replayed.Spans()) != len(live.Spans()) {
				t.Errorf("replay has %d spans, live %d", len(replayed.Spans()), len(live.Spans()))
			}
			if len(replayed.Chains()) != len(live.Chains()) {
				t.Errorf("replay has %d chains, live %d", len(replayed.Chains()), len(live.Chains()))
			}
		})
	}
}

// TestWrappedRingStreamStaysValid runs the corpus through a deliberately
// tiny ring, so the window truncates, and pins that the resulting JSONL
// stream (a) declares the truncation with an exact lost count, (b) still
// passes schema validation, and (c) replays through an Observer without a
// panic, with every event accounted for.
func TestWrappedRingStreamStaysValid(t *testing.T) {
	for _, src := range exampleSources(t) {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			var ref trace.Recorder
			rec := New(Config{Size: 512})
			runExample(t, src, interp.TierExec, trace.Multi{&ref, rec})
			if !rec.Wrapped() {
				t.Skipf("example emits too few events (%d) to wrap a 512-byte ring", ref.Len())
			}
			d, err := rec.Snapshot("")
			if err != nil {
				t.Fatal(err)
			}
			if uint64(len(d.Events))+d.Lost != uint64(ref.Len()) {
				t.Fatalf("window %d + lost %d != emitted %d", len(d.Events), d.Lost, ref.Len())
			}
			// The window must be exactly the tail of the reference stream.
			tail := ref.Events()[ref.Len()-len(d.Events):]
			if !reflect.DeepEqual(d.Events, tail) {
				t.Fatal("window is not the exact tail of the emitted stream")
			}

			var buf bytes.Buffer
			if err := d.WriteJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			if _, err := obs.ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("truncated stream fails schema validation: %v", err)
			}
			events, info, err := obs.ParseJSONLInfo(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !info.Truncated || info.Lost != d.Lost {
				t.Fatalf("truncation marker wrong: %+v (want lost=%d)", info, d.Lost)
			}
			replayed := obs.NewObserver()
			for _, e := range events {
				replayed.Emit(e)
			}
			// A truncated stream may drop events (joins into the missing
			// prefix), but everything must still be consumed defensively.
			if got := len(replayed.Events()); got != len(events) {
				t.Fatalf("observer retained %d of %d events", got, len(events))
			}
		})
	}
}
