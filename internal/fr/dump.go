package fr

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/trace"
)

// .rvmfr container format, version 1:
//
//	6 bytes  magic "RVMFR\x00"
//	uvarint  container version
//	sections, each:
//	    1 byte   section id
//	    uvarint  payload length
//	    payload
//
// Section order is meta, strings, events, then the optional JSON registries.
// Readers skip unknown section ids, so later versions can add sections
// without breaking older tools. The events payload is the ring's records
// verbatim (length-prefixed binary events referencing the strings section);
// everything else is JSON or a string list, favoring debuggability over the
// last few bytes.

// DumpVersion is the current .rvmfr container version.
const DumpVersion = 1

// Magic prefixes every .rvmfr file.
var Magic = []byte("RVMFR\x00")

// Section ids.
const (
	secMeta    = 0x01 // JSON Meta
	secStrings = 0x02 // uvarint count, then per string: uvarint len + bytes
	secEvents  = 0x03 // uvarint event count, uvarint lost, then raw records
	secStats   = 0x04 // JSON core.Stats (opaque to fr)
	secMetrics = 0x05 // JSON obs.MetricsSummary replayed from the window
	secProfile = 0x06 // JSON profiler digest (opaque to fr)
)

// Meta is the dump's identity and trigger context.
type Meta struct {
	V       int    `json:"v"`
	Reason  string `json:"reason"`
	Seq     int    `json:"seq"`
	At      int64  `json:"at"`
	Detail  string `json:"detail,omitempty"`
	Program string `json:"program,omitempty"`
	VM      string `json:"vm,omitempty"`
}

// Dump is one flight-recorder snapshot: the ring's event window plus every
// registry the recorder could reach, self-contained enough that the file
// alone supports a post-mortem.
type Dump struct {
	Version int
	Meta    Meta

	// Strings is the intern table the event records reference.
	Strings []string
	// Events is the decoded window, oldest first.
	Events []trace.Event
	// EventCount mirrors len(Events) on the wire.
	EventCount int
	// Truncated reports that the ring overwrote events before the dump;
	// Lost counts them. The JSONL conversion carries both in its meta line
	// so tracecheck can attribute unmatched closers to the missing prefix.
	Truncated bool
	Lost      uint64

	// StatsJSON is the runtime's core.Stats snapshot (opaque JSON here —
	// fr does not import core). MetricsJSON is the obs.MetricsSummary
	// replayed from the window. ProfileJSON is the profiler digest. Any
	// may be nil.
	StatsJSON   []byte
	MetricsJSON []byte
	ProfileJSON []byte

	// records is the encoded events section when the dump came off a live
	// ring; WriteDump re-encodes from Events when nil.
	records []byte
}

// Metrics decodes the dump's replayed metrics section.
func (d *Dump) Metrics() (obs.MetricsSummary, error) {
	var s obs.MetricsSummary
	if len(d.MetricsJSON) == 0 {
		return s, fmt.Errorf("fr: dump has no metrics section")
	}
	err := json.Unmarshal(d.MetricsJSON, &s)
	return s, err
}

// WriteDump serializes the dump to w in .rvmfr format.
func WriteDump(w io.Writer, d *Dump) error {
	records := d.records
	strs := d.Strings
	if records == nil {
		records, strs = encodeRecords(d.Events, DefaultMaxStrings)
	}

	metaJSON, err := json.Marshal(d.Meta)
	if err != nil {
		return fmt.Errorf("fr: marshal meta: %w", err)
	}

	var strSec []byte
	strSec = binary.AppendUvarint(strSec, uint64(len(strs)))
	for _, s := range strs {
		strSec = binary.AppendUvarint(strSec, uint64(len(s)))
		strSec = append(strSec, s...)
	}

	var evSec []byte
	evSec = binary.AppendUvarint(evSec, uint64(len(d.Events)))
	evSec = binary.AppendUvarint(evSec, d.Lost)
	evSec = append(evSec, records...)

	var out []byte
	out = append(out, Magic...)
	out = binary.AppendUvarint(out, uint64(DumpVersion))
	section := func(id byte, payload []byte) {
		if payload == nil {
			return
		}
		out = append(out, id)
		out = binary.AppendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
	}
	section(secMeta, metaJSON)
	section(secStrings, strSec)
	section(secEvents, evSec)
	section(secStats, d.StatsJSON)
	section(secMetrics, d.MetricsJSON)
	section(secProfile, d.ProfileJSON)

	_, err = w.Write(out)
	return err
}

// ReadDump parses a .rvmfr file, decoding the event window against its
// embedded string table. Unknown sections are skipped.
func ReadDump(r io.Reader) (*Dump, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(Magic) || string(raw[:len(Magic)]) != string(Magic) {
		return nil, fmt.Errorf("fr: not a .rvmfr dump (bad magic)")
	}
	raw = raw[len(Magic):]
	ver, n := binary.Uvarint(raw)
	if n <= 0 {
		return nil, fmt.Errorf("fr: truncated container version")
	}
	raw = raw[n:]
	if ver < 1 {
		return nil, fmt.Errorf("fr: bad container version %d", ver)
	}

	d := &Dump{Version: int(ver)}
	var evSec []byte
	for len(raw) > 0 {
		id := raw[0]
		raw = raw[1:]
		plen, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("fr: section 0x%02x: truncated length", id)
		}
		raw = raw[n:]
		if uint64(len(raw)) < plen {
			return nil, fmt.Errorf("fr: section 0x%02x: payload %d exceeds remaining %d bytes", id, plen, len(raw))
		}
		payload := raw[:plen]
		raw = raw[plen:]
		switch id {
		case secMeta:
			if err := json.Unmarshal(payload, &d.Meta); err != nil {
				return nil, fmt.Errorf("fr: meta section: %w", err)
			}
		case secStrings:
			cnt, n := binary.Uvarint(payload)
			if n <= 0 {
				return nil, fmt.Errorf("fr: strings section: truncated count")
			}
			payload = payload[n:]
			d.Strings = make([]string, 0, cnt)
			for i := uint64(0); i < cnt; i++ {
				l, n := binary.Uvarint(payload)
				if n <= 0 {
					return nil, fmt.Errorf("fr: string %d: truncated length", i)
				}
				payload = payload[n:]
				if uint64(len(payload)) < l {
					return nil, fmt.Errorf("fr: string %d: %d bytes exceed remaining %d", i, l, len(payload))
				}
				d.Strings = append(d.Strings, string(payload[:l]))
				payload = payload[l:]
			}
		case secEvents:
			cnt, n := binary.Uvarint(payload)
			if n <= 0 {
				return nil, fmt.Errorf("fr: events section: truncated count")
			}
			payload = payload[n:]
			lost, n := binary.Uvarint(payload)
			if n <= 0 {
				return nil, fmt.Errorf("fr: events section: truncated lost count")
			}
			payload = payload[n:]
			d.EventCount = int(cnt)
			d.Lost = lost
			d.Truncated = lost > 0
			evSec = payload
		case secStats:
			d.StatsJSON = append([]byte(nil), payload...)
		case secMetrics:
			d.MetricsJSON = append([]byte(nil), payload...)
		case secProfile:
			d.ProfileJSON = append([]byte(nil), payload...)
		default:
			// Unknown section from a newer writer: skip.
		}
	}
	if evSec != nil {
		d.Events, err = decodeRecords(evSec, d.EventCount, d.Strings)
		if err != nil {
			return nil, err
		}
		d.records = append([]byte(nil), evSec...)
	}
	return d, nil
}

// WriteJSONL converts the dump's event window to the repo's JSONL trace
// schema, carrying the truncation marker in the meta line so tracecheck
// knows unmatched closers may belong to the overwritten prefix.
func (d *Dump) WriteJSONL(w io.Writer) error {
	jw := obs.NewJSONLWriterInfo(w, obs.StreamInfo{Truncated: d.Truncated, Lost: d.Lost})
	for _, e := range d.Events {
		jw.Emit(e)
	}
	return jw.Close()
}
