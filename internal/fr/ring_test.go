package fr

import (
	"bytes"
	"fmt"
	"testing"
)

// collect decodes every payload currently in the ring as a raw byte copy.
func collect(t *testing.T, g *ring) [][]byte {
	t.Helper()
	var out [][]byte
	_, err := g.snapshot(nil, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRingAppendAndSnapshot(t *testing.T) {
	g := newRing(64)
	payloads := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	for _, p := range payloads {
		g.append(p)
	}
	if g.count != 3 || g.lost != 0 {
		t.Fatalf("count=%d lost=%d, want 3/0", g.count, g.lost)
	}
	got := collect(t, g)
	if len(got) != 3 {
		t.Fatalf("snapshot returned %d records", len(got))
	}
	for i, p := range payloads {
		if !bytes.Equal(got[i], p) {
			t.Errorf("record %d: got %q want %q", i, got[i], p)
		}
	}
}

func TestRingEvictsOldestOnWrap(t *testing.T) {
	g := newRing(64)
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("payload-%03d", i))
		g.append(p)
		want = append(want, p)
	}
	if g.lost == 0 {
		t.Fatal("100 x 11-byte records in a 64-byte ring should have evicted")
	}
	if int(g.lost)+g.count != 100 {
		t.Fatalf("lost %d + count %d != 100", g.lost, g.count)
	}
	got := collect(t, g)
	// The ring must hold exactly the most recent records, in order.
	tail := want[len(want)-len(got):]
	for i := range got {
		if !bytes.Equal(got[i], tail[i]) {
			t.Errorf("record %d: got %q want %q", i, got[i], tail[i])
		}
	}
}

func TestRingWraparoundPayloads(t *testing.T) {
	// Capacity chosen so payloads straddle the buffer end repeatedly.
	g := newRing(67)
	for i := 0; i < 500; i++ {
		p := []byte(fmt.Sprintf("rec-%d-%s", i, "xxxxxxxxxx"[:i%10]))
		g.append(p)
		// Every few appends, verify the full window decodes.
		if i%7 == 0 {
			for j, q := range collect(t, g) {
				if len(q) == 0 {
					t.Fatalf("iteration %d: empty payload at %d", i, j)
				}
			}
		}
	}
}

func TestRingOversizedPayloadDropped(t *testing.T) {
	g := newRing(64)
	g.append([]byte("keep"))
	g.append(bytes.Repeat([]byte("x"), 100))
	if g.lost != 1 {
		t.Fatalf("lost=%d, want 1 (oversized dropped)", g.lost)
	}
	got := collect(t, g)
	if len(got) != 1 || string(got[0]) != "keep" {
		t.Fatalf("ring should still hold the small record, got %q", got)
	}
}

func TestRingLinearizeMatchesSnapshot(t *testing.T) {
	g := newRing(96)
	for i := 0; i < 50; i++ {
		g.append([]byte(fmt.Sprintf("r%02d", i)))
	}
	lin := g.linearize()
	events, err := func() ([][]byte, error) {
		var out [][]byte
		rest := lin
		for len(rest) > 0 {
			plen, n := uvarint(rest)
			if n <= 0 {
				return nil, fmt.Errorf("bad prefix")
			}
			rest = rest[n:]
			out = append(out, rest[:plen])
			rest = rest[plen:]
		}
		return out, nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	snap := collect(t, g)
	if len(events) != len(snap) {
		t.Fatalf("linearize has %d records, snapshot %d", len(events), len(snap))
	}
	for i := range snap {
		if !bytes.Equal(events[i], snap[i]) {
			t.Errorf("record %d differs", i)
		}
	}
}

// uvarint is a tiny local decoder so the test does not depend on the ring's.
func uvarint(b []byte) (uint64, int) {
	var v uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return v | uint64(c)<<s, i + 1
		}
		v |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}
