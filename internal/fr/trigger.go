package fr

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// Dump reasons. Each automatic trigger fires at most once per run; the
// manual reasons (Snapshot, the /debug/fr endpoint, end-of-run capture) are
// unlatched.
const (
	ReasonDeadlock = "deadlock"
	ReasonRace     = "race"
	ReasonStorm    = "storm"
	ReasonLatency  = "latency"
	ReasonManual   = "manual"
	ReasonExit     = "exit"
)

// Storm trigger defaults: 16 rollbacks inside a 50k-tick sliding window of
// virtual time. The examples' pathological schedules produce single-digit
// rollbacks; a healthy revocation run should never come near this.
const (
	DefaultStormN      = 16
	DefaultStormWindow = 50000
)

// TriggerSpec selects which anomalies snapshot the ring. The zero value
// fires on nothing; DefaultTriggers() is the rvmrun default.
type TriggerSpec struct {
	// Deadlock fires on the first DeadlockDetected event.
	Deadlock bool
	// Race fires on the first committed RaceDetected report.
	Race bool
	// StormN > 0 fires when that many Rollback events land within
	// StormWindow virtual ticks of each other.
	StormN      int
	StormWindow simtime.Ticks
	// Latency > 0 fires when a thread's MonitorBlocked→MonitorAcquired
	// span meets or exceeds that many virtual ticks.
	Latency simtime.Ticks
	// Exit requests an unconditional end-of-run dump. It is not a stream
	// trigger — the driver (rvmrun) snapshots after the VM stops.
	Exit bool
}

// DefaultTriggers enables deadlock, race and the default rollback storm.
func DefaultTriggers() TriggerSpec {
	return TriggerSpec{
		Deadlock:    true,
		Race:        true,
		StormN:      DefaultStormN,
		StormWindow: DefaultStormWindow,
	}
}

// ParseTriggers parses a -fr-dump-on spec: a comma-separated list of
// "deadlock", "race", "storm[=N@WINDOW]" and "latency=TICKS". "none"
// (alone) disables all triggers; an empty spec means DefaultTriggers.
func ParseTriggers(spec string) (TriggerSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return DefaultTriggers(), nil
	}
	var ts TriggerSpec
	parts := strings.Split(spec, ",")
	for _, part := range parts {
		part = strings.TrimSpace(part)
		key, val, hasVal := strings.Cut(part, "=")
		switch key {
		case "none":
			if len(parts) != 1 {
				return ts, fmt.Errorf("fr: trigger %q cannot combine with others", part)
			}
			return TriggerSpec{}, nil
		case "deadlock":
			if hasVal {
				return ts, fmt.Errorf("fr: trigger %q takes no value", key)
			}
			ts.Deadlock = true
		case "race":
			if hasVal {
				return ts, fmt.Errorf("fr: trigger %q takes no value", key)
			}
			ts.Race = true
		case "exit":
			if hasVal {
				return ts, fmt.Errorf("fr: trigger %q takes no value", key)
			}
			ts.Exit = true
		case "storm":
			ts.StormN, ts.StormWindow = DefaultStormN, DefaultStormWindow
			if hasVal {
				nStr, wStr, hasWindow := strings.Cut(val, "@")
				n, err := strconv.Atoi(nStr)
				if err != nil || n < 1 {
					return ts, fmt.Errorf("fr: bad storm count in %q (want storm=N@WINDOW)", part)
				}
				ts.StormN = n
				if hasWindow {
					w, err := strconv.ParseInt(wStr, 10, 64)
					if err != nil || w < 1 {
						return ts, fmt.Errorf("fr: bad storm window in %q (want storm=N@WINDOW)", part)
					}
					ts.StormWindow = simtime.Ticks(w)
				}
			}
		case "latency":
			if !hasVal {
				return ts, fmt.Errorf("fr: trigger latency requires =TICKS")
			}
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil || v < 1 {
				return ts, fmt.Errorf("fr: bad latency threshold %q", val)
			}
			ts.Latency = simtime.Ticks(v)
		case "":
			return ts, fmt.Errorf("fr: empty trigger in spec %q", spec)
		default:
			return ts, fmt.Errorf("fr: unknown trigger %q (have deadlock, race, storm=N@WINDOW, latency=TICKS, none)", key)
		}
	}
	return ts, nil
}

// String renders the spec back in -fr-dump-on syntax.
func (ts TriggerSpec) String() string {
	var parts []string
	if ts.Deadlock {
		parts = append(parts, "deadlock")
	}
	if ts.Race {
		parts = append(parts, "race")
	}
	if ts.StormN > 0 {
		parts = append(parts, fmt.Sprintf("storm=%d@%d", ts.StormN, ts.StormWindow))
	}
	if ts.Latency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%d", ts.Latency))
	}
	if ts.Exit {
		parts = append(parts, "exit")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// triggerState runs the anomaly checks against the live event stream. It is
// purely stream-driven: every condition is detected from events the VM
// already emits, so the recorder needs no hooks into core beyond its Sink.
type triggerState struct {
	spec  TriggerSpec
	fired [4]bool // latch per automatic reason: deadlock, race, storm, latency

	// Rollback timestamps in a circular window of the last StormN events.
	stormTimes []simtime.Ticks
	stormNext  int
	stormSeen  int

	// blockStart tracks each thread's open MonitorBlocked span for the
	// latency trigger. A Rollback clears the victim's span: the wait it was
	// in has been revoked, not served.
	blockStart map[string]simtime.Ticks
}

const (
	latchDeadlock = iota
	latchRace
	latchStorm
	latchLatency
)

func (t *triggerState) init(spec TriggerSpec) {
	t.spec = spec
	if spec.StormN > 0 {
		t.stormTimes = make([]simtime.Ticks, spec.StormN)
	}
	if spec.Latency > 0 {
		t.blockStart = make(map[string]simtime.Ticks, 8)
	}
}

// check inspects one event and reports the dump reason if an anomaly fired.
// The hot path is a single switch whose default arm falls straight through.
func (t *triggerState) check(e *trace.Event) (string, bool) {
	switch e.Kind {
	case trace.DeadlockDetected:
		if t.spec.Deadlock && !t.fired[latchDeadlock] {
			t.fired[latchDeadlock] = true
			return ReasonDeadlock, true
		}
	case trace.RaceDetected:
		if t.spec.Race && !t.fired[latchRace] {
			t.fired[latchRace] = true
			return ReasonRace, true
		}
	case trace.Rollback:
		if t.spec.Latency > 0 && e.Thread != "" {
			delete(t.blockStart, e.Thread)
		}
		if t.spec.StormN > 0 && !t.fired[latchStorm] {
			t.stormTimes[t.stormNext] = e.At
			t.stormNext = (t.stormNext + 1) % t.spec.StormN
			if t.stormSeen < t.spec.StormN {
				t.stormSeen++
			}
			if t.stormSeen == t.spec.StormN {
				oldest := t.stormTimes[t.stormNext]
				if e.At-oldest <= t.spec.StormWindow {
					t.fired[latchStorm] = true
					return ReasonStorm, true
				}
			}
		}
	case trace.MonitorBlocked:
		if t.spec.Latency > 0 && e.Thread != "" {
			if _, open := t.blockStart[e.Thread]; !open {
				t.blockStart[e.Thread] = e.At
			}
		}
	case trace.MonitorAcquired:
		if t.spec.Latency > 0 && e.Thread != "" && !t.fired[latchLatency] {
			if start, open := t.blockStart[e.Thread]; open {
				delete(t.blockStart, e.Thread)
				if e.At-start >= t.spec.Latency {
					t.fired[latchLatency] = true
					return ReasonLatency, true
				}
			}
		}
	case trace.ThreadEnd:
		if t.spec.Latency > 0 && e.Thread != "" {
			delete(t.blockStart, e.Thread)
		}
	}
	return "", false
}
