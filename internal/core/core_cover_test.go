package core

import (
	"testing"

	"repro/internal/heap"
	"repro/internal/sched"
)

// TestArrayBarriers covers the array read/write barrier paths and their
// rollback.
func TestArrayBarriers(t *testing.T) {
	rt := New(Config{Mode: Revocation, TrackDependencies: true, Sched: sched.Config{Quantum: 50}})
	a := rt.Heap().AllocArray(4)
	m := rt.NewMonitor("M")
	var highSaw heap.Word = -1
	rt.Spawn("low", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			for i := 0; i < 4; i++ {
				tk.WriteElem(a, i, heap.Word(100+i))
			}
			if got := tk.ReadElem(a, 2); got != 102 {
				t.Errorf("own read = %d", got)
			}
			tk.Work(800)
		})
	})
	rt.Spawn("high", sched.HighPriority, func(tk *Task) {
		tk.Work(20)
		tk.Synchronized(m, func() {
			highSaw = tk.ReadElem(a, 2)
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if highSaw != 0 {
		t.Fatalf("high saw %d, want 0 (array writes rolled back)", highSaw)
	}
	if got := a.Get(2); got != 102 {
		t.Fatalf("final a[2] = %d, want 102 (re-executed)", got)
	}
}

// TestNotifyAllWakesEveryWaiter covers the NotifyAll wrapper.
func TestNotifyAllWakesEveryWaiter(t *testing.T) {
	rt := New(Config{Mode: Revocation, Sched: sched.Config{Quantum: 100}})
	flag := rt.Heap().DefineStatic("flag", false, 0)
	m := rt.NewMonitor("M")
	woken := 0
	for i := 0; i < 3; i++ {
		rt.Spawn("waiter", sched.NormPriority, func(tk *Task) {
			tk.Synchronized(m, func() {
				for tk.ReadStatic(flag) == 0 {
					tk.Wait(m)
				}
				woken++
			})
		})
	}
	rt.Spawn("broadcaster", sched.NormPriority, func(tk *Task) {
		tk.Work(500)
		tk.Synchronized(m, func() {
			tk.WriteStatic(flag, 1)
			tk.NotifyAll(m)
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

// TestSleepDeliversPendingRevocation covers the Sleep-side delivery path:
// a revocation arriving while the victim sleeps inside its section.
func TestSleepDeliversPendingRevocation(t *testing.T) {
	rt := New(Config{Mode: Revocation, Sched: sched.Config{Quantum: 50}})
	o := rt.Heap().AllocPlain("C", 1)
	m := rt.NewMonitor("M")
	attempts := 0
	rt.Spawn("low", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			attempts++
			tk.WriteField(o, 0, 9)
			if attempts == 1 {
				tk.Sleep(2000) // revocation arrives mid-sleep
			}
		})
	})
	rt.Spawn("high", sched.HighPriority, func(tk *Task) {
		tk.Work(100)
		tk.Synchronized(m, func() {
			if got := tk.ReadField(o, 0); got != 0 {
				t.Errorf("high saw %d, want 0", got)
			}
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (revoked out of Sleep)", attempts)
	}
	if rt.Stats().Rollbacks != 1 {
		t.Fatalf("rollbacks = %d", rt.Stats().Rollbacks)
	}
}

// TestEngineAPISameBehaviourAsSynchronized drives a section through the
// engine entry points directly (EngineEnter/EngineExit + AsRevocation /
// EngineUnwind), mirroring what an execution engine does.
func TestEngineAPISameBehaviourAsSynchronized(t *testing.T) {
	rt := New(Config{Mode: Revocation, Sched: sched.Config{Quantum: 50}})
	o := rt.Heap().AllocPlain("C", 1)
	m := rt.NewMonitor("M")
	attempts := 0
	rt.Spawn("low", sched.LowPriority, func(tk *Task) {
		for {
			if tk.EngineFrameDepth() != 0 {
				t.Error("frame depth not clean before enter")
			}
			tk.EngineEnter(m)
			done := func() (done bool) {
				defer func() {
					if r := recover(); r != nil {
						info, ok := AsRevocation(r)
						if !ok {
							panic(r)
						}
						tk.EngineUnwind(info)
						done = false
						return
					}
				}()
				attempts++
				tk.WriteField(o, 0, heap.Word(attempts))
				if attempts == 1 {
					tk.Work(1500) // revoked in here
				}
				tk.EngineExit(m)
				return true
			}()
			if done {
				return
			}
		}
	})
	rt.Spawn("high", sched.HighPriority, func(tk *Task) {
		tk.Work(100)
		tk.Synchronized(m, func() {
			if got := tk.ReadField(o, 0); got != 0 {
				t.Errorf("high saw %d, want 0", got)
			}
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if got := o.Get(0); got != 2 {
		t.Fatalf("final = %d, want 2", got)
	}
}

// TestMarkIrrevocableNoSection is a no-op outside sections.
func TestMarkIrrevocableNoSection(t *testing.T) {
	rt := New(Config{Mode: Revocation})
	rt.Spawn("a", sched.NormPriority, func(tk *Task) {
		tk.MarkIrrevocable("nothing held") // must not panic
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().NonRevocableMarks != 0 {
		t.Fatal("marks counted with no section")
	}
}
