package core

import (
	"fmt"
	"testing"

	"repro/internal/heap"
	"repro/internal/monitor"
	"repro/internal/sched"
	"repro/internal/trace"
)

func revocationRT(rec *trace.Recorder) *Runtime {
	var sink trace.Sink = trace.Discard
	if rec != nil {
		sink = rec
	}
	return New(Config{
		Mode:              Revocation,
		TrackDependencies: true,
		Sched:             sched.Config{Quantum: 50},
		Tracer:            sink,
	})
}

// TestFigure1Flow reproduces the paper's Figure 1: low-priority Tl enters a
// synchronized section and updates o1; high-priority Th arrives at the same
// monitor; Tl is preempted, its update to o1 undone, and Th enters the
// monitor, updates o1 and o2, and leaves; then Tl re-enters and completes.
func TestFigure1Flow(t *testing.T) {
	var rec trace.Recorder
	rt := revocationRT(&rec)
	h := rt.Heap()
	o1 := h.AllocObject("o1", heap.FieldSpec{Name: "x"})
	o2 := h.AllocObject("o2", heap.FieldSpec{Name: "x"})
	m := rt.NewMonitor("M")

	var order []string
	rt.Spawn("Tl", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			tk.WriteField(o1, 0, 111)
			tk.Work(500) // long enough for Th to arrive and revoke us
			order = append(order, "Tl-done")
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(10) // arrive after Tl holds the monitor
		tk.Synchronized(m, func() {
			// Tl's speculative write must have been undone before we got in.
			if got := tk.ReadField(o1, 0); got != 0 {
				t.Errorf("Th sees partial result o1.x = %d, want 0", got)
			}
			tk.WriteField(o1, 0, 1)
			tk.WriteField(o2, 0, 2)
			order = append(order, "Th-done")
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "Th-done" || order[1] != "Tl-done" {
		t.Fatalf("completion order = %v, want [Th-done Tl-done]", order)
	}
	st := rt.Stats()
	if st.Inversions == 0 {
		t.Error("no inversion detected")
	}
	if st.Rollbacks == 0 {
		t.Error("no rollback performed")
	}
	if rec.CountFor(trace.Rollback, "Tl") == 0 {
		t.Error("no rollback event for Tl")
	}
	if rec.CountFor(trace.Reexecution, "Tl") == 0 {
		t.Error("no re-execution event for Tl")
	}
	// Tl re-executed and ran last: o1.x has Tl's value.
	if got := o1.Get(0); got != 111 {
		t.Errorf("final o1.x = %d, want 111", got)
	}
	if got := o2.Get(0); got != 2 {
		t.Errorf("final o2.x = %d, want 2", got)
	}
}

// TestUnmodifiedBlocksHighPriority verifies the baseline VM: the
// high-priority thread waits for the full section.
func TestUnmodifiedBlocksHighPriority(t *testing.T) {
	rt := New(Config{Mode: Unmodified, Sched: sched.Config{Quantum: 50}})
	m := rt.NewMonitor("M")
	var order []string
	rt.Spawn("Tl", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			tk.Work(500)
			order = append(order, "Tl")
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(10)
		tk.Synchronized(m, func() {
			order = append(order, "Th")
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "Tl" {
		t.Fatalf("order = %v: unmodified VM must not preempt the owner", order)
	}
	st := rt.Stats()
	if st.Rollbacks != 0 || st.EntriesLogged != 0 {
		t.Errorf("unmodified VM logged/rolled back: %+v", st)
	}
	if st.Inversions == 0 {
		t.Error("inversion should still be *detected* (counted) in unmodified mode")
	}
}

// TestRollbackRestoresHeap checks the core invariant on a multi-location
// section: after revocation, every update (object, array, static) is
// reverted before the high-priority thread enters.
func TestRollbackRestoresHeap(t *testing.T) {
	rt := revocationRT(nil)
	h := rt.Heap()
	o := h.AllocPlain("C", 4)
	a := h.AllocArray(4)
	s := h.DefineStatic("g", false, 0)
	m := rt.NewMonitor("M")

	var snapAtEntry heap.Snapshot
	baseline := h.Snapshot()
	first := true
	rt.Spawn("Tl", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			if first {
				first = false
				// Dirty everything, then get revoked mid-flight.
				for i := 0; i < 4; i++ {
					tk.WriteField(o, i, heap.Word(100+i))
					tk.WriteElem(a, i, heap.Word(200+i))
				}
				tk.WriteStatic(s, 300)
				tk.Work(1000)
			}
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(20)
		tk.Synchronized(m, func() {
			snapAtEntry = h.Snapshot()
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !baseline.Equal(snapAtEntry) {
		t.Fatalf("heap not restored before handoff: %s", baseline.Diff(snapAtEntry))
	}
	if rt.Stats().EntriesUndone != 9 {
		t.Errorf("EntriesUndone = %d, want 9", rt.Stats().EntriesUndone)
	}
}

// TestNestedRollbackUndoesInnerSections: revoking the outer monitor undoes
// updates made under inner monitors too, and releases every monitor.
func TestNestedRollbackUndoesInnerSections(t *testing.T) {
	rt := revocationRT(nil)
	h := rt.Heap()
	o := h.AllocPlain("C", 2)
	outer := rt.NewMonitor("outer")
	inner := rt.NewMonitor("inner")

	sawClean := false
	rt.Spawn("Tl", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(outer, func() {
			tk.WriteField(o, 0, 1)
			tk.Synchronized(inner, func() {
				tk.WriteField(o, 1, 2)
				tk.Work(1000)
			})
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(20)
		tk.Synchronized(outer, func() {
			sawClean = tk.ReadField(o, 0) == 0 && tk.ReadField(o, 1) == 0
			// The inner monitor must have been released by the rollback.
			tk.Synchronized(inner, func() {})
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawClean {
		t.Fatalf("partial nested updates visible after rollback: o=%d,%d", o.Get(0), o.Get(1))
	}
	if rt.Stats().Rollbacks == 0 {
		t.Fatal("no rollback happened")
	}
}

// TestInnerMonitorRevocation: revoking only the inner section keeps the
// outer section's updates.
func TestInnerMonitorRevocation(t *testing.T) {
	rt := revocationRT(nil)
	h := rt.Heap()
	o := h.AllocPlain("C", 2)
	outer := rt.NewMonitor("outer")
	inner := rt.NewMonitor("inner")

	var seenOuter, seenInner heap.Word
	rt.Spawn("Tl", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(outer, func() {
			tk.WriteField(o, 0, 7) // outer update: must survive
			tk.Synchronized(inner, func() {
				tk.WriteField(o, 1, 8) // inner update: revoked
				tk.Work(1000)
			})
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(20)
		tk.Synchronized(inner, func() {
			seenOuter = o.Get(0) // raw peek: outer write is speculative but present
			seenInner = tk.ReadField(o, 1)
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if seenInner != 0 {
		t.Errorf("inner update visible after inner rollback: %d", seenInner)
	}
	if seenOuter != 7 {
		t.Errorf("outer update lost by inner rollback: %d", seenOuter)
	}
}

// TestReentrantRollbackToFirstAcquisition: with a reentrant section, the
// rollback horizon is the first acquisition (§1.1: "the point at which the
// shared resource was first acquired").
func TestReentrantRollbackToFirstAcquisition(t *testing.T) {
	rt := revocationRT(nil)
	h := rt.Heap()
	o := h.AllocPlain("C", 2)
	m := rt.NewMonitor("M")

	attempts := 0
	rt.Spawn("Tl", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			attempts++
			tk.WriteField(o, 0, 1)
			tk.Synchronized(m, func() { // reentrant
				tk.WriteField(o, 1, 2)
				if attempts == 1 {
					tk.Work(1000)
				}
			})
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(20)
		tk.Synchronized(m, func() {
			if tk.ReadField(o, 0) != 0 || tk.ReadField(o, 1) != 0 {
				t.Error("reentrant rollback did not reach the first acquisition")
			}
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("outer section attempts = %d, want 2 (one revocation)", attempts)
	}
}

// TestNativeCallForcesNonRevocable (§2.2): after a native method runs
// inside the section, revocation requests are denied and the high-priority
// thread must wait.
func TestNativeCallForcesNonRevocable(t *testing.T) {
	var rec trace.Recorder
	rt := revocationRT(&rec)
	m := rt.NewMonitor("M")
	var order []string
	rt.Spawn("Tl", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			tk.Native("println", func() {})
			tk.Work(500)
			order = append(order, "Tl")
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(20)
		tk.Synchronized(m, func() {
			order = append(order, "Th")
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "Tl" {
		t.Fatalf("order = %v: non-revocable section was revoked", order)
	}
	st := rt.Stats()
	if st.Rollbacks != 0 {
		t.Error("rollback of a non-revocable section")
	}
	if st.RevocationsDenied == 0 {
		t.Error("denial not counted")
	}
	if rec.Count(trace.NonRevocable) == 0 {
		t.Error("no non-revocable event")
	}
}

// TestNativeMarksEnclosingMonitors: a native call in a nested section makes
// the *outer* monitor non-revocable too (§2.2: "and all of its enclosing
// monitors").
func TestNativeMarksEnclosingMonitors(t *testing.T) {
	rt := revocationRT(nil)
	outer := rt.NewMonitor("outer")
	inner := rt.NewMonitor("inner")
	var order []string
	rt.Spawn("Tl", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(outer, func() {
			tk.Synchronized(inner, func() {
				tk.Native("io", nil)
			})
			tk.Work(500)
			order = append(order, "Tl")
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(20)
		tk.Synchronized(outer, func() {
			order = append(order, "Th")
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "Tl" {
		t.Fatalf("order = %v: enclosing monitor was revoked despite native call", order)
	}
}

// TestFigure2Dependency reproduces the paper's Figure 2: T writes v under
// outer+inner, releases inner; T' reads v under inner. The read-write
// dependency must make T's outer monitor non-revocable, so a later
// revocation attempt is denied.
func TestFigure2Dependency(t *testing.T) {
	var rec trace.Recorder
	rt := revocationRT(&rec)
	h := rt.Heap()
	v := h.AllocObject("V", heap.FieldSpec{Name: "v"})
	outer := rt.NewMonitor("outer")
	inner := rt.NewMonitor("inner")

	var tPrimeSaw heap.Word = -1
	var order []string
	rt.Spawn("T", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(outer, func() {
			tk.Synchronized(inner, func() {
				tk.WriteField(v, 0, 42)
			})
			// inner released; v=42 is speculative (outer may roll back).
			tk.Work(800)
			order = append(order, "T")
		})
	})
	rt.Spawn("T'", sched.NormPriority, func(tk *Task) {
		tk.Work(30)
		tk.Synchronized(inner, func() {
			tPrimeSaw = tk.ReadField(v, 0) // creates the dependency
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(100) // arrive after T' has read
		tk.Synchronized(outer, func() {
			order = append(order, "Th")
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if tPrimeSaw != 42 {
		t.Fatalf("T' read %d, want 42 (the allowed speculative read)", tPrimeSaw)
	}
	if order[0] != "T" {
		t.Fatalf("order = %v: outer was revoked after T' observed its write", order)
	}
	if rt.Stats().Dependencies == 0 {
		t.Error("dependency not detected")
	}
	if rt.Stats().RevocationsDenied == 0 {
		t.Error("revocation not denied")
	}
}

// TestFigure3Volatile reproduces Figure 3: T writes a volatile inside a
// monitor; T' reads the volatile with no monitor at all. The dependency
// must still be detected and M marked non-revocable.
func TestFigure3Volatile(t *testing.T) {
	rt := revocationRT(nil)
	h := rt.Heap()
	vol := h.DefineStatic("vol", true, 0)
	m := rt.NewMonitor("M")

	var order []string
	rt.Spawn("T", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			tk.WriteStatic(vol, 1)
			tk.Work(800)
			order = append(order, "T")
		})
	})
	rt.Spawn("T'", sched.NormPriority, func(tk *Task) {
		tk.Work(30)
		tk.ReadStatic(vol) // unmonitored volatile read
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(100)
		tk.Synchronized(m, func() {
			order = append(order, "Th")
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "T" {
		t.Fatalf("order = %v: M revoked after volatile was observed", order)
	}
	if rt.Stats().RevocationsDenied == 0 {
		t.Error("revocation not denied")
	}
}

// TestNoDependencyNoMarking: reads mediated by the same monitor never
// create dependencies (mutual exclusion prevents overlap), so revocability
// is preserved — the paper's argument for why the design choice is cheap.
func TestNoDependencyNoMarking(t *testing.T) {
	rt := revocationRT(nil)
	h := rt.Heap()
	o := h.AllocPlain("C", 1)
	m := rt.NewMonitor("M")
	for i := 0; i < 3; i++ {
		rt.Spawn(fmt.Sprintf("t%d", i), sched.NormPriority, func(tk *Task) {
			for k := 0; k < 5; k++ {
				tk.Synchronized(m, func() {
					x := tk.ReadField(o, 0)
					tk.WriteField(o, 0, x+1)
				})
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Dependencies != 0 {
		t.Errorf("Dependencies = %d, want 0 for properly synchronized accesses", rt.Stats().Dependencies)
	}
	if rt.Stats().NonRevocableMarks != 0 {
		t.Errorf("NonRevocableMarks = %d, want 0", rt.Stats().NonRevocableMarks)
	}
	if got := o.Get(0); got != 15 {
		t.Errorf("counter = %d, want 15", got)
	}
}

// TestFigure4Semantics runs the paper's Figure 4 program shape: T' loops
// reading flag v under inner until T (under outer+inner) sets it. With
// dependency tracking the first foreign read marks outer non-revocable;
// execution must terminate with both threads completing.
func TestFigure4Semantics(t *testing.T) {
	rt := revocationRT(nil)
	h := rt.Heap()
	v := h.DefineStatic("v", false, 0)
	outer := rt.NewMonitor("outer")
	inner := rt.NewMonitor("inner")

	rt.Spawn("T", sched.NormPriority, func(tk *Task) {
		tk.Synchronized(outer, func() {
			tk.Synchronized(inner, func() {
				tk.WriteStatic(v, 1)
			})
			tk.Work(200)
		})
	})
	rt.Spawn("T'", sched.NormPriority, func(tk *Task) {
		for {
			stop := false
			tk.Synchronized(inner, func() {
				stop = tk.ReadStatic(v) != 0
			})
			if stop {
				break
			}
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockBrokenByRevocation builds the classic two-lock deadlock and
// checks the runtime detects and resolves it, with both threads completing.
func TestDeadlockBrokenByRevocation(t *testing.T) {
	var rec trace.Recorder
	rt := New(Config{
		Mode:              Revocation,
		DeadlockDetection: true,
		TrackDependencies: true,
		Sched:             sched.Config{Quantum: 20},
		Tracer:            &rec,
	})
	l1 := rt.NewMonitor("L1")
	l2 := rt.NewMonitor("L2")
	done := 0
	rt.Spawn("T1", sched.NormPriority, func(tk *Task) {
		tk.Synchronized(l1, func() {
			tk.Work(100)
			tk.Synchronized(l2, func() {
				tk.Work(10)
			})
		})
		done++
	})
	rt.Spawn("T2", sched.NormPriority, func(tk *Task) {
		tk.Synchronized(l2, func() {
			tk.Work(100)
			tk.Synchronized(l1, func() {
				tk.Work(10)
			})
		})
		done++
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	st := rt.Stats()
	if st.DeadlocksDetected == 0 || st.DeadlocksBroken == 0 {
		t.Fatalf("deadlock not handled: %+v", st)
	}
	if rec.Count(trace.DeadlockBroken) == 0 {
		t.Error("no deadlock-broken event")
	}
}

// TestDeadlockThreeWay: a three-thread cycle is also detected and broken.
func TestDeadlockThreeWay(t *testing.T) {
	rt := New(Config{
		Mode:              Revocation,
		DeadlockDetection: true,
		Sched:             sched.Config{Quantum: 20},
	})
	l := []*monitor.Monitor{rt.NewMonitor("A"), rt.NewMonitor("B"), rt.NewMonitor("C")}
	done := 0
	for i := 0; i < 3; i++ {
		mi, mj := l[i], l[(i+1)%3]
		rt.Spawn(fmt.Sprintf("T%d", i), sched.NormPriority, func(tk *Task) {
			tk.Synchronized(mi, func() {
				tk.Work(100)
				tk.Synchronized(mj, func() {})
			})
			done++
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	if rt.Stats().DeadlocksBroken == 0 {
		t.Fatal("no deadlock broken")
	}
}

// TestUnmodifiedDeadlocks: the baseline VM cannot break deadlocks; the
// scheduler reports them.
func TestUnmodifiedDeadlocks(t *testing.T) {
	rt := New(Config{Mode: Unmodified, Sched: sched.Config{Quantum: 20}})
	l1 := rt.NewMonitor("L1")
	l2 := rt.NewMonitor("L2")
	rt.Spawn("T1", sched.NormPriority, func(tk *Task) {
		tk.Synchronized(l1, func() {
			tk.Work(100)
			tk.Synchronized(l2, func() {})
		})
	})
	rt.Spawn("T2", sched.NormPriority, func(tk *Task) {
		tk.Synchronized(l2, func() {
			tk.Work(100)
			tk.Synchronized(l1, func() {})
		})
	})
	if err := rt.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

// TestWaitNotifyAcrossModes checks producer/consumer via wait/notify works
// on both VMs.
func TestWaitNotifyAcrossModes(t *testing.T) {
	for _, mode := range []Mode{Unmodified, Revocation} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := New(Config{Mode: mode, TrackDependencies: true, Sched: sched.Config{Quantum: 30}})
			h := rt.Heap()
			flag := h.DefineStatic("flag", false, 0)
			m := rt.NewMonitor("M")
			consumed := heap.Word(-1)
			rt.Spawn("consumer", sched.NormPriority, func(tk *Task) {
				tk.Synchronized(m, func() {
					for tk.ReadStatic(flag) == 0 {
						tk.Wait(m)
					}
					consumed = tk.ReadStatic(flag)
				})
			})
			rt.Spawn("producer", sched.NormPriority, func(tk *Task) {
				tk.Work(100)
				tk.Synchronized(m, func() {
					tk.WriteStatic(flag, 9)
					tk.Notify(m)
				})
			})
			if err := rt.Run(); err != nil {
				t.Fatal(err)
			}
			if consumed != 9 {
				t.Fatalf("consumed = %d", consumed)
			}
		})
	}
}

// TestWaitInNestedMonitorNonRevocable (§2.2): wait inside a nested monitor
// forces non-revocability of the enclosing monitors, so the outer section
// cannot be revoked afterwards.
func TestWaitInNestedMonitorNonRevocable(t *testing.T) {
	rt := revocationRT(nil)
	outer := rt.NewMonitor("outer")
	innerObj := rt.NewMonitor("inner")
	var order []string
	rt.Spawn("Tl", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(outer, func() {
			tk.Synchronized(innerObj, func() {
				tk.Wait(innerObj) // nested wait
			})
			tk.Work(400)
			order = append(order, "Tl")
		})
	})
	rt.Spawn("notifier", sched.NormPriority, func(tk *Task) {
		tk.Work(50)
		tk.Synchronized(innerObj, func() {
			tk.Notify(innerObj)
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(100)
		tk.Synchronized(outer, func() {
			order = append(order, "Th")
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "Tl" {
		t.Fatalf("order = %v: outer revoked despite nested wait", order)
	}
	if rt.Stats().RevocationsDenied == 0 {
		t.Error("revocation should have been denied")
	}
}

// TestWaitCommitsPrefixInTopLevelMonitor (footnote 2): in a non-nested
// monitor, updates before wait become permanent — a later rollback must not
// revert them.
func TestWaitCommitsPrefixInTopLevelMonitor(t *testing.T) {
	rt := revocationRT(nil)
	h := rt.Heap()
	o := h.AllocPlain("C", 2)
	m := rt.NewMonitor("M")
	var afterWait heap.Word = -1
	rt.Spawn("Tl", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			tk.WriteField(o, 0, 5) // pre-wait: becomes permanent at wait
			tk.Wait(m)
			tk.WriteField(o, 1, 6) // post-wait: revocable
			tk.Work(500)
		})
	})
	rt.Spawn("notifier", sched.NormPriority, func(tk *Task) {
		tk.Work(50)
		tk.Synchronized(m, func() {
			tk.Notify(m)
		})
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(200)
		tk.Synchronized(m, func() {
			afterWait = tk.ReadField(o, 0)
			if tk.ReadField(o, 1) != 0 && tk.ReadField(o, 1) != 6 {
				t.Error("post-wait write in inconsistent state")
			}
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if afterWait != 5 {
		t.Fatalf("pre-wait write lost: o[0] = %d, want 5", afterWait)
	}
}
